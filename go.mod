module paco

go 1.24
