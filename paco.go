// Package paco is a library reproduction of "PaCo: Probability-based Path
// Confidence Prediction" (Malik, Agarwal, Dhar, Frank; UIUC CRHC-07-08 /
// HPCA 2008).
//
// A path confidence estimate is the probability that a processor's front
// end is currently fetching correct-path instructions. PaCo computes it
// directly: the enhanced-JRS confidence table stratifies branches by their
// miss distance counter (MDC) value, a Mispredict Rate Table measures each
// bucket's mispredict rate online, a periodic log circuit (integer
// Mitchell approximation) turns bucket rates into 12-bit encoded
// probabilities, and a running integer sum over all in-flight branches is
// the encoded goodpath probability: P(goodpath) = 2^(-sum/1024).
//
// The package offers three levels of entry:
//
//   - Predictor construction (NewPaCo, NewCountPredictor, ...) for
//     embedding path confidence estimation in your own pipeline model via
//     the small Estimator interface.
//   - Simulation (NewMachine, Benchmark) for running the bundled
//     out-of-order core on the synthetic SPEC2000-INT-like workloads.
//   - Experiments (RunExperiment, Experiments) for regenerating every
//     table and figure of the paper's evaluation.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for measured
// results versus the paper's.
package paco

import (
	"context"
	"io"

	"paco/internal/bitutil"
	"paco/internal/campaign"
	"paco/internal/confidence"
	"paco/internal/core"
	"paco/internal/cpu"
	"paco/internal/experiments"
	"paco/internal/gating"
	"paco/internal/perf"
	"paco/internal/scenario"
	"paco/internal/server"
	"paco/internal/session"
	"paco/internal/smt"
	"paco/internal/version"
	"paco/internal/workload"
)

// Re-exported core types: the estimator lifecycle interface and the PaCo
// predictor family. See the internal/core package documentation for the
// event protocol (fetch -> resolve/squash -> retire, plus per-cycle Tick).
type (
	// Estimator is the path confidence lifecycle interface.
	Estimator = core.Estimator
	// BranchEvent describes one control-flow instruction to an Estimator.
	BranchEvent = core.BranchEvent
	// Contribution is the token returned at fetch and presented at
	// resolve or squash.
	Contribution = core.Contribution
	// PaCo is the paper's probability-based path confidence predictor.
	PaCo = core.PaCo
	// PaCoConfig parameterizes a PaCo estimator.
	PaCoConfig = core.PaCoConfig
	// CountPredictor is the conventional threshold-and-count baseline.
	CountPredictor = core.CountPredictor
	// StaticMRT and PerBranchMRT are the Appendix A variants.
	StaticMRT    = core.StaticMRT
	PerBranchMRT = core.PerBranchMRT
	// Probabilistic is implemented by the PaCo family (encoded sum plus
	// decoded goodpath probability).
	Probabilistic = core.Probabilistic
)

// NewPaCo builds the paper's predictor; a zero config selects the paper's
// parameters (200k-cycle refresh, generic cold-start profile).
func NewPaCo(cfg PaCoConfig) *PaCo { return core.NewPaCo(cfg) }

// NewCountPredictor builds the threshold-and-count baseline (the paper's
// conventional best uses threshold 3).
func NewCountPredictor(threshold uint32) *CountPredictor {
	return core.NewCountPredictor(threshold)
}

// EncodeProbThreshold converts a target goodpath probability into the
// encoded threshold applications compare PaCo's sum against (done once;
// e.g. gating at 10% uses a single integer compare thereafter).
func EncodeProbThreshold(p float64) int64 { return bitutil.EncodeProbThreshold(p) }

// DecodeProb converts an encoded sum back into a probability (measurement
// only; hardware never needs it).
func DecodeProb(sum int64) float64 { return bitutil.DecodeProb(sum) }

// MDCBuckets is the number of JRS miss-distance-counter buckets (16).
const MDCBuckets = confidence.NumBuckets

// Machine is the bundled cycle-level out-of-order core.
type Machine = cpu.Core

// MachineConfig sizes a Machine.
type MachineConfig = cpu.Config

// DefaultMachineConfig is the paper's Table 6 single-thread machine;
// SMTMachineConfig is the Table 11 two-thread machine.
func DefaultMachineConfig() MachineConfig { return cpu.DefaultConfig() }

// SMTMachineConfig returns the paper's Table 11 8-wide SMT machine.
func SMTMachineConfig() MachineConfig { return cpu.SMTConfig() }

// NewMachine builds a simulated core; attach workloads with
// (*Machine).AddThread and estimators per thread.
func NewMachine(cfg MachineConfig) (*Machine, error) { return cpu.New(cfg) }

// Workload is a synthetic benchmark model.
type Workload = workload.Spec

// Benchmark returns the named SPEC2000-INT-like benchmark model; see
// BenchmarkNames for the 12 names.
func Benchmark(name string) (*Workload, error) { return workload.NewBenchmark(name) }

// BenchmarkNames lists the bundled benchmark models in the paper's order.
func BenchmarkNames() []string { return append([]string(nil), workload.BenchmarkNames...) }

// Gate is a pipeline-gating policy; NewCountGate and NewProbGate construct
// the paper's two schemes.
type Gate = gating.Gate

// NewCountGate gates fetch while >= gateCount unresolved low-confidence
// branches are outstanding (conventional scheme).
func NewCountGate(threshold uint32, gateCount int) Gate {
	return gating.NewCountGate(threshold, gateCount)
}

// NewProbGate gates fetch while PaCo's goodpath probability is below
// target (the paper gates at 20% for its headline result).
func NewProbGate(target float64, refreshPeriod uint64) Gate {
	return gating.NewProbGate(target, refreshPeriod)
}

// SMT fetch policies (paper Section 5.2).
type (
	// FetchPolicy allocates per-cycle fetch bandwidth among SMT threads.
	FetchPolicy = smt.Policy
	// ICountPolicy is Tullsen's ICOUNT.
	ICountPolicy = smt.ICount
	// ConfCountPolicy prioritizes by unresolved low-confidence branch
	// count (Luo et al.).
	ConfCountPolicy = smt.ConfCount
	// PaCoFetchPolicy prioritizes by PaCo goodpath probability.
	PaCoFetchPolicy = smt.PaCoPolicy
)

// ExperimentConfig scales the paper-reproduction experiments.
type ExperimentConfig = experiments.Config

// DefaultExperimentConfig is the full-scale configuration;
// QuickExperimentConfig is small enough for CI.
func DefaultExperimentConfig() ExperimentConfig { return experiments.Default() }

// QuickExperimentConfig returns a test-sized experiment configuration.
func QuickExperimentConfig() ExperimentConfig { return experiments.Quick() }

// Experiments lists the reproducible table/figure ids (fig2, fig3a, fig3b,
// table7, fig8, fig9, fig10, fig12, tableA1).
func Experiments() []string { return experiments.Names() }

// RunExperiment regenerates one paper table/figure, writing its report to
// w.
func RunExperiment(name string, cfg ExperimentConfig, w io.Writer) error {
	return experiments.Run(name, cfg, w)
}

// Campaign engine (see internal/campaign and DESIGN.md): independent
// simulation jobs shard across a bounded worker pool with panic
// recovery, cancellation, and progress callbacks, producing structured
// results that serialize to JSON/CSV and merge across shards. For a
// fixed configuration, results are identical at any worker count.
type (
	// CampaignJob describes one independent simulation run.
	CampaignJob = campaign.Job
	// CampaignSetup constructs a job's per-run hooks on the worker
	// goroutine.
	CampaignSetup = campaign.Setup
	// CampaignHooks attaches estimators, a gate, and probes to one run.
	CampaignHooks = campaign.Hooks
	// CampaignRunner executes campaigns with progress reporting.
	CampaignRunner = campaign.Runner
	// CampaignResult is the structured record one job produces.
	CampaignResult = campaign.Result
	// CampaignSummary aggregates a campaign's results.
	CampaignSummary = campaign.Summary
)

// RunCampaign executes jobs across a worker pool (workers <= 0 selects
// GOMAXPROCS) and returns one result per job, in job order.
func RunCampaign(ctx context.Context, workers int, jobs []CampaignJob) ([]CampaignResult, error) {
	return campaign.Run(ctx, workers, jobs)
}

// MergeCampaignResults recombines result shards into job order.
func MergeCampaignResults(shards ...[]CampaignResult) []CampaignResult {
	return campaign.Merge(shards...)
}

// SummarizeCampaign folds results into aggregate counters.
func SummarizeCampaign(results []CampaignResult) CampaignSummary {
	return campaign.Summarize(results)
}

// WriteCampaignJSON and ReadCampaignJSON serialize campaign results for
// cross-process sharding; WriteCampaignCSV emits them for plotting.
func WriteCampaignJSON(w io.Writer, results []CampaignResult) error {
	return campaign.WriteJSON(w, results)
}

func ReadCampaignJSON(r io.Reader) ([]CampaignResult, error) {
	return campaign.ReadJSON(r)
}

func WriteCampaignCSV(w io.Writer, results []CampaignResult) error {
	return campaign.WriteCSV(w, results)
}

// Kernel throughput harness (see internal/perf and EXPERIMENTS.md):
// measures how fast the simulator simulates — simulated kcycles per wall
// second, allocations per cycle, per-stage breakdown — producing the
// BENCH_kernel.json baseline artifact.
type (
	// BenchOptions configures one kernel measurement.
	BenchOptions = perf.Options
	// BenchResult is one measured kernel configuration.
	BenchResult = perf.KernelResult
	// BenchReport is the full paco-bench/v1 artifact.
	BenchReport = perf.Report
)

// MeasureKernel measures simulator throughput on one benchmark workload.
func MeasureKernel(benchmark string, opts BenchOptions) (BenchResult, error) {
	return perf.MeasureKernel(benchmark, opts)
}

// MeasureKernels measures several benchmarks (plus an SMT configuration
// when smt is set) into one report.
func MeasureKernels(benchmarks []string, smt bool, opts BenchOptions) (*BenchReport, error) {
	return perf.MeasureAll(benchmarks, smt, opts)
}

// BenchComparison is the verdict of CompareBenchReports — the
// perf-regression gate behind `paco-bench compare`.
type BenchComparison = perf.Comparison

// CompareBenchReports diffs a current kernel report against a baseline:
// any configuration whose kcycles/sec fell more than tolerance (a
// fraction, e.g. 0.15) is reported as a regression, annotated with the
// pipeline stage whose cost fraction grew the most.
func CompareBenchReports(baseline, current *BenchReport, tolerance float64) *BenchComparison {
	return perf.CompareReports(baseline, current, tolerance)
}

// Sweep grids (see internal/campaign): the declarative, serializable
// description of a configuration sweep — the cross product of
// benchmarks, refresh periods, machine widths, and gating schemes —
// shared by cmd/paco-campaign's flags and paco-serve's POST /v1/jobs
// body. A normalized grid canonicalizes to stable JSON, which is what
// the service's content-addressed cache hashes.
type CampaignGrid = campaign.Grid

// CampaignSnapshot is a point-in-time view of a running campaign's
// queued/running/done job counts (see (*CampaignRunner).Snapshot).
type CampaignSnapshot = campaign.Snapshot

// CampaignShard is one contiguous slice of a grid's cell space — the
// self-contained, content-addressed unit of work the distributed
// federation leases to workers (see CampaignGrid.Shards and DESIGN.md
// §7). Running every shard of a plan and merging reproduces the unsplit
// campaign byte for byte.
type CampaignShard = campaign.Shard

// Batched lockstep execution (see DESIGN.md §5b): campaign cells that
// replay one instruction stream execute together — one workload tape
// feeding K cores in lockstep — with results byte-identical to the
// single-cell path at any batch width.
type (
	// BatchUnit is one planned execution unit: the cell indices that
	// share one instruction stream, keyed by its content address.
	BatchUnit = campaign.BatchUnit
	// WorkloadTape is a shared instruction ring multiple simulated cores
	// replay through cursors.
	WorkloadTape = workload.Tape
	// MachineBatch advances K cores over one shared tape in lockstep.
	MachineBatch = cpu.Batch
)

// PlanBatches partitions campaign jobs into batched execution units of
// at most batchK cells, grouping by stream key. Every job lands in
// exactly one unit; batchK <= 1 plans all singletons.
func PlanBatches(jobs []CampaignJob, batchK int) []BatchUnit {
	return campaign.PlanBatches(jobs, batchK)
}

// Declarative workload scenarios (see internal/scenario): a versioned
// JSON document — a named workload family with parameters, or a bundled
// benchmark, reshaped by composition operators — that compiles to a
// Workload. Scenarios ride every sweep surface: CampaignGrid.Scenarios,
// the paco-campaign/-serve job specs, and paco-trace provenance.
type (
	// Scenario is one declarative workload description.
	Scenario = scenario.Scenario
	// ScenarioOp is one composition operator (mix, splice, phase_morph,
	// override).
	ScenarioOp = scenario.Op
	// ScenarioFamily is a named, parameterized workload family.
	ScenarioFamily = scenario.Family
	// ScenarioFuzzSpec names a deterministic batch of fuzzed scenarios.
	ScenarioFuzzSpec = scenario.FuzzSpec
)

// ScenarioFamilies returns the registered workload families in name
// order.
func ScenarioFamilies() []*ScenarioFamily { return scenario.Families() }

// CompileScenario normalizes a scenario document and compiles it to a
// runnable workload spec.
func CompileScenario(sc Scenario) (*Workload, error) { return sc.Compile() }

// FuzzScenarios deterministically samples n valid scenarios from the
// declared family parameter ranges: the same seed always returns the
// same documents, and each compiles to a byte-identical instruction
// stream.
func FuzzScenarios(seed uint64, n int) ([]Scenario, error) {
	return scenario.FuzzSpec{Seed: seed, Count: n}.Generate()
}

// Simulation service (see internal/server and DESIGN.md §6): an
// HTTP/JSON front end over the campaign engine with a content-addressed
// result cache — SHA-256 of the canonicalized job spec addresses the
// stored result, so repeated identical configurations never
// re-simulate. cmd/paco-serve is the production entry point; embedders
// mount (*SimServer).Handler() themselves.
type (
	// SimServer executes simulation jobs behind an HTTP API.
	SimServer = server.Server
	// SimServerConfig sizes a SimServer.
	SimServerConfig = server.Config
	// ResultCache is the content-addressed LRU result store.
	ResultCache = server.Cache
	// ResultCacheStats are the cache's hit/miss/occupancy counters.
	ResultCacheStats = server.CacheStats
)

// NewSimServer builds a simulation service; call Start before serving
// its Handler and Close to drain it.
func NewSimServer(cfg SimServerConfig) (*SimServer, error) { return server.New(cfg) }

// NewResultCache builds a standalone content-addressed result cache
// with the given byte budget (<= 0 selects the default) and optional
// persistence directory.
func NewResultCache(budget int64, dir string) (*ResultCache, error) {
	return server.NewCache(budget, dir)
}

// Distributed federation (see DESIGN.md §7): a SimServer configured with
// Shards > 1 coordinates sweeps across remote workers over a lease
// protocol; FederationWorker is the worker loop cmd/paco-serve runs in
// -coordinator mode. Determinism makes the distribution provable: the
// merged report is asserted byte-identical to a single-process run at
// any worker count, interleaving, or failure pattern
// (internal/server/servertest).
type (
	// FederationWorker leases shards from a coordinator, executes them
	// locally, and posts globally indexed results back.
	FederationWorker = server.Worker
	// FederationWorkerConfig configures a FederationWorker.
	FederationWorkerConfig = server.WorkerConfig
	// FederationStats snapshots a coordinator: pending/leased shards,
	// retries, and per-worker liveness.
	FederationStats = server.FederationStats
)

// NewFederationWorker builds a worker for the given coordinator; call
// Run to start leasing.
func NewFederationWorker(cfg FederationWorkerConfig) (*FederationWorker, error) {
	return server.NewWorker(cfg)
}

// Live estimator sessions (see internal/session and DESIGN.md §6b):
// a session scores an event stream as it arrives — branch events fan
// out to a configured estimator set and rolling scores read back at
// any point. paco-serve hosts sessions over HTTP (/v1/sessions, with
// sharding, backpressure, and idle eviction); this embedded surface is
// the same engine applied synchronously. Closing a session yields the
// identical scores document that streaming the same events through the
// service produces.
type (
	// Session is one live estimator set folding over an event stream.
	Session = session.Session
	// SessionConfig names the estimator set (kinds paco, static,
	// perbranch, count); the zero value selects one default PaCo.
	SessionConfig = session.Spec
	// SessionEstimator selects one estimator in a SessionConfig.
	SessionEstimator = session.EstimatorSpec
	// SessionScores is a point-in-time score snapshot.
	SessionScores = session.Scores
)

// OpenSession builds a live estimator session from its configuration.
// Feed it events with IngestNDJSON (or Apply with decoded trace
// events), read Scores at any point, and Close to squash in-flight
// branches and take the final snapshot.
func OpenSession(cfg SessionConfig) (*Session, error) { return session.New(cfg) }

// CanonicalJSON rewrites a JSON document into the canonical form the
// result cache hashes: object keys sorted, whitespace removed, numbers
// normalized.
func CanonicalJSON(raw []byte) ([]byte, error) { return server.CanonicalJSON(raw) }

// ContentKey computes the SHA-256 content address over the given parts.
func ContentKey(parts ...[]byte) string { return server.Key(parts...) }

// BuildInfo is the build stamp every paco binary shares (see the
// -version flag on each cmd/* binary).
type BuildInfo = version.Info

// Version returns the running build's stamp.
func Version() BuildInfo { return version.Get() }
