package paco

import (
	"bytes"
	"testing"
)

// TestPublicAPIQuickstart exercises the embedding API end to end: build a
// predictor, feed it a branch lifecycle, gate on its output.
func TestPublicAPIQuickstart(t *testing.T) {
	p := NewPaCo(PaCoConfig{RefreshPeriod: 1000})
	ev := BranchEvent{PC: 0x40, MDC: 0, Conditional: true}
	var contribs []Contribution
	for i := 0; i < 6; i++ {
		contribs = append(contribs, p.BranchFetched(ev))
	}
	if p.GoodpathProb() >= 1 {
		t.Fatal("in-flight branches should lower goodpath probability")
	}
	threshold := EncodeProbThreshold(0.5)
	if p.EncodedSum() <= threshold {
		t.Fatal("six cold bucket-0 branches should cross a 50% threshold")
	}
	for _, c := range contribs {
		p.BranchResolved(c)
	}
	if p.GoodpathProb() != 1 {
		t.Fatal("resolved pipeline should be certain")
	}
	if DecodeProb(EncodeProbThreshold(0.25)) < 0.24 {
		t.Fatal("encode/decode inconsistent")
	}
}

func TestPublicMachine(t *testing.T) {
	m, err := NewMachine(DefaultMachineConfig())
	if err != nil {
		t.Fatal(err)
	}
	spec, err := Benchmark("gzip")
	if err != nil {
		t.Fatal(err)
	}
	p := NewPaCo(PaCoConfig{})
	tid, err := m.AddThread(spec, []Estimator{p})
	if err != nil {
		t.Fatal(err)
	}
	m.Run(30_000, 0)
	if m.ThreadStats(tid).RetiredGood < 30_000 {
		t.Fatal("machine did not retire the requested instructions")
	}
	if m.IPC(tid) <= 0 {
		t.Fatal("IPC")
	}
}

func TestPublicBenchmarkNames(t *testing.T) {
	names := BenchmarkNames()
	if len(names) != 12 {
		t.Fatalf("names = %v", names)
	}
	names[0] = "mutated"
	if BenchmarkNames()[0] == "mutated" {
		t.Fatal("BenchmarkNames aliases internal state")
	}
}

func TestPublicGates(t *testing.T) {
	g := NewCountGate(3, 1)
	if g.ShouldGate() {
		t.Fatal("fresh count gate engaged")
	}
	pg := NewProbGate(0.2, 0)
	if pg.ShouldGate() {
		t.Fatal("fresh prob gate engaged")
	}
}

// TestPublicScenarios exercises the declarative-workload surface: list
// the families, compile a document, and fuzz a reproducible batch.
func TestPublicScenarios(t *testing.T) {
	fams := ScenarioFamilies()
	if len(fams) != 6 {
		t.Fatalf("families = %d", len(fams))
	}
	w, err := CompileScenario(Scenario{Family: "interpreter"})
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "interpreter" || w.IndirectFrac <= 0.1 {
		t.Fatalf("compiled spec: %+v", w)
	}
	a, err := FuzzScenarios(42, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FuzzScenarios(42, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 3 || a[0].Name != b[0].Name || a[0].Seed != b[0].Seed {
		t.Fatalf("fuzz not reproducible: %+v vs %+v", a, b)
	}
}

func TestPublicExperiments(t *testing.T) {
	if len(Experiments()) != 14 {
		t.Fatalf("experiments = %v", Experiments())
	}
	cfg := QuickExperimentConfig()
	var buf bytes.Buffer
	if err := RunExperiment("fig3a", cfg, &buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("no report output")
	}
	if err := RunExperiment("bogus", cfg, &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestSMTMachineConfig(t *testing.T) {
	cfg := SMTMachineConfig()
	if cfg.FetchWidth != 8 || cfg.ROBSize != 512 {
		t.Fatalf("SMT config = %+v", cfg)
	}
	if MDCBuckets != 16 {
		t.Fatal("MDCBuckets")
	}
}
