// Command paco regenerates any single table or figure from the paper's
// evaluation.
//
// Usage:
//
//	paco <experiment> [flags]
//	paco list
//
// Experiments: fig2 fig3a fig3b table7 fig8 fig9 fig10 fig12 tableA1.
// The default configuration runs each benchmark for 2M measured
// instructions after a 400k warmup; -quick selects a small configuration,
// -instructions/-warmup override.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"paco/internal/experiments"
	"paco/internal/perf"
	"paco/internal/version"
)

func main() {
	fs := flag.NewFlagSet("paco", flag.ExitOnError)
	quick := fs.Bool("quick", false, "use the small test-scale configuration")
	jobs := fs.Int("j", runtime.GOMAXPROCS(0), "simulation worker pool size")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to a file")
	memprofile := fs.String("memprofile", "", "write a heap profile to a file")
	instructions := fs.Uint64("instructions", 0, "measured instructions per benchmark run (0 = config default)")
	warmup := fs.Uint64("warmup", 0, "warmup instructions per run (0 = config default)")
	refresh := fs.Uint64("refresh", 0, "PaCo MRT refresh period in cycles (0 = config default)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: paco <experiment> [flags]\n\nexperiments:\n")
		for _, n := range experiments.Names() {
			fmt.Fprintf(os.Stderr, "  %s\n", n)
		}
		fmt.Fprintf(os.Stderr, "\nflags:\n")
		fs.PrintDefaults()
	}
	if len(os.Args) < 2 {
		fs.Usage()
		os.Exit(2)
	}
	name := os.Args[1]
	if name == "list" {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return
	}
	if name == "-version" || name == "--version" {
		version.Fprint(os.Stdout, "paco")
		return
	}
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	if *instructions != 0 {
		cfg.Instructions = *instructions
	}
	if *warmup != 0 {
		cfg.Warmup = *warmup
	}
	if *refresh != 0 {
		cfg.RefreshPeriod = *refresh
	}
	cfg.Workers = *jobs
	start := time.Now()
	err := perf.WithProfiles(*cpuprofile, *memprofile, func() error {
		return experiments.Run(name, cfg, os.Stdout)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "paco:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "[%s completed in %v]\n", name, time.Since(start).Round(time.Millisecond))
}
