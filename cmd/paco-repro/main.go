// Command paco-repro runs the paper's entire evaluation end to end —
// every table and figure — and writes one combined report, suitable for
// regenerating EXPERIMENTS.md's measured columns.
//
// Usage:
//
//	paco-repro [-quick] [-out report.txt]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"paco/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "use the small test-scale configuration")
	out := flag.String("out", "", "write the report to a file instead of stdout")
	flag.Parse()

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paco-repro:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	order := []string{"fig2", "fig3a", "fig3b", "table7", "fig8", "fig9", "fig10", "fig12", "tableA1"}
	for _, name := range order {
		start := time.Now()
		fmt.Fprintf(w, "==================== %s ====================\n", name)
		if err := experiments.Run(name, cfg, w); err != nil {
			fmt.Fprintln(os.Stderr, "paco-repro:", name, err)
			os.Exit(1)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(os.Stderr, "[%s: %v]\n", name, time.Since(start).Round(time.Millisecond))
	}
}
