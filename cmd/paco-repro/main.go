// Command paco-repro runs the paper's entire evaluation end to end —
// every table and figure — and writes one combined report, suitable for
// regenerating EXPERIMENTS.md's measured columns.
//
// Every experiment shards its per-benchmark simulation runs across the
// campaign worker pool (-j); for a fixed configuration the report is
// byte-identical at any -j, so -j only changes wall-clock time.
//
// Usage:
//
//	paco-repro [-quick] [-j N] [-out report.txt]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"paco/internal/experiments"
	"paco/internal/version"
)

func main() {
	quick := flag.Bool("quick", false, "use the small test-scale configuration")
	out := flag.String("out", "", "write the report to a file instead of stdout")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "simulation worker pool size")
	showVersion := flag.Bool("version", false, "print the build stamp and exit")
	flag.Parse()

	if *showVersion {
		version.Fprint(os.Stdout, "paco-repro")
		return
	}
	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	cfg.Workers = *jobs
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paco-repro:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	total := time.Now()
	order := []string{"fig2", "fig3a", "fig3b", "table7", "fig8", "fig9", "fig10", "fig12", "tableA1"}
	for _, name := range order {
		start := time.Now()
		fmt.Fprintf(w, "==================== %s ====================\n", name)
		if err := experiments.Run(name, cfg, w); err != nil {
			fmt.Fprintln(os.Stderr, "paco-repro:", name, err)
			os.Exit(1)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(os.Stderr, "[%s: %v]\n", name, time.Since(start).Round(time.Millisecond))
	}
	// The footer goes to stderr, not the report: timing varies run to
	// run, and the report itself must stay byte-identical at any -j.
	fmt.Fprintf(os.Stderr, "[total: %v at -j %d]\n", time.Since(total).Round(time.Millisecond), *jobs)
}
