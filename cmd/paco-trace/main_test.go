package main

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestRetryAfterParsing pins the backoff contract for 429 hints: decimal
// seconds honored, fractional values not truncated to zero, zero and
// sub-floor hints clamped to minRetryAfter, and garbage defaulting to a
// full second. The old integer-seconds parser turned "0.25" into the
// 1s default and "0" into a hot spin — both wrong directions.
func TestRetryAfterParsing(t *testing.T) {
	cases := []struct {
		header string
		want   time.Duration
	}{
		{"2", 2 * time.Second},
		{"0.25", 250 * time.Millisecond},
		{"0.5", 500 * time.Millisecond},
		{"0", minRetryAfter},
		{"0.001", minRetryAfter},
		{"-3", minRetryAfter},
		{"", time.Second},
		{"soon", time.Second},
		{"NaN", time.Second},
	}
	for _, tc := range cases {
		resp := &http.Response{Header: http.Header{}}
		if tc.header != "" {
			resp.Header.Set("Retry-After", tc.header)
		}
		if got := retryAfter(resp); got != tc.want {
			t.Errorf("retryAfter(%q) = %v, want %v", tc.header, got, tc.want)
		}
	}
}

// TestPostChunkBudget exhausts the retry budget against a server that
// never stops answering 429 and checks the abort is the named error
// after exactly budget+1 attempts (the first post is free; only retries
// spend budget).
func TestPostChunkBudget(t *testing.T) {
	var hits int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		w.Header().Set("Retry-After", "0") // clamped to minRetryAfter, keeps the test fast
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()

	budget := 3
	_, retries, err := postChunk(ts.URL, []byte("chunk"), &budget)
	if !errors.Is(err, errBackpressureBudget) {
		t.Fatalf("err = %v, want errBackpressureBudget", err)
	}
	if retries != 3 || budget != 0 || hits != 4 {
		t.Errorf("retries=%d budget=%d hits=%d, want 3/0/4", retries, budget, hits)
	}
}

// TestPostChunkRetriesThenAccepts: a transient 429 run shorter than the
// budget resolves to the eventual 202 ack, reporting both the accepted
// count and the retries consumed.
func TestPostChunkRetriesThenAccepts(t *testing.T) {
	var hits int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		if hits <= 2 {
			w.Header().Set("Retry-After", "0.01")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprint(w, `{"accepted":17,"queued":0}`)
	}))
	defer ts.Close()

	budget := 10
	accepted, retries, err := postChunk(ts.URL, []byte("chunk"), &budget)
	if err != nil {
		t.Fatal(err)
	}
	if accepted != 17 || retries != 2 || budget != 8 {
		t.Errorf("accepted=%d retries=%d budget=%d, want 17/2/8", accepted, retries, budget)
	}
}

// TestPostChunkUnlimitedBudget: a negative budget (the -retry-budget 0
// spelling) survives more 429s than any positive budget would and never
// trips the named error.
func TestPostChunkUnlimitedBudget(t *testing.T) {
	var hits int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		if hits <= 5 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprint(w, `{"accepted":1,"queued":0}`)
	}))
	defer ts.Close()

	budget := -1
	accepted, retries, err := postChunk(ts.URL, []byte("chunk"), &budget)
	if err != nil {
		t.Fatal(err)
	}
	if accepted != 1 || retries != 5 || budget != -1 {
		t.Errorf("accepted=%d retries=%d budget=%d, want 1/5/-1", accepted, retries, budget)
	}
}

// TestPostChunkHardError: a non-429 failure surfaces the status and
// body without spending budget.
func TestPostChunkHardError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "session: no such session", http.StatusNotFound)
	}))
	defer ts.Close()

	budget := 5
	_, retries, err := postChunk(ts.URL, []byte("chunk"), &budget)
	if err == nil || retries != 0 || budget != 5 {
		t.Fatalf("err=%v retries=%d budget=%d, want error with 0 retries and intact budget", err, retries, budget)
	}
	if errors.Is(err, errBackpressureBudget) {
		t.Fatal("hard error misreported as budget exhaustion")
	}
}
