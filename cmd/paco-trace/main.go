// Command paco-trace records branch-event traces from the bundled
// simulator and replays them against any of the path confidence
// estimators, decoupling estimator research from simulation cost.
//
// Usage:
//
//	paco-trace record -bench gzip -instructions 1000000 -o gzip.trace
//	paco-trace record -scenario interpreter -o interp.trace
//	paco-trace record -scenario myworkload.json -o custom.trace
//	paco-trace replay -i gzip.trace -estimator paco
//	paco-trace replay -i gzip.trace -estimator count -threshold 3
//
// Estimators: paco, static, perbranch, count.
//
// A scenario-driven recording stamps the scenario's canonical content
// hash into the trace header, so the stream carries provenance: replay
// prints the hash, and any scenario document that canonicalizes to the
// same bytes names the same workload.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"

	"paco/internal/core"
	"paco/internal/cpu"
	"paco/internal/scenario"
	"paco/internal/trace"
	"paco/internal/version"
	"paco/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = record(os.Args[2:])
	case "replay":
		err = replay(os.Args[2:])
	case "-version", "--version":
		version.Fprint(os.Stdout, "paco-trace")
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "paco-trace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: paco-trace record|replay [flags]")
	os.Exit(2)
}

func record(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	bench := fs.String("bench", "gzip", "benchmark model to trace")
	scn := fs.String("scenario", "", "scenario family or .json file to trace instead of -bench")
	instructions := fs.Uint64("instructions", 500_000, "goodpath instructions to record")
	warmup := fs.Uint64("warmup", 100_000, "warmup instructions before recording")
	out := fs.String("o", "paco.trace", "output trace file")
	fs.Parse(args)

	var (
		spec       *workload.Spec
		provenance [32]byte
		err        error
	)
	benchExplicit := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "bench" {
			benchExplicit = true
		}
	})
	if *scn != "" && benchExplicit {
		return fmt.Errorf("-bench %s and -scenario %s are mutually exclusive", *bench, *scn)
	}
	if *scn != "" {
		scs, err := scenario.ParseArg(*scn)
		if err != nil {
			return err
		}
		if len(scs) != 1 {
			return fmt.Errorf("record traces one scenario, %s holds %d", *scn, len(scs))
		}
		if spec, err = scs[0].Compile(); err != nil {
			return err
		}
		if provenance, err = scs[0].Hash(); err != nil {
			return err
		}
	} else if spec, err = workload.NewBenchmark(*bench); err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := trace.NewWriterProvenance(f, provenance)
	if err != nil {
		return err
	}
	rec := trace.NewRecorder(w)

	c, err := cpu.New(cpu.DefaultConfig())
	if err != nil {
		return err
	}
	if _, err := c.AddThread(spec, []core.Estimator{rec}); err != nil {
		return err
	}
	c.Run(*warmup, 0)
	// Recording starts after warmup: reset the recorder's tag space is
	// not needed (tags only need uniqueness), just keep going.
	c.Run(*instructions, 0)
	if rec.Err() != nil {
		return rec.Err()
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("recorded %d events from %s to %s\n", w.Events(), spec.Name, *out)
	if provenance != ([32]byte{}) {
		fmt.Printf("scenario hash %s\n", hex.EncodeToString(provenance[:]))
	}
	return nil
}

func replay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("i", "paco.trace", "input trace file")
	estName := fs.String("estimator", "paco", "paco|static|perbranch|count")
	threshold := fs.Uint("threshold", 3, "JRS threshold for -estimator count")
	refresh := fs.Uint64("refresh", core.DefaultRefreshPeriod, "PaCo MRT refresh period")
	fs.Parse(args)

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	var est core.Estimator
	switch *estName {
	case "paco":
		est = core.NewPaCo(core.PaCoConfig{RefreshPeriod: *refresh})
	case "static":
		est = core.NewStaticMRT(nil)
	case "perbranch":
		est = core.NewPerBranchMRT(core.DefaultPerBranchEntries)
	case "count":
		est = core.NewCountPredictor(uint32(*threshold))
	default:
		return fmt.Errorf("unknown estimator %q", *estName)
	}
	if prov := r.Provenance(); prov != ([32]byte{}) {
		fmt.Printf("scenario hash %s\n", hex.EncodeToString(prov[:]))
	}
	st, err := trace.Replay(r, []core.Estimator{est})
	if err != nil {
		return err
	}
	fmt.Printf("replayed: %d fetches, %d resolves, %d squashes, %d retires, %d cycles\n",
		st.Fetches, st.Resolves, st.Squashes, st.Retires, st.Cycles)
	switch e := est.(type) {
	case core.Probabilistic:
		fmt.Printf("final encoded sum %d (P(goodpath) %.3f)\n", e.EncodedSum(), e.GoodpathProb())
	case *core.CountPredictor:
		fmt.Printf("final low-confidence count %d\n", e.Count())
	}
	return nil
}
