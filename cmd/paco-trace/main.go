// Command paco-trace records branch-event traces from the bundled
// simulator, replays them against any of the path confidence
// estimators, and streams them into a live paco-serve estimator
// session — decoupling estimator research from simulation cost.
//
// Usage:
//
//	paco-trace record -bench gzip -instructions 1000000 -o gzip.trace
//	paco-trace record -scenario interpreter -o interp.trace
//	paco-trace record -scenario myworkload.json -o custom.trace
//	paco-trace record -fuzz 42 -o fuzzed.trace
//	paco-trace replay -i gzip.trace -estimator paco
//	paco-trace replay -i gzip.trace -estimator count -threshold 3
//	paco-trace replay -i gzip.trace -estimators paco,count -scores
//	paco-trace stream -i gzip.trace -server http://localhost:8344
//
// Estimators: paco, static, perbranch, count.
//
// A scenario-driven recording (-scenario or -fuzz) stamps the
// scenario's canonical content hash into the trace header, so the
// stream carries provenance: replay prints the hash, and any scenario
// document that canonicalizes to the same bytes names the same
// workload.
//
// `replay -scores` prints the session scores document — the exact
// bytes DELETE /v1/sessions/{id} returns for the same event stream —
// so `stream` output and offline replay are byte-diffable:
//
//	paco-trace stream -i t.trace -estimators paco,count > live.json
//	paco-trace replay -i t.trace -estimators paco,count -scores > off.json
//	cmp live.json off.json
package main

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"

	"paco/internal/core"
	"paco/internal/cpu"
	"paco/internal/scenario"
	"paco/internal/session"
	"paco/internal/trace"
	"paco/internal/version"
	"paco/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = record(os.Args[2:])
	case "replay":
		err = replay(os.Args[2:])
	case "stream":
		err = stream(os.Args[2:])
	case "-version", "--version":
		version.Fprint(os.Stdout, "paco-trace")
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "paco-trace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: paco-trace record|replay|stream [flags]")
	os.Exit(2)
}

func record(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	bench := fs.String("bench", "gzip", "benchmark model to trace")
	scn := fs.String("scenario", "", "scenario family or .json file to trace instead of -bench")
	fuzz := fs.Uint64("fuzz", 0, "trace a deterministically fuzzed scenario from this seed instead of -bench")
	instructions := fs.Uint64("instructions", 500_000, "goodpath instructions to record")
	warmup := fs.Uint64("warmup", 100_000, "warmup instructions before recording")
	out := fs.String("o", "paco.trace", "output trace file")
	fs.Parse(args)

	var (
		spec       *workload.Spec
		provenance [32]byte
		err        error
	)
	benchExplicit, fuzzExplicit := false, false
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "bench":
			benchExplicit = true
		case "fuzz":
			fuzzExplicit = true
		}
	})
	sources := 0
	for _, set := range []bool{benchExplicit, *scn != "", fuzzExplicit} {
		if set {
			sources++
		}
	}
	if sources > 1 {
		return fmt.Errorf("-bench, -scenario, and -fuzz are mutually exclusive")
	}
	switch {
	case *scn != "":
		scs, err := scenario.ParseArg(*scn)
		if err != nil {
			return err
		}
		if len(scs) != 1 {
			return fmt.Errorf("record traces one scenario, %s holds %d", *scn, len(scs))
		}
		if spec, err = scs[0].Compile(); err != nil {
			return err
		}
		if provenance, err = scs[0].Hash(); err != nil {
			return err
		}
	case fuzzExplicit:
		// The same seed always samples the same scenario document, so a
		// fuzzed recording is as reproducible as a named one; the
		// provenance hash identifies which document the seed produced.
		sc := scenario.NewFuzzer(*fuzz).Next()
		if spec, err = sc.Compile(); err != nil {
			return err
		}
		if provenance, err = sc.Hash(); err != nil {
			return err
		}
	default:
		if spec, err = workload.NewBenchmark(*bench); err != nil {
			return err
		}
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := trace.NewWriterProvenance(f, provenance)
	if err != nil {
		return err
	}
	rec := trace.NewRecorder(w)

	c, err := cpu.New(cpu.DefaultConfig())
	if err != nil {
		return err
	}
	if _, err := c.AddThread(spec, []core.Estimator{rec}); err != nil {
		return err
	}
	c.Run(*warmup, 0)
	// Recording starts after warmup: reset the recorder's tag space is
	// not needed (tags only need uniqueness), just keep going.
	c.Run(*instructions, 0)
	if rec.Err() != nil {
		return rec.Err()
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("recorded %d events from %s to %s\n", w.Events(), spec.Name, *out)
	if provenance != ([32]byte{}) {
		fmt.Printf("scenario hash %s\n", hex.EncodeToString(provenance[:]))
	}
	return nil
}

func replay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("i", "paco.trace", "input trace file")
	estName := fs.String("estimator", "paco", "paco|static|perbranch|count")
	estList := fs.String("estimators", "", "comma-separated estimator set for -scores mode (implies -scores)")
	scores := fs.Bool("scores", false, "print the session scores JSON document to stdout (byte-identical to the stream subcommand's final output for the same events)")
	threshold := fs.Uint("threshold", 3, "JRS threshold for -estimator count")
	refresh := fs.Uint64("refresh", core.DefaultRefreshPeriod, "PaCo MRT refresh period")
	fs.Parse(args)

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}

	if *scores || *estList != "" {
		// Session mode: replay through the same estimator-session engine
		// the /v1/sessions surface runs, and keep stdout pure JSON —
		// provenance goes to stderr so the document stays diffable.
		list := *estList
		if list == "" {
			list = *estName
		}
		spec, err := session.ParseEstimators(list, *refresh, uint32(*threshold))
		if err != nil {
			return err
		}
		if prov := r.Provenance(); prov != ([32]byte{}) {
			fmt.Fprintf(os.Stderr, "scenario hash %s\n", hex.EncodeToString(prov[:]))
		}
		sc, err := session.Replay(r, spec)
		if err != nil {
			return err
		}
		out, err := json.MarshalIndent(sc, "", "  ")
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(append(out, '\n'))
		return err
	}

	var est core.Estimator
	switch *estName {
	case "paco":
		est = core.NewPaCo(core.PaCoConfig{RefreshPeriod: *refresh})
	case "static":
		est = core.NewStaticMRT(nil)
	case "perbranch":
		est = core.NewPerBranchMRT(core.DefaultPerBranchEntries)
	case "count":
		est = core.NewCountPredictor(uint32(*threshold))
	default:
		return fmt.Errorf("unknown estimator %q", *estName)
	}
	if prov := r.Provenance(); prov != ([32]byte{}) {
		fmt.Printf("scenario hash %s\n", hex.EncodeToString(prov[:]))
	}
	st, err := trace.Replay(r, []core.Estimator{est})
	if err != nil {
		return err
	}
	fmt.Printf("replayed: %d fetches, %d resolves, %d squashes, %d retires, %d cycles\n",
		st.Fetches, st.Resolves, st.Squashes, st.Retires, st.Cycles)
	switch e := est.(type) {
	case core.Probabilistic:
		fmt.Printf("final encoded sum %d (P(goodpath) %.3f)\n", e.EncodedSum(), e.GoodpathProb())
	case *core.CountPredictor:
		fmt.Printf("final low-confidence count %d\n", e.Count())
	}
	return nil
}

// stream pushes a recorded trace into a live paco-serve estimator
// session: open, POST the raw trace bytes in chunks (the server's
// incremental decoder accepts splits anywhere, even mid-record), honor
// 429 backpressure by retrying the identical chunk after Retry-After,
// and close. The final scores document — the DELETE response — goes to
// stdout verbatim, so it byte-compares against `replay -scores`;
// rolling progress goes to stderr.
func stream(args []string) error {
	fs := flag.NewFlagSet("stream", flag.ExitOnError)
	in := fs.String("i", "paco.trace", "input trace file")
	server := fs.String("server", "http://localhost:8344", "paco-serve base URL")
	estList := fs.String("estimators", "paco", "comma-separated estimator kinds (paco, static, perbranch, count)")
	threshold := fs.Uint("threshold", 3, "JRS threshold for count estimators")
	refresh := fs.Uint64("refresh", core.DefaultRefreshPeriod, "PaCo MRT refresh period")
	chunkSize := fs.Int("chunk", 64<<10, "ingest chunk size in bytes")
	rate := fs.Float64("rate", 0, "pace ingest at this many events/sec (0 = as fast as the server accepts)")
	interval := fs.Duration("interval", time.Second, "rolling score report period on stderr (0 disables)")
	retryBudget := fs.Int("retry-budget", 10000, "abort after this many total 429 backpressure retries (0 = unlimited)")
	fs.Parse(args)

	if *chunkSize <= 0 {
		return fmt.Errorf("-chunk must be positive, got %d", *chunkSize)
	}
	raw, err := os.ReadFile(*in)
	if err != nil {
		return err
	}

	spec, err := session.ParseEstimators(*estList, *refresh, uint32(*threshold))
	if err != nil {
		return err
	}
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	resp, err := http.Post(*server+"/v1/sessions", "application/json", bytes.NewReader(specJSON))
	if err != nil {
		return err
	}
	opened := struct {
		ID     string `json:"id"`
		Key    string `json:"key"`
		Worker string `json:"worker"`
	}{}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("open session: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	if err := json.Unmarshal(body, &opened); err != nil {
		return fmt.Errorf("open session: %w", err)
	}
	owner := ""
	if opened.Worker != "" {
		// A routing coordinator names the owning worker; scripts killing
		// workers mid-stream (the CI failover smoke) grep this line.
		owner = " on worker " + opened.Worker
	}
	fmt.Fprintf(os.Stderr, "session %s (key %.12s…)%s: streaming %d bytes from %s\n",
		opened.ID, opened.Key, owner, len(raw), *in)

	var (
		start     = time.Now()
		lastPrint = start
		accepted  int
		rejected  int
		chunks    int
	)
	eventsURL := *server + "/v1/sessions/" + opened.ID + "/events"
	budget := *retryBudget
	if budget == 0 {
		budget = -1 // flag's "unlimited"; postChunk never exhausts a negative budget
	}
	for off := 0; off < len(raw); {
		end := min(off+*chunkSize, len(raw))
		n, retries, err := postChunk(eventsURL, raw[off:end], &budget)
		rejected += retries
		if err != nil {
			return fmt.Errorf("chunk at offset %d: %w", off, err)
		}
		accepted += n
		off = end
		chunks++

		if *rate > 0 {
			// Pace on acknowledged events: sleep until wall time catches
			// up with accepted/rate.
			due := start.Add(time.Duration(float64(accepted) / *rate * float64(time.Second)))
			if d := time.Until(due); d > 0 {
				time.Sleep(d)
			}
		}
		if *interval > 0 && time.Since(lastPrint) >= *interval {
			lastPrint = time.Now()
			printRolling(os.Stderr, *server, opened.ID, accepted)
		}
	}

	req, err := http.NewRequest(http.MethodDelete, *server+"/v1/sessions/"+opened.ID, nil)
	if err != nil {
		return err
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	final, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("close session: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(final))
	}
	elapsed := time.Since(start)
	fmt.Fprintf(os.Stderr, "streamed %d events in %d chunks (%d backpressure retries) in %v (%.0f events/sec)\n",
		accepted, chunks, rejected, elapsed.Round(time.Millisecond),
		float64(accepted)/elapsed.Seconds())
	_, err = os.Stdout.Write(final)
	return err
}

// errBackpressureBudget aborts a stream whose server keeps answering
// 429: the retry budget is a liveness guard, not pacing — a healthy
// server drains its queue and accepts the retried chunk long before the
// budget runs out.
var errBackpressureBudget = errors.New("backpressure retry budget exhausted (-retry-budget)")

// minRetryAfter floors the 429 backoff. Servers may hint "0" or a
// sub-millisecond fraction (a queue expected to drain imminently), but
// honoring that verbatim spins the client against a slow server.
const minRetryAfter = 50 * time.Millisecond

// postChunk posts one ingest chunk, retrying the identical bytes on
// 429 backpressure: the server rolls its decoder back on reject, so the
// re-sent chunk loses and duplicates nothing. Each retry decrements
// *budget; exhausting it returns errBackpressureBudget (a negative
// budget never runs out). Returns accepted events and retries consumed.
func postChunk(eventsURL string, chunk []byte, budget *int) (accepted, retries int, err error) {
	for {
		resp, err := http.Post(eventsURL, "application/octet-stream", bytes.NewReader(chunk))
		if err != nil {
			return accepted, retries, err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			if *budget == 0 {
				return accepted, retries, errBackpressureBudget
			}
			if *budget > 0 {
				*budget--
			}
			retries++
			time.Sleep(retryAfter(resp))
			continue
		}
		if resp.StatusCode != http.StatusAccepted {
			return accepted, retries, fmt.Errorf("ingest: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
		}
		var ack struct {
			Accepted int `json:"accepted"`
			Queued   int `json:"queued"`
		}
		if err := json.Unmarshal(body, &ack); err != nil {
			return accepted, retries, fmt.Errorf("ingest ack: %w", err)
		}
		return accepted + ack.Accepted, retries, nil
	}
}

// retryAfter reads a 429's Retry-After header as decimal seconds —
// fractional hints are honored, not truncated to zero — clamped to
// minRetryAfter, defaulting to one second when absent or unparseable.
func retryAfter(resp *http.Response) time.Duration {
	s, err := strconv.ParseFloat(resp.Header.Get("Retry-After"), 64)
	if err != nil || s != s { // unparseable or NaN
		return time.Second
	}
	d := time.Duration(s * float64(time.Second))
	if d < minRetryAfter {
		return minRetryAfter
	}
	return d
}

// printRolling reports one rolling-score line on w: the server-side
// snapshot next to the client's acknowledged-event count.
func printRolling(w io.Writer, server, id string, sent int) {
	resp, err := http.Get(server + "/v1/sessions/" + id + "/scores")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	var sc session.Scores
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&sc) != nil {
		return
	}
	line := fmt.Sprintf("sent %d: applied=%d queued=%d inflight=%d", sent, sc.Events, sc.Queued, sc.Inflight)
	for _, e := range sc.Estimators {
		switch {
		case e.PGoodpath != nil:
			line += fmt.Sprintf(" %s=%.3f", e.Kind, *e.PGoodpath)
		case e.LowConfidence != nil:
			line += fmt.Sprintf(" %s=%d", e.Kind, *e.LowConfidence)
		}
	}
	fmt.Fprintln(w, line)
}
