// Command paco-campaign runs arbitrary configuration sweeps through the
// campaign engine: a grid over benchmarks, MRT refresh periods, machine
// widths, and gating schemes, one simulation job per cell, sharded
// across a worker pool. Results are emitted as structured JSON (the
// campaign result schema, mergeable across shards with equal grids) or
// CSV.
//
// Usage:
//
//	paco-campaign [flags]
//
// Examples:
//
//	# PaCo accuracy on every benchmark at two refresh periods
//	paco-campaign -refresh 100000,200000
//
//	# gating sweep: machine widths x PaCo targets, CSV for plotting
//	paco-campaign -benchmarks gzip,twolf -widths 4,8 \
//	    -probgates 0.1,0.2,0.5 -format csv
//
//	# conventional threshold-and-count gating cells
//	paco-campaign -thresholds 3,15 -gatecount 4
//
//	# declarative scenarios: named families, a scenario file, and a
//	# seeded fuzz batch, swept alongside two SPEC models
//	paco-campaign -benchmarks gzip,twolf \
//	    -scenario interpreter,adversarial-mdc,myworkload.json \
//	    -fuzz 10 -fuzz-seed 7
//
// Each cell attaches a PaCo estimator with a reliability probe, so every
// result carries the predictor's RMS error (extra column "rms_error")
// alongside IPC and the path/mispredict/squash counters. A nonzero
// -seed overrides every workload's seed, making separate invocations
// comparable instruction-stream for instruction-stream.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"paco/internal/campaign"
	"paco/internal/perf"
	"paco/internal/scenario"
	"paco/internal/version"
	"paco/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "paco-campaign:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("paco-campaign", flag.ContinueOnError)
	// Parse errors return to main (printed once there); -h/-help prints
	// usage and exits 0 like the old global flag set did.
	fs.SetOutput(io.Discard)
	benchmarks := fs.String("benchmarks", "all", "comma-separated benchmark names, or 'all'")
	scenarios := fs.String("scenario", "", "comma-separated scenario families or .json scenario files to sweep")
	fuzzCount := fs.Int("fuzz", 0, "append N scenarios sampled from the family parameter ranges")
	fuzzSeed := fs.Uint64("fuzz-seed", 1, "seed for -fuzz sampling (same seed, same scenarios)")
	instructions := fs.Uint64("instructions", 600_000, "measured instructions per cell")
	warmup := fs.Uint64("warmup", 200_000, "warmup instructions per cell")
	refreshes := fs.String("refresh", "200000", "comma-separated MRT refresh periods (cycles)")
	widths := fs.String("widths", "4", "comma-separated machine widths (fetch/retire/FU)")
	probGates := fs.String("probgates", "", "comma-separated PaCo gating targets (e.g. 0.1,0.2); empty = ungated")
	thresholds := fs.String("thresholds", "", "comma-separated JRS thresholds for conventional gating cells")
	gateCount := fs.Int("gatecount", 3, "gate-count used with -thresholds")
	seed := fs.Uint64("seed", 0, "workload seed override (0 = per-benchmark default)")
	jobs := fs.Int("j", runtime.GOMAXPROCS(0), "worker pool size")
	batchK := fs.Int("batch", 8, "batched lockstep width: cells sharing a stream run up to K per batch (1 = unbatched; results are byte-identical either way)")
	format := fs.String("format", "json", "output format: json or csv")
	out := fs.String("out", "", "write results to a file instead of stdout")
	quiet := fs.Bool("quiet", false, "suppress progress on stderr")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the sweep to a file")
	memprofile := fs.String("memprofile", "", "write a heap profile after the sweep to a file")
	showVersion := fs.Bool("version", false, "print the build stamp and exit")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fs.SetOutput(stderr)
			fs.Usage()
			return nil
		}
		return err
	}

	if *showVersion {
		version.Fprint(stdout, "paco-campaign")
		return nil
	}
	if *format != "json" && *format != "csv" {
		return fmt.Errorf("unknown -format %q (json or csv)", *format)
	}
	// Grid.Normalized maps gate-count 0 to the default; reject it here so
	// an explicit -gatecount 0 errors instead of silently becoming 3.
	if *gateCount <= 0 {
		return fmt.Errorf("-gatecount must be >= 1, got %d", *gateCount)
	}

	// The flags assemble a campaign.Grid — the same declarative sweep
	// spec paco-serve accepts as a POST /v1/jobs body.
	grid := campaign.Grid{
		Instructions: *instructions,
		Warmup:       *warmup,
		GateCount:    *gateCount,
		Seed:         *seed,
	}
	benchExplicit := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "benchmarks" {
			benchExplicit = true
		}
	})
	scenarioSweep := *scenarios != "" || *fuzzCount != 0
	switch {
	case *benchmarks != "all":
		grid.Benchmarks = strings.Split(*benchmarks, ",")
	case benchExplicit || !scenarioSweep:
		// Explicit -benchmarks all, or a plain benchmark sweep: the full
		// list (grid normalization fills it when nothing else is swept).
		if scenarioSweep {
			grid.Benchmarks = append([]string(nil), workload.BenchmarkNames...)
		}
	default:
		// Scenario sweep with -benchmarks left at its default: sweep only
		// the scenarios.
	}
	var err error
	if *scenarios != "" {
		if grid.Scenarios, err = scenario.ParseArgs(*scenarios); err != nil {
			return fmt.Errorf("-scenario: %w", err)
		}
	}
	if *fuzzCount != 0 {
		grid.Fuzz = &scenario.FuzzSpec{Seed: *fuzzSeed, Count: *fuzzCount}
	}
	if grid.Refresh, err = parseUints(*refreshes); err != nil {
		return fmt.Errorf("-refresh: %w", err)
	}
	if grid.Widths, err = parseInts(*widths); err != nil {
		return fmt.Errorf("-widths: %w", err)
	}
	if *probGates != "" {
		if grid.ProbGates, err = parseFloats(*probGates); err != nil {
			return fmt.Errorf("-probgates: %w", err)
		}
	}
	if *thresholds != "" {
		thrs, err := parseUints(*thresholds)
		if err != nil {
			return fmt.Errorf("-thresholds: %w", err)
		}
		for _, thr := range thrs {
			grid.Thresholds = append(grid.Thresholds, uint32(thr))
		}
	}
	grid, err = grid.Normalized()
	if err != nil {
		return err
	}
	campaignJobs := grid.Jobs()

	// Create the output file before the sweep so an unwritable path
	// fails in milliseconds, not after hours of simulation.
	var w io.Writer = stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	if *batchK < 1 {
		return fmt.Errorf("-batch must be >= 1, got %d", *batchK)
	}
	runner := campaign.Runner{Workers: *jobs, BatchK: *batchK}
	if !*quiet {
		runner.OnProgress = func(done, total int, r *campaign.Result) {
			status := "ok"
			if r.Failed() {
				status = r.Err
			}
			fmt.Fprintf(stderr, "[%d/%d] %s: %s\n", done, total, r.JobID, status)
		}
	}
	// Profiling wraps only the sweep itself, so flag errors above never
	// leave profile files behind.
	return perf.WithProfiles(*cpuprofile, *memprofile, func() error {
		return runSweep(&runner, campaignJobs, w, *format, stderr, *jobs)
	})
}

// runSweep executes the campaign, writes the report, and converts any
// cell failure into a nonzero exit. Results are written even when cells
// failed: each Result carries its own error, and discarding an
// hours-long sweep over one bad cell helps nobody — but a sweep with a
// failed cell must never exit 0, so after the report is safely on disk
// the first failing job is named in the returned error (campaign:
// job N (id): cause), independent of how the runner reported it.
func runSweep(runner *campaign.Runner, jobs []campaign.Job, w io.Writer, format string, stderr io.Writer, workers int) error {
	start := time.Now()
	results, runErr := runner.Run(context.Background(), jobs)
	var writeErr error
	if format == "json" {
		writeErr = campaign.WriteJSON(w, results)
	} else {
		writeErr = campaign.WriteCSV(w, results)
	}
	if writeErr != nil {
		return writeErr
	}
	s := campaign.Summarize(results)
	fmt.Fprintf(stderr, "[%d cells (%d failed), mean IPC %.3f, %v at -j %d]\n",
		s.Jobs, s.Failed+s.Skipped, s.MeanIPC, time.Since(start).Round(time.Millisecond), workers)
	if runErr != nil {
		return runErr
	}
	// Belt over the runner contract: even if a future Runner stops
	// folding cell failures into its return value, a failed cell still
	// fails the process.
	return campaign.FirstError(results)
}

func parseUints(s string) ([]uint64, error) {
	var out []uint64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(f), 10, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	vs, err := parseUints(s)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(vs))
	for i, v := range vs {
		out[i] = int(v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
