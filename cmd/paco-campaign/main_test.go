package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"paco/internal/campaign"
)

// TestFailingCellExitsNonzeroNamingJob is the regression test for the
// exit-status contract: a campaign with a failing cell must return a
// nonzero-exit error that names the failing job on stderr, while the
// report (with the failure recorded per cell) is still written in full.
func TestFailingCellExitsNonzeroNamingJob(t *testing.T) {
	jobs := []campaign.Job{
		{ID: "ok-cell", Benchmark: "ok", Exec: func(context.Context) (*campaign.Result, error) {
			return &campaign.Result{Cycles: 10}, nil
		}},
		{ID: "bad-cell", Benchmark: "bad", Exec: func(context.Context) (*campaign.Result, error) {
			return nil, errors.New("simulated blow-up")
		}},
	}
	var out, errBuf bytes.Buffer
	runner := &campaign.Runner{Workers: 1}
	err := runSweep(runner, jobs, &out, "json", &errBuf, 1)
	if err == nil {
		t.Fatal("runSweep returned nil for a campaign with a failing cell; main would exit 0")
	}
	if !strings.Contains(err.Error(), "bad-cell") || !strings.Contains(err.Error(), "simulated blow-up") {
		t.Fatalf("error %q does not name the failing job and cause", err)
	}
	// The report still contains every cell, the failed one with its
	// error recorded.
	var results []campaign.Result
	if jsonErr := json.Unmarshal(out.Bytes(), &results); jsonErr != nil {
		t.Fatalf("report not written despite the failure: %v", jsonErr)
	}
	if len(results) != 2 || results[1].Err != "simulated blow-up" {
		t.Fatalf("report = %+v, want both cells with the failure recorded", results)
	}
	if !strings.Contains(errBuf.String(), "(1 failed)") {
		t.Fatalf("stderr footer %q does not count the failure", errBuf.String())
	}
}

// TestFailingCellNonzeroExitCSV: the exit contract holds for the CSV
// writer path too, and an empty campaign still succeeds.
func TestFailingCellNonzeroExitCSV(t *testing.T) {
	var out, errBuf bytes.Buffer
	jobs := []campaign.Job{
		{ID: "csv-bad", Benchmark: "bad", Exec: func(context.Context) (*campaign.Result, error) {
			return nil, errors.New("boom")
		}},
	}
	err := runSweep(&campaign.Runner{Workers: 1}, jobs, &out, "csv", &errBuf, 1)
	if err == nil || !strings.Contains(err.Error(), "csv-bad") {
		t.Fatalf("CSV sweep with failing cell returned %v, want error naming csv-bad", err)
	}
	if !strings.Contains(out.String(), "boom") {
		t.Fatalf("CSV report %q does not record the cell failure", out.String())
	}

	out.Reset()
	if err := runSweep(&campaign.Runner{Workers: 1}, nil, &out, "json", &errBuf, 1); err != nil {
		t.Fatalf("empty campaign should succeed, got %v", err)
	}
}

// TestRunTinySweepEndToEnd drives the real CLI path — flags, grid
// normalization, execution, JSON report — in process.
func TestRunTinySweepEndToEnd(t *testing.T) {
	var out, errBuf bytes.Buffer
	err := run([]string{
		"-benchmarks", "gzip",
		"-instructions", "2000",
		"-warmup", "500",
		"-quiet",
	}, &out, &errBuf)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errBuf.String())
	}
	var results []campaign.Result
	if err := json.Unmarshal(out.Bytes(), &results); err != nil {
		t.Fatalf("output is not a JSON result slice: %v", err)
	}
	if len(results) != 1 || results[0].Benchmark != "gzip" || results[0].Err != "" {
		t.Fatalf("results = %+v, want one clean gzip cell", results)
	}
}

// TestHelpExitsZero: -h prints usage and succeeds (exit 0), like the
// global flag set used to; a real flag error still fails.
func TestHelpExitsZero(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-h"}, &out, &errBuf); err != nil {
		t.Fatalf("-h returned %v, want nil", err)
	}
	if !strings.Contains(errBuf.String(), "-benchmarks") {
		t.Fatalf("-h did not print usage: %q", errBuf.String())
	}
	if err := run([]string{"-no-such-flag"}, &out, &errBuf); err == nil {
		t.Fatal("unknown flag did not error")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-format", "xml"},
		{"-gatecount", "0"},
		{"-benchmarks", "nope"},
	} {
		var out, errBuf bytes.Buffer
		if err := run(args, &out, &errBuf); err == nil {
			t.Fatalf("run(%v) accepted invalid flags", args)
		}
	}
}
