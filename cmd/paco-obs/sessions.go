package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"paco/internal/core"
	"paco/internal/session"
	"paco/internal/trace"
)

// sessions is a load generator for the estimator-session surface: open
// N sessions, stream deterministic synthetic branch events into each
// from -concurrency streamers, close, and report throughput. Against a
// routing coordinator (-route-sessions) the opens spread across the
// federation, so it doubles as a routed-topology exerciser. With
// -verify each DELETE response is byte-compared against an offline
// session.Replay of the same events — the protocol's determinism
// contract, checked end to end over HTTP.
func sessions(base string, args []string) error {
	fs := flag.NewFlagSet("sessions", flag.ContinueOnError)
	count := fs.Int("sessions", 8, "sessions to open and stream")
	events := fs.Int("events", 5000, "synthetic branch events per session")
	chunk := fs.Int("chunk", 32<<10, "ingest chunk size in bytes")
	concurrency := fs.Int("concurrency", 4, "sessions streaming at once")
	estList := fs.String("estimators", "paco,count", "comma-separated estimator kinds for each session")
	seed := fs.Int64("seed", 1, "base seed; session i streams SyntheticEvents(seed+i)")
	verify := fs.Bool("verify", false, "byte-compare each final scores document against offline replay")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *count <= 0 || *events <= 0 || *chunk <= 0 || *concurrency <= 0 {
		return fmt.Errorf("-sessions, -events, -chunk, and -concurrency must all be positive")
	}

	spec, err := session.ParseEstimators(*estList, core.DefaultRefreshPeriod, 3)
	if err != nil {
		return err
	}
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return err
	}

	var (
		wg         sync.WaitGroup
		sem        = make(chan struct{}, *concurrency)
		errs       = make(chan error, *count)
		totalEv    atomic.Int64
		total429   atomic.Int64
		byWorkerMu sync.Mutex
		byWorker   = map[string]int{}
	)
	start := time.Now()
	for i := 0; i < *count; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			ev, retried, worker, err := streamOneSession(base, specJSON, spec, *seed+int64(i), *events, *chunk, *verify)
			totalEv.Add(int64(ev))
			total429.Add(int64(retried))
			if worker != "" {
				byWorkerMu.Lock()
				byWorker[worker]++
				byWorkerMu.Unlock()
			}
			if err != nil {
				errs <- fmt.Errorf("session %d: %w", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	elapsed := time.Since(start)

	failed := 0
	for err := range errs {
		failed++
		fmt.Fprintln(os.Stderr, "sessions:", err)
	}
	fmt.Printf("sessions: %d streamed (%d failed) in %v — %.1f sessions/sec, %.0f events/sec, %d backpressure retries\n",
		*count, failed, elapsed.Round(time.Millisecond),
		float64(*count)/elapsed.Seconds(), float64(totalEv.Load())/elapsed.Seconds(), total429.Load())
	if len(byWorker) > 0 {
		fmt.Printf("  placement:")
		for w, n := range byWorker {
			fmt.Printf(" %s=%d", w, n)
		}
		fmt.Println()
	}
	if *verify {
		fmt.Printf("  verify: %d/%d finals byte-identical to offline replay\n", *count-failed, *count)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d sessions failed", failed, *count)
	}
	return nil
}

// streamOneSession drives one full session lifecycle: open, stream the
// seeded synthetic trace in chunks (retrying 429s with the identical
// bytes), DELETE, and optionally verify the final scores against
// offline replay. Returns events streamed, 429 retries, and the owning
// worker (empty against a non-routing server).
func streamOneSession(base string, specJSON []byte, spec session.Spec, seed int64, events, chunkSize int, verify bool) (int, int, string, error) {
	evs := session.SyntheticEvents(seed, events)
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		return 0, 0, "", err
	}
	for _, ev := range evs {
		if err := w.Write(ev); err != nil {
			return 0, 0, "", err
		}
	}
	if err := w.Flush(); err != nil {
		return 0, 0, "", err
	}
	raw := buf.Bytes()

	resp, err := http.Post(base+"/v1/sessions", "application/json", bytes.NewReader(specJSON))
	if err != nil {
		return 0, 0, "", err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return 0, 0, "", fmt.Errorf("open: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	var opened struct {
		ID     string `json:"id"`
		Worker string `json:"worker"`
	}
	if err := json.Unmarshal(body, &opened); err != nil {
		return 0, 0, "", err
	}

	retried := 0
	for off := 0; off < len(raw); {
		end := min(off+chunkSize, len(raw))
		for {
			resp, err := http.Post(base+"/v1/sessions/"+opened.ID+"/events",
				"application/octet-stream", bytes.NewReader(raw[off:end]))
			if err != nil {
				return 0, retried, opened.Worker, err
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusAccepted {
				break
			}
			if resp.StatusCode != http.StatusTooManyRequests {
				return 0, retried, opened.Worker, fmt.Errorf("ingest: HTTP %d", resp.StatusCode)
			}
			retried++
			time.Sleep(10 * time.Millisecond)
		}
		off = end
	}

	req, err := http.NewRequest(http.MethodDelete, base+"/v1/sessions/"+opened.ID, nil)
	if err != nil {
		return 0, retried, opened.Worker, err
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		return 0, retried, opened.Worker, err
	}
	final, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, retried, opened.Worker, fmt.Errorf("close: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(final))
	}

	if verify {
		r, err := trace.NewReader(bytes.NewReader(raw))
		if err != nil {
			return len(evs), retried, opened.Worker, err
		}
		offline, err := session.Replay(r, spec)
		if err != nil {
			return len(evs), retried, opened.Worker, err
		}
		want, err := json.MarshalIndent(offline, "", "  ")
		if err != nil {
			return len(evs), retried, opened.Worker, err
		}
		want = append(want, '\n')
		if !bytes.Equal(final, want) {
			return len(evs), retried, opened.Worker,
				fmt.Errorf("final scores differ from offline replay:\n got %s\nwant %s", final, want)
		}
	}
	return len(evs), retried, opened.Worker, nil
}
