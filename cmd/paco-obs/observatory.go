package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	"paco/internal/obs/tsdb"
)

// Observatory subcommands: `watch` renders the server's sampled
// time-series as terminal sparklines (the /debug/dash experience for
// people who live in a shell), and `report` fetches a campaign report
// and asserts execution thresholds — the CI hook that turns "the
// federation ran" into "the federation ran acceptably balanced".

// timeseriesReport mirrors server.TimeseriesReport without importing
// the server package into this small binary.
type timeseriesReport struct {
	IntervalMS    int64         `json:"interval_ms"`
	SeriesHeld    int           `json:"series_held"`
	SeriesDropped uint64        `json:"series_dropped"`
	Samples       uint64        `json:"samples"`
	Series        []tsdb.Series `json:"series"`
}

var sparkRamp = []rune("▁▂▃▄▅▆▇█")

// sparkline renders points as one unicode bar per point, scaled to the
// series' own min..max window.
func sparkline(pts []tsdb.Point) string {
	if len(pts) == 0 {
		return ""
	}
	min, max := pts[0].V, pts[0].V
	for _, p := range pts[1:] {
		if p.V < min {
			min = p.V
		}
		if p.V > max {
			max = p.V
		}
	}
	span := max - min
	var b strings.Builder
	for _, p := range pts {
		i := 0
		if span > 0 {
			i = int((p.V - min) / span * float64(len(sparkRamp)-1))
		}
		b.WriteRune(sparkRamp[i])
	}
	return b.String()
}

// fmtVal compacts a metric value for a fixed-width column.
func fmtVal(v float64) string {
	a := v
	if a < 0 {
		a = -a
	}
	switch {
	case a >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case a >= 1e3:
		return fmt.Sprintf("%.2fk", v/1e3)
	case a >= 1 || a == 0:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// watch polls /v1/timeseries and redraws a sparkline per series.
func watch(base string, args []string) error {
	fs := flag.NewFlagSet("watch", flag.ContinueOnError)
	family := fs.String("family", "", "only this metric family (substring match client-side when not exact)")
	points := fs.Int("points", 60, "points per sparkline")
	interval := fs.Duration("interval", 2*time.Second, "poll period")
	n := fs.Int("n", 0, "stop after this many polls (0 = run until interrupted)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	client := &http.Client{Timeout: 10 * time.Second}
	for poll := 0; *n == 0 || poll < *n; poll++ {
		if poll > 0 {
			time.Sleep(*interval)
		}
		q := url.Values{}
		q.Set("points", fmt.Sprint(*points))
		resp, err := client.Get(base + "/v1/timeseries?" + q.Encode())
		if err != nil {
			return err
		}
		var report timeseriesReport
		err = json.NewDecoder(resp.Body).Decode(&report)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("decoding timeseries: %w", err)
		}
		// Redraw from the top; plain output when stdout is a pipe would
		// interleave escapes, so only clear on repeat polls.
		if poll > 0 {
			fmt.Print("\033[H\033[2J")
		}
		fmt.Printf("paco-obs watch %s — %d series, %d sampling passes, every %dms\n\n",
			base, len(report.Series), report.Samples, report.IntervalMS)
		shown := 0
		for _, s := range report.Series {
			if *family != "" && s.Family != *family && !strings.Contains(s.Family, *family) {
				continue
			}
			name := s.Family + s.Labels
			if len(name) > 52 {
				name = name[:49] + "..."
			}
			fmt.Printf("%-52s %s  last %s (min %s max %s)\n",
				name, sparkline(s.Points), fmtVal(s.Last), fmtVal(s.Min), fmtVal(s.Max))
			shown++
		}
		if shown == 0 {
			fmt.Println("(no matching series yet)")
		}
	}
	return nil
}

// campaignReport mirrors the pieces of server.CampaignReport the
// assertions need.
type campaignReport struct {
	Schema string `json:"schema"`
	Key    string `json:"key"`
	Status string `json:"status"`
	Cells  int    `json:"cells"`
	Exec   *struct {
		Mode             string  `json:"mode"`
		WallSeconds      float64 `json:"wall_seconds"`
		SimSeconds       float64 `json:"sim_seconds"`
		QueueWaitSeconds float64 `json:"queue_wait_seconds"`
		CellsObserved    int     `json:"cells_observed"`
		StragglerIndex   float64 `json:"straggler_index"`
		ImbalanceRatio   float64 `json:"imbalance_ratio"`
		Workers          []struct {
			Worker        string  `json:"worker"`
			Shards        int     `json:"shards"`
			Cells         int     `json:"cells"`
			BusySeconds   float64 `json:"busy_seconds"`
			KCyclesPerSec float64 `json:"kcycles_per_sec"`
		} `json:"workers"`
	} `json:"exec"`
}

// report fetches /v1/campaigns/{id}/report?exec=1, prints the
// execution summary, and applies threshold assertions.
func report(base string, args []string) error {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	id := fs.String("id", "", "campaign (job) ID (required)")
	minWorkers := fs.Int("min-workers", 0, "exit nonzero unless at least this many workers executed cells")
	maxStraggler := fs.Float64("max-straggler", 0, "exit nonzero when the straggler index exceeds this (0 = no check)")
	maxImbalance := fs.Float64("max-imbalance", 0, "exit nonzero when the worker cell-imbalance ratio exceeds this (0 = no check)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("report: -id is required")
	}
	resp, err := get(base + "/v1/campaigns/" + url.PathEscape(*id) + "/report?exec=1")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var rep campaignReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return fmt.Errorf("decoding campaign report: %w", err)
	}
	if rep.Exec == nil {
		return fmt.Errorf("report for %s carries no execution layer", *id)
	}
	ex := rep.Exec
	fmt.Printf("campaign %s: %d cells, %s mode\n", *id, rep.Cells, ex.Mode)
	fmt.Printf("  wall %.3fs, sim %.3fs (parallelism %.2fx), queue-wait %.3fs\n",
		ex.WallSeconds, ex.SimSeconds, safeDiv(ex.SimSeconds, ex.WallSeconds), ex.QueueWaitSeconds)
	fmt.Printf("  straggler index %.3f, imbalance ratio %.3f, %d/%d cell spans observed\n",
		ex.StragglerIndex, ex.ImbalanceRatio, ex.CellsObserved, rep.Cells)
	for _, w := range ex.Workers {
		fmt.Printf("  worker %-12s %2d shard(s) %4d cell(s) busy %.3fs  %s kcycles/s\n",
			w.Worker, w.Shards, w.Cells, w.BusySeconds, fmtVal(w.KCyclesPerSec))
	}

	var violations []string
	if *minWorkers > 0 && len(ex.Workers) < *minWorkers {
		violations = append(violations,
			fmt.Sprintf("%d worker(s) executed cells, want >= %d", len(ex.Workers), *minWorkers))
	}
	if *maxStraggler > 0 && ex.StragglerIndex > *maxStraggler {
		violations = append(violations,
			fmt.Sprintf("straggler index %.3f exceeds %.3f", ex.StragglerIndex, *maxStraggler))
	}
	if *maxImbalance > 0 && ex.ImbalanceRatio > *maxImbalance {
		violations = append(violations,
			fmt.Sprintf("imbalance ratio %.3f exceeds %.3f", ex.ImbalanceRatio, *maxImbalance))
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "report:", v)
		}
		return fmt.Errorf("%d threshold violation(s)", len(violations))
	}
	fmt.Println("report: thresholds hold")
	return nil
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
