// Command paco-obs checks a running paco-serve's observability surfaces
// — the scriptable side of the obs layer, built for CI smoke steps and
// quick operator sanity checks.
//
// Usage:
//
//	paco-obs lint <base-url>
//	paco-obs flight <base-url> [-kind k] [-trace t] [-min n]
//	paco-obs watch <base-url> [-family f] [-points n] [-interval d] [-n polls]
//	paco-obs report <base-url> -id <job> [-min-workers n] [-max-straggler x] [-max-imbalance x]
//	paco-obs sessions <base-url> [-sessions n] [-events n] [-chunk b] [-concurrency n] [-estimators list] [-seed s] [-verify]
//
// lint fetches GET /metrics and runs the strict Prometheus exposition
// linter over it (internal/obs.LintExposition): metric and label name
// syntax, HELP/TYPE placement, family contiguity, duplicate series,
// histogram shape. Any finding is printed and exits 1 — the CI guard
// that /metrics never drifts out of scrapeable shape.
//
// flight fetches GET /debug/flight (with the given filters) and prints
// a per-kind span census. With -min it exits 1 unless at least n spans
// match — how the federation smoke asserts that a distributed sweep
// actually left a reconstructable lease → execute → cell trail.
//
// watch polls GET /v1/timeseries and renders each sampled series as a
// unicode sparkline — /debug/dash for terminals. -n bounds the poll
// count so CI can take one deterministic look and move on.
//
// report fetches GET /v1/campaigns/{id}/report?exec=1, prints the
// execution breakdown (wall vs sim vs queue-wait, per-worker
// throughput), and asserts balance thresholds: -min-workers,
// -max-straggler, -max-imbalance each exit 1 when violated — the
// federation smoke's proof that work actually spread across workers.
//
// sessions is a load generator for the live estimator-session surface:
// it opens -sessions sessions, streams deterministic synthetic branch
// events into each (-concurrency at a time), closes them, and reports
// sessions/sec, events/sec, and 429 backpressure retries. Against a
// routed coordinator it also prints per-worker placement, and -verify
// byte-compares every final scores document against an offline
// session.Replay of the same events — any drift exits 1.
//
// Examples:
//
//	paco-obs lint "http://$ADDR"
//	paco-obs flight "http://$ADDR" -kind shard.lease -min 2
//	paco-obs flight "http://$ADDR" -trace "$TRACE_ID"
//	paco-obs watch "http://$ADDR" -family kcycles -n 1
//	paco-obs report "http://$ADDR" -id "$JOB" -min-workers 2 -max-straggler 3.5
//	paco-obs sessions "http://$ADDR" -sessions 16 -events 10000 -verify
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"sort"
	"time"

	"paco/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "paco-obs:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("usage: paco-obs lint|flight <base-url> [flags]")
	}
	cmd, base, rest := args[0], args[1], args[2:]
	switch cmd {
	case "lint":
		return lint(base)
	case "flight":
		return flight(base, rest)
	case "watch":
		return watch(base, rest)
	case "report":
		return report(base, rest)
	case "sessions":
		return sessions(base, rest)
	default:
		return fmt.Errorf("unknown subcommand %q (want lint, flight, watch, report, or sessions)", cmd)
	}
}

func get(rawURL string) (*http.Response, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(rawURL)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("GET %s: %s", rawURL, resp.Status)
	}
	return resp, nil
}

// lint scrapes /metrics and runs the exposition linter over the body.
func lint(base string) error {
	resp, err := get(base + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if errs := obs.LintExposition(resp.Body); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "lint:", e)
		}
		return fmt.Errorf("%d exposition problem(s)", len(errs))
	}
	fmt.Println("metrics exposition: clean")
	return nil
}

// flightReport mirrors server.FlightReport without importing the
// server package into this small binary.
type flightReport struct {
	Capacity int              `json:"capacity"`
	Recorded uint64           `json:"recorded"`
	Active   int64            `json:"active"`
	Spans    []obs.SpanRecord `json:"spans"`
}

// flight fetches /debug/flight with the given filters and prints a
// per-kind census; -min turns it into an assertion.
func flight(base string, args []string) error {
	fs := flag.NewFlagSet("flight", flag.ContinueOnError)
	kind := fs.String("kind", "", "only spans of this kind (job, shard.lease, shard.execute, cell, ...)")
	trace := fs.String("trace", "", "only spans carrying this trace ID")
	min := fs.Int("min", 0, "exit nonzero unless at least this many spans match")
	if err := fs.Parse(args); err != nil {
		return err
	}
	q := url.Values{}
	if *kind != "" {
		q.Set("kind", *kind)
	}
	if *trace != "" {
		q.Set("trace", *trace)
	}
	u := base + "/debug/flight"
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	resp, err := get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var report flightReport
	if err := json.NewDecoder(resp.Body).Decode(&report); err != nil {
		return fmt.Errorf("decoding flight report: %w", err)
	}

	byKind := map[string]int{}
	failed := 0
	for _, sp := range report.Spans {
		byKind[sp.Kind]++
		if sp.Err != "" {
			failed++
		}
	}
	kinds := make([]string, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Printf("flight: %d span(s) (%d with errors), %d recorded total, %d active, capacity %d\n",
		len(report.Spans), failed, report.Recorded, report.Active, report.Capacity)
	for _, k := range kinds {
		fmt.Printf("  %-16s %d\n", k, byKind[k])
	}
	if len(report.Spans) < *min {
		return fmt.Errorf("%d span(s) match, want >= %d", len(report.Spans), *min)
	}
	return nil
}
