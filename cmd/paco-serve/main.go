// Command paco-serve runs the simulation service: an HTTP/JSON front end
// over the campaign engine with a content-addressed result cache, so
// repeated identical configurations never re-simulate. With -shards it
// becomes a federation coordinator that fans each submitted sweep out
// over remote workers; with -coordinator it becomes such a worker.
//
// Usage:
//
//	paco-serve [flags]
//	paco-serve -coordinator http://host:8344 [-worker-name w1] [-j N]
//	paco-serve -coordinator http://host:8344 -sessions-addr :0   # session worker
//
// Endpoints:
//
//	POST /v1/jobs                 submit a run or sweep (campaign.Grid JSON)
//	GET  /v1/jobs/{id}            job status + results
//	GET  /v1/jobs/{id}/results    bare result slice (campaign.WriteJSON bytes)
//	GET  /v1/jobs/{id}/events     SSE progress stream
//	POST /v1/shards/lease         worker protocol: lease the next shard
//	POST /v1/shards/{id}/renew    worker protocol: keep a slow shard's lease alive
//	POST /v1/shards/{id}/result   worker protocol: post shard results
//	POST /v1/sessions             open a live estimator session (session.Spec JSON)
//	POST /v1/sessions/{id}/events stream branch events (NDJSON or binary trace chunks)
//	GET  /v1/sessions/{id}/scores rolling score snapshot
//	GET  /v1/sessions/{id}/live   SSE score stream (ends with a "final" event)
//	DELETE /v1/sessions/{id}      close the session; returns final scores
//	GET  /v1/experiments/{name}   paper figure/table, byte-identical to the CLI
//	GET  /v1/campaigns/{id}/report campaign analytics (deterministic; ?exec=1 adds timelines)
//	GET  /v1/timeseries           sampled metric history (?family=&labels=&since=&points=)
//	GET  /metrics                 Prometheus text metrics (incl. federation)
//	GET  /healthz                 liveness + build stamp
//	GET  /debug/flight            span flight recorder (?kind=&trace=&limit=&since=)
//	GET  /debug/dash              live sparkline dashboard (static HTML, no deps)
//	GET  /debug/loglevel          runtime log level (PUT a new one to retune)
//	GET  /debug/pprof/            Go profiles (only with -pprof)
//
// Logs are structured (log/slog): text by default, JSON with -log-json,
// filtered by -log-level; every job-lifecycle record carries the job's
// trace ID (X-Paco-Trace).
//
// Examples:
//
//	# serve on :8344 with a 128 MiB cache persisted across restarts
//	paco-serve -cache-mb 128 -cache-dir /var/cache/paco
//
//	# a 2-worker federation: sweeps shard across the workers, and the
//	# merged report is byte-identical to a single-process run
//	paco-serve -shards 2 -addr :8344 &
//	paco-serve -coordinator http://localhost:8344 -worker-name w1 &
//	paco-serve -coordinator http://localhost:8344 -worker-name w2 &
//
//	# submit a sweep and read it back
//	curl -s localhost:8344/v1/jobs -d '{"benchmarks":["gzip","twolf"]}'
//	curl -s localhost:8344/v1/jobs/j-000001
//	curl -N localhost:8344/v1/jobs/j-000001/events
//
//	# routed estimator sessions: the coordinator hashes each session
//	# onto a worker and journals its chunks; kill a worker mid-stream
//	# and its sessions replay onto a survivor with identical finals
//	paco-serve -route-sessions -addr :8344 &
//	paco-serve -coordinator http://localhost:8344 -worker-name w1 -sessions-addr :0 &
//	paco-serve -coordinator http://localhost:8344 -worker-name w2 -sessions-addr :0 &
//	curl -s localhost:8344/v1/sessions -d '{"estimators":[{"kind":"paco"}]}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"paco/internal/experiments"
	"paco/internal/obs"
	"paco/internal/server"
	"paco/internal/version"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "paco-serve:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8344", "listen address (host:port; port 0 picks a free port)")
	jobWorkers := flag.Int("jobworkers", 2, "campaigns executing concurrently")
	simWorkers := flag.Int("j", 0, "campaign worker pool per job (0 = GOMAXPROCS)")
	batchK := flag.Int("batch", 0, "batched lockstep width for campaign cells (0 = default 8, 1 = unbatched; results are byte-identical either way)")
	queueSize := flag.Int("queue", 64, "bounded job queue size")
	cacheMB := flag.Int64("cache-mb", 64, "content-addressed cache budget in MiB")
	cacheDir := flag.String("cache-dir", "", "persist cache entries to this directory")
	quick := flag.Bool("quick", false, "serve /v1/experiments at the small test-scale configuration")
	portFile := flag.String("portfile", "", "write the bound address to this file once listening")
	quiet := flag.Bool("quiet", false, "suppress operational logging")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")
	logJSON := flag.Bool("log-json", false, "emit logs as JSON objects instead of text")
	pprofOn := flag.Bool("pprof", false, "expose Go profiling endpoints at /debug/pprof/")
	sampleEvery := flag.Duration("sample-interval", 0, "metric sampling period for /v1/timeseries and /debug/dash (0 = 1s, negative disables)")
	sessionMax := flag.Int("session-max", 0, "cap on concurrently open estimator sessions (0 = default 1024)")
	sessionQueue := flag.Int("session-queue", 0, "queued-event high-water mark per session before ingest sees 429 (0 = default 65536)")
	sessionTTL := flag.Duration("session-ttl", 0, "evict estimator sessions idle this long (0 = default 5m)")
	shards := flag.Int("shards", 0, "coordinator mode: split each sweep into up to N shards for federation workers (0 = execute locally)")
	leaseTTL := flag.Duration("lease-ttl", 30*time.Second, "coordinator: re-lease a shard this long after its worker goes silent")
	routeSessions := flag.Bool("route-sessions", false, "coordinator mode: hash /v1/sessions across federation workers started with -sessions-addr, journaling chunks so sessions fail over when their worker dies")
	coordinator := flag.String("coordinator", "", "worker mode: lease shards from this coordinator URL instead of serving")
	workerName := flag.String("worker-name", "", "worker mode: name reported to the coordinator (default hostname-pid)")
	poll := flag.Duration("poll", 500*time.Millisecond, "worker mode: idle poll interval")
	sessionsAddr := flag.String("sessions-addr", "", "worker mode: also serve /v1/sessions on this address and advertise it to the coordinator (port 0 picks a free port)")
	advertise := flag.String("advertise", "", "worker mode: session URL to advertise instead of the bound -sessions-addr (for NAT or container networking)")
	showVersion := flag.Bool("version", false, "print the build stamp and exit")
	flag.Parse()

	if *showVersion {
		version.Fprint(os.Stdout, "paco-serve")
		return nil
	}

	logger, levelVar, err := buildLogger(*logLevel, *logJSON)
	if err != nil {
		return err
	}
	if *coordinator != "" {
		wcfg := server.WorkerConfig{
			Coordinator: *coordinator,
			Name:        *workerName,
			SimWorkers:  *simWorkers,
			BatchK:      *batchK,
			Poll:        *poll,
			Log:         workerLog(logger, *quiet),
		}
		var sess *sessionServer
		if *sessionsAddr != "" {
			scfg := server.Config{
				JobWorkers:         *jobWorkers,
				SimWorkers:         *simWorkers,
				CacheBytes:         *cacheMB << 20,
				LogLevel:           levelVar,
				SampleInterval:     *sampleEvery,
				SessionMaxOpen:     *sessionMax,
				SessionQueueEvents: *sessionQueue,
				SessionTTL:         *sessionTTL,
			}
			if !*quiet {
				scfg.Log = logger
			}
			var err error
			sess, err = startSessionServer(*sessionsAddr, *advertise, scfg, *portFile)
			if err != nil {
				return err
			}
			wcfg.SessionsURL = sess.url
			logger.Info("serving sessions", "addr", sess.bound, "advertise", sess.url)
		}
		return runWorker(wcfg, sess, logger)
	}

	cfg := server.Config{
		JobWorkers:     *jobWorkers,
		SimWorkers:     *simWorkers,
		BatchK:         *batchK,
		QueueSize:      *queueSize,
		CacheBytes:     *cacheMB << 20,
		CacheDir:       *cacheDir,
		Shards:         *shards,
		LeaseTTL:       *leaseTTL,
		RouteSessions:  *routeSessions,
		EnablePprof:    *pprofOn,
		LogLevel:       levelVar,
		SampleInterval: *sampleEvery,

		SessionMaxOpen:     *sessionMax,
		SessionQueueEvents: *sessionQueue,
		SessionTTL:         *sessionTTL,
	}
	if *quick {
		q := experiments.Quick()
		cfg.Experiments = &q
	}
	if !*quiet {
		cfg.Log = logger
	}

	s, err := server.New(cfg)
	if err != nil {
		return err
	}
	s.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(bound), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	mode := "local"
	if *shards >= 1 {
		mode = fmt.Sprintf("coordinator (up to %d shards per sweep)", *shards)
	}
	logger.Info("listening", "addr", bound, "version", version.Get().String(),
		"experiments", map[bool]string{false: "full", true: "quick"}[*quick], "mode", mode)

	httpServer := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Serve until SIGINT/SIGTERM, then drain: stop accepting, cancel
	// in-flight campaigns, and give connections a moment to flush.
	errCh := make(chan error, 1)
	go func() { errCh <- httpServer.Serve(ln) }()
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		s.Close()
		return err
	case sig := <-sigCh:
		logger.Info("draining", "signal", sig.String())
		s.Close()
		// Shutdown (not Close) lets in-flight responses — including SSE
		// streams, which terminate once s.Close settles their jobs —
		// finish; the timeout caps how long a stuck client can hold the
		// process.
		httpServer.SetKeepAlivesEnabled(false)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr := httpServer.Shutdown(ctx)
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return shutdownErr
	}
}

// sessionServer is a worker's session-serving HTTP endpoint: the
// /v1/sessions surface a routing coordinator proxies into, advertised
// through the worker's lease polls.
type sessionServer struct {
	srv   *server.Server
	http  *http.Server
	ln    net.Listener
	bound string
	url   string
}

// startSessionServer binds and starts a worker-side session endpoint.
// The advertised URL defaults to the bound address with an unspecified
// host rewritten to a loopback one (":0" binds every interface, but
// "http://[::]:port" is not dialable); portFile, when set, records the
// bound address for scripts that need to scrape the worker directly.
func startSessionServer(addr, advertise string, cfg server.Config, portFile string) (*sessionServer, error) {
	s, err := server.New(cfg)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	bound := ln.Addr().String()
	if portFile != "" {
		if err := os.WriteFile(portFile, []byte(bound), 0o644); err != nil {
			ln.Close()
			return nil, err
		}
	}
	url := advertise
	if url == "" {
		host, port, err := net.SplitHostPort(bound)
		if err != nil {
			ln.Close()
			return nil, err
		}
		if host == "" || host == "::" || host == "0.0.0.0" {
			host = "127.0.0.1"
		}
		url = "http://" + net.JoinHostPort(host, port)
	}
	s.Start()
	hs := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	return &sessionServer{srv: s, http: hs, ln: ln, bound: bound, url: url}, nil
}

// runWorker is -coordinator mode: a lease/execute/post loop against a
// remote coordinator, until SIGINT/SIGTERM. A signal mid-shard abandons
// the shard (the coordinator re-leases it after -lease-ttl) — the
// worker-death path the federation is tested against. sess, when
// non-nil, is the worker's session endpoint, served alongside the lease
// loop and shut down with it.
func runWorker(cfg server.WorkerConfig, sess *sessionServer, logger *slog.Logger) error {
	w, err := server.NewWorker(cfg)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sessErr := make(chan error, 1)
	if sess != nil {
		go func() { sessErr <- sess.http.Serve(sess.ln) }()
	}
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigCh
		logger.Info("stopping", "worker", w.Name(), "signal", sig.String())
		cancel()
	}()
	logger.Info("worker leasing", "worker", w.Name(),
		"coordinator", cfg.Coordinator, "version", version.Get().String())
	w.Run(ctx)
	if sess != nil {
		// Graceful stop: open sessions close with their queues applied.
		// A *killed* worker never reaches this path — that is the death
		// the coordinator's journal-replay failover covers.
		shutdownCtx, cancelShutdown := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancelShutdown()
		sess.http.SetKeepAlivesEnabled(false)
		sess.http.Shutdown(shutdownCtx)
		sess.srv.Close()
		if err := <-sessErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Warn("session server exited", "error", err)
		}
	}
	logger.Info("worker done", "worker", w.Name(), "shards", w.ShardsDone())
	return nil
}

// buildLogger assembles the process logger from the -log-level and
// -log-json flags: structured text or JSON on stderr. The returned
// LevelVar is the runtime dial — handed to server.Config.LogLevel, it
// backs GET/PUT /debug/loglevel so the floor set here is adjustable
// without a restart.
func buildLogger(level string, jsonOut bool) (*slog.Logger, *slog.LevelVar, error) {
	lvl, err := obs.ParseLevel(level)
	if err != nil {
		return nil, nil, fmt.Errorf("-log-level: %w", err)
	}
	lv := new(slog.LevelVar)
	lv.Set(lvl)
	opts := &slog.HandlerOptions{Level: lv}
	if jsonOut {
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), lv, nil
	}
	return slog.New(slog.NewTextHandler(os.Stderr, opts)), lv, nil
}

// workerLog keeps per-shard worker chatter behind -quiet while leaving
// lifecycle messages on the main logger.
func workerLog(logger *slog.Logger, quiet bool) *slog.Logger {
	if quiet {
		return slog.New(slog.DiscardHandler)
	}
	return logger
}
