// Command paco-bench measures simulator kernel throughput — simulated
// kcycles per wall second, allocations per cycle, and the per-stage cost
// breakdown — and writes the paco-bench/v2 JSON report that seeds the
// repository's bench trajectory (BENCH_kernel.json).
//
// Usage:
//
//	paco-bench [flags]
//	paco-bench compare -baseline BENCH_kernel.json [-new report.json | -measure] [flags]
//
// Examples:
//
//	# measure the default configurations and print the report
//	paco-bench
//
//	# add batched lockstep rows and the lane-scaling geomean
//	paco-bench -batch 1,4,8,16
//
//	# refresh the committed baseline, comparing against the previous one
//	paco-bench -batch 1,4,8,16 -baseline BENCH_kernel.json -out BENCH_kernel.json
//
//	# the CI regression gate: exit nonzero naming the regressed stage
//	# when any configuration lost more than 15% throughput
//	paco-bench compare -baseline BENCH_kernel.json -new fresh.json -tolerance 0.15
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"paco/internal/perf"
	"paco/internal/version"
)

func main() {
	var err error
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		err = runCompare(os.Args[2:])
	} else {
		err = run()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "paco-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	benchmarks := flag.String("benchmarks", "gzip,twolf,mcf", "comma-separated benchmark names to measure")
	smt := flag.Bool("smt", true, "also measure the two-thread SMT machine")
	warmup := flag.Uint64("warmup", 0, "warmup cycles per configuration (0 = default)")
	cycles := flag.Uint64("cycles", 0, "measured cycles per configuration (0 = default)")
	stageCycles := flag.Uint64("stagecycles", 0, "instrumented cycles for the stage breakdown (0 = default)")
	batch := flag.String("batch", "", "comma-separated batched lockstep widths to measure (include 1 for the scaling baseline)")
	baseline := flag.String("baseline", "", "prior report to compare against (its own baseline is dropped)")
	out := flag.String("out", "", "write the report to a file instead of stdout")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the measurement to a file")
	showVersion := flag.Bool("version", false, "print the build stamp and exit")
	flag.Parse()

	if *showVersion {
		version.Fprint(os.Stdout, "paco-bench")
		return nil
	}
	var base *perf.Report
	if *baseline != "" {
		f, err := os.Open(*baseline)
		if err != nil {
			return err
		}
		base, err = perf.ReadReport(f)
		f.Close()
		if err != nil {
			return err
		}
		base.Baseline = nil // keep the artifact one level deep
	}

	opts := perf.Options{WarmupCycles: *warmup, MeasureCycles: *cycles, StageCycles: *stageCycles}
	if *batch != "" {
		for _, part := range strings.Split(*batch, ",") {
			k, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || k <= 0 {
				return fmt.Errorf("invalid -batch width %q", part)
			}
			opts.BatchKs = append(opts.BatchKs, k)
		}
	}
	var rep *perf.Report
	err := perf.WithProfiles(*cpuprofile, "", func() error {
		var merr error
		rep, merr = perf.MeasureAll(strings.Split(*benchmarks, ","), *smt, opts)
		return merr
	})
	if err != nil {
		return err
	}
	if base != nil {
		rep.AttachBaseline(base)
	}

	var w io.Writer = os.Stdout
	var outFile *os.File
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		outFile = f
		w = f
	}
	if err := rep.WriteJSON(w); err != nil {
		if outFile != nil {
			outFile.Close()
		}
		return err
	}
	if outFile != nil {
		// The report is a committed baseline artifact: surface close-time
		// flush errors rather than exiting 0 with a truncated file.
		if err := outFile.Close(); err != nil {
			return err
		}
	}
	for _, r := range rep.Results {
		fmt.Fprintf(os.Stderr, "[%s: %.0f kcycles/s, %.0f kinstrs/s, %.3f allocs/cycle]\n",
			r.Name, r.KCyclesPerSec, r.KInstrsPerSec, r.AllocsPerCycle)
	}
	if rep.SpeedupKCycles != 0 {
		fmt.Fprintf(os.Stderr, "[speedup vs baseline: %.2fx kcycles/s]\n", rep.SpeedupKCycles)
	}
	if rep.SpeedupBatch != 0 {
		fmt.Fprintf(os.Stderr, "[batched lane scaling: %.2fx geomean vs batch=1]\n", rep.SpeedupBatch)
	}
	return nil
}
