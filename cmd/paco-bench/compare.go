package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"paco/internal/perf"
)

// runCompare is the `paco-bench compare` subcommand: the perf-regression
// gate. It diffs a current report against a committed baseline and exits
// nonzero — naming each regressed configuration and the pipeline stage
// that grew — when any configuration lost more than -tolerance of its
// kcycles/sec throughput.
//
// The current report comes from one of three places:
//
//	-new report.json   a report measured elsewhere (same host as the
//	                   baseline, or the numbers are noise)
//	-measure           measure a fresh (quick) report in-process
//	-slowdown 0.5      synthesize one by scaling the baseline itself —
//	                   how CI proves the gate actually fails
//
// Without any of them the baseline is compared against itself, which
// must always pass: the self-check CI runs on every push.
func runCompare(args []string) error {
	fs := flag.NewFlagSet("paco-bench compare", flag.ExitOnError)
	baseline := fs.String("baseline", "BENCH_kernel.json", "committed baseline report")
	newPath := fs.String("new", "", "current report to gate (from a prior paco-bench run)")
	measure := fs.Bool("measure", false, "measure a fresh quick report in-process instead of reading -new")
	slowdown := fs.Float64("slowdown", 0, "synthesize the current report by scaling the baseline's throughput (e.g. 0.5 = half speed; for gate self-tests)")
	tolerance := fs.Float64("tolerance", 0.15, "tolerated per-configuration throughput loss fraction")
	benchmarks := fs.String("benchmarks", "gzip,twolf,mcf", "-measure: benchmarks to measure")
	if err := fs.Parse(args); err != nil {
		return err
	}
	set := 0
	for _, on := range []bool{*newPath != "", *measure, *slowdown != 0} {
		if on {
			set++
		}
	}
	if set > 1 {
		return errors.New("compare: -new, -measure, and -slowdown are mutually exclusive")
	}

	base, err := readReport(*baseline)
	if err != nil {
		return err
	}

	var cur *perf.Report
	switch {
	case *newPath != "":
		if cur, err = readReport(*newPath); err != nil {
			return err
		}
	case *measure:
		// Quick budgets: enough cycles for a stable-ish reading without
		// a multi-minute CI step. Same-host baselines only.
		opts := perf.Options{WarmupCycles: 100_000, MeasureCycles: 300_000, StageCycles: 100_000}
		seenK := map[int]bool{}
		for _, r := range base.Results {
			if r.BatchK > 0 && !seenK[r.BatchK] {
				seenK[r.BatchK] = true
				opts.BatchKs = append(opts.BatchKs, r.BatchK)
			}
		}
		smt := false
		for _, r := range base.Results {
			if strings.HasSuffix(r.Name, "+smt") {
				smt = true
			}
		}
		if cur, err = perf.MeasureAll(strings.Split(*benchmarks, ","), smt, opts); err != nil {
			return err
		}
	case *slowdown != 0:
		cur = base.Slowdown(*slowdown)
	default:
		cur = base
	}

	cmp := perf.CompareReports(base, cur, *tolerance)
	cmp.WriteText(os.Stdout)
	if !cmp.OK() {
		return fmt.Errorf("%d configuration(s) regressed past %.0f%% (plus %d missing)",
			len(cmp.Regressions), *tolerance*100, len(cmp.Missing))
	}
	return nil
}

func readReport(path string) (*perf.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rep, err := perf.ReadReport(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	rep.Baseline = nil
	return rep, nil
}
