// Quickstart: drive the PaCo predictor directly on a hand-made branch
// stream, with no simulator — the embedding API a downstream pipeline
// model would use.
//
// The program streams synthetic branches through the estimator lifecycle
// (fetch -> resolve, retire) for two branch populations — one predictable,
// one hard — and prints how the goodpath probability responds as
// unresolved branches accumulate.
package main

import (
	"fmt"
	"math/rand"

	"paco"
)

func main() {
	p := paco.NewPaCo(paco.PaCoConfig{RefreshPeriod: 10_000})
	rng := rand.New(rand.NewSource(1))

	fmt.Println("PaCo quickstart: goodpath probability vs in-flight branches")
	fmt.Println()

	// Train the Mispredict Rate Table: branches in MDC bucket 0 mispredict
	// 35% of the time, bucket 8 branches 5%, bucket 15 branches 1%.
	rates := map[uint32]float64{0: 0.35, 8: 0.05, 15: 0.01}
	cycle := uint64(0)
	for i := 0; i < 60_000; i++ {
		for mdc, rate := range rates {
			ev := paco.BranchEvent{PC: 0x1000 + uint64(mdc)*4, MDC: mdc, Conditional: true}
			c := p.BranchFetched(ev)
			p.BranchResolved(c)
			p.BranchRetired(ev, rng.Float64() >= rate)
		}
		cycle++
		p.Tick(cycle)
	}
	p.Refresh() // force a logarithmization so the table reflects training

	// Now hold increasing numbers of branches unresolved and read the
	// estimate.
	for _, mdc := range []uint32{0, 8, 15} {
		fmt.Printf("unresolved branches from MDC bucket %d (trained mispredict rate %.0f%%):\n",
			mdc, 100*rates[mdc])
		var contribs []paco.Contribution
		for n := 1; n <= 8; n++ {
			ev := paco.BranchEvent{PC: 0x2000, MDC: mdc, Conditional: true}
			contribs = append(contribs, p.BranchFetched(ev))
			fmt.Printf("  %d in flight: encoded sum %5d -> P(goodpath) = %5.1f%%\n",
				n, p.EncodedSum(), 100*p.GoodpathProb())
		}
		for _, c := range contribs {
			p.BranchResolved(c)
		}
		fmt.Println()
	}

	// Applications never decode: they compare the integer sum against a
	// pre-encoded threshold.
	threshold := paco.EncodeProbThreshold(0.20)
	fmt.Printf("gating at 20%% goodpath probability = encoded threshold %d\n", threshold)
	fmt.Printf("(gate fetch whenever the encoded sum exceeds it)\n")
}
