// Example serve is a minimal paco-serve client: it submits a sweep to
// POST /v1/jobs, streams the job's Server-Sent Events progress to
// stdout, and fetches the final summary.
//
// Start a server first, then run the client:
//
//	go run ./cmd/paco-serve -quick &
//	go run ./examples/serve -addr http://localhost:8344
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"
)

func main() {
	addr := flag.String("addr", "http://localhost:8344", "paco-serve base URL")
	spec := flag.String("spec",
		`{"benchmarks":["gzip","twolf"],"instructions":60000,"warmup":20000,"prob_gates":[0.2]}`,
		"job spec (campaign.Grid JSON)")
	flag.Parse()

	// Submit. The response is the job's status; an identical earlier
	// submission makes this a content-addressed cache hit that never
	// re-simulates.
	resp, err := http.Post(*addr+"/v1/jobs", "application/json", strings.NewReader(*spec))
	if err != nil {
		log.Fatal(err)
	}
	var job struct {
		ID     string `json:"id"`
		Key    string `json:"key"`
		Status string `json:"status"`
		Cache  string `json:"cache"`
		Cells  struct {
			Total int `json:"total"`
		} `json:"cells"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	if job.ID == "" {
		log.Fatalf("submission rejected (HTTP %d)", resp.StatusCode)
	}
	fmt.Printf("job %s: %d cells, cache %s (key %.12s…)\n",
		job.ID, job.Cells.Total, job.Cache, job.Key)

	// Stream progress. The stream ends with a terminal "done"/"failed"
	// event, so reading to EOF follows the whole job.
	events, err := http.Get(*addr + "/v1/jobs/" + job.ID + "/events")
	if err != nil {
		log.Fatal(err)
	}
	defer events.Body.Close()
	sc := bufio.NewScanner(events.Body)
	var event string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			fmt.Printf("  [%s] %s\n", event, strings.TrimPrefix(line, "data: "))
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}

	// Fetch the settled job for the summary.
	final, err := http.Get(*addr + "/v1/jobs/" + job.ID)
	if err != nil {
		log.Fatal(err)
	}
	defer final.Body.Close()
	var status struct {
		Status  string `json:"status"`
		Error   string `json:"error"`
		Summary *struct {
			Jobs    int     `json:"jobs"`
			MeanIPC float64 `json:"mean_ipc"`
		} `json:"summary"`
	}
	if err := json.NewDecoder(final.Body).Decode(&status); err != nil {
		log.Fatal(err)
	}
	if status.Status != "done" {
		log.Fatalf("job ended %s: %s", status.Status, status.Error)
	}
	fmt.Printf("done: %d cells, mean IPC %.3f\n", status.Summary.Jobs, status.Summary.MeanIPC)
}
