// Example session is a minimal live-estimator-session client: it opens
// a session on a running paco-serve, subscribes to the /live SSE score
// stream, streams a synthetic branch-event workload as NDJSON chunks
// (honoring 429 backpressure by retrying the identical chunk), and
// closes the session to collect the final scores.
//
// Start a server first, then run the client:
//
//	go run ./cmd/paco-serve &
//	go run ./examples/session -addr http://localhost:8344
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"paco/internal/session"
	"paco/internal/trace"
)

func main() {
	addr := flag.String("addr", "http://localhost:8344", "paco-serve base URL")
	branches := flag.Int("branches", 2000, "synthetic branches to stream")
	chunk := flag.Int("chunk", 200, "events per ingest chunk")
	flag.Parse()

	// Open a session: PaCo next to the count baseline, so the live
	// stream shows both scores evolving over the same events.
	spec := `{"estimators":[{"kind":"paco"},{"kind":"count","threshold":3}]}`
	resp, err := http.Post(*addr+"/v1/sessions", "application/json", strings.NewReader(spec))
	if err != nil {
		log.Fatal(err)
	}
	var opened struct {
		ID  string `json:"id"`
		Key string `json:"key"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&opened); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	if opened.ID == "" {
		log.Fatalf("session rejected (HTTP %d)", resp.StatusCode)
	}
	fmt.Printf("session %s (key %.12s…)\n", opened.ID, opened.Key)

	// Subscribe to the live score stream before ingesting anything; the
	// stream opens with the current snapshot, coalesces to the latest
	// scores after each server-side drain, and ends with a "final" event
	// once the session closes.
	live, err := http.Get(*addr + "/v1/sessions/" + opened.ID + "/live")
	if err != nil {
		log.Fatal(err)
	}
	defer live.Body.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		sc := bufio.NewScanner(live.Body)
		var event string
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				fmt.Printf("  [%s] %s\n", event, strings.TrimPrefix(line, "data: "))
			}
		}
	}()

	// Stream the workload as NDJSON chunks. A 429 means the session's
	// queue is over its high-water mark and the chunk was NOT consumed:
	// wait out Retry-After and resend the identical bytes.
	events := synthesize(*branches)
	eventsURL := *addr + "/v1/sessions/" + opened.ID + "/events"
	for off := 0; off < len(events); off += *chunk {
		end := min(off+*chunk, len(events))
		var buf bytes.Buffer
		for _, ev := range events[off:end] {
			line, err := session.MarshalNDJSON(ev)
			if err != nil {
				log.Fatal(err)
			}
			buf.Write(line)
		}
		for {
			resp, err := http.Post(eventsURL, "application/x-ndjson", bytes.NewReader(buf.Bytes()))
			if err != nil {
				log.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests {
				secs, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
				time.Sleep(time.Duration(max(secs, 1)) * time.Second)
				continue
			}
			if resp.StatusCode != http.StatusAccepted {
				log.Fatalf("ingest rejected (HTTP %d)", resp.StatusCode)
			}
			break
		}
	}

	// Close: the server drains the queue, squashes in-flight branches,
	// and returns the final scores — the same document offline replay of
	// this event stream produces.
	req, _ := http.NewRequest(http.MethodDelete, *addr+"/v1/sessions/"+opened.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	var final session.Scores
	if err := json.NewDecoder(resp.Body).Decode(&final); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	<-done // the live stream ends after its "final" event

	fmt.Printf("final: %d events, %d retires, %d mispredicts\n",
		final.Events, final.Retires, final.Mispredict)
	for _, e := range final.Estimators {
		switch {
		case e.PGoodpath != nil:
			fmt.Printf("  %s: P(goodpath)=%.3f\n", e.Kind, *e.PGoodpath)
		case e.LowConfidence != nil:
			fmt.Printf("  %s: low-confidence count=%d\n", e.Kind, *e.LowConfidence)
		}
	}
}

// synthesize generates a well-formed branch-event stream: each branch
// fetches, waits a few cycles, resolves, and retires; every 16th
// retire reports a mispredict, so the estimators have something to
// learn. (Real clients replay paco-trace recordings instead — see the
// `paco-trace stream` subcommand.)
func synthesize(n int) []trace.Event {
	var evs []trace.Event
	cycle := uint64(0)
	for i := 0; i < n; i++ {
		pc := uint64(0x4000 + 16*(i%64))
		mdc := uint8(i % 16)
		correct := i%16 != 0
		flags := uint8(1) // conditional
		evs = append(evs, trace.Event{Kind: trace.EvFetch, Tag: uint64(i), PC: pc, History: uint32(i), MDC: mdc, Flags: flags})
		cycle += 3
		evs = append(evs, trace.Event{Kind: trace.EvCycle, PC: cycle})
		evs = append(evs, trace.Event{Kind: trace.EvResolve, Tag: uint64(i)})
		retireFlags := flags
		if correct {
			retireFlags |= 2
		}
		evs = append(evs, trace.Event{Kind: trace.EvRetire, PC: pc, History: uint32(i), MDC: mdc, Flags: retireFlags})
	}
	return evs
}
