// Reliability: measure how well-calibrated PaCo's goodpath probability is
// on one benchmark, and render the reliability diagram (Figure 8) as an
// ASCII plot: predicted probability against observed probability, with the
// instance histogram.
//
// Usage: reliability [benchmark] (default parser, the paper's example)
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"paco"
	"paco/internal/core"
	"paco/internal/metrics"
)

func main() {
	bench := "parser"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	m, err := paco.NewMachine(paco.DefaultMachineConfig())
	if err != nil {
		log.Fatal(err)
	}
	spec, err := paco.Benchmark(bench)
	if err != nil {
		log.Fatal(err)
	}
	p := core.NewPaCo(core.PaCoConfig{})
	tid, err := m.AddThread(spec, []paco.Estimator{p})
	if err != nil {
		log.Fatal(err)
	}
	m.Run(400_000, 0)
	p.Refresh()
	m.ResetStats()
	rel := &metrics.Reliability{}
	m.SetProbe(func(_ int, goodpath bool) { rel.Add(p.GoodpathProb(), goodpath) })
	m.Run(1_500_000, 0)

	fmt.Printf("reliability diagram for %s (%d instances, RMS error %.4f)\n",
		bench, rel.Instances(), rel.RMSError())
	fmt.Println("x: predicted goodpath % (bucketed by 5), o: observed %, #: instance share")
	fmt.Println()
	pts := rel.Points()
	var maxCount uint64
	agg := map[int]*metrics.Point{}
	for _, pt := range pts {
		b := pt.Predicted / 5 * 5
		a := agg[b]
		if a == nil {
			agg[b] = &metrics.Point{Predicted: b, Observed: pt.Observed * float64(pt.Count), Count: pt.Count}
		} else {
			a.Observed += pt.Observed * float64(pt.Count)
			a.Count += pt.Count
		}
	}
	for _, a := range agg {
		if a.Count > maxCount {
			maxCount = a.Count
		}
	}
	fmt.Println("pred%   observed% (o) on 0..100 scale                              instances")
	for b := 0; b <= 100; b += 5 {
		a := agg[b]
		if a == nil {
			continue
		}
		obs := a.Observed / float64(a.Count)
		line := []byte(strings.Repeat(" ", 51))
		line[b/2] = 'x'
		pos := int(obs / 2)
		if pos > 50 {
			pos = 50
		}
		line[pos] = 'o'
		bar := strings.Repeat("#", int(40*a.Count/maxCount))
		fmt.Printf("%4d  |%s| %8d %s\n", b, string(line), a.Count, bar)
	}
	fmt.Println("\n(x = perfect calibration position; o overlapping x means well-calibrated)")
	_ = tid
	_ = m.IPC(tid)
}
