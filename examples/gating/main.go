// Gating: run one benchmark on the bundled out-of-order core with and
// without PaCo pipeline gating, and report the badpath-work reduction
// versus the performance cost (the paper's Section 5.1 mechanism on a
// single workload).
//
// Usage: gating [benchmark] (default bzip2)
package main

import (
	"fmt"
	"log"
	"os"

	"paco"
)

const (
	warmup  = 300_000
	measure = 1_000_000
)

func run(bench string, gate paco.Gate) (ipc float64, badExec, badFetch, gated uint64, err error) {
	m, err := paco.NewMachine(paco.DefaultMachineConfig())
	if err != nil {
		return 0, 0, 0, 0, err
	}
	spec, err := paco.Benchmark(bench)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	var ests []paco.Estimator
	if gate != nil {
		ests = append(ests, gate.Estimator())
	}
	tid, err := m.AddThread(spec, ests)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if gate != nil {
		m.SetGate(gate.ShouldGate)
	}
	m.Run(warmup, 0)
	m.ResetStats()
	m.Run(measure, 0)
	st := m.ThreadStats(tid)
	return m.IPC(tid), st.ExecutedBad, st.FetchedBad, st.GatedCycles, nil
}

func main() {
	bench := "bzip2"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	fmt.Printf("pipeline gating on %s (%d instructions measured)\n\n", bench, measure)

	baseIPC, baseExec, baseFetch, _, err := run(bench, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-14s IPC %.3f, badpath executed %d, badpath fetched %d\n",
		"no gating:", baseIPC, baseExec, baseFetch)

	for _, target := range []float64{0.05, 0.20, 0.50} {
		gate := paco.NewProbGate(target, 0)
		ipc, badExec, badFetch, gated, err := run(bench, gate)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("PaCo @ %3.0f%%:   IPC %.3f (%+.2f%%), badpath executed %+.1f%%, fetched %+.1f%%, gated %d cycles\n",
			target*100, ipc, 100*(ipc-baseIPC)/baseIPC,
			-100*(float64(baseExec)-float64(badExec))/float64(baseExec),
			-100*(float64(baseFetch)-float64(badFetch))/float64(baseFetch), gated)
	}

	gate := paco.NewCountGate(3, 2)
	ipc, badExec, badFetch, gated, err := run(bench, gate)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("JRS3 gate@2:   IPC %.3f (%+.2f%%), badpath executed %+.1f%%, fetched %+.1f%%, gated %d cycles\n",
		ipc, 100*(ipc-baseIPC)/baseIPC,
		-100*(float64(baseExec)-float64(badExec))/float64(baseExec),
		-100*(float64(baseFetch)-float64(badFetch))/float64(baseFetch), gated)
}
