// SMT fetch prioritization: run one benchmark pair on the paper's 8-wide
// two-thread machine under each fetch policy and compare HMWIPC (Section
// 5.2 on a single pair).
//
// Usage: smtfetch [benchA benchB] (default gap mcf — the pair the paper
// calls out where higher JRS thresholds beat threshold 3).
package main

import (
	"fmt"
	"log"
	"os"

	"paco/internal/cpu"
	"paco/internal/smt"
)

func main() {
	pair := smt.Pair{A: "gap", B: "mcf"}
	if len(os.Args) > 2 {
		pair = smt.Pair{A: os.Args[1], B: os.Args[2]}
	}
	rc := smt.RunConfig{
		WarmupCycles:  150_000,
		MeasureCycles: 500_000,
		Machine:       cpu.SMTConfig(),
	}
	fmt.Printf("SMT fetch prioritization on %s (HMWIPC; higher is better)\n\n", pair)

	singleA, err := smt.SingleIPC(rc, pair.A)
	if err != nil {
		log.Fatal(err)
	}
	singleB, err := smt.SingleIPC(rc, pair.B)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single-thread IPC: %s %.3f, %s %.3f\n\n", pair.A, singleA, pair.B, singleB)

	policies := []smt.Policy{
		&smt.RoundRobin{},
		smt.ICount{},
		smt.ConfCount{Threshold: 3},
		smt.ConfCount{Threshold: 7},
		smt.ConfCount{Threshold: 11},
		smt.ConfCount{Threshold: 15},
		&smt.PaCoPolicy{},
	}
	for _, pol := range policies {
		a, b, err := smt.RunPair(rc, pair, pol)
		if err != nil {
			log.Fatal(err)
		}
		h := smt.HMWIPCForPair(singleA, singleB, a, b)
		fmt.Printf("%-10s IPCs %.3f / %.3f -> HMWIPC %.3f\n", pol.Name(), a, b, h)
	}
}
