package cache

import (
	"testing"
	"testing/quick"
)

func small() *Cache {
	return New(Config{Name: "t", SizeKB: 1, Ways: 2, LineSize: 64}) // 8 sets x 2 ways
}

func TestMissThenHit(t *testing.T) {
	c := small()
	if c.Access(0x100, false) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x100, false) {
		t.Fatal("second access missed")
	}
	if !c.Access(0x13f, false) {
		t.Fatal("same-line access missed")
	}
	if c.Access(0x140, false) {
		t.Fatal("next-line access hit cold")
	}
}

func TestLRUReplacement(t *testing.T) {
	c := small() // 8 sets: addresses 64*8 apart map to the same set
	setStride := uint64(64 * 8)
	a, b, d := uint64(0), setStride, 2*setStride
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a most recent
	c.Access(d, false) // evicts b (LRU)
	if !c.Access(a, false) {
		t.Fatal("MRU line evicted")
	}
	if c.Access(b, false) {
		t.Fatal("LRU line survived")
	}
}

func TestBadpathPollutionAccounting(t *testing.T) {
	c := small()
	setStride := uint64(64 * 8)
	c.Access(0, false)          // goodpath fill
	c.Access(setStride, true)   // badpath fill
	c.Access(2*setStride, true) // badpath fill evicts the goodpath line (LRU)
	st := c.Stats()
	if st.BadFills != 2 {
		t.Fatalf("badFills = %d", st.BadFills)
	}
	if st.BadEvictions != 1 {
		t.Fatalf("badEvictions = %d, want 1 (goodpath-used line evicted by badpath)", st.BadEvictions)
	}
	if st.BadAccesses != 2 {
		t.Fatalf("badAccesses = %d", st.BadAccesses)
	}
}

func TestMissRate(t *testing.T) {
	c := small()
	c.Access(0, false)
	c.Access(0, false)
	if got := c.MissRate(); got != 0.5 {
		t.Fatalf("miss rate %v", got)
	}
	if New(Config{Name: "x", SizeKB: 1, Ways: 1, LineSize: 64}).MissRate() != 0 {
		t.Fatal("untouched cache miss rate must be 0")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	New(Config{Name: "bad", SizeKB: 0, Ways: 1, LineSize: 64})
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	// Cold: L1 miss + L2 miss.
	if lat := h.DataLatency(0x1234, false); lat != 110 {
		t.Fatalf("cold data latency %d, want 110", lat)
	}
	// Warm L1.
	if lat := h.DataLatency(0x1234, false); lat != 0 {
		t.Fatalf("warm data latency %d, want 0", lat)
	}
	if lat := h.FetchLatency(0x9000, false); lat != 110 {
		t.Fatalf("cold fetch latency %d, want 110", lat)
	}
	if lat := h.FetchLatency(0x9000, false); lat != 0 {
		t.Fatalf("warm fetch latency %d", lat)
	}
}

func TestHierarchyL2Hit(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	h.DataLatency(0x40, false) // fill both levels
	// Thrash L1D set with conflicting lines; L2 is bigger and keeps them.
	stride := uint64(64 * 128) // L1D set stride (32KB/4w/64B = 128 sets)
	for i := uint64(1); i <= 8; i++ {
		h.DataLatency(0x40+i*stride, false)
	}
	// Original line: L1 miss but should hit in the 512KB L2.
	if lat := h.DataLatency(0x40, false); lat != h.L1DMissPenalty {
		t.Fatalf("L2-hit latency %d, want %d", lat, h.L1DMissPenalty)
	}
}

// TestAccessAlwaysFills: property — any address hits immediately after
// being accessed.
func TestAccessAlwaysFills(t *testing.T) {
	c := New(Config{Name: "p", SizeKB: 4, Ways: 4, LineSize: 64})
	if err := quick.Check(func(addr uint64, bad bool) bool {
		c.Access(addr, bad)
		return c.Access(addr, bad)
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
