// Package cache models the memory hierarchy of the paper's Table 6: 32KB
// 4-way L1 instruction and data caches and a 512KB 8-way unified L2, with
// true-LRU replacement and fixed miss latencies. It tracks enough state to
// reproduce the badpath-pollution effects the paper observes: wrong-path
// fills evict goodpath-touched lines, and the statistics distinguish
// goodpath from badpath accesses.
package cache

// Cache is one set-associative cache level with LRU replacement.
type Cache struct {
	name      string
	sets      [][]line
	setMask   uint64
	lineShift uint
	tagShift  uint
	lruTick   uint64 // strictly increasing recency stamp

	accesses     uint64
	misses       uint64
	badAccesses  uint64
	badFills     uint64
	badEvictions uint64 // goodpath-touched lines evicted by badpath fills
}

type line struct {
	valid    bool
	tag      uint64
	lru      uint64
	badFill  bool // line was filled by a badpath access
	goodUsed bool // line has been touched by a goodpath access
}

// Config sizes one cache level.
type Config struct {
	Name     string
	SizeKB   int
	Ways     int
	LineSize int
}

// New builds a cache from cfg.
func New(cfg Config) *Cache {
	if cfg.SizeKB <= 0 || cfg.Ways <= 0 || cfg.LineSize <= 0 {
		panic("cache: invalid config")
	}
	lines := cfg.SizeKB * 1024 / cfg.LineSize
	setCount := lines / cfg.Ways
	if setCount < 1 || setCount&(setCount-1) != 0 {
		panic("cache: set count must be a positive power of two")
	}
	shift := uint(0)
	for 1<<shift < cfg.LineSize {
		shift++
	}
	c := &Cache{
		name:      cfg.Name,
		sets:      make([][]line, setCount),
		setMask:   uint64(setCount - 1),
		lineShift: shift,
		tagShift:  uint(popcount(uint64(setCount - 1))),
	}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	return c
}

// Access looks up addr, filling on miss. badpath marks the access as
// wrong-path for pollution accounting. It returns whether the access hit.
func (c *Cache) Access(addr uint64, badpath bool) bool {
	c.accesses++
	if badpath {
		c.badAccesses++
	}
	blk := addr >> c.lineShift
	set := c.sets[blk&c.setMask]
	tag := blk >> c.tagShift
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			c.touch(set, i)
			if !badpath {
				set[i].goodUsed = true
			}
			return true
		}
	}
	c.misses++
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	if badpath {
		c.badFills++
		if set[victim].valid && set[victim].goodUsed {
			c.badEvictions++
		}
	}
	set[victim] = line{valid: true, tag: tag, badFill: badpath, goodUsed: !badpath}
	c.touch(set, victim)
	return false
}

// touch stamps line i as the set's most recently used. A cache-wide
// strictly increasing tick replaces the seed's max-scan-plus-one: both
// schemes assign a value strictly greater than every live line's stamp,
// so the recency order — and therefore every LRU victim choice — is
// identical, without the O(ways) scan per access.
func (c *Cache) touch(set []line, i int) {
	c.lruTick++
	set[i].lru = c.lruTick
}

// Stats reports lifetime counters.
type Stats struct {
	Name         string
	Accesses     uint64
	Misses       uint64
	BadAccesses  uint64
	BadFills     uint64
	BadEvictions uint64
}

// Stats returns a snapshot of the cache's counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Name:         c.name,
		Accesses:     c.accesses,
		Misses:       c.misses,
		BadAccesses:  c.badAccesses,
		BadFills:     c.badFills,
		BadEvictions: c.badEvictions,
	}
}

// MissRate returns misses/accesses, or 0 for an untouched cache.
func (c *Cache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

func popcount(mask uint64) int {
	n := 0
	for mask != 0 {
		n += int(mask & 1)
		mask >>= 1
	}
	return n
}

// Hierarchy is the two-level hierarchy of Table 6 with fixed per-level miss
// costs: an L1 miss that hits L2 costs L1MissPenalty; an L2 miss costs an
// additional L2MissPenalty.
type Hierarchy struct {
	L1I *Cache
	L1D *Cache
	L2  *Cache

	L1IMissPenalty uint64
	L1DMissPenalty uint64
	L2MissPenalty  uint64
}

// HierarchyConfig sizes the hierarchy; DefaultHierarchyConfig matches
// Table 6.
type HierarchyConfig struct {
	L1I, L1D, L2                                  Config
	L1IMissPenalty, L1DMissPenalty, L2MissPenalty uint64
}

// DefaultHierarchyConfig returns the paper's Table 6 memory system: 32KB
// 4-way L1I (128B lines, 10 cycle miss), 32KB 4-way L1D (64B lines, 10
// cycle miss), 512KB 8-way L2 (128B lines, 100 cycle miss).
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1I:            Config{Name: "L1I", SizeKB: 32, Ways: 4, LineSize: 128},
		L1D:            Config{Name: "L1D", SizeKB: 32, Ways: 4, LineSize: 64},
		L2:             Config{Name: "L2", SizeKB: 512, Ways: 8, LineSize: 128},
		L1IMissPenalty: 10,
		L1DMissPenalty: 10,
		L2MissPenalty:  100,
	}
}

// NewHierarchy builds the hierarchy from cfg.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	return &Hierarchy{
		L1I:            New(cfg.L1I),
		L1D:            New(cfg.L1D),
		L2:             New(cfg.L2),
		L1IMissPenalty: cfg.L1IMissPenalty,
		L1DMissPenalty: cfg.L1DMissPenalty,
		L2MissPenalty:  cfg.L2MissPenalty,
	}
}

// FetchLatency returns the extra cycles (beyond the pipelined hit path) to
// fetch the instruction block at addr.
func (h *Hierarchy) FetchLatency(addr uint64, badpath bool) uint64 {
	if h.L1I.Access(addr, badpath) {
		return 0
	}
	if h.L2.Access(addr, badpath) {
		return h.L1IMissPenalty
	}
	return h.L1IMissPenalty + h.L2MissPenalty
}

// DataLatency returns the extra cycles for a load/store to addr.
func (h *Hierarchy) DataLatency(addr uint64, badpath bool) uint64 {
	if h.L1D.Access(addr, badpath) {
		return 0
	}
	if h.L2.Access(addr, badpath) {
		return h.L1DMissPenalty
	}
	return h.L1DMissPenalty + h.L2MissPenalty
}
