// Package gating implements pipeline gating (Manne et al.; paper Section
// 5.1): instruction fetch is suppressed while the processor is judged
// likely to be on the wrong path. Two judges are provided — the
// conventional gate-count over unresolved low-confidence branches, and
// PaCo's target goodpath probability, converted once into an encoded
// threshold so the runtime comparison is a single integer compare.
package gating

import (
	"fmt"

	"paco/internal/bitutil"
	"paco/internal/core"
)

// Gate is a fetch-gating policy bound to a path confidence estimator.
type Gate interface {
	// Name labels the gate in tables.
	Name() string
	// Estimator returns the estimator that must observe the gated thread.
	Estimator() core.Estimator
	// ShouldGate reports whether fetch should be suppressed this cycle.
	ShouldGate() bool
}

// CountGate is the conventional scheme: gate while the number of
// unresolved low-confidence branches is at or above GateCount.
type CountGate struct {
	threshold uint32
	gateCount int
	cnt       *core.CountPredictor
}

// NewCountGate builds a counter gate with the given JRS confidence
// threshold and gate-count.
func NewCountGate(threshold uint32, gateCount int) *CountGate {
	return &CountGate{
		threshold: threshold,
		gateCount: gateCount,
		cnt:       core.NewCountPredictor(threshold),
	}
}

// Name implements Gate.
func (g *CountGate) Name() string {
	return fmt.Sprintf("JRS-thr%d-gate%d", g.threshold, g.gateCount)
}

// Estimator implements Gate.
func (g *CountGate) Estimator() core.Estimator { return g.cnt }

// ShouldGate implements Gate.
func (g *CountGate) ShouldGate() bool { return g.cnt.Count() >= g.gateCount }

// ProbGate is PaCo's scheme: gate while the predicted goodpath probability
// is below a target. The target is encoded once (Section 3.2's
// "reconverting" discussion); at runtime the gate compares the running
// integer sum against it.
type ProbGate struct {
	target    float64
	threshold int64
	paco      *core.PaCo
}

// NewProbGate builds a PaCo gate with the given target goodpath
// probability (e.g. 0.20 to gate below 20%) and MRT refresh period
// (0 = default).
func NewProbGate(target float64, refreshPeriod uint64) *ProbGate {
	return &ProbGate{
		target:    target,
		threshold: bitutil.EncodeProbThreshold(target),
		paco:      core.NewPaCo(core.PaCoConfig{RefreshPeriod: refreshPeriod}),
	}
}

// Name implements Gate.
func (g *ProbGate) Name() string { return fmt.Sprintf("PaCo-%.0f%%", g.target*100) }

// Estimator implements Gate.
func (g *ProbGate) Estimator() core.Estimator { return g.paco }

// ShouldGate implements Gate.
func (g *ProbGate) ShouldGate() bool { return g.paco.EncodedSum() > g.threshold }

// PaCo exposes the underlying estimator (diagnostics).
func (g *ProbGate) PaCo() *core.PaCo { return g.paco }

// Target returns the configured goodpath probability target.
func (g *ProbGate) Target() float64 { return g.target }
