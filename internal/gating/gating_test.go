package gating

import (
	"strings"
	"testing"

	"paco/internal/core"
)

func TestCountGate(t *testing.T) {
	g := NewCountGate(3, 2)
	if g.ShouldGate() {
		t.Fatal("empty machine gated")
	}
	cnt := g.Estimator().(*core.CountPredictor)
	ev := core.BranchEvent{MDC: 0, Conditional: true}
	c1 := cnt.BranchFetched(ev)
	if g.ShouldGate() {
		t.Fatal("gated below gate-count")
	}
	c2 := cnt.BranchFetched(ev)
	if !g.ShouldGate() {
		t.Fatal("did not gate at gate-count")
	}
	cnt.BranchResolved(c1)
	cnt.BranchResolved(c2)
	if g.ShouldGate() {
		t.Fatal("gated after branches resolved")
	}
	if !strings.Contains(g.Name(), "thr3") || !strings.Contains(g.Name(), "gate2") {
		t.Fatalf("name %q", g.Name())
	}
}

func TestCountGateIgnoresHighConfidence(t *testing.T) {
	g := NewCountGate(3, 1)
	cnt := g.Estimator().(*core.CountPredictor)
	cnt.BranchFetched(core.BranchEvent{MDC: 9, Conditional: true})
	if g.ShouldGate() {
		t.Fatal("high-confidence branch triggered the gate")
	}
}

func TestProbGate(t *testing.T) {
	g := NewProbGate(0.20, 1000)
	p := g.PaCo()
	if g.ShouldGate() {
		t.Fatal("certain-goodpath machine gated")
	}
	// Accumulate enough encoded probability to cross below 20%.
	var contribs []core.Contribution
	for i := 0; i < 50 && !g.ShouldGate(); i++ {
		contribs = append(contribs, p.BranchFetched(core.BranchEvent{MDC: 0, Conditional: true}))
	}
	if !g.ShouldGate() {
		t.Fatal("gate never engaged as confidence collapsed")
	}
	if p.GoodpathProb() >= g.Target() {
		t.Fatalf("gated while decoded probability %.3f >= target", p.GoodpathProb())
	}
	for _, c := range contribs {
		p.BranchResolved(c)
	}
	if g.ShouldGate() {
		t.Fatal("gate stuck after branches resolved")
	}
	if !strings.Contains(g.Name(), "20%") {
		t.Fatalf("name %q", g.Name())
	}
}

func TestProbGateThresholdMonotone(t *testing.T) {
	// A stricter (higher) target must gate no later than a looser one.
	loose := NewProbGate(0.05, 0)
	strict := NewProbGate(0.50, 0)
	ev := core.BranchEvent{MDC: 0, Conditional: true}
	for i := 0; i < 100; i++ {
		loose.PaCo().BranchFetched(ev)
		strict.PaCo().BranchFetched(ev)
		if loose.ShouldGate() && !strict.ShouldGate() {
			t.Fatal("loose gate engaged before strict gate")
		}
	}
	if !loose.ShouldGate() {
		t.Fatal("even the loose gate should engage eventually")
	}
}
