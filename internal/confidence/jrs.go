// Package confidence implements branch confidence estimation: the enhanced
// JRS predictor (Grunwald et al., "Confidence estimation for speculation
// control") used by the paper as both the conventional baseline's classifier
// and PaCo's stratifier.
//
// The JRS predictor keeps a table of 4-bit saturating miss distance counters
// (MDCs). An MDC counts consecutive correct predictions of the branches that
// hash to it: incremented on a correct prediction, reset on a mispredict.
// High MDC values indicate predictable branches. The enhanced variant folds
// the predicted direction into the hash.
package confidence

import "paco/internal/bitutil"

// MDCBits is the width of each miss distance counter (paper: 4-bit MDCs).
const MDCBits = 4

// MDCMax is the saturation value of an MDC (15 for 4-bit counters), and
// therefore the number of MDC buckets is MDCMax+1.
const MDCMax = 1<<MDCBits - 1

// NumBuckets is the number of distinct MDC values, i.e. the number of
// stratification buckets PaCo's MRT tracks.
const NumBuckets = MDCMax + 1

// JRS is the enhanced JRS confidence table: 8KB of 4-bit MDCs = 16384
// entries, indexed by (PC >> 2) XOR global-history XOR predicted-direction.
type JRS struct {
	mdcs     []bitutil.SatCounter
	mask     uint64
	enhanced bool
}

// Config sizes and flavours a JRS table.
type Config struct {
	// Entries is the number of MDCs (rounded up to a power of two).
	// The paper's 8KB table of 4-bit counters is 16384 entries.
	Entries int
	// Enhanced folds the predicted direction into the index (Grunwald's
	// enhanced JRS, the paper's choice).
	Enhanced bool
}

// DefaultConfig is the paper's 8KB enhanced JRS table.
func DefaultConfig() Config {
	return Config{Entries: 16384, Enhanced: true}
}

// New builds a JRS table from cfg. MDCs initialize to zero (everything is
// low-confidence until it proves itself, matching cold hardware).
func New(cfg Config) *JRS {
	n := 1
	for n < cfg.Entries {
		n <<= 1
	}
	j := &JRS{
		mdcs:     make([]bitutil.SatCounter, n),
		mask:     uint64(n - 1),
		enhanced: cfg.Enhanced,
	}
	for i := range j.mdcs {
		j.mdcs[i] = bitutil.NewSatCounter(MDCBits, 0)
	}
	return j
}

func (j *JRS) index(pc uint64, history uint32, predictedTaken bool) uint64 {
	idx := (pc >> 2) ^ uint64(history)
	if j.enhanced && predictedTaken {
		idx ^= 1
	}
	return idx & j.mask
}

// MDC returns the miss distance counter value for a branch at prediction
// time. The value doubles as PaCo's stratification bucket.
func (j *JRS) MDC(pc uint64, history uint32, predictedTaken bool) uint32 {
	return j.mdcs[j.index(pc, history, predictedTaken)].Value()
}

// Update trains the table with a resolved branch: the entry's MDC is
// incremented (saturating) on a correct prediction and reset on a
// mispredict. pc/history/predictedTaken must be the values used at
// prediction time.
func (j *JRS) Update(pc uint64, history uint32, predictedTaken, correct bool) {
	c := &j.mdcs[j.index(pc, history, predictedTaken)]
	if correct {
		c.Inc()
	} else {
		c.Reset()
	}
}

// Classifier converts MDC values into the 1-bit high/low confidence signal
// used by threshold-and-count path confidence predictors: branches with
// MDC >= Threshold are high confidence.
type Classifier struct {
	// Threshold is the minimum MDC value considered high confidence.
	// The paper uses thresholds 3, 7, 11 and 15 in its sweeps, with 3 the
	// conventional best.
	Threshold uint32
}

// LowConfidence reports whether a branch with the given MDC value is
// classified low confidence.
func (c Classifier) LowConfidence(mdc uint32) bool { return mdc < c.Threshold }
