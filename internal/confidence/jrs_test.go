package confidence

import (
	"testing"
	"testing/quick"
)

func TestMDCTracksMissDistance(t *testing.T) {
	j := New(DefaultConfig())
	pc, hist := uint64(0x1000), uint32(0x2a)
	if j.MDC(pc, hist, true) != 0 {
		t.Fatal("cold MDC must be 0")
	}
	for i := uint32(1); i <= 5; i++ {
		j.Update(pc, hist, true, true)
		if got := j.MDC(pc, hist, true); got != i {
			t.Fatalf("after %d corrects MDC = %d", i, got)
		}
	}
	j.Update(pc, hist, true, false)
	if got := j.MDC(pc, hist, true); got != 0 {
		t.Fatalf("MDC after mispredict = %d, want 0", got)
	}
}

func TestMDCSaturates(t *testing.T) {
	j := New(DefaultConfig())
	pc, hist := uint64(0x2000), uint32(3)
	for i := 0; i < 100; i++ {
		j.Update(pc, hist, false, true)
	}
	if got := j.MDC(pc, hist, false); got != MDCMax {
		t.Fatalf("MDC saturated at %d, want %d", got, MDCMax)
	}
}

// TestEnhancedIndexSeparatesDirections: the enhanced JRS folds the
// predicted direction into the hash, so taken/not-taken predictions of the
// same branch use different MDCs.
func TestEnhancedIndexSeparatesDirections(t *testing.T) {
	j := New(Config{Entries: 1024, Enhanced: true})
	pc, hist := uint64(0x3000), uint32(0)
	for i := 0; i < 7; i++ {
		j.Update(pc, hist, true, true)
	}
	if j.MDC(pc, hist, true) == 0 {
		t.Fatal("trained direction should have non-zero MDC")
	}
	if j.MDC(pc, hist, false) != 0 {
		t.Fatal("untrained direction should be cold in the enhanced table")
	}
}

func TestBasicJRSIgnoresDirection(t *testing.T) {
	j := New(Config{Entries: 1024, Enhanced: false})
	pc, hist := uint64(0x3000), uint32(0)
	for i := 0; i < 7; i++ {
		j.Update(pc, hist, true, true)
	}
	if j.MDC(pc, hist, true) != j.MDC(pc, hist, false) {
		t.Fatal("non-enhanced table must ignore predicted direction")
	}
}

func TestHistoryAffectsIndex(t *testing.T) {
	j := New(DefaultConfig())
	pc := uint64(0x4000)
	for i := 0; i < 9; i++ {
		j.Update(pc, 0x11, true, true)
	}
	if j.MDC(pc, 0x12, true) == j.MDC(pc, 0x11, true) && j.MDC(pc, 0x12, true) != 0 {
		t.Fatal("different histories unexpectedly share a trained entry")
	}
}

func TestClassifier(t *testing.T) {
	c := Classifier{Threshold: 3}
	for mdc := uint32(0); mdc < 3; mdc++ {
		if !c.LowConfidence(mdc) {
			t.Fatalf("MDC %d should be low confidence at threshold 3", mdc)
		}
	}
	for mdc := uint32(3); mdc <= MDCMax; mdc++ {
		if c.LowConfidence(mdc) {
			t.Fatalf("MDC %d should be high confidence at threshold 3", mdc)
		}
	}
}

// TestMDCNeverExceedsMax is a property over arbitrary update sequences.
func TestMDCNeverExceedsMax(t *testing.T) {
	j := New(Config{Entries: 256, Enhanced: true})
	if err := quick.Check(func(pc uint64, hist uint32, pred, correct bool) bool {
		j.Update(pc, hist, pred, correct)
		return j.MDC(pc, hist, pred) <= MDCMax
	}, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestEntriesRounding(t *testing.T) {
	j := New(Config{Entries: 1000, Enhanced: true})
	// 1000 rounds up to 1024; just verify the table works.
	j.Update(0x10, 0, true, true)
	if j.MDC(0x10, 0, true) != 1 {
		t.Fatal("rounded table broken")
	}
}
