package confidence

import (
	"testing"

	"paco/internal/rng"
)

func TestPerceptronColdIsLowConfidence(t *testing.T) {
	p := NewPerceptron(DefaultPerceptronConfig())
	if got := p.Confidence(0x1000, 0); got != 0 {
		t.Fatalf("cold confidence = %d, want 0", got)
	}
}

func TestPerceptronGainsConfidenceWhenCorrect(t *testing.T) {
	p := NewPerceptron(DefaultPerceptronConfig())
	pc, hist := uint64(0x2000), uint32(0x5A)
	for i := 0; i < 200; i++ {
		p.Update(pc, hist, true)
	}
	// Under theta training the margin settles near Theta: roughly the
	// middle of the bucket scale.
	if got := p.Confidence(pc, hist); got < 6 {
		t.Fatalf("always-correct branch confidence = %d, want >= 6", got)
	}
}

func TestPerceptronLosesConfidenceWhenWrong(t *testing.T) {
	p := NewPerceptron(DefaultPerceptronConfig())
	pc, hist := uint64(0x3000), uint32(0x33)
	for i := 0; i < 200; i++ {
		p.Update(pc, hist, true)
	}
	high := p.Confidence(pc, hist)
	for i := 0; i < 200; i++ {
		p.Update(pc, hist, false)
	}
	low := p.Confidence(pc, hist)
	if low >= high {
		t.Fatalf("confidence did not drop after mispredicts: %d -> %d", high, low)
	}
}

func TestPerceptronHistorySensitivity(t *testing.T) {
	p := NewPerceptron(DefaultPerceptronConfig())
	pc := uint64(0x4000)
	// Correct under history A, wrong under history B.
	for i := 0; i < 300; i++ {
		p.Update(pc, 0xFF, true)
		p.Update(pc, 0x00, false)
	}
	confA := p.Confidence(pc, 0xFF)
	confB := p.Confidence(pc, 0x00)
	if confA == confB {
		t.Skip("histories aliased for this configuration")
	}
	// The perceptron should discriminate the histories (either margin
	// direction counts as signal; at minimum they differ).
}

func TestPerceptronBucketRange(t *testing.T) {
	p := NewPerceptron(PerceptronConfig{Entries: 64, HistoryBits: 8, WeightMax: 31})
	r := rng.New(17)
	for i := 0; i < 20000; i++ {
		pc := uint64(r.Intn(1024)) * 4
		hist := r.Uint32() & 0xFF
		p.Update(pc, hist, r.Bool(0.7))
		if b := p.Confidence(pc, hist); b > MDCMax {
			t.Fatalf("bucket %d out of MDC range", b)
		}
	}
}

func TestPerceptronDefaultsApplied(t *testing.T) {
	p := NewPerceptron(PerceptronConfig{})
	if p.cfg.Entries <= 0 || p.cfg.HistoryBits == 0 || p.cfg.WeightMax <= 0 {
		t.Fatalf("defaults not applied: %+v", p.cfg)
	}
}

// TestPerceptronStratifiesRates: train a predictable and an unpredictable
// branch; the correct-prediction margins must place the predictable one in
// a strictly higher confidence bucket.
func TestPerceptronStratifiesRates(t *testing.T) {
	p := NewPerceptron(DefaultPerceptronConfig())
	r := rng.New(23)
	easy, hard := uint64(0x100), uint64(0x2040)
	hist := uint32(0)
	for i := 0; i < 5000; i++ {
		p.Update(easy, hist, r.Bool(0.98))
		p.Update(hard, hist, r.Bool(0.55))
		hist = (hist << 1) & 0xFF
	}
	if p.Confidence(easy, hist) <= p.Confidence(hard, hist) {
		t.Fatalf("easy bucket %d <= hard bucket %d",
			p.Confidence(easy, hist), p.Confidence(hard, hist))
	}
}
