package confidence

// Perceptron branch confidence estimation (Akkary, Srinivasan, Koltur,
// Patil, Refaai: "Perceptron-based branch confidence estimation", HPCA-10,
// 2004) — the paper's Related Work names it as a better stratifier that
// PaCo could plug in unchanged ("a better branch confidence predictor
// would simply provide a better stratifier").
//
// Each table entry is a signed-weight perceptron over the global history:
// the magnitude of the dot product measures how strongly history predicts
// the branch, i.e. its confidence. To remain drop-in compatible with
// PaCo's Mispredict Rate Table, the output is quantized onto the same
// 0..15 bucket scale as the JRS MDC.

// PerceptronConfig sizes a perceptron confidence table.
type PerceptronConfig struct {
	// Entries is the number of perceptrons (rounded up to a power of
	// two).
	Entries int
	// HistoryBits is the number of history inputs per perceptron (<= 32).
	HistoryBits uint
	// WeightMax bounds weight magnitude (training saturates there).
	WeightMax int32
	// Theta is the training margin: entries train only on a mispredict
	// or while |output| < Theta (the standard perceptron-predictor rule,
	// theta ~= 1.93*h + 14). Without it every mostly-correct branch
	// saturates to the same confidence and the stratification collapses.
	Theta int32
}

// DefaultPerceptronConfig roughly matches the hardware budget of the 8KB
// JRS table: 512 perceptrons x 9 weights x ~2 bytes.
func DefaultPerceptronConfig() PerceptronConfig {
	return PerceptronConfig{Entries: 512, HistoryBits: 8, WeightMax: 127, Theta: 29}
}

// Perceptron is the confidence table.
type Perceptron struct {
	cfg     PerceptronConfig
	weights [][]int32 // [entry][HistoryBits+1], index 0 is the bias
	mask    uint64
	// outMax is the maximum |output|, used to quantize onto 0..15.
	outMax int32
}

// NewPerceptron builds a perceptron confidence table from cfg.
func NewPerceptron(cfg PerceptronConfig) *Perceptron {
	if cfg.Entries <= 0 {
		cfg = DefaultPerceptronConfig()
	}
	if cfg.HistoryBits == 0 || cfg.HistoryBits > 32 {
		cfg.HistoryBits = 8
	}
	if cfg.WeightMax <= 0 {
		cfg.WeightMax = 127
	}
	if cfg.Theta <= 0 {
		cfg.Theta = int32(float64(cfg.HistoryBits)*1.93 + 14)
	}
	n := 1
	for n < cfg.Entries {
		n <<= 1
	}
	p := &Perceptron{
		cfg:  cfg,
		mask: uint64(n - 1),
		// Margins hover around Theta under threshold training; quantize
		// confidence over [0, 2*Theta).
		outMax: 2 * cfg.Theta,
	}
	p.weights = make([][]int32, n)
	for i := range p.weights {
		p.weights[i] = make([]int32, cfg.HistoryBits+1)
	}
	return p
}

func (p *Perceptron) index(pc uint64) uint64 { return (pc >> 2) & p.mask }

// output computes the signed dot product of the entry's weights with the
// bipolar history (+1 taken, -1 not taken).
func (p *Perceptron) output(pc uint64, history uint32) int32 {
	w := p.weights[p.index(pc)]
	out := w[0]
	for i := uint(0); i < p.cfg.HistoryBits; i++ {
		if history>>i&1 == 1 {
			out += w[i+1]
		} else {
			out -= w[i+1]
		}
	}
	return out
}

// Confidence returns the branch's confidence as a 0..15 bucket (higher =
// more confident), compatible with the MDC bucket scale PaCo stratifies
// on. The signed perceptron output is the correctness margin: strongly
// positive means the history confidently predicts a correct prediction;
// zero or negative means low confidence.
func (p *Perceptron) Confidence(pc uint64, history uint32) uint32 {
	out := p.output(pc, history)
	if out <= 0 {
		return 0
	}
	bucket := uint32(int64(out) * NumBuckets / int64(p.outMax+1))
	if bucket > MDCMax {
		bucket = MDCMax
	}
	return bucket
}

// Update trains the entry toward agreeing (positive output) when the
// prediction was correct and disagreeing when it mispredicted —
// perceptron confidence learns |output| as a correctness margin. The
// threshold rule applies: no training once the margin exceeds Theta on a
// correct prediction, so the margin's steady state tracks the branch's
// correctness rate instead of saturating.
func (p *Perceptron) Update(pc uint64, history uint32, correct bool) {
	out := p.output(pc, history)
	if correct && out >= p.cfg.Theta {
		return
	}
	w := p.weights[p.index(pc)]
	dir := int32(1)
	if !correct {
		dir = -1
	}
	clamp := func(v int32) int32 {
		if v > p.cfg.WeightMax {
			return p.cfg.WeightMax
		}
		if v < -p.cfg.WeightMax {
			return -p.cfg.WeightMax
		}
		return v
	}
	w[0] = clamp(w[0] + dir)
	for i := uint(0); i < p.cfg.HistoryBits; i++ {
		x := int32(-1)
		if history>>i&1 == 1 {
			x = 1
		}
		w[i+1] = clamp(w[i+1] + dir*x)
	}
}
