package bitutil

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSatCounterBounds(t *testing.T) {
	c := NewSatCounter(2, 0)
	for i := 0; i < 10; i++ {
		c.Inc()
	}
	if c.Value() != 3 {
		t.Fatalf("2-bit counter saturated at %d, want 3", c.Value())
	}
	if !c.AtMax() || !c.MSB() {
		t.Fatal("saturated counter should be AtMax with MSB set")
	}
	for i := 0; i < 10; i++ {
		c.Dec()
	}
	if c.Value() != 0 {
		t.Fatalf("counter under-saturated at %d", c.Value())
	}
	if c.MSB() {
		t.Fatal("zero counter must not have MSB set")
	}
}

func TestSatCounterSetClamps(t *testing.T) {
	c := NewSatCounter(4, 99)
	if c.Value() != 15 {
		t.Fatalf("initial clamp: %d", c.Value())
	}
	c.Set(100)
	if c.Value() != 15 {
		t.Fatalf("Set clamp: %d", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestSatCounterWidthPanics(t *testing.T) {
	for _, w := range []uint{0, 32} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("width %d did not panic", w)
				}
			}()
			NewSatCounter(w, 0)
		}()
	}
}

func TestLog2FixedExactPowers(t *testing.T) {
	for k := uint32(0); k < 20; k++ {
		got := Log2Fixed(1 << k)
		if got != k*LogScale {
			t.Fatalf("Log2Fixed(2^%d) = %d, want %d", k, got, k*LogScale)
		}
	}
}

// TestLog2FixedMitchellBound checks the classic Mitchell error bound: the
// approximation underestimates log2 by at most ~0.0861, plus up to 1/1024
// of fraction-truncation error when the characteristic exceeds the Q10
// fraction width.
func TestLog2FixedMitchellBound(t *testing.T) {
	if err := quick.Check(func(raw uint32) bool {
		v := raw%1_000_000 + 1
		e := Log2Error(v)
		return e >= -0.0001 && e <= 0.0861+1.0/1024+0.0001
	}, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestLog2FixedMonotonic(t *testing.T) {
	prev := Log2Fixed(1)
	for v := uint32(2); v < 5000; v++ {
		cur := Log2Fixed(v)
		if cur < prev {
			t.Fatalf("Log2Fixed not monotonic at %d: %d < %d", v, cur, prev)
		}
		prev = cur
	}
}

func TestLog2FixedZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Log2Fixed(0) did not panic")
		}
	}()
	Log2Fixed(0)
}

func TestEncodeRateBasics(t *testing.T) {
	if EncodeRate(100, 0) != 0 {
		t.Fatal("perfect bucket must encode to 0")
	}
	if EncodeRate(0, 50) != EncodedMax {
		t.Fatal("all-mispredict bucket must clamp to EncodedMax")
	}
	// 50% correct: -log2(0.5)*1024 = 1024.
	enc := EncodeRate(512, 512)
	if enc < 900 || enc > 1150 {
		t.Fatalf("EncodeRate(512,512) = %d, want ~1024", enc)
	}
}

// TestEncodeRateTracksExact compares the Mitchell-circuit encoding with the
// floating-point reference across the counter range: the two logs' errors
// partially cancel, keeping the difference within ~180 encoded units.
func TestEncodeRateTracksExact(t *testing.T) {
	if err := quick.Check(func(cRaw, mRaw uint32) bool {
		c := cRaw%1023 + 1
		m := mRaw % 63
		enc := EncodeRate(c, m)
		exact := ExactEncode(float64(c) / float64(c+m))
		d := int64(enc) - int64(exact)
		if d < 0 {
			d = -d
		}
		return d <= 180 || (enc == EncodedMax && exact >= EncodedMax-180)
	}, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestExactEncodeEdges(t *testing.T) {
	if ExactEncode(0) != EncodedMax || ExactEncode(-1) != EncodedMax {
		t.Fatal("non-positive probability must clamp to EncodedMax")
	}
	if ExactEncode(1) != 0 || ExactEncode(2) != 0 {
		t.Fatal("probability >= 1 must encode to 0")
	}
	if got := ExactEncode(0.5); got != 1024 {
		t.Fatalf("ExactEncode(0.5) = %d, want 1024", got)
	}
}

// TestEncodeDecodeRoundTrip checks that decoding an exact encoding
// recovers the probability within the quantization error.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	if err := quick.Check(func(raw uint32) bool {
		p := 0.07 + 0.92*float64(raw%10000)/10000
		enc := ExactEncode(p)
		back := DecodeProb(int64(enc))
		return math.Abs(back-p) < 0.001
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeProbEdges(t *testing.T) {
	if DecodeProb(0) != 1 || DecodeProb(-5) != 1 {
		t.Fatal("non-positive sum must decode to probability 1")
	}
	if p := DecodeProb(1024); math.Abs(p-0.5) > 1e-9 {
		t.Fatalf("DecodeProb(1024) = %v, want 0.5", p)
	}
	if p := DecodeProb(1 << 30); p > 1e-9 {
		t.Fatalf("huge sum should decode to ~0, got %v", p)
	}
}

func TestEncodeProbThreshold(t *testing.T) {
	// The paper's example: a 10% gating target encodes near 3400 (the
	// paper quotes 3321 under slightly different rounding).
	th := EncodeProbThreshold(0.10)
	if th < 3300 || th < 0 || th > 3500 {
		t.Fatalf("threshold for 10%% = %d, want ~3400", th)
	}
	if EncodeProbThreshold(1) != 0 {
		t.Fatal("threshold for certainty must be 0")
	}
	if EncodeProbThreshold(0) != math.MaxInt64 {
		t.Fatal("threshold for 0 must be unreachable")
	}
}

// TestThresholdConsistency: gating semantics — sum > threshold(p) iff
// decoded probability < p (within quantization).
func TestThresholdConsistency(t *testing.T) {
	for _, target := range []float64{0.02, 0.1, 0.2, 0.5, 0.9} {
		th := EncodeProbThreshold(target)
		// Just above the threshold decodes below target.
		if p := DecodeProb(th + 2); p >= target {
			t.Fatalf("target %v: DecodeProb(th+2)=%v not below target", target, p)
		}
		// Just below decodes at or above target.
		if p := DecodeProb(th - 2); p < target-0.002 {
			t.Fatalf("target %v: DecodeProb(th-2)=%v too low", target, p)
		}
	}
}
