// Package bitutil provides the small hardware-style arithmetic primitives
// that PaCo's datapath is built from: saturating counters, a fixed-point
// Mitchell binary-logarithm circuit, and the encoded-probability conversion
// of the paper's Equation 3.
//
// Everything on the predictor's runtime path is integer arithmetic; floating
// point appears only in test/measurement helpers (DecodeProb, ExactEncode).
package bitutil

import (
	"math"
	"math/bits"
)

// SatCounter is an n-bit saturating up/down counter, the basic building
// block of direction predictors and miss-distance counters.
type SatCounter struct {
	value uint32
	max   uint32
}

// NewSatCounter returns a counter with the given width in bits (1..31) and
// initial value (clamped to range).
func NewSatCounter(widthBits uint, initial uint32) SatCounter {
	if widthBits == 0 || widthBits > 31 {
		panic("bitutil: SatCounter width out of range")
	}
	c := SatCounter{max: 1<<widthBits - 1}
	c.value = min(initial, c.max)
	return c
}

// Inc increments the counter, saturating at its maximum.
func (c *SatCounter) Inc() {
	if c.value < c.max {
		c.value++
	}
}

// Dec decrements the counter, saturating at zero.
func (c *SatCounter) Dec() {
	if c.value > 0 {
		c.value--
	}
}

// Reset sets the counter to zero.
func (c *SatCounter) Reset() { c.value = 0 }

// Set forces a value (clamped to range).
func (c *SatCounter) Set(v uint32) { c.value = min(v, c.max) }

// Value returns the current count.
func (c *SatCounter) Value() uint32 { return c.value }

// Max returns the saturation value.
func (c *SatCounter) Max() uint32 { return c.max }

// AtMax reports whether the counter is saturated high.
func (c *SatCounter) AtMax() bool { return c.value == c.max }

// MSB reports the counter's most significant bit — the "predict taken" bit
// of a 2-bit direction counter.
func (c *SatCounter) MSB() bool { return c.value > c.max/2 }

// LogScale is the fixed-point scale of encoded probabilities: the paper
// multiplies -log2(p) by 1024 (Equation 3).
const LogScale = 1024

// EncodedMax is the clamp applied to encoded probabilities: values above
// 2^12 are converted to 2^12 (paper, Section 3.2). 4096/1024 = 4 bits of
// log2, i.e. a mispredict rate above ~93.75% never occurs in practice.
const EncodedMax = 1 << 12

// Log2Fixed returns an approximation of log2(v) in Q(10) fixed point
// (scaled by LogScale), using Mitchell's method: the characteristic is the
// index of the most significant set bit, and the mantissa bits below it are
// used directly as the fraction. This is exactly what a shift register plus
// counter computes in hardware (Mitchell 1962), and is the paper's "log
// circuit". v must be >= 1.
func Log2Fixed(v uint32) uint32 {
	if v == 0 {
		panic("bitutil: Log2Fixed of zero")
	}
	k := uint32(bits.Len32(v) - 1) // characteristic: floor(log2 v)
	frac := v - 1<<k               // mantissa bits below the MSB
	var fracFixed uint32
	if k <= 10 {
		fracFixed = frac << (10 - k)
	} else {
		fracFixed = frac >> (k - 10)
	}
	return k*LogScale + fracFixed
}

// Log2Error returns the absolute error of Log2Fixed at v, in log2 units.
// Mitchell's approximation under-estimates by at most ~0.0861; helper for
// tests and documentation.
func Log2Error(v uint32) float64 {
	return math.Log2(float64(v)) - float64(Log2Fixed(v))/LogScale
}

// EncodeRate converts a (correct, mispredict) counter pair into the paper's
// 12-bit encoded correct-prediction probability:
//
//	enc = round(-1024 * log2(correct / (correct+mispredict)))
//	    = 1024*log2(correct+mispredict) - 1024*log2(correct)
//
// computed entirely with the integer Mitchell circuit. A branch bucket that
// never mispredicts encodes to 0; enc is clamped to EncodedMax. correct must
// be >= 1 (a bucket with zero correct predictions saturates to EncodedMax).
func EncodeRate(correct, mispredict uint32) uint32 {
	if correct == 0 {
		return EncodedMax
	}
	total := correct + mispredict
	lgTotal := Log2Fixed(total)
	lgCorrect := Log2Fixed(correct)
	if lgTotal <= lgCorrect {
		return 0
	}
	enc := lgTotal - lgCorrect
	if enc > EncodedMax {
		return EncodedMax
	}
	return enc
}

// ExactEncode is the floating-point reference for EncodeRate, used by tests
// and by the Static-MRT variant's profile tables:
// round(-1024*log2(p)) clamped to EncodedMax.
func ExactEncode(p float64) uint32 {
	if p <= 0 {
		return EncodedMax
	}
	if p >= 1 {
		return 0
	}
	enc := math.Round(-float64(LogScale) * math.Log2(p))
	if enc >= EncodedMax {
		return EncodedMax
	}
	if enc < 0 {
		return 0
	}
	return uint32(enc)
}

// DecodeProb converts an encoded probability sum back into a real
// probability in [0, 1]: p = 2^(-enc/1024). The hardware never does this
// (Section 3.2, "Reconverting to real Goodpath Probability"); it exists for
// measurement and for converting an application's target probability into
// an encoded threshold once.
func DecodeProb(encodedSum int64) float64 {
	if encodedSum <= 0 {
		return 1
	}
	return math.Exp2(-float64(encodedSum) / LogScale)
}

// EncodeProbThreshold converts a target real probability into the encoded
// threshold an application compares the running sum against — e.g. a 10%
// gating target becomes 3401 (the paper quotes 3321 from its slightly
// different rounding; the comparison semantics are identical: gate when the
// encoded sum exceeds the threshold).
func EncodeProbThreshold(p float64) int64 {
	if p <= 0 {
		return math.MaxInt64
	}
	if p >= 1 {
		return 0
	}
	return int64(math.Round(-float64(LogScale) * math.Log2(p)))
}

func min(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}
