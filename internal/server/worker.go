package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"paco/internal/campaign"
	"paco/internal/obs"
)

// Worker is the client side of the shard federation: a loop that leases
// shards from a coordinator, executes them on a local campaign pool, and
// posts globally indexed results back. cmd/paco-serve runs one per
// process in -coordinator mode; servertest runs several in-process to
// prove distributed determinism.
type Worker struct {
	cfg        WorkerConfig
	client     *http.Client
	shardsDone atomic.Uint64
	cellsDone  atomic.Uint64
}

// WorkerConfig configures a federation worker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL (e.g. "http://host:8344").
	Coordinator string

	// Name identifies the worker to the coordinator (liveness and
	// attribution). Empty selects "hostname-pid".
	Name string

	// SimWorkers is the local campaign pool each shard runs on (<= 0
	// selects runtime.GOMAXPROCS(0)). Worker count never changes result
	// bytes — the campaign engine's core guarantee.
	SimWorkers int

	// BatchK is the batched lockstep width shards execute with (<= 0
	// selects campaign.DefaultBatchK; 1 disables batching). Like worker
	// count, batch width never changes result bytes.
	BatchK int

	// Poll is how long to sleep when the coordinator has no work
	// (default 500ms).
	Poll time.Duration

	// SessionsURL, when nonempty, is the base URL of a session-serving
	// HTTP endpoint this process exposes (paco-serve -sessions-addr).
	// The worker advertises it in every lease poll, which doubles as the
	// heartbeat a session-routing coordinator uses to pick live owners.
	SessionsURL string

	// HTTPClient overrides the transport (tests inject chaos here).
	HTTPClient *http.Client

	// JobSource, when non-nil, resolves the job slice of in-process
	// campaigns (leases without a grid): servertest federations register
	// experiment job slices here. Shards of unknown campaigns are
	// reported back as infrastructure failures. Grid leases never
	// consult it.
	JobSource func(campaignID string) []campaign.Job

	// OnLease, when non-nil, observes every granted lease before
	// execution starts — the hook chaos tests use to kill a worker
	// provably mid-shard.
	OnLease func(ShardLease)

	// Log receives structured operational messages (nil discards them).
	Log *slog.Logger

	// Recorder, when non-nil, collects the worker's shard-execution and
	// per-cell spans under the trace ID each lease carries. In-process
	// federations share the coordinator's recorder (see
	// Server.InstrumentWorker) so one flight recorder holds the whole
	// cluster's chain.
	Recorder *obs.Recorder

	// SimDuration and QueueWait, when non-nil, observe per-cell
	// simulate seconds and queue-wait seconds for every cell this
	// worker executes.
	SimDuration *obs.Histogram
	QueueWait   *obs.Histogram

	// BatchSize, BatchedCells, and SingletonCells, when non-nil, record
	// the batched-execution shape of every shard this worker runs (see
	// campaign.Runner's fields of the same names).
	BatchSize      *obs.Histogram
	BatchedCells   *obs.Counter
	SingletonCells *obs.Counter
}

// NewWorker validates the configuration and builds a worker.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Coordinator == "" {
		return nil, errors.New("server: worker needs a coordinator URL")
	}
	cfg.Coordinator = strings.TrimRight(cfg.Coordinator, "/")
	if cfg.Name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		cfg.Name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if cfg.SimWorkers <= 0 {
		cfg.SimWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.BatchK <= 0 {
		cfg.BatchK = campaign.DefaultBatchK
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 500 * time.Millisecond
	}
	cfg.Log = obs.OrNop(cfg.Log)
	client := cfg.HTTPClient
	if client == nil {
		client = &http.Client{}
	}
	return &Worker{cfg: cfg, client: client}, nil
}

// Name reports the identity the worker leases under.
func (w *Worker) Name() string { return w.cfg.Name }

// ShardsDone reports how many shards this worker completed and posted.
func (w *Worker) ShardsDone() uint64 { return w.shardsDone.Load() }

// Run leases and executes shards until ctx is cancelled; it returns
// ctx.Err(). A shard in flight when ctx falls is abandoned unposted —
// in-flight cells observe the cancellation, and the coordinator's lease
// expiry re-queues the shard — which is exactly the worker-death path
// the chaos tests exercise.
func (w *Worker) Run(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		lease, ok, err := w.lease(ctx)
		if err != nil {
			w.cfg.Log.Warn("lease request failed", "worker", w.cfg.Name, "error", err)
			if !w.sleep(ctx) {
				return ctx.Err()
			}
			continue
		}
		if !ok {
			if !w.sleep(ctx) {
				return ctx.Err()
			}
			continue
		}
		if w.cfg.OnLease != nil {
			w.cfg.OnLease(lease)
		}
		w.runLease(ctx, lease)
	}
}

func (w *Worker) sleep(ctx context.Context) bool {
	select {
	case <-time.After(w.cfg.Poll):
		return true
	case <-ctx.Done():
		return false
	}
}

// runLease executes one leased shard and posts its outcome. Execution
// errors inside cells travel in the results (determinism: the same cell
// fails identically anywhere); only infrastructure problems — unknown
// campaign, range outside the job slice — are posted as shard errors so
// the coordinator re-queues.
func (w *Worker) runLease(ctx context.Context, lease ShardLease) {
	// Renew the lease at TTL/3 while executing, so the coordinator can
	// tell a slow shard from a dead worker: a shard may legitimately
	// simulate for many multiples of the TTL. A killed worker's renewal
	// loop dies with ctx, which is exactly what lets expiry re-queue its
	// shard.
	renewCtx, stopRenew := context.WithCancel(ctx)
	defer stopRenew()
	if ttl := time.Duration(lease.TTLMS) * time.Millisecond; ttl > 0 {
		go w.renewLoop(renewCtx, lease, ttl/3)
	}
	// The execute span parents to the coordinator's lease span (ID
	// shipped in the lease), so a shared or merged flight recorder shows
	// job → shard.lease → shard.execute → cell as one chain.
	span := w.cfg.Recorder.Start(lease.Trace, "shard.execute", short(lease.ShardID), lease.Span)
	span.Set("worker", w.cfg.Name)
	span.Set("cells", strconv.Itoa(lease.Hi-lease.Lo))
	// The global cell range lets the campaign report attribute merged
	// results (and their simulated cycles) back to this worker.
	span.Set("lo", strconv.Itoa(lease.Lo))
	span.Set("hi", strconv.Itoa(lease.Hi))
	results, infraErr := w.execute(ctx, lease, span.ID())
	if ctx.Err() != nil {
		// Killed mid-shard: abandon unposted; the lease will expire.
		span.End("abandoned: " + ctx.Err().Error())
		return
	}
	post := ShardResultPost{LeaseID: lease.LeaseID, Worker: w.cfg.Name, Results: results}
	if infraErr != nil {
		post = ShardResultPost{LeaseID: lease.LeaseID, Worker: w.cfg.Name, Error: infraErr.Error()}
		w.cfg.Log.Warn("shard infrastructure failure", "worker", w.cfg.Name,
			"shard", short(lease.ShardID), "trace", lease.Trace, "error", infraErr)
	}
	span.End(obs.ErrString(infraErr))
	if err := w.postResult(ctx, lease, post); err != nil {
		// Dropped POST: the coordinator's lease expiry re-runs the shard;
		// re-running is free of harm by determinism.
		w.cfg.Log.Warn("posting shard result failed", "worker", w.cfg.Name,
			"shard", short(lease.ShardID), "trace", lease.Trace, "error", err)
		return
	}
	if infraErr == nil {
		w.shardsDone.Add(1)
		w.cellsDone.Add(uint64(len(results)))
		w.cfg.Log.Info("shard done", "worker", w.cfg.Name,
			"shard", short(lease.ShardID), "trace", lease.Trace, "cells", len(results))
	}
}

// execute materializes the lease's job slice and runs it, re-indexing
// results into the campaign's global cell space. parent is the worker's
// execute span, which the campaign's per-cell spans parent to.
func (w *Worker) execute(ctx context.Context, lease ShardLease, parent uint64) ([]campaign.Result, error) {
	var jobs []campaign.Job
	switch {
	case lease.Grid != nil:
		jobs = lease.Grid.Jobs()
	case w.cfg.JobSource != nil:
		jobs = w.cfg.JobSource(lease.Campaign)
		if jobs == nil {
			return nil, fmt.Errorf("unknown campaign %q", lease.Campaign)
		}
	default:
		return nil, errors.New("lease carries no grid and worker has no job source")
	}
	if lease.Lo < 0 || lease.Hi > len(jobs) || lease.Lo >= lease.Hi {
		return nil, fmt.Errorf("lease range [%d,%d) outside campaign's %d cells", lease.Lo, lease.Hi, len(jobs))
	}
	// Cell failures ride in the results; the campaign-level first-failure
	// error is recomputed by the coordinator after the merge.
	runner := &campaign.Runner{
		Workers:        w.cfg.SimWorkers,
		BatchK:         w.cfg.BatchK,
		SimDuration:    w.cfg.SimDuration,
		QueueWait:      w.cfg.QueueWait,
		Recorder:       w.cfg.Recorder,
		Trace:          lease.Trace,
		Parent:         parent,
		BatchSize:      w.cfg.BatchSize,
		BatchedCells:   w.cfg.BatchedCells,
		SingletonCells: w.cfg.SingletonCells,
	}
	results, _ := runner.Run(ctx, jobs[lease.Lo:lease.Hi])
	for i := range results {
		results[i].Index = lease.Lo + i
	}
	return results, nil
}

// renewLoop posts lease renewals until ctx falls. A failed or rejected
// renewal is only logged: if the lease really was lost, the shard's
// result post resolves it (first complete result wins).
func (w *Worker) renewLoop(ctx context.Context, lease ShardLease, every time.Duration) {
	if every < time.Millisecond {
		every = time.Millisecond
	}
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		body, _ := json.Marshal(ShardRenewal{LeaseID: lease.LeaseID, Worker: w.cfg.Name})
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			fmt.Sprintf("%s/v1/shards/%s/renew", w.cfg.Coordinator, url.PathEscape(lease.ShardID)),
			bytes.NewReader(body))
		if err != nil {
			return
		}
		req.Header.Set("Content-Type", "application/json")
		if lease.Trace != "" {
			req.Header.Set(obs.TraceHeader, lease.Trace)
		}
		resp, err := w.client.Do(req)
		if err != nil {
			if ctx.Err() == nil {
				w.cfg.Log.Warn("renewing shard failed", "worker", w.cfg.Name,
					"shard", short(lease.ShardID), "trace", lease.Trace, "error", err)
			}
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

func (w *Worker) lease(ctx context.Context) (ShardLease, bool, error) {
	body, _ := json.Marshal(LeaseRequest{Worker: w.cfg.Name, SessionsURL: w.cfg.SessionsURL})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		w.cfg.Coordinator+"/v1/shards/lease", bytes.NewReader(body))
	if err != nil {
		return ShardLease{}, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return ShardLease{}, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent:
		io.Copy(io.Discard, resp.Body)
		return ShardLease{}, false, nil
	case http.StatusOK:
		var lease ShardLease
		if err := json.NewDecoder(resp.Body).Decode(&lease); err != nil {
			return ShardLease{}, false, fmt.Errorf("decoding lease: %w", err)
		}
		if h := resp.Header.Get(obs.TraceHeader); h != "" {
			// The response header is the authoritative trace: it travels
			// even when a proxy rewrites or an older coordinator omits the
			// body field.
			lease.Trace = h
		}
		return lease, true, nil
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return ShardLease{}, false, fmt.Errorf("lease request: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
}

func (w *Worker) postResult(ctx context.Context, lease ShardLease, post ShardResultPost) error {
	body, err := json.Marshal(post)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		fmt.Sprintf("%s/v1/shards/%s/result", w.cfg.Coordinator, url.PathEscape(lease.ShardID)), bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if lease.Trace != "" {
		req.Header.Set(obs.TraceHeader, lease.Trace)
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode == http.StatusGone {
		// Someone else completed the shard first; that is success. (A
		// plain 404 would mean a broken URL and is treated as an error.)
		return nil
	}
	if resp.StatusCode >= 400 {
		return fmt.Errorf("result post: %s", resp.Status)
	}
	return nil
}
