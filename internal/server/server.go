// Package server is paco's simulation-as-a-service layer: an HTTP/JSON
// front end (stdlib net/http only) over the campaign engine. Clients
// POST declarative job specs (a campaign.Grid — one run or a whole
// sweep); the server executes them on a bounded queue and configurable
// worker pool, streams progress over Server-Sent Events, and serves
// every paper experiment at /v1/experiments/{name} byte-identical to the
// CLI output.
//
// Because every simulation is deterministic given its spec, results are
// content-addressed: the SHA-256 of the canonicalized spec names the
// result, identical requests are pure cache hits (LRU byte-budget cache,
// optionally persisted to disk), and concurrent identical submissions
// single-flight into one simulation. /metrics exports the operational
// counters — queue depth, cache hit/miss, jobs in flight, simulated
// kcycles/sec — in Prometheus text format.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"paco/internal/campaign"
	"paco/internal/experiments"
	"paco/internal/obs"
	"paco/internal/obs/tsdb"
	"paco/internal/perf"
	"paco/internal/session"
	"paco/internal/version"
)

// Config sizes a Server. The zero value selects sensible defaults.
type Config struct {
	// JobWorkers bounds campaigns executing concurrently (default 2).
	JobWorkers int
	// SimWorkers is the campaign worker-pool size each job runs with
	// (default runtime.GOMAXPROCS(0)).
	SimWorkers int
	// BatchK is the batched lockstep width for locally executed
	// campaigns: cells sharing one instruction stream run up to BatchK
	// per batch (results stay byte-identical to unbatched at any K).
	// 0 selects the default of 8; 1 disables batching.
	BatchK int
	// QueueSize bounds jobs waiting to execute (default 64); submissions
	// beyond it are rejected with 503.
	QueueSize int
	// MaxCells bounds one submission's grid expansion (default 4096).
	MaxCells int
	// MaxJobs bounds retained job records (default 1024): once exceeded,
	// the oldest settled jobs are forgotten — their results stay
	// reachable through the content-addressed cache, only the job id
	// expires. Queued and running jobs are never evicted.
	MaxJobs int

	// CacheBytes is the content-addressed cache budget (default 64 MiB);
	// CacheDir, when nonempty, persists cache entries across restarts.
	CacheBytes int64
	CacheDir   string

	// Shards, when >= 1, turns the server into a federation coordinator:
	// each submitted grid is split into up to Shards content-addressed
	// shards (campaign.Grid.Shards) executed by remote workers leasing
	// through /v1/shards/lease, and the merged report is byte-identical
	// to a single-process run. Shards == 1 still federates — the whole
	// sweep goes to one worker — so a single-worker deployment behaves
	// as configured; 0 executes locally as before.
	Shards int

	// LeaseTTL bounds how long a worker may hold a shard before the
	// coordinator re-leases it (default 30s). WorkerLiveness is the
	// check-in window after which /metrics stops counting a worker as
	// live (default 15s). ShardRetryLimit caps re-lease attempts per
	// shard before the whole campaign fails (default 3).
	LeaseTTL        time.Duration
	WorkerLiveness  time.Duration
	ShardRetryLimit int

	// SessionShards, SessionMaxOpen, SessionQueueEvents, SessionTTL, and
	// SessionSweep size the live estimator-session table behind
	// /v1/sessions (zero values select the session package defaults:
	// 8 shards, 1024 sessions, 65536 queued events per session, 5m idle
	// TTL, sweep every TTL/4).
	SessionShards      int
	SessionMaxOpen     int
	SessionQueueEvents int
	SessionTTL         time.Duration
	SessionSweep       time.Duration

	// RouteSessions turns this server into a session-routing
	// coordinator: /v1/sessions requests are rendezvous-hashed across
	// the federation workers that advertise a session endpoint in their
	// lease polls, proxied to the owning worker, and journaled so a
	// worker death mid-session fails over to a survivor by replaying the
	// journal (DESIGN.md §6b). The local session table stays constructed
	// (its metrics read zero) but unreachable over HTTP. Requires
	// workers started with a session endpoint (paco-serve
	// -sessions-addr); with no live endpoints, session opens answer 503.
	RouteSessions bool

	// Experiments scales the /v1/experiments reports (nil selects
	// experiments.Default(), the scale cmd/paco-repro runs at).
	Experiments *experiments.Config

	// Log receives structured operational messages (nil discards them).
	// Every job-lifecycle record carries the job's trace ID.
	Log *slog.Logger

	// LogLevel, when non-nil, is the LevelVar the Log handler filters
	// by — exposing it here enables runtime adjustment through
	// GET/PUT /debug/loglevel without restarting the process.
	LogLevel *slog.LevelVar

	// SampleInterval is the time-series store's sampling period for
	// GET /v1/timeseries and the /debug/dash sparklines (0 selects 1s;
	// negative disables sampling — the endpoints still answer, empty).
	SampleInterval time.Duration

	// FlightSpans caps how many finished spans the flight recorder
	// behind GET /debug/flight retains (0 selects 4096; negative
	// disables span recording entirely).
	FlightSpans int

	// EnablePprof mounts net/http/pprof at /debug/pprof/ on the
	// server's mux. Off by default: profiles expose internals and cost
	// CPU, so production deployments opt in explicitly.
	EnablePprof bool
}

// Server executes simulation jobs behind an HTTP API. Construct with
// New, install Handler in an http.Server, call Start to launch the
// worker pool and Close to drain it.
type Server struct {
	cfg      Config
	expCfg   experiments.Config
	cache    *Cache
	fed      *federation
	sessions *session.Table
	router   *sessionRouter // non-nil iff cfg.RouteSessions
	mux      *http.ServeMux
	obs      *serverObs

	nextCampaign atomic.Uint64 // Distribute campaign IDs

	queue chan *job

	mu       sync.Mutex
	closed   bool
	jobs     map[string]*job
	jobOrder []string        // job ids in creation order, for MaxJobs eviction
	inflight map[string]*job // content key -> executing/queued job
	nextID   uint64

	// expSem bounds concurrently executing experiment reports so the
	// GET /v1/experiments path cannot bypass the worker-pool admission
	// bounds.
	expSem chan struct{}

	// Experiment report single-flight.
	expMu      sync.Mutex
	expFlights map[string]*expFlight

	simsRun    atomic.Uint64 // campaigns actually simulated
	cellsRun   atomic.Uint64 // campaign cells simulated
	jobsDone   atomic.Uint64
	jobsFailed atomic.Uint64
	running    atomic.Int64 // jobs executing right now

	sampler perf.Sampler
	started time.Time
	wg      sync.WaitGroup

	ctx    context.Context
	cancel context.CancelFunc
}

type expFlight struct {
	done chan struct{}
	data []byte
	err  error
}

// New builds a Server; Start must be called before submissions execute.
func New(cfg Config) (*Server, error) {
	if cfg.JobWorkers <= 0 {
		cfg.JobWorkers = 2
	}
	if cfg.SimWorkers <= 0 {
		cfg.SimWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.BatchK <= 0 {
		cfg.BatchK = campaign.DefaultBatchK
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 64
	}
	if cfg.MaxCells <= 0 {
		cfg.MaxCells = 4096
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 1024
	}
	cache, err := NewCache(cfg.CacheBytes, cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	expCfg := experiments.Default()
	if cfg.Experiments != nil {
		expCfg = *cfg.Experiments
	}
	s := &Server{
		cfg:        cfg,
		expCfg:     expCfg,
		cache:      cache,
		queue:      make(chan *job, cfg.QueueSize),
		jobs:       make(map[string]*job),
		inflight:   make(map[string]*job),
		expFlights: make(map[string]*expFlight),
		expSem:     make(chan struct{}, cfg.JobWorkers),
		started:    time.Now(),
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	s.obs = newServerObs(s, cfg.Log, cfg.FlightSpans)
	s.obs.level = cfg.LogLevel
	if cfg.SampleInterval >= 0 {
		s.obs.ts = tsdb.New(tsdb.Config{Registry: s.obs.reg, Interval: cfg.SampleInterval})
	}
	s.fed = newFederation(cfg.LeaseTTL, cfg.WorkerLiveness, cfg.ShardRetryLimit, cache, s.obs)
	s.sessions = session.NewTable(session.TableConfig{
		Shards:          cfg.SessionShards,
		MaxSessions:     cfg.SessionMaxOpen,
		MaxQueuedEvents: cfg.SessionQueueEvents,
		IdleTTL:         cfg.SessionTTL,
		SweepInterval:   cfg.SessionSweep,
		Metrics:         s.obs.sessionMetrics,
		Recorder:        s.obs.rec,
		Log:             s.obs.log,
	})
	if cfg.RouteSessions {
		s.router = newSessionRouter(s.fed, s.obs, cfg.SessionTTL, cfg.SessionSweep)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/results", s.handleJobResults)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("POST /v1/shards/lease", s.handleShardLease)
	mux.HandleFunc("POST /v1/shards/{id}/renew", s.handleShardRenew)
	mux.HandleFunc("POST /v1/shards/{id}/result", s.handleShardResult)
	if s.router != nil {
		mux.HandleFunc("POST /v1/sessions", s.router.handleOpen)
		mux.HandleFunc("POST /v1/sessions/{id}/events", s.router.handleEvents)
		mux.HandleFunc("GET /v1/sessions/{id}/scores", s.router.handleScores)
		mux.HandleFunc("GET /v1/sessions/{id}/live", s.router.handleLive)
		mux.HandleFunc("DELETE /v1/sessions/{id}", s.router.handleClose)
	} else {
		mux.HandleFunc("POST /v1/sessions", s.handleSessionOpen)
		mux.HandleFunc("POST /v1/sessions/{id}/events", s.handleSessionEvents)
		mux.HandleFunc("GET /v1/sessions/{id}/scores", s.handleSessionScores)
		mux.HandleFunc("GET /v1/sessions/{id}/live", s.handleSessionLive)
		mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionClose)
	}
	mux.HandleFunc("GET /v1/experiments/{name}", s.handleExperiment)
	mux.HandleFunc("GET /v1/timeseries", s.handleTimeseries)
	mux.HandleFunc("GET /v1/campaigns/{id}/report", s.handleCampaignReport)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.registerDebug(mux)
	s.mux = mux
	return s, nil
}

// Start launches the job worker pool and the metrics sampler.
func (s *Server) Start() {
	s.wg.Add(s.cfg.JobWorkers)
	for i := 0; i < s.cfg.JobWorkers; i++ {
		go s.worker()
	}
	if s.router != nil {
		s.router.start()
	}
	if s.obs.ts != nil {
		s.obs.ts.Start()
	}
}

// Close stops accepting submissions, cancels in-flight campaigns (their
// executing cells finish, unstarted cells are skipped), fails jobs still
// waiting in the queue, waits for the worker pool to drain, and shuts
// down the session table (remaining sessions close with their queues
// applied).
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
	if s.router != nil {
		s.router.shutdown()
	}
	s.sessions.Shutdown()
	if s.obs.ts != nil {
		s.obs.ts.Close()
	}
	// Jobs a worker never picked up were drained by the closed-channel
	// range in worker() and marked failed by runJob's closed check.
}

// Handler returns the server's HTTP handler: the API mux wrapped with
// the build stamp header and per-route request accounting (duration
// histogram and status-code counter, labeled by the mux route pattern
// so cardinality stays bounded by the route table, not by client URLs).
func (s *Server) Handler() http.Handler {
	stamp := version.Get().String()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Paco-Version", stamp)
		route := "other"
		if _, pattern := s.mux.Handler(r); pattern != "" {
			route = pattern
		}
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		s.mux.ServeHTTP(sw, r)
		s.obs.httpDuration.With(route).Observe(time.Since(start).Seconds())
		s.obs.httpRequests.With(route, strconv.Itoa(sw.code)).Inc()
	})
}

// statusWriter captures the response status for the request counter. It
// implements http.Flusher unconditionally (flushing is a no-op when the
// underlying writer cannot) so the SSE handler's Flusher assertion keeps
// working through the middleware, and Unwrap for ResponseController.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.code = code
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Flush() {
	if fl, ok := sw.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// SimulationsRun reports how many campaigns were actually simulated (as
// opposed to answered from the cache) — the counter the single-flight
// and cache tests assert on.
func (s *Server) SimulationsRun() uint64 { return s.simsRun.Load() }

// CacheStats exposes the content-addressed cache counters.
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// cachedPayload is what the cache stores per key: everything durable
// about a completed job (identity fields like job id and timestamps stay
// out, so the bytes are a pure function of the spec).
type cachedPayload struct {
	Spec    campaign.Grid     `json:"spec"`
	Results []campaign.Result `json:"results"`
	Summary campaign.Summary  `json:"summary"`
}

// errorJSON writes a JSON error body with the given status.
func errorJSON(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// handleSubmit is POST /v1/jobs: parse the spec, canonicalize and hash
// it, and answer from the cache, an in-flight duplicate, or a fresh
// enqueue.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		errorJSON(w, status, "reading body: %v", err)
		return
	}
	var grid campaign.Grid
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&grid); err != nil {
		errorJSON(w, http.StatusBadRequest, "parsing job spec: %v", err)
		return
	}
	grid, err = grid.Normalized()
	if err != nil {
		errorJSON(w, http.StatusBadRequest, "%v", err)
		return
	}
	cells := grid.Size()
	if cells > s.cfg.MaxCells {
		errorJSON(w, http.StatusBadRequest,
			"grid expands to %d cells, server limit is %d", cells, s.cfg.MaxCells)
		return
	}
	key, err := specKey(grid)
	if err != nil {
		errorJSON(w, http.StatusInternalServerError, "%v", err)
		return
	}

	// The job's trace ID correlates everything the submission causes —
	// spans, logs, shard leases on remote workers — across processes.
	// Clients may supply their own via the X-Paco-Trace header; otherwise
	// the server mints one. Either way the authoritative ID (an inflight
	// duplicate keeps the first submission's) echoes back in the response
	// header and body.
	trace := r.Header.Get(obs.TraceHeader)
	if trace == "" {
		trace = obs.NewTraceID()
	}

	j, outcome, err := s.submit(grid, key, cells, trace)
	if err != nil {
		errorJSON(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	status := http.StatusAccepted
	if outcome == "hit" {
		status = http.StatusOK
	}
	st := j.status(outcome == "hit")
	if outcome == "inflight" {
		// Single-flighted onto an earlier submission: report where that
		// job stands, but the cache verdict for this request.
		st.Cache = "inflight"
	}
	w.Header().Set(obs.TraceHeader, st.Trace)
	writeJSON(w, status, st)
}

// specKey computes the content address of a normalized grid: SHA-256
// over the canonical JSON of the spec, domain-separated from other key
// kinds. Normalization plus canonical JSON make the key insensitive to
// field order, whitespace, number spelling, and spelled-out defaults.
func specKey(grid campaign.Grid) (string, error) {
	raw, err := json.Marshal(grid)
	if err != nil {
		return "", err
	}
	canon, err := CanonicalJSON(raw)
	if err != nil {
		return "", err
	}
	return Key([]byte("job"), canon), nil
}

// submit implements the content-addressed admission path. Exactly one of
// the three outcomes happens under the lock:
//
//   - "hit": the canonical spec is in the cache — a pre-completed job
//     record is created from the stored bytes, nothing is enqueued.
//   - "inflight": an identical spec is already queued or running — the
//     submission single-flights onto that job.
//   - "miss": a fresh job is enqueued.
func (s *Server) submit(grid campaign.Grid, key string, cells int, trace string) (*job, string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, "", errors.New("server is shutting down")
	}
	data, cached := s.cache.Get(key)
	s.obs.lookup("job", cached)
	if cached {
		var payload cachedPayload
		if err := json.Unmarshal(data, &payload); err == nil {
			j := newJob(s.nextIDLocked(), key, grid, cells, trace)
			j.completeFromCache(payload.Results, payload.Summary)
			s.registerJobLocked(j)
			return j, "hit", nil
		}
		// Undecodable cache entry (e.g. foreign file in the persistence
		// dir that happened to parse as a key): fall through to simulate.
		s.obs.log.Warn("cache entry undecodable; re-simulating", "key", short(key))
	}
	if exist, ok := s.inflight[key]; ok {
		return exist, "inflight", nil
	}
	j := newJob(s.nextIDLocked(), key, grid, cells, trace)
	select {
	case s.queue <- j:
	default:
		return nil, "", fmt.Errorf("job queue full (%d waiting)", s.cfg.QueueSize)
	}
	s.registerJobLocked(j)
	s.inflight[key] = j
	return j, "miss", nil
}

func (s *Server) nextIDLocked() string {
	s.nextID++
	return fmt.Sprintf("j-%06d", s.nextID)
}

// registerJobLocked records a job and bounds the retained records:
// beyond MaxJobs, the oldest settled jobs are forgotten (their results
// remain reachable through the content-addressed cache). Queued and
// running jobs are kept regardless — they are bounded by the queue and
// worker pool.
func (s *Server) registerJobLocked(j *job) {
	s.jobs[j.id] = j
	s.jobOrder = append(s.jobOrder, j.id)
	if len(s.jobs) <= s.cfg.MaxJobs {
		return
	}
	kept := s.jobOrder[:0]
	for _, id := range s.jobOrder {
		old := s.jobs[id]
		if old == nil {
			continue
		}
		if len(s.jobs) > s.cfg.MaxJobs && old.terminal() {
			delete(s.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	s.jobOrder = kept
}

// worker executes queued jobs until the queue closes.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one job's campaign, records throughput, and stores
// the result under its content address.
func (s *Server) runJob(j *job) {
	defer func() {
		s.mu.Lock()
		delete(s.inflight, j.key)
		s.mu.Unlock()
	}()
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		j.fail("server shut down before the job ran", nil)
		s.jobsFailed.Add(1)
		return
	}
	s.running.Add(1)
	defer s.running.Add(-1)

	// The job span roots this job's causal chain in the flight recorder:
	// cell spans (local execution) or shard lease/execute spans
	// (federated) all parent back to it under the job's trace ID.
	span := s.obs.rec.Start(j.trace, "job", j.id, 0)
	span.Set("cells", strconv.Itoa(j.cells))
	span.Set("key", short(j.key))

	var results []campaign.Result
	var err error
	start := time.Now()
	if s.cfg.Shards >= 1 {
		// Coordinator mode: federate the grid across leased workers. The
		// merged results are byte-identical to the local path below —
		// the distributed determinism the servertest harness asserts.
		span.Set("mode", "federated")
		j.start(nil)
		s.obs.log.Info("job federating", "job", j.id, "trace", j.trace,
			"cells", j.cells, "shards", s.cfg.Shards, "key", short(j.key))
		results, err = s.fed.distribute(s.ctx, j.id, j.trace, span.ID(), &j.grid, j.cells, s.cfg.Shards,
			func(cellsDone int, shardID string) { j.shardProgress(cellsDone, shardID) })
		if err == nil {
			err = campaign.FirstError(results)
		}
	} else {
		span.Set("mode", "local")
		runner := &campaign.Runner{
			Workers:        s.cfg.SimWorkers,
			BatchK:         s.cfg.BatchK,
			OnProgress:     func(done, total int, r *campaign.Result) { j.progress(done, total, r) },
			SimDuration:    s.obs.cellDuration,
			QueueWait:      s.obs.cellQueueWait,
			Recorder:       s.obs.rec,
			Trace:          j.trace,
			Parent:         span.ID(),
			BatchSize:      s.obs.batchSize,
			BatchedCells:   s.obs.batchedCells,
			SingletonCells: s.obs.singletonCells,
		}
		j.start(runner)
		s.obs.log.Info("job running", "job", j.id, "trace", j.trace,
			"cells", j.cells, "key", short(j.key))
		results, err = runner.Run(s.ctx, j.grid.Jobs())
	}
	wall := time.Since(start)

	var cycles uint64
	for i := range results {
		cycles += results[i].Cycles
	}
	s.sampler.Observe(cycles, wall)
	s.simsRun.Add(1)
	s.cellsRun.Add(uint64(len(results)))

	// No terminal publish here: the events handler synthesizes the
	// authoritative "done"/"failed" event when doneCh closes.
	if err != nil {
		summary := campaign.Summarize(results)
		j.fail(err.Error(), &summary)
		s.jobsFailed.Add(1)
		span.End(err.Error())
		s.obs.log.Warn("job failed", "job", j.id, "trace", j.trace, "error", err)
		return
	}
	summary := campaign.Summarize(results)
	// Cache before marking done: a client that polls "done" and
	// immediately re-POSTs the spec must find the cache populated.
	if data, err := json.Marshal(cachedPayload{Spec: j.grid, Results: results, Summary: summary}); err == nil {
		s.cache.Put(j.key, data)
	}
	j.complete(results, summary)
	s.jobsDone.Add(1)
	span.End("")
	s.obs.log.Info("job done", "job", j.id, "trace", j.trace,
		"cells", j.cells, "wall", wall.Round(time.Millisecond))
}

// handleJob is GET /v1/jobs/{id}.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		errorJSON(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.status(true))
}

// handleJobResults is GET /v1/jobs/{id}/results: the bare result slice
// of a finished job, rendered exactly as campaign.WriteJSON renders it —
// byte-comparable against cmd/paco-campaign output for the same grid,
// which is what the CI federation smoke diffs.
func (s *Server) handleJobResults(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		errorJSON(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	results, done := j.resultsIfDone()
	if !done {
		errorJSON(w, http.StatusConflict, "job %s has not finished", j.id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	campaign.WriteJSON(w, results)
}

// handleShardLease is POST /v1/shards/lease: grant the next pending
// shard to the requesting worker, or 204 when the queue is empty.
func (s *Server) handleShardLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil && err != io.EOF {
		errorJSON(w, http.StatusBadRequest, "parsing lease request: %v", err)
		return
	}
	lease, ok := s.fed.lease(req)
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	if lease.Trace != "" {
		// Coordinator → worker trace propagation: the header mirrors the
		// lease body so even header-only clients can correlate.
		w.Header().Set(obs.TraceHeader, lease.Trace)
	}
	writeJSON(w, http.StatusOK, lease)
}

// handleShardRenew is POST /v1/shards/{id}/renew: restart the lease
// clock for a shard still executing, so only dead workers expire.
func (s *Server) handleShardRenew(w http.ResponseWriter, r *http.Request) {
	var ren ShardRenewal
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&ren); err != nil {
		errorJSON(w, http.StatusBadRequest, "parsing renewal: %v", err)
		return
	}
	status, msg := s.fed.renew(r.PathValue("id"), ren)
	if status >= 400 {
		errorJSON(w, status, "%s", msg)
		return
	}
	writeJSON(w, status, map[string]string{"status": msg})
}

// handleShardResult is POST /v1/shards/{id}/result.
func (s *Server) handleShardResult(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		errorJSON(w, status, "reading shard result: %v", err)
		return
	}
	var post ShardResultPost
	if err := json.Unmarshal(body, &post); err != nil {
		errorJSON(w, http.StatusBadRequest, "parsing shard result: %v", err)
		return
	}
	status, msg := s.fed.result(r.PathValue("id"), post)
	if status >= 400 {
		errorJSON(w, status, "%s", msg)
		return
	}
	writeJSON(w, status, map[string]string{"status": msg})
}

// Distribute federates an arbitrary campaign — `size` cells split into
// up to `shards` leases — across this server's worker federation and
// returns the merged, globally ordered results. grid non-nil ships
// self-contained grid shards (content-addressed, cache-backed); grid nil
// distributes an opaque job slice that workers resolve via their
// JobSource under the returned campaign's generated ID, campaignID. The
// servertest cluster routes experiments through this entry point.
func (s *Server) Distribute(ctx context.Context, campaignID string, grid *campaign.Grid, size, shards int) ([]campaign.Result, error) {
	return s.fed.distribute(ctx, campaignID, obs.NewTraceID(), 0, grid, size, shards, nil)
}

// InstrumentWorker attaches this server's flight recorder and per-cell
// histograms to a worker config, so an in-process federation (servertest,
// or a worker embedded next to its coordinator) records worker-side
// spans and cell timings into the coordinator's instruments.
func (s *Server) InstrumentWorker(cfg *WorkerConfig) {
	cfg.Recorder = s.obs.rec
	cfg.SimDuration = s.obs.cellDuration
	cfg.QueueWait = s.obs.cellQueueWait
	cfg.BatchSize = s.obs.batchSize
	cfg.BatchedCells = s.obs.batchedCells
	cfg.SingletonCells = s.obs.singletonCells
}

// NextCampaignID issues a fresh coordinator-unique campaign ID for
// Distribute callers that federate opaque job slices.
func (s *Server) NextCampaignID() string {
	return fmt.Sprintf("c-%06d", s.nextCampaign.Add(1))
}

// FederationStats snapshots the coordinator: pending/leased shards,
// retries, and per-worker liveness.
func (s *Server) FederationStats() FederationStats { return s.fed.stats() }

// handleExperiment is GET /v1/experiments/{name}: the named paper
// experiment rendered exactly as the CLI renders it (the same
// experiments.Run writer path paco and paco-repro use), cached under
// the content address of (name, experiment config), and single-flighted
// so a report stampede runs the experiment once.
func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !experiments.Has(name) {
		errorJSON(w, http.StatusNotFound,
			"unknown experiment %q (have %v)", name, experiments.Names())
		return
	}
	data, err := s.experimentReport(name)
	if err != nil {
		errorJSON(w, http.StatusInternalServerError, "running %s: %v", name, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(data)
}

func (s *Server) experimentReport(name string) ([]byte, error) {
	// Workers is execution parallelism only — reports are byte-identical
	// at any worker count (the campaign engine's core guarantee) — so it
	// must not perturb the content address.
	keyCfg := s.expCfg
	keyCfg.Workers = 0
	cfgJSON, err := json.Marshal(keyCfg)
	if err != nil {
		return nil, err
	}
	canon, err := CanonicalJSON(cfgJSON)
	if err != nil {
		return nil, err
	}
	key := Key([]byte("experiment"), []byte(name), canon)
	data, cached := s.cache.Get(key)
	s.obs.lookup("experiment", cached)
	if cached {
		return data, nil
	}

	s.expMu.Lock()
	if f, ok := s.expFlights[key]; ok {
		s.expMu.Unlock()
		<-f.done
		return f.data, f.err
	}
	f := &expFlight{done: make(chan struct{})}
	s.expFlights[key] = f
	s.expMu.Unlock()

	s.runExpFlight(name, key, f)
	return f.data, f.err
}

// runExpFlight executes one experiment for its single-flight leader.
// The flight is always settled and removed — even if the experiment
// panics — so followers can never block on a wedged flight; the
// semaphore keeps report execution within the worker-pool bounds
// instead of one-campaign-per-request.
func (s *Server) runExpFlight(name, key string, f *expFlight) {
	defer func() {
		if p := recover(); p != nil {
			f.err = fmt.Errorf("experiment %s panicked: %v", name, p)
		}
		if f.err == nil {
			s.cache.Put(key, f.data)
			s.simsRun.Add(1)
		}
		close(f.done)
		s.expMu.Lock()
		delete(s.expFlights, key)
		s.expMu.Unlock()
	}()
	s.expSem <- struct{}{}
	defer func() { <-s.expSem }()
	var buf bytes.Buffer
	f.err = experiments.Run(name, s.expCfg, &buf)
	f.data = buf.Bytes()
}

// handleHealthz is GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status        string       `json:"status"`
		Version       version.Info `json:"version"`
		UptimeSeconds float64      `json:"uptime_seconds"`
		QueueDepth    int          `json:"queue_depth"`
		JobsInFlight  int64        `json:"jobs_in_flight"`
	}{
		Status:        "ok",
		Version:       version.Get(),
		UptimeSeconds: time.Since(s.started).Seconds(),
		QueueDepth:    len(s.queue),
		JobsInFlight:  s.running.Load(),
	})
}
