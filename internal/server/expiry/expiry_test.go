package expiry

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestExpiredRemovesAndSorts(t *testing.T) {
	tr := New(time.Minute)
	t0 := time.Unix(1000, 0)
	tr.Touch("b", t0)
	tr.Touch("a", t0)
	tr.Touch("c", t0.Add(30*time.Second))

	if got := tr.Expired(t0.Add(59 * time.Second)); len(got) != 0 {
		t.Fatalf("nothing should expire before the TTL, got %v", got)
	}
	got := tr.Expired(t0.Add(time.Minute))
	if want := []string{"a", "b"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Expired = %v, want %v", got, want)
	}
	if tr.Len() != 1 {
		t.Fatalf("expired keys must be removed; Len = %d", tr.Len())
	}
	// Expired keys are gone for good until touched again.
	if got := tr.Expired(t0.Add(time.Hour)); !reflect.DeepEqual(got, []string{"c"}) {
		t.Fatalf("second sweep = %v, want [c]", got)
	}
}

func TestTouchRenews(t *testing.T) {
	tr := New(time.Minute)
	t0 := time.Unix(0, 0)
	tr.Touch("s", t0)
	tr.Touch("s", t0.Add(50*time.Second))
	if got := tr.Expired(t0.Add(70 * time.Second)); len(got) != 0 {
		t.Fatalf("renewed key expired early: %v", got)
	}
	if got := tr.Expired(t0.Add(110 * time.Second)); !reflect.DeepEqual(got, []string{"s"}) {
		t.Fatalf("renewed key should expire a TTL after the renewal, got %v", got)
	}
}

func TestForgetAndRemaining(t *testing.T) {
	tr := New(time.Minute)
	t0 := time.Unix(0, 0)
	tr.Touch("s", t0)
	if rem, ok := tr.Remaining("s", t0.Add(15*time.Second)); !ok || rem != 45*time.Second {
		t.Fatalf("Remaining = %v, %v; want 45s, true", rem, ok)
	}
	tr.Forget("s")
	tr.Forget("never-seen") // must be a no-op
	if _, ok := tr.Remaining("s", t0); ok {
		t.Fatal("forgotten key still tracked")
	}
	if got := tr.Expired(t0.Add(time.Hour)); len(got) != 0 {
		t.Fatalf("forgotten key expired: %v", got)
	}
}

func TestOldest(t *testing.T) {
	tr := New(time.Minute)
	t0 := time.Unix(0, 0)
	if tr.Oldest(t0) != 0 {
		t.Fatal("empty tracker should report zero oldest age")
	}
	tr.Touch("young", t0.Add(40*time.Second))
	tr.Touch("old", t0)
	if got := tr.Oldest(t0.Add(50 * time.Second)); got != 50*time.Second {
		t.Fatalf("Oldest = %v, want 50s", got)
	}
}

// TestSweepVsTouchInterleaving pins the two-phase sweep ordering fix:
// a key Touched after Candidates listed it must not be claimed by the
// ExpireIf that follows — the in-progress sweep loses to the renewal.
// This is the exact interleaving the single-call Expired API could not
// express: it removed keys at listing time, so a Touch landing between
// the listing and the eviction renewed an entry the sweeper was already
// committed to destroying.
func TestSweepVsTouchInterleaving(t *testing.T) {
	tr := New(time.Minute)
	t0 := time.Unix(0, 0)
	tr.Touch("s", t0)
	tr.Touch("idle", t0)

	// Phase 1 of the sweep: both keys are candidates, nothing removed.
	now := t0.Add(time.Minute)
	got := tr.Candidates(now)
	if want := []string{"idle", "s"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Candidates = %v, want %v", got, want)
	}
	if tr.Len() != 2 {
		t.Fatalf("Candidates must not remove; Len = %d, want 2", tr.Len())
	}

	// The client touches "s" while the sweep is in flight.
	tr.Touch("s", now)

	// Phase 2: the sweep's claim on the renewed key must fail...
	if tr.ExpireIf("s", now) {
		t.Fatal("ExpireIf claimed a key touched after Candidates listed it")
	}
	if _, ok := tr.Remaining("s", now); !ok {
		t.Fatal("losing ExpireIf must leave the key tracked")
	}
	// ...while the untouched candidate is claimed exactly once.
	if !tr.ExpireIf("idle", now) {
		t.Fatal("ExpireIf refused a still-expired candidate")
	}
	if tr.ExpireIf("idle", now) {
		t.Fatal("ExpireIf claimed the same key twice")
	}
	if tr.ExpireIf("never-seen", now) {
		t.Fatal("ExpireIf claimed an untracked key")
	}

	// The renewed key expires one full TTL after its renewal.
	if got := tr.Candidates(now.Add(59 * time.Second)); len(got) != 0 {
		t.Fatalf("renewed key listed early: %v", got)
	}
	if !tr.ExpireIf("s", now.Add(time.Minute)) {
		t.Fatal("renewed key should expire a TTL after the renewal")
	}
}

func TestNewRejectsNonPositiveTTL(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) should panic")
		}
	}()
	New(0)
}

// TestConcurrentTouchExpire hammers the tracker from many goroutines —
// the expiry/renew race the session sweeper and ingest paths exercise —
// and is meaningful under -race.
func TestConcurrentTouchExpire(t *testing.T) {
	tr := New(time.Millisecond)
	base := time.Unix(0, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", g)
			for i := 0; i < 500; i++ {
				now := base.Add(time.Duration(i) * time.Millisecond)
				tr.Touch(key, now)
				tr.Remaining(key, now)
				if i%7 == 0 {
					tr.Expired(now)
				}
				if i%11 == 0 {
					tr.Forget(key)
				}
			}
		}(g)
	}
	wg.Wait()
	// Drain whatever is left; every key must come out exactly once.
	seen := map[string]bool{}
	for _, k := range tr.Expired(base.Add(time.Hour)) {
		if seen[k] {
			t.Fatalf("key %s returned twice", k)
		}
		seen[k] = true
	}
	if tr.Len() != 0 {
		t.Fatalf("tracker should be empty after final sweep, Len = %d", tr.Len())
	}
}
