// Package expiry is the one lazy TTL clock in the server layer: a
// Tracker remembers when each key was last touched and hands back the
// keys whose silence has exceeded the TTL. The federation's lease table
// and the session table's idle sweeper share it — one tested expiry
// semantics instead of two hand-rolled clock loops.
//
// The Tracker never spawns goroutines and never reads the wall clock:
// callers pass `now` in, which keeps expiry decisions deterministic
// under test (inject a fake clock) and lets callers choose their own
// cadence — the federation polls lazily from its lease/result paths, the
// session table from a periodic sweep.
package expiry

import (
	"sort"
	"sync"
	"time"
)

// Tracker tracks last-touch times by key against a fixed TTL.
// All methods are safe for concurrent use.
type Tracker struct {
	ttl time.Duration

	mu   sync.Mutex
	last map[string]time.Time
}

// New builds a tracker with the given TTL (must be positive).
func New(ttl time.Duration) *Tracker {
	if ttl <= 0 {
		panic("expiry: TTL must be positive")
	}
	return &Tracker{ttl: ttl, last: make(map[string]time.Time)}
}

// TTL returns the tracker's expiry window.
func (t *Tracker) TTL() time.Duration { return t.ttl }

// Touch records activity for key at now, creating the entry on first
// touch and restarting its clock otherwise.
func (t *Tracker) Touch(key string, now time.Time) {
	t.mu.Lock()
	t.last[key] = now
	t.mu.Unlock()
}

// Forget drops key from the tracker (settled lease, closed session).
// Forgetting an unknown key is a no-op.
func (t *Tracker) Forget(key string) {
	t.mu.Lock()
	delete(t.last, key)
	t.mu.Unlock()
}

// Len reports how many keys are tracked.
func (t *Tracker) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.last)
}

// Expired removes and returns every key whose last touch is at least
// one TTL before now, sorted so callers process expirations in a
// deterministic order. A key returned here is no longer tracked: the
// caller owns its afterlife (re-queue the lease, evict the session) and
// may Touch it again to start a fresh clock.
func (t *Tracker) Expired(now time.Time) []string {
	t.mu.Lock()
	var keys []string
	for key, at := range t.last {
		if now.Sub(at) >= t.ttl {
			keys = append(keys, key)
			delete(t.last, key)
		}
	}
	t.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// Candidates returns every key whose last touch is at least one TTL
// before now, sorted, WITHOUT removing anything — the first half of a
// two-phase sweep. Unlike Expired, listing a key here claims nothing:
// the caller must confirm each candidate with ExpireIf under the same
// lock that serializes its own Touch callers, so an entry touched after
// the listing survives the sweep instead of being evicted on a stale
// verdict.
func (t *Tracker) Candidates(now time.Time) []string {
	t.mu.Lock()
	var keys []string
	for key, at := range t.last {
		if now.Sub(at) >= t.ttl {
			keys = append(keys, key)
		}
	}
	t.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// ExpireIf removes key and reports true only if it is still tracked and
// still expired at now — the second half of a two-phase sweep. A key
// that was Touched after Candidates listed it is no longer expired, so
// ExpireIf leaves it tracked and returns false; likewise a key already
// Forgotten returns false.
func (t *Tracker) ExpireIf(key string, now time.Time) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	at, ok := t.last[key]
	if !ok || now.Sub(at) < t.ttl {
		return false
	}
	delete(t.last, key)
	return true
}

// Oldest returns the age of the least recently touched key at now, or
// zero when nothing is tracked — the federation's oldest-lease-age
// gauge.
func (t *Tracker) Oldest(now time.Time) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	var oldest time.Duration
	for _, at := range t.last {
		if age := now.Sub(at); age > oldest {
			oldest = age
		}
	}
	return oldest
}

// Remaining reports how long key has before it expires at now, and
// whether the key is tracked at all. Zero or negative means the next
// Expired call will return it.
func (t *Tracker) Remaining(key string, now time.Time) (time.Duration, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	at, ok := t.last[key]
	if !ok {
		return 0, false
	}
	return t.ttl - now.Sub(at), true
}
