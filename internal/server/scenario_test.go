package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"paco/internal/campaign"
	"paco/internal/scenario"
)

// TestScenarioJobCacheHit: scenario jobs flow through the existing
// content-addressed path unchanged — the second identical scenario POST
// is a cache hit, and the family-name spelling on the benchmark axis
// hashes to the same key as the explicit scenario spelling.
func TestScenarioJobCacheHit(t *testing.T) {
	s, ts := testServer(t, Config{})

	spec := `{"scenarios":[{"family":"loopy"}],"instructions":12000,"warmup":4000}`
	first, code := postJob(t, ts, spec)
	if code != http.StatusAccepted || first.Cache != "miss" {
		t.Fatalf("first POST = %+v (code %d), want queued miss", first, code)
	}
	done := waitDone(t, ts, first.ID)
	if len(done.Results) != 1 || done.Results[0].Benchmark != "loopy" {
		t.Fatalf("scenario job results: %+v", done.Results)
	}
	if got := s.SimulationsRun(); got != 1 {
		t.Fatalf("simulations = %d, want 1", got)
	}

	// The same workload, three other spellings: the family name on the
	// benchmark axis, shuffled fields, and every scenario default
	// spelled out.
	norm, err := scenario.Scenario{Family: "loopy"}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	scJSON, _ := json.Marshal(norm)
	equivalents := []string{
		`{"warmup":4000,"benchmarks":["loopy"],"instructions":12000}`,
		fmt.Sprintf(`{"warmup":4000,"instructions":12000,"scenarios":[%s]}`, scJSON),
	}
	for i, eq := range equivalents {
		st, code := postJob(t, ts, eq)
		if code != http.StatusOK || st.Cache != "hit" {
			t.Fatalf("equivalent %d: %+v (code %d), want done hit", i, st, code)
		}
		if st.Key != first.Key {
			t.Fatalf("equivalent %d keyed %s, want %s", i, st.Key, first.Key)
		}
	}
	if got := s.SimulationsRun(); got != 1 {
		t.Fatalf("simulations after hits = %d, want still 1", got)
	}
}

// TestScenarioSpecKeyGolden pins the canonicalization contract with
// golden keys: equivalent scenario grids (field order, number spelling,
// spelled-out defaults, fuzz expansion) hash to one key, and that key is
// stable across releases — a change here invalidates every persisted
// cache, so it must be deliberate.
func TestScenarioSpecKeyGolden(t *testing.T) {
	key := func(t *testing.T, doc string) string {
		t.Helper()
		var g campaign.Grid
		if err := json.Unmarshal([]byte(doc), &g); err != nil {
			t.Fatal(err)
		}
		n, err := g.Normalized()
		if err != nil {
			t.Fatal(err)
		}
		k, err := specKey(n)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}

	base := key(t, `{"scenarios":[{"family":"adversarial-mdc"}],"instructions":20000,"warmup":5000}`)
	equivalents := []string{
		// Family name on the benchmark axis.
		`{"benchmarks":["adversarial-mdc"],"instructions":20000,"warmup":5000}`,
		// Shuffled fields.
		`{"warmup":5000,"instructions":20000,"scenarios":[{"family":"adversarial-mdc"}]}`,
		// Scenario defaults spelled out.
		`{"instructions":20000,"warmup":5000,"scenarios":[{"version":1,"name":"adversarial-mdc",
		  "family":"adversarial-mdc","params":{"eps_hi":0.3,"eps_lo":0.02,"split":0.3}}]}`,
	}
	for i, doc := range equivalents {
		if k := key(t, doc); k != base {
			t.Errorf("equivalent %d keyed %s, want %s", i, k, base)
		}
	}
	if k := key(t, `{"scenarios":[{"family":"loopy"}],"instructions":20000,"warmup":5000}`); k == base {
		t.Error("different scenarios share a key")
	}

	// A fuzz spec and its expansion are content-equal.
	fz := key(t, `{"fuzz":{"seed":9,"count":2},"instructions":20000,"warmup":5000}`)
	scs, err := scenario.FuzzSpec{Seed: 9, Count: 2}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	expanded, _ := json.Marshal(scs)
	if k := key(t, fmt.Sprintf(`{"instructions":20000,"warmup":5000,"scenarios":%s}`, expanded)); k != fz {
		t.Errorf("fuzz expansion keyed %s, want %s", k, fz)
	}
}

// TestScenarioCanonicalJSONGolden pins the canonical bytes of a
// normalized scenario document — the input to both the cache key and the
// trace provenance hash.
func TestScenarioCanonicalJSONGolden(t *testing.T) {
	norm, err := scenario.Scenario{Family: "loopy"}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := json.Marshal(norm)
	canon, err := CanonicalJSON(raw)
	if err != nil {
		t.Fatal(err)
	}
	const golden = `{"family":"loopy","name":"loopy","params":{"loop_weight":0.35,"trip_max":240,"trip_min":100},"seed":7984245161204320180,"version":1}`
	if string(canon) != golden {
		t.Errorf("canonical scenario JSON drifted:\n got %s\nwant %s", canon, golden)
	}
	// An equivalently-spelled document canonicalizes to the same bytes.
	alt := []byte(`{"params":{"trip_min":100,"loop_weight":0.35,"trip_max":2.4e2},
	                "version":1,"seed":7984245161204320180,"name":"loopy","family":"loopy"}`)
	canon2, err := CanonicalJSON(alt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(canon, canon2) {
		t.Errorf("equivalent documents canonicalize apart:\n%s\n%s", canon, canon2)
	}
}
