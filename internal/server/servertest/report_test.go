package servertest

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"paco/internal/server"
)

// reportSpec expands to 4 cells across 2 benchmarks — enough cells to
// shard unevenly and enough benchmarks to exercise the rollup sort.
const reportSpec = `{"benchmarks":["gzip","mcf"],"refresh":[100000,200000],"instructions":12000,"warmup":4000}`

func fetchReport(t *testing.T, base, id, query string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/campaigns/" + id + "/report" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET report %s: %s: %s", query, resp.Status, body)
	}
	return body
}

// TestCampaignReportIdenticalAcrossTopologies is the observatory's
// determinism contract: the default campaign report contains nothing
// tied to a particular execution, so one grid must produce
// byte-identical report bodies from a local run and from federations
// of any worker count, shard plan, or batch width.
func TestCampaignReportIdenticalAcrossTopologies(t *testing.T) {
	topologies := []struct {
		name string
		cfg  Config
	}{
		{"local", Config{Workers: 1, Server: server.Config{Shards: 0}}},
		{"1worker-1shard-unbatched", Config{Workers: 1, Shards: 1, BatchK: 1}},
		{"3workers-3shards", Config{Workers: 3, Shards: 3, BatchK: 2}},
		{"2workers-4shards-batched", Config{Workers: 2, Shards: 4}},
	}
	bodies := make([][]byte, len(topologies))
	for i, tp := range topologies {
		c := New(t, tp.cfg)
		st, err := c.RunGrid(reportSpec, 60*time.Second)
		if err != nil {
			t.Fatalf("%s: %v", tp.name, err)
		}
		bodies[i] = fetchReport(t, c.URL(), st.ID, "")
		c.Close()
	}
	for i := 1; i < len(topologies); i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Errorf("report from %s differs from %s:\n--- %s ---\n%s\n--- %s ---\n%s",
				topologies[i].name, topologies[0].name,
				topologies[0].name, bodies[0], topologies[i].name, bodies[i])
		}
	}
}

// TestCampaignReportExecutionLayer reconstructs a federated run's
// execution analytics and checks they describe what actually happened:
// every cell observed, the right workers credited with the right cell
// counts, and balance indices in their defined ranges.
func TestCampaignReportExecutionLayer(t *testing.T) {
	c := New(t, Config{Workers: 2, Shards: 4})
	st, err := c.RunGrid(reportSpec, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Cells int `json:"cells"`
		Exec  *struct {
			Mode           string  `json:"mode"`
			WallSeconds    float64 `json:"wall_seconds"`
			SimSeconds     float64 `json:"sim_seconds"`
			CellsObserved  int     `json:"cells_observed"`
			StragglerIndex float64 `json:"straggler_index"`
			ImbalanceRatio float64 `json:"imbalance_ratio"`
			Shards         *struct {
				Leases  int `json:"leases"`
				Retries int `json:"retries"`
			} `json:"shards"`
			Workers []struct {
				Worker string  `json:"worker"`
				Shards int     `json:"shards"`
				Cells  int     `json:"cells"`
				Busy   float64 `json:"busy_seconds"`
			} `json:"workers"`
		} `json:"exec"`
	}
	if err := json.Unmarshal(fetchReport(t, c.URL(), st.ID, "?exec=1"), &rep); err != nil {
		t.Fatal(err)
	}
	ex := rep.Exec
	if ex == nil {
		t.Fatal("?exec=1 returned no execution layer")
	}
	if ex.Mode != "federated" {
		t.Errorf("mode = %q, want federated", ex.Mode)
	}
	if ex.CellsObserved != rep.Cells {
		t.Errorf("observed %d of %d cell spans", ex.CellsObserved, rep.Cells)
	}
	if ex.Shards == nil || ex.Shards.Leases < 4 {
		t.Errorf("shard activity = %+v, want >= 4 leases", ex.Shards)
	}
	cells, shards := 0, 0
	for _, w := range ex.Workers {
		if w.Worker != "w1" && w.Worker != "w2" {
			t.Errorf("unexpected worker %q in report", w.Worker)
		}
		if w.Busy <= 0 {
			t.Errorf("worker %s busy = %v, want > 0", w.Worker, w.Busy)
		}
		cells += w.Cells
		shards += w.Shards
	}
	if cells != rep.Cells {
		t.Errorf("workers credited with %d cells, campaign had %d", cells, rep.Cells)
	}
	if shards != ex.Shards.Leases-ex.Shards.Retries {
		t.Errorf("workers credited with %d executions, coordinator completed %d",
			shards, ex.Shards.Leases-ex.Shards.Retries)
	}
	if ex.StragglerIndex < 1 {
		t.Errorf("straggler index = %v, want >= 1", ex.StragglerIndex)
	}
	if ex.ImbalanceRatio < 1 {
		t.Errorf("imbalance ratio = %v, want >= 1", ex.ImbalanceRatio)
	}
	if ex.SimSeconds <= 0 || ex.WallSeconds <= 0 {
		t.Errorf("timings: wall %v sim %v, want both > 0", ex.WallSeconds, ex.SimSeconds)
	}
}
