package servertest_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"paco/internal/obs"
	"paco/internal/server"
	"paco/internal/server/servertest"
)

// TestFederatedFlightTrace reconstructs a distributed sweep's full span
// chain from one /debug/flight snapshot: the job span at the root, one
// coordinator-side shard.lease span per shard under it, one worker-side
// shard.execute span under each lease, and every simulated cell under
// an execute span — all carrying the job's trace ID, with nothing left
// active once the job settles. This is the observability contract for
// the federation: a single coordinator endpoint explains where every
// cell of a sharded sweep actually ran.
func TestFederatedFlightTrace(t *testing.T) {
	c := servertest.New(t, servertest.Config{Workers: 2, Shards: 2})
	st, err := c.RunGrid(gridSpec, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.Trace == "" {
		t.Fatal("federated job status carries no trace ID")
	}

	report, err := c.Flight("", st.Trace, 0)
	if err != nil {
		t.Fatal(err)
	}
	byKind := map[string][]obs.SpanRecord{}
	byID := map[uint64]obs.SpanRecord{}
	for _, sp := range report.Spans {
		if sp.Trace != st.Trace {
			t.Fatalf("span %s/%s carries trace %q, want %q", sp.Kind, sp.Name, sp.Trace, st.Trace)
		}
		byKind[sp.Kind] = append(byKind[sp.Kind], sp)
		byID[sp.ID] = sp
	}

	jobs := byKind["job"]
	if len(jobs) != 1 {
		t.Fatalf("%d job spans for trace %s, want 1", len(jobs), st.Trace)
	}
	root := jobs[0]
	if root.Err != "" {
		t.Fatalf("job span ended with error %q", root.Err)
	}

	leases := byKind["shard.lease"]
	if len(leases) != 2 {
		t.Fatalf("%d shard.lease spans, want 2 (one per shard):\n%+v", len(leases), leases)
	}
	executesByParent := map[uint64]obs.SpanRecord{}
	for _, ex := range byKind["shard.execute"] {
		executesByParent[ex.Parent] = ex
	}
	for _, lease := range leases {
		if lease.Parent != root.ID {
			t.Errorf("lease span %s parented to %d, want job span %d", lease.Name, lease.Parent, root.ID)
		}
		if lease.Err != "" {
			t.Errorf("lease span %s ended with %q, want clean completion", lease.Name, lease.Err)
		}
		if lease.Attr("worker") == "" {
			t.Errorf("lease span %s records no worker attr", lease.Name)
		}
		ex, ok := executesByParent[lease.ID]
		if !ok {
			t.Errorf("lease span %s (id %d) has no worker-side shard.execute span", lease.Name, lease.ID)
			continue
		}
		if ex.Err != "" {
			t.Errorf("execute span %s ended with %q", ex.Name, ex.Err)
		}
		if got, want := ex.Attr("worker"), lease.Attr("worker"); got != want {
			t.Errorf("execute span %s ran on %q but the lease went to %q", ex.Name, got, want)
		}
	}

	// Every cell of the 4-cell grid must appear under one of the worker
	// execute spans — directly for singleton cells, or through the
	// "batch" span the batched-lockstep runner interposes when several
	// cells share one instruction stream.
	cells := byKind["cell"]
	if len(cells) != 4 {
		t.Fatalf("%d cell spans, want 4:\n%+v", len(cells), cells)
	}
	for _, cell := range cells {
		parent, ok := byID[cell.Parent]
		if ok && parent.Kind == "batch" {
			parent, ok = byID[parent.Parent]
		}
		if !ok || parent.Kind != "shard.execute" {
			t.Errorf("cell %s parented to %d (%s), want a shard.execute span (directly or via a batch span)",
				cell.Name, cell.Parent, parent.Kind)
		}
	}

	if report.Active != 0 {
		t.Errorf("%d spans still active after the job settled", report.Active)
	}

	// Workers record into the coordinator's histograms (InstrumentWorker),
	// so the per-cell duration count equals the cells simulated even
	// though no cell ran in the coordinator's process.
	metrics, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics, "paco_sim_cell_duration_seconds_count 4") {
		t.Errorf("coordinator cell-duration histogram did not observe the cluster's 4 cells")
	}
	if !strings.Contains(metrics, "paco_sim_cell_queue_wait_seconds_count 4") {
		t.Errorf("coordinator queue-wait histogram did not observe the cluster's 4 cells")
	}
}

// TestFlightRetryCause drives the chaos path — a worker killed
// mid-shard — and asserts the flight recorder explains the recovery:
// the abandoned attempt's lease span ends annotated with a retry
// cause, and the re-leased attempt completes cleanly.
func TestFlightRetryCause(t *testing.T) {
	release := make(chan struct{})
	jobs := chaosJobs(2, release)
	firstLease := make(chan string, 1)
	c := servertest.New(t, servertest.Config{
		Workers:    1,
		SimWorkers: 1,
		Shards:     1,
		LeaseTTL:   100 * time.Millisecond,
		OnLease: func(worker string, _ server.ShardLease) {
			select {
			case firstLease <- worker:
			default:
			}
		},
	})

	done := make(chan error, 1)
	go func() {
		_, err := c.Execute(context.Background(), 1, jobs)
		done <- err
	}()

	var victim string
	select {
	case victim = <-firstLease:
	case <-time.After(10 * time.Second):
		t.Fatal("no lease was granted within 10s")
	}
	c.KillWorker(victim)
	c.StartWorker()
	close(release)

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("federated campaign failed: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("federated campaign did not finish after the worker kill")
	}

	report, err := c.Flight("shard.lease", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	var expired, clean int
	for _, sp := range report.Spans {
		switch {
		case sp.Attr("retry_cause") != "":
			expired++
			if sp.Err == "" {
				t.Errorf("retried lease span %s ended without an error verdict", sp.Name)
			}
		case sp.Err == "":
			clean++
		}
	}
	if expired == 0 {
		t.Errorf("no lease span records a retry_cause after a mid-shard worker kill:\n%+v", report.Spans)
	}
	if clean == 0 {
		t.Errorf("no lease span completed cleanly after the re-lease:\n%+v", report.Spans)
	}
}
