// Package servertest is the distributed-determinism test harness: an
// in-process paco-serve federation — one real coordinator behind a real
// HTTP listener plus N real Worker loops — compact enough to stand up
// inside a unit test and honest enough that every lease, result post,
// and retry crosses the same wire path a multi-machine deployment uses.
//
// Because every simulation in this repository is deterministic and every
// shard is content-addressed, distributed correctness is not something
// to trust — it is something to assert byte-for-byte: any worker count,
// any shard interleaving, any mid-shard worker death, any dropped result
// POST must produce output identical to a single-process run. The
// cluster exposes exactly the knobs those assertions need: start and
// kill workers at will, observe leases as they are granted, and drop
// result POSTs on the floor.
package servertest

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"paco/internal/campaign"
	"paco/internal/server"
)

// Config sizes a test cluster. The zero value selects 3 workers, one
// shard per worker, and timing tuned for tests (fast polls, a lease TTL
// long enough that healthy shards never spuriously expire).
type Config struct {
	// Workers is how many worker loops New starts (default 3).
	Workers int

	// SimWorkers is each worker's local campaign pool (default 2).
	SimWorkers int

	// BatchK is each worker's batched lockstep width (0 keeps the
	// worker default; 1 disables batching). Batch width never changes
	// result bytes — the federated batching test pins this.
	BatchK int

	// Shards is the default shard count per distributed campaign
	// (default Workers).
	Shards int

	// LeaseTTL is the coordinator's re-lease timeout. The default (30s)
	// effectively disables expiry so healthy-path tests cannot flake on
	// a slow CI machine; chaos tests set it low to exercise recovery.
	LeaseTTL time.Duration

	// Poll is the workers' idle poll interval (default 2ms — tests want
	// immediate pickup).
	Poll time.Duration

	// DropResultPosts makes the next N shard-result POSTs (across all
	// workers) vanish on the wire, as if the network ate them — the
	// coordinator must recover via lease expiry.
	DropResultPosts int

	// OnLease observes every lease granted to any cluster worker, before
	// the worker starts executing it — the hook chaos tests use to kill
	// a worker provably mid-shard. Called from worker goroutines; keep
	// it quick and synchronized.
	OnLease func(worker string, lease server.ShardLease)

	// SessionWorkers gives every worker its own session-serving HTTP
	// sub-server, advertised to the coordinator through lease polls —
	// the topology the session router (Config.RouteSessions on the
	// coordinator) hashes sessions across. KillWorker then models real
	// worker death: the sub-server's connections are severed abruptly,
	// so proxied requests in flight fail at the transport.
	SessionWorkers bool

	// WorkerSessionTTL is the session-worker tables' idle TTL (default
	// 10m — comfortably above the coordinator's routed-session TTL, so
	// the coordinator's sweep owns eviction, per DESIGN.md §6b).
	WorkerSessionTTL time.Duration

	// Server overrides the coordinator configuration (Shards and lease
	// timing fields are filled from this Config when unset).
	Server server.Config
}

// Cluster is a running in-process federation.
type Cluster struct {
	t   testing.TB
	cfg Config

	// Server is the coordinator; HTTP serves its Handler.
	Server *server.Server
	HTTP   *httptest.Server

	drop *dropTransport

	mu        sync.Mutex
	campaigns map[string][]campaign.Job
	workers   map[string]*workerHandle
	nextW     int
	closed    bool
}

type workerHandle struct {
	name   string
	cancel context.CancelFunc
	done   chan struct{}

	// Session sub-server (Config.SessionWorkers only).
	sessSrv  *server.Server
	sessHTTP *httptest.Server
}

// killSessions tears the worker's session sub-server down abruptly:
// live connections (including the coordinator's proxied SSE streams)
// are severed first, so the router observes a mid-stream transport
// failure, not a graceful drain.
func (h *workerHandle) killSessions() {
	if h.sessHTTP == nil {
		return
	}
	h.sessHTTP.CloseClientConnections()
	h.sessHTTP.Close()
	h.sessSrv.Close()
}

// New starts a coordinator and cfg.Workers workers and registers
// cleanup with t. The coordinator runs at experiments.Quick scale
// unless cfg.Server says otherwise.
func New(t testing.TB, cfg Config) *Cluster {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 3
	}
	if cfg.SimWorkers == 0 {
		cfg.SimWorkers = 2
	}
	if cfg.Shards == 0 {
		cfg.Shards = cfg.Workers
	}
	if cfg.LeaseTTL == 0 {
		cfg.LeaseTTL = 30 * time.Second
	}
	if cfg.Poll == 0 {
		cfg.Poll = 2 * time.Millisecond
	}
	scfg := cfg.Server
	if scfg.Shards == 0 {
		scfg.Shards = cfg.Shards
	}
	if scfg.LeaseTTL == 0 {
		scfg.LeaseTTL = cfg.LeaseTTL
	}

	srv, err := server.New(scfg)
	if err != nil {
		t.Fatalf("servertest: building coordinator: %v", err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())

	c := &Cluster{
		t:         t,
		cfg:       cfg,
		Server:    srv,
		HTTP:      ts,
		drop:      &dropTransport{base: ts.Client().Transport, left: cfg.DropResultPosts},
		campaigns: make(map[string][]campaign.Job),
		workers:   make(map[string]*workerHandle),
	}
	for i := 0; i < cfg.Workers; i++ {
		c.StartWorker()
	}
	t.Cleanup(c.Close)
	return c
}

// URL returns the coordinator's base URL.
func (c *Cluster) URL() string { return c.HTTP.URL }

// StartWorker adds one worker loop to the federation and returns its
// name (w1, w2, ...). Safe to call after kills to model churn.
func (c *Cluster) StartWorker() string {
	c.mu.Lock()
	c.nextW++
	name := fmt.Sprintf("w%d", c.nextW)
	c.mu.Unlock()

	wcfg := server.WorkerConfig{
		Coordinator: c.HTTP.URL,
		Name:        name,
		SimWorkers:  c.cfg.SimWorkers,
		BatchK:      c.cfg.BatchK,
		Poll:        c.cfg.Poll,
		HTTPClient:  &http.Client{Transport: c.drop},
		JobSource:   c.lookupJobs,
		OnLease: func(lease server.ShardLease) {
			if c.cfg.OnLease != nil {
				c.cfg.OnLease(name, lease)
			}
		},
	}
	var sessSrv *server.Server
	var sessHTTP *httptest.Server
	if c.cfg.SessionWorkers {
		ttl := c.cfg.WorkerSessionTTL
		if ttl == 0 {
			ttl = 10 * time.Minute
		}
		ss, err := server.New(server.Config{
			JobWorkers:     1,
			CacheBytes:     1 << 20,
			SessionTTL:     ttl,
			SampleInterval: -1, // no sampler goroutine per worker
			FlightSpans:    -1,
		})
		if err != nil {
			c.t.Fatalf("servertest: building session server for %s: %v", name, err)
		}
		ss.Start()
		sessSrv, sessHTTP = ss, httptest.NewServer(ss.Handler())
		wcfg.SessionsURL = sessHTTP.URL
	}
	// Workers record spans and per-cell timings into the coordinator's
	// flight recorder and histograms, so one /debug/flight snapshot holds
	// the whole cluster's lease → execute → cell chain.
	c.Server.InstrumentWorker(&wcfg)
	w, err := server.NewWorker(wcfg)
	if err != nil {
		c.t.Fatalf("servertest: building worker %s: %v", name, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	h := &workerHandle{name: name, cancel: cancel, done: make(chan struct{}),
		sessSrv: sessSrv, sessHTTP: sessHTTP}
	go func() {
		defer close(h.done)
		w.Run(ctx)
	}()
	c.mu.Lock()
	c.workers[name] = h
	c.mu.Unlock()
	return name
}

// KillWorker cancels the named worker's context and waits for its loop
// to exit. A worker killed while executing a shard abandons it
// unposted; the coordinator's lease expiry re-queues the work. With
// SessionWorkers, the worker's session sub-server dies with it —
// connections severed abruptly — so routed sessions it owned must fail
// over by journal replay.
func (c *Cluster) KillWorker(name string) {
	c.mu.Lock()
	h := c.workers[name]
	delete(c.workers, name)
	c.mu.Unlock()
	if h == nil {
		c.t.Fatalf("servertest: no worker %q", name)
	}
	h.cancel()
	<-h.done
	h.killSessions()
}

// Close kills every worker and shuts the coordinator down. Registered
// with t.Cleanup by New; calling it early (e.g. to assert goroutine
// drain) is fine.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	handles := make([]*workerHandle, 0, len(c.workers))
	for _, h := range c.workers {
		handles = append(handles, h)
	}
	c.workers = map[string]*workerHandle{}
	c.mu.Unlock()
	for _, h := range handles {
		h.cancel()
	}
	for _, h := range handles {
		<-h.done
		h.killSessions()
	}
	c.HTTP.Close()
	c.Server.Close()
}

// Execute federates an arbitrary job slice across the cluster and
// returns one result per job, in job order — the exact contract of
// campaign.Run, which is why it plugs straight into
// experiments.Config.Execute to run whole paper experiments through the
// federation. The jobs stay in this process (workers resolve them
// through a shared registry); the scheduling, leasing, result transport,
// and merge all cross the real HTTP protocol.
//
// Jobs should be idempotent (standard simulation jobs are): chaos —
// lease expiry, dropped posts — can legitimately execute a shard twice.
func (c *Cluster) Execute(ctx context.Context, workers int, jobs []campaign.Job) ([]campaign.Result, error) {
	if len(jobs) == 0 {
		return nil, nil
	}
	_ = workers // execution parallelism lives in the cluster's workers
	id := c.Server.NextCampaignID()
	c.mu.Lock()
	c.campaigns[id] = jobs
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.campaigns, id)
		c.mu.Unlock()
	}()
	results, err := c.Server.Distribute(ctx, id, nil, len(jobs), c.cfg.Shards)
	if err != nil {
		return results, err
	}
	return results, campaign.FirstError(results)
}

func (c *Cluster) lookupJobs(campaignID string) []campaign.Job {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.campaigns[campaignID]
}

// RunGrid submits a grid through the public POST /v1/jobs path, waits
// for completion, and returns the finished job status (results
// included). With the coordinator configured for Shards > 1 this is the
// full production distributed path: submit, shard, lease, merge, cache.
func (c *Cluster) RunGrid(spec string, timeout time.Duration) (server.JobStatus, error) {
	st, err := c.post(spec)
	if err != nil {
		return st, err
	}
	deadline := time.Now().Add(timeout)
	for {
		cur, err := c.jobStatus(st.ID)
		if err != nil {
			return cur, err
		}
		switch cur.Status {
		case "done":
			return cur, nil
		case "failed":
			return cur, fmt.Errorf("job %s failed: %s", cur.ID, cur.Error)
		}
		if time.Now().After(deadline) {
			return cur, fmt.Errorf("job %s still %q after %v", cur.ID, cur.Status, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (c *Cluster) post(spec string) (server.JobStatus, error) {
	resp, err := http.Post(c.HTTP.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		return server.JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return server.JobStatus{}, fmt.Errorf("POST /v1/jobs: %s: %s", resp.Status, msg)
	}
	return decodeStatus(resp.Body)
}

func (c *Cluster) jobStatus(id string) (server.JobStatus, error) {
	resp, err := http.Get(c.HTTP.URL + "/v1/jobs/" + id)
	if err != nil {
		return server.JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return server.JobStatus{}, fmt.Errorf("GET /v1/jobs/%s: %s", id, resp.Status)
	}
	return decodeStatus(resp.Body)
}

// ResultsJSON fetches GET /v1/jobs/{id}/results — the bare result slice
// rendered exactly as campaign.WriteJSON renders it, for byte
// comparison against local runs.
func (c *Cluster) ResultsJSON(id string) ([]byte, error) {
	resp, err := http.Get(c.HTTP.URL + "/v1/jobs/" + id + "/results")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return nil, fmt.Errorf("GET /v1/jobs/%s/results: %s", id, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// Flight fetches GET /debug/flight, optionally filtered (kind, trace,
// limit — zero values mean no filter).
func (c *Cluster) Flight(kind, trace string, limit int) (server.FlightReport, error) {
	q := url.Values{}
	if kind != "" {
		q.Set("kind", kind)
	}
	if trace != "" {
		q.Set("trace", trace)
	}
	if limit > 0 {
		q.Set("limit", fmt.Sprint(limit))
	}
	u := c.HTTP.URL + "/debug/flight"
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	var report server.FlightReport
	resp, err := http.Get(u)
	if err != nil {
		return report, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return report, fmt.Errorf("GET /debug/flight: %s", resp.Status)
	}
	err = json.NewDecoder(resp.Body).Decode(&report)
	return report, err
}

// Metrics fetches the coordinator's /metrics text.
func (c *Cluster) Metrics() (string, error) {
	resp, err := http.Get(c.HTTP.URL + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return string(data), err
}

func decodeStatus(r io.Reader) (server.JobStatus, error) {
	var st server.JobStatus
	if err := json.NewDecoder(r).Decode(&st); err != nil {
		return server.JobStatus{}, err
	}
	return st, nil
}

// dropTransport eats the first N shard-result POSTs, simulating a
// network that delivered the request into the void. Everything else
// passes through.
type dropTransport struct {
	base http.RoundTripper

	mu   sync.Mutex
	left int
}

func (d *dropTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.Method == http.MethodPost && strings.HasSuffix(req.URL.Path, "/result") {
		d.mu.Lock()
		drop := d.left > 0
		if drop {
			d.left--
		}
		d.mu.Unlock()
		if drop {
			if req.Body != nil {
				req.Body.Close()
			}
			return nil, errors.New("servertest: result POST dropped by chaos transport")
		}
	}
	base := d.base
	if base == nil {
		base = http.DefaultTransport
	}
	return base.RoundTrip(req)
}
