package servertest_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"paco/internal/campaign"
	"paco/internal/experiments"
	"paco/internal/server"
	"paco/internal/server/servertest"
)

// gridSpec is the sweep the topology tests distribute: 2 benchmarks x 2
// widths = 4 cells, small enough to run many topologies.
const gridSpec = `{"benchmarks":["gzip","twolf"],"instructions":12000,"warmup":4000,"widths":[2,4]}`

// localResultsJSON runs the spec's grid in-process — the single-process
// golden every distributed run must reproduce byte for byte.
func localResultsJSON(t *testing.T, spec string, workers int) []byte {
	t.Helper()
	var grid campaign.Grid
	if err := json.Unmarshal([]byte(spec), &grid); err != nil {
		t.Fatal(err)
	}
	norm, err := grid.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	results, err := campaign.Run(context.Background(), workers, norm.Jobs())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := campaign.WriteJSON(&buf, results); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFederatedGridByteIdenticalAnyTopology is the tentpole assertion:
// the same grid submitted through the full production path (POST
// /v1/jobs -> shard -> lease over HTTP -> merge) produces byte-identical
// results at every worker count and shard plan, including plans with
// more shards than workers and more workers than shards.
func TestFederatedGridByteIdenticalAnyTopology(t *testing.T) {
	want := localResultsJSON(t, gridSpec, 2)
	for _, tc := range []struct{ workers, shards int }{
		{1, 1},
		{1, 3},
		{2, 2},
		{3, 4},
		{4, 2},
		{3, 99}, // trimmed to one shard per cell
	} {
		t.Run(fmt.Sprintf("w%d-s%d", tc.workers, tc.shards), func(t *testing.T) {
			c := servertest.New(t, servertest.Config{Workers: tc.workers, Shards: tc.shards})
			st, err := c.RunGrid(gridSpec, 30*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			if st.Cache != "miss" {
				t.Fatalf("first submission: cache = %q, want miss", st.Cache)
			}
			got, err := c.ResultsJSON(st.ID)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("federated results differ from the single-process run:\n got: %.200s\nwant: %.200s", got, want)
			}
			// The distributed result lands in the same content-addressed
			// cache the local path uses: an identical re-submission is a
			// pure hit, no leases granted.
			leased := c.Server.FederationStats().ShardsCompleted
			again, err := c.RunGrid(gridSpec, 10*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			if again.Cache != "hit" {
				t.Fatalf("re-submission: cache = %q, want hit", again.Cache)
			}
			if done := c.Server.FederationStats().ShardsCompleted; done != leased {
				t.Fatalf("re-submission leased new shards: %d -> %d", leased, done)
			}
		})
	}
}

// TestShardCacheCompletesWithoutLease: shards are individually
// content-addressed, so a campaign whose shards already ran — here via a
// direct Distribute that bypasses the whole-job cache — completes from
// the shard cache without granting a single new lease.
func TestShardCacheCompletesWithoutLease(t *testing.T) {
	c := servertest.New(t, servertest.Config{Workers: 2, Shards: 2})
	var grid campaign.Grid
	if err := json.Unmarshal([]byte(gridSpec), &grid); err != nil {
		t.Fatal(err)
	}
	norm, err := grid.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	first, err := c.Server.Distribute(context.Background(), "dist-a", &norm, norm.Size(), 2)
	if err != nil {
		t.Fatal(err)
	}
	completed := c.Server.FederationStats().ShardsCompleted
	if completed == 0 {
		t.Fatal("first Distribute granted no leases")
	}
	second, err := c.Server.Distribute(context.Background(), "dist-b", &norm, norm.Size(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Server.FederationStats().ShardsCompleted; got != completed {
		t.Fatalf("second Distribute re-leased cached shards: %d -> %d", completed, got)
	}
	var a, b bytes.Buffer
	campaign.WriteJSON(&a, first)
	campaign.WriteJSON(&b, second)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("cached shard results differ from the executed run")
	}
}

// TestFederatedExperimentsByteIdentical is the determinism golden test:
// whole paper experiments — fig2 and the robustness study, every
// campaign they submit — run through a 3-worker federation and must
// render reports byte-identical to plain experiments.Run. Runs under
// -race in CI like everything else.
func TestFederatedExperimentsByteIdentical(t *testing.T) {
	for _, name := range []string{"fig2", "robustness"} {
		t.Run(name, func(t *testing.T) {
			cfg := experiments.Quick()
			cfg.Workers = 2
			var local bytes.Buffer
			if err := experiments.Run(name, cfg, &local); err != nil {
				t.Fatalf("local %s: %v", name, err)
			}

			c := servertest.New(t, servertest.Config{Workers: 3, SimWorkers: 1})
			fcfg := cfg
			fcfg.Execute = c.Execute
			var federated bytes.Buffer
			if err := experiments.Run(name, fcfg, &federated); err != nil {
				t.Fatalf("federated %s: %v", name, err)
			}
			if !bytes.Equal(local.Bytes(), federated.Bytes()) {
				t.Fatalf("%s report differs between local and federated execution\nlocal:\n%s\nfederated:\n%s",
					name, local.String(), federated.String())
			}
		})
	}
}

// chaosJobs builds a campaign of pure, idempotent Exec cells that block
// until release closes (or their context dies) and then return a
// deterministic result — the scaffolding that lets the chaos test hold
// workers provably mid-shard.
func chaosJobs(n int, release <-chan struct{}) []campaign.Job {
	jobs := make([]campaign.Job, n)
	for i := range jobs {
		i := i
		jobs[i] = campaign.Job{
			ID:        fmt.Sprintf("chaos-%02d", i),
			Benchmark: "chaos",
			Exec: func(ctx context.Context) (*campaign.Result, error) {
				select {
				case <-release:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
				r := &campaign.Result{
					Benchmark: "chaos",
					Cycles:    uint64(1000 + i),
					IPC:       0.5 * float64(i+1),
				}
				r.SetExtra("cell", float64(i))
				return r, nil
			},
		}
	}
	return jobs
}

// TestChaosWorkerDeathAndDroppedPost kills a worker mid-shard AND drops
// a result POST on the wire, then asserts the coordinator re-leases the
// lost shards, the merged report is byte-identical to an undisturbed
// local run, the retries are visible in the federation counters, and —
// reusing the drain_test discipline — no goroutines leak.
func TestChaosWorkerDeathAndDroppedPost(t *testing.T) {
	before := runtime.NumGoroutine()

	release := make(chan struct{})
	jobs := chaosJobs(12, release)

	var mu sync.Mutex
	leased := make(map[string]int) // worker -> leases granted
	firstLease := make(chan string, 1)
	c := servertest.New(t, servertest.Config{
		Workers:         3,
		SimWorkers:      1,
		Shards:          6,
		LeaseTTL:        100 * time.Millisecond,
		DropResultPosts: 1,
		OnLease: func(worker string, _ server.ShardLease) {
			mu.Lock()
			leased[worker]++
			mu.Unlock()
			select {
			case firstLease <- worker:
			default:
			}
		},
	})

	type outcome struct {
		results []campaign.Result
		err     error
	}
	done := make(chan outcome, 1)
	go func() {
		results, err := c.Execute(context.Background(), 1, jobs)
		done <- outcome{results, err}
	}()

	// Kill the first worker to lease a shard while it is provably inside
	// that shard (every cell blocks on release, so the worker cannot
	// have finished).
	var victim string
	select {
	case victim = <-firstLease:
	case <-time.After(10 * time.Second):
		t.Fatal("no lease was granted within 10s")
	}
	c.KillWorker(victim)
	close(release)

	var out outcome
	select {
	case out = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("federated campaign did not finish after the chaos")
	}
	if out.err != nil {
		t.Fatalf("federated campaign failed: %v", out.err)
	}

	// The report must be exactly what an undisturbed single-process run
	// produces.
	want, err := campaign.Run(context.Background(), 1, jobs)
	if err != nil {
		t.Fatal(err)
	}
	var gotJSON, wantJSON bytes.Buffer
	campaign.WriteJSON(&gotJSON, out.results)
	campaign.WriteJSON(&wantJSON, want)
	if !bytes.Equal(gotJSON.Bytes(), wantJSON.Bytes()) {
		t.Fatalf("chaos changed the report:\n got: %s\nwant: %s", gotJSON.String(), wantJSON.String())
	}

	// Both failure injections must actually have bitten: the killed
	// worker's lease and the dropped POST each force a re-lease.
	if stats := c.Server.FederationStats(); stats.Retries < 2 {
		t.Fatalf("federation retries = %d, want >= 2 (worker death + dropped POST)", stats.Retries)
	}
	mu.Lock()
	victimLeases := leased[victim]
	mu.Unlock()
	if victimLeases == 0 {
		t.Fatal("victim worker recorded no leases")
	}

	// Everything must drain: workers, coordinator pool, HTTP server.
	c.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if now := runtime.NumGoroutine(); now <= before+2 {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines did not drain: before=%d now=%d", before, now)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFederationMetrics: after a distributed run the coordinator's
// /metrics expose live workers, completed shards, and retry counters —
// the lines the CI federation smoke greps.
func TestFederationMetrics(t *testing.T) {
	c := servertest.New(t, servertest.Config{Workers: 2, Shards: 2})
	if _, err := c.RunGrid(gridSpec, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	text, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"paco_federation_workers_live 2",
		"paco_federation_shards_completed_total 2",
		"paco_federation_shard_retries_total 0",
		`paco_federation_worker_last_seen_seconds{worker="w1"}`,
		`paco_federation_worker_last_seen_seconds{worker="w2"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, text)
		}
	}
}

// TestFederatedBatchedByteIdentical composes the batched lockstep path
// with federation and chaos: a refresh-axis sweep — heavily batchable,
// every cell replays one benchmark stream — runs through the full
// production path (POST /v1/jobs -> shard -> lease -> merge) on workers
// executing at several batch widths, with one shard-result POST eaten
// by the network so a lease must expire and re-run. The merged report
// must still reproduce the single-process unbatched golden byte for
// byte: batching changes scheduling, never cell content.
func TestFederatedBatchedByteIdentical(t *testing.T) {
	const spec = `{"benchmarks":["gzip"],"refresh":[50000,100000,200000,400000],` +
		`"prob_gates":[0.3],"instructions":12000,"warmup":4000}`
	want := localResultsJSON(t, spec, 2)
	for _, batchK := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("batch%d", batchK), func(t *testing.T) {
			c := servertest.New(t, servertest.Config{
				Workers:         2,
				Shards:          3,
				BatchK:          batchK,
				DropResultPosts: 1,
				LeaseTTL:        150 * time.Millisecond,
			})
			st, err := c.RunGrid(spec, 60*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.ResultsJSON(st.ID)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("batch=%d federated results differ from the unbatched single-process run:\n got: %.200s\nwant: %.200s",
					batchK, got, want)
			}
		})
	}
}
