package servertest_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"paco/internal/server"
	"paco/internal/session"
	"paco/internal/trace"
)

// soakSpec is the estimator set every soak session runs: one dynamic
// PaCo and one count baseline — enough to exercise both estimator score
// shapes without making -race apply cost dominate the test.
const soakSpec = `{"estimators":[{"kind":"paco","refresh":128},{"kind":"count"}]}`

// soakEvents synthesizes one client's deterministic event stream — the
// session package's shared generator, so the soak, the routing chaos
// suite, and the paco-obs load generator all stream the same shape.
func soakEvents(seed int64, n int) []trace.Event {
	return session.SyntheticEvents(seed, n)
}

func soakTraceBytes(t *testing.T, evs []trace.Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs {
		if err := w.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// metricValue extracts one sample's value from an exposition scrape.
func metricValue(body, series string) (float64, bool) {
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err == nil {
				return v, true
			}
		}
	}
	return 0, false
}

// histogramQuantile estimates a quantile from exposition bucket lines:
// the upper bound of the first cumulative bucket covering q of the
// observations (the standard exposition-side estimate).
func histogramQuantile(body, family string, q float64) (float64, uint64) {
	type bucket struct {
		le    float64
		count uint64
	}
	var buckets []bucket
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		rest, ok := strings.CutPrefix(line, family+`_bucket{le="`)
		if !ok {
			continue
		}
		le, rest, ok := strings.Cut(rest, `"} `)
		if !ok {
			continue
		}
		bound, err1 := strconv.ParseFloat(le, 64)
		if le == "+Inf" {
			bound, err1 = 1e308, nil
		}
		n, err2 := strconv.ParseUint(strings.TrimSpace(rest), 10, 64)
		if err1 != nil || err2 != nil {
			continue
		}
		buckets = append(buckets, bucket{bound, n})
	}
	if len(buckets) == 0 {
		return 0, 0
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	total := buckets[len(buckets)-1].count
	want := uint64(q * float64(total))
	for _, b := range buckets {
		if b.count >= want {
			return b.le, total
		}
	}
	return buckets[len(buckets)-1].le, total
}

// TestSessionSoak is the subsystem's load-and-leak gate: well over 100
// concurrent live sessions streaming simultaneously through real HTTP,
// every final score byte-identical to offline replay, backpressure
// engaging (429s observed and retried losslessly, matching the exported
// counter), abandoned sessions evicted by the idle sweeper, and zero
// goroutine leaks once the server closes. It logs sessions/sec,
// events/sec, and ingest p99 as read from /metrics. Run under -race this
// is the PR's soak acceptance test.
func TestSessionSoak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s, err := server.New(server.Config{
		JobWorkers: 1, CacheBytes: 1 << 20,
		SessionShards:      8,
		SessionMaxOpen:     512,
		SessionQueueEvents: 512,
		SessionTTL:         3 * time.Second,
		SessionSweep:       100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())

	const (
		clients      = 120  // concurrent sessions (acceptance floor is 100)
		eventsPer    = 2000 // per streaming client
		chunkSize    = 997  // bytes; coprime with the 23-byte record size
		abandonEvery = 4    // every 4th client leaves its session to the sweeper
		// The contended session: posters share one stream of commuting
		// cycle events, chunks bigger than the queue cap, so whoever
		// beats the shard worker to the lock is backpressured.
		hotPosters, hotRounds, hotChunkEvents = 8, 40, 600
	)

	var spec session.Spec
	if err := json.Unmarshal([]byte(soakSpec), &spec); err != nil {
		t.Fatal(err)
	}

	openOne := func(body string) (string, error) {
		resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(body))
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusCreated {
			return "", fmt.Errorf("open → %d: %s", resp.StatusCode, raw)
		}
		var opened struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(raw, &opened); err != nil {
			return "", err
		}
		return opened.ID, nil
	}

	// Phase 1: open every session up front, so the table demonstrably
	// holds >= clients+1 concurrent sessions before any of them streams.
	ids := make([]string, clients)
	for c := range ids {
		id, err := openOne(soakSpec)
		if err != nil {
			t.Fatal(err)
		}
		ids[c] = id
	}
	hotID, err := openOne(soakSpec)
	if err != nil {
		t.Fatal(err)
	}
	if open, ok := metricValue(scrapeMetrics(t, ts), "paco_session_open"); !ok || open < clients {
		t.Fatalf("paco_session_open = %v (found %v), want >= %d concurrent sessions", open, ok, clients)
	}

	// Phase 2: everything streams at once.
	start := time.Now()
	var rejected, eventsSent atomic.Int64
	post := func(id string, contentType string, chunk []byte) (int, error) {
		for {
			resp, err := http.Post(ts.URL+"/v1/sessions/"+id+"/events", contentType, bytes.NewReader(chunk))
			if err != nil {
				return 0, err
			}
			retryAfter := resp.Header.Get("Retry-After")
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusAccepted:
				return resp.StatusCode, nil
			case http.StatusTooManyRequests:
				if retryAfter == "" {
					return 0, fmt.Errorf("429 without Retry-After")
				}
				rejected.Add(1)
				time.Sleep(time.Millisecond) // then retry the identical bytes
			default:
				return 0, fmt.Errorf("ingest %s → %d", id, resp.StatusCode)
			}
		}
	}

	errs := make(chan error, clients+hotPosters)
	for c := 0; c < clients; c++ {
		go func(c int) {
			errs <- func() error {
				evs := soakEvents(int64(1000+c), eventsPer)
				raw := soakTraceBytes(t, evs)
				for off := 0; off < len(raw); {
					end := off + chunkSize
					if end > len(raw) {
						end = len(raw)
					}
					if _, err := post(ids[c], "application/octet-stream", raw[off:end]); err != nil {
						return fmt.Errorf("client %d: %w", c, err)
					}
					off = end
				}
				eventsSent.Add(eventsPer)
				if c%abandonEvery == 0 {
					return nil // abandoned: the idle sweeper must reap it
				}
				// Offline reference: the DELETE body must be byte-identical.
				r, err := trace.NewReader(bytes.NewReader(raw))
				if err != nil {
					return err
				}
				offline, err := session.Replay(r, spec)
				if err != nil {
					return err
				}
				want, err := json.MarshalIndent(offline, "", "  ")
				if err != nil {
					return err
				}
				want = append(want, '\n')
				// The queue must drain before close for a Queued-free final
				// doc; DELETE itself drains too, so close immediately.
				req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+ids[c], nil)
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					return err
				}
				got, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					return fmt.Errorf("client %d: close → %d: %s", c, resp.StatusCode, got)
				}
				if !bytes.Equal(got, want) {
					return fmt.Errorf("client %d: streamed scores differ from offline replay:\n got %s\nwant %s", c, got, want)
				}
				return nil
			}()
		}(c)
	}
	hotChunk := func() []byte {
		var buf bytes.Buffer
		for i := 0; i < hotChunkEvents; i++ {
			fmt.Fprintf(&buf, "{\"kind\":\"cycle\",\"cycle\":%d}\n", 64*(i+1))
		}
		return buf.Bytes()
	}()
	for p := 0; p < hotPosters; p++ {
		go func() {
			errs <- func() error {
				for r := 0; r < hotRounds; r++ {
					if _, err := post(hotID, "application/x-ndjson", hotChunk); err != nil {
						return fmt.Errorf("hot poster: %w", err)
					}
					eventsSent.Add(hotChunkEvents)
				}
				return nil
			}()
		}()
	}
	for i := 0; i < clients+hotPosters; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)

	if rejected.Load() == 0 {
		t.Error("backpressure never engaged: no 429 observed during the soak")
	}

	// The hot session: all posters' chunks survived their retries.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+hotID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var hotFinal session.Scores
	err = json.NewDecoder(resp.Body).Decode(&hotFinal)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(hotPosters * hotRounds * hotChunkEvents); hotFinal.Events != want {
		t.Errorf("hot session applied %d events, want %d (acknowledged chunks lost or duplicated)", hotFinal.Events, want)
	}

	// Phase 3: the sweeper reaps the abandoned quarter.
	abandoned := (clients + abandonEvery - 1) / abandonEvery
	deadline := time.Now().Add(30 * time.Second)
	var body string
	for {
		body = scrapeMetrics(t, ts)
		if open, ok := metricValue(body, "paco_session_open"); ok && open == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sessions never fully evicted:\n%s", body)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if v, _ := metricValue(body, `paco_session_closed_total{reason="evicted"}`); v != float64(abandoned) {
		t.Errorf(`closed_total{reason="evicted"} = %v, want %d`, v, abandoned)
	}
	if v, _ := metricValue(body, `paco_session_closed_total{reason="client"}`); v != float64(clients-abandoned+1) {
		t.Errorf(`closed_total{reason="client"} = %v, want %d`, v, clients-abandoned+1)
	}
	if v, _ := metricValue(body, "paco_session_backpressure_total"); v != float64(rejected.Load()) {
		t.Errorf("backpressure counter %v does not match the %d observed 429s", v, rejected.Load())
	}
	if v, _ := metricValue(body, "paco_session_events_total"); v != float64(eventsSent.Load()) {
		t.Errorf("events counter %v, want %d acknowledged events", v, eventsSent.Load())
	}

	// The soak report, from the same exposition an operator would read.
	p99, ingests := histogramQuantile(body, "paco_session_ingest_duration_seconds", 0.99)
	t.Logf("soak: %d sessions in %.2fs (%.0f sessions/sec), %d events (%.0f events/sec), %d ingest calls p99 <= %.4fs, %d backpressure 429s",
		clients+1, elapsed.Seconds(), float64(clients+1)/elapsed.Seconds(),
		eventsSent.Load(), float64(eventsSent.Load())/elapsed.Seconds(),
		ingests, p99, rejected.Load())

	// Phase 4: shut everything down and prove nothing leaked.
	ts.Close()
	s.Close()
	leakDeadline := time.Now().Add(15 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(leakDeadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d alive, baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func scrapeMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}
