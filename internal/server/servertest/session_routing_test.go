package servertest_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"paco/internal/server"
	"paco/internal/server/servertest"
	"paco/internal/session"
	"paco/internal/trace"
)

// openRouted opens a session through a routing coordinator, retrying
// while the federation has no live session workers yet (workers
// advertise their endpoints through lease polls, so the first poll has
// to land before the router can place anything).
func openRouted(t *testing.T, base, spec string) (id, worker string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Post(base+"/v1/sessions", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusCreated {
			var opened struct {
				ID     string `json:"id"`
				Worker string `json:"worker"`
			}
			if err := json.Unmarshal(raw, &opened); err != nil {
				t.Fatal(err)
			}
			if opened.Worker == "" {
				t.Fatalf("routed open did not name an owning worker: %s", raw)
			}
			return opened.ID, opened.Worker
		}
		if resp.StatusCode != http.StatusServiceUnavailable || time.Now().After(deadline) {
			t.Fatalf("routed open → %d: %s", resp.StatusCode, raw)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// postRouted posts one ingest chunk, retrying 429 backpressure with the
// identical bytes.
func postRouted(base, id, contentType string, chunk []byte) error {
	for {
		resp, err := http.Post(base+"/v1/sessions/"+id+"/events", contentType, bytes.NewReader(chunk))
		if err != nil {
			return err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			return nil
		case http.StatusTooManyRequests:
			time.Sleep(time.Millisecond)
		default:
			return fmt.Errorf("ingest → %d: %s", resp.StatusCode, body)
		}
	}
}

// TestSessionRoutingFailover is the tentpole acceptance test: a routed
// session streaming through a 3-worker federation has its owning worker
// killed mid-stream — connections severed, no drain — and must finish
// with final scores byte-identical to an uninterrupted offline replay
// of the same events, its live SSE stream intact through the failover
// and terminated by the "final" frame, and no goroutine left behind.
func TestSessionRoutingFailover(t *testing.T) {
	baseline := runtime.NumGoroutine()
	c := servertest.New(t, servertest.Config{
		Workers:        3,
		SessionWorkers: true,
		Server: server.Config{
			JobWorkers: 1,
			CacheBytes: 1 << 20,
			// Routed-session coordinator; TTLs stay at their defaults
			// (5m), far above the test's runtime, so failover — not
			// eviction — is the only close path in play.
			RouteSessions: true,
		},
	})

	var spec session.Spec
	if err := json.Unmarshal([]byte(soakSpec), &spec); err != nil {
		t.Fatal(err)
	}
	evs := soakEvents(424242, 20000)
	raw := soakTraceBytes(t, evs)

	id, owner := openRouted(t, c.URL(), soakSpec)
	t.Logf("session %s owned by %s", id, owner)

	// Subscribe to the live stream before any events flow; the terminal
	// "final" frame must arrive even though the owner dies mid-stream.
	finalCh := make(chan session.Scores, 1)
	sseErr := make(chan error, 1)
	go func() {
		sseErr <- func() error {
			resp, err := http.Get(c.URL() + "/v1/sessions/" + id + "/live")
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("live → %d", resp.StatusCode)
			}
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
			var name, data string
			for sc.Scan() {
				line := sc.Text()
				switch {
				case strings.HasPrefix(line, "event: "):
					name = strings.TrimPrefix(line, "event: ")
				case strings.HasPrefix(line, "data: "):
					data = strings.TrimPrefix(line, "data: ")
				case line == "" && name == "final":
					var final session.Scores
					if err := json.Unmarshal([]byte(data), &final); err != nil {
						return err
					}
					finalCh <- final
					return nil
				}
			}
			return fmt.Errorf("live stream ended without a final frame: %v", sc.Err())
		}()
	}()

	// Stream in record-misaligned chunks; kill the owner halfway. Every
	// chunk acknowledged before the kill is in the coordinator's journal
	// and must survive into the replayed session.
	const chunkSize = 997
	killAt := len(raw) / 2
	killed := false
	for off := 0; off < len(raw); {
		end := off + chunkSize
		if end > len(raw) {
			end = len(raw)
		}
		if !killed && off >= killAt {
			c.KillWorker(owner)
			killed = true
		}
		if err := postRouted(c.URL(), id, "application/octet-stream", raw[off:end]); err != nil {
			t.Fatalf("chunk at %d (killed=%v): %v", off, killed, err)
		}
		off = end
	}
	if !killed {
		t.Fatal("owner was never killed; trace too small")
	}

	// Offline reference: byte-identical finals despite the failover.
	r, err := trace.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	offline, err := session.Replay(r, spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.MarshalIndent(offline, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, '\n')

	req, _ := http.NewRequest(http.MethodDelete, c.URL()+"/v1/sessions/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("close → %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("failed-over final scores differ from offline replay:\n got %s\nwant %s", got, want)
	}

	// The subscriber's stream survived the owner's death and terminated
	// with the same final document.
	select {
	case err := <-sseErr:
		if err != nil {
			t.Fatalf("live subscriber: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("live subscriber never saw the final frame")
	}
	final := <-finalCh
	if !final.Final || final.Events != uint64(len(evs)) {
		t.Fatalf("SSE final = %+v, want Final with %d events", final, len(evs))
	}

	// Stragglers see deterministic verdicts: the closed ID answers 410
	// naming the close reason, an unknown ID answers 404.
	for _, probe := range []struct {
		id, contains string
		status       int
	}{
		{id, "client", http.StatusGone},
		{"s-000000000000-999999", "", http.StatusNotFound},
	} {
		req, _ := http.NewRequest(http.MethodDelete, c.URL()+"/v1/sessions/"+probe.id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != probe.status || !strings.Contains(string(body), probe.contains) {
			t.Fatalf("DELETE %s → %d %s, want %d containing %q",
				probe.id, resp.StatusCode, body, probe.status, probe.contains)
		}
	}

	metrics, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := metricValue(metrics, "paco_session_failover_total"); !ok || v < 1 {
		t.Errorf("paco_session_failover_total = %v (found %v), want >= 1", v, ok)
	}
	if v, _ := metricValue(metrics, "paco_session_routed_opened_total"); v != 1 {
		t.Errorf("paco_session_routed_opened_total = %v, want 1", v)
	}
	if v, _ := metricValue(metrics, `paco_session_routed_closed_total{reason="client"}`); v != 1 {
		t.Errorf(`paco_session_routed_closed_total{reason="client"} = %v, want 1`, v)
	}
	if v, _ := metricValue(metrics, "paco_session_routed_open"); v != 0 {
		t.Errorf("paco_session_routed_open = %v, want 0 after close", v)
	}
	if v, ok := metricValue(metrics, "paco_session_failover_replayed_chunks_total"); !ok || v < 1 {
		t.Errorf("paco_session_failover_replayed_chunks_total = %v, want >= 1", v)
	}

	// Everything down, nothing leaked — the router's sweeper, the SSE
	// proxy, and the dead worker's sub-server goroutines all drained.
	c.Close()
	leakDeadline := time.Now().Add(15 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(leakDeadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d alive, baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestSessionRoutingPlacement pins the rendezvous placement properties
// the router depends on: many sessions spread across all live workers,
// and every request for one session lands on its one owner.
func TestSessionRoutingPlacement(t *testing.T) {
	c := servertest.New(t, servertest.Config{
		Workers:        3,
		SessionWorkers: true,
		Server: server.Config{
			JobWorkers:    1,
			CacheBytes:    1 << 20,
			RouteSessions: true,
		},
	})

	owners := map[string]int{}
	var ids []string
	for i := 0; i < 24; i++ {
		id, worker := openRouted(t, c.URL(), soakSpec)
		owners[worker]++
		ids = append(ids, id)
	}
	if len(owners) != 3 {
		t.Errorf("24 sessions landed on %d of 3 workers: %v", len(owners), owners)
	}
	// Each session is routable: scores answer 200 from wherever it lives.
	for _, id := range ids {
		resp, err := http.Get(c.URL() + "/v1/sessions/" + id + "/scores")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("scores %s → %d", id, resp.StatusCode)
		}
	}
	metrics, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := metricValue(metrics, "paco_session_routed_open"); v != 24 {
		t.Errorf("paco_session_routed_open = %v, want 24", v)
	}
}
