package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"testing"
	"time"
)

func getBody(t *testing.T, url string) ([]byte, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body, resp.StatusCode
}

// TestCampaignReport exercises the deterministic core of
// GET /v1/campaigns/{id}/report and the ?exec=1 execution layer.
func TestCampaignReport(t *testing.T) {
	_, ts := testServer(t, Config{JobWorkers: 1, QueueSize: 4, CacheBytes: 1 << 20})
	st, _ := postJob(t, ts, `{"benchmarks":["gzip","mcf"],"refresh":[100000,200000],"instructions":12000,"warmup":4000}`)
	waitDone(t, ts, st.ID)

	body, code := getBody(t, ts.URL+"/v1/campaigns/"+st.ID+"/report")
	if code != http.StatusOK {
		t.Fatalf("report status = %d, body %s", code, body)
	}
	var rep CampaignReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("decoding report: %v", err)
	}
	if rep.Schema != ReportSchema {
		t.Errorf("schema = %q, want %q", rep.Schema, ReportSchema)
	}
	if rep.Key != st.Key || rep.Cells != 4 || rep.Status != "done" {
		t.Errorf("identity = (%q, %d, %q), want (%q, 4, done)", rep.Key, rep.Cells, rep.Status, st.Key)
	}
	if rep.Exec != nil {
		t.Error("default report must not carry the execution layer")
	}
	if len(rep.Benchmarks) != 2 || rep.Benchmarks[0].Benchmark != "gzip" || rep.Benchmarks[1].Benchmark != "mcf" {
		t.Fatalf("benchmarks = %+v, want gzip then mcf", rep.Benchmarks)
	}
	for _, b := range rep.Benchmarks {
		if b.Cells != 2 || b.Completed != 2 || b.Cycles == 0 {
			t.Errorf("rollup %s = %+v, want 2 completed cells with cycles", b.Benchmark, b)
		}
		if b.MinIPC > b.MeanIPC || b.MeanIPC > b.MaxIPC || b.MinIPC <= 0 {
			t.Errorf("rollup %s IPC ordering broken: %+v", b.Benchmark, b)
		}
	}

	// Execution layer: local mode, a synthetic "local" worker covering
	// every cell, and all four cell spans observed.
	body, code = getBody(t, ts.URL+"/v1/campaigns/"+st.ID+"/report?exec=1")
	if code != http.StatusOK {
		t.Fatalf("exec report status = %d", code)
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	ex := rep.Exec
	if ex == nil {
		t.Fatal("?exec=1 returned no execution layer")
	}
	if ex.Mode != "local" || ex.JobID != st.ID {
		t.Errorf("exec identity = (%q, %q), want (local, %s)", ex.Mode, ex.JobID, st.ID)
	}
	if ex.CellsObserved != 4 || ex.WallSeconds <= 0 || ex.SimSeconds <= 0 {
		t.Errorf("exec coverage = %d cells, wall %.4fs, sim %.4fs", ex.CellsObserved, ex.WallSeconds, ex.SimSeconds)
	}
	if len(ex.Workers) != 1 || ex.Workers[0].Worker != "local" || ex.Workers[0].Cells != 4 {
		t.Errorf("workers = %+v, want one local worker with 4 cells", ex.Workers)
	}
	if ex.StragglerIndex != 1 {
		t.Errorf("single-worker straggler index = %v, want 1", ex.StragglerIndex)
	}

	if _, code := getBody(t, ts.URL+"/v1/campaigns/nope/report"); code != http.StatusNotFound {
		t.Errorf("unknown campaign status = %d, want 404", code)
	}
}

// TestCampaignReportByteIdentical pins the determinism contract: the
// default report body for one grid is byte-for-byte identical across
// servers with different parallelism and batching, because it contains
// nothing tied to a particular execution.
func TestCampaignReportByteIdentical(t *testing.T) {
	spec := `{"benchmarks":["gzip","mcf"],"widths":[2,4,8],"instructions":12000,"warmup":4000}`
	topologies := []Config{
		{JobWorkers: 1, SimWorkers: 1, BatchK: 1, QueueSize: 4, CacheBytes: 1 << 20},
		{JobWorkers: 2, SimWorkers: 4, BatchK: 3, QueueSize: 4, CacheBytes: 1 << 20},
	}
	var bodies [][]byte
	for i, cfg := range topologies {
		_, ts := testServer(t, cfg)
		st, _ := postJob(t, ts, spec)
		waitDone(t, ts, st.ID)
		body, code := getBody(t, ts.URL+"/v1/campaigns/"+st.ID+"/report")
		if code != http.StatusOK {
			t.Fatalf("topology %d: status %d", i, code)
		}
		bodies = append(bodies, body)
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Errorf("reports differ across topologies:\n--- serial/unbatched ---\n%s\n--- parallel/batched ---\n%s",
			bodies[0], bodies[1])
	}
}

// TestLogLevel exercises GET/PUT /debug/loglevel with and without the
// runtime dial wired.
func TestLogLevel(t *testing.T) {
	var lv slog.LevelVar
	_, ts := testServer(t, Config{JobWorkers: 1, QueueSize: 4, CacheBytes: 1 << 20, LogLevel: &lv})

	body, code := getBody(t, ts.URL+"/debug/loglevel")
	if code != http.StatusOK || !strings.Contains(string(body), `"INFO"`) {
		t.Fatalf("GET = %d %s, want 200 INFO", code, body)
	}

	put := func(payload string) (int, string) {
		req, _ := http.NewRequest(http.MethodPut, ts.URL+"/debug/loglevel", strings.NewReader(payload))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	for _, payload := range []string{"debug", `"debug"`, `{"level":"debug"}`} {
		lv.Set(slog.LevelInfo)
		if code, body := put(payload); code != http.StatusOK {
			t.Errorf("PUT %s = %d %s", payload, code, body)
		}
		if lv.Level() != slog.LevelDebug {
			t.Errorf("PUT %s left level %v, want DEBUG", payload, lv.Level())
		}
	}
	if code, _ := put("shouting"); code != http.StatusBadRequest {
		t.Errorf("PUT shouting = %d, want 400", code)
	}
	if lv.Level() != slog.LevelDebug {
		t.Errorf("rejected PUT changed the level to %v", lv.Level())
	}

	// Without Config.LogLevel the dial does not exist.
	_, bare := testServer(t, Config{JobWorkers: 1, QueueSize: 4, CacheBytes: 1 << 20})
	if _, code := getBody(t, bare.URL+"/debug/loglevel"); code != http.StatusNotImplemented {
		t.Errorf("unwired GET = %d, want 501", code)
	}
}

// TestFlightSince verifies incremental polling: since= keeps only
// spans that ended strictly after the given instant.
func TestFlightSince(t *testing.T) {
	_, ts := testServer(t, Config{JobWorkers: 1, QueueSize: 4, CacheBytes: 1 << 20})
	st, _ := postJob(t, ts, tinySpec)
	waitDone(t, ts, st.ID)

	var report FlightReport
	body, _ := getBody(t, ts.URL+"/debug/flight")
	if err := json.Unmarshal(body, &report); err != nil {
		t.Fatal(err)
	}
	if len(report.Spans) == 0 {
		t.Fatal("no spans recorded")
	}
	newest := report.Spans[len(report.Spans)-1].End

	body, _ = getBody(t, ts.URL+"/debug/flight?since="+newest.UTC().Format(time.RFC3339Nano))
	if err := json.Unmarshal(body, &report); err != nil {
		t.Fatal(err)
	}
	if len(report.Spans) != 0 {
		t.Errorf("since=newest returned %d spans, want 0", len(report.Spans))
	}

	early := newest.Add(-time.Hour).UTC().Format(time.RFC3339Nano)
	body, _ = getBody(t, ts.URL+"/debug/flight?since="+early)
	if err := json.Unmarshal(body, &report); err != nil {
		t.Fatal(err)
	}
	if len(report.Spans) == 0 {
		t.Error("since=-1h filtered everything out")
	}

	if _, code := getBody(t, ts.URL+"/debug/flight?since=yesterday"); code != http.StatusBadRequest {
		t.Errorf("bad since = %d, want 400", code)
	}
}

// TestTimeseriesEndpoint runs a job on a fast-sampling server and
// checks the store answers with rate series and honors its filters.
func TestTimeseriesEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{
		JobWorkers: 1, QueueSize: 4, CacheBytes: 1 << 20,
		SampleInterval: 5 * time.Millisecond,
	})
	st, _ := postJob(t, ts, tinySpec)
	waitDone(t, ts, st.ID)
	time.Sleep(30 * time.Millisecond) // a few sampling passes

	var report TimeseriesReport
	body, code := getBody(t, ts.URL+"/v1/timeseries")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if err := json.Unmarshal(body, &report); err != nil {
		t.Fatal(err)
	}
	if report.Samples == 0 || report.SeriesHeld == 0 || len(report.Series) == 0 {
		t.Fatalf("empty store after sampling: %d samples, %d series held, %d returned",
			report.Samples, report.SeriesHeld, len(report.Series))
	}
	if report.IntervalMS != 5 {
		t.Errorf("interval_ms = %d, want 5", report.IntervalMS)
	}

	body, _ = getBody(t, ts.URL+"/v1/timeseries?family=paco_sim_cells_total&points=3")
	if err := json.Unmarshal(body, &report); err != nil {
		t.Fatal(err)
	}
	if len(report.Series) != 1 {
		t.Fatalf("family filter returned %d series, want 1", len(report.Series))
	}
	s := report.Series[0]
	if s.Family != "paco_sim_cells_total" || s.Type != "rate" {
		t.Errorf("series = (%q, %q), want (paco_sim_cells_total, rate)", s.Family, s.Type)
	}
	if len(s.Points) > 3 {
		t.Errorf("points=3 returned %d points", len(s.Points))
	}

	if _, code := getBody(t, ts.URL+"/v1/timeseries?points=-1"); code != http.StatusBadRequest {
		t.Errorf("bad points = %d, want 400", code)
	}

	// Sampling disabled: the endpoint still answers, empty.
	_, quiet := testServer(t, Config{
		JobWorkers: 1, QueueSize: 4, CacheBytes: 1 << 20, SampleInterval: -1,
	})
	body, code = getBody(t, quiet.URL+"/v1/timeseries")
	if code != http.StatusOK {
		t.Fatalf("disabled store status = %d", code)
	}
	if err := json.Unmarshal(body, &report); err != nil {
		t.Fatal(err)
	}
	if report.Samples != 0 || len(report.Series) != 0 {
		t.Errorf("disabled store reported %d samples, %d series", report.Samples, len(report.Series))
	}
}

// TestDashServes pins the dashboard's availability and shape: static
// HTML, no external fetches, polls the timeseries endpoint.
func TestDashServes(t *testing.T) {
	_, ts := testServer(t, Config{JobWorkers: 1, QueueSize: 4, CacheBytes: 1 << 20})
	resp, err := http.Get(ts.URL + "/debug/dash")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("Content-Type = %q", ct)
	}
	page := string(body)
	for _, want := range []string{"/v1/timeseries", "<svg", "paco observatory"} {
		if !strings.Contains(page, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
	for _, banned := range []string{"http://", "https://", "import ", "require("} {
		if strings.Contains(page, banned) {
			t.Errorf("dashboard is not dependency-free: contains %q", banned)
		}
	}
}
