package server

import (
	"net/http"
	"sort"
	"strconv"
	"time"

	"paco/internal/campaign"
	"paco/internal/obs"
	"paco/internal/obs/tsdb"
)

// Campaign report: GET /v1/campaigns/{id}/report renders a finished
// job's campaign as an analytics document in two layers.
//
// The default body is the deterministic core — schema tag, content
// address, grid spec, summary, and per-benchmark rollups computed by
// folding the result slice in global cell order. Results are
// byte-identical for a given grid no matter how the campaign executed
// (local -j N, federated across any worker count, any batch width), so
// the core is too: CI diffs reports across topologies to prove the
// distribution layer never touches simulated values. Anything tied to
// one particular execution — job ID, trace, timestamps, worker names —
// is deliberately excluded from the core.
//
// `?exec=1` appends the execution layer: wall/sim/queue-wait seconds,
// per-worker timelines, straggler and imbalance indices, and the
// throughput timeline sampled by the tsdb. That layer is reconstructed
// from flight-recorder spans and is as complete as the span ring —
// nonzero recorder drops mean partial timelines, reported as-is.

// ReportSchema versions the deterministic report body.
const ReportSchema = "paco-report/v1"

// CampaignReport is the body of GET /v1/campaigns/{id}/report.
type CampaignReport struct {
	Schema string `json:"schema"`
	// Key is the campaign's content address — the identity that is
	// stable across servers and topologies (job IDs are not).
	Key    string `json:"key"`
	Status string `json:"status"`
	Cells  int    `json:"cells"`

	Spec    campaign.Grid     `json:"spec"`
	Summary *campaign.Summary `json:"summary,omitempty"`

	// Benchmarks rolls the cells up by benchmark, sorted by name.
	Benchmarks []BenchmarkRollup `json:"benchmarks"`

	// Exec is the execution layer, present only with ?exec=1.
	Exec *ExecutionReport `json:"exec,omitempty"`
}

// BenchmarkRollup aggregates one benchmark's cells. Folds run in
// global cell-index order so float accumulation is deterministic.
type BenchmarkRollup struct {
	Benchmark string `json:"benchmark"`
	Cells     int    `json:"cells"`
	Completed int    `json:"completed"`
	Failed    int    `json:"failed"`
	Skipped   int    `json:"skipped"`

	Cycles  uint64  `json:"cycles"`
	MeanIPC float64 `json:"mean_ipc"`
	MinIPC  float64 `json:"min_ipc"`
	MaxIPC  float64 `json:"max_ipc"`
}

// ExecutionReport is the nondeterministic execution layer of a
// campaign report, reconstructed from flight-recorder spans and the
// time-series store.
type ExecutionReport struct {
	JobID string `json:"job_id"`
	Trace string `json:"trace,omitempty"`
	// Mode is "local" or "federated", from the job span.
	Mode string `json:"mode,omitempty"`

	// WallSeconds is the job span's duration; SimSeconds sums cell
	// span durations (aggregate compute time across all workers);
	// QueueWaitSeconds sums, per cell, the gap between its executing
	// context starting (shard execution or the job itself) and the
	// cell actually simulating. Parallelism is roughly
	// SimSeconds / WallSeconds.
	WallSeconds      float64 `json:"wall_seconds"`
	SimSeconds       float64 `json:"sim_seconds"`
	QueueWaitSeconds float64 `json:"queue_wait_seconds"`

	// Span coverage: how much of the execution the flight recorder
	// still held when the report was built. CellsObserved below
	// Cells in the core report means dropped spans truncated the
	// timeline (raise Config.FlightSpans).
	CellsObserved int     `json:"cells_observed"`
	Batches       int     `json:"batches,omitempty"`
	MeanBatchKs   float64 `json:"mean_batch_cells,omitempty"`
	SpansDropped  uint64  `json:"spans_dropped,omitempty"`

	// Workers, sorted by name. Local campaigns report one synthetic
	// "local" worker so threshold assertions hold in both modes.
	Workers []WorkerReport `json:"workers"`

	// StragglerIndex is max worker busy-seconds over mean worker
	// busy-seconds (1 = perfectly balanced; 2 = slowest worker did
	// twice the mean). ImbalanceRatio is max cells over min cells
	// across workers.
	StragglerIndex float64 `json:"straggler_index"`
	ImbalanceRatio float64 `json:"imbalance_ratio"`

	// Shards summarizes the lease protocol as the coordinator saw it.
	Shards *ShardActivity `json:"shards,omitempty"`

	// Throughput is the tsdb's paco_sim_kcycles_per_sec_last samples
	// over the job's wall window (empty when sampling is disabled or
	// the job outran the sampling interval).
	Throughput []tsdb.Point `json:"throughput,omitempty"`
}

// WorkerReport is one worker's slice of a campaign's execution.
type WorkerReport struct {
	Worker string `json:"worker"`
	// Shards counts executions attributed to the worker; Cells the
	// cells inside them.
	Shards int `json:"shards"`
	Cells  int `json:"cells"`
	// BusySeconds sums the worker's execution span durations;
	// KCyclesPerSec divides the simulated cycles of its cell ranges
	// by that busy time.
	BusySeconds   float64 `json:"busy_seconds"`
	Cycles        uint64  `json:"cycles"`
	KCyclesPerSec float64 `json:"kcycles_per_sec"`
}

// ShardActivity summarizes the lease protocol for one campaign.
type ShardActivity struct {
	Leases  int `json:"leases"`
	Retries int `json:"retries"`
	Cached  int `json:"cached"`
}

// handleCampaignReport is GET /v1/campaigns/{id}/report.
func (s *Server) handleCampaignReport(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		errorJSON(w, http.StatusNotFound, "unknown campaign %q", r.PathValue("id"))
		return
	}
	results, done := j.resultsIfDone()
	if !done {
		errorJSON(w, http.StatusConflict,
			"campaign %s has not completed (status %q)", j.id, j.status(false).Status)
		return
	}
	report := CampaignReport{
		Schema:     ReportSchema,
		Key:        j.key,
		Status:     stateDone,
		Cells:      j.cells,
		Spec:       j.grid,
		Summary:    j.status(false).Summary,
		Benchmarks: rollupBenchmarks(results),
	}
	if r.URL.Query().Get("exec") == "1" {
		report.Exec = s.executionReport(j, results)
	}
	writeJSON(w, http.StatusOK, report)
}

// rollupBenchmarks folds results (already in global index order) into
// per-benchmark aggregates, sorted by benchmark name.
func rollupBenchmarks(results []campaign.Result) []BenchmarkRollup {
	byName := map[string]*BenchmarkRollup{}
	var names []string
	for i := range results {
		res := &results[i]
		roll := byName[res.Benchmark]
		if roll == nil {
			roll = &BenchmarkRollup{Benchmark: res.Benchmark}
			byName[res.Benchmark] = roll
			names = append(names, res.Benchmark)
		}
		roll.Cells++
		switch {
		case res.Skipped:
			roll.Skipped++
		case res.Failed():
			roll.Failed++
		default:
			roll.Completed++
			roll.Cycles += res.Cycles
			roll.MeanIPC += res.IPC
			if roll.Completed == 1 || res.IPC < roll.MinIPC {
				roll.MinIPC = res.IPC
			}
			if roll.Completed == 1 || res.IPC > roll.MaxIPC {
				roll.MaxIPC = res.IPC
			}
		}
	}
	sort.Strings(names)
	out := make([]BenchmarkRollup, 0, len(names))
	for _, name := range names {
		roll := byName[name]
		if roll.Completed > 0 {
			roll.MeanIPC /= float64(roll.Completed)
		}
		out = append(out, *roll)
	}
	return out
}

// executionReport reconstructs the execution layer from the flight
// recorder and tsdb. Best-effort by design: a partial span history
// yields a partial timeline, never an error.
func (s *Server) executionReport(j *job, results []campaign.Result) *ExecutionReport {
	ex := &ExecutionReport{
		JobID:   j.id,
		Trace:   j.trace,
		Workers: []WorkerReport{},
	}
	spans := s.obs.rec.Snapshot(obs.Filter{Trace: j.trace})
	byID := make(map[uint64]*obs.SpanRecord, len(spans))
	for i := range spans {
		byID[spans[i].ID] = &spans[i]
	}

	var jobSpan *obs.SpanRecord
	var executeSpans, leaseSpans []*obs.SpanRecord
	var shards ShardActivity
	var batchCells int
	for i := range spans {
		sp := &spans[i]
		switch sp.Kind {
		case "job":
			if sp.Name == j.id {
				jobSpan = sp
				ex.Mode = sp.Attr("mode")
				ex.WallSeconds = sp.DurationMS / 1e3
			}
		case "cell":
			ex.CellsObserved++
			ex.SimSeconds += sp.DurationMS / 1e3
			if root := executionRoot(sp, byID); root != nil {
				if wait := sp.Start.Sub(root.Start).Seconds(); wait > 0 {
					ex.QueueWaitSeconds += wait
				}
			}
		case "batch":
			ex.Batches++
			batchCells += batchWidth(sp.Name)
		case "shard.execute":
			executeSpans = append(executeSpans, sp)
		case "shard.lease":
			shards.Leases++
			if sp.Attr("retry_cause") != "" {
				shards.Retries++
			}
			if sp.Attr("completed_by") != "" {
				leaseSpans = append(leaseSpans, sp)
			}
		case "shard.cached":
			shards.Cached++
		}
	}
	// Worker attribution prefers execute spans (exact busy time,
	// recorded by the worker itself). In-process federations record
	// them into this recorder; out-of-process workers do not, so the
	// coordinator-side lease spans — grant to completion, a superset
	// of busy time — stand in. Never both: that would double-count.
	workers := map[string]*WorkerReport{}
	attributed := executeSpans
	if len(attributed) == 0 {
		attributed = leaseSpans
	}
	for _, sp := range attributed {
		wr := workerReport(workers, sp.Attr("worker"), ex)
		wr.Shards++
		wr.BusySeconds += sp.DurationMS / 1e3
		addCellRange(wr, sp, results)
	}
	if ex.Batches > 0 {
		ex.MeanBatchKs = float64(batchCells) / float64(ex.Batches)
	}
	if shards.Leases > 0 || shards.Cached > 0 {
		ex.Shards = &shards
	}
	ex.SpansDropped = s.obs.rec.Dropped()

	if len(ex.Workers) == 0 {
		// Local campaign: one synthetic worker covering every cell, so
		// report consumers can assert worker thresholds in any mode.
		var cycles uint64
		for i := range results {
			cycles += results[i].Cycles
		}
		wr := WorkerReport{Worker: "local", Cells: len(results), BusySeconds: ex.SimSeconds, Cycles: cycles}
		if wr.BusySeconds == 0 {
			wr.BusySeconds = ex.WallSeconds
		}
		ex.Workers = append(ex.Workers, wr)
	}
	sort.Slice(ex.Workers, func(a, b int) bool { return ex.Workers[a].Worker < ex.Workers[b].Worker })
	var busyMax, busyMin, busySum float64
	cellsMax, cellsMin := 0, 0
	for i := range ex.Workers {
		wr := &ex.Workers[i]
		if wr.BusySeconds > 0 {
			wr.KCyclesPerSec = float64(wr.Cycles) / wr.BusySeconds / 1e3
		}
		busySum += wr.BusySeconds
		if i == 0 || wr.BusySeconds > busyMax {
			busyMax = wr.BusySeconds
		}
		if i == 0 || wr.BusySeconds < busyMin {
			busyMin = wr.BusySeconds
		}
		if i == 0 || wr.Cells > cellsMax {
			cellsMax = wr.Cells
		}
		if i == 0 || wr.Cells < cellsMin {
			cellsMin = wr.Cells
		}
	}
	if mean := busySum / float64(len(ex.Workers)); mean > 0 {
		ex.StragglerIndex = busyMax / mean
	}
	if cellsMin > 0 {
		ex.ImbalanceRatio = float64(cellsMax) / float64(cellsMin)
	}

	if s.obs.ts != nil && jobSpan != nil {
		pts := s.obs.ts.Query(tsdb.Query{
			Family: "paco_sim_kcycles_per_sec_last",
			Since:  jobSpan.Start,
		})
		for _, series := range pts {
			if series.Labels == "" {
				ex.Throughput = trimAfter(series.Points, jobSpan.End)
				break
			}
		}
	}
	return ex
}

// workerReport returns (creating on first sight) the named worker's
// row, registered into ex.Workers by pointer-stable index.
func workerReport(m map[string]*WorkerReport, name string, ex *ExecutionReport) *WorkerReport {
	if name == "" {
		name = "(unknown)"
	}
	if wr := m[name]; wr != nil {
		return wr
	}
	ex.Workers = append(ex.Workers, WorkerReport{Worker: name})
	wr := &ex.Workers[len(ex.Workers)-1]
	// Appends may reallocate; refresh every cached pointer.
	for i := range ex.Workers {
		m[ex.Workers[i].Worker] = &ex.Workers[i]
	}
	return wr
}

// addCellRange credits a span's [lo, hi) cell range to a worker row.
func addCellRange(wr *WorkerReport, sp *obs.SpanRecord, results []campaign.Result) {
	lo, errLo := strconv.Atoi(sp.Attr("lo"))
	hi, errHi := strconv.Atoi(sp.Attr("hi"))
	if errLo != nil || errHi != nil || lo < 0 || hi > len(results) || lo >= hi {
		return
	}
	wr.Cells += hi - lo
	for i := lo; i < hi; i++ {
		wr.Cycles += results[i].Cycles
	}
}

// batchWidth parses the cell count out of a batch span name
// ("<key>*<k>"), 0 when unparseable.
func batchWidth(name string) int {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '*' {
			k, err := strconv.Atoi(name[i+1:])
			if err != nil {
				return 0
			}
			return k
		}
	}
	return 0
}

// executionRoot walks a cell span's parent chain to the span whose
// start marks when its executing context began: the shard execution
// for federated cells, the job span otherwise.
func executionRoot(sp *obs.SpanRecord, byID map[uint64]*obs.SpanRecord) *obs.SpanRecord {
	for hop := 0; hop < 8; hop++ {
		parent := byID[sp.Parent]
		if parent == nil {
			return nil
		}
		if parent.Kind == "shard.execute" || parent.Kind == "job" {
			return parent
		}
		sp = parent
	}
	return nil
}

// trimAfter drops points later than end (plus one sampling period of
// slack so the final sample of a run is kept).
func trimAfter(pts []tsdb.Point, end time.Time) []tsdb.Point {
	cut := end.Add(2 * time.Second).UnixMilli()
	out := pts[:0:len(pts)]
	for _, p := range pts {
		if p.T <= cut {
			out = append(out, p)
		}
	}
	return out
}
