package server

import (
	"log/slog"
	"time"

	"paco/internal/obs"
	"paco/internal/obs/tsdb"
	"paco/internal/session"
	"paco/internal/version"
)

// serverObs bundles the server's observability plumbing: the metric
// registry behind GET /metrics, the flight recorder behind
// GET /debug/flight, the structured logger, and the push-style
// instruments the hot paths write into. One serverObs is built per
// Server and shared with its federation; in-process worker federations
// (servertest) attach to the same recorder and histograms through
// Server.InstrumentWorker so a whole cluster records into one place.
type serverObs struct {
	reg *obs.Registry
	rec *obs.Recorder
	log *slog.Logger

	// ts is the time-series store behind GET /v1/timeseries and the
	// /debug/dash sparklines: every registry family sampled into ring
	// buffers at Config.SampleInterval. Created in New, started in
	// Server.Start, stopped in Server.Close.
	ts *tsdb.Store

	// level, when non-nil, is the runtime log-level dial behind
	// GET/PUT /debug/loglevel (Config.LogLevel).
	level *slog.LevelVar

	// Per-cell simulation timings. Observed by the local campaign runner
	// and by in-process federation workers wired via InstrumentWorker.
	cellDuration  *obs.Histogram // simulate seconds per cell
	cellQueueWait *obs.Histogram // seconds from campaign start to cell pickup

	// Batched lockstep execution shape: how many cells each planned
	// execution unit carried, and how many cells ran on each path.
	batchSize      *obs.Histogram
	batchedCells   *obs.Counter
	singletonCells *obs.Counter

	// HTTP server-side request accounting, labeled by mux route pattern.
	httpDuration *obs.HistogramVec
	httpRequests *obs.CounterVec

	// Content-addressed lookup outcomes by kind (job, shard, experiment).
	cacheLookups *obs.CounterVec

	// sessionMetrics are the push instruments the /v1/sessions table
	// writes into (paco_session_*); the open/queued gauges scrape the
	// table directly.
	sessionMetrics session.Metrics

	// Session-router instruments (paco_session_routed_* and
	// paco_session_failover_*): written by sessionrouter.go when
	// Config.RouteSessions is on, flat zero otherwise.
	routedOpened     *obs.Counter
	routedClosed     *obs.CounterVec
	routedChunks     *obs.Counter
	failovers        *obs.Counter
	failoverReplayed *obs.Counter
}

// newServerObs builds the registry and instruments for one server. The
// legacy families (everything the pre-registry /metrics exported) are
// registered first, name-for-name and in the original order, backed by
// scrape-time callbacks into live server state; the instrumentation
// families and Go runtime gauges follow.
func newServerObs(s *Server, logger *slog.Logger, flightSpans int) *serverObs {
	o := &serverObs{
		reg: obs.NewRegistry(),
		log: obs.OrNop(logger),
	}
	if flightSpans >= 0 {
		o.rec = obs.NewRecorder(flightSpans)
	}
	r := o.reg

	info := version.Get()
	r.Func("paco_build_info", "gauge", "Build metadata of the running server.",
		func(emit func(float64, ...obs.Label)) {
			emit(1, obs.L("version", info.Version), obs.L("go", info.GoVersion))
		})
	r.GaugeFunc("paco_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(s.started).Seconds() })
	r.GaugeFunc("paco_queue_depth", "Jobs waiting in the bounded queue.",
		func() float64 { return float64(len(s.queue)) })
	r.GaugeFunc("paco_queue_capacity", "Capacity of the bounded queue.",
		func() float64 { return float64(s.cfg.QueueSize) })
	r.GaugeFunc("paco_jobs_inflight", "Jobs executing right now.",
		func() float64 { return float64(s.running.Load()) })
	r.Func("paco_jobs_total", "counter", "Settled jobs by outcome.",
		func(emit func(float64, ...obs.Label)) {
			emit(float64(s.jobsDone.Load()), obs.L("status", "done"))
			emit(float64(s.jobsFailed.Load()), obs.L("status", "failed"))
		})
	r.CounterFunc("paco_simulations_total", "Campaigns actually simulated (cache misses that ran).",
		func() float64 { return float64(s.simsRun.Load()) })
	r.CounterFunc("paco_sim_cells_total", "Campaign cells simulated.",
		func() float64 { return float64(s.cellsRun.Load()) })
	r.CounterFunc("paco_cache_hits_total", "Content-addressed cache hits.",
		func() float64 { return float64(s.cache.Stats().Hits) })
	r.CounterFunc("paco_cache_misses_total", "Content-addressed cache misses.",
		func() float64 { return float64(s.cache.Stats().Misses) })
	r.GaugeFunc("paco_cache_entries", "Entries resident in the cache.",
		func() float64 { return float64(s.cache.Stats().Entries) })
	r.GaugeFunc("paco_cache_bytes", "Bytes resident in the cache.",
		func() float64 { return float64(s.cache.Stats().Bytes) })
	r.GaugeFunc("paco_cache_budget_bytes", "Cache byte budget.",
		func() float64 { return float64(s.cache.Stats().Budget) })
	r.CounterFunc("paco_sim_cycles_total", "Simulated cycles across all executed jobs.",
		func() float64 { cycles, _, _ := s.sampler.Totals(); return float64(cycles) })
	r.CounterFunc("paco_sim_wall_seconds_total", "Wall seconds spent simulating.",
		func() float64 { _, wall, _ := s.sampler.Totals(); return wall.Seconds() })
	r.CounterFunc("paco_sim_samples_total", "Throughput observations recorded.",
		func() float64 { _, _, samples := s.sampler.Totals(); return float64(samples) })
	r.GaugeFunc("paco_sim_kcycles_per_sec", "Cumulative simulated kcycles per wall second (internal/perf sampler).",
		s.sampler.KCyclesPerSec)
	r.GaugeFunc("paco_sim_kcycles_per_sec_last", "Most recent job's simulated kcycles per wall second.",
		s.sampler.LastKCyclesPerSec)
	r.GaugeFunc("paco_federation_shards_pending", "Shards queued for lease.",
		func() float64 { return float64(s.fed.stats().ShardsPending) })
	r.GaugeFunc("paco_federation_shards_leased", "Shards currently leased to workers.",
		func() float64 { return float64(s.fed.stats().ShardsLeased) })
	r.CounterFunc("paco_federation_shards_completed_total", "Shards completed by the federation.",
		func() float64 { return float64(s.fed.stats().ShardsCompleted) })
	r.CounterFunc("paco_federation_shard_retries_total", "Shard re-leases after lease expiry or worker-reported failure.",
		func() float64 { return float64(s.fed.stats().Retries) })
	r.GaugeFunc("paco_federation_lease_age_seconds_max", "Age of the oldest outstanding lease.",
		func() float64 { return s.fed.stats().OldestLeaseAge.Seconds() })
	r.GaugeFunc("paco_federation_workers_live", "Workers that checked in within the liveness window.",
		func() float64 { return float64(s.fed.stats().WorkersLive) })
	r.Func("paco_federation_worker_last_seen_seconds", "gauge",
		"Seconds since each federation worker last checked in.",
		func(emit func(float64, ...obs.Label)) {
			for _, ws := range s.fed.stats().Workers {
				emit(ws.LastSeenAge.Seconds(), obs.L("worker", ws.Name))
			}
		})

	// Instrumentation families introduced with the obs registry.
	o.cellDuration = r.Histogram("paco_sim_cell_duration_seconds",
		"Simulation wall seconds per campaign cell.", obs.DurationBuckets())
	o.cellQueueWait = r.Histogram("paco_sim_cell_queue_wait_seconds",
		"Seconds a cell waited from campaign start to worker pickup.", obs.DurationBuckets())
	o.batchSize = r.Histogram("paco_campaign_batch_size",
		"Cells per planned batched-lockstep execution unit.",
		[]float64{1, 2, 4, 8, 16, 32})
	o.batchedCells = r.Counter("paco_campaign_cells_batched_total",
		"Campaign cells executed on the batched lockstep path (shared instruction stream).")
	o.singletonCells = r.Counter("paco_campaign_cells_singleton_total",
		"Campaign cells executed on the single-cell path.")
	o.httpRequests = r.CounterVec("paco_http_requests_total",
		"HTTP requests served, by mux route and status code.", "route", "code")
	o.httpDuration = r.HistogramVec("paco_http_request_duration_seconds",
		"HTTP request duration by mux route.", "route", obs.DurationBuckets())
	o.cacheLookups = r.CounterVec("paco_cache_lookups_total",
		"Content-addressed lookups by kind (job, shard, experiment) and outcome.", "kind", "outcome")
	// Per-run throughput as a distribution (not just the cumulative and
	// last-run gauges above): buckets span ~1e2..1e7 kcycles/sec.
	rateHist := r.Histogram("paco_sim_job_kcycles_per_sec",
		"Per-run simulated kilocycles per wall second.", obs.ExpBuckets(100, 4, 9))
	s.sampler.OnRate(rateHist.Observe)
	// Live estimator-session families (the /v1/sessions subsystem). The
	// gauges read the table at scrape time; it is wired up right after
	// newServerObs returns, before any request can reach /metrics.
	r.GaugeFunc("paco_session_open", "Estimator sessions currently open.",
		func() float64 {
			if s.sessions == nil {
				return 0
			}
			return float64(s.sessions.Len())
		})
	r.GaugeFunc("paco_session_queued_events", "Decoded events awaiting application across all sessions.",
		func() float64 {
			if s.sessions == nil {
				return 0
			}
			return float64(s.sessions.QueuedEvents())
		})
	o.sessionMetrics = session.Metrics{
		Opened: r.Counter("paco_session_opened_total", "Estimator sessions opened."),
		Closed: r.CounterVec("paco_session_closed_total",
			"Estimator sessions closed, by reason (client, evicted, shutdown).", "reason"),
		OpenRejected: r.Counter("paco_session_open_rejected_total",
			"Session opens rejected by the table's session cap."),
		Events: r.Counter("paco_session_events_total", "Events accepted into session queues."),
		Backpressure: r.Counter("paco_session_backpressure_total",
			"Ingest chunks rejected by a full session queue (HTTP 429s)."),
		IngestDuration: r.Histogram("paco_session_ingest_duration_seconds",
			"Seconds per session ingest call (decode + enqueue).", obs.DurationBuckets()),
		ApplyBatch: r.Histogram("paco_session_apply_batch_events",
			"Events applied per session shard-worker drain.", obs.ExpBuckets(1, 4, 9)),
	}
	// Session-router families. The gauges read the router at scrape
	// time and report zero when Config.RouteSessions is off (the router
	// is wired right after newServerObs returns, like the table above).
	r.GaugeFunc("paco_session_routed_open", "Routed estimator sessions currently live on federation workers.",
		func() float64 {
			if s.router == nil {
				return 0
			}
			return float64(s.router.open())
		})
	r.GaugeFunc("paco_session_routed_journal_bytes", "Bytes of acknowledged chunks journaled for routed-session failover.",
		func() float64 {
			if s.router == nil {
				return 0
			}
			return float64(s.router.journalBytes.Load())
		})
	o.routedOpened = r.Counter("paco_session_routed_opened_total",
		"Routed estimator sessions opened on federation workers.")
	o.routedClosed = r.CounterVec("paco_session_routed_closed_total",
		"Routed estimator sessions closed, by reason (client, evicted).", "reason")
	o.routedChunks = r.Counter("paco_session_routed_chunks_total",
		"Ingest chunks acknowledged by session workers and journaled.")
	o.failovers = r.Counter("paco_session_failover_total",
		"Routed sessions re-homed to a surviving worker after their owner died.")
	o.failoverReplayed = r.Counter("paco_session_failover_replayed_chunks_total",
		"Journaled chunks replayed into re-homed sessions during failover.")
	r.CounterFunc("paco_flight_spans_recorded_total", "Spans committed to the flight recorder.",
		func() float64 { return float64(o.rec.Recorded()) })
	r.GaugeFunc("paco_flight_spans_active", "Spans started but not yet ended.",
		func() float64 { return float64(o.rec.Active()) })
	// Named per the observability plan (no paco_ prefix): the flight
	// ring's overwrite counter. Nonzero means /debug/flight no longer
	// holds the full span history — raise Config.FlightSpans.
	r.CounterFunc("obs_spans_dropped_total", "Finished spans overwritten by the flight recorder ring before being read.",
		func() float64 { return float64(o.rec.Dropped()) })
	obs.RegisterGoRuntime(r, "paco_")
	return o
}

// lookup records a content-addressed lookup outcome.
func (o *serverObs) lookup(kind string, hit bool) {
	outcome := "miss"
	if hit {
		outcome = "hit"
	}
	o.cacheLookups.With(kind, outcome).Inc()
}
