package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"paco/internal/campaign"
	"paco/internal/experiments"
)

// testServer builds a started server at test scale plus its HTTP front.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Experiments == nil {
		quick := experiments.Quick()
		cfg.Experiments = &quick
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

const tinySpec = `{"benchmarks":["gzip"],"instructions":12000,"warmup":4000}`

func postJob(t *testing.T, ts *httptest.Server, body string) (JobStatus, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 400 {
		return JobStatus{}, resp.StatusCode
	}
	var st JobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("decoding %s: %v", raw, err)
	}
	return st, resp.StatusCode
}

func waitDone(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch st.Status {
		case stateDone:
			return st
		case stateFailed:
			t.Fatalf("job %s failed: %s", id, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after 60s", id, st.Status)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestSubmitAndCacheHit is the PR's acceptance path: a job simulates
// once; an identical spec — spelled differently — is answered from the
// content-addressed cache without re-running, asserted by the hit/miss
// and simulation counters.
func TestSubmitAndCacheHit(t *testing.T) {
	s, ts := testServer(t, Config{})

	first, code := postJob(t, ts, tinySpec)
	if code != http.StatusAccepted {
		t.Fatalf("first POST status = %d, want 202", code)
	}
	if first.Cache != "miss" || first.Status != stateQueued {
		t.Fatalf("first POST = %+v, want queued miss", first)
	}
	done := waitDone(t, ts, first.ID)
	if len(done.Results) != 1 || done.Results[0].IPC <= 0 {
		t.Fatalf("done job carries no results: %+v", done)
	}
	if got := s.SimulationsRun(); got != 1 {
		t.Fatalf("simulations after first job = %d, want 1", got)
	}
	missesBefore := s.CacheStats().Misses

	// Same spec, different key order and whitespace, defaults spelled out.
	equivalent := `{"warmup":4000,  "instructions":12000, "widths":[4],
	                "gate_count":3, "benchmarks":["gzip"]}`
	second, code := postJob(t, ts, equivalent)
	if code != http.StatusOK {
		t.Fatalf("second POST status = %d, want 200", code)
	}
	if second.Cache != "hit" || second.Status != stateDone {
		t.Fatalf("second POST = %+v, want done hit", second)
	}
	if second.Key != first.Key {
		t.Fatalf("equivalent specs got different keys:\n%s\n%s", first.Key, second.Key)
	}
	if second.ID == first.ID {
		t.Fatal("cache hit reused the original job id")
	}
	if len(second.Results) != 1 {
		t.Fatalf("hit response carries no results: %+v", second)
	}
	if !resultsEqual(done.Results, second.Results) {
		t.Fatal("cached results differ from the original run")
	}
	if got := s.SimulationsRun(); got != 1 {
		t.Fatalf("simulations after cache hit = %d, want still 1", got)
	}
	st := s.CacheStats()
	if st.Hits < 1 || st.Misses != missesBefore {
		t.Fatalf("cache stats after hit = %+v (misses before: %d)", st, missesBefore)
	}
}

func resultsEqual(a, b []campaign.Result) bool { return reflect.DeepEqual(a, b) }

// TestSingleFlight: concurrent identical submissions collapse into one
// simulation. The worker pool is started only after every submission is
// in, so the race is deterministic.
func TestSingleFlight(t *testing.T) {
	quick := experiments.Quick()
	s, err := New(Config{Experiments: &quick})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 8
	statuses := make([]JobStatus, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tinySpec))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if err := json.NewDecoder(resp.Body).Decode(&statuses[i]); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	var misses, inflight int
	var missID string
	for _, st := range statuses {
		switch st.Cache {
		case "miss":
			misses++
			missID = st.ID
		case "inflight":
			inflight++
		default:
			t.Fatalf("unexpected cache outcome %q", st.Cache)
		}
	}
	if misses != 1 || inflight != n-1 {
		t.Fatalf("misses = %d, inflight = %d; want 1 and %d", misses, inflight, n-1)
	}
	for _, st := range statuses {
		if st.ID != missID {
			t.Fatalf("single-flighted submission got its own job %s (want %s)", st.ID, missID)
		}
	}

	s.Start()
	waitDone(t, ts, missID)
	if got := s.SimulationsRun(); got != 1 {
		t.Fatalf("concurrent identical submissions ran %d simulations, want 1", got)
	}
	s.Close()
}

// TestExperimentByteIdenticalToCLI is the other acceptance criterion:
// GET /v1/experiments/fig2 must return exactly the bytes the CLI writes
// — both cmd/paco and cmd/paco-repro render an experiment by calling
// experiments.Run(name, cfg, w), so that call is the reference output.
// A second GET is served from the content-addressed cache without
// re-running the experiment.
func TestExperimentByteIdenticalToCLI(t *testing.T) {
	quick := experiments.Quick()
	s, ts := testServer(t, Config{Experiments: &quick})

	var want bytes.Buffer
	if err := experiments.Run("fig2", quick, &want); err != nil {
		t.Fatal(err)
	}

	fetch := func() []byte {
		resp, err := http.Get(ts.URL + "/v1/experiments/fig2")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/experiments/fig2 = %d", resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	simsBefore := s.SimulationsRun()
	got := fetch()
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("HTTP fig2 differs from CLI output:\nHTTP:\n%s\nCLI:\n%s", got, want.Bytes())
	}
	if s.SimulationsRun() != simsBefore+1 {
		t.Fatalf("first GET ran %d experiments", s.SimulationsRun()-simsBefore)
	}
	hitsBefore := s.CacheStats().Hits
	again := fetch()
	if !bytes.Equal(again, want.Bytes()) {
		t.Fatal("cached report differs")
	}
	if s.SimulationsRun() != simsBefore+1 {
		t.Fatal("second GET re-ran the experiment")
	}
	if s.CacheStats().Hits != hitsBefore+1 {
		t.Fatalf("second GET not served from cache: hits %d -> %d", hitsBefore, s.CacheStats().Hits)
	}
}

// TestSSEStream subscribes to a job's event stream and expects the
// snapshot, at least one progress event, and the terminal done event.
func TestSSEStream(t *testing.T) {
	_, ts := testServer(t, Config{})
	st, _ := postJob(t, ts, `{"benchmarks":["gzip","twolf"],"instructions":12000,"warmup":4000}`)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	seen := map[string]int{}
	var finalData string
	sc := bufio.NewScanner(resp.Body)
	var event string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
			seen[event]++
		case strings.HasPrefix(line, "data: "):
			if event == "done" {
				finalData = strings.TrimPrefix(line, "data: ")
			}
		}
		if event == "done" && finalData != "" {
			break
		}
	}
	if seen["snapshot"] == 0 {
		t.Fatalf("no snapshot event; saw %v", seen)
	}
	if seen["done"] == 0 {
		t.Fatalf("no done event; saw %v", seen)
	}
	var final JobStatus
	if err := json.Unmarshal([]byte(finalData), &final); err != nil {
		t.Fatalf("final event data %q: %v", finalData, err)
	}
	if final.Status != stateDone || final.Cells.Done != 2 {
		t.Fatalf("final event = %+v", final)
	}
	// Streaming a settled job yields snapshot + done immediately.
	resp2, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body, _ := io.ReadAll(resp2.Body)
	if !strings.Contains(string(body), "event: snapshot") || !strings.Contains(string(body), "event: done") {
		t.Fatalf("settled-job stream missing events:\n%s", body)
	}
}

// TestMetricsAndHealthz checks the operational endpoints and the build
// stamp embedded in every response.
func TestMetricsAndHealthz(t *testing.T) {
	s, ts := testServer(t, Config{})
	st, _ := postJob(t, ts, tinySpec)
	waitDone(t, ts, st.ID)
	_ = s

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.Header.Get("X-Paco-Version") == "" {
		t.Fatal("missing X-Paco-Version header")
	}
	var health struct {
		Status  string `json:"status"`
		Version struct {
			Module  string `json:"module"`
			Version string `json:"version"`
		} `json:"version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Version.Module != "paco" || health.Version.Version == "" {
		t.Fatalf("healthz = %+v", health)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	text := string(body)
	for _, series := range []string{
		"paco_build_info{",
		"paco_queue_depth ",
		"paco_jobs_inflight ",
		`paco_jobs_total{status="done"} 1`,
		"paco_simulations_total 1",
		"paco_cache_hits_total ",
		"paco_cache_misses_total ",
		"paco_sim_cycles_total ",
		"paco_sim_kcycles_per_sec ",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("metrics missing %q:\n%s", series, text)
		}
	}
}

// TestRequestErrors covers the rejection paths.
func TestRequestErrors(t *testing.T) {
	_, ts := testServer(t, Config{})
	cases := []struct {
		body string
		want int
	}{
		{`{not json`, http.StatusBadRequest},
		{`{"nonesuch_field":1}`, http.StatusBadRequest},
		{`{"benchmarks":["nonesuch"]}`, http.StatusBadRequest},
		{`{"widths":[-4]}`, http.StatusBadRequest},
		{`{"benchmarks":["gzip"],"widths":[1,2,3,4],"refresh":[1000,2000]}`, http.StatusOK}, // sanity: valid
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if tc.want == http.StatusOK {
			if resp.StatusCode >= 400 {
				t.Errorf("POST %s = %d, want success", tc.body, resp.StatusCode)
			}
		} else if resp.StatusCode != tc.want {
			t.Errorf("POST %s = %d, want %d", tc.body, resp.StatusCode, tc.want)
		}
	}
	for _, path := range []string{"/v1/jobs/j-999999", "/v1/jobs/j-999999/events", "/v1/experiments/nonesuch"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestMaxJobsEviction: job records are bounded — beyond MaxJobs the
// oldest settled jobs are forgotten, while their results stay reachable
// through the content-addressed cache.
func TestMaxJobsEviction(t *testing.T) {
	s, ts := testServer(t, Config{MaxJobs: 2})
	specs := []string{
		`{"benchmarks":["gzip"],"instructions":12000,"warmup":4000}`,
		`{"benchmarks":["gzip"],"instructions":13000,"warmup":4000}`,
		`{"benchmarks":["gzip"],"instructions":14000,"warmup":4000}`,
	}
	ids := make([]string, len(specs))
	for i, spec := range specs {
		st, _ := postJob(t, ts, spec)
		ids[i] = st.ID
		waitDone(t, ts, st.ID)
	}
	// The third submission evicted the first settled record.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + ids[0])
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted job GET = %d, want 404", resp.StatusCode)
	}
	// But its result survives in the cache: an identical re-POST is a hit.
	st, code := postJob(t, ts, specs[0])
	if code != http.StatusOK || st.Cache != "hit" {
		t.Fatalf("re-POST after eviction = %d %+v, want cache hit", code, st)
	}
	if got := s.SimulationsRun(); got != 3 {
		t.Fatalf("simulations = %d, want 3", got)
	}
}

// TestGridTooLarge rejects sweeps beyond the configured cell limit.
func TestGridTooLarge(t *testing.T) {
	_, ts := testServer(t, Config{MaxCells: 4})
	_, code := postJob(t, ts, `{"benchmarks":["gzip"],"widths":[1,2,3,4,5]}`)
	if code != http.StatusBadRequest {
		t.Fatalf("oversized grid accepted with %d", code)
	}
}
