package server

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// sseStart switches the response to a Server-Sent Events stream and
// returns the event writer (each call emits one "event:"/"data:" frame
// and flushes). ok is false — with an error response already written —
// when the connection cannot stream. Shared by the job-progress and
// session-live endpoints.
func sseStart(w http.ResponseWriter) (send func(name string, data []byte), ok bool) {
	fl, canFlush := w.(http.Flusher)
	if !canFlush {
		errorJSON(w, http.StatusInternalServerError, "response writer cannot stream")
		return nil, false
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	return func(name string, data []byte) {
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, data)
		fl.Flush()
	}, true
}

// handleEvents is GET /v1/jobs/{id}/events: a Server-Sent Events stream
// of the job's progress, fed by the campaign engine's progress
// callbacks. The stream opens with a "snapshot" event (current status),
// relays "running" and per-cell "progress" events while the campaign
// executes, and closes after a terminal "done" or "failed" event
// carrying the final status. Subscribing to an already-settled job
// yields the snapshot and the terminal event immediately.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		errorJSON(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeEvent, ok := sseStart(w)
	if !ok {
		return
	}

	ch, unsubscribe := j.subscribe()
	defer unsubscribe()

	writeStatus := func(name string) {
		data, err := json.Marshal(j.status(false))
		if err != nil {
			return
		}
		writeEvent(name, data)
	}

	writeStatus("snapshot")
	terminalName := func() string {
		if st := j.status(false); st.Status == stateFailed {
			return "failed"
		}
		return "done"
	}
	if j.terminal() {
		writeStatus(terminalName())
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-ch:
			writeEvent(ev.name, ev.data)
		case <-j.doneCh:
			// Drain progress that raced the terminal transition, then
			// send the authoritative final status.
			for {
				select {
				case ev := <-ch:
					writeEvent(ev.name, ev.data)
					continue
				default:
				}
				break
			}
			writeStatus(terminalName())
			return
		}
	}
}
