package server

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"paco/internal/campaign"
	"paco/internal/obs"
	"paco/internal/server/expiry"
)

// Federation — the coordinator side of distributed sharded campaigns.
//
// A campaign's cells are independent deterministic simulations, so
// distributing one is a lease protocol, not a consensus problem: the
// coordinator carves the cell space into shards (campaign.Shard), hands
// each shard to at most one worker at a time under a time-bounded lease,
// and merges posted shard results with campaign.Merge. Determinism does
// the rest of the work a distributed system usually sweats over —
// results for a shard are byte-identical no matter which worker produced
// them or how many times the shard ran, so duplicate executions (lease
// expiry racing a slow worker, a worker retrying a dropped POST, two
// campaigns containing the same shard) are harmless: the first complete
// result for a shard ID settles every live task carrying it, and any
// later post is acknowledged and discarded.
//
// Failure model (documented in DESIGN.md §7):
//
//   - Worker death mid-shard: the lease expires (LeaseTTL) and the shard
//     returns to the head of the pending queue for the next lease
//     request. Expiry is lazy — evaluated when workers ask for work or
//     post results — so an idle federation holds no timers and spawns no
//     goroutines.
//   - Dropped or failed result POST: same as death; the lease expires
//     and the shard re-runs. Re-running is safe by determinism.
//   - Worker-reported infrastructure failure (unknown campaign, bad
//     range): the shard is re-queued and its retry count incremented;
//     past RetryLimit the whole campaign fails rather than loop forever.
//   - Simulation failure inside a cell: travels in the cell's Result.Err
//     like any local campaign — the shard completes, and the merged
//     campaign fails with campaign.FirstError, exactly as a
//     single-process run of the same grid would.

// LeaseRequest is the body a worker POSTs to /v1/shards/lease.
type LeaseRequest struct {
	// Worker names the requester; the coordinator tracks liveness and
	// attribution per name.
	Worker string `json:"worker"`
	// SessionsURL, when set, advertises the base URL of the worker's
	// session-serving HTTP endpoint. Lease polls double as heartbeats,
	// so advertising here keeps the session router's view of live
	// session workers exactly as fresh as the federation's view of
	// lease-eligible workers — one registry, two consumers.
	SessionsURL string `json:"sessions_url,omitempty"`
}

// ShardLease is a granted lease: one shard of one campaign, held by one
// worker until it posts results or the TTL passes.
type ShardLease struct {
	LeaseID  string `json:"lease_id"`
	ShardID  string `json:"shard_id"`
	Campaign string `json:"campaign"`

	// Grid, when non-nil, makes the shard self-contained: the worker
	// expands Grid.Jobs() and runs cells [Lo, Hi). When nil the shard
	// belongs to an in-process campaign and the worker resolves the jobs
	// through its JobSource (servertest federations).
	Grid *campaign.Grid `json:"grid,omitempty"`
	Lo   int            `json:"lo"`
	Hi   int            `json:"hi"`

	// TTLMS is the lease duration in milliseconds; a worker that cannot
	// finish and post within it should assume the shard will be re-leased.
	TTLMS int64 `json:"ttl_ms"`

	// Trace is the submitting job's trace ID, propagated so worker-side
	// spans and logs correlate with the coordinator's; it also rides the
	// X-Paco-Trace response header. Span is the coordinator's lease span
	// ID — the parent for the worker's execution spans, completing the
	// cross-process job → lease → execute → cell chain.
	Trace string `json:"trace,omitempty"`
	Span  uint64 `json:"span,omitempty"`
}

// ShardRenewal is the body a worker POSTs to /v1/shards/{id}/renew
// while executing a shard, restarting the lease clock. Workers renew at
// TTL/3, so an expired lease means a dead (or partitioned) worker, not
// a slow shard.
type ShardRenewal struct {
	LeaseID string `json:"lease_id"`
	Worker  string `json:"worker"`
}

// ShardResultPost is the body a worker POSTs to /v1/shards/{id}/result.
// Results non-nil (with exactly Hi-Lo cells, globally indexed) completes
// the shard; Results nil with Error set reports an infrastructure
// failure and re-queues it.
type ShardResultPost struct {
	LeaseID string            `json:"lease_id"`
	Worker  string            `json:"worker"`
	Error   string            `json:"error,omitempty"`
	Results []campaign.Result `json:"results,omitempty"`
}

// shardTask is one shard awaiting execution for one campaign. Settled
// tasks (completed, failed, withdrawn) set done and are skipped lazily
// when the pending queue reaches them.
type shardTask struct {
	id      string // wire shard ID (content address for grid shards)
	dist    *distCampaign
	ordinal int // position in the campaign's shard plan
	grid    *campaign.Grid
	lo, hi  int

	done    bool
	leaseID string // nonempty while leased
	worker  string
	retries int

	// span covers the current lease from grant to settlement. Expiry or
	// a reported failure ends it with the retry cause; the next lease
	// opens a fresh one, so each attempt is its own flight-recorder
	// entry. Zero (disabled) while unleased.
	span obs.Span
}

// distCampaign is one distributed campaign in flight: the coordinator
// side of a distribute call waiting for its shards.
type distCampaign struct {
	id        string
	trace     string // correlates the campaign's spans and logs
	parent    uint64 // span the campaign's lease spans parent to
	remaining int
	pieces    [][]campaign.Result // by shard ordinal
	err       error
	done      chan struct{}
	closed    bool // done has been closed (settled or failed)
	onShard   func(cellsDone int, shardID string)
	cellsDone int
}

// finishShard and fail run under the federation lock (or, for cached
// shards, inside distribute's registration critical section), so closed
// needs no atomics.
func (d *distCampaign) finishShard(ordinal int, shardID string, results []campaign.Result) {
	if d.closed {
		return
	}
	d.pieces[ordinal] = results
	d.cellsDone += len(results)
	d.remaining--
	if d.onShard != nil {
		d.onShard(d.cellsDone, shardID)
	}
	if d.remaining == 0 {
		d.closed = true
		close(d.done)
	}
}

func (d *distCampaign) fail(err error) {
	if d.closed {
		return
	}
	d.closed = true
	d.err = err
	close(d.done)
}

// workerState tracks one worker's liveness and throughput, keyed by the
// name it leases under. Every lease request and result post refreshes
// lastSeen.
type workerState struct {
	lastSeen    time.Time
	leased      uint64
	completed   uint64
	sessionsURL string // session endpoint advertised in lease polls ("" = none)
}

// federation is the coordinator state machine. All fields behind mu; the
// HTTP handlers, distribute, and the metrics scrape are the only
// entrances.
type federation struct {
	// leaseClock is the shared lazy-expiry tracker (internal/server/expiry),
	// keyed by lease ID; the session table's idle sweeper uses the same
	// type. Touched on lease and renew, forgotten on settlement, drained in
	// expireLocked. Mutated only under mu so the leases map never disagrees
	// with it.
	leaseClock *expiry.Tracker
	liveness   time.Duration
	retryLimit int
	cache      *Cache
	obs        *serverObs

	mu        sync.Mutex
	pending   []*shardTask            // FIFO; expired re-leases jump the queue
	tasks     map[string][]*shardTask // shard id -> live tasks (several campaigns may carry one shard)
	leases    map[string]*shardTask   // lease id -> leased task
	workers   map[string]*workerState
	nextLease uint64

	retriesTotal    uint64
	shardsCompleted uint64
}

func newFederation(ttl, liveness time.Duration, retryLimit int, cache *Cache, o *serverObs) *federation {
	if ttl <= 0 {
		ttl = 30 * time.Second
	}
	if liveness <= 0 {
		liveness = 15 * time.Second
	}
	if retryLimit <= 0 {
		retryLimit = 3
	}
	return &federation{
		leaseClock: expiry.New(ttl),
		liveness:   liveness,
		retryLimit: retryLimit,
		cache:      cache,
		obs:        o,
		tasks:      make(map[string][]*shardTask),
		leases:     make(map[string]*shardTask),
		workers:    make(map[string]*workerState),
	}
}

// shardCacheKey is the content address a completed grid shard's results
// are stored under. Shard IDs are themselves content addresses, so this
// is a pure function of the work.
func shardCacheKey(shardID string) string {
	return Key([]byte("shard"), []byte(shardID))
}

// distribute runs one campaign of `size` cells split into up to `shards`
// ranges across the federation and returns the merged, globally ordered
// results. grid non-nil federates a self-contained grid campaign (and
// flows each shard through the content-addressed result cache — cached
// shards complete without ever being leased, completed shards are stored
// for the next sweep that contains them). grid nil federates an opaque
// in-process campaign resolved by worker JobSources; those shards are
// identified by campaignID and range and bypass the cache.
//
// The call blocks until every shard completes, a shard exhausts its
// retries, or ctx is cancelled (remaining shards are withdrawn).
//
// trace correlates the campaign's spans and logs (see obs.NewTraceID);
// parent, when nonzero, is the span every shard lease parents to.
func (f *federation) distribute(ctx context.Context, campaignID, trace string, parent uint64, grid *campaign.Grid, size, shards int, onShard func(cellsDone int, shardID string)) ([]campaign.Result, error) {
	if size == 0 {
		return nil, nil
	}
	type planned struct {
		id     string
		lo, hi int
		cached []campaign.Result
	}
	var plan []planned
	if grid != nil {
		gridShards, err := grid.Shards(shards)
		if err != nil {
			return nil, err
		}
		for _, sh := range gridShards {
			p := planned{id: sh.ID(), lo: sh.Lo, hi: sh.Hi}
			if data, ok := f.cache.Get(shardCacheKey(p.id)); ok {
				var results []campaign.Result
				if err := json.Unmarshal(data, &results); err == nil && len(results) == p.hi-p.lo {
					p.cached = results
				}
			}
			f.obs.lookup("shard", p.cached != nil)
			plan = append(plan, p)
		}
	} else {
		ranges := campaign.Ranges(size, shards)
		for i, r := range ranges {
			// Dots only: shard IDs travel in result-post URL paths, where
			// a slash would split the {id} segment.
			plan = append(plan, planned{
				id: fmt.Sprintf("%s.%d.%d", campaignID, i, len(ranges)),
				lo: r[0], hi: r[1],
			})
		}
	}

	d := &distCampaign{
		id:        campaignID,
		trace:     trace,
		parent:    parent,
		remaining: len(plan),
		pieces:    make([][]campaign.Result, len(plan)),
		done:      make(chan struct{}),
		onShard:   onShard,
	}

	f.mu.Lock()
	for i, p := range plan {
		if p.cached != nil {
			// Cache-settled shards never lease, but still leave a span so
			// the flight recorder accounts for every shard of the campaign.
			sp := f.obs.rec.Start(trace, "shard.cached", short(p.id), parent)
			d.finishShard(i, p.id, p.cached)
			sp.End("")
			continue
		}
		t := &shardTask{id: p.id, dist: d, ordinal: i, grid: grid, lo: p.lo, hi: p.hi}
		f.tasks[p.id] = append(f.tasks[p.id], t)
		f.pending = append(f.pending, t)
	}
	f.mu.Unlock()

	select {
	case <-d.done:
		if d.err != nil {
			return nil, d.err
		}
		return campaign.Merge(d.pieces...), nil
	case <-ctx.Done():
		f.withdraw(d)
		return nil, ctx.Err()
	}
}

// withdraw settles a cancelled campaign's remaining shards so workers
// stop receiving its leases; in-flight leases resolve to "unknown shard"
// when posted.
func (f *federation) withdraw(d *distCampaign) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, ts := range f.tasks {
		for _, t := range ts {
			if t.dist == d {
				f.settleTaskLocked(t)
			}
		}
	}
}

// settleTaskLocked marks one task done and drops it from the live
// tables. The pending queue is cleaned lazily: the lease pop skips done
// tasks.
func (f *federation) settleTaskLocked(t *shardTask) {
	if t.done {
		return
	}
	t.done = true
	// Completion and requeue paths end the lease span with their own
	// verdict first; a span still open here means the task was withdrawn
	// (campaign cancelled or failed elsewhere).
	t.span.End("withdrawn")
	if t.leaseID != "" {
		delete(f.leases, t.leaseID)
		f.leaseClock.Forget(t.leaseID)
		t.leaseID = ""
	}
	// Fresh slice, never in-place: callers iterate snapshots of the old
	// task list while settling.
	live := make([]*shardTask, 0, len(f.tasks[t.id]))
	for _, other := range f.tasks[t.id] {
		if other != t {
			live = append(live, other)
		}
	}
	if len(live) == 0 {
		delete(f.tasks, t.id)
	} else {
		f.tasks[t.id] = live
	}
}

// failCampaignLocked fails a campaign and settles its remaining shards.
func (f *federation) failCampaignLocked(d *distCampaign, err error) {
	for _, ts := range f.tasks {
		for _, t := range ts {
			if t.dist == d {
				f.settleTaskLocked(t)
			}
		}
	}
	d.fail(err)
}

// canonicalWorker is the one place empty worker names are normalized,
// so liveness records, lease attribution, and logs all agree.
func canonicalWorker(name string) string {
	if name == "" {
		return "anonymous"
	}
	return name
}

// touchWorkerLocked refreshes a worker's liveness record. name must
// already be canonical.
func (f *federation) touchWorkerLocked(name string, now time.Time) *workerState {
	w := f.workers[name]
	if w == nil {
		w = &workerState{}
		f.workers[name] = w
	}
	w.lastSeen = now
	return w
}

// expireLocked returns expired leases to the head of the pending queue.
// Lazy expiry: called from the lease and result paths, so a shard held
// by a dead worker is re-leased the next time any live worker checks in.
func (f *federation) expireLocked(now time.Time) {
	var expired []*shardTask
	for _, id := range f.leaseClock.Expired(now) {
		t := f.leases[id]
		if t == nil {
			continue // settled concurrently with the sweep; Forget raced
		}
		delete(f.leases, id)
		t.leaseID = ""
		t.retries++
		f.retriesTotal++
		t.span.Set("retry_cause", "lease expired")
		t.span.End("lease expired")
		f.obs.log.Warn("lease expired; re-queueing shard",
			"shard", short(t.id), "worker", t.worker, "retry", t.retries, "trace", t.dist.trace)
		if t.retries > f.retryLimit {
			f.failCampaignLocked(t.dist, fmt.Errorf("server: shard %s exceeded %d retries (last worker %s)",
				short(t.id), f.retryLimit, t.worker))
			continue
		}
		expired = append(expired, t)
	}
	if len(expired) > 0 {
		// Expired shards jump the queue: they have already waited a full
		// TTL.
		f.pending = append(expired, f.pending...)
	}
}

// short abbreviates a shard or cache key for logs.
func short(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}

// lease grants the next pending shard to the requesting worker, or
// reports none available. Beyond granting shards, the call is the
// worker's heartbeat: it refreshes liveness and records the session
// endpoint the worker advertises (if any) for the session router.
func (f *federation) lease(req LeaseRequest) (ShardLease, bool) {
	workerName := canonicalWorker(req.Worker)
	now := time.Now()
	f.mu.Lock()
	defer f.mu.Unlock()
	w := f.touchWorkerLocked(workerName, now)
	if req.SessionsURL != "" {
		w.sessionsURL = req.SessionsURL
	}
	f.expireLocked(now)
	for len(f.pending) > 0 {
		t := f.pending[0]
		f.pending[0] = nil
		f.pending = f.pending[1:]
		if t.done || t.leaseID != "" {
			continue // settled or re-leased while queued twice
		}
		f.nextLease++
		t.leaseID = fmt.Sprintf("l-%06d", f.nextLease)
		t.worker = workerName
		f.leases[t.leaseID] = t
		f.leaseClock.Touch(t.leaseID, now)
		w.leased++
		t.span = f.obs.rec.Start(t.dist.trace, "shard.lease", short(t.id), t.dist.parent)
		t.span.Set("worker", workerName)
		t.span.Set("lease", t.leaseID)
		// Cell range, for campaign-report worker attribution when the
		// executing worker's spans land in another process's recorder.
		t.span.Set("lo", strconv.Itoa(t.lo))
		t.span.Set("hi", strconv.Itoa(t.hi))
		return ShardLease{
			LeaseID:  t.leaseID,
			ShardID:  t.id,
			Campaign: t.dist.id,
			Grid:     t.grid,
			Lo:       t.lo,
			Hi:       t.hi,
			TTLMS:    f.leaseClock.TTL().Milliseconds(),
			Trace:    t.dist.trace,
			Span:     t.span.ID(),
		}, true
	}
	return ShardLease{}, false
}

// result records a worker's post for a shard. The returned status is the
// HTTP status the handler relays:
//
//	200 — accepted (completion or re-queue of a reported failure)
//	410 — unknown shard (completed, withdrawn, or never existed); benign
//	      for workers, and distinct from a routing 404 so a worker never
//	      mistakes a broken URL for someone else's completion
//	422 — malformed post (wrong cell count); treated as failure, re-queued
//
// renew restarts the lease clock for a shard a worker is still
// executing. 200 on success; 410 when the lease is no longer held
// (expired and re-leased, or the shard completed) — benign for the
// worker, which keeps executing and lets the result post sort it out.
func (f *federation) renew(shardID string, ren ShardRenewal) (int, string) {
	now := time.Now()
	f.mu.Lock()
	defer f.mu.Unlock()
	f.touchWorkerLocked(canonicalWorker(ren.Worker), now)
	t := f.leases[ren.LeaseID]
	if t == nil || t.id != shardID || t.done {
		return 410, "lease no longer held"
	}
	f.leaseClock.Touch(ren.LeaseID, now)
	// Each renewal is a point event in the lease's lifecycle: a zero-
	// length child span of the lease span, so /debug/flight shows the
	// full lease → renew* → result chain.
	sp := f.obs.rec.Start(t.dist.trace, "shard.renew", short(t.id), t.span.ID())
	sp.Set("worker", canonicalWorker(ren.Worker))
	sp.End("")
	return 200, "renewed"
}

func (f *federation) result(shardID string, post ShardResultPost) (int, string) {
	worker := canonicalWorker(post.Worker)
	now := time.Now()
	f.mu.Lock()
	defer f.mu.Unlock()
	w := f.touchWorkerLocked(worker, now)
	ts := f.tasks[shardID]
	if len(ts) == 0 {
		// Determinism makes duplicates harmless: the shard was completed
		// by someone else (or its campaign withdrawn), so the bytes in
		// this post are either identical to what was recorded or moot.
		return 410, "unknown shard (already completed or withdrawn)"
	}
	want := ts[0].hi - ts[0].lo

	requeue := func(t *shardTask, reason string) {
		if t.done {
			return // settled by an earlier failure in this same post
		}
		if t.leaseID != "" {
			delete(f.leases, t.leaseID)
			f.leaseClock.Forget(t.leaseID)
			t.leaseID = ""
		}
		t.retries++
		f.retriesTotal++
		t.span.Set("retry_cause", reason)
		t.span.End(reason)
		f.obs.log.Warn("shard failed; re-queueing",
			"shard", short(t.id), "worker", worker, "reason", reason,
			"retry", t.retries, "trace", t.dist.trace)
		if t.retries > f.retryLimit {
			f.failCampaignLocked(t.dist, fmt.Errorf("server: shard %s exceeded %d retries: %s",
				short(t.id), f.retryLimit, reason))
			return
		}
		f.pending = append([]*shardTask{t}, f.pending...)
	}

	if post.Results == nil {
		reason := post.Error
		if reason == "" {
			reason = "empty result post"
		}
		for _, t := range ts {
			requeue(t, reason)
		}
		return 200, "shard re-queued: " + reason
	}
	if len(post.Results) != want {
		for _, t := range ts {
			requeue(t, fmt.Sprintf("posted %d results for a %d-cell shard", len(post.Results), want))
		}
		return 422, "result count does not match shard range"
	}

	// Complete: the first full result settles every live task carrying
	// this shard, regardless of which lease it came from — an
	// expired-then-finished worker's bytes are identical to the re-leased
	// worker's by determinism.
	w.completed++
	f.shardsCompleted++
	if ts[0].grid != nil && campaign.FirstError(post.Results) == nil {
		if data, err := json.Marshal(post.Results); err == nil {
			f.cache.Put(shardCacheKey(shardID), data)
		}
	}
	for _, t := range ts {
		// End the lease span before settling so the settle catch-all
		// cannot mislabel a completed shard as withdrawn. A task leased
		// elsewhere (or never leased) carries a span for its own lease
		// attempt; ending it with the completing worker records who
		// actually delivered the bytes.
		t.span.Set("completed_by", worker)
		t.span.End("")
		f.settleTaskLocked(t)
		t.dist.finishShard(t.ordinal, shardID, post.Results)
	}
	return 200, "ok"
}

// sessionEndpoint is one live worker's advertised session-serving
// endpoint, as seen by the session router.
type sessionEndpoint struct {
	name string
	url  string
}

// sessionEndpoints returns the live workers that advertise a session
// endpoint, sorted by name so rendezvous hashing sees a stable universe.
// Liveness is the same lastSeen-within-liveness rule stats() applies:
// lease polls are heartbeats, so a worker that stops polling drops out
// of the routing universe within one liveness window.
func (f *federation) sessionEndpoints() []sessionEndpoint {
	now := time.Now()
	f.mu.Lock()
	defer f.mu.Unlock()
	var eps []sessionEndpoint
	for name, w := range f.workers {
		if w.sessionsURL == "" || now.Sub(w.lastSeen) > f.liveness {
			continue
		}
		eps = append(eps, sessionEndpoint{name: name, url: w.sessionsURL})
	}
	sort.Slice(eps, func(i, j int) bool { return eps[i].name < eps[j].name })
	return eps
}

// WorkerStat is one worker's federation record, exported by /metrics and
// FederationStats.
type WorkerStat struct {
	Name         string
	LastSeenAge  time.Duration
	Leased       uint64
	Completed    uint64
	Live         bool
	ActiveLeases int
}

// FederationStats is a point-in-time view of the coordinator.
type FederationStats struct {
	ShardsPending   int
	ShardsLeased    int
	ShardsCompleted uint64
	Retries         uint64
	OldestLeaseAge  time.Duration
	WorkersLive     int
	Workers         []WorkerStat
}

// stats snapshots the federation without mutating it (expiry stays on
// the lease/result paths so scrapes are read-only).
func (f *federation) stats() FederationStats {
	now := time.Now()
	f.mu.Lock()
	defer f.mu.Unlock()
	st := FederationStats{
		ShardsLeased:    len(f.leases),
		ShardsCompleted: f.shardsCompleted,
		Retries:         f.retriesTotal,
	}
	for _, t := range f.pending {
		if !t.done && t.leaseID == "" {
			st.ShardsPending++
		}
	}
	st.OldestLeaseAge = f.leaseClock.Oldest(now)
	active := map[string]int{}
	for _, t := range f.leases {
		active[t.worker]++
	}
	names := make([]string, 0, len(f.workers))
	for name := range f.workers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		w := f.workers[name]
		ws := WorkerStat{
			Name:         name,
			LastSeenAge:  now.Sub(w.lastSeen),
			Leased:       w.leased,
			Completed:    w.completed,
			Live:         now.Sub(w.lastSeen) <= f.liveness,
			ActiveLeases: active[name],
		}
		if ws.Live {
			st.WorkersLive++
		}
		st.Workers = append(st.Workers, ws)
	}
	return st
}
