package server

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"paco/internal/campaign"
)

func TestCanonicalJSONOrderInsensitive(t *testing.T) {
	a := []byte(`{"benchmarks":["gzip","twolf"],"instructions":600000,"warmup":200000}`)
	b := []byte(` { "warmup" : 200000 ,
	                "instructions" : 600000,
	                "benchmarks" : [ "gzip" , "twolf" ] } `)
	ca, err := CanonicalJSON(a)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := CanonicalJSON(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca, cb) {
		t.Fatalf("canonical forms differ:\n%s\n%s", ca, cb)
	}
	// List order is semantic (job order) and must be preserved.
	c, err := CanonicalJSON([]byte(`{"benchmarks":["twolf","gzip"],"instructions":600000,"warmup":200000}`))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ca, c) {
		t.Fatal("canonicalization erased list order")
	}
}

func TestCanonicalJSONNumbers(t *testing.T) {
	cases := [][2]string{
		{`{"n":1e6}`, `{"n":1000000}`},
		{`{"n":1000000.0}`, `{"n":1000000}`},
		{`{"n":0.5}`, `{"n":5e-1}`},
		{`{"n":1e18}`, `{"n":1000000000000000000}`},                  // integral beyond 2^53, within int64
		{`{"n":18446744073709551615}`, `{"n":18446744073709551615}`}, // uint64 max survives exactly
	}
	for _, tc := range cases {
		a, err := CanonicalJSON([]byte(tc[0]))
		if err != nil {
			t.Fatalf("%s: %v", tc[0], err)
		}
		b, err := CanonicalJSON([]byte(tc[1]))
		if err != nil {
			t.Fatalf("%s: %v", tc[1], err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("CanonicalJSON(%s) = %s, CanonicalJSON(%s) = %s; want equal", tc[0], a, tc[1], b)
		}
	}
	if _, err := CanonicalJSON([]byte(`{"a":1} trailing`)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	if _, err := CanonicalJSON([]byte(`{`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestKeyDomainSeparation(t *testing.T) {
	if Key([]byte("ab"), []byte("c")) == Key([]byte("a"), []byte("bc")) {
		t.Fatal("part boundaries do not affect the key")
	}
	if len(Key([]byte("x"))) != 64 {
		t.Fatalf("key length = %d, want 64 hex chars", len(Key([]byte("x"))))
	}
}

func TestCacheEvictionRespectsBudget(t *testing.T) {
	c, err := NewCache(100, "")
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("x"), 40)
	keys := make([]string, 4)
	for i := range keys {
		keys[i] = Key([]byte{byte(i)})
		c.Put(keys[i], data)
		if st := c.Stats(); st.Bytes > 100 {
			t.Fatalf("after put %d: %d bytes resident, budget 100", i, st.Bytes)
		}
	}
	// 4 x 40 bytes into a 100-byte budget: only the 2 most recent fit.
	st := c.Stats()
	if st.Entries != 2 || st.Bytes != 80 {
		t.Fatalf("stats = %+v, want 2 entries / 80 bytes", st)
	}
	if _, ok := c.Get(keys[0]); ok {
		t.Fatal("oldest entry not evicted")
	}
	if _, ok := c.Get(keys[3]); !ok {
		t.Fatal("newest entry missing")
	}
	// Touching an entry protects it from the next eviction.
	c.Get(keys[2])
	c.Put(Key([]byte{9}), data)
	if _, ok := c.Get(keys[2]); !ok {
		t.Fatal("recently used entry evicted before LRU victim")
	}
	// An entry larger than the whole budget is refused outright.
	c.Put(Key([]byte{10}), bytes.Repeat([]byte("y"), 101))
	if st := c.Stats(); st.Bytes > 100 {
		t.Fatalf("oversized entry stored: %+v", st)
	}
}

func TestCacheDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(1<<20, dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key([]byte("persist-me"))
	c.Put(key, []byte("result bytes"))
	if _, err := os.Stat(filepath.Join(dir, key)); err != nil {
		t.Fatalf("entry not persisted: %v", err)
	}
	// A foreign file in the directory is ignored on reload.
	os.WriteFile(filepath.Join(dir, "README"), []byte("not a key"), 0o644)

	c2, err := NewCache(1<<20, dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get(key)
	if !ok || string(got) != "result bytes" {
		t.Fatalf("reloaded Get = %q, %v", got, ok)
	}
	if st := c2.Stats(); st.Entries != 1 {
		t.Fatalf("reloaded entries = %d, want 1", st.Entries)
	}

	// Eviction removes the file too, so the directory cannot grow
	// without bound.
	small, err := NewCache(10, dir)
	if err != nil {
		t.Fatal(err)
	}
	if st := small.Stats(); st.Entries != 0 {
		t.Fatalf("reload beyond budget kept %d entries", st.Entries)
	}
	if _, err := os.Stat(filepath.Join(dir, key)); !os.IsNotExist(err) {
		t.Fatalf("evicted entry still on disk: %v", err)
	}
}

func TestCacheStatsCounters(t *testing.T) {
	c, err := NewCache(1<<20, "")
	if err != nil {
		t.Fatal(err)
	}
	k := Key([]byte("k"))
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, []byte("v"))
	for i := 0; i < 3; i++ {
		if _, ok := c.Get(k); !ok {
			t.Fatal("miss after put")
		}
	}
	st := c.Stats()
	if st.Hits != 3 || st.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 3/1", st.Hits, st.Misses)
	}
}

func TestSpecKeyMatchesAcrossSpellings(t *testing.T) {
	// specKey goes through Grid normalization + canonical JSON, so a spec
	// with defaults spelled out equals one with them omitted.
	g1 := mustGrid(t, `{"benchmarks":["gzip"],"instructions":600000}`)
	g2 := mustGrid(t, `{"instructions":600000,"benchmarks":["gzip"],"warmup":200000,"widths":[4]}`)
	k1, err := specKey(g1)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := specKey(g2)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("equivalent specs hash differently:\n%s\n%s", k1, k2)
	}
	g3 := mustGrid(t, `{"benchmarks":["gzip"],"instructions":700000}`)
	k3, err := specKey(g3)
	if err != nil {
		t.Fatal(err)
	}
	if k3 == k1 {
		t.Fatal("different specs hash equal")
	}
}

func mustGrid(t *testing.T, raw string) campaign.Grid {
	t.Helper()
	var g campaign.Grid
	if err := json.Unmarshal([]byte(raw), &g); err != nil {
		t.Fatal(err)
	}
	n, err := g.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	return n
}
