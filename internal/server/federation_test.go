package server

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"paco/internal/campaign"
	"paco/internal/obs"
)

// testObs is the minimal serverObs a bare federation needs: a recorder
// for lease spans, a nop logger, and the lookup counter. Scrape-backed
// families are irrelevant here, so no full Server is constructed.
func testObs() *serverObs {
	r := obs.NewRegistry()
	return &serverObs{
		reg: r,
		rec: obs.NewRecorder(0),
		log: obs.NopLogger(),
		cacheLookups: r.CounterVec("paco_cache_lookups_total",
			"Content-addressed lookups by kind and outcome.", "kind", "outcome"),
	}
}

func testFederation(ttl time.Duration, retryLimit int) *federation {
	cache, _ := NewCache(1<<20, "")
	return newFederation(ttl, time.Minute, retryLimit, cache, testObs())
}

// fakeResults builds a plausible shard result slice for cells [lo, hi).
func fakeResults(lo, hi int) []campaign.Result {
	out := make([]campaign.Result, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, campaign.Result{Index: i, JobID: "cell", Cycles: uint64(i)})
	}
	return out
}

// TestFederationLeaseProtocol walks the happy path at the protocol
// level: distribute queues shards, leases carry the range and campaign,
// posting completes, and the merged results come back globally ordered.
func TestFederationLeaseProtocol(t *testing.T) {
	f := testFederation(time.Minute, 3)
	type done struct {
		results []campaign.Result
		err     error
	}
	doneCh := make(chan done, 1)
	go func() {
		results, err := f.distribute(context.Background(), "c-1", "", 0, nil, 5, 2, nil)
		doneCh <- done{results, err}
	}()

	// Two shards: [0,3) and [3,5).
	var leases []ShardLease
	for len(leases) < 2 {
		if lease, ok := f.lease(LeaseRequest{Worker: "w1"}); ok {
			leases = append(leases, lease)
		} else {
			time.Sleep(time.Millisecond)
		}
	}
	if leases[0].Lo != 0 || leases[0].Hi != 3 || leases[1].Lo != 3 || leases[1].Hi != 5 {
		t.Fatalf("lease ranges %+v, want [0,3) and [3,5)", leases)
	}
	if leases[0].Campaign != "c-1" || leases[0].Grid != nil {
		t.Fatalf("lease %+v, want campaign c-1 without a grid", leases[0])
	}
	if _, ok := f.lease(LeaseRequest{Worker: "w2"}); ok {
		t.Fatal("a third lease appeared for a 2-shard campaign")
	}

	// Post out of order; merge must still be globally ordered.
	if code, msg := f.result(leases[1].ShardID, ShardResultPost{
		LeaseID: leases[1].LeaseID, Worker: "w1", Results: fakeResults(3, 5),
	}); code != 200 {
		t.Fatalf("posting shard 1: %d %s", code, msg)
	}
	if code, msg := f.result(leases[0].ShardID, ShardResultPost{
		LeaseID: leases[0].LeaseID, Worker: "w1", Results: fakeResults(0, 3),
	}); code != 200 {
		t.Fatalf("posting shard 0: %d %s", code, msg)
	}
	out := <-doneCh
	if out.err != nil {
		t.Fatal(out.err)
	}
	for i, r := range out.results {
		if r.Index != i {
			t.Fatalf("merged results out of order: %+v", out.results)
		}
	}
	// Duplicate post: benign 410.
	if code, _ := f.result(leases[0].ShardID, ShardResultPost{Worker: "w2", Results: fakeResults(0, 3)}); code != 410 {
		t.Fatalf("duplicate post returned %d, want 410", code)
	}
}

// TestFederationExpiryRetriesAndFailure: a silent worker's lease expires
// and the shard re-leases (jumping the queue) with the retry counter
// advancing; exhausting the retry limit fails the campaign with a
// descriptive error.
func TestFederationExpiryRetriesAndFailure(t *testing.T) {
	const ttl = 5 * time.Millisecond
	f := testFederation(ttl, 2)
	errCh := make(chan error, 1)
	go func() {
		_, err := f.distribute(context.Background(), "c-1", "", 0, nil, 2, 1, nil)
		errCh <- err
	}()

	deadline := time.Now().Add(10 * time.Second)
	var leases int
	for {
		if lease, ok := f.lease(LeaseRequest{Worker: "flaky"}); ok {
			leases++
			if lease.Lo != 0 || lease.Hi != 2 {
				t.Fatalf("re-leased shard changed range: %+v", lease)
			}
			// Never post: every lease must expire.
		}
		select {
		case err := <-errCh:
			if err == nil {
				t.Fatal("campaign succeeded though no shard was ever posted")
			}
			if !strings.Contains(err.Error(), "exceeded 2 retries") || !strings.Contains(err.Error(), "flaky") {
				t.Fatalf("campaign error %q does not describe the retry exhaustion", err)
			}
			if got := f.stats().Retries; got < 2 {
				t.Fatalf("retries counter = %d, want >= 2", got)
			}
			if leases < 2 {
				t.Fatalf("shard was leased %d times, want >= 2 (expiry re-lease)", leases)
			}
			return
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("campaign did not fail within 10s")
		}
		time.Sleep(ttl)
	}
}

// TestFederationRenewalKeepsSlowShardAlive: a worker renewing its lease
// holds a shard for many multiples of the TTL without expiry — so a
// slow shard is distinguishable from a dead worker, and only the
// latter burns retries.
func TestFederationRenewalKeepsSlowShardAlive(t *testing.T) {
	const ttl = 40 * time.Millisecond
	f := testFederation(ttl, 2)
	type done struct {
		results []campaign.Result
		err     error
	}
	doneCh := make(chan done, 1)
	go func() {
		results, err := f.distribute(context.Background(), "c-1", "", 0, nil, 2, 1, nil)
		doneCh <- done{results, err}
	}()
	var lease ShardLease
	for {
		var ok bool
		if lease, ok = f.lease(LeaseRequest{Worker: "slowpoke"}); ok {
			break
		}
		time.Sleep(time.Millisecond)
	}
	// Simulate a shard that runs 5x the TTL, renewing at TTL/3.
	deadline := time.Now().Add(5 * ttl)
	for time.Now().Before(deadline) {
		time.Sleep(ttl / 3)
		if code, msg := f.renew(lease.ShardID, ShardRenewal{LeaseID: lease.LeaseID, Worker: "slowpoke"}); code != 200 {
			t.Fatalf("renewal rejected: %d %s", code, msg)
		}
		// Another worker checking in triggers lazy expiry; the renewed
		// lease must never be re-queued.
		if stolen, ok := f.lease(LeaseRequest{Worker: "other"}); ok {
			t.Fatalf("renewed shard was re-leased to another worker: %+v", stolen)
		}
	}
	if code, msg := f.result(lease.ShardID, ShardResultPost{
		LeaseID: lease.LeaseID, Worker: "slowpoke", Results: fakeResults(0, 2),
	}); code != 200 {
		t.Fatalf("posting after renewals: %d %s", code, msg)
	}
	out := <-doneCh
	if out.err != nil {
		t.Fatal(out.err)
	}
	if got := f.stats().Retries; got != 0 {
		t.Fatalf("slow-but-renewing shard burned %d retries, want 0", got)
	}
	// After completion the lease is gone: renewal reports 410.
	if code, _ := f.renew(lease.ShardID, ShardRenewal{LeaseID: lease.LeaseID, Worker: "slowpoke"}); code != 410 {
		t.Fatalf("renewal of a completed shard returned %d, want 410", code)
	}
}

// TestFederationMalformedResultRequeues: a result post whose cell count
// does not match the shard range is rejected (422) and the shard is
// re-queued for immediate re-lease.
func TestFederationMalformedResultRequeues(t *testing.T) {
	f := testFederation(time.Minute, 3)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel() // unblocks the distribute goroutine at test end
	go f.distribute(ctx, "c-1", "", 0, nil, 4, 1, nil)

	var lease ShardLease
	for {
		var ok bool
		if lease, ok = f.lease(LeaseRequest{Worker: "w1"}); ok {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if code, _ := f.result(lease.ShardID, ShardResultPost{
		LeaseID: lease.LeaseID, Worker: "w1", Results: fakeResults(0, 2),
	}); code != 422 {
		t.Fatalf("short result post returned %d, want 422", code)
	}
	release, ok := f.lease(LeaseRequest{Worker: "w2"})
	if !ok {
		t.Fatal("shard was not re-queued after the malformed post")
	}
	if release.ShardID != lease.ShardID {
		t.Fatalf("re-lease handed out %s, want %s", release.ShardID, lease.ShardID)
	}
	if f.stats().Retries != 1 {
		t.Fatalf("retries = %d, want 1", f.stats().Retries)
	}
}

// TestShardEndpointsHTTP exercises the worker protocol over real HTTP:
// empty queue -> 204, broken result URL -> routing 404 (json error),
// unknown shard -> 410.
func TestShardEndpointsHTTP(t *testing.T) {
	_, ts := testServer(t, Config{})

	resp, err := http.Post(ts.URL+"/v1/shards/lease", "application/json", strings.NewReader(`{"worker":"w1"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("lease on an idle coordinator: %d, want 204", resp.StatusCode)
	}

	body := strings.NewReader(`{"lease_id":"l-1","worker":"w1","results":[]}`)
	resp, err = http.Post(ts.URL+"/v1/shards/nope/result", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("unknown shard post: %d, want 410", resp.StatusCode)
	}
	var msg map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&msg); err != nil {
		t.Fatalf("410 body not JSON: %v", err)
	}
}
