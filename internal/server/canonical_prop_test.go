package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"testing"

	"paco/internal/campaign"
	"paco/internal/scenario"
)

// Property test for CanonicalJSON and grid cache keys (the hashing the
// whole federation's content addressing rests on). A seeded generator
// re-spells every document in a corpus — random field order, random
// whitespace, random but value-preserving number forms, defaults spelled
// out vs omitted, scenario-vs-benchmark family spellings — and asserts:
//
//  1. canonicalization is idempotent,
//  2. every spelling of one document canonicalizes to one byte string,
//  3. every spelling of one sweep hashes to one cache key, and
//  4. distinct sweeps never collide across the corpus (which includes
//     the PR 4 scenario families and a seeded fuzz batch).

// renderJSON re-spells a decoded JSON value: object keys in random
// order, random insignificant whitespace, numbers in a random
// value-preserving form.
// respell false keeps every number spelled exactly as decoded — the
// mode grid-key tests use, since the server's Grid decoder (like any
// json.Unmarshal into uint64 fields) rejects float spellings of
// integer fields.
func renderJSON(r *rand.Rand, v any, respell bool) string {
	var b strings.Builder
	writeJSONVariant(r, &b, v, respell)
	return b.String()
}

func ws(r *rand.Rand, b *strings.Builder) {
	for i := r.Intn(3); i > 0; i-- {
		b.WriteString([]string{" ", "\n", "\t"}[r.Intn(3)])
	}
}

func writeJSONVariant(r *rand.Rand, b *strings.Builder, v any, respell bool) {
	switch x := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		r.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
		b.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				b.WriteByte(',')
			}
			ws(r, b)
			fmt.Fprintf(b, "%q", k)
			ws(r, b)
			b.WriteByte(':')
			ws(r, b)
			writeJSONVariant(r, b, x[k], respell)
		}
		ws(r, b)
		b.WriteByte('}')
	case []any:
		b.WriteByte('[')
		for i, e := range x {
			if i > 0 {
				b.WriteByte(',')
			}
			ws(r, b)
			writeJSONVariant(r, b, e, respell)
		}
		ws(r, b)
		b.WriteByte(']')
	case json.Number:
		if respell {
			b.WriteString(respellNumber(r, string(x)))
		} else {
			b.WriteString(string(x))
		}
	case float64:
		s := strconv.FormatFloat(x, 'g', -1, 64)
		if respell {
			s = respellNumber(r, s)
		}
		b.WriteString(s)
	case string:
		fmt.Fprintf(b, "%q", x)
	case bool:
		fmt.Fprintf(b, "%v", x)
	case nil:
		b.WriteString("null")
	default:
		panic(fmt.Sprintf("renderJSON: unhandled %T", v))
	}
}

// respellNumber rewrites a JSON number without changing its float64
// value: integers may grow a ".0" suffix or collapse trailing zeros into
// an exponent ("20000" -> "2e4").
func respellNumber(r *rand.Rand, s string) string {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return s
	}
	if f != math.Trunc(f) || math.Abs(f) >= 1e15 {
		return s
	}
	switch r.Intn(3) {
	case 0:
		if f != 0 && math.Mod(f, 10) == 0 {
			exp := 0
			m := f
			for math.Mod(m, 10) == 0 {
				m /= 10
				exp++
			}
			return fmt.Sprintf("%de%d", int64(m), exp)
		}
	case 1:
		return fmt.Sprintf("%d.0", int64(f))
	}
	return s
}

// decodeAny parses JSON preserving number spellings.
func decodeAny(t *testing.T, doc string) any {
	t.Helper()
	dec := json.NewDecoder(strings.NewReader(doc))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		t.Fatalf("decoding %q: %v", doc, err)
	}
	return v
}

// keyOf parses a grid document, normalizes it, and returns its cache
// key.
func keyOf(t *testing.T, doc string) string {
	t.Helper()
	var g campaign.Grid
	if err := json.Unmarshal([]byte(doc), &g); err != nil {
		t.Fatalf("parsing grid %q: %v", doc, err)
	}
	n, err := g.Normalized()
	if err != nil {
		t.Fatalf("normalizing %q: %v", doc, err)
	}
	k, err := specKey(n)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// propCorpus is the distinct-sweep corpus: hand-written sweeps, every
// scenario family from PR 4, and a seeded fuzz batch of generated
// scenario documents (nested param objects stress number
// canonicalization).
func propCorpus(t *testing.T) map[string]string {
	t.Helper()
	corpus := map[string]string{
		"gzip":        `{"benchmarks":["gzip"]}`,
		"twolf":       `{"benchmarks":["twolf"]}`,
		"widths":      `{"benchmarks":["gzip","twolf"],"widths":[2,4]}`,
		"sized":       `{"benchmarks":["gzip"],"instructions":20000,"warmup":5000}`,
		"gated":       `{"benchmarks":["gzip"],"prob_gates":[0.2],"thresholds":[3],"gate_count":4}`,
		"refresh":     `{"benchmarks":["gzip"],"refresh":[100000,200000]}`,
		"seeded":      `{"scenarios":[{"family":"phase-thrash"}],"seed":7}`,
		"fuzz-1-3":    `{"fuzz":{"seed":1,"count":3}}`,
		"fuzz-2-3":    `{"fuzz":{"seed":2,"count":3}}`,
		"fuzz-1-4":    `{"fuzz":{"seed":1,"count":4}}`,
		"mixed":       `{"benchmarks":["gzip","interpreter"],"scenarios":[{"family":"loopy"}]}`,
		"fuzz-triple": `{"benchmarks":["twolf"],"fuzz":{"seed":9,"count":2},"widths":[2]}`,
	}
	for _, fam := range scenario.FamilyNames() {
		corpus["family-"+fam] = fmt.Sprintf(`{"scenarios":[{"family":%q}]}`, fam)
	}
	fuzzed, err := scenario.FuzzSpec{Seed: 42, Count: 6}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for i, sc := range fuzzed {
		raw, err := json.Marshal(sc)
		if err != nil {
			t.Fatal(err)
		}
		corpus[fmt.Sprintf("fuzzed-doc-%d", i)] = fmt.Sprintf(`{"scenarios":[%s],"instructions":30000}`, raw)
	}
	return corpus
}

func TestCanonicalJSONPropertyIdempotentAndSpellingInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(20260728))
	for name, doc := range propCorpus(t) {
		base, err := CanonicalJSON([]byte(doc))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Idempotence: canonicalizing the canonical form is a no-op.
		again, err := CanonicalJSON(base)
		if err != nil {
			t.Fatalf("%s: recanonicalizing: %v", name, err)
		}
		if !bytes.Equal(base, again) {
			t.Fatalf("%s: canonicalization not idempotent:\n first: %s\nsecond: %s", name, base, again)
		}
		// Spelling invariance: random field order, whitespace, and number
		// forms all collapse to the same canonical bytes.
		v := decodeAny(t, doc)
		for i := 0; i < 16; i++ {
			variant := renderJSON(r, v, true)
			got, err := CanonicalJSON([]byte(variant))
			if err != nil {
				t.Fatalf("%s variant %d (%s): %v", name, i, variant, err)
			}
			if !bytes.Equal(got, base) {
				t.Fatalf("%s variant %d canonicalized differently:\nvariant: %s\n    got: %s\n   want: %s",
					name, i, variant, got, base)
			}
		}
	}
}

func TestGridCacheKeyPropertySpellingInvariantAndCollisionFree(t *testing.T) {
	r := rand.New(rand.NewSource(8344))
	corpus := propCorpus(t)

	keys := map[string]string{} // cache key -> corpus entry
	for name, doc := range corpus {
		base := keyOf(t, doc)
		if prev, dup := keys[base]; dup {
			t.Fatalf("corpus entries %q and %q collide on key %s", prev, name, base)
		}
		keys[base] = name

		// The normalized form spells every default out; the minimal form
		// omits them. Both, under any spelling the generator produces,
		// must hash to the same key.
		var g campaign.Grid
		if err := json.Unmarshal([]byte(doc), &g); err != nil {
			t.Fatal(err)
		}
		norm, err := g.Normalized()
		if err != nil {
			t.Fatal(err)
		}
		normJSON, err := json.Marshal(norm)
		if err != nil {
			t.Fatal(err)
		}
		for _, form := range []string{doc, string(normJSON)} {
			v := decodeAny(t, form)
			for i := 0; i < 8; i++ {
				variant := renderJSON(r, v, false)
				if got := keyOf(t, variant); got != base {
					t.Fatalf("%s: spelling %s hashed to %s, want %s", name, variant, got, base)
				}
			}
		}
	}

	// Scenario-vs-benchmark spelling: a family name on the benchmarks
	// axis is the same sweep as the explicit scenario document.
	for _, fam := range scenario.FamilyNames() {
		asBench := keyOf(t, fmt.Sprintf(`{"benchmarks":[%q]}`, fam))
		asScenario := keyOf(t, fmt.Sprintf(`{"scenarios":[{"family":%q}]}`, fam))
		if asBench != asScenario {
			t.Fatalf("family %s: benchmark-axis key %s != scenario key %s", fam, asBench, asScenario)
		}
		if keys[asBench] != "family-"+fam {
			t.Fatalf("family %s: benchmark-axis spelling left the corpus key set", fam)
		}
	}

	// Fuzz expansion: the declarative fuzz spec and its expanded
	// scenario list are the same sweep.
	fuzzed, err := scenario.FuzzSpec{Seed: 1, Count: 3}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	expanded := struct {
		Scenarios []scenario.Scenario `json:"scenarios"`
	}{Scenarios: fuzzed}
	raw, err := json.Marshal(expanded)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := keyOf(t, string(raw)), keyOf(t, `{"fuzz":{"seed":1,"count":3}}`); got != want {
		t.Fatalf("expanded fuzz batch keyed %s, spec form keyed %s", got, want)
	}
}
