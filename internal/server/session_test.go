package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"paco/internal/obs"
	"paco/internal/session"
	"paco/internal/trace"
)

// sessionSpecJSON is the four-estimator spec the HTTP tests run with.
const sessionSpecJSON = `{"estimators":[{"kind":"paco","refresh":128},{"kind":"static"},{"kind":"perbranch"},{"kind":"count","threshold":3}]}`

// genSessionEvents synthesizes a valid event stream (fetches open tags,
// resolves/squashes close them, retires train, cycle markers tick),
// deterministic by seed.
func genSessionEvents(seed int64, n int) []trace.Event {
	rng := rand.New(rand.NewSource(seed))
	var evs []trace.Event
	var open []uint64
	nextTag := uint64(1)
	cycle := uint64(0)
	for len(evs) < n {
		switch r := rng.Intn(10); {
		case r < 4: // fetch
			ev := trace.Event{
				Kind:    trace.EvFetch,
				Tag:     nextTag,
				PC:      0x4000 + uint64(rng.Intn(64))*4,
				History: uint32(rng.Intn(1 << 12)),
				MDC:     uint8(rng.Intn(16)),
			}
			if rng.Intn(4) != 0 {
				ev.Flags |= 1 // conditional
			}
			open = append(open, nextTag)
			nextTag++
			evs = append(evs, ev)
		case r < 7 && len(open) > 0: // resolve or squash
			i := rng.Intn(len(open))
			tag := open[i]
			open = append(open[:i], open[i+1:]...)
			kind := trace.EvResolve
			if rng.Intn(5) == 0 {
				kind = trace.EvSquash
			}
			evs = append(evs, trace.Event{Kind: kind, Tag: tag})
		case r < 9: // retire
			ev := trace.Event{
				Kind:    trace.EvRetire,
				PC:      0x4000 + uint64(rng.Intn(64))*4,
				History: uint32(rng.Intn(1 << 12)),
				MDC:     uint8(rng.Intn(16)),
				Flags:   1, // conditional
			}
			if rng.Intn(5) != 0 {
				ev.Flags |= 2 // correct
			}
			evs = append(evs, ev)
		default: // cycle marker
			cycle += 64
			evs = append(evs, trace.Event{Kind: trace.EvCycle, PC: cycle})
		}
	}
	return evs
}

// traceBytes serializes events as a binary trace stream.
func traceBytes(t *testing.T, evs []trace.Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs {
		if err := w.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// ndjsonBytes serializes events as NDJSON lines.
func ndjsonBytes(t *testing.T, evs []trace.Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, ev := range evs {
		line, err := session.MarshalNDJSON(ev)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(line)
	}
	return buf.Bytes()
}

func openSession(t *testing.T, ts *httptest.Server, spec string) sessionOpened {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("open session → %d: %s", resp.StatusCode, raw)
	}
	var opened sessionOpened
	if err := json.Unmarshal(raw, &opened); err != nil {
		t.Fatalf("decoding %s: %v", raw, err)
	}
	return opened
}

// postChunk sends one ingest chunk, returning status, Retry-After header,
// and the decoded acknowledgment (zero on errors).
func postChunk(t *testing.T, ts *httptest.Server, id, contentType string, chunk []byte) (int, string, sessionIngested) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/sessions/"+id+"/events", contentType, bytes.NewReader(chunk))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var ack sessionIngested
	if resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(raw, &ack); err != nil {
			t.Fatalf("decoding ack %s: %v", raw, err)
		}
	}
	return resp.StatusCode, resp.Header.Get("Retry-After"), ack
}

// streamChunks feeds raw to the session in fixed-size chunks, retrying
// backpressure rejections with the identical bytes, and returns how many
// 429s were observed.
func streamChunks(t *testing.T, ts *httptest.Server, id, contentType string, raw []byte, chunk int) int {
	t.Helper()
	rejected := 0
	for off := 0; off < len(raw); {
		end := off + chunk
		if end > len(raw) {
			end = len(raw)
		}
		status, retryAfter, _ := postChunk(t, ts, id, contentType, raw[off:end])
		switch status {
		case http.StatusAccepted:
			off = end
		case http.StatusTooManyRequests:
			rejected++
			if retryAfter == "" {
				t.Fatal("429 without Retry-After header")
			}
			time.Sleep(time.Millisecond)
		default:
			t.Fatalf("ingest chunk at %d → %d", off, status)
		}
	}
	return rejected
}

func getScores(t *testing.T, ts *httptest.Server, id string) (session.Scores, int) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/sessions/" + id + "/scores")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return session.Scores{}, resp.StatusCode
	}
	var sc session.Scores
	if err := json.Unmarshal(raw, &sc); err != nil {
		t.Fatalf("decoding %s: %v", raw, err)
	}
	return sc, resp.StatusCode
}

// closeSession DELETEs the session and returns the raw response body (the
// final scores document, byte-comparable to offline replay output).
func closeSession(t *testing.T, ts *httptest.Server, id string) ([]byte, int) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return raw, resp.StatusCode
}

// TestSessionStreamingDeterminism is the subsystem's acceptance test: a
// recorded binary trace streamed through the HTTP surface in arbitrary
// chunks finishes with byte-identical final scores to offline replay of
// the same bytes.
func TestSessionStreamingDeterminism(t *testing.T) {
	_, ts := testServer(t, Config{JobWorkers: 1, QueueSize: 4, CacheBytes: 1 << 20})
	evs := genSessionEvents(42, 5000)
	raw := traceBytes(t, evs)

	spec, err := session.ParseEstimators("paco,static,perbranch,count", 128, 3)
	if err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	offline, err := session.Replay(r, spec)
	if err != nil {
		t.Fatal(err)
	}
	// The DELETE body is writeJSON output: indented JSON plus newline.
	want, err := json.MarshalIndent(offline, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, '\n')

	// 997 is deliberately coprime with the 23-byte record size, so every
	// chunk boundary falls mid-record.
	opened := openSession(t, ts, sessionSpecJSON)
	streamChunks(t, ts, opened.ID, "application/octet-stream", raw, 997)

	// Wait for the queue to drain before closing, so the final document's
	// Queued field is exercised as zero the same way offline reports it.
	deadline := time.Now().Add(30 * time.Second)
	for {
		sc, _ := getScores(t, ts, opened.ID)
		if sc.Queued == 0 && sc.Events == uint64(len(evs)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue never drained: %+v", sc)
		}
		time.Sleep(time.Millisecond)
	}
	body, status := closeSession(t, ts, opened.ID)
	if status != http.StatusOK {
		t.Fatalf("close → %d: %s", status, body)
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("streamed final scores differ from offline replay:\n got %s\nwant %s", body, want)
	}

	// The session is gone afterwards: 410 naming the close reason, not
	// the 404 an ID the table never issued gets.
	if _, status := getScores(t, ts, opened.ID); status != http.StatusGone {
		t.Fatalf("scores after close → %d, want 410", status)
	}
	if body, status := closeSession(t, ts, opened.ID); status != http.StatusGone || !bytes.Contains(body, []byte("client")) {
		t.Fatalf("double close → %d: %s, want 410 naming reason client", status, body)
	}
}

// TestSessionSpecKeyAndErrors covers the open path: respelled specs
// content-address to the same key, the trace header is echoed, bad specs
// are client errors, and a full table answers 503.
func TestSessionSpecKeyAndErrors(t *testing.T) {
	_, ts := testServer(t, Config{JobWorkers: 1, QueueSize: 4, CacheBytes: 1 << 20, SessionMaxOpen: 2})

	req, _ := http.NewRequest("POST", ts.URL+"/v1/sessions",
		strings.NewReader(`{"estimators":[{"kind":"PaCo","refresh":200000}]}`))
	req.Header.Set(obs.TraceHeader, "t-session-test")
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var a sessionOpened
	if err := json.NewDecoder(resp.Body).Decode(&a); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(obs.TraceHeader); got != "t-session-test" {
		t.Errorf("%s echoed %q, want the client's trace ID", obs.TraceHeader, got)
	}

	// The zero spec normalizes to the same single default-PaCo estimator.
	b := openSession(t, ts, "")
	if a.Key != b.Key {
		t.Errorf("respelled specs keyed differently:\n %s\n %s", a.Key, b.Key)
	}
	if a.ID == b.ID {
		t.Error("distinct sessions share an ID")
	}
	if len(b.Spec.Estimators) != 1 || b.Spec.Estimators[0].Kind != session.KindPaCo {
		t.Errorf("normalized spec not echoed: %+v", b.Spec)
	}

	// Both slots taken: the cap rejects with 503.
	resp, err = http.Post(ts.URL+"/v1/sessions", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("open past cap → %d, want 503", resp.StatusCode)
	}

	// Unknown estimator kind is a client error.
	resp, err = http.Post(ts.URL+"/v1/sessions", "application/json",
		strings.NewReader(`{"estimators":[{"kind":"magic"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus kind → %d, want 400", resp.StatusCode)
	}

	// Unknown session IDs 404 on every per-session route.
	if _, status := getScores(t, ts, "s-nope"); status != http.StatusNotFound {
		t.Errorf("scores for unknown session → %d, want 404", status)
	}
	if status, _, _ := postChunk(t, ts, "s-nope", "application/x-ndjson", []byte("{}\n")); status != http.StatusNotFound {
		t.Errorf("ingest for unknown session → %d, want 404", status)
	}
	if _, status := closeSession(t, ts, "s-nope"); status != http.StatusNotFound {
		t.Errorf("close for unknown session → %d, want 404", status)
	}
}

// TestSessionFormatConflict: a session locks onto its first chunk's
// encoding; switching mid-stream is 409, and a decode error is 400 but
// leaves the session closeable.
func TestSessionFormatConflict(t *testing.T) {
	_, ts := testServer(t, Config{JobWorkers: 1, QueueSize: 4, CacheBytes: 1 << 20})
	evs := genSessionEvents(7, 50)

	opened := openSession(t, ts, sessionSpecJSON)
	if status, _, _ := postChunk(t, ts, opened.ID, "application/x-ndjson", ndjsonBytes(t, evs)); status != http.StatusAccepted {
		t.Fatalf("NDJSON ingest → %d", status)
	}
	if status, _, _ := postChunk(t, ts, opened.ID, "application/octet-stream", traceBytes(t, evs)); status != http.StatusConflict {
		t.Fatalf("binary chunk into NDJSON stream → %d, want 409", status)
	}
	if status, _, _ := postChunk(t, ts, opened.ID, "application/x-ndjson", []byte("{\"kind\":\"warp\"}\n")); status != http.StatusBadRequest {
		t.Fatalf("undecodable chunk → %d, want 400", status)
	}
	if _, status := closeSession(t, ts, opened.ID); status != http.StatusOK {
		t.Fatalf("close after decode error → %d, want 200", status)
	}
}

// TestSessionBackpressure drives a session queue into overflow: rejected
// chunks come back 429 with Retry-After, retrying the same bytes loses
// nothing, and the exported paco_session_backpressure_total matches the
// 429s the clients saw.
//
// The shard worker drains under the shard lock, so a lone client can
// never observe a partially-full queue — it just waits on the mutex and
// finds the queue empty. Concurrent posters are what backpressure exists
// for: every accepted chunk (100 events against a cap of 8 — legal only
// because an empty queue accepts any single chunk) leaves the queue over
// its high-water mark, so any poster that beats the worker to the lock
// is rejected. The chunks are cycle-marker events, which commute, so the
// posters' interleaving still forms one valid stream.
func TestSessionBackpressure(t *testing.T) {
	_, ts := testServer(t, Config{JobWorkers: 1, QueueSize: 4, CacheBytes: 1 << 20,
		SessionQueueEvents: 8})

	const posters, rounds, chunkEvents = 8, 150, 100
	chunk := func() []byte {
		var buf bytes.Buffer
		for i := 0; i < chunkEvents; i++ {
			fmt.Fprintf(&buf, "{\"kind\":\"cycle\",\"cycle\":%d}\n", 64*(i+1))
		}
		return buf.Bytes()
	}()

	opened := openSession(t, ts, sessionSpecJSON)
	var rejected atomic.Int64
	errs := make(chan error, posters)
	for p := 0; p < posters; p++ {
		go func() {
			errs <- func() error {
				for r := 0; r < rounds; {
					resp, err := http.Post(ts.URL+"/v1/sessions/"+opened.ID+"/events",
						"application/x-ndjson", bytes.NewReader(chunk))
					if err != nil {
						return err
					}
					retryAfter := resp.Header.Get("Retry-After")
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					switch resp.StatusCode {
					case http.StatusAccepted:
						r++
					case http.StatusTooManyRequests:
						if retryAfter == "" {
							return fmt.Errorf("429 without Retry-After header")
						}
						rejected.Add(1) // retry the identical chunk
					default:
						return fmt.Errorf("ingest → %d", resp.StatusCode)
					}
				}
				return nil
			}()
		}()
	}
	for p := 0; p < posters; p++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if rejected.Load() == 0 {
		t.Fatal("no backpressure observed across all concurrent posts")
	}

	// Conservation: every acknowledged chunk applies exactly once —
	// rejected chunks were retried, none double-count.
	const total = posters * rounds * chunkEvents
	deadline := time.Now().Add(30 * time.Second)
	for {
		sc, _ := getScores(t, ts, opened.ID)
		if sc.Queued == 0 && sc.Events == uint64(total) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue never drained to %d events: %+v", total, sc)
		}
		time.Sleep(time.Millisecond)
	}

	body := scrape(t, ts.URL)
	want := fmt.Sprintf("paco_session_backpressure_total %d", rejected.Load())
	if !strings.Contains(body, want) {
		t.Errorf("counter does not match observed 429s: want %q:\n%s",
			want, grepMetrics(body, "paco_session_backpressure_total"))
	}
	t.Logf("%d accepted chunks, %d backpressure rejections", posters*rounds, rejected.Load())
}

// TestSessionLiveSSE subscribes to /live, streams events, closes the
// session, and checks the SSE stream ends with a terminal "final"
// snapshot matching everything ingested.
func TestSessionLiveSSE(t *testing.T) {
	_, ts := testServer(t, Config{JobWorkers: 1, QueueSize: 4, CacheBytes: 1 << 20})
	evs := genSessionEvents(9, 400)

	opened := openSession(t, ts, sessionSpecJSON)
	resp, err := http.Get(ts.URL + "/v1/sessions/" + opened.ID + "/live")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("live Content-Type = %q", ct)
	}
	br := bufio.NewReader(resp.Body)

	// The stream primes with the current (empty) snapshot.
	name, sc := readSSEScores(t, br)
	if name != "scores" || sc.Events != 0 {
		t.Fatalf("priming event = %s %+v", name, sc)
	}

	if status, _, _ := postChunk(t, ts, opened.ID, "application/x-ndjson", ndjsonBytes(t, evs)); status != http.StatusAccepted {
		t.Fatalf("ingest → %d", status)
	}
	if _, status := closeSession(t, ts, opened.ID); status != http.StatusOK {
		t.Fatalf("close → %d", status)
	}

	// Read to the terminal event: intermediate "scores" frames may or may
	// not appear (latest-wins), but the stream must end with "final"
	// carrying every ingested event, then EOF.
	var final session.Scores
	for {
		name, sc = readSSEScores(t, br)
		if name == "final" {
			final = sc
			break
		}
		if name != "scores" {
			t.Fatalf("unexpected SSE event %q", name)
		}
	}
	if !final.Final || final.Events != uint64(len(evs)) || final.Inflight != 0 {
		t.Fatalf("final snapshot = %+v, want Final with %d events", final, len(evs))
	}
	if _, err := br.ReadByte(); err != io.EOF {
		t.Fatalf("stream did not end after final event: %v", err)
	}

	// Subscribing to a closed session is a 410 (the table remembers the
	// close).
	resp2, err := http.Get(ts.URL + "/v1/sessions/" + opened.ID + "/live")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusGone {
		t.Fatalf("live on closed session → %d, want 410", resp2.StatusCode)
	}
}

// TestSessionLiveEvictionFinal covers the other way a session ends: the
// idle sweeper, not a DELETE. A live SSE subscriber must still receive
// the terminal "final" event (no dropped terminal), and afterwards every
// route answers the deterministic 410 status table with reason
// "evicted" — the DELETE-vs-sweeper race pinned over HTTP.
func TestSessionLiveEvictionFinal(t *testing.T) {
	_, ts := testServer(t, Config{JobWorkers: 1, QueueSize: 4, CacheBytes: 1 << 20,
		SessionTTL: 150 * time.Millisecond, SessionSweep: 10 * time.Millisecond})
	evs := genSessionEvents(21, 300)

	opened := openSession(t, ts, sessionSpecJSON)
	if status, _, _ := postChunk(t, ts, opened.ID, "application/x-ndjson", ndjsonBytes(t, evs)); status != http.StatusAccepted {
		t.Fatalf("ingest → %d", status)
	}

	// Subscribe and go quiet: reading /live is not activity, so the
	// sweeper evicts ~one TTL after the ingest above.
	resp, err := http.Get(ts.URL + "/v1/sessions/" + opened.ID + "/live")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	var final session.Scores
	for {
		name, sc := readSSEScores(t, br)
		if name == "final" {
			final = sc
			break
		}
		if name != "scores" {
			t.Fatalf("unexpected SSE event %q", name)
		}
	}
	if !final.Final || final.Events != uint64(len(evs)) {
		t.Fatalf("eviction final snapshot = %+v, want Final with %d events", final, len(evs))
	}
	if _, err := br.ReadByte(); err != io.EOF {
		t.Fatalf("stream did not end after eviction final: %v", err)
	}

	// The status table, while the tombstone is fresh: a client whose
	// DELETE lost the race to the sweeper gets 410 naming "evicted" on
	// every route, never a flaky 404.
	if body, status := closeSession(t, ts, opened.ID); status != http.StatusGone || !bytes.Contains(body, []byte("evicted")) {
		t.Fatalf("DELETE after eviction → %d: %s, want 410 naming reason evicted", status, body)
	}
	if _, status := getScores(t, ts, opened.ID); status != http.StatusGone {
		t.Fatalf("scores after eviction → %d, want 410", status)
	}
	if status, _, _ := postChunk(t, ts, opened.ID, "application/x-ndjson", []byte("{}\n")); status != http.StatusGone {
		t.Fatalf("ingest after eviction → %d, want 410", status)
	}
	respLive, err := http.Get(ts.URL + "/v1/sessions/" + opened.ID + "/live")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, respLive.Body)
	respLive.Body.Close()
	if respLive.StatusCode != http.StatusGone {
		t.Fatalf("live after eviction → %d, want 410", respLive.StatusCode)
	}
}

// TestSessionLiveClientDisconnect: a client that walks away from /live
// mid-stream must not leak the handler goroutine or its subscription,
// and the session stays fully usable and closeable.
func TestSessionLiveClientDisconnect(t *testing.T) {
	_, ts := testServer(t, Config{JobWorkers: 1, QueueSize: 4, CacheBytes: 1 << 20})

	// Baseline after the server (and its fixed goroutines) is up: the
	// leak check isolates what the SSE subscription itself spawned.
	opened := openSession(t, ts, sessionSpecJSON)
	baseline := runtime.NumGoroutine()
	ctx, cancelReq := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/sessions/"+opened.ID+"/live", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(resp.Body)
	if name, _ := readSSEScores(t, br); name != "scores" {
		t.Fatalf("priming event = %q", name)
	}
	cancelReq() // the client vanishes mid-stream
	resp.Body.Close()

	// The handler goroutine (and the table's subscriber slot) must drain.
	deadline := time.Now().Add(15 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak after SSE disconnect: %d alive, baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The session did not notice: it still ingests and closes cleanly.
	if status, _, _ := postChunk(t, ts, opened.ID, "application/x-ndjson", []byte(`{"kind":"cycle","cycle":64}`+"\n")); status != http.StatusAccepted {
		t.Fatalf("ingest after subscriber disconnect → %d", status)
	}
	if _, status := closeSession(t, ts, opened.ID); status != http.StatusOK {
		t.Fatalf("close after subscriber disconnect → %d", status)
	}
}

// readSSEScores reads one "event:"/"data:" frame and decodes its Scores.
func readSSEScores(t *testing.T, br *bufio.Reader) (string, session.Scores) {
	t.Helper()
	var name string
	var sc session.Scores
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reading SSE stream: %v", err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &sc); err != nil {
				t.Fatalf("decoding SSE data %q: %v", line, err)
			}
		case line == "":
			if name != "" {
				return name, sc
			}
		}
	}
}

// TestSessionNDJSONPartialLines: a chunk boundary mid-line is stitched
// back together by the server, not an error — the text-format analogue
// of the binary decoder's resumability.
func TestSessionNDJSONPartialLines(t *testing.T) {
	_, ts := testServer(t, Config{JobWorkers: 1, QueueSize: 4, CacheBytes: 1 << 20})
	evs := genSessionEvents(13, 300)
	doc := ndjsonBytes(t, evs)

	opened := openSession(t, ts, sessionSpecJSON)
	total := 0
	for off := 0; off < len(doc); off += 71 { // deliberately mid-line
		end := off + 71
		if end > len(doc) {
			end = len(doc)
		}
		status, _, ack := postChunk(t, ts, opened.ID, "application/x-ndjson", doc[off:end])
		if status != http.StatusAccepted {
			t.Fatalf("chunk at %d → %d", off, status)
		}
		total += ack.Accepted
	}
	if total != len(evs) {
		t.Fatalf("chunked NDJSON completed %d events, want %d", total, len(evs))
	}
}

// TestSessionCloseShutdown: sessions left open at server Close are shut
// down and counted; the table rejects opens afterwards.
func TestSessionCloseShutdown(t *testing.T) {
	s, err := New(Config{JobWorkers: 1, QueueSize: 4, CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	if _, _, _, err := s.sessions.Open(session.Spec{}, "t-shutdown"); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if s.sessions.Len() != 0 {
		t.Fatalf("%d sessions survived server Close", s.sessions.Len())
	}
	if _, _, _, err := s.sessions.Open(session.Spec{}, "t-late"); err == nil {
		t.Fatal("open accepted after server Close")
	}
}

// TestSessionConcurrentHTTP exercises the surface under parallel load:
// many goroutines each run an open → stream → verify → close lifecycle
// against a small table, with backpressure retries, and the table is
// empty afterwards. Meaningful under -race.
func TestSessionConcurrentHTTP(t *testing.T) {
	s, ts := testServer(t, Config{JobWorkers: 1, QueueSize: 4, CacheBytes: 1 << 20,
		SessionShards: 4, SessionMaxOpen: 64, SessionQueueEvents: 256})

	const clients = 8
	var rejected atomic.Int64
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			errs <- func() error {
				evs := genSessionEvents(int64(100+c), 1500)
				raw := traceBytes(t, evs)
				resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(sessionSpecJSON))
				if err != nil {
					return err
				}
				var opened sessionOpened
				err = json.NewDecoder(resp.Body).Decode(&opened)
				resp.Body.Close()
				if err != nil {
					return err
				}
				for off := 0; off < len(raw); {
					end := off + 997
					if end > len(raw) {
						end = len(raw)
					}
					resp, err := http.Post(ts.URL+"/v1/sessions/"+opened.ID+"/events",
						"application/octet-stream", bytes.NewReader(raw[off:end]))
					if err != nil {
						return err
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					switch resp.StatusCode {
					case http.StatusAccepted:
						off = end
					case http.StatusTooManyRequests:
						rejected.Add(1)
						time.Sleep(time.Millisecond)
					default:
						return fmt.Errorf("client %d: chunk at %d → %d", c, off, resp.StatusCode)
					}
				}
				req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+opened.ID, nil)
				resp, err = http.DefaultClient.Do(req)
				if err != nil {
					return err
				}
				var final session.Scores
				err = json.NewDecoder(resp.Body).Decode(&final)
				resp.Body.Close()
				if err != nil {
					return err
				}
				if final.Events != uint64(len(evs)) {
					return fmt.Errorf("client %d: final reports %d events, want %d", c, final.Events, len(evs))
				}
				return nil
			}()
		}(c)
	}
	for c := 0; c < clients; c++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
	if s.sessions.Len() != 0 {
		t.Errorf("%d sessions left open after all clients closed", s.sessions.Len())
	}
	t.Logf("concurrent lifecycle complete; %d backpressure rejections retried", rejected.Load())
}
