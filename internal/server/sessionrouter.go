package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"paco/internal/obs"
	"paco/internal/server/expiry"
	"paco/internal/session"
)

// Session router — federated /v1/sessions (DESIGN.md §6b).
//
// With Config.RouteSessions the coordinator stops serving sessions from
// its local table and instead places each one on a federation worker:
// the session ID is rendezvous-hashed over the live workers that
// advertise a session endpoint in their lease polls, and every request
// for that ID proxies to the owner. The coordinator keeps an
// append-only journal of the chunks the owner acknowledged (202 only —
// a rejected chunk was not consumed and is not part of the stream), so
// when the owner dies mid-session the router re-opens the session's
// spec on the surviving worker the hash ranks next and replays the
// journal into it. Estimator sessions are deterministic functions of
// their event stream, so the failed-over session's scores — including
// the final DELETE document — are byte-identical to an uninterrupted
// run's.
//
// Failure model:
//
//   - Worker death: the first proxied request to hit a transport error
//     marks the worker dead (excluded from routing for one liveness
//     window — by then a genuinely dead worker has also stopped
//     heartbeating) and fails the session over before retrying the
//     request, so the client sees a served request, not an error.
//   - Worker-side eviction (its own idle TTL): treated as eviction of
//     the routed session — tombstoned, 410 "evicted". Deployments set
//     the worker-side TTL above the coordinator's so the coordinator's
//     sweep owns eviction (its remote DELETE pushes the terminal
//     "final" frame to attached live streams).
//   - No live session workers: open and failover answer 503.
//
// Concurrency: one mutex per routed session serializes its proxied
// operations (so a failover cannot interleave with an ingest's journal
// append), and the router map has its own lock. Lock order is entry
// before map; the map lock is never held across network calls.

// routerMaxFailovers bounds how many consecutive owner deaths one
// request will chase before giving up with 503.
const routerMaxFailovers = 4

// routedSession is the coordinator-side record of one live routed
// session. All fields after the identity block are guarded by mu.
type routedSession struct {
	id       string // coordinator-issued ID the client holds
	key      string // spec content address
	specJSON []byte // normalized spec, re-POSTed verbatim on failover

	mu       sync.Mutex
	worker   string // owning worker name
	base     string // owner's session endpoint base URL
	remoteID string // ID the owner's table issued
	gen      int    // bumped per failover; guards duplicate failovers
	journal  *session.Journal
}

// routedTomb remembers a closed routed session for one TTL, mapping
// straggler requests to a deterministic 410 — the same contract the
// local table's tombstones provide.
type routedTomb struct {
	reason string
	at     time.Time
}

type sessionRouter struct {
	fed    *federation
	obs    *serverObs
	client *http.Client // control-plane calls; SSE streams use per-request contexts
	clock  *expiry.Tracker
	sweep  time.Duration

	mu       sync.Mutex
	sessions map[string]*routedSession
	tombs    map[string]routedTomb
	dead     map[string]time.Time // worker -> when marked dead

	seq          atomic.Uint64
	journalBytes atomic.Int64

	stop chan struct{}
	wg   sync.WaitGroup
}

func newSessionRouter(fed *federation, o *serverObs, ttl, sweep time.Duration) *sessionRouter {
	if ttl <= 0 {
		ttl = 5 * time.Minute // the session table's default idle TTL
	}
	if sweep <= 0 {
		sweep = ttl / 4
	}
	return &sessionRouter{
		fed:      fed,
		obs:      o,
		client:   &http.Client{},
		clock:    expiry.New(ttl),
		sweep:    sweep,
		sessions: make(map[string]*routedSession),
		tombs:    make(map[string]routedTomb),
		dead:     make(map[string]time.Time),
		stop:     make(chan struct{}),
	}
}

func (rt *sessionRouter) start() {
	rt.wg.Add(1)
	go rt.sweeper()
}

func (rt *sessionRouter) shutdown() {
	close(rt.stop)
	rt.wg.Wait()
}

// open reports routed sessions currently live (backs the
// paco_session_routed_open gauge).
func (rt *sessionRouter) open() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return len(rt.sessions)
}

// routeScore is the rendezvous weight of (session, worker): each
// session ranks every worker by an independent hash, and the highest
// score owns it. Workers joining or leaving only move the sessions that
// hashed onto them — no global reshuffle.
func routeScore(sessionID, worker string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(sessionID))
	h.Write([]byte{0})
	h.Write([]byte(worker))
	return h.Sum64()
}

// candidates returns the live session endpoints ranked for id: the
// federation's live advertisers, minus workers recently marked dead by
// a failed proxy call, ordered by descending rendezvous score. The
// first entry is the session's owner; the rest are its failover order.
func (rt *sessionRouter) candidates(id string) []sessionEndpoint {
	eps := rt.fed.sessionEndpoints()
	now := time.Now()
	rt.mu.Lock()
	live := eps[:0]
	for _, ep := range eps {
		if at, ok := rt.dead[ep.name]; ok {
			if now.Sub(at) <= rt.fed.liveness {
				continue
			}
			// Still advertising one liveness window after the failure:
			// the worker is heartbeating again, so trust it.
			delete(rt.dead, ep.name)
		}
		live = append(live, ep)
	}
	rt.mu.Unlock()
	sort.Slice(live, func(i, j int) bool {
		si, sj := routeScore(id, live[i].name), routeScore(id, live[j].name)
		if si != sj {
			return si > sj
		}
		return live[i].name < live[j].name
	})
	return live
}

func (rt *sessionRouter) markDead(worker string) {
	rt.mu.Lock()
	rt.dead[worker] = time.Now()
	rt.mu.Unlock()
	rt.obs.log.Warn("session worker marked dead", "worker", worker)
}

// missError maps an unrouted ID to the deterministic verdict the local
// table gives: *session.GoneError for a recently closed session,
// session.ErrNotFound for an ID the router never issued.
func (rt *sessionRouter) missError(id string) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if tb, ok := rt.tombs[id]; ok {
		return &session.GoneError{Reason: tb.reason}
	}
	return session.ErrNotFound
}

// lookup resolves id to its live entry, or writes the 404/410 miss
// response and returns nil.
func (rt *sessionRouter) lookup(w http.ResponseWriter, id string) *routedSession {
	rt.mu.Lock()
	e := rt.sessions[id]
	rt.mu.Unlock()
	if e == nil {
		err := rt.missError(id)
		errorJSON(w, sessionMissStatus(err), "%v", err)
		return nil
	}
	return e
}

// stillRoutedLocked re-checks, after e.mu was acquired, that e was not
// dropped (evicted or closed) while the caller waited for the lock.
func (rt *sessionRouter) stillRoutedLocked(e *routedSession) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.sessions[e.id] == e
}

// dropLocked removes e from the routing table and leaves a tombstone.
// Caller holds e.mu.
func (rt *sessionRouter) dropLocked(e *routedSession, reason string) {
	rt.mu.Lock()
	if rt.sessions[e.id] == e {
		delete(rt.sessions, e.id)
		rt.tombs[e.id] = routedTomb{reason: reason, at: time.Now()}
	}
	rt.mu.Unlock()
	rt.clock.Forget(e.id)
	rt.journalBytes.Add(-int64(e.journal.Bytes()))
	rt.obs.routedClosed.With(reason).Inc()
}

// handleOpen is the routed POST /v1/sessions: parse and normalize the
// spec exactly as the local handler does, mint a coordinator ID, pick
// the owner by rendezvous hash, and open the session there.
func (rt *sessionRouter) handleOpen(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		errorJSON(w, status, "reading body: %v", err)
		return
	}
	var spec session.Spec
	if len(bytes.TrimSpace(body)) > 0 {
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			errorJSON(w, http.StatusBadRequest, "parsing session spec: %v", err)
			return
		}
	}
	norm, err := spec.Normalized()
	if err != nil {
		errorJSON(w, http.StatusBadRequest, "%v", err)
		return
	}
	key, err := norm.Key()
	if err != nil {
		errorJSON(w, http.StatusBadRequest, "%v", err)
		return
	}
	specJSON, err := json.Marshal(norm)
	if err != nil {
		errorJSON(w, http.StatusInternalServerError, "%v", err)
		return
	}
	trace := r.Header.Get(obs.TraceHeader)
	if trace == "" {
		trace = obs.NewTraceID()
	}
	id := fmt.Sprintf("s-%s-%06d", key[:12], rt.seq.Add(1))

	e := &routedSession{id: id, key: key, specJSON: specJSON, journal: session.NewJournal()}
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := rt.placeLocked(e); err != nil {
		errorJSON(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	rt.mu.Lock()
	rt.sessions[id] = e
	rt.mu.Unlock()
	rt.clock.Touch(id, time.Now())
	rt.obs.routedOpened.Inc()
	rt.obs.log.Info("session routed", "session", id, "worker", e.worker, "key", short(key), "trace", trace)
	w.Header().Set(obs.TraceHeader, trace)
	writeJSON(w, http.StatusCreated, sessionOpened{ID: id, Key: key, Spec: norm, Worker: e.worker})
}

// placeLocked opens e's spec on the best live candidate, walking the
// rendezvous ranking past workers that fail. Caller holds e.mu. On
// return e.worker/base/remoteID name the owner.
func (rt *sessionRouter) placeLocked(e *routedSession) error {
	cands := rt.candidates(e.id)
	if len(cands) == 0 {
		return errors.New("server: no live session workers (start workers with -sessions-addr)")
	}
	var lastErr error
	for _, cand := range cands {
		remoteID, err := rt.openOn(cand, e.specJSON)
		if err != nil {
			lastErr = err
			if isTransportError(err) {
				rt.markDead(cand.name)
			}
			continue
		}
		e.worker, e.base, e.remoteID = cand.name, cand.url, remoteID
		return nil
	}
	return fmt.Errorf("server: no session worker accepted the session: %w", lastErr)
}

// transportError wraps a connection-level failure (as opposed to an
// HTTP response) so placement and forwarding can tell a dead worker
// from a worker that answered with an error status.
type transportError struct{ err error }

func (t *transportError) Error() string { return t.err.Error() }
func (t *transportError) Unwrap() error { return t.err }

func isTransportError(err error) bool {
	var te *transportError
	return errors.As(err, &te)
}

// openOn opens a session with the given spec on one worker and returns
// the ID that worker's table issued.
func (rt *sessionRouter) openOn(ep sessionEndpoint, specJSON []byte) (string, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ep.url+"/v1/sessions", bytes.NewReader(specJSON))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		return "", &transportError{err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return "", fmt.Errorf("worker %s: open: %s: %s", ep.name, resp.Status, bytes.TrimSpace(msg))
	}
	var opened sessionOpened
	if err := json.NewDecoder(resp.Body).Decode(&opened); err != nil {
		return "", fmt.Errorf("worker %s: decoding open response: %w", ep.name, err)
	}
	return opened.ID, nil
}

// failoverLocked moves e off its (dead) owner: mark the owner dead,
// re-open the spec on the next live candidate, and replay the journal
// so the new session holds exactly the event stream the old owner had
// acknowledged. Caller holds e.mu; gen is bumped so a concurrent
// observer (the live-stream proxy) can tell its snapshot went stale.
func (rt *sessionRouter) failoverLocked(e *routedSession) error {
	dead := e.worker
	rt.markDead(dead)
	cands := rt.candidates(e.id)
	var lastErr error
	for _, cand := range cands {
		remoteID, err := rt.openOn(cand, e.specJSON)
		if err != nil {
			lastErr = err
			if isTransportError(err) {
				rt.markDead(cand.name)
			}
			continue
		}
		if err := rt.replayJournal(cand, remoteID, e.journal); err != nil {
			lastErr = err
			if isTransportError(err) {
				rt.markDead(cand.name)
			}
			continue
		}
		e.worker, e.base, e.remoteID = cand.name, cand.url, remoteID
		e.gen++
		rt.obs.failovers.Inc()
		rt.obs.failoverReplayed.Add(uint64(e.journal.Len()))
		rt.obs.log.Warn("session failed over",
			"session", e.id, "from", dead, "to", cand.name,
			"chunks", e.journal.Len(), "bytes", e.journal.Bytes(), "gen", e.gen)
		return nil
	}
	if lastErr == nil {
		lastErr = errors.New("no live session workers")
	}
	return fmt.Errorf("server: session %s failover: %w", e.id, lastErr)
}

// replayJournal streams a journal's chunks into a freshly opened
// session, honoring the worker's backpressure (bounded 429 retries per
// chunk, paced by its Retry-After hint).
func (rt *sessionRouter) replayJournal(ep sessionEndpoint, remoteID string, j *session.Journal) error {
	contentType := "application/x-ndjson"
	if j.Format() == session.FormatBinary {
		contentType = "application/octet-stream"
	}
	for _, chunk := range j.Chunks() {
		for attempt := 0; ; attempt++ {
			status, retryAfter, err := rt.post(ep.url+"/v1/sessions/"+remoteID+"/events", contentType, chunk)
			if err != nil {
				return &transportError{err: err}
			}
			if status == http.StatusAccepted {
				break
			}
			if status == http.StatusTooManyRequests && attempt < 100 {
				d := time.Second
				if s, err := strconv.Atoi(retryAfter); err == nil && s > 0 {
					d = time.Duration(s) * time.Second
				}
				time.Sleep(min(d, time.Second))
				continue
			}
			return fmt.Errorf("worker %s: replay chunk rejected: HTTP %d", ep.name, status)
		}
	}
	return nil
}

// post sends one control-plane POST and fully consumes the response,
// returning its status and Retry-After hint.
func (rt *sessionRouter) post(url, contentType string, body []byte) (int, string, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := rt.client.Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, resp.Header.Get("Retry-After"), nil
}

// forwardLocked proxies one request to e's owner, failing the session
// over (and retrying the request on the new owner) when the owner is
// unreachable. Caller holds e.mu. The returned response body is fully
// read into the returned byte slice and closed.
func (rt *sessionRouter) forwardLocked(e *routedSession, method, suffix, contentType string, body []byte) (*http.Response, []byte, error) {
	for attempt := 0; attempt <= routerMaxFailovers; attempt++ {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method,
			e.base+"/v1/sessions/"+e.remoteID+suffix, rd)
		if err != nil {
			cancel()
			return nil, nil, err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			cancel()
			if ferr := rt.failoverLocked(e); ferr != nil {
				return nil, nil, ferr
			}
			continue
		}
		respBody, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		resp.Body.Close()
		cancel()
		if err != nil {
			if ferr := rt.failoverLocked(e); ferr != nil {
				return nil, nil, ferr
			}
			continue
		}
		return resp, respBody, nil
	}
	return nil, nil, fmt.Errorf("server: session %s: owner kept dying (%d failovers)", e.id, routerMaxFailovers)
}

// relay writes an upstream response verbatim — status, error/content
// headers, and body bytes — so routed responses (including the final
// scores document clients byte-compare against offline replay) are
// identical to what the owning worker produced.
func relay(w http.ResponseWriter, resp *http.Response, body []byte) {
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(resp.StatusCode)
	w.Write(body)
}

// upstreamGone reports a 404/410 from the owning worker: the worker's
// table no longer knows the session (its own idle TTL fired, or a
// direct client deleted it out from under the router).
func upstreamGone(status int) bool {
	return status == http.StatusNotFound || status == http.StatusGone
}

// handleEvents is the routed chunk ingest: forward to the owner, and
// journal the chunk iff the owner acknowledged it (202). A 429 is
// relayed without journaling — the chunk was not consumed, and the
// client's retry of the identical bytes lands here again.
func (rt *sessionRouter) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSessionChunk))
	if err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		errorJSON(w, status, "reading events: %v", err)
		return
	}
	e := rt.lookup(w, id)
	if e == nil {
		return
	}
	format := sessionFormat(r)
	contentType := r.Header.Get("Content-Type")
	if contentType == "" {
		contentType = "application/x-ndjson"
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if !rt.stillRoutedLocked(e) {
		err := rt.missError(id)
		errorJSON(w, sessionMissStatus(err), "%v", err)
		return
	}
	resp, respBody, err := rt.forwardLocked(e, http.MethodPost, "/events", contentType, body)
	if err != nil {
		errorJSON(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	if upstreamGone(resp.StatusCode) {
		rt.dropLocked(e, session.CloseEvicted)
		err := rt.missError(id)
		errorJSON(w, sessionMissStatus(err), "%v", err)
		return
	}
	if resp.StatusCode == http.StatusAccepted {
		if err := e.journal.Append(format, body); err != nil {
			// Unreachable in practice: the owner accepted the chunk, so
			// the formats agreed there. Surface rather than diverge.
			errorJSON(w, http.StatusConflict, "%v", err)
			return
		}
		rt.journalBytes.Add(int64(len(body)))
		rt.clock.Touch(id, time.Now())
		rt.obs.routedChunks.Inc()
	}
	relay(w, resp, respBody)
}

// handleScores proxies the snapshot read (an activity signal, like the
// local handler's).
func (rt *sessionRouter) handleScores(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e := rt.lookup(w, id)
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if !rt.stillRoutedLocked(e) {
		err := rt.missError(id)
		errorJSON(w, sessionMissStatus(err), "%v", err)
		return
	}
	resp, respBody, err := rt.forwardLocked(e, http.MethodGet, "/scores", "", nil)
	if err != nil {
		errorJSON(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	if upstreamGone(resp.StatusCode) {
		rt.dropLocked(e, session.CloseEvicted)
		err := rt.missError(id)
		errorJSON(w, sessionMissStatus(err), "%v", err)
		return
	}
	if resp.StatusCode == http.StatusOK {
		rt.clock.Touch(id, time.Now())
	}
	relay(w, resp, respBody)
}

// handleClose proxies the DELETE. The final-scores document is relayed
// byte-for-byte from the owner — and because failover replays the
// acknowledged stream, those bytes match an uninterrupted run even if
// the session changed workers mid-stream.
func (rt *sessionRouter) handleClose(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e := rt.lookup(w, id)
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if !rt.stillRoutedLocked(e) {
		err := rt.missError(id)
		errorJSON(w, sessionMissStatus(err), "%v", err)
		return
	}
	resp, respBody, err := rt.forwardLocked(e, http.MethodDelete, "", "", nil)
	if err != nil {
		errorJSON(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	if upstreamGone(resp.StatusCode) {
		rt.dropLocked(e, session.CloseEvicted)
		err := rt.missError(id)
		errorJSON(w, sessionMissStatus(err), "%v", err)
		return
	}
	if resp.StatusCode == http.StatusOK {
		rt.dropLocked(e, session.CloseClient)
		rt.obs.log.Info("session closed", "session", id, "worker", e.worker, "reason", session.CloseClient)
	}
	relay(w, resp, respBody)
}

// handleLive proxies the SSE score stream. The proxy subscribes to the
// owner's /live and forwards frames; when the owner dies mid-stream it
// fails the session over (unless another request already did — the gen
// check) and resubscribes on the new owner, so the client's stream
// survives the death and still ends with the terminal "final" frame.
func (rt *sessionRouter) handleLive(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e := rt.lookup(w, id)
	if e == nil {
		return
	}
	send, ok := sseStart(w)
	if !ok {
		return
	}
	for {
		e.mu.Lock()
		if !rt.stillRoutedLocked(e) {
			e.mu.Unlock()
			return
		}
		base, remoteID, gen := e.base, e.remoteID, e.gen
		e.mu.Unlock()

		final, err := rt.proxyStream(r.Context(), send, base, remoteID)
		if final || r.Context().Err() != nil {
			return
		}
		// The upstream stream broke without a terminal frame: the owner
		// died (err != nil) or closed the stream early. Fail over if no
		// one else has, then resubscribe on the current owner.
		e.mu.Lock()
		if !rt.stillRoutedLocked(e) {
			e.mu.Unlock()
			return
		}
		if e.gen == gen {
			if ferr := rt.failoverLocked(e); ferr != nil {
				e.mu.Unlock()
				rt.obs.log.Warn("live stream lost its session", "session", id, "error", errors.Join(err, ferr))
				return
			}
		}
		e.mu.Unlock()
	}
}

// proxyStream forwards one upstream /live subscription frame-by-frame.
// It returns final=true when the terminal "final" frame was forwarded
// (the stream is complete) and an error when the upstream connection
// failed before that.
func (rt *sessionRouter) proxyStream(ctx context.Context, send func(name string, data []byte), base, remoteID string) (final bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/sessions/"+remoteID+"/live", nil)
	if err != nil {
		return false, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 512))
		return false, fmt.Errorf("upstream live: HTTP %d", resp.StatusCode)
	}
	var name string
	var data []byte
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), maxSessionChunk)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "" && name != "":
			send(name, data)
			if name == "final" {
				return true, nil
			}
			name, data = "", nil
		}
	}
	return false, sc.Err()
}

// sweeper evicts idle routed sessions on the coordinator's TTL, exactly
// as the local table's sweep does: candidacy then claim, so an entry
// touched mid-sweep survives. Eviction DELETEs the remote session
// (best-effort — pushing the "final" frame to any attached live
// streams) and tombstones the ID. Tombstones age out after one TTL.
func (rt *sessionRouter) sweeper() {
	defer rt.wg.Done()
	ticker := time.NewTicker(rt.sweep)
	defer ticker.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-ticker.C:
			rt.sweepOnce(time.Now())
		}
	}
}

func (rt *sessionRouter) sweepOnce(now time.Time) {
	for _, id := range rt.clock.Candidates(now) {
		rt.mu.Lock()
		e := rt.sessions[id]
		rt.mu.Unlock()
		if e == nil {
			continue
		}
		e.mu.Lock()
		if !rt.clock.ExpireIf(id, now) {
			e.mu.Unlock()
			continue // touched between candidacy and claim: it lives
		}
		rt.deleteUpstream(e)
		rt.dropLocked(e, session.CloseEvicted)
		rt.obs.log.Info("routed session evicted", "session", id, "worker", e.worker)
		e.mu.Unlock()
	}
	rt.mu.Lock()
	ttl := rt.clock.TTL()
	for id, tb := range rt.tombs {
		if now.Sub(tb.at) >= ttl {
			delete(rt.tombs, id)
		}
	}
	rt.mu.Unlock()
}

// deleteUpstream best-effort DELETEs e's remote session; eviction
// proceeds regardless of the outcome (a dead owner's table is gone with
// it, a live owner pushes the "final" frame to attached live streams).
func (rt *sessionRouter) deleteUpstream(e *routedSession) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		e.base+"/v1/sessions/"+e.remoteID, nil)
	if err != nil {
		return
	}
	if resp, err := rt.client.Do(req); err == nil {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 64<<20))
		resp.Body.Close()
	}
}
