package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"paco/internal/obs"
	"paco/internal/session"
)

// The /v1/sessions surface: live estimator sessions over event streams.
// A client opens a session from a spec (content-addressed like job
// specs), streams branch events into it in chunks — NDJSON lines or raw
// internal/trace binary frames, whichever the first chunk used — and
// reads rolling scores by polling /scores or subscribing to /live (SSE).
// DELETE closes the session and returns its final scores, rendered with
// the same encoder as every other endpoint so they are byte-comparable
// to `paco-trace replay -scores` output for the same events.
//
// Error mapping: unknown session 404, recently closed session 410 with
// the close reason (so a DELETE racing the idle sweeper sees a
// deterministic "gone: evicted" instead of a flaky not-found), format
// mix-up 409, full queue 429 with Retry-After (the chunk was not
// consumed — retry the identical bytes), table full or shutting down
// 503, everything else a client error 400.
//
// With Config.RouteSessions the whole surface is served by the session
// router instead (see sessionrouter.go): same contract, but the session
// lives on a federation worker and survives that worker's death.

// maxSessionChunk bounds one ingest chunk's wire size (4 MiB ≈ 190k
// binary records). The per-session queue bound is separate and governs
// backpressure; this is just the HTTP-layer sanity cap that also bounds
// how far past the queue's high-water mark a single chunk can land.
const maxSessionChunk = 4 << 20

// sessionOpened is the POST /v1/sessions response. Worker names the
// owning federation worker when the session was routed (empty — and
// omitted — for sessions served by the local table).
type sessionOpened struct {
	ID     string       `json:"id"`
	Key    string       `json:"key"`
	Spec   session.Spec `json:"spec"`
	Worker string       `json:"worker,omitempty"`
}

// sessionIngested is the POST /v1/sessions/{id}/events response:
// how many events this chunk completed and the queue depth after.
type sessionIngested struct {
	Accepted int `json:"accepted"`
	Queued   int `json:"queued"`
}

// handleSessionOpen is POST /v1/sessions: spec in (the zero spec selects
// one default PaCo estimator), session ID and content key out.
func (s *Server) handleSessionOpen(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		errorJSON(w, status, "reading body: %v", err)
		return
	}
	var spec session.Spec
	if len(bytes.TrimSpace(body)) > 0 {
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			errorJSON(w, http.StatusBadRequest, "parsing session spec: %v", err)
			return
		}
	}
	trace := r.Header.Get(obs.TraceHeader)
	if trace == "" {
		trace = obs.NewTraceID()
	}
	id, key, norm, err := s.sessions.Open(spec, trace)
	if err != nil {
		if errors.Is(err, session.ErrTableFull) || errors.Is(err, session.ErrShutdown) {
			errorJSON(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		errorJSON(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set(obs.TraceHeader, trace)
	writeJSON(w, http.StatusCreated, sessionOpened{ID: id, Key: key, Spec: norm})
}

// sessionFormat picks the ingest encoding from the request Content-Type:
// binary trace frames announce themselves as application/octet-stream,
// everything else streams as NDJSON. The session locks onto whichever
// format its first chunk used.
func sessionFormat(r *http.Request) session.Format {
	if strings.Contains(r.Header.Get("Content-Type"), "octet-stream") {
		return session.FormatBinary
	}
	return session.FormatNDJSON
}

// handleSessionEvents is POST /v1/sessions/{id}/events: chunked ingest.
// 202 acknowledges the chunk (events decoded and queued — they are never
// dropped after this); 429 + Retry-After rejects it whole, with decoder
// state rolled back so retrying the identical bytes is lossless.
func (s *Server) handleSessionEvents(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSessionChunk))
	if err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		errorJSON(w, status, "reading events: %v", err)
		return
	}
	accepted, queued, err := s.sessions.Ingest(r.PathValue("id"), sessionFormat(r), body)
	if err != nil {
		var bp *session.BackpressureError
		var fe *session.FormatError
		switch {
		case isSessionMiss(err):
			errorJSON(w, sessionMissStatus(err), "%v", err)
		case errors.As(err, &bp):
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(bp.RetryAfter)))
			errorJSON(w, http.StatusTooManyRequests, "%v", err)
		case errors.As(err, &fe):
			errorJSON(w, http.StatusConflict, "%v", err)
		default:
			// Decode errors and latched stream errors: the stream is bad,
			// but the session stays readable and closeable.
			errorJSON(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, sessionIngested{Accepted: accepted, Queued: queued})
}

// retryAfterSeconds renders a backoff hint as the integer seconds the
// Retry-After header requires, rounding up so a sub-second hint never
// becomes "retry immediately".
func retryAfterSeconds(d time.Duration) int {
	return int(math.Ceil(d.Seconds()))
}

// isSessionMiss reports whether err is a session-lookup miss, and
// sessionMissStatus distinguishes its two deterministic verdicts: 404
// for an ID the table never issued, 410 (with the close reason in the
// body) for a session that existed and has since closed — the verdict a
// DELETE racing the idle sweeper must see.
func isSessionMiss(err error) bool {
	var gone *session.GoneError
	return errors.Is(err, session.ErrNotFound) || errors.As(err, &gone)
}

func sessionMissStatus(err error) int {
	var gone *session.GoneError
	if errors.As(err, &gone) {
		return http.StatusGone
	}
	return http.StatusNotFound
}

// handleSessionScores is GET /v1/sessions/{id}/scores: a point-in-time
// snapshot (and an activity signal to the idle sweeper).
func (s *Server) handleSessionScores(w http.ResponseWriter, r *http.Request) {
	sc, err := s.sessions.Scores(r.PathValue("id"))
	if err != nil {
		errorJSON(w, sessionMissStatus(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, sc)
}

// handleSessionLive is GET /v1/sessions/{id}/live: a Server-Sent Events
// stream of score snapshots. The stream opens with the current snapshot,
// emits a "scores" event after each shard-worker drain (latest-wins — a
// slow reader skips intermediate states), and ends with a terminal
// "final" event when the session closes or is evicted.
func (s *Server) handleSessionLive(w http.ResponseWriter, r *http.Request) {
	ch, cancel, err := s.sessions.Subscribe(r.PathValue("id"))
	if err != nil {
		errorJSON(w, sessionMissStatus(err), "%v", err)
		return
	}
	defer cancel()
	send, ok := sseStart(w)
	if !ok {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case sc, open := <-ch:
			if !open {
				return
			}
			data, err := json.Marshal(sc)
			if err != nil {
				return
			}
			name := "scores"
			if sc.Final {
				name = "final"
			}
			send(name, data)
			if sc.Final {
				return
			}
		}
	}
}

// handleSessionClose is DELETE /v1/sessions/{id}: drain the queue, squash
// in-flight branches, and return the final scores — the same document
// offline replay of the session's event stream produces.
func (s *Server) handleSessionClose(w http.ResponseWriter, r *http.Request) {
	final, err := s.sessions.Close(r.PathValue("id"), session.CloseClient)
	if err != nil {
		errorJSON(w, sessionMissStatus(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, final)
}
