package server

import (
	"fmt"
	"net/http"
	"time"

	"paco/internal/version"
)

// handleMetrics is GET /metrics: the server's operational counters in
// Prometheus text exposition format (stdlib only — the format is just
// lines of "name{labels} value"). Exported:
//
//   - queue depth/capacity and jobs in flight
//   - job outcomes (done/failed) and campaigns actually simulated
//   - content-addressed cache hits, misses, entries, bytes, budget
//   - simulated cycles and kcycles/sec from the internal/perf sampler
//   - federation state: pending/leased shards, retries, oldest lease
//     age, and per-worker liveness (a worker is live while it has
//     checked in within Config.WorkerLiveness)
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	info := version.Get()
	cs := s.cache.Stats()
	fs := s.fed.stats()
	cycles, wall, samples := s.sampler.Totals()

	type metric struct {
		name, help, typ string
		lines           []string
	}
	g := func(name, help string, v any) metric {
		return metric{name, help, "gauge", []string{fmt.Sprintf("%s %v", name, v)}}
	}
	workerLines := make([]string, 0, len(fs.Workers))
	for _, ws := range fs.Workers {
		workerLines = append(workerLines, fmt.Sprintf("paco_federation_worker_last_seen_seconds{worker=%q} %.3f",
			ws.Name, ws.LastSeenAge.Seconds()))
	}
	c := func(name, help string, v any) metric {
		return metric{name, help, "counter", []string{fmt.Sprintf("%s %v", name, v)}}
	}
	metrics := []metric{
		{"paco_build_info", "Build metadata of the running server.", "gauge",
			[]string{fmt.Sprintf("paco_build_info{version=%q,go=%q} 1", info.Version, info.GoVersion)}},
		g("paco_uptime_seconds", "Seconds since the server started.",
			fmt.Sprintf("%.3f", time.Since(s.started).Seconds())),
		g("paco_queue_depth", "Jobs waiting in the bounded queue.", len(s.queue)),
		g("paco_queue_capacity", "Capacity of the bounded queue.", s.cfg.QueueSize),
		g("paco_jobs_inflight", "Jobs executing right now.", s.running.Load()),
		{"paco_jobs_total", "Settled jobs by outcome.", "counter", []string{
			fmt.Sprintf("paco_jobs_total{status=\"done\"} %d", s.jobsDone.Load()),
			fmt.Sprintf("paco_jobs_total{status=\"failed\"} %d", s.jobsFailed.Load()),
		}},
		c("paco_simulations_total", "Campaigns actually simulated (cache misses that ran).", s.simsRun.Load()),
		c("paco_sim_cells_total", "Campaign cells simulated.", s.cellsRun.Load()),
		c("paco_cache_hits_total", "Content-addressed cache hits.", cs.Hits),
		c("paco_cache_misses_total", "Content-addressed cache misses.", cs.Misses),
		g("paco_cache_entries", "Entries resident in the cache.", cs.Entries),
		g("paco_cache_bytes", "Bytes resident in the cache.", cs.Bytes),
		g("paco_cache_budget_bytes", "Cache byte budget.", cs.Budget),
		c("paco_sim_cycles_total", "Simulated cycles across all executed jobs.", cycles),
		c("paco_sim_wall_seconds_total", "Wall seconds spent simulating.",
			fmt.Sprintf("%.3f", wall.Seconds())),
		c("paco_sim_samples_total", "Throughput observations recorded.", samples),
		g("paco_sim_kcycles_per_sec", "Cumulative simulated kcycles per wall second (internal/perf sampler).",
			fmt.Sprintf("%.3f", s.sampler.KCyclesPerSec())),
		g("paco_sim_kcycles_per_sec_last", "Most recent job's simulated kcycles per wall second.",
			fmt.Sprintf("%.3f", s.sampler.LastKCyclesPerSec())),
		g("paco_federation_shards_pending", "Shards queued for lease.", fs.ShardsPending),
		g("paco_federation_shards_leased", "Shards currently leased to workers.", fs.ShardsLeased),
		c("paco_federation_shards_completed_total", "Shards completed by the federation.", fs.ShardsCompleted),
		c("paco_federation_shard_retries_total", "Shard re-leases after lease expiry or worker-reported failure.", fs.Retries),
		g("paco_federation_lease_age_seconds_max", "Age of the oldest outstanding lease.",
			fmt.Sprintf("%.3f", fs.OldestLeaseAge.Seconds())),
		g("paco_federation_workers_live", "Workers that checked in within the liveness window.", fs.WorkersLive),
		{"paco_federation_worker_last_seen_seconds",
			"Seconds since each federation worker last checked in.", "gauge", workerLines},
	}
	for _, m := range metrics {
		if len(m.lines) == 0 {
			continue
		}
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.typ)
		for _, line := range m.lines {
			fmt.Fprintln(w, line)
		}
	}
}
