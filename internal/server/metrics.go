package server

import "net/http"

// handleMetrics is GET /metrics: every family registered in the obs
// registry — see newServerObs for the catalog — rendered in Prometheus
// text exposition format. The legacy hand-rolled families survive
// name-for-name (the golden-names test pins them); the registry adds
// per-cell simulation histograms, HTTP route timings, cache lookup
// outcomes, flight-recorder counters, and Go runtime gauges.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.obs.reg.WritePrometheus(w)
}
