package server

import (
	"net/http"
	"strconv"
	"time"

	"paco/internal/obs/tsdb"
)

// GET /v1/timeseries: the sampled history of every metric family — the
// query surface behind `paco-obs watch` and the /debug/dash sparklines.
//
// Query parameters:
//
//	family  exact metric family ("" = all; histogram quantile series
//	        are families too, e.g. paco_sim_cell_duration_seconds_p99)
//	labels  exact rendered label match, e.g. {route="/v1/jobs"}
//	since   RFC 3339 time; keeps only points at or after it
//	points  newest N points per series
//
// Counter (and histogram count) series return per-second rates between
// consecutive samples (type "rate"); gauges and quantiles return raw
// values. Every series carries min/max/avg/last/rate rollups over the
// returned window.

// TimeseriesReport is the body of GET /v1/timeseries.
type TimeseriesReport struct {
	// IntervalMS is the sampling period in milliseconds — consumers
	// poll no faster than this.
	IntervalMS int64 `json:"interval_ms"`
	// SeriesHeld and SeriesDropped report store occupancy against its
	// fixed budget; Samples counts sampling passes taken.
	SeriesHeld    int    `json:"series_held"`
	SeriesDropped uint64 `json:"series_dropped"`
	Samples       uint64 `json:"samples"`

	Series []tsdb.Series `json:"series"`
}

func (s *Server) handleTimeseries(w http.ResponseWriter, r *http.Request) {
	ts := s.obs.ts
	if ts == nil {
		writeJSON(w, http.StatusOK, TimeseriesReport{Series: []tsdb.Series{}})
		return
	}
	q := tsdb.Query{
		Family: r.URL.Query().Get("family"),
		Labels: r.URL.Query().Get("labels"),
	}
	if v := r.URL.Query().Get("since"); v != "" {
		t, err := time.Parse(time.RFC3339Nano, v)
		if err != nil {
			errorJSON(w, http.StatusBadRequest, "bad since %q (want RFC 3339): %v", v, err)
			return
		}
		q.Since = t
	}
	if v := r.URL.Query().Get("points"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			errorJSON(w, http.StatusBadRequest, "bad points %q", v)
			return
		}
		q.MaxPoints = n
	}
	series := ts.Query(q)
	if series == nil {
		series = []tsdb.Series{}
	}
	held, dropped, samples := ts.Stats()
	writeJSON(w, http.StatusOK, TimeseriesReport{
		IntervalMS:    ts.Interval().Milliseconds(),
		SeriesHeld:    held,
		SeriesDropped: dropped,
		Samples:       samples,
		Series:        series,
	})
}
