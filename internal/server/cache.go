package server

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
)

// Content addressing. Every simulation in this repository is
// deterministic given its spec (DESIGN.md), so a job's result is a pure
// function of its canonicalized spec: SHA-256 of the canonical bytes is
// the result's address, and two requests that describe the same work hash
// to the same address no matter how their JSON was spelled.

// Key computes the content address of the given spec parts: the SHA-256
// hex digest over the parts separated by NUL (so part boundaries are
// unambiguous).
func Key(parts ...[]byte) string {
	h := sha256.New()
	for i, p := range parts {
		if i > 0 {
			h.Write([]byte{0})
		}
		h.Write(p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// CanonicalJSON rewrites a JSON document into its canonical form: object
// keys sorted, insignificant whitespace removed, and numbers in a single
// normal form (integers in base 10 without exponent when exactly
// representable, shortest-round-trip floats otherwise). Two JSON
// documents that differ only in key order, whitespace, or number
// spelling canonicalize to identical bytes — the property the
// content-addressed cache's keys rest on.
func CanonicalJSON(raw []byte) ([]byte, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, fmt.Errorf("server: canonicalizing spec: %w", err)
	}
	// Reject trailing garbage after the document.
	if dec.More() {
		return nil, fmt.Errorf("server: canonicalizing spec: trailing data after JSON document")
	}
	return json.Marshal(canonicalValue(v))
}

// canonicalValue normalizes numbers in a decoded JSON tree; maps need no
// work because encoding/json marshals map keys in sorted order.
func canonicalValue(v any) any {
	switch x := v.(type) {
	case map[string]any:
		for k, e := range x {
			x[k] = canonicalValue(e)
		}
		return x
	case []any:
		for i, e := range x {
			x[i] = canonicalValue(e)
		}
		return x
	case json.Number:
		return canonicalNumber(x)
	default:
		return v
	}
}

// canonicalNumber maps numerically equal JSON spellings ("1e6",
// "1000000", "1000000.0") to one representation.
func canonicalNumber(n json.Number) json.RawMessage {
	s := string(n)
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return json.RawMessage(strconv.FormatInt(i, 10))
	}
	if u, err := strconv.ParseUint(s, 10, 64); err == nil {
		return json.RawMessage(strconv.FormatUint(u, 10))
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		// Not parseable as a number we can normalize; keep the original
		// spelling (still deterministic for equal inputs).
		return json.RawMessage(s)
	}
	// Integral floats format as integers across the whole int64 range so
	// "1e18" and "1000000000000000000" agree; spellings equal only beyond
	// float64 precision still hash apart, which is the best any
	// float64-based normalization can do.
	if f == math.Trunc(f) && f >= -(1<<63) && f < 1<<63 {
		return json.RawMessage(strconv.FormatInt(int64(f), 10))
	}
	return json.RawMessage(strconv.FormatFloat(f, 'g', -1, 64))
}

// Cache is the content-addressed result store: key (SHA-256 of the
// canonical spec) to result bytes, bounded by a byte budget with LRU
// eviction, optionally persisted to a directory so a restarted server
// keeps its hits. All methods are safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	budget  int64
	bytes   int64
	entries map[string]*list.Element
	lru     *list.List // front = most recently used
	dir     string

	hits, misses uint64
}

type cacheEntry struct {
	key  string
	data []byte
}

// CacheStats is a point-in-time view of the cache counters.
type CacheStats struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Entries int    `json:"entries"`
	Bytes   int64  `json:"bytes"`
	Budget  int64  `json:"budget"`
}

// NewCache builds a cache with the given byte budget (<= 0 selects 64
// MiB). When dir is nonempty the cache persists entries there — one file
// per key — and reloads them on construction, oldest first so the LRU
// order survives restarts; entries beyond the budget are evicted (and
// their files removed) during the reload.
func NewCache(budget int64, dir string) (*Cache, error) {
	if budget <= 0 {
		budget = 64 << 20
	}
	c := &Cache{
		budget:  budget,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
		dir:     dir,
	}
	if dir == "" {
		return c, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: cache dir: %w", err)
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("server: cache dir: %w", err)
	}
	type onDisk struct {
		key string
		mod int64
	}
	var files []onDisk
	for _, de := range names {
		if de.IsDir() || !validKey(de.Name()) {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		files = append(files, onDisk{key: de.Name(), mod: info.ModTime().UnixNano()})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mod < files[j].mod })
	for _, f := range files {
		path := filepath.Join(dir, f.key)
		data, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		if int64(len(data)) > budget {
			// Refused entries must not linger on disk or the directory
			// grows without bound across budget changes.
			_ = os.Remove(path)
			continue
		}
		c.put(f.key, data, false) // already on disk; don't rewrite
	}
	return c, nil
}

// validKey reports whether name looks like a SHA-256 hex digest —
// anything else in the persistence directory is ignored.
func validKey(name string) bool {
	if len(name) != 64 {
		return false
	}
	_, err := hex.DecodeString(name)
	return err == nil
}

// Get returns the stored bytes for key and records a hit or miss. The
// returned slice is shared; callers must not modify it.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).data, true
}

// Put stores data under key, evicting least-recently-used entries until
// the byte budget holds. An entry larger than the whole budget is not
// stored.
func (c *Cache) Put(key string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.put(key, data, true)
}

func (c *Cache) put(key string, data []byte, persist bool) {
	if int64(len(data)) > c.budget {
		return
	}
	if el, ok := c.entries[key]; ok {
		// Deterministic results mean equal keys carry equal bytes; just
		// refresh recency (and size, defensively).
		e := el.Value.(*cacheEntry)
		c.bytes += int64(len(data)) - int64(len(e.data))
		e.data = data
		c.lru.MoveToFront(el)
	} else {
		c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, data: data})
		c.bytes += int64(len(data))
	}
	if persist && c.dir != "" {
		// Best effort: a failed write only costs persistence, not
		// correctness.
		_ = os.WriteFile(filepath.Join(c.dir, key), data, 0o644)
	}
	for c.bytes > c.budget {
		oldest := c.lru.Back()
		if oldest == nil {
			break
		}
		e := oldest.Value.(*cacheEntry)
		c.lru.Remove(oldest)
		delete(c.entries, e.key)
		c.bytes -= int64(len(e.data))
		if c.dir != "" {
			_ = os.Remove(filepath.Join(c.dir, e.key))
		}
	}
}

// Stats returns the current counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:    c.hits,
		Misses:  c.misses,
		Entries: len(c.entries),
		Bytes:   c.bytes,
		Budget:  c.budget,
	}
}
