package server

import (
	"encoding/json"
	"sync"
	"time"

	"paco/internal/campaign"
)

// Job lifecycle: queued -> running -> done|failed. A job created from a
// cache hit is born done.
const (
	stateQueued  = "queued"
	stateRunning = "running"
	stateDone    = "done"
	stateFailed  = "failed"
)

// job is one submitted simulation campaign and its live state. The
// immutable identity fields are set at creation; everything under mu is
// mutated by the executing worker and read by the status, events, and
// metrics handlers.
type job struct {
	id    string
	key   string
	grid  campaign.Grid
	cells int
	// trace correlates the job's spans and logs across processes — set
	// at submission (client-supplied X-Paco-Trace or server-minted) and
	// propagated to federation workers in their shard leases.
	trace string
	// fromCache records how the job was answered at submission: "miss"
	// (simulated), "hit" (served from the content-addressed cache).
	fromCache string

	mu        sync.Mutex
	state     string
	created   time.Time
	started   time.Time
	finished  time.Time
	runner    *campaign.Runner // non-nil while running locally
	cellsDone int              // settled cells of a federated job (runner == nil)
	results   []campaign.Result
	summary   *campaign.Summary
	errMsg    string

	subs   map[chan sseEvent]struct{}
	doneCh chan struct{} // closed when the job reaches a terminal state
}

func newJob(id, key string, grid campaign.Grid, cells int, trace string) *job {
	return &job{
		id:        id,
		key:       key,
		grid:      grid,
		cells:     cells,
		trace:     trace,
		fromCache: "miss",
		state:     stateQueued,
		created:   time.Now().UTC(),
		subs:      make(map[chan sseEvent]struct{}),
		doneCh:    make(chan struct{}),
	}
}

// JobStatus is the wire representation of a job — the body of POST
// /v1/jobs responses and GET /v1/jobs/{id}.
type JobStatus struct {
	ID     string        `json:"id"`
	Key    string        `json:"key"`
	Trace  string        `json:"trace,omitempty"`
	Status string        `json:"status"`
	Cache  string        `json:"cache"`
	Spec   campaign.Grid `json:"spec"`

	// Cells reports campaign progress: Total is the grid size, the
	// remaining counts partition it. Done counts settled cells
	// (completed, failed, or skipped); Summary breaks a terminal job's
	// settled cells down by outcome.
	Cells struct {
		Total   int `json:"total"`
		Queued  int `json:"queued"`
		Running int `json:"running"`
		Done    int `json:"done"`
	} `json:"cells"`

	Created  string `json:"created"`
	Started  string `json:"started,omitempty"`
	Finished string `json:"finished,omitempty"`

	Summary *campaign.Summary `json:"summary,omitempty"`
	// Results is included once the job is done (withResults requests).
	Results []campaign.Result `json:"results,omitempty"`
	Error   string            `json:"error,omitempty"`
}

// status snapshots the job. withResults includes the full per-cell
// result slice (job fetches); status streams and listings omit it.
func (j *job) status(withResults bool) JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:      j.id,
		Key:     j.key,
		Trace:   j.trace,
		Status:  j.state,
		Cache:   j.fromCache,
		Spec:    j.grid,
		Created: j.created.Format(time.RFC3339Nano),
		Summary: j.summary,
		Error:   j.errMsg,
	}
	if !j.started.IsZero() {
		st.Started = j.started.Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		st.Finished = j.finished.Format(time.RFC3339Nano)
	}
	st.Cells.Total = j.cells
	switch {
	case j.state == stateQueued:
		st.Cells.Queued = j.cells
	case j.runner != nil:
		snap := j.runner.Snapshot()
		st.Cells.Queued = snap.Queued
		st.Cells.Running = snap.Running
		st.Cells.Done = snap.Done
	case j.state == stateRunning:
		// Federated job: cells settle shard by shard; unfinished shards
		// count as queued (the coordinator cannot see inside a worker).
		st.Cells.Done = j.cellsDone
		st.Cells.Queued = j.cells - j.cellsDone
	default:
		st.Cells.Done = j.cells
	}
	if withResults && j.state == stateDone {
		st.Results = j.results
	}
	return st
}

// terminal reports whether the job has settled.
func (j *job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state == stateDone || j.state == stateFailed
}

// start transitions queued -> running and installs the campaign runner
// whose Snapshot backs live cell counts; a nil runner marks a federated
// job, whose cell counts advance via shardProgress instead.
func (j *job) start(r *campaign.Runner) {
	j.mu.Lock()
	j.state = stateRunning
	j.started = time.Now().UTC()
	j.runner = r
	j.mu.Unlock()
	j.publish("running", j.status(false))
}

// shardProgress relays one completed federation shard to status polls
// and SSE subscribers.
func (j *job) shardProgress(cellsDone int, shardID string) {
	j.mu.Lock()
	j.cellsDone = cellsDone
	total := j.cells
	j.mu.Unlock()
	ev := struct {
		Done  int    `json:"done"`
		Total int    `json:"total"`
		Shard string `json:"shard"`
	}{Done: cellsDone, Total: total, Shard: shardID}
	j.publish("progress", ev)
}

// resultsIfDone returns the job's result slice once it completed.
func (j *job) resultsIfDone() ([]campaign.Result, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != stateDone {
		return nil, false
	}
	return j.results, true
}

// progress relays one campaign progress callback to SSE subscribers.
func (j *job) progress(done, total int, r *campaign.Result) {
	ev := struct {
		Done  int     `json:"done"`
		Total int     `json:"total"`
		Cell  string  `json:"cell"`
		IPC   float64 `json:"ipc,omitempty"`
		Error string  `json:"error,omitempty"`
	}{Done: done, Total: total, Cell: r.JobID, IPC: r.IPC, Error: r.Err}
	j.publish("progress", ev)
}

// complete transitions to done with the campaign's results.
func (j *job) complete(results []campaign.Result, summary campaign.Summary) {
	j.mu.Lock()
	j.state = stateDone
	j.finished = time.Now().UTC()
	j.runner = nil
	j.results = results
	j.summary = &summary
	j.mu.Unlock()
	close(j.doneCh)
}

// fail transitions to failed. summary, when non-nil, records how far
// the campaign got (completed vs failed vs skipped cells) so a failed
// job doesn't read as if every cell simulated.
func (j *job) fail(msg string, summary *campaign.Summary) {
	j.mu.Lock()
	j.state = stateFailed
	j.finished = time.Now().UTC()
	j.runner = nil
	j.errMsg = msg
	j.summary = summary
	j.mu.Unlock()
	close(j.doneCh)
}

// completeFromCache marks a freshly created job as answered by the
// content-addressed cache: born done, no simulation behind it.
func (j *job) completeFromCache(results []campaign.Result, summary campaign.Summary) {
	j.mu.Lock()
	j.fromCache = "hit"
	j.state = stateDone
	now := time.Now().UTC()
	j.started, j.finished = now, now
	j.results = results
	j.summary = &summary
	j.mu.Unlock()
	close(j.doneCh)
}

// sseEvent is one server-sent event: a name and a JSON-encoded payload.
type sseEvent struct {
	name string
	data []byte
}

// subscribe registers an SSE listener. The returned channel is buffered;
// slow listeners lose intermediate progress events but never the
// terminal state, which the events handler reads from doneCh + status.
func (j *job) subscribe() (<-chan sseEvent, func()) {
	ch := make(chan sseEvent, 64)
	j.mu.Lock()
	j.subs[ch] = struct{}{}
	j.mu.Unlock()
	cancel := func() {
		j.mu.Lock()
		delete(j.subs, ch)
		j.mu.Unlock()
	}
	return ch, cancel
}

// publish fans an event out to subscribers, dropping on full buffers so
// simulation workers never block on a stalled client.
func (j *job) publish(name string, payload any) {
	data, err := json.Marshal(payload)
	if err != nil {
		return
	}
	ev := sseEvent{name: name, data: data}
	j.mu.Lock()
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
	j.mu.Unlock()
}
