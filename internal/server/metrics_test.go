package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"paco/internal/obs"
)

// legacyMetricNames is the golden list of every family the pre-registry
// /metrics handler exported. The obs migration must preserve each one
// name-for-name; a rename here is a monitoring break for anyone with
// dashboards or alerts on the old names.
var legacyMetricNames = []string{
	"paco_build_info",
	"paco_uptime_seconds",
	"paco_queue_depth",
	"paco_queue_capacity",
	"paco_jobs_inflight",
	"paco_jobs_total",
	"paco_simulations_total",
	"paco_sim_cells_total",
	"paco_cache_hits_total",
	"paco_cache_misses_total",
	"paco_cache_entries",
	"paco_cache_bytes",
	"paco_cache_budget_bytes",
	"paco_sim_cycles_total",
	"paco_sim_wall_seconds_total",
	"paco_sim_samples_total",
	"paco_sim_kcycles_per_sec",
	"paco_sim_kcycles_per_sec_last",
	"paco_federation_shards_pending",
	"paco_federation_shards_leased",
	"paco_federation_shards_completed_total",
	"paco_federation_shard_retries_total",
	"paco_federation_lease_age_seconds_max",
	"paco_federation_workers_live",
	"paco_federation_worker_last_seen_seconds",
}

// newMetricNames are the families the obs layer introduced.
var newMetricNames = []string{
	"paco_sim_cell_duration_seconds",
	"paco_sim_cell_queue_wait_seconds",
	"paco_http_requests_total",
	"paco_http_request_duration_seconds",
	"paco_cache_lookups_total",
	"paco_session_open",
	"paco_session_queued_events",
	"paco_session_opened_total",
	"paco_session_closed_total",
	"paco_session_open_rejected_total",
	"paco_session_events_total",
	"paco_session_backpressure_total",
	"paco_session_ingest_duration_seconds",
	"paco_session_apply_batch_events",
	"paco_session_routed_open",
	"paco_session_routed_journal_bytes",
	"paco_session_routed_opened_total",
	"paco_session_routed_closed_total",
	"paco_session_routed_chunks_total",
	"paco_session_failover_total",
	"paco_session_failover_replayed_chunks_total",
	"paco_sim_job_kcycles_per_sec",
	"paco_flight_spans_recorded_total",
	"paco_flight_spans_active",
	"obs_spans_dropped_total",
	"paco_go_goroutines",
	"paco_go_memstats_heap_alloc_bytes",
	"paco_go_gc_pause_seconds_total",
	"paco_go_gc_cycles_total",
}

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain exposition", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestMetricsGoldenNames pins the exposition's family set: every legacy
// name survives the registry migration, and the new instrumentation
// families are present. HELP/TYPE render even for quiet families, so
// this holds on a freshly started server too.
func TestMetricsGoldenNames(t *testing.T) {
	_, ts := testServer(t, Config{JobWorkers: 1, QueueSize: 4, CacheBytes: 1 << 20})
	st, _ := postJob(t, ts, tinySpec)
	final := waitDone(t, ts, st.ID)

	body := scrape(t, ts.URL)
	for _, name := range append(append([]string{}, legacyMetricNames...), newMetricNames...) {
		if !strings.Contains(body, "# TYPE "+name+" ") {
			t.Errorf("family %s missing from /metrics", name)
		}
	}
	// The per-cell histograms must actually observe local runs: one
	// observation per campaign cell.
	want := fmt.Sprintf("paco_sim_cell_duration_seconds_count %d", final.Cells.Total)
	if !strings.Contains(body, want) {
		t.Errorf("cell duration histogram: want %q:\n%s",
			want, grepMetrics(body, "paco_sim_cell_duration_seconds"))
	}
}

// TestMetricsExpositionLint runs the strict exposition-format linter
// over a live scrape taken after real traffic, so labeled series,
// histograms, and callback families all get exercised.
func TestMetricsExpositionLint(t *testing.T) {
	_, ts := testServer(t, Config{JobWorkers: 1, QueueSize: 4, CacheBytes: 1 << 20})
	st, _ := postJob(t, ts, tinySpec)
	waitDone(t, ts, st.ID)

	body := scrape(t, ts.URL)
	if errs := obs.LintExposition(strings.NewReader(body)); len(errs) > 0 {
		for _, err := range errs {
			t.Errorf("lint: %v", err)
		}
	}
}

// TestJobTraceHeader checks trace minting and propagation at the API
// edge: a client-supplied X-Paco-Trace is adopted and echoed, and an
// absent one is replaced by a freshly minted ID, visible in both the
// response header and the job status document.
func TestJobTraceHeader(t *testing.T) {
	_, ts := testServer(t, Config{JobWorkers: 1, QueueSize: 4, CacheBytes: 1 << 20})

	req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs", strings.NewReader(tinySpec))
	req.Header.Set(obs.TraceHeader, "t-client-chosen")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(obs.TraceHeader); got != "t-client-chosen" {
		t.Errorf("%s echoed %q, want the client's trace ID", obs.TraceHeader, got)
	}
	if st.Trace != "t-client-chosen" {
		t.Errorf("JobStatus.Trace = %q, want the client's trace ID", st.Trace)
	}
	waitDone(t, ts, st.ID)

	// Without a client header the server mints one.
	st2, _ := postJob(t, ts, `{"benchmarks":["twolf"],"instructions":12000,"warmup":4000}`)
	if st2.Trace == "" {
		t.Error("server did not mint a trace ID for a headerless submit")
	}
	waitDone(t, ts, st2.ID)
}

// TestFlightEndpoint drives a job and reads back its span chain from
// /debug/flight: one job span plus one cell span per campaign cell,
// all under the job's trace, with nothing left active.
func TestFlightEndpoint(t *testing.T) {
	s, ts := testServer(t, Config{JobWorkers: 1, QueueSize: 4, CacheBytes: 1 << 20})
	st, _ := postJob(t, ts, tinySpec)
	final := waitDone(t, ts, st.ID)

	resp, err := http.Get(ts.URL + "/debug/flight?trace=" + st.Trace)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var report FlightReport
	if err := json.NewDecoder(resp.Body).Decode(&report); err != nil {
		t.Fatal(err)
	}
	var jobSpans, cellSpans int
	var jobID uint64
	for _, sp := range report.Spans {
		switch sp.Kind {
		case "job":
			jobSpans++
			jobID = sp.ID
		case "cell":
			cellSpans++
		}
	}
	if jobSpans != 1 || cellSpans != final.Cells.Total {
		t.Fatalf("trace %s: %d job + %d cell spans, want 1 + %d:\n%+v",
			st.Trace, jobSpans, cellSpans, final.Cells.Total, report.Spans)
	}
	for _, sp := range report.Spans {
		if sp.Kind == "cell" && sp.Parent != jobID {
			t.Errorf("cell span %s parented to %d, want job span %d", sp.Name, sp.Parent, jobID)
		}
	}
	if got := s.Flight().Active(); got != 0 {
		t.Errorf("%d spans still active after job completion", got)
	}

	// A bad limit is a client error, not a panic.
	bad, err := http.Get(ts.URL + "/debug/flight?limit=banana")
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("limit=banana → %d, want 400", bad.StatusCode)
	}
}

// TestPprofGating: /debug/pprof/ is absent by default and mounted only
// with EnablePprof.
func TestPprofGating(t *testing.T) {
	_, off := testServer(t, Config{JobWorkers: 1, QueueSize: 4, CacheBytes: 1 << 20})
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/debug/pprof/ without EnablePprof → %d, want 404", resp.StatusCode)
	}

	_, on := testServer(t, Config{JobWorkers: 1, QueueSize: 4, CacheBytes: 1 << 20, EnablePprof: true})
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ with EnablePprof → %d, want 200", resp.StatusCode)
	}
}

// grepMetrics returns the exposition lines mentioning name, for test
// failure messages.
func grepMetrics(body, name string) string {
	var out []string
	for _, line := range strings.Split(body, "\n") {
		if strings.Contains(line, name) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
