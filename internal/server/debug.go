package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"paco/internal/obs"
)

// Debug surface: GET /debug/flight dumps the span flight recorder,
// GET /debug/dash serves the live dashboard, GET/PUT /debug/loglevel
// dial the runtime log level, and (only when Config.EnablePprof is set)
// /debug/pprof/ mounts the standard runtime profiles on the server's
// own mux — never on http.DefaultServeMux, so an unconfigured server
// exposes nothing.

// FlightReport is the body of GET /debug/flight: recorder totals plus
// the retained spans matching the query filters, oldest first.
type FlightReport struct {
	// Capacity is how many finished spans the ring retains; Recorded
	// counts spans ever committed; Dropped counts spans the ring
	// overwrote (nonzero means the history below is incomplete); Active
	// counts spans started but not yet ended (nonzero on a quiescent
	// server means a leaked span).
	Capacity int    `json:"capacity"`
	Recorded uint64 `json:"recorded"`
	Dropped  uint64 `json:"dropped"`
	Active   int64  `json:"active"`

	Spans []obs.SpanRecord `json:"spans"`
}

// handleFlight is GET /debug/flight. Query parameters: kind and trace
// filter spans, since (RFC 3339) keeps only spans that ended strictly
// after it — pass the End of the last span seen to poll incrementally —
// and limit keeps only the most recent N matches.
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	f := obs.Filter{
		Kind:  r.URL.Query().Get("kind"),
		Trace: r.URL.Query().Get("trace"),
	}
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			errorJSON(w, http.StatusBadRequest, "bad limit %q", v)
			return
		}
		f.Limit = n
	}
	if v := r.URL.Query().Get("since"); v != "" {
		t, err := time.Parse(time.RFC3339Nano, v)
		if err != nil {
			errorJSON(w, http.StatusBadRequest, "bad since %q (want RFC 3339): %v", v, err)
			return
		}
		f.Since = t
	}
	rec := s.obs.rec
	report := FlightReport{
		Capacity: rec.Capacity(),
		Recorded: rec.Recorded(),
		Dropped:  rec.Dropped(),
		Active:   rec.Active(),
		Spans:    rec.Snapshot(f),
	}
	writeJSON(w, http.StatusOK, report)
}

// Flight exposes the server's span recorder (nil when Config.FlightSpans
// is negative) — servertest wires in-process federation workers to it so
// a whole cluster records into one flight recorder.
func (s *Server) Flight() *obs.Recorder { return s.obs.rec }

// handleLogLevel is GET/PUT /debug/loglevel: read or set the level the
// structured logger filters by. The PUT body is either a bare level
// name ("debug") or {"level": "debug"}. Only available when the server
// was built with Config.LogLevel — the handler cannot retune a handler
// it has no dial into.
func (s *Server) handleLogLevel(w http.ResponseWriter, r *http.Request) {
	lv := s.obs.level
	if lv == nil {
		errorJSON(w, http.StatusNotImplemented,
			"runtime log-level control is not wired (server built without Config.LogLevel)")
		return
	}
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, map[string]string{"level": lv.Level().String()})
	case http.MethodPut, http.MethodPost:
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<10))
		if err != nil {
			errorJSON(w, http.StatusBadRequest, "reading body: %v", err)
			return
		}
		name := string(body)
		var obj struct {
			Level string `json:"level"`
		}
		if json.Unmarshal(body, &obj) == nil && obj.Level != "" {
			name = obj.Level
		} else if unq, err := strconv.Unquote(name); err == nil {
			name = unq // a bare JSON string: "debug"
		}
		level, err := obs.ParseLevel(strings.TrimSpace(name))
		if err != nil {
			errorJSON(w, http.StatusBadRequest, "%v", err)
			return
		}
		prev := lv.Level()
		lv.Set(level)
		s.obs.log.Info("log level changed", "from", prev.String(), "to", level.String())
		writeJSON(w, http.StatusOK, map[string]string{"level": level.String()})
	default:
		errorJSON(w, http.StatusMethodNotAllowed, "use GET or PUT")
	}
}

// registerDebug mounts the debug routes on the server mux.
func (s *Server) registerDebug(mux *http.ServeMux) {
	mux.HandleFunc("GET /debug/flight", s.handleFlight)
	mux.HandleFunc("GET /debug/dash", s.handleDash)
	mux.HandleFunc("/debug/loglevel", s.handleLogLevel)
	if !s.cfg.EnablePprof {
		return
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
