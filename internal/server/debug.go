package server

import (
	"net/http"
	"net/http/pprof"
	"strconv"

	"paco/internal/obs"
)

// Debug surface: GET /debug/flight dumps the span flight recorder, and
// (only when Config.EnablePprof is set) /debug/pprof/ mounts the
// standard runtime profiles on the server's own mux — never on
// http.DefaultServeMux, so an unconfigured server exposes nothing.

// FlightReport is the body of GET /debug/flight: recorder totals plus
// the retained spans matching the query filters, oldest first.
type FlightReport struct {
	// Capacity is how many finished spans the ring retains; Recorded
	// counts spans ever committed; Active counts spans started but not
	// yet ended (nonzero on a quiescent server means a leaked span).
	Capacity int    `json:"capacity"`
	Recorded uint64 `json:"recorded"`
	Active   int64  `json:"active"`

	Spans []obs.SpanRecord `json:"spans"`
}

// handleFlight is GET /debug/flight. Query parameters: kind and trace
// filter spans, limit keeps only the most recent N matches.
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	f := obs.Filter{
		Kind:  r.URL.Query().Get("kind"),
		Trace: r.URL.Query().Get("trace"),
	}
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			errorJSON(w, http.StatusBadRequest, "bad limit %q", v)
			return
		}
		f.Limit = n
	}
	rec := s.obs.rec
	report := FlightReport{
		Capacity: rec.Capacity(),
		Recorded: rec.Recorded(),
		Active:   rec.Active(),
		Spans:    rec.Snapshot(f),
	}
	writeJSON(w, http.StatusOK, report)
}

// Flight exposes the server's span recorder (nil when Config.FlightSpans
// is negative) — servertest wires in-process federation workers to it so
// a whole cluster records into one flight recorder.
func (s *Server) Flight() *obs.Recorder { return s.obs.rec }

// registerDebug mounts the debug routes on the server mux.
func (s *Server) registerDebug(mux *http.ServeMux) {
	mux.HandleFunc("GET /debug/flight", s.handleFlight)
	if !s.cfg.EnablePprof {
		return
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
