package server

import "net/http"

// GET /debug/dash: the campaign observatory dashboard. One static,
// dependency-free HTML page — no frameworks, no CDN fetches, no build
// step — that polls GET /v1/timeseries and renders each series as an
// SVG sparkline with live min/avg/max/last rollups. Works from the
// same origin it is served from, so it needs nothing but the server
// itself being up.

func (s *Server) handleDash(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte(dashHTML))
}

const dashHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>paco observatory</title>
<style>
  :root { color-scheme: dark; }
  body { margin: 0; padding: 1rem 1.5rem; background: #10141a; color: #d8dee9;
         font: 13px/1.5 ui-monospace, SFMono-Regular, Menlo, Consolas, monospace; }
  h1 { font-size: 15px; margin: 0 0 .25rem; color: #88c0d0; font-weight: 600; }
  #status { color: #7b8494; margin-bottom: 1rem; }
  #status.err { color: #bf616a; }
  #filter { background: #1b2129; color: #d8dee9; border: 1px solid #2c3542;
            border-radius: 4px; padding: .25rem .5rem; width: 24rem; margin-bottom: 1rem; }
  #grid { display: grid; grid-template-columns: repeat(auto-fill, minmax(340px, 1fr)); gap: .75rem; }
  .card { background: #161c24; border: 1px solid #232c38; border-radius: 6px; padding: .6rem .75rem; }
  .card .name { color: #a3be8c; overflow-wrap: anywhere; }
  .card .labels { color: #7b8494; font-size: 11px; overflow-wrap: anywhere; }
  .card .stats { color: #7b8494; font-size: 11px; margin-top: .2rem; }
  .card .stats b { color: #ebcb8b; font-weight: 600; }
  svg { display: block; width: 100%; height: 48px; margin-top: .4rem; }
  polyline { fill: none; stroke: #88c0d0; stroke-width: 1.5; }
  .fill { fill: #88c0d022; stroke: none; }
</style>
</head>
<body>
<h1>paco observatory</h1>
<div id="status">connecting&hellip;</div>
<input id="filter" type="search" placeholder="filter families (substring)" autocomplete="off">
<div id="grid"></div>
<script>
"use strict";
const grid = document.getElementById("grid");
const status = document.getElementById("status");
const filter = document.getElementById("filter");
const cards = new Map(); // series key -> {card, line, fill, stats}

function fmt(v) {
  if (!isFinite(v)) return "-";
  const a = Math.abs(v);
  if (a >= 1e6) return (v / 1e6).toFixed(2) + "M";
  if (a >= 1e3) return (v / 1e3).toFixed(2) + "k";
  if (a >= 1 || a === 0) return v.toFixed(2);
  return v.toPrecision(3);
}

function sparkline(points) {
  const w = 320, h = 48, pad = 2;
  if (!points || points.length < 2) return { line: "", fill: "" };
  let min = Infinity, max = -Infinity;
  for (const p of points) { if (p.v < min) min = p.v; if (p.v > max) max = p.v; }
  const span = (max - min) || 1;
  const t0 = points[0].t, dt = (points[points.length - 1].t - t0) || 1;
  const pts = points.map(p => {
    const x = pad + (p.t - t0) / dt * (w - 2 * pad);
    const y = h - pad - (p.v - min) / span * (h - 2 * pad);
    return x.toFixed(1) + "," + y.toFixed(1);
  });
  const first = pts[0].split(",")[0], last = pts[pts.length - 1].split(",")[0];
  return { line: pts.join(" "),
           fill: first + "," + h + " " + pts.join(" ") + " " + last + "," + h };
}

function card(key, s) {
  let c = cards.get(key);
  if (!c) {
    const el = document.createElement("div");
    el.className = "card";
    el.innerHTML = '<div class="name"></div><div class="labels"></div>' +
      '<svg viewBox="0 0 320 48" preserveAspectRatio="none">' +
      '<polygon class="fill"></polygon><polyline></polyline></svg>' +
      '<div class="stats"></div>';
    el.querySelector(".name").textContent = s.family;
    el.querySelector(".labels").textContent = s.labels || "";
    c = { el, line: el.querySelector("polyline"), fill: el.querySelector("polygon"),
          stats: el.querySelector(".stats") };
    cards.set(key, c);
    grid.appendChild(el);
  }
  const sl = sparkline(s.points);
  c.line.setAttribute("points", sl.line);
  c.fill.setAttribute("points", sl.fill);
  c.stats.innerHTML = "last <b>" + fmt(s.last) + "</b> &middot; min " + fmt(s.min) +
    " &middot; avg " + fmt(s.avg) + " &middot; max " + fmt(s.max) +
    (s.type === "rate" ? " &middot; rate/s" : "");
  return c;
}

function applyFilter() {
  const q = filter.value.trim().toLowerCase();
  for (const [key, c] of cards)
    c.el.style.display = !q || key.toLowerCase().includes(q) ? "" : "none";
}
filter.addEventListener("input", applyFilter);

let interval = 1000;
async function poll() {
  try {
    const res = await fetch("/v1/timeseries?points=120");
    if (!res.ok) throw new Error("HTTP " + res.status);
    const body = await res.json();
    if (body.interval_ms > 0) interval = body.interval_ms;
    const seen = new Set();
    for (const s of body.series || []) {
      const key = s.family + (s.labels || "");
      seen.add(key);
      card(key, s);
    }
    for (const [key, c] of cards)
      if (!seen.has(key)) { c.el.remove(); cards.delete(key); }
    applyFilter();
    status.className = "";
    status.textContent = (body.series || []).length + " series &middot; sampling every " +
      (interval / 1000) + "s &middot; " + body.samples + " passes";
    status.innerHTML = status.textContent;
  } catch (err) {
    status.className = "err";
    status.textContent = "poll failed: " + err.message + " (retrying)";
  }
  setTimeout(poll, Math.max(interval, 500));
}
poll();
</script>
</body>
</html>
`
