package workload

// Calibration guard: each synthetic benchmark's conditional mispredict
// rate under the real tournament predictor must stay inside its Table 7
// band. This is the regression test that keeps workload tweaks honest —
// every experiment's shape depends on these rates.

import (
	"testing"

	"paco/internal/branch"
	"paco/internal/confidence"
)

// calibrationBand is the acceptable conditional mispredict range in
// percent. Centers are the paper's Table 7 values; widths reflect that we
// match bands, not points (DESIGN.md §2).
var calibrationBands = map[string][2]float64{
	"bzip2":    {8, 16},
	"crafty":   {4, 9},
	"gcc":      {1.5, 6.5},
	"gap":      {3.5, 8.5},
	"gzip":     {1.5, 6},
	"mcf":      {3, 10},
	"parser":   {3.5, 8},
	"perlbmk":  {0.05, 1.6},
	"twolf":    {11, 21},
	"vortex":   {0.2, 2},
	"vprPlace": {8, 19},
	"vprRoute": {8, 19},
}

// predictStream runs the tournament predictor over the goodpath stream
// directly (no timing model): the pure predictability of each model.
func predictStream(t *testing.T, name string, n int) (rate float64) {
	t.Helper()
	spec := MustBenchmark(name)
	w, err := NewWalker(spec)
	if err != nil {
		t.Fatal(err)
	}
	pred := branch.NewTournament(branch.DefaultTournamentConfig())
	ghr := branch.NewHistory(8)
	var seen, miss uint64
	warmup := n / 3
	for i := 0; i < n; i++ {
		ins := w.Next()
		if ins.Kind != KindBranch {
			continue
		}
		p := pred.Predict(ins.PC, ghr.Value())
		pred.Update(ins.PC, ghr.Value(), ins.Taken)
		ghr.Push(ins.Taken)
		if i < warmup {
			continue
		}
		seen++
		if p != ins.Taken {
			miss++
		}
	}
	if seen == 0 {
		t.Fatalf("%s produced no branches", name)
	}
	return 100 * float64(miss) / float64(seen)
}

// TestBenchmarkCalibration checks every model's in-order predictability
// band. Note: in-order prediction (no wrong-path history corruption) runs
// slightly below the full-machine rates, so the bands are generous at the
// bottom.
func TestBenchmarkCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep")
	}
	for _, name := range BenchmarkNames {
		name := name
		t.Run(name, func(t *testing.T) {
			band, ok := calibrationBands[name]
			if !ok {
				t.Fatalf("no band for %s", name)
			}
			rate := predictStream(t, name, 900_000)
			t.Logf("%s: %.2f%% (band %.1f-%.1f)", name, rate, band[0], band[1])
			if rate < band[0] || rate > band[1] {
				t.Errorf("%s mispredict rate %.2f%% outside band [%.1f, %.1f]",
					name, rate, band[0], band[1])
			}
		})
	}
}

// TestJRSStratificationPerBenchmark: every model must populate both ends
// of the MDC bucket spectrum — the stratification PaCo depends on.
func TestJRSStratificationPerBenchmark(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep")
	}
	for _, name := range BenchmarkNames {
		name := name
		t.Run(name, func(t *testing.T) {
			spec := MustBenchmark(name)
			w, err := NewWalker(spec)
			if err != nil {
				t.Fatal(err)
			}
			pred := branch.NewTournament(branch.DefaultTournamentConfig())
			jrs := confidence.New(confidence.DefaultConfig())
			ghr := branch.NewHistory(8)
			var buckets [confidence.NumBuckets]uint64
			for i := 0; i < 400_000; i++ {
				ins := w.Next()
				if ins.Kind != KindBranch {
					continue
				}
				p := pred.Predict(ins.PC, ghr.Value())
				mdc := jrs.MDC(ins.PC, ghr.Value(), p)
				buckets[mdc]++
				jrs.Update(ins.PC, ghr.Value(), p, p == ins.Taken)
				pred.Update(ins.PC, ghr.Value(), ins.Taken)
				ghr.Push(ins.Taken)
			}
			if buckets[confidence.MDCMax] == 0 {
				t.Error("top MDC bucket never populated")
			}
			var low uint64
			for _, b := range buckets[:3] {
				low += b
			}
			if low == 0 {
				t.Error("low MDC buckets never populated")
			}
		})
	}
}
