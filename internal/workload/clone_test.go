package workload

import (
	"fmt"
	"reflect"
	"testing"
)

// sharedRefs walks two values of the same type in lockstep and reports
// every reference (pointer, slice backing array, map, chan, func) the two
// share. It is deliberately generic: a field added to Spec tomorrow is
// checked without anyone remembering to update a hand-written copy test.
func sharedRefs(path string, a, b reflect.Value) []string {
	var out []string
	switch a.Kind() {
	case reflect.Pointer, reflect.Map, reflect.Chan, reflect.Func, reflect.UnsafePointer:
		if !a.IsNil() && !b.IsNil() && a.Pointer() == b.Pointer() {
			return []string{fmt.Sprintf("%s: shared %s", path, a.Kind())}
		}
		if a.Kind() == reflect.Pointer && !a.IsNil() && !b.IsNil() {
			out = append(out, sharedRefs(path, a.Elem(), b.Elem())...)
		}
	case reflect.Slice:
		if a.Len() > 0 && b.Len() > 0 && a.Pointer() == b.Pointer() {
			return []string{fmt.Sprintf("%s: shared slice backing array", path)}
		}
		n := a.Len()
		if b.Len() < n {
			n = b.Len()
		}
		for i := 0; i < n; i++ {
			out = append(out, sharedRefs(fmt.Sprintf("%s[%d]", path, i), a.Index(i), b.Index(i))...)
		}
	case reflect.Struct:
		for i := 0; i < a.NumField(); i++ {
			f := a.Type().Field(i)
			out = append(out, sharedRefs(path+"."+f.Name, a.Field(i), b.Field(i))...)
		}
	case reflect.Interface:
		if !a.IsNil() && !b.IsNil() {
			out = append(out, sharedRefs(path, a.Elem(), b.Elem())...)
		}
	}
	return out
}

// TestNewBenchmarkSharesNoMutableState is the deep-copy regression test:
// a Spec returned by NewBenchmark must share no mutable state with the
// registry entry, and two returned Specs must share none with each
// other — otherwise one caller's tweak corrupts every later run.
func TestNewBenchmarkSharesNoMutableState(t *testing.T) {
	for _, name := range BenchmarkNames {
		got := MustBenchmark(name)
		reg := specs[name]
		if shared := sharedRefs(name, reflect.ValueOf(got).Elem(), reflect.ValueOf(reg).Elem()); len(shared) > 0 {
			t.Errorf("NewBenchmark(%s) aliases the registry:\n%v", name, shared)
		}
		again := MustBenchmark(name)
		if shared := sharedRefs(name, reflect.ValueOf(got).Elem(), reflect.ValueOf(again).Elem()); len(shared) > 0 {
			t.Errorf("two NewBenchmark(%s) results alias each other:\n%v", name, shared)
		}
	}
}

// TestSharedRefsDetects proves the detector actually fires: a shallow
// copy of a multi-phase spec must be reported.
func TestSharedRefsDetects(t *testing.T) {
	orig := MustBenchmark("gcc")
	shallow := *orig // Phases backing array shared
	if shared := sharedRefs("gcc", reflect.ValueOf(orig).Elem(), reflect.ValueOf(&shallow).Elem()); len(shared) == 0 {
		t.Fatal("sharedRefs missed a shared Phases slice")
	}
}

func TestClone(t *testing.T) {
	orig := MustBenchmark("mcf")
	cp := orig.Clone()
	if shared := sharedRefs("mcf", reflect.ValueOf(orig).Elem(), reflect.ValueOf(cp).Elem()); len(shared) > 0 {
		t.Fatalf("Clone aliases its source:\n%v", shared)
	}
	cp.Phases[0].Instructions = 1
	cp.Seed = 999
	if orig.Phases[0].Instructions == 1 || orig.Seed == 999 {
		t.Fatal("mutating a clone reached the original")
	}
}
