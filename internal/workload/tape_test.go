package workload

import (
	"math/rand"
	"testing"
)

// TestCursorMatchesWalker pins the tape's core contract: every cursor
// reads exactly the instruction sequence a private walker would
// generate, regardless of how reads interleave across cursors.
func TestCursorMatchesWalker(t *testing.T) {
	spec := MustBenchmark("gzip")
	tape, err := NewTape(spec)
	if err != nil {
		t.Fatal(err)
	}
	const readers = 3
	curs := make([]*Cursor, readers)
	for i := range curs {
		curs[i] = tape.NewCursor()
	}
	ref, err := NewWalker(MustBenchmark("gzip"))
	if err != nil {
		t.Fatal(err)
	}
	const n = 50_000
	want := make([]Instruction, n)
	for i := range want {
		want[i] = ref.Next()
	}

	// Interleave reads with deterministic but uneven scheduling so the
	// cursors drift apart and wrap the ring multiple times.
	r := rand.New(rand.NewSource(7))
	read := make([]int, readers)
	for {
		allDone := true
		for i, cu := range curs {
			if read[i] >= n {
				continue
			}
			allDone = false
			burst := 1 + r.Intn(700)
			if left := n - read[i]; burst > left {
				burst = left
			}
			for j := 0; j < burst; j++ {
				got := cu.Next()
				if got != want[read[i]] {
					t.Fatalf("cursor %d position %d: got %+v want %+v", i, read[i], got, want[read[i]])
				}
				read[i]++
			}
		}
		if allDone {
			break
		}
	}
	if tape.Walker().Produced() != n {
		t.Fatalf("walker produced %d instructions for %d readers, want %d (shared generation)",
			tape.Walker().Produced(), readers, n)
	}
}

// TestTapeGrowth forces cursor drift past the initial ring capacity and
// checks the slow reader still sees the exact stream.
func TestTapeGrowth(t *testing.T) {
	spec := MustBenchmark("twolf")
	tape, err := NewTape(spec)
	if err != nil {
		t.Fatal(err)
	}
	fast := tape.NewCursor()
	slow := tape.NewCursor()
	ref, err := NewWalker(MustBenchmark("twolf"))
	if err != nil {
		t.Fatal(err)
	}
	const drift = 3 * tapeInitialSize
	for i := 0; i < drift; i++ {
		fast.Next()
	}
	if len(tape.buf) < drift {
		t.Fatalf("ring did not grow: len %d after %d drift", len(tape.buf), drift)
	}
	for i := 0; i < drift; i++ {
		got, want := slow.Next(), ref.Next()
		if got != want {
			t.Fatalf("slow cursor position %d: got %+v want %+v", i, got, want)
		}
	}
}

// TestTapeWrongPath checks a wrong-path generator built from a cursor's
// walker behaves identically to one built from a private walker: it
// reads only the immutable spec, so badpath streams stay per-core.
func TestTapeWrongPath(t *testing.T) {
	tape, err := NewTape(MustBenchmark("mcf"))
	if err != nil {
		t.Fatal(err)
	}
	cur := tape.NewCursor()
	wpTape := NewWrongPath(cur.Walker())
	ref, err := NewWalker(MustBenchmark("mcf"))
	if err != nil {
		t.Fatal(err)
	}
	wpRef := NewWrongPath(ref)
	wpTape.Redirect(0x4000_1234)
	wpRef.Redirect(0x4000_1234)
	for i := 0; i < 10_000; i++ {
		// Drain the taped goodpath in between; badpath generation must
		// not observe it.
		if i%3 == 0 {
			cur.Next()
		}
		got, want := wpTape.Next(), wpRef.Next()
		if got != want {
			t.Fatalf("badpath instruction %d: got %+v want %+v", i, got, want)
		}
	}
}

// TestNewCursorAfterConsumptionPanics pins the misuse guard.
func TestNewCursorAfterConsumptionPanics(t *testing.T) {
	tape, err := NewTape(MustBenchmark("gzip"))
	if err != nil {
		t.Fatal(err)
	}
	tape.NewCursor().Next()
	defer func() {
		if recover() == nil {
			t.Fatal("NewCursor after consumption began did not panic")
		}
	}()
	tape.NewCursor()
}

// TestCursorZeroAllocSteadyState pins the shared-stream read path to
// zero allocations once the ring has reached its steady-state size.
func TestCursorZeroAllocSteadyState(t *testing.T) {
	tape, err := NewTape(MustBenchmark("gzip"))
	if err != nil {
		t.Fatal(err)
	}
	a, b := tape.NewCursor(), tape.NewCursor()
	for i := 0; i < 100_000; i++ {
		a.Next()
		b.Next()
	}
	allocs := testing.AllocsPerRun(50_000, func() {
		a.Next()
		b.Next()
	})
	if allocs != 0 {
		t.Fatalf("cursor read path allocates %.2f times per step in steady state, want 0", allocs)
	}
}

// BenchmarkCursorNext measures the replay read path (compare
// BenchmarkWalkerNext: the replay should be several times cheaper than
// generation).
func BenchmarkCursorNext(b *testing.B) {
	tape, err := NewTape(MustBenchmark("gzip"))
	if err != nil {
		b.Fatal(err)
	}
	lead := tape.NewCursor()
	cur := tape.NewCursor()
	for i := 0; i < 1024; i++ {
		lead.Next()
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink Instruction
	for i := 0; i < b.N; i++ {
		if cur.Pos() == lead.Pos() {
			b.StopTimer()
			for j := 0; j < 1024; j++ {
				lead.Next()
			}
			b.StartTimer()
		}
		sink = cur.Next()
	}
	_ = sink
}
