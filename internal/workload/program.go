package workload

import (
	"fmt"

	"paco/internal/rng"
)

// Phase is one phase of a benchmark: a dynamic instruction budget and the
// branch population active during it. Each phase owns a distinct region of
// the synthetic program (distinct static branches), so phase changes shift
// the per-MDC-bucket mispredict rates the way the paper describes for gcc.
type Phase struct {
	// Instructions is the dynamic instruction count of the phase; phases
	// cycle when the schedule is exhausted.
	Instructions uint64
	// Mix is the conditional-branch population of the phase.
	Mix BranchMix
}

// Spec fully describes one synthetic benchmark.
type Spec struct {
	// Name labels the benchmark in tables (matches the paper's names).
	Name string
	// Seed makes the benchmark deterministic; runs with equal seeds
	// produce identical streams.
	Seed uint64

	// Phases is the phase schedule (at least one).
	Phases []Phase

	// BlocksPerPhase sets the approximate number of basic blocks in each
	// phase region (controls instruction footprint / L1I behaviour).
	BlocksPerPhase int
	// AvgBlockLen is the mean non-terminator instructions per block.
	AvgBlockLen int

	// LoadFrac and StoreFrac are the per-instruction probabilities of
	// loads and stores inside a block (rest are ALU).
	LoadFrac, StoreFrac float64
	// LongLatFrac is the fraction of ALU instructions with 3-cycle
	// latency (multiplies etc.).
	LongLatFrac float64
	// DepGeoP parameterizes dependence distances: distance = 1 +
	// Geometric(DepGeoP). Larger values mean shorter dependences (less
	// ILP).
	DepGeoP float64

	// WorkingSetKB is the data working set; load/store addresses fall in
	// it. RandomAddrFrac of memory instructions use uniform random
	// addresses (cache-hostile); the rest use small strides
	// (cache-friendly).
	WorkingSetKB   int
	RandomAddrFrac float64

	// JumpFrac is unused filler-jump weight (kept for spec stability);
	// CallFrac and IndirectFrac set the per-segment probabilities of call
	// segments (inside non-leaf functions) and indirect-dispatch
	// segments. ReturnFrac is implied by function structure.
	JumpFrac, CallFrac, ReturnFrac, IndirectFrac float64
	// IndirectTargets is how many distinct stubs each indirect dispatch
	// jumps among at random; BTB target mispredicts scale with it.
	IndirectTargets int

	// Storm parameters (gap-style clustered mispredicts); zero disables.
	StormEnter, StormExit, StormFlip float64
}

// Clone returns a deep copy of the spec: the returned value shares no
// mutable state with s, so callers may tweak it freely (the registry,
// the campaign engine, and the scenario compiler all rely on this).
// TestNewBenchmarkSharesNoMutableState walks the type with reflection so
// a future reference-typed field cannot silently alias.
func (s *Spec) Clone() *Spec {
	cp := *s
	cp.Phases = append([]Phase(nil), s.Phases...)
	return &cp
}

// Validate reports configuration errors.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workload: spec needs a name")
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("workload %s: at least one phase required", s.Name)
	}
	for i, ph := range s.Phases {
		if ph.Instructions == 0 {
			return fmt.Errorf("workload %s: phase %d has zero instructions", s.Name, i)
		}
		w := ph.Mix.weights()
		total := 0.0
		for _, x := range w {
			total += x
		}
		if total <= 0 {
			return fmt.Errorf("workload %s: phase %d has no branch classes", s.Name, i)
		}
	}
	if s.BlocksPerPhase <= 0 {
		return fmt.Errorf("workload %s: BlocksPerPhase must be positive", s.Name)
	}
	if s.AvgBlockLen <= 0 {
		return fmt.Errorf("workload %s: AvgBlockLen must be positive", s.Name)
	}
	if s.WorkingSetKB <= 0 {
		return fmt.Errorf("workload %s: WorkingSetKB must be positive", s.Name)
	}
	// Probability-valued knobs must be probabilities: out-of-range values
	// would not crash (the samplers clamp), they would silently build a
	// degenerate workload — and scenario overrides feed this field-by-field.
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"LoadFrac", s.LoadFrac}, {"StoreFrac", s.StoreFrac},
		{"LongLatFrac", s.LongLatFrac}, {"DepGeoP", s.DepGeoP},
		{"RandomAddrFrac", s.RandomAddrFrac}, {"JumpFrac", s.JumpFrac},
		{"CallFrac", s.CallFrac}, {"ReturnFrac", s.ReturnFrac},
		{"IndirectFrac", s.IndirectFrac}, {"StormEnter", s.StormEnter},
		{"StormExit", s.StormExit}, {"StormFlip", s.StormFlip},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("workload %s: %s=%g outside [0, 1]", s.Name, f.name, f.v)
		}
	}
	if s.IndirectTargets < 0 {
		return fmt.Errorf("workload %s: IndirectTargets must be non-negative, got %d", s.Name, s.IndirectTargets)
	}
	return nil
}

// kindFallthrough marks a block with no terminator instruction: execution
// flows directly into fallBlk (used to stitch structured segments).
const kindFallthrough Kind = 0xFF

// terminator kinds mirror Kind but carry CFG data.
type terminator struct {
	kind     Kind
	branch   *staticBranch // conditional only
	takenBlk int           // conditional taken target / jump / call target
	fallBlk  int           // conditional fall-through, call return site, fallthrough next
	indirect []int         // indirect targets
}

// memPattern drives one static memory instruction's address stream.
type memPattern struct {
	base   uint64
	stride uint64
	span   uint64 // wraps within [base, base+span)
	off    uint64
	random bool
}

func (m *memPattern) next(r *rng.RNG, wsMask uint64) uint64 {
	if m.random {
		return m.base + (r.Uint64() & wsMask)
	}
	a := m.base + m.off
	m.off += m.stride
	if m.off >= m.span {
		m.off = 0
	}
	return a
}

// staticInstr is one non-terminator instruction slot in a block.
type staticInstr struct {
	kind    Kind
	lat     uint64
	mem     *memPattern
	hasDep2 bool
}

// block is one basic block of the synthetic program.
type block struct {
	pc     uint64
	instrs []staticInstr
	term   terminator
}

const instrBytes = 4

// dataBase is where the data working set starts (disjoint from code).
const dataBase = 1 << 32

// program is the built code: one region of blocks per phase, each region a
// structured program — a driver loop that calls functions; functions are
// sequences of plain/loop/diamond/call/indirect segments ending in a
// return. This structure guarantees the walk keeps mixing over the whole
// region (a uniformly random digraph collapses into tiny deterministic
// orbits) and gives loop branches real loop semantics: consecutive
// executions with a trip-count exit, which is what the JRS miss distance
// counters key on.
type program struct {
	regions  [][]block
	entries  []int // driver entry block per region
	branches []*staticBranch
}

// builder assembles one region.
type builder struct {
	spec   *Spec
	mix    *BranchMix
	choice *rng.WeightedChoice // diamond-class sampler (loop excluded)
	r      *rng.RNG
	blocks []block
	prog   *program
	nextID *int
	ws     uint64
}

// build constructs the program for spec.
func build(spec *Spec, r *rng.RNG) *program {
	p := &program{}
	id := 0
	for phIdx := range spec.Phases {
		ph := &spec.Phases[phIdx]
		// Diamond branches sample from the non-loop classes.
		w := ph.Mix.weights()
		w[ClassLoop] = 0
		b := &builder{
			spec:   spec,
			mix:    &ph.Mix,
			choice: rng.NewWeightedChoice(w),
			r:      r,
			prog:   p,
			nextID: &id,
			ws:     uint64(spec.WorkingSetKB) * 1024,
		}
		entry := b.buildRegion(phIdx)
		p.regions = append(p.regions, b.blocks)
		p.entries = append(p.entries, entry)
	}
	return p
}

// segment kinds.
const (
	segPlain = iota
	segLoop
	segDiamond
	segCall
	segIndirect
)

// buildRegion lays out one phase region and returns its driver entry block.
func (b *builder) buildRegion(phIdx int) int {
	spec := b.spec
	funcCount := spec.BlocksPerPhase / 12
	if funcCount < 6 {
		funcCount = 6
	}
	leafCount := funcCount * 3 / 5
	entries := make([]int, funcCount)
	// Leaves first so call segments have callees.
	for f := 0; f < funcCount; f++ {
		entries[f] = b.buildFunction(f < leafCount, entries[:minInt(f, leafCount)])
	}
	// Driver: a long unrolled loop of calls covering every function, then
	// a jump back to the top.
	driverEntry := len(b.blocks)
	order := make([]int, 0, funcCount*2)
	order = append(order, entries...)
	for i := 0; i < funcCount; i++ {
		order = append(order, entries[b.r.Intn(funcCount)])
	}
	// Shuffle so call order differs between regions.
	for i := len(order) - 1; i > 0; i-- {
		j := b.r.Intn(i + 1)
		order[i], order[j] = order[j], order[i]
	}
	for _, callee := range order {
		idx := b.newBlock(2)
		b.blocks[idx].term = terminator{kind: KindCall, takenBlk: callee, fallBlk: idx + 1}
	}
	last := b.newBlock(1)
	b.blocks[last].term = terminator{kind: KindJump, takenBlk: driverEntry}
	b.assignPCs(phIdx)
	return driverEntry
}

// buildFunction appends one function's blocks and returns its entry index.
func (b *builder) buildFunction(leaf bool, callees []int) int {
	entry := len(b.blocks)
	segs := b.r.Range(3, 9)
	for s := 0; s < segs; s++ {
		kind := b.segmentKind(leaf || len(callees) == 0)
		switch kind {
		case segPlain:
			idx := b.newBlock(0)
			b.blocks[idx].term = terminator{kind: kindFallthrough, fallBlk: idx + 1}
		case segLoop:
			// Loop bodies span several blocks, as real loops do; a
			// single-block body would put dozens of in-flight instances
			// of the same backedge in the window at once, all reading
			// the same stale MDC entry.
			header := b.newBlock(1)
			for k := b.r.Range(1, 5); k > 0; k-- {
				idx := b.newBlock(0)
				b.blocks[idx].term = terminator{kind: kindFallthrough, fallBlk: idx + 1}
			}
			last := b.newBlock(0)
			sb := b.makeLoopBranch()
			b.blocks[header].term = terminator{kind: kindFallthrough, fallBlk: header + 1}
			b.blocks[last].term = terminator{kind: KindBranch, branch: sb, takenBlk: header, fallBlk: last + 1}
		case segDiamond:
			idx := b.newBlock(0)
			sb := b.makeDiamondBranch()
			t := b.newBlock(0)
			e := b.newBlock(0)
			b.blocks[idx].term = terminator{kind: KindBranch, branch: sb, takenBlk: t, fallBlk: e}
			b.blocks[t].term = terminator{kind: KindJump, takenBlk: e + 1}
			b.blocks[e].term = terminator{kind: kindFallthrough, fallBlk: e + 1}
		case segCall:
			idx := b.newBlock(0)
			callee := callees[b.r.Intn(len(callees))]
			b.blocks[idx].term = terminator{kind: KindCall, takenBlk: callee, fallBlk: idx + 1}
		case segIndirect:
			n := b.spec.IndirectTargets
			if n < 2 {
				n = 2
			}
			idx := b.newBlock(0)
			targets := make([]int, n)
			for k := 0; k < n; k++ {
				stub := b.newBlock(0)
				targets[k] = stub
				b.blocks[stub].term = terminator{kind: KindJump, takenBlk: idx + n + 1}
			}
			b.blocks[idx].term = terminator{kind: KindIndirect, indirect: targets}
		}
	}
	ret := b.newBlock(0)
	b.blocks[ret].term = terminator{kind: KindReturn}
	return entry
}

// segmentKind samples a segment type; leaves never contain calls.
func (b *builder) segmentKind(leaf bool) int {
	loopW := b.mix.Loop
	diamondW := b.mix.Biased + b.mix.Pattern + b.mix.Correlated + b.mix.Noisy + b.mix.Random
	callW := b.spec.CallFrac * 4
	if leaf {
		callW = 0
	}
	indW := b.spec.IndirectFrac * 4
	plainW := 0.25
	x := b.r.Float64() * (loopW + diamondW + callW + indW + plainW)
	switch {
	case x < loopW:
		return segLoop
	case x < loopW+diamondW:
		return segDiamond
	case x < loopW+diamondW+callW:
		return segCall
	case x < loopW+diamondW+callW+indW:
		return segIndirect
	default:
		return segPlain
	}
}

func (b *builder) makeLoopBranch() *staticBranch {
	lo, hi := b.mix.LoopTripMin, b.mix.LoopTripMax
	if lo <= 1 {
		lo = 4
	}
	if hi < lo {
		hi = lo
	}
	sb := &staticBranch{id: *b.nextID, gen: &loopGen{trip: b.r.Range(lo, hi)}, rng: b.r.Fork()}
	*b.nextID++
	b.prog.branches = append(b.prog.branches, sb)
	return sb
}

func (b *builder) makeDiamondBranch() *staticBranch {
	sb := b.mix.makeBranch(*b.nextID, b.choice, b.r)
	*b.nextID++
	b.prog.branches = append(b.prog.branches, sb)
	return sb
}

// newBlock appends a block with a sampled body length (plus extraLen) and
// returns its index. Terminator is filled by the caller.
func (b *builder) newBlock(extraLen int) int {
	spec := b.spec
	blen := 1 + b.r.Geometric(1.0/float64(spec.AvgBlockLen)) + extraLen
	if blen > 4*spec.AvgBlockLen {
		blen = 4 * spec.AvgBlockLen
	}
	blk := block{instrs: make([]staticInstr, blen)}
	for j := range blk.instrs {
		si := &blk.instrs[j]
		x := b.r.Float64()
		switch {
		case x < spec.LoadFrac:
			si.kind = KindLoad
			si.lat = 3 // L1 hit pipeline latency
			si.mem = b.makeMemPattern()
		case x < spec.LoadFrac+spec.StoreFrac:
			si.kind = KindStore
			si.lat = 1
			si.mem = b.makeMemPattern()
		default:
			si.kind = KindALU
			si.lat = 1
			if b.r.Bool(spec.LongLatFrac) {
				si.lat = 3
			}
		}
		si.hasDep2 = b.r.Bool(0.4)
	}
	b.blocks = append(b.blocks, blk)
	return len(b.blocks) - 1
}

func (b *builder) makeMemPattern() *memPattern {
	m := &memPattern{}
	m.random = b.r.Bool(b.spec.RandomAddrFrac)
	wsMask := nextPow2u(b.ws) - 1
	if m.random {
		m.base = dataBase
		m.span = wsMask + 1
		return m
	}
	m.base = dataBase + (b.r.Uint64() & wsMask &^ 63)
	m.stride = uint64(8 * (1 + b.r.Intn(8)))
	m.span = m.stride * uint64(16+b.r.Intn(240))
	return m
}

// assignPCs lays region blocks out contiguously in their own address
// window.
func (b *builder) assignPCs(phIdx int) {
	pc := uint64(0x1000_0000) + uint64(phIdx)<<24
	for i := range b.blocks {
		b.blocks[i].pc = pc
		n := len(b.blocks[i].instrs)
		if b.blocks[i].term.kind != kindFallthrough {
			n++ // terminator instruction
		}
		pc += uint64(n) * instrBytes
	}
}

func nextPow2u(v uint64) uint64 {
	p := uint64(1)
	for p < v {
		p <<= 1
	}
	return p
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
