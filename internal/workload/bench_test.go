package workload

import "testing"

// BenchmarkWalkerNext measures the per-instruction cost of goodpath stream
// generation.
func BenchmarkWalkerNext(b *testing.B) {
	spec, err := NewBenchmark("gzip")
	if err != nil {
		b.Fatal(err)
	}
	w, err := NewWalker(spec)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 50_000; i++ {
		w.Next() // reach steady state (call stack at depth, phases warm)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Next()
	}
}

// BenchmarkWrongPathNext measures badpath stream generation.
func BenchmarkWrongPathNext(b *testing.B) {
	spec, err := NewBenchmark("gzip")
	if err != nil {
		b.Fatal(err)
	}
	w, err := NewWalker(spec)
	if err != nil {
		b.Fatal(err)
	}
	wp := NewWrongPath(w)
	wp.Redirect(0x1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ins := wp.Next()
		if ins.Kind == KindBranch {
			wp.ResolveBranch(&ins, i%2 == 0)
		}
	}
}
