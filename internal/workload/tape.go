package workload

// Tape shares one walker's goodpath instruction stream among several
// consumers. The batched lockstep kernel (cpu.Batch) runs K simulated
// cores against one workload; generating the stream once and replaying
// it through per-core cursors removes the dominant per-cell cost of a
// configuration sweep (walker generation is ~30% of cycle time).
//
// The tape is a power-of-two ring of produced instructions indexed by
// absolute stream position. A Cursor reads sequentially; reading at the
// head produces the next instruction from the walker. Slots behind the
// slowest cursor are reclaimed lazily: only when the ring looks full
// does the tape recompute the minimum cursor position, and only when
// the live span truly exceeds capacity does it grow (double) — so the
// steady-state read path is a masked ring load with no allocation, and
// ring size adapts to however far the lockstep scheduler lets cursors
// drift apart.
//
// A Tape and its cursors are confined to one goroutine (one batch); the
// sharing is across simulated cores, not OS threads.
type Tape struct {
	w        *Walker
	buf      []Instruction
	mask     uint64
	head     uint64 // next absolute position to produce
	released uint64 // cached lower bound on the minimum cursor position
	curs     []*Cursor
}

// tapeInitialSize is the starting ring capacity (entries). The lockstep
// scheduler bounds drift to roughly one instruction quantum per lane,
// so growth beyond this is rare.
const tapeInitialSize = 4096

// NewTape validates the spec and builds the shared walker. The error
// is exactly NewWalker's, so a batched run fails like a single run.
func NewTape(spec *Spec) (*Tape, error) {
	w, err := NewWalker(spec)
	if err != nil {
		return nil, err
	}
	return &Tape{
		w:    w,
		buf:  make([]Instruction, tapeInitialSize),
		mask: tapeInitialSize - 1,
	}, nil
}

// Walker returns the shared walker — the source of the taped stream.
// Callers use it for diagnostics and to build per-core wrong-path
// generators (a WrongPath reads only the walker's immutable spec).
func (t *Tape) Walker() *Walker { return t.w }

// Cursors returns how many cursors read the tape.
func (t *Tape) Cursors() int { return len(t.curs) }

// NewCursor returns a new reader positioned at the start of the stream.
// All cursors must be created before any reading begins: a cursor born
// after reclamation could point at discarded positions.
func (t *Tape) NewCursor() *Cursor {
	if t.head != 0 {
		panic("workload: tape cursor created after consumption began")
	}
	c := &Cursor{tape: t}
	t.curs = append(t.curs, c)
	return c
}

// DropCursor unregisters a cursor that was never used (e.g. its thread
// failed to attach), so it cannot pin the ring at position zero. A
// dropped cursor must not be read.
func (t *Tape) DropCursor(c *Cursor) {
	for i, cu := range t.curs {
		if cu == c {
			t.curs = append(t.curs[:i], t.curs[i+1:]...)
			return
		}
	}
}

// produce appends the walker's next instruction to the ring.
func (t *Tape) produce() {
	if t.head-t.released >= uint64(len(t.buf)) {
		t.reclaim()
	}
	t.buf[t.head&t.mask] = t.w.Next()
	t.head++
}

// reclaim refreshes the released watermark from the true minimum cursor
// position, growing the ring when live data genuinely fills it.
func (t *Tape) reclaim() {
	min := t.head
	for _, cu := range t.curs {
		if cu.pos < min {
			min = cu.pos
		}
	}
	t.released = min
	if t.head-min >= uint64(len(t.buf)) {
		t.grow()
	}
}

// grow doubles the ring, re-placing live entries by absolute position.
func (t *Tape) grow() {
	nbuf := make([]Instruction, 2*len(t.buf))
	nmask := uint64(len(nbuf) - 1)
	for p := t.released; p < t.head; p++ {
		nbuf[p&nmask] = t.buf[p&t.mask]
	}
	t.buf = nbuf
	t.mask = nmask
}

// Cursor is one sequential reader of a Tape. The zero value is not
// usable; obtain cursors from Tape.NewCursor.
type Cursor struct {
	tape *Tape
	pos  uint64
}

// Pos returns the cursor's absolute stream position (instructions
// consumed). The lockstep scheduler keys on it to run the laggard.
func (c *Cursor) Pos() uint64 { return c.pos }

// Walker returns the tape's shared walker.
func (c *Cursor) Walker() *Walker { return c.tape.w }

// Next returns the next goodpath instruction, producing from the shared
// walker only when this cursor is the first to reach the stream head.
func (c *Cursor) Next() Instruction {
	t := c.tape
	if c.pos == t.head {
		t.produce()
	}
	ins := t.buf[c.pos&t.mask]
	c.pos++
	return ins
}
