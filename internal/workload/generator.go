package workload

import "paco/internal/rng"

// BranchClass enumerates the behavioural classes of static conditional
// branches. The mix of classes (and their parameters) is what gives each
// synthetic benchmark its characteristic mispredict rate and MDC-bucket
// stratification.
type BranchClass uint8

// Branch behaviour classes.
const (
	// ClassBiased branches are taken with a fixed probability (usually
	// near 0 or 1): highly predictable by a bimodal predictor, with a
	// residual mispredict rate of min(p, 1-p).
	ClassBiased BranchClass = iota
	// ClassLoop branches are taken tripCount-1 consecutive times then
	// fall through once. Long trip counts mispredict only at the exit;
	// short ones may be learned by the history-based component.
	ClassLoop
	// ClassPattern branches repeat a fixed short direction pattern:
	// learnable by gshare, essentially perfectly predicted once warm.
	ClassPattern
	// ClassCorrelated branches compute their direction from the recent
	// global outcome history: mispredicted by bimodal, learned by gshare.
	ClassCorrelated
	// ClassNoisy branches follow a pattern but flip with probability
	// epsilon: mispredict rate ~= epsilon regardless of training.
	ClassNoisy
	// ClassRandom branches are taken with probability ~0.5 independently:
	// ~50% mispredict rate, the hardest class.
	ClassRandom
	numClasses
)

// String returns the class name.
func (c BranchClass) String() string {
	switch c {
	case ClassBiased:
		return "biased"
	case ClassLoop:
		return "loop"
	case ClassPattern:
		return "pattern"
	case ClassCorrelated:
		return "correlated"
	case ClassNoisy:
		return "noisy"
	case ClassRandom:
		return "random"
	default:
		return "unknown"
	}
}

// globalCtx carries the cross-branch state outcome generators may consult:
// the recent actual-outcome history (for correlated branches) and the
// mispredict-storm state (for gap-style clustered behaviour).
type globalCtx struct {
	history uint32 // recent actual outcomes, bit 0 = most recent

	stormActive bool
	stormEnter  float64 // probability per branch of entering a storm
	stormExit   float64 // probability per branch of leaving a storm
	stormFlip   float64 // probability a storm flips this outcome
	stormRNG    *rng.RNG
}

func (g *globalCtx) push(taken bool) {
	g.history <<= 1
	if taken {
		g.history |= 1
	}
}

// maybeStormFlip applies the gap-style correlated-mispredict storm: storms
// start and stop at random, and while active they randomly flip branch
// outcomes, producing globally clustered mispredicts that violate PaCo's
// independence assumption exactly the way the paper describes.
func (g *globalCtx) maybeStormFlip(taken bool) bool {
	if g.stormRNG == nil || (g.stormEnter <= 0 && !g.stormActive) {
		return taken
	}
	if g.stormActive {
		if g.stormRNG.Bool(g.stormExit) {
			g.stormActive = false
		}
	} else if g.stormRNG.Bool(g.stormEnter) {
		g.stormActive = true
	}
	if g.stormActive && g.stormRNG.Bool(g.stormFlip) {
		return !taken
	}
	return taken
}

// outcomeGen produces the actual direction sequence of one static branch.
type outcomeGen interface {
	next(g *globalCtx, r *rng.RNG) bool
	class() BranchClass
}

type biasedGen struct{ pTaken float64 }

func (b *biasedGen) next(_ *globalCtx, r *rng.RNG) bool { return r.Bool(b.pTaken) }
func (b *biasedGen) class() BranchClass                 { return ClassBiased }

// loopGen models a data-dependent loop backedge: taken until exit, with a
// geometric (memoryless) exit hazard of 1/trip per iteration. Real loop
// trip counts are mostly data-dependent at this granularity; a fixed
// deterministic trip would make windows between exits certainly safe,
// which no fetch-time predictor can know, and would break the
// independence assumption far more than SPEC-like code does.
type loopGen struct {
	trip int // mean iterations per loop instance
}

func (l *loopGen) next(_ *globalCtx, r *rng.RNG) bool {
	return !r.Bool(1 / float64(l.trip))
}
func (l *loopGen) class() BranchClass { return ClassLoop }

type patternGen struct {
	pattern uint64
	length  int
	pos     int
}

func (p *patternGen) next(*globalCtx, *rng.RNG) bool {
	taken := p.pattern>>uint(p.pos)&1 == 1
	p.pos = (p.pos + 1) % p.length
	return taken
}
func (p *patternGen) class() BranchClass { return ClassPattern }

type correlatedGen struct {
	maskBits uint32 // which history bits feed the XOR
	invert   bool
	cls      BranchClass
}

func (c *correlatedGen) next(g *globalCtx, _ *rng.RNG) bool {
	x := g.history & c.maskBits
	taken := popcount32(x)&1 == 1
	if c.invert {
		taken = !taken
	}
	return taken
}
func (c *correlatedGen) class() BranchClass { return c.cls }

type noisyGen struct {
	inner outcomeGen
	eps   float64
}

func (n *noisyGen) next(g *globalCtx, r *rng.RNG) bool {
	taken := n.inner.next(g, r)
	if r.Bool(n.eps) {
		return !taken
	}
	return taken
}
func (n *noisyGen) class() BranchClass { return ClassNoisy }

type randomGen struct{ pTaken float64 }

func (rg *randomGen) next(_ *globalCtx, r *rng.RNG) bool { return r.Bool(rg.pTaken) }
func (rg *randomGen) class() BranchClass                 { return ClassRandom }

func popcount32(v uint32) int {
	n := 0
	for v != 0 {
		n += int(v & 1)
		v >>= 1
	}
	return n
}

// staticBranch is one static conditional branch: an outcome generator plus
// its private RNG stream so behaviour is independent of CFG interleaving.
type staticBranch struct {
	id  int
	gen outcomeGen
	rng *rng.RNG
	// outcome counters for diagnostics
	executed uint64
	taken    uint64
}

func (sb *staticBranch) next(g *globalCtx) bool {
	t := sb.gen.next(g, sb.rng)
	t = g.maybeStormFlip(t)
	g.push(t)
	sb.executed++
	if t {
		sb.taken++
	}
	return t
}

// BranchMix describes the static conditional branch population of one
// phase: relative weights of each class and the class parameters.
type BranchMix struct {
	// Weights by class; zero-weight classes produce no branches.
	Biased, Loop, Pattern, Correlated, Noisy, Random float64

	// BiasedP is the taken probability of biased branches (values near 1;
	// the generator mirrors half of them to near 0).
	BiasedP float64
	// LoopTripMin/Max bound loop trip counts (inclusive).
	LoopTripMin, LoopTripMax int
	// PatternLenMin/Max bound pattern lengths (inclusive, <= 32).
	PatternLenMin, PatternLenMax int
	// NoisyEps is the flip probability of noisy branches.
	NoisyEps float64
	// RandomP is the taken probability of random branches (near 0.5).
	RandomP float64
}

// normalized weights in class order.
func (m BranchMix) weights() []float64 {
	return []float64{m.Biased, m.Loop, m.Pattern, m.Correlated, m.Noisy, m.Random}
}

// makeBranch samples one static branch from the mix.
func (m BranchMix) makeBranch(id int, choice *rng.WeightedChoice, r *rng.RNG) *staticBranch {
	cls := BranchClass(choice.Sample(r))
	var gen outcomeGen
	switch cls {
	case ClassBiased:
		p := m.BiasedP
		if p <= 0 {
			p = 0.98
		}
		if r.Bool(0.5) {
			p = 1 - p
		}
		gen = &biasedGen{pTaken: p}
	case ClassLoop:
		lo, hi := m.LoopTripMin, m.LoopTripMax
		if lo <= 1 {
			lo = 4
		}
		if hi < lo {
			hi = lo
		}
		gen = &loopGen{trip: r.Range(lo, hi)}
	case ClassPattern:
		// A deterministic function of 3 recent global outcomes: learnable
		// by the gshare component (slightly slower to warm than
		// ClassCorrelated's 2-bit function). A fixed repeating local
		// pattern would be invisible to a global-history predictor.
		mask := uint32(0)
		for popcount32(mask) < 3 {
			mask |= 1 << uint(r.Intn(7))
		}
		gen = &correlatedGen{maskBits: mask, invert: r.Bool(0.5), cls: ClassPattern}
	case ClassCorrelated:
		// Use 2-3 bits of recent history within gshare's reach.
		mask := uint32(0)
		for popcount32(mask) < 2 {
			mask |= 1 << uint(r.Intn(6))
		}
		gen = &correlatedGen{maskBits: mask, invert: r.Bool(0.5), cls: ClassCorrelated}
	case ClassNoisy:
		// A strongly biased branch flipped with probability epsilon: the
		// predictor learns the bias, leaving a mispredict rate of ~eps.
		eps := m.NoisyEps
		if eps <= 0 {
			eps = 0.10
		}
		p := 0.97
		if r.Bool(0.5) {
			p = 1 - p
		}
		gen = &noisyGen{inner: &biasedGen{pTaken: p}, eps: eps}
	case ClassRandom:
		p := m.RandomP
		if p <= 0 {
			p = 0.5
		}
		gen = &randomGen{pTaken: p}
	default:
		panic("workload: unknown branch class")
	}
	return &staticBranch{id: id, gen: gen, rng: r.Fork()}
}
