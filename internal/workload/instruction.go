// Package workload generates the synthetic instruction streams that drive
// the simulator. The paper evaluates PaCo on SPEC2000 INT binaries run
// under an execution-driven MIPS simulator; this repo has no SPEC binaries
// or MIPS toolchain, so each benchmark is modeled as a synthetic program —
// a basic-block control-flow graph whose static conditional branches draw
// outcomes from behavioural generators (biased, loop, pattern,
// history-correlated, noisy, random), plus calls, returns and indirect
// jumps, memory access streams over a configurable working set, data
// dependence distances, and phase schedules.
//
// The models are tuned so the real tournament predictor's conditional
// mispredict rates land in the bands of the paper's Table 7, and so the
// per-benchmark quirks the paper calls out are present: gcc's short phases,
// gap's globally clustered mispredicts, perlbmk's single hot indirect call
// that the JRS table cannot see, twolf/vpr's high mispredict rates and
// vortex's near-zero one.
package workload

// Kind classifies a dynamic instruction.
type Kind uint8

// Instruction kinds. KindBranch is a conditional branch — the only kind
// the JRS confidence table covers.
const (
	KindALU Kind = iota
	KindLoad
	KindStore
	KindBranch   // conditional branch
	KindJump     // unconditional direct jump
	KindCall     // direct call (pushes return address)
	KindReturn   // return (pops return address)
	KindIndirect // indirect jump/call through a register
	numKinds
)

// String returns the kind's mnemonic.
func (k Kind) String() string {
	switch k {
	case KindALU:
		return "alu"
	case KindLoad:
		return "load"
	case KindStore:
		return "store"
	case KindBranch:
		return "branch"
	case KindJump:
		return "jump"
	case KindCall:
		return "call"
	case KindReturn:
		return "return"
	case KindIndirect:
		return "indirect"
	default:
		return "unknown"
	}
}

// IsControl reports whether the kind redirects fetch.
func (k Kind) IsControl() bool { return k >= KindBranch }

// Instruction is one dynamic instruction produced by a Walker (goodpath) or
// WrongPath generator (badpath).
type Instruction struct {
	// PC is the instruction address.
	PC uint64
	// Kind classifies the instruction.
	Kind Kind
	// Taken is the actual direction of a conditional branch.
	Taken bool
	// NextPC is the actual next instruction address (target if taken,
	// fall-through otherwise; targets for jumps/calls/returns/indirect).
	NextPC uint64
	// AltPC is, for conditional branches, the address fetch follows when
	// the direction is mispredicted (the other side of the branch).
	AltPC uint64
	// Addr is the effective address of a load or store.
	Addr uint64
	// Dep1 and Dep2 are data dependence distances: this instruction reads
	// the results of the instructions Dep1 and Dep2 dynamic instructions
	// earlier. Zero means no dependence.
	Dep1, Dep2 int
	// Lat is the base execution latency in cycles (memory adds cache
	// latency on top).
	Lat uint64
	// StaticID identifies the static conditional branch (-1 otherwise);
	// used by diagnostics and tests.
	StaticID int
}
