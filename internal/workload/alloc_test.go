package workload

import "testing"

// TestWalkerNextZeroAllocs pins goodpath stream generation to zero heap
// allocations in steady state (the call stack clamp must slide in place,
// never re-slice off the front of its backing array).
func TestWalkerNextZeroAllocs(t *testing.T) {
	spec, err := NewBenchmark("gzip")
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWalker(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100_000; i++ {
		w.Next()
	}
	allocs := testing.AllocsPerRun(100_000, func() {
		w.Next()
	})
	if allocs != 0 {
		t.Fatalf("Walker.Next allocates %.4f times per instruction, want 0", allocs)
	}
}

// TestWrongPathNextZeroAllocs pins badpath generation likewise.
func TestWrongPathNextZeroAllocs(t *testing.T) {
	spec, err := NewBenchmark("gzip")
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWalker(spec)
	if err != nil {
		t.Fatal(err)
	}
	wp := NewWrongPath(w)
	wp.Redirect(0x4000)
	allocs := testing.AllocsPerRun(50_000, func() {
		ins := wp.Next()
		if ins.Kind == KindBranch {
			wp.ResolveBranch(&ins, true)
		}
	})
	if allocs != 0 {
		t.Fatalf("WrongPath.Next allocates %.4f times per instruction, want 0", allocs)
	}
}
