package workload

import (
	"testing"

	"paco/internal/rng"
)

func testSpec() *Spec {
	return &Spec{
		Name:            "test",
		Seed:            123,
		BlocksPerPhase:  200,
		AvgBlockLen:     5,
		LoadFrac:        0.2,
		StoreFrac:       0.1,
		DepGeoP:         0.3,
		WorkingSetKB:    64,
		CallFrac:        0.04,
		IndirectFrac:    0.02,
		IndirectTargets: 4,
		Phases: []Phase{{
			Instructions: 1 << 62,
			Mix:          BranchMix{Biased: 0.4, Loop: 0.2, Noisy: 0.2, Random: 0.2, NoisyEps: 0.1, LoopTripMin: 5, LoopTripMax: 10},
		}},
	}
}

func TestWalkerDeterminism(t *testing.T) {
	a, err := NewWalker(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewWalker(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		ia, ib := a.Next(), b.Next()
		if ia != ib {
			t.Fatalf("same-seed walkers diverged at %d: %+v vs %+v", i, ia, ib)
		}
	}
}

func TestWalkerSeedsDiffer(t *testing.T) {
	s2 := testSpec()
	s2.Seed = 456
	a, _ := NewWalker(testSpec())
	b, _ := NewWalker(s2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next().PC == b.Next().PC {
			same++
		}
	}
	if same > 900 {
		t.Fatalf("different seeds produced near-identical streams (%d/1000)", same)
	}
}

func TestWalkerControlFlowConsistency(t *testing.T) {
	w, err := NewWalker(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	prev := w.Next()
	for i := 0; i < 100000; i++ {
		cur := w.Next()
		if cur.PC != prev.NextPC {
			t.Fatalf("instr %d at %#x does not follow prev NextPC %#x", i, cur.PC, prev.NextPC)
		}
		if prev.Kind == KindBranch {
			if prev.AltPC == prev.NextPC {
				t.Fatal("branch AltPC equals NextPC")
			}
		}
		prev = cur
	}
}

func TestWalkerKindMix(t *testing.T) {
	w, _ := NewWalker(testSpec())
	for i := 0; i < 200000; i++ {
		w.Next()
	}
	total := w.Produced()
	branches := w.KindCount(KindBranch)
	if branches == 0 {
		t.Fatal("no conditional branches generated")
	}
	frac := float64(branches) / float64(total)
	if frac < 0.02 || frac > 0.35 {
		t.Fatalf("branch fraction %.3f out of plausible range", frac)
	}
	if w.KindCount(KindLoad) == 0 || w.KindCount(KindStore) == 0 {
		t.Fatal("no memory instructions generated")
	}
	if w.KindCount(KindCall) == 0 || w.KindCount(KindReturn) == 0 {
		t.Fatal("no call/return structure generated")
	}
	if w.KindCount(KindIndirect) == 0 {
		t.Fatal("no indirect control generated")
	}
}

func TestWalkerBranchMixing(t *testing.T) {
	// Many distinct static branches must execute: the walk must not get
	// trapped in a small orbit (the failure mode of random digraphs).
	w, _ := NewWalker(testSpec())
	for i := 0; i < 300000; i++ {
		w.Next()
	}
	executed := 0
	for _, bs := range w.BranchStats() {
		if bs.Executed > 0 {
			executed++
		}
	}
	if executed < 20 {
		t.Fatalf("only %d static branches executed — walk is not mixing", executed)
	}
}

func TestWalkerPhases(t *testing.T) {
	s := testSpec()
	s.Phases = []Phase{
		{Instructions: 5000, Mix: s.Phases[0].Mix},
		{Instructions: 5000, Mix: s.Phases[0].Mix},
	}
	w, err := NewWalker(s)
	if err != nil {
		t.Fatal(err)
	}
	if w.Phase() != 0 {
		t.Fatal("initial phase")
	}
	for i := 0; i < 6000; i++ {
		w.Next()
	}
	if w.Phase() != 1 {
		t.Fatalf("phase after 6000 instrs = %d, want 1", w.Phase())
	}
	for i := 0; i < 5000; i++ {
		w.Next()
	}
	if w.Phase() != 0 || w.PhaseSwitches() != 2 {
		t.Fatalf("phase cycling broken: phase=%d switches=%d", w.Phase(), w.PhaseSwitches())
	}
}

func TestMemoryAddressesInWorkingSet(t *testing.T) {
	w, _ := NewWalker(testSpec())
	ws := uint64(64 * 1024)
	for i := 0; i < 50000; i++ {
		ins := w.Next()
		if ins.Kind == KindLoad || ins.Kind == KindStore {
			if ins.Addr < dataBase || ins.Addr >= dataBase+2*ws {
				t.Fatalf("address %#x outside working set window", ins.Addr)
			}
		}
	}
}

func TestSpecValidation(t *testing.T) {
	cases := []func(*Spec){
		func(s *Spec) { s.Name = "" },
		func(s *Spec) { s.Phases = nil },
		func(s *Spec) { s.Phases[0].Instructions = 0 },
		func(s *Spec) { s.Phases[0].Mix = BranchMix{} },
		func(s *Spec) { s.BlocksPerPhase = 0 },
		func(s *Spec) { s.AvgBlockLen = 0 },
		func(s *Spec) { s.WorkingSetKB = 0 },
	}
	for i, mutate := range cases {
		s := testSpec()
		mutate(s)
		if err := s.Validate(); err == nil {
			t.Fatalf("case %d: invalid spec passed validation", i)
		}
	}
	if err := testSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestBenchmarkRegistry(t *testing.T) {
	if len(BenchmarkNames) != 12 {
		t.Fatalf("expected 12 benchmarks, have %d", len(BenchmarkNames))
	}
	for _, n := range BenchmarkNames {
		s, err := NewBenchmark(n)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name != n {
			t.Fatalf("name mismatch: %s vs %s", s.Name, n)
		}
		// The copy must be tweakable without corrupting the registry.
		s.Seed = 999
		s2, _ := NewBenchmark(n)
		if s2.Seed == 999 {
			t.Fatal("registry aliased by returned spec")
		}
	}
	if _, err := NewBenchmark("nonesuch"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	s := testSpec()
	s.Name = "custom-reg-test"
	if err := Register(s); err != nil {
		t.Fatal(err)
	}
	if err := Register(s); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	found := false
	for _, n := range RegisteredNames() {
		if n == "custom-reg-test" {
			found = true
		}
	}
	if !found {
		t.Fatal("registered name not listed")
	}
}

func TestWrongPathGenerator(t *testing.T) {
	w, _ := NewWalker(testSpec())
	for i := 0; i < 100; i++ {
		w.Next()
	}
	wp := NewWrongPath(w)
	wp.Redirect(0x1000_0040)
	sawBranch, sawMem := false, false
	pc := uint64(0x1000_0040)
	for i := 0; i < 2000; i++ {
		ins := wp.Next()
		if ins.PC != pc {
			t.Fatalf("badpath PC %#x, expected %#x", ins.PC, pc)
		}
		switch ins.Kind {
		case KindBranch:
			sawBranch = true
			wp.ResolveBranch(&ins, i%2 == 0)
			if ins.NextPC == 0 {
				t.Fatal("ResolveBranch left NextPC unset")
			}
		case KindLoad, KindStore:
			sawMem = true
		}
		pc = ins.NextPC
	}
	if !sawBranch || !sawMem {
		t.Fatalf("badpath stream lacks variety: branch=%v mem=%v", sawBranch, sawMem)
	}
}

func TestWrongPathMispredictRate(t *testing.T) {
	w, _ := NewWalker(testSpec())
	wp := NewWrongPath(w)
	wp.Redirect(0x1000_0000)
	flips := 0
	n := 0
	for i := 0; i < 20000; i++ {
		ins := wp.Next()
		if ins.Kind != KindBranch {
			continue
		}
		wp.ResolveBranch(&ins, true)
		n++
		if !ins.Taken {
			flips++
		}
	}
	rate := float64(flips) / float64(n)
	if rate < 0.05 || rate > 0.16 {
		t.Fatalf("badpath disagreement rate %.3f, want ~%.2f", rate, BadpathMispredictRate)
	}
}

func TestGeneratorClasses(t *testing.T) {
	r := rng.New(3)
	var g globalCtx
	// Loop: taken with probability 1-1/trip.
	lg := &loopGen{trip: 10}
	taken := 0
	for i := 0; i < 10000; i++ {
		if lg.next(&g, r) {
			taken++
		}
	}
	if taken < 8500 || taken > 9500 {
		t.Fatalf("loop taken fraction %d/10000, want ~9000", taken)
	}
	// Correlated: deterministic function of history.
	cg := &correlatedGen{maskBits: 0b11, cls: ClassCorrelated}
	g.history = 0b01
	first := cg.next(&g, r)
	g.history = 0b01
	if cg.next(&g, r) != first {
		t.Fatal("correlated generator not deterministic given history")
	}
	if cg.class() != ClassCorrelated {
		t.Fatal("class tag")
	}
}

func TestStormClustering(t *testing.T) {
	r := rng.New(4)
	g := globalCtx{stormEnter: 0.01, stormExit: 0.05, stormFlip: 0.5, stormRNG: r.Fork()}
	flips := 0
	for i := 0; i < 50000; i++ {
		if g.maybeStormFlip(true) != true {
			flips++
		}
	}
	if flips == 0 {
		t.Fatal("storms never flipped an outcome")
	}
	// Stationary storm occupancy ~ enter/(enter+exit) = 1/6; flip rate
	// within storms 0.5 -> overall ~8%.
	rate := float64(flips) / 50000
	if rate < 0.03 || rate > 0.15 {
		t.Fatalf("storm flip rate %.3f implausible", rate)
	}
}

func TestBranchClassString(t *testing.T) {
	for c := ClassBiased; c < numClasses; c++ {
		if c.String() == "unknown" {
			t.Fatalf("class %d has no name", c)
		}
	}
}

func TestKindString(t *testing.T) {
	for k := KindALU; k < numKinds; k++ {
		if k.String() == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if !KindBranch.IsControl() || KindALU.IsControl() {
		t.Fatal("IsControl misclassifies")
	}
}
