package workload

import (
	"fmt"
	"sort"
)

// BenchmarkNames lists the SPEC2000 INT benchmarks the paper evaluates
// (all but eon, which its toolchain could not compile), in the paper's
// table order.
var BenchmarkNames = []string{
	"bzip2", "crafty", "gcc", "gap", "gzip", "mcf",
	"parser", "perlbmk", "twolf", "vortex", "vprPlace", "vprRoute",
}

// NewBenchmark returns the synthetic model of the named SPEC2000 INT
// benchmark. The models are tuned so the tournament predictor's conditional
// mispredict rate lands near the paper's Table 7 band for that benchmark,
// and so the per-benchmark quirks the paper calls out are present.
func NewBenchmark(name string) (*Spec, error) {
	spec, ok := specs[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown benchmark %q (have %v)", name, BenchmarkNames)
	}
	// Return a copy so callers can tweak without aliasing the registry.
	return spec.Clone(), nil
}

// IsBenchmark reports whether name is a registered benchmark model.
func IsBenchmark(name string) bool {
	_, ok := specs[name]
	return ok
}

// MustBenchmark is NewBenchmark for known-good names; it panics on error.
func MustBenchmark(name string) *Spec {
	s, err := NewBenchmark(name)
	if err != nil {
		panic(err)
	}
	return s
}

// AllBenchmarks returns fresh specs for every benchmark, in table order.
func AllBenchmarks() []*Spec {
	out := make([]*Spec, 0, len(BenchmarkNames))
	for _, n := range BenchmarkNames {
		out = append(out, MustBenchmark(n))
	}
	return out
}

// RegisteredNames returns all registry names, sorted (the named SPEC models
// plus any test registrations).
func RegisteredNames() []string {
	names := make([]string, 0, len(specs))
	for n := range specs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// base returns a spec with the structural defaults shared by all models;
// each benchmark overrides the behavioural knobs.
func base(name string, seed uint64) *Spec {
	return &Spec{
		Name:            name,
		Seed:            seed,
		BlocksPerPhase:  1200,
		AvgBlockLen:     6,
		LoadFrac:        0.24,
		StoreFrac:       0.10,
		LongLatFrac:     0.10,
		DepGeoP:         0.22,
		WorkingSetKB:    256,
		RandomAddrFrac:  0.15,
		JumpFrac:        0.06,
		CallFrac:        0.04,
		ReturnFrac:      0.04,
		IndirectFrac:    0.01,
		IndirectTargets: 3,
	}
}

// mix builds a BranchMix with sensible parameter defaults.
func mix(biased, loop, pattern, correlated, noisy, random, eps float64) BranchMix {
	return BranchMix{
		Biased: biased, Loop: loop, Pattern: pattern,
		Correlated: correlated, Noisy: noisy, Random: random,
		BiasedP:       0.985,
		LoopTripMin:   12,
		LoopTripMax:   48,
		PatternLenMin: 3,
		PatternLenMax: 8,
		NoisyEps:      eps,
		RandomP:       0.5,
	}
}

// trips overrides a mix's loop trip-count range: short trips mean frequent,
// hard-to-predict loop exits; long trips mean near-perfect loop branches.
func trips(m BranchMix, lo, hi int) BranchMix {
	m.LoopTripMin, m.LoopTripMax = lo, hi
	return m
}

var specs = map[string]*Spec{}

func register(s *Spec) {
	if _, dup := specs[s.Name]; dup {
		panic("workload: duplicate benchmark " + s.Name)
	}
	if err := s.Validate(); err != nil {
		panic(err)
	}
	specs[s.Name] = s
}

// Register adds a custom benchmark spec to the registry (for tests and
// downstream users building their own workloads).
func Register(s *Spec) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if _, dup := specs[s.Name]; dup {
		return fmt.Errorf("workload: duplicate benchmark %q", s.Name)
	}
	specs[s.Name] = s
	return nil
}

func init() {
	// bzip2 — compression: data-dependent branches, moderately high
	// mispredict rate (paper: 10.5% conditional).
	s := base("bzip2", 0xb21b2)
	s.Phases = []Phase{{Instructions: 1 << 62, Mix: trips(mix(0.28, 0.12, 0.08, 0.06, 0.42, 0.02, 0.125), 8, 20)}}
	register(s)

	// crafty — chess: deep control, mixed predictability (paper: 5.49%).
	s = base("crafty", 0xc4af7)
	s.CallFrac, s.ReturnFrac = 0.07, 0.07
	s.Phases = []Phase{{Instructions: 1 << 62, Mix: mix(0.40, 0.10, 0.12, 0.13, 0.20, 0.035, 0.095)}}
	register(s)

	// gcc — compiler: many short phases with *different* bucket rates;
	// PaCo's periodic MRT refresh lags them (paper: 2.61%, worse RMS).
	s = base("gcc", 0x9cc)
	s.BlocksPerPhase = 900
	s.Phases = []Phase{
		{Instructions: 120_000, Mix: trips(mix(0.60, 0.14, 0.12, 0.08, 0.05, 0.00, 0.035), 40, 100)},
		{Instructions: 90_000, Mix: trips(mix(0.50, 0.12, 0.10, 0.08, 0.18, 0.005, 0.05), 30, 80)},
		{Instructions: 140_000, Mix: trips(mix(0.66, 0.16, 0.12, 0.06, 0.02, 0.00, 0.025), 60, 140)},
		{Instructions: 80_000, Mix: trips(mix(0.45, 0.10, 0.10, 0.10, 0.22, 0.005, 0.065), 24, 60)},
		{Instructions: 110_000, Mix: trips(mix(0.64, 0.15, 0.13, 0.08, 0.03, 0.00, 0.03), 60, 140)},
		{Instructions: 100_000, Mix: trips(mix(0.50, 0.12, 0.10, 0.10, 0.15, 0.01, 0.06), 30, 80)},
	}
	register(s)

	// gap — group theory: globally *correlated* mispredicts (storms);
	// violates PaCo's independence assumption (paper: 5.16%, worse RMS).
	s = base("gap", 0x9a9)
	s.StormEnter, s.StormExit, s.StormFlip = 0.0015, 0.04, 0.38
	s.Phases = []Phase{{Instructions: 1 << 62, Mix: trips(mix(0.55, 0.12, 0.12, 0.10, 0.10, 0.008, 0.12), 16, 48)}}
	register(s)

	// gzip — compression: loop-dominated, fairly predictable (paper: 3.17%).
	s = base("gzip", 0x921b)
	s.Phases = []Phase{{Instructions: 1 << 62, Mix: trips(mix(0.45, 0.22, 0.14, 0.08, 0.10, 0.008, 0.105), 16, 60)}}
	register(s)

	// mcf — network simplex: two clear phases (Figure 3(b)) of different
	// predictability, memory-bound (paper: 4.51%).
	s = base("mcf", 0x3cf)
	s.WorkingSetKB = 2048
	s.RandomAddrFrac = 0.30
	s.Phases = []Phase{
		{Instructions: 500_000, Mix: trips(mix(0.55, 0.14, 0.10, 0.08, 0.12, 0.005, 0.05), 24, 64)},
		{Instructions: 500_000, Mix: trips(mix(0.36, 0.10, 0.08, 0.08, 0.26, 0.012, 0.07), 14, 36)},
	}
	register(s)

	// parser — NLP: mixed behaviour, the paper's reliability-diagram
	// example (paper: 5.26%).
	s = base("parser", 0xaa15e4)
	s.Phases = []Phase{{Instructions: 1 << 62, Mix: mix(0.42, 0.12, 0.12, 0.10, 0.18, 0.03, 0.16)}}
	register(s)

	// perlbmk — interpreter: conditional branches nearly perfect (0.11%)
	// but >95% of mispredicts from one hot indirect dispatch the JRS table
	// cannot see.
	s = base("perlbmk", 0x9e41)
	s.IndirectFrac = 0.22
	s.IndirectTargets = 24
	m := mix(0.80, 0.04, 0.14, 0.015, 0.005, 0.00, 0.02)
	m.BiasedP = 0.999
	m.LoopTripMin, m.LoopTripMax = 100, 240
	s.Phases = []Phase{{Instructions: 1 << 62, Mix: m}}
	register(s)

	// twolf — place & route: very hard branches (paper: 14.8%).
	s = base("twolf", 0x720f)
	s.Phases = []Phase{{Instructions: 1 << 62, Mix: trips(mix(0.15, 0.08, 0.06, 0.04, 0.55, 0.03, 0.115), 7, 14)}}
	register(s)

	// vortex — OO database: extremely predictable (paper: 0.65%).
	s = base("vortex", 0x60e7e)
	s.CallFrac, s.ReturnFrac = 0.08, 0.08
	m = mix(0.70, 0.05, 0.15, 0.08, 0.02, 0.00, 0.10)
	m.BiasedP = 0.998
	m.LoopTripMin, m.LoopTripMax = 100, 240
	s.Phases = []Phase{{Instructions: 1 << 62, Mix: m}}
	register(s)

	// vprPlace — placement annealing: random accept/reject (paper: 11.7%).
	s = base("vprPlace", 0x6941)
	s.Phases = []Phase{{Instructions: 1 << 62, Mix: trips(mix(0.18, 0.08, 0.06, 0.04, 0.58, 0.012, 0.10), 7, 16)}}
	register(s)

	// vprRoute — maze router (paper: 11.9%).
	s = base("vprRoute", 0x6942)
	s.Phases = []Phase{{Instructions: 1 << 62, Mix: trips(mix(0.16, 0.10, 0.06, 0.04, 0.58, 0.014, 0.105), 7, 16)}}
	register(s)
}
