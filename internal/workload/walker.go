package workload

import "paco/internal/rng"

// maxCallDepth bounds the walker's return-address stack; deeper call
// chains discard their oldest frames (matching a clamped hardware RAS).
const maxCallDepth = 64

// Walker produces the goodpath dynamic instruction stream of a benchmark by
// walking its control-flow graph. It is only advanced for goodpath fetches;
// when the simulator recovers from a misprediction it resumes exactly where
// the walker stopped.
type Walker struct {
	spec   *Spec
	prog   *program
	r      *rng.RNG
	ctx    globalCtx
	wsMask uint64

	phase         int
	phaseCount    uint64
	region        []block
	blockIdx      int
	instrIdx      int
	callStack     []int
	produced      uint64
	kindCounts    [numKinds]uint64
	phaseSwitches uint64
}

// NewWalker builds the benchmark's program and returns a walker positioned
// at its entry.
func NewWalker(spec *Spec) (*Walker, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	r := rng.NewStream(spec.Seed, 0x5eed)
	w := &Walker{
		spec:      spec,
		prog:      build(spec, r),
		r:         r.Fork(),
		wsMask:    nextPow2u(uint64(spec.WorkingSetKB)*1024) - 1,
		callStack: make([]int, 0, maxCallDepth),
	}
	w.ctx = globalCtx{
		stormEnter: spec.StormEnter,
		stormExit:  spec.StormExit,
		stormFlip:  spec.StormFlip,
		stormRNG:   r.Fork(),
	}
	w.region = w.prog.regions[0]
	w.blockIdx = w.prog.entries[0]
	return w, nil
}

// Spec returns the walker's benchmark spec.
func (w *Walker) Spec() *Spec { return w.spec }

// Produced returns how many goodpath instructions have been generated.
func (w *Walker) Produced() uint64 { return w.produced }

// Phase returns the index of the currently active phase.
func (w *Walker) Phase() int { return w.phase }

// PhaseSwitches returns how many phase transitions have occurred.
func (w *Walker) PhaseSwitches() uint64 { return w.phaseSwitches }

// KindCount returns how many instructions of kind k have been produced.
func (w *Walker) KindCount(k Kind) uint64 { return w.kindCounts[k] }

// Next produces the next goodpath instruction.
func (w *Walker) Next() Instruction {
	w.maybeSwitchPhase()
	blk := &w.region[w.blockIdx]
	// Fall through terminator-less blocks (segment stitching).
	for w.instrIdx >= len(blk.instrs) && blk.term.kind == kindFallthrough {
		w.blockIdx = blk.term.fallBlk
		w.instrIdx = 0
		blk = &w.region[w.blockIdx]
	}
	var ins Instruction
	if w.instrIdx < len(blk.instrs) {
		si := &blk.instrs[w.instrIdx]
		ins = Instruction{
			PC:       blk.pc + uint64(w.instrIdx)*instrBytes,
			Kind:     si.kind,
			Lat:      si.lat,
			Dep1:     w.depDist(),
			StaticID: -1,
		}
		if si.hasDep2 {
			ins.Dep2 = w.depDist()
		}
		if si.mem != nil {
			ins.Addr = si.mem.next(w.r, w.wsMask)
		}
		ins.NextPC = ins.PC + instrBytes
		w.instrIdx++
	} else {
		ins = w.terminatorInstr(blk)
	}
	w.produced++
	w.phaseCount++
	w.kindCounts[ins.Kind]++
	return ins
}

func (w *Walker) depP() float64 {
	p := w.spec.DepGeoP
	if p <= 0 || p > 1 {
		return 0.5
	}
	return p
}

// depDist samples one dependence distance: a third of values are
// independent (zero), the rest geometric — wide enough for realistic ILP.
// The independence draw compares an inlined Float64 against the constant
// directly (exactly what Bool does for an in-range p) — this runs once or
// twice per simulated instruction.
func (w *Walker) depDist() int {
	if w.r.Float64() < 0.3 {
		return 0
	}
	return 1 + w.r.Geometric(w.depP())
}

func (w *Walker) terminatorInstr(blk *block) Instruction {
	t := &blk.term
	termPC := blk.pc + uint64(len(blk.instrs))*instrBytes
	ins := Instruction{
		PC:       termPC,
		Kind:     t.kind,
		Lat:      1,
		Dep1:     w.depDist(),
		StaticID: -1,
	}
	switch t.kind {
	case KindBranch:
		taken := t.branch.next(&w.ctx)
		ins.Taken = taken
		ins.StaticID = t.branch.id
		if taken {
			w.blockIdx = t.takenBlk
			ins.AltPC = w.region[t.fallBlk].pc // mispredicted: falls through
		} else {
			w.blockIdx = t.fallBlk
			ins.AltPC = w.region[t.takenBlk].pc // mispredicted: takes the branch
		}
		ins.NextPC = w.region[w.blockIdx].pc
	case KindJump:
		w.blockIdx = t.takenBlk
		ins.NextPC = w.region[w.blockIdx].pc
	case KindCall:
		// Clamp by sliding in place rather than re-slicing off the front:
		// the backing array keeps its full capacity, so pushes never
		// reallocate in steady state. Contents match the seed's behaviour
		// (the deepest maxCallDepth return sites are retained).
		if len(w.callStack) >= maxCallDepth {
			copy(w.callStack, w.callStack[len(w.callStack)-maxCallDepth+1:])
			w.callStack = w.callStack[:maxCallDepth-1]
		}
		w.callStack = append(w.callStack, t.fallBlk)
		w.blockIdx = t.takenBlk
		ins.NextPC = w.region[w.blockIdx].pc
	case KindReturn:
		if n := len(w.callStack); n > 0 {
			w.blockIdx = w.callStack[n-1]
			w.callStack = w.callStack[:n-1]
		} else {
			// Unbalanced return (clamped stack or phase switch): restart
			// at the region's driver loop.
			w.blockIdx = w.prog.entries[w.phase]
		}
		ins.NextPC = w.region[w.blockIdx].pc
	case KindIndirect:
		w.blockIdx = t.indirect[w.r.Intn(len(t.indirect))]
		ins.NextPC = w.region[w.blockIdx].pc
	default:
		panic("workload: bad terminator kind")
	}
	w.instrIdx = 0
	return ins
}

func (w *Walker) maybeSwitchPhase() {
	ph := &w.spec.Phases[w.phase]
	if w.phaseCount < ph.Instructions {
		return
	}
	w.phaseCount = 0
	w.phase = (w.phase + 1) % len(w.spec.Phases)
	w.region = w.prog.regions[w.phase]
	w.blockIdx = w.prog.entries[w.phase]
	w.instrIdx = 0
	w.callStack = w.callStack[:0]
	w.phaseSwitches++
}

// BranchStats summarizes one static branch for diagnostics.
type BranchStats struct {
	ID       int
	Class    BranchClass
	Executed uint64
	Taken    uint64
}

// BranchStats returns per-static-branch execution statistics.
func (w *Walker) BranchStats() []BranchStats {
	out := make([]BranchStats, 0, len(w.prog.branches))
	for _, sb := range w.prog.branches {
		out = append(out, BranchStats{
			ID:       sb.id,
			Class:    sb.gen.class(),
			Executed: sb.executed,
			Taken:    sb.taken,
		})
	}
	return out
}

// WrongPath generates plausible badpath instructions after a misprediction:
// random code addresses within the current program region (so badpath fetch
// exercises the I-cache and BTB realistically) and data addresses spread
// over a region four times the working set (so badpath fills evict goodpath
// lines — the pollution the paper's gating experiments observe).
type WrongPath struct {
	w  *Walker
	r  *rng.RNG
	pc uint64
}

// NewWrongPath returns a badpath generator bound to the walker's program.
func NewWrongPath(w *Walker) *WrongPath {
	return &WrongPath{w: w, r: rng.NewStream(w.spec.Seed, 0xbad)}
}

// Redirect points the generator at a new badpath PC (the mispredicted
// target).
func (wp *WrongPath) Redirect(pc uint64) { wp.pc = pc }

// BadpathMispredictRate is the rate at which badpath conditional branches
// disagree with the live prediction. Badpath instruction content is
// synthetic fiction; making it behave like ordinary code (rather than
// mispredicting half the time) keeps deep wrong-path shadows realistic.
const BadpathMispredictRate = 0.10

// ResolveBranch fixes up a badpath conditional branch produced by Next
// once the pipeline has predicted its direction: the actual outcome agrees
// with the prediction except at BadpathMispredictRate, and the generator's
// fetch position follows the actual path.
func (wp *WrongPath) ResolveBranch(ins *Instruction, predictedTaken bool) {
	taken := predictedTaken
	if wp.r.Bool(BadpathMispredictRate) {
		taken = !taken
	}
	target := ins.AltPC // candidate taken target chosen at generation
	ins.Taken = taken
	if taken {
		ins.NextPC = target
		ins.AltPC = ins.PC + instrBytes
	} else {
		ins.NextPC = ins.PC + instrBytes
		ins.AltPC = target
	}
	wp.pc = ins.NextPC
}

// Next produces the next badpath instruction at the generator's current PC.
func (wp *WrongPath) Next() Instruction {
	ins := Instruction{PC: wp.pc, Lat: 1, Dep1: 1 + wp.r.Geometric(0.5), StaticID: -1}
	x := wp.r.Float64()
	spec := wp.w.spec
	switch {
	case x < spec.LoadFrac:
		ins.Kind = KindLoad
		ins.Lat = 3
		ins.Addr = dataBase + (wp.r.Uint64() & (4*(wp.w.wsMask+1) - 1))
	case x < spec.LoadFrac+spec.StoreFrac:
		ins.Kind = KindStore
		ins.Addr = dataBase + (wp.r.Uint64() & (4*(wp.w.wsMask+1) - 1))
	case x < spec.LoadFrac+spec.StoreFrac+0.15:
		// Badpath control flow: a conditional branch whose outcome is
		// decided against the live prediction by ResolveBranch — badpath
		// code behaves statistically like code, mispredicting at a
		// modest fixed rate rather than 50%. Taken targets are short
		// forward jumps: wrong paths run nearby, mostly I-cache-warm
		// code, so the shadow keeps fetching (and keeps generating
		// instances) until the mispredict resolves.
		ins.Kind = KindBranch
		ins.AltPC = ins.PC + instrBytes*uint64(2+wp.r.Intn(48))
		return ins
	default:
		ins.Kind = KindALU
	}
	ins.NextPC = ins.PC + instrBytes
	wp.pc = ins.NextPC
	return ins
}
