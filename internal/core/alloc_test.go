package core

import (
	"testing"

	"paco/internal/confidence"
)

// TestEstimatorTickZeroAllocs pins every estimator's per-cycle Tick —
// including PaCo's periodic MRT logarithmization — to zero heap
// allocations: Tick runs every simulated cycle on every attached
// estimator.
func TestEstimatorTickZeroAllocs(t *testing.T) {
	ests := map[string]Estimator{
		"paco":      NewPaCo(PaCoConfig{RefreshPeriod: 2}), // refresh on nearly every tick
		"count":     NewCountPredictor(3),
		"static":    NewStaticMRT(nil),
		"perbranch": NewPerBranchMRT(DefaultPerBranchEntries),
	}
	for name, est := range ests {
		est := est
		// Populate some state so PaCo's Refresh exercises Encode.
		for i := 0; i < 200; i++ {
			ev := BranchEvent{PC: uint64(0x1000 + 4*i), MDC: uint32(i) % confidence.NumBuckets, Conditional: true}
			c := est.BranchFetched(ev)
			est.BranchRetired(ev, i%3 != 0)
			est.BranchResolved(c)
		}
		cycle := uint64(0)
		allocs := testing.AllocsPerRun(10_000, func() {
			cycle++
			est.Tick(cycle)
		})
		if allocs != 0 {
			t.Errorf("%s: Tick allocates %.4f times per cycle, want 0", name, allocs)
		}
	}
}

// TestHotPathZeroAllocs pins the per-branch estimator lifecycle
// (fetch/resolve/squash/retire) to zero allocations.
func TestHotPathZeroAllocs(t *testing.T) {
	p := NewPaCo(PaCoConfig{})
	ev := BranchEvent{PC: 0x1234, MDC: 3, Conditional: true}
	allocs := testing.AllocsPerRun(10_000, func() {
		c := p.BranchFetched(ev)
		p.BranchRetired(ev, true)
		p.BranchResolved(c)
		c = p.BranchFetched(ev)
		p.BranchSquashed(c)
	})
	if allocs != 0 {
		t.Fatalf("PaCo hot path allocates %.4f times per branch, want 0", allocs)
	}
}
