package core

import (
	"math"
	"testing"
	"testing/quick"

	"paco/internal/bitutil"
	"paco/internal/confidence"
	"paco/internal/rng"
)

func condEvent(mdc uint32) BranchEvent {
	return BranchEvent{PC: 0x1000, MDC: mdc, Conditional: true}
}

func TestPaCoSumAccounting(t *testing.T) {
	p := NewPaCo(PaCoConfig{})
	if p.EncodedSum() != 0 || p.GoodpathProb() != 1 {
		t.Fatal("fresh predictor must report certain goodpath")
	}
	c1 := p.BranchFetched(condEvent(0))
	c2 := p.BranchFetched(condEvent(5))
	if p.EncodedSum() != int64(c1.Encoded)+int64(c2.Encoded) {
		t.Fatal("sum must equal sum of contributions")
	}
	p.BranchResolved(c1)
	p.BranchSquashed(c2)
	if p.EncodedSum() != 0 {
		t.Fatalf("drained sum = %d, want 0", p.EncodedSum())
	}
}

func TestPaCoIgnoresNonConditional(t *testing.T) {
	p := NewPaCo(PaCoConfig{})
	c := p.BranchFetched(BranchEvent{PC: 0x4, Conditional: false})
	if c.Tracked || p.EncodedSum() != 0 {
		t.Fatal("non-conditional control flow must not affect the sum")
	}
	p.BranchResolved(c) // must be harmless
	if p.EncodedSum() != 0 {
		t.Fatal("resolving an untracked contribution changed the sum")
	}
}

// TestPaCoSumDrainsToZero: property — any interleaving of fetches with
// matching resolves/squashes returns the sum to zero.
func TestPaCoSumDrainsToZero(t *testing.T) {
	p := NewPaCo(PaCoConfig{})
	r := rng.New(42)
	if err := quick.Check(func(seed uint32) bool {
		var live []Contribution
		for i := 0; i < 50; i++ {
			switch {
			case len(live) == 0 || r.Bool(0.5):
				live = append(live, p.BranchFetched(condEvent(uint32(r.Intn(16)))))
			case r.Bool(0.5):
				c := live[len(live)-1]
				live = live[:len(live)-1]
				p.BranchResolved(c)
			default:
				c := live[len(live)-1]
				live = live[:len(live)-1]
				p.BranchSquashed(c)
			}
		}
		for _, c := range live {
			p.BranchResolved(c)
		}
		return p.EncodedSum() == 0
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPaCoLearnsBucketRates: train two buckets at different rates and
// check the refreshed table orders and approximates them.
func TestPaCoLearnsBucketRates(t *testing.T) {
	p := NewPaCo(PaCoConfig{RefreshPeriod: 1000})
	r := rng.New(7)
	for i := 0; i < 20000; i++ {
		p.BranchRetired(condEvent(0), !r.Bool(0.40))
		p.BranchRetired(condEvent(8), !r.Bool(0.05))
	}
	p.Refresh()
	table := p.Table()
	r0 := 1 - bitutil.DecodeProb(int64(table[0]))
	r8 := 1 - bitutil.DecodeProb(int64(table[8]))
	if math.Abs(r0-0.40) > 0.08 {
		t.Fatalf("bucket 0 learned rate %.3f, want ~0.40", r0)
	}
	if math.Abs(r8-0.05) > 0.03 {
		t.Fatalf("bucket 8 learned rate %.3f, want ~0.05", r8)
	}
	if table[0] <= table[8] {
		t.Fatal("higher mispredict bucket must have larger encoding")
	}
}

func TestPaCoEmptyBucketKeepsEncoding(t *testing.T) {
	p := NewPaCo(PaCoConfig{})
	before := p.Table()[13]
	p.BranchRetired(condEvent(2), false) // only bucket 2 sees samples
	p.Refresh()
	if p.Table()[13] != before {
		t.Fatal("bucket with no samples lost its previous encoding on refresh")
	}
}

func TestPaCoTickRefreshPeriod(t *testing.T) {
	p := NewPaCo(PaCoConfig{RefreshPeriod: 100})
	p.Tick(50)
	if p.Refreshes() != 0 {
		t.Fatal("refreshed before the period elapsed")
	}
	p.Tick(100)
	if p.Refreshes() != 1 {
		t.Fatal("did not refresh at the period boundary")
	}
	p.Tick(150)
	if p.Refreshes() != 1 {
		t.Fatal("refreshed again before the next period")
	}
	p.Tick(205)
	if p.Refreshes() != 2 {
		t.Fatal("missed the second refresh")
	}
}

func TestPaCoReset(t *testing.T) {
	p := NewPaCo(PaCoConfig{})
	p.BranchFetched(condEvent(0))
	p.BranchRetired(condEvent(0), false)
	p.Reset()
	if p.EncodedSum() != 0 {
		t.Fatal("Reset did not clear the sum")
	}
	if c, m := p.MRTCounts(0); c != 0 || m != 0 {
		t.Fatal("Reset did not clear the MRT")
	}
}

func TestPaCoCustomInitialTable(t *testing.T) {
	var table [confidence.NumBuckets]uint32
	for i := range table {
		table[i] = uint32(i * 10)
	}
	p := NewPaCo(PaCoConfig{InitialTable: &table})
	if p.Table() != table {
		t.Fatal("initial table not applied")
	}
	c := p.BranchFetched(condEvent(3))
	if c.Encoded != 30 {
		t.Fatalf("contribution %d, want 30", c.Encoded)
	}
}

func TestMRTHalvingPreservesRate(t *testing.T) {
	m := NewMRT()
	r := rng.New(9)
	// Feed far more samples than the 6-bit mispredict counter holds.
	for i := 0; i < 5000; i++ {
		m.Record(0, !r.Bool(0.25))
	}
	c, mp := m.Counts(0)
	rate := float64(mp) / float64(c+mp)
	if math.Abs(rate-0.25) > 0.08 {
		t.Fatalf("post-halving rate %.3f, want ~0.25", rate)
	}
	if c > 1023 || mp > 63 {
		t.Fatalf("counters exceeded widths: %d/%d", c, mp)
	}
}

func TestMRTEncodeEmpty(t *testing.T) {
	m := NewMRT()
	if _, ok := m.Encode(4); ok {
		t.Fatal("empty bucket must not encode")
	}
	m.Record(4, true)
	if enc, ok := m.Encode(4); !ok || enc != 0 {
		t.Fatalf("all-correct bucket encoded to %d,%v", enc, ok)
	}
}

func TestMRTOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range bucket did not panic")
		}
	}()
	NewMRT().Record(16, true)
}

func TestCountPredictor(t *testing.T) {
	cp := NewCountPredictor(3)
	low := cp.BranchFetched(condEvent(1))
	high := cp.BranchFetched(condEvent(7))
	if cp.Count() != 1 {
		t.Fatalf("count = %d, want 1 (only MDC<3 counts)", cp.Count())
	}
	if !low.Tracked || high.Tracked {
		t.Fatal("tracking flags wrong")
	}
	cp.BranchResolved(high) // untracked: no effect
	cp.BranchSquashed(low)
	if cp.Count() != 0 {
		t.Fatalf("drained count = %d", cp.Count())
	}
	if cp.Threshold() != 3 {
		t.Fatal("threshold accessor")
	}
}

func TestCountPredictorNonConditional(t *testing.T) {
	cp := NewCountPredictor(3)
	c := cp.BranchFetched(BranchEvent{MDC: 0, Conditional: false})
	if c.Tracked || cp.Count() != 0 {
		t.Fatal("non-conditional branches must not be counted")
	}
}

func TestStaticMRTFixedTable(t *testing.T) {
	s := NewStaticMRT(nil)
	c := s.BranchFetched(condEvent(0))
	want := DefaultStaticProfile()[0]
	if c.Encoded != want {
		t.Fatalf("static encoding %d, want %d", c.Encoded, want)
	}
	// Training must not change anything.
	for i := 0; i < 1000; i++ {
		s.BranchRetired(condEvent(0), false)
	}
	s.Tick(1 << 30)
	c2 := s.BranchFetched(condEvent(0))
	if c2.Encoded != want {
		t.Fatal("static table drifted")
	}
	s.BranchResolved(c)
	s.BranchResolved(c2)
	if s.EncodedSum() != 0 {
		t.Fatal("static sum accounting broken")
	}
}

func TestPerBranchMRTLearnsPerBranch(t *testing.T) {
	p := NewPerBranchMRT(1024)
	r := rng.New(13)
	good := BranchEvent{PC: 0x100, History: 0, Conditional: true}
	bad := BranchEvent{PC: 0x204, History: 0, Conditional: true}
	for i := 0; i < 4000; i++ {
		p.BranchRetired(good, !r.Bool(0.02))
		p.BranchRetired(bad, !r.Bool(0.45))
	}
	cg := p.BranchFetched(good)
	cb := p.BranchFetched(bad)
	if cg.Encoded >= cb.Encoded {
		t.Fatalf("per-branch encodings not ordered: good=%d bad=%d", cg.Encoded, cb.Encoded)
	}
	p.BranchResolved(cg)
	p.BranchResolved(cb)
	if p.EncodedSum() != 0 {
		t.Fatal("per-branch sum accounting broken")
	}
}

func TestPerBranchMRTPrior(t *testing.T) {
	p := NewPerBranchMRT(64)
	c := p.BranchFetched(BranchEvent{PC: 0xdead, Conditional: true})
	if c.Encoded == 0 {
		t.Fatal("never-seen branch should carry the prior encoding, not certainty")
	}
	p.BranchResolved(c)
}

func TestDefaultStaticProfileMonotone(t *testing.T) {
	prof := DefaultStaticProfile()
	for i := 1; i < len(prof); i++ {
		if prof[i] > prof[i-1] {
			t.Fatalf("default profile not non-increasing at %d", i)
		}
	}
}

// TestAllEstimatorsDrain: shared property — fetch/resolve pairs leave every
// probabilistic estimator at a zero sum.
func TestAllEstimatorsDrain(t *testing.T) {
	ests := []Probabilistic{
		NewPaCo(PaCoConfig{}),
		NewStaticMRT(nil),
		NewPerBranchMRT(256),
	}
	r := rng.New(21)
	for _, e := range ests {
		var live []Contribution
		for i := 0; i < 500; i++ {
			ev := BranchEvent{PC: r.Uint64(), History: r.Uint32() & 0xFF,
				MDC: uint32(r.Intn(16)), Conditional: r.Bool(0.8)}
			live = append(live, e.BranchFetched(ev))
			if r.Bool(0.6) && len(live) > 0 {
				e.BranchResolved(live[len(live)-1])
				live = live[:len(live)-1]
			}
		}
		for _, c := range live {
			e.BranchSquashed(c)
		}
		if e.EncodedSum() != 0 {
			t.Fatalf("%T did not drain to zero: %d", e, e.EncodedSum())
		}
		if e.GoodpathProb() != 1 {
			t.Fatalf("%T drained prob != 1", e)
		}
	}
}
