package core

import (
	"paco/internal/bitutil"
	"paco/internal/confidence"
)

// CorrectBits and MispredBits are the MRT counter widths from the paper's
// Section 3.2: a 10-bit correct-prediction counter and a 6-bit mispredict
// counter per MDC bucket (32 counters, 32 bytes of storage).
const (
	CorrectBits = 10
	MispredBits = 6
)

// MRT is the Mispredict Rate Table: per MDC bucket, counts of observed
// correct predictions and mispredictions. When either counter would
// overflow, both are halved, preserving the bucket's rate while aging old
// evidence.
type MRT struct {
	correct [confidence.NumBuckets]bitutil.SatCounter
	mispred [confidence.NumBuckets]bitutil.SatCounter
}

// NewMRT returns an empty Mispredict Rate Table.
func NewMRT() *MRT {
	m := &MRT{}
	m.Reset()
	return m
}

// Reset zeroes all counters (the paper resets the MRT after each
// logarithmization).
func (m *MRT) Reset() {
	for i := range m.correct {
		m.correct[i] = bitutil.NewSatCounter(CorrectBits, 0)
		m.mispred[i] = bitutil.NewSatCounter(MispredBits, 0)
	}
}

// Record notes one retired conditional branch in the given MDC bucket.
func (m *MRT) Record(mdc uint32, correct bool) {
	if mdc >= confidence.NumBuckets {
		panic("core: MDC bucket out of range")
	}
	c, mp := &m.correct[mdc], &m.mispred[mdc]
	if (correct && c.AtMax()) || (!correct && mp.AtMax()) {
		c.Set(c.Value() / 2)
		mp.Set(mp.Value() / 2)
	}
	if correct {
		c.Inc()
	} else {
		mp.Inc()
	}
}

// Counts returns the raw (correct, mispredict) counters of a bucket.
func (m *MRT) Counts(mdc uint32) (correct, mispred uint32) {
	return m.correct[mdc].Value(), m.mispred[mdc].Value()
}

// Samples returns the total number of observations in a bucket.
func (m *MRT) Samples(mdc uint32) uint32 {
	return m.correct[mdc].Value() + m.mispred[mdc].Value()
}

// Encode runs the log circuit over one bucket, producing the paper's 12-bit
// encoded correct-prediction probability. ok is false when the bucket holds
// no samples (the caller keeps the previous encoding, per our DESIGN.md
// faithfulness note).
func (m *MRT) Encode(mdc uint32) (enc uint32, ok bool) {
	c, mp := m.Counts(mdc)
	if c+mp == 0 {
		return 0, false
	}
	return bitutil.EncodeRate(c, mp), true
}

// DefaultStaticProfile is the cold-start encoded-probability table used
// before the first logarithmization and by the Static MRT variant when no
// benchmark-specific profile is supplied. It encodes a smoothly declining
// mispredict rate by MDC value, in the range Figure 2 of the paper spans
// (~40% at MDC 0 down to ~1% at MDC 15).
func DefaultStaticProfile() [confidence.NumBuckets]uint32 {
	rates := [confidence.NumBuckets]float64{
		0.40, 0.28, 0.20, 0.15, 0.12, 0.10, 0.08, 0.07,
		0.06, 0.05, 0.045, 0.04, 0.035, 0.03, 0.02, 0.01,
	}
	var enc [confidence.NumBuckets]uint32
	for i, r := range rates {
		enc[i] = bitutil.ExactEncode(1 - r)
	}
	return enc
}
