package core

import "paco/internal/confidence"

// CountPredictor is the conventional threshold-and-count path confidence
// predictor (Figure 1 of the paper): each fetched conditional branch whose
// MDC value is below a threshold increments a counter of unresolved
// low-confidence branches; resolve or squash decrements it. The counter
// value is the path confidence estimate — higher means less likely on
// goodpath.
type CountPredictor struct {
	classifier confidence.Classifier
	count      int
}

// NewCountPredictor returns a threshold-and-count predictor with the given
// JRS confidence threshold (the paper sweeps 3, 7, 11, 15; 3 is the
// conventional best).
func NewCountPredictor(threshold uint32) *CountPredictor {
	return &CountPredictor{classifier: confidence.Classifier{Threshold: threshold}}
}

// Reset implements Estimator.
func (cp *CountPredictor) Reset() { cp.count = 0 }

// BranchFetched implements Estimator.
func (cp *CountPredictor) BranchFetched(ev BranchEvent) Contribution {
	if !ev.Conditional || !cp.classifier.LowConfidence(ev.MDC) {
		return Contribution{}
	}
	cp.count++
	return Contribution{LowConf: true, Tracked: true}
}

// BranchResolved implements Estimator.
func (cp *CountPredictor) BranchResolved(c Contribution) {
	if c.Tracked {
		cp.count--
	}
}

// BranchSquashed implements Estimator.
func (cp *CountPredictor) BranchSquashed(c Contribution) { cp.BranchResolved(c) }

// BranchRetired implements Estimator. The counter predictor needs no
// training.
func (cp *CountPredictor) BranchRetired(BranchEvent, bool) {}

// Tick implements Estimator.
func (cp *CountPredictor) Tick(uint64) {}

// Count returns the number of unresolved low-confidence branches.
func (cp *CountPredictor) Count() int { return cp.count }

// Threshold returns the configured JRS confidence threshold.
func (cp *CountPredictor) Threshold() uint32 { return cp.classifier.Threshold }

var _ Estimator = (*CountPredictor)(nil)
