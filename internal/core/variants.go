package core

import (
	"paco/internal/bitutil"
	"paco/internal/confidence"
)

// StaticMRT is the Appendix A "Static MRT" variant: encoded probabilities
// are assigned to MDC buckets once, from profile information, and never
// updated. It removes the log circuit and the MRT counters at the cost of
// accuracy (the paper measures roughly 3x the RMS error of dynamic PaCo).
type StaticMRT struct {
	table [confidence.NumBuckets]uint32
	sum   int64
}

// NewStaticMRT builds the variant from a profile of per-bucket encoded
// probabilities. Nil selects DefaultStaticProfile.
func NewStaticMRT(profile *[confidence.NumBuckets]uint32) *StaticMRT {
	s := &StaticMRT{}
	if profile != nil {
		s.table = *profile
	} else {
		s.table = DefaultStaticProfile()
	}
	return s
}

// Reset implements Estimator.
func (s *StaticMRT) Reset() { s.sum = 0 }

// BranchFetched implements Estimator.
func (s *StaticMRT) BranchFetched(ev BranchEvent) Contribution {
	if !ev.Conditional {
		return Contribution{}
	}
	enc := s.table[ev.MDC]
	s.sum += int64(enc)
	return Contribution{Encoded: enc, Tracked: true}
}

// BranchResolved implements Estimator.
func (s *StaticMRT) BranchResolved(c Contribution) {
	if c.Tracked {
		s.sum -= int64(c.Encoded)
	}
}

// BranchSquashed implements Estimator.
func (s *StaticMRT) BranchSquashed(c Contribution) { s.BranchResolved(c) }

// BranchRetired implements Estimator (no training).
func (s *StaticMRT) BranchRetired(BranchEvent, bool) {}

// Tick implements Estimator (no periodic work).
func (s *StaticMRT) Tick(uint64) {}

// EncodedSum returns the running encoded goodpath probability.
func (s *StaticMRT) EncodedSum() int64 { return s.sum }

// GoodpathProb decodes the running sum into a probability.
func (s *StaticMRT) GoodpathProb() float64 { return bitutil.DecodeProb(s.sum) }

var _ Estimator = (*StaticMRT)(nil)

// PerBranchMRT is the Appendix A "Per-branch MRT" variant: instead of
// stratifying by MDC value, a table indexed by a hash of the branch PC and
// global history keeps per-branch correct/mispredict counters, and each
// branch contributes the encoding of its own long-run rate. The paper finds
// this *worse* than bucketed PaCo: rate counters weight ancient and recent
// mispredicts equally, discarding the recency information the MDC encodes.
type PerBranchMRT struct {
	correct []bitutil.SatCounter
	mispred []bitutil.SatCounter
	mask    uint64
	sum     int64
	prior   uint32 // encoding used for never-seen branches
}

// NewPerBranchMRT builds the variant with the given number of table entries
// (rounded up to a power of two; the paper's intent is a larger,
// hardware-intensive table — 4096 entries by default via
// DefaultPerBranchEntries).
func NewPerBranchMRT(entries int) *PerBranchMRT {
	n := 1
	for n < entries {
		n <<= 1
	}
	p := &PerBranchMRT{
		correct: make([]bitutil.SatCounter, n),
		mispred: make([]bitutil.SatCounter, n),
		mask:    uint64(n - 1),
		prior:   bitutil.ExactEncode(0.9), // assume 10% mispredict until seen
	}
	for i := range p.correct {
		p.correct[i] = bitutil.NewSatCounter(CorrectBits, 0)
		p.mispred[i] = bitutil.NewSatCounter(MispredBits, 0)
	}
	return p
}

// DefaultPerBranchEntries is the default per-branch table size.
const DefaultPerBranchEntries = 4096

// Reset implements Estimator.
func (p *PerBranchMRT) Reset() {
	for i := range p.correct {
		p.correct[i].Reset()
		p.mispred[i].Reset()
	}
	p.sum = 0
}

func (p *PerBranchMRT) index(pc uint64, history uint32) uint64 {
	return ((pc >> 2) ^ uint64(history)) & p.mask
}

// BranchFetched implements Estimator: the branch contributes the encoding
// of its own observed rate.
func (p *PerBranchMRT) BranchFetched(ev BranchEvent) Contribution {
	if !ev.Conditional {
		return Contribution{}
	}
	i := p.index(ev.PC, ev.History)
	c, m := p.correct[i].Value(), p.mispred[i].Value()
	var enc uint32
	if c+m == 0 {
		enc = p.prior
	} else {
		enc = bitutil.EncodeRate(c, m)
	}
	p.sum += int64(enc)
	return Contribution{Encoded: enc, Tracked: true}
}

// BranchResolved implements Estimator.
func (p *PerBranchMRT) BranchResolved(c Contribution) {
	if c.Tracked {
		p.sum -= int64(c.Encoded)
	}
}

// BranchSquashed implements Estimator.
func (p *PerBranchMRT) BranchSquashed(c Contribution) { p.BranchResolved(c) }

// BranchRetired implements Estimator: trains the branch's own counters,
// halving both on overflow like the MRT.
func (p *PerBranchMRT) BranchRetired(ev BranchEvent, correct bool) {
	if !ev.Conditional {
		return
	}
	i := p.index(ev.PC, ev.History)
	c, m := &p.correct[i], &p.mispred[i]
	if (correct && c.AtMax()) || (!correct && m.AtMax()) {
		c.Set(c.Value() / 2)
		m.Set(m.Value() / 2)
	}
	if correct {
		c.Inc()
	} else {
		m.Inc()
	}
}

// Tick implements Estimator (no periodic work).
func (p *PerBranchMRT) Tick(uint64) {}

// EncodedSum returns the running encoded goodpath probability.
func (p *PerBranchMRT) EncodedSum() int64 { return p.sum }

// GoodpathProb decodes the running sum into a probability.
func (p *PerBranchMRT) GoodpathProb() float64 { return bitutil.DecodeProb(p.sum) }

var _ Estimator = (*PerBranchMRT)(nil)

// Probabilistic is implemented by estimators that produce a goodpath
// probability (the PaCo family); the threshold-and-count baseline does not.
type Probabilistic interface {
	Estimator
	// EncodedSum returns the integer path confidence register.
	EncodedSum() int64
	// GoodpathProb returns the decoded probability in [0, 1].
	GoodpathProb() float64
}

var (
	_ Probabilistic = (*PaCo)(nil)
	_ Probabilistic = (*StaticMRT)(nil)
	_ Probabilistic = (*PerBranchMRT)(nil)
)
