// Package core implements the paper's contribution: the PaCo
// probability-based path confidence predictor, together with the baselines
// it is evaluated against — the conventional threshold-and-count predictor
// and the Appendix A variants (Static MRT and Per-branch MRT).
//
// A path confidence estimator watches the lifecycle of every control-flow
// instruction in flight:
//
//	fetch   -> BranchFetched  (returns a Contribution token the pipeline
//	                           stores with the branch)
//	execute -> BranchResolved (the branch's outcome is known; its
//	                           contribution leaves the in-flight set)
//	squash  -> BranchSquashed (an older mispredict killed the branch)
//	retire  -> BranchRetired  (goodpath ground truth; training happens here)
//
// and Tick is called once per cycle for periodic work (PaCo's MRT
// logarithmization). All runtime-path arithmetic is integer-only.
package core

// BranchEvent describes one dynamic control-flow instruction as seen by a
// path confidence estimator.
type BranchEvent struct {
	// PC is the instruction address.
	PC uint64
	// History is the global branch history at prediction time.
	History uint32
	// MDC is the branch's miss distance counter value read from the JRS
	// table at prediction time. Meaningless if Conditional is false.
	MDC uint32
	// Conditional reports whether this is a conditional branch. The JRS
	// table assigns MDCs only to conditional branches (paper, Section
	// 4.4), so unconditional control flow contributes nothing to path
	// confidence — the root cause of PaCo's perlbmk inaccuracy.
	Conditional bool
}

// Contribution is the token an estimator hands back at fetch and receives
// at resolve/squash. Tagging branches with the exact value added keeps the
// running sum consistent even when the encoded-probability table is
// re-logarithmized while the branch is in flight.
type Contribution struct {
	// Encoded is the encoded correct-prediction probability added to the
	// path confidence sum (PaCo variants).
	Encoded uint32
	// LowConf reports whether the branch was counted as low confidence
	// (threshold-and-count baseline).
	LowConf bool
	// Tracked reports whether the estimator accounted for this branch at
	// all.
	Tracked bool
}

// Estimator is the lifecycle interface implemented by every path confidence
// predictor in this package.
type Estimator interface {
	// BranchFetched accounts for a newly fetched control-flow instruction
	// and returns the token to present at resolve or squash.
	BranchFetched(ev BranchEvent) Contribution
	// BranchResolved removes a resolved branch's contribution.
	BranchResolved(c Contribution)
	// BranchSquashed removes a squashed branch's contribution.
	BranchSquashed(c Contribution)
	// BranchRetired trains the estimator with goodpath ground truth:
	// whether the branch's direction prediction was correct.
	BranchRetired(ev BranchEvent, correct bool)
	// Tick performs per-cycle periodic work.
	Tick(cycle uint64)
	// Reset returns the estimator to its post-construction state.
	Reset()
}
