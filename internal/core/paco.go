package core

import (
	"paco/internal/bitutil"
	"paco/internal/confidence"
)

// DefaultRefreshPeriod is the interval, in cycles, between MRT
// logarithmizations (paper footnote 5: 200,000 cycles; performance is not
// very sensitive to this value).
const DefaultRefreshPeriod = 200_000

// PaCoConfig parameterizes a PaCo estimator.
type PaCoConfig struct {
	// RefreshPeriod is the logarithmization interval in cycles.
	// Zero selects DefaultRefreshPeriod.
	RefreshPeriod uint64
	// InitialTable overrides the cold-start encoded-probability table.
	// Nil selects DefaultStaticProfile.
	InitialTable *[confidence.NumBuckets]uint32
}

// PaCo is the paper's probability-based path confidence predictor.
//
// It maintains a Mispredict Rate Table stratified by JRS MDC value, a table
// of 12-bit encoded correct-prediction probabilities refreshed periodically
// by the (Mitchell) log circuit, and a running integer sum of the encoded
// probabilities of all in-flight conditional branches. The sum is the
// encoded goodpath probability: P(goodpath) = 2^(-sum/1024).
type PaCo struct {
	cfg   PaCoConfig
	mrt   *MRT
	table [confidence.NumBuckets]uint32
	sum   int64

	lastRefresh uint64
	refreshes   uint64
}

// NewPaCo builds a PaCo estimator from cfg.
func NewPaCo(cfg PaCoConfig) *PaCo {
	if cfg.RefreshPeriod == 0 {
		cfg.RefreshPeriod = DefaultRefreshPeriod
	}
	p := &PaCo{cfg: cfg, mrt: NewMRT()}
	p.initTable()
	return p
}

func (p *PaCo) initTable() {
	if p.cfg.InitialTable != nil {
		p.table = *p.cfg.InitialTable
	} else {
		p.table = DefaultStaticProfile()
	}
}

// Reset implements Estimator.
func (p *PaCo) Reset() {
	p.mrt.Reset()
	p.initTable()
	p.sum = 0
	p.lastRefresh = 0
	p.refreshes = 0
}

// BranchFetched implements Estimator: the encoded probability of the
// branch's MDC bucket is added to the path confidence register.
func (p *PaCo) BranchFetched(ev BranchEvent) Contribution {
	if !ev.Conditional {
		return Contribution{}
	}
	enc := p.table[ev.MDC]
	p.sum += int64(enc)
	return Contribution{Encoded: enc, Tracked: true}
}

// BranchResolved implements Estimator: the contribution added at fetch is
// subtracted.
func (p *PaCo) BranchResolved(c Contribution) {
	if c.Tracked {
		p.sum -= int64(c.Encoded)
	}
}

// BranchSquashed implements Estimator. Squash and resolve are identical for
// the sum: the branch leaves the in-flight set.
func (p *PaCo) BranchSquashed(c Contribution) { p.BranchResolved(c) }

// BranchRetired implements Estimator: goodpath branches train the MRT.
func (p *PaCo) BranchRetired(ev BranchEvent, correct bool) {
	if !ev.Conditional {
		return
	}
	p.mrt.Record(ev.MDC, correct)
}

// Tick implements Estimator: every RefreshPeriod cycles the log circuit
// converts MRT counters into fresh encoded probabilities and the MRT
// resets. Buckets with no samples keep their previous encoding.
func (p *PaCo) Tick(cycle uint64) {
	if cycle-p.lastRefresh < p.cfg.RefreshPeriod {
		return
	}
	p.lastRefresh = cycle
	p.Refresh()
}

// Refresh forces an immediate logarithmization, independent of the periodic
// schedule. Exposed for tests and for warm-starting experiments.
func (p *PaCo) Refresh() {
	for mdc := uint32(0); mdc < confidence.NumBuckets; mdc++ {
		if enc, ok := p.mrt.Encode(mdc); ok {
			p.table[mdc] = enc
		}
	}
	p.mrt.Reset()
	p.refreshes++
}

// EncodedSum returns the current path confidence register value: the sum of
// encoded probabilities of all in-flight conditional branches. Zero means
// certainly on goodpath; larger means less confident.
func (p *PaCo) EncodedSum() int64 { return p.sum }

// GoodpathProb decodes the register into a real probability in [0, 1].
// Hardware never does this (applications compare the encoded sum against a
// pre-encoded threshold); it exists for measurement.
func (p *PaCo) GoodpathProb() float64 { return bitutil.DecodeProb(p.sum) }

// Table returns the current encoded-probability table (copy).
func (p *PaCo) Table() [confidence.NumBuckets]uint32 { return p.table }

// MRTCounts exposes a bucket's raw counters for inspection.
func (p *PaCo) MRTCounts(mdc uint32) (correct, mispred uint32) {
	return p.mrt.Counts(mdc)
}

// Refreshes returns how many logarithmizations have run.
func (p *PaCo) Refreshes() uint64 { return p.refreshes }

var _ Estimator = (*PaCo)(nil)
