package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint32() != b.Uint32() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 equal outputs", same)
	}
}

func TestStreamsDiffer(t *testing.T) {
	a, b := NewStream(7, 1), NewStream(7, 2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different streams produced %d/100 equal outputs", same)
	}
}

func TestForkIndependence(t *testing.T) {
	a := New(9)
	f := a.Fork()
	// The fork must not replay the parent.
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint32() == f.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("fork tracked parent: %d/100 equal", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(4)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %.4f, want ~0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(6)
	for _, p := range []float64{0.1, 0.5, 0.9} {
		hits := 0
		const n = 100000
		for i := 0; i < n; i++ {
			if r.Bool(p) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-p) > 0.01 {
			t.Fatalf("Bool(%v) rate %.4f", p, got)
		}
	}
	if r.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(7)
	const p = 0.25
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(p))
	}
	mean := sum / n
	want := (1 - p) / p // failures before first success
	if math.Abs(mean-want) > 0.1 {
		t.Fatalf("Geometric(%v) mean %.3f, want ~%.3f", p, mean, want)
	}
	if r.Geometric(1) != 0 {
		t.Fatal("Geometric(1) must be 0")
	}
}

func TestRange(t *testing.T) {
	r := New(8)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Range(3, 7)
		if v < 3 || v > 7 {
			t.Fatalf("Range(3,7) = %d", v)
		}
		seen[v] = true
	}
	for v := 3; v <= 7; v++ {
		if !seen[v] {
			t.Fatalf("Range never produced %d", v)
		}
	}
}

func TestWeightedChoice(t *testing.T) {
	r := New(9)
	w := NewWeightedChoice([]float64{1, 0, 3})
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[w.Sample(r)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index sampled %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.2 {
		t.Fatalf("weight ratio %.2f, want ~3", ratio)
	}
	if w.Len() != 3 {
		t.Fatalf("Len = %d", w.Len())
	}
}

func TestWeightedChoicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-total weights did not panic")
		}
	}()
	NewWeightedChoice([]float64{0, -1})
}

func TestUint32Uniformity(t *testing.T) {
	// Chi-squared over 16 buckets of the top nibble.
	r := New(10)
	var counts [16]int
	const n = 160000
	for i := 0; i < n; i++ {
		counts[r.Uint32()>>28]++
	}
	expected := float64(n) / 16
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 15 dof; 99.9th percentile ~37.7.
	if chi2 > 37.7 {
		t.Fatalf("chi-squared %.1f suggests non-uniform output", chi2)
	}
}
