// Package rng provides a small, fast, deterministic pseudo-random number
// generator used throughout the simulator.
//
// The simulator must be exactly reproducible across runs and Go releases, so
// it cannot depend on math/rand's unspecified sequence evolution. PCG32
// (O'Neill, "PCG: A Family of Simple Fast Space-Efficient Statistically Good
// Algorithms for Random Number Generation") is used: a 64-bit LCG state with
// an output permutation, no global state, value-sized and cheap to fork.
package rng

import "math/bits"

// RNG is a PCG32 generator. The zero value is not valid; use New.
type RNG struct {
	state uint64
	inc   uint64 // stream selector; must be odd
}

const (
	pcgMultiplier = 6364136223846793005
	pcgIncrement  = 1442695040888963407
)

// New returns a generator seeded from seed on the default stream.
func New(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed, 0)
	return r
}

// NewStream returns a generator seeded from seed on the given stream.
// Generators with the same seed but different streams produce independent
// sequences.
func NewStream(seed, stream uint64) *RNG {
	r := &RNG{}
	r.Seed(seed, stream)
	return r
}

// Seed resets the generator to a deterministic function of seed and stream.
func (r *RNG) Seed(seed, stream uint64) {
	r.inc = (stream<<1 + pcgIncrement) | 1
	r.state = 0
	r.Uint32()
	r.state += seed
	r.Uint32()
}

// Fork returns a new generator deterministically derived from r's current
// state, advancing r. Forked generators evolve independently.
func (r *RNG) Fork() *RNG {
	return NewStream(r.Uint64(), r.Uint64())
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *RNG) Uint32() uint32 {
	old := r.state
	r.state = old*pcgMultiplier + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint(old >> 59)
	return bits.RotateLeft32(xorshifted, -int(rot))
}

// Uint64 returns the next 64 uniformly distributed bits: two Uint32 draws
// with the generator steps fused so the whole function stays inlinable
// (the simulator kernel draws in hot per-instruction loops).
func (r *RNG) Uint64() uint64 {
	s1 := r.state
	s2 := s1*pcgMultiplier + r.inc
	r.state = s2*pcgMultiplier + r.inc
	hi := bits.RotateLeft32(uint32(((s1>>18)^s1)>>27), -int(s1>>59))
	lo := bits.RotateLeft32(uint32(((s2>>18)^s2)>>27), -int(s2>>59))
	return uint64(hi)<<32 | uint64(lo)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.boundedUint32(uint32(n)))
}

// boundedUint32 returns a uniform value in [0, bound) using Lemire's
// multiply-shift rejection method.
func (r *RNG) boundedUint32(bound uint32) uint32 {
	for {
		v := r.Uint32()
		m := uint64(v) * uint64(bound)
		lo := uint32(m)
		if lo >= bound {
			return uint32(m >> 32)
		}
		// Rejection zone: recompute the threshold once and retry until
		// outside it.
		threshold := -bound % bound
		if lo >= threshold {
			return uint32(m >> 32)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// boolOpen is Bool for p already known to lie in (0, 1): the same single
// Float64 draw without the range branches, small enough to inline into
// per-instruction loops.
func (r *RNG) boolOpen(p float64) bool {
	return r.Float64() < p
}

// Geometric returns a sample from a geometric distribution with success
// probability p, i.e. the number of failures before the first success.
// For p <= 0 it returns a large bounded value instead of blocking.
func (r *RNG) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		return 1 << 20
	}
	n := 0
	for !r.boolOpen(p) {
		n++
		if n >= 1<<20 {
			break
		}
	}
	return n
}

// Range returns a uniform integer in [lo, hi] inclusive. It panics if
// hi < lo.
func (r *RNG) Range(lo, hi int) int {
	if hi < lo {
		panic("rng: Range with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// WeightedChoice returns an index in [0, len(weights)) with probability
// proportional to weights[i]. Zero or negative weights are treated as zero.
// It panics if the total weight is not positive.
type WeightedChoice struct {
	cum []float64
}

// NewWeightedChoice builds a sampler over the given weights.
func NewWeightedChoice(weights []float64) *WeightedChoice {
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w > 0 {
			total += w
		}
		cum[i] = total
	}
	if total <= 0 {
		panic("rng: WeightedChoice with non-positive total weight")
	}
	return &WeightedChoice{cum: cum}
}

// Sample draws one index using r.
func (w *WeightedChoice) Sample(r *RNG) int {
	total := w.cum[len(w.cum)-1]
	x := r.Float64() * total
	// Binary search for the first cumulative weight exceeding x.
	lo, hi := 0, len(w.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if w.cum[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Len reports the number of choices.
func (w *WeightedChoice) Len() int { return len(w.cum) }
