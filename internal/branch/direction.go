package branch

import "paco/internal/bitutil"

// A DirectionPredictor predicts conditional branch directions. Predict is
// called at fetch with the branch PC and the current speculative global
// history; Update is called at retire with the same PC/history the
// prediction used and the actual outcome.
type DirectionPredictor interface {
	// Predict returns the predicted direction for the branch at pc given
	// the global history at prediction time.
	Predict(pc uint64, history uint32) bool
	// Update trains the predictor with the resolved outcome. history must
	// be the history value that Predict saw.
	Update(pc uint64, history uint32, taken bool)
}

// Bimodal is a classic table of 2-bit saturating counters indexed by the
// low bits of the branch PC.
type Bimodal struct {
	counters []bitutil.SatCounter
	mask     uint64
}

// NewBimodal returns a bimodal predictor with the given number of entries
// (rounded up to a power of two). Counters initialize to weakly taken.
func NewBimodal(entries int) *Bimodal {
	n := nextPow2(entries)
	b := &Bimodal{counters: make([]bitutil.SatCounter, n), mask: uint64(n - 1)}
	for i := range b.counters {
		b.counters[i] = bitutil.NewSatCounter(2, 2)
	}
	return b
}

func (b *Bimodal) index(pc uint64) uint64 { return (pc >> 2) & b.mask }

// Predict implements DirectionPredictor.
func (b *Bimodal) Predict(pc uint64, _ uint32) bool {
	return b.counters[b.index(pc)].MSB()
}

// Update implements DirectionPredictor.
func (b *Bimodal) Update(pc uint64, _ uint32, taken bool) {
	c := &b.counters[b.index(pc)]
	if taken {
		c.Inc()
	} else {
		c.Dec()
	}
}

// Gshare XORs the branch PC with the global history to index a table of
// 2-bit counters, capturing history-correlated behaviour.
type Gshare struct {
	counters []bitutil.SatCounter
	mask     uint64
}

// NewGshare returns a gshare predictor with the given number of entries
// (rounded up to a power of two).
func NewGshare(entries int) *Gshare {
	n := nextPow2(entries)
	g := &Gshare{counters: make([]bitutil.SatCounter, n), mask: uint64(n - 1)}
	for i := range g.counters {
		g.counters[i] = bitutil.NewSatCounter(2, 2)
	}
	return g
}

func (g *Gshare) index(pc uint64, history uint32) uint64 {
	return ((pc >> 2) ^ uint64(history)) & g.mask
}

// Predict implements DirectionPredictor.
func (g *Gshare) Predict(pc uint64, history uint32) bool {
	return g.counters[g.index(pc, history)].MSB()
}

// Update implements DirectionPredictor.
func (g *Gshare) Update(pc uint64, history uint32, taken bool) {
	c := &g.counters[g.index(pc, history)]
	if taken {
		c.Inc()
	} else {
		c.Dec()
	}
}

// Tournament is the hybrid predictor of Table 6: a gshare component, a
// bimodal component, and a selector table of 2-bit counters (indexed like
// gshare) that learns which component to trust per branch.
type Tournament struct {
	gshare   *Gshare
	bimodal  *Bimodal
	selector []bitutil.SatCounter
	selMask  uint64
}

// TournamentConfig sizes the three component tables in entries. The paper's
// configuration is 32KB each of 2-bit counters: 128K entries per table, with
// 8 bits of global history.
type TournamentConfig struct {
	GshareEntries   int
	BimodalEntries  int
	SelectorEntries int
}

// DefaultTournamentConfig is the paper's Table 6 predictor: 96KB hybrid
// made of 32KB gshare + 32KB bimodal + 32KB selector.
func DefaultTournamentConfig() TournamentConfig {
	const entriesPer32KB = 32 * 1024 * 4 // 4 two-bit counters per byte
	return TournamentConfig{
		GshareEntries:   entriesPer32KB,
		BimodalEntries:  entriesPer32KB,
		SelectorEntries: entriesPer32KB,
	}
}

// NewTournament builds a tournament predictor from cfg. Selector counters
// initialize to weakly-prefer-gshare.
func NewTournament(cfg TournamentConfig) *Tournament {
	n := nextPow2(cfg.SelectorEntries)
	t := &Tournament{
		gshare:   NewGshare(cfg.GshareEntries),
		bimodal:  NewBimodal(cfg.BimodalEntries),
		selector: make([]bitutil.SatCounter, n),
		selMask:  uint64(n - 1),
	}
	for i := range t.selector {
		t.selector[i] = bitutil.NewSatCounter(2, 2) // MSB set: use gshare
	}
	return t
}

func (t *Tournament) selIndex(pc uint64, history uint32) uint64 {
	return ((pc >> 2) ^ uint64(history)) & t.selMask
}

// Predict implements DirectionPredictor.
func (t *Tournament) Predict(pc uint64, history uint32) bool {
	if t.selector[t.selIndex(pc, history)].MSB() {
		return t.gshare.Predict(pc, history)
	}
	return t.bimodal.Predict(pc, history)
}

// Update implements DirectionPredictor. Both components always train; the
// selector moves toward the component that was correct when they disagree.
func (t *Tournament) Update(pc uint64, history uint32, taken bool) {
	gp := t.gshare.Predict(pc, history)
	bp := t.bimodal.Predict(pc, history)
	if gp != bp {
		sel := &t.selector[t.selIndex(pc, history)]
		if gp == taken {
			sel.Inc()
		} else {
			sel.Dec()
		}
	}
	t.gshare.Update(pc, history, taken)
	t.bimodal.Update(pc, history, taken)
}

func nextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
