// Package branch implements the front-end branch prediction machinery of
// the simulated processor: two-bit bimodal and gshare direction predictors,
// the tournament (hybrid) predictor from the paper's Table 6, a
// set-associative branch target buffer, a return address stack, and a
// speculative global history register with checkpoint/restore.
package branch

// History is a global branch history register (GHR). It is updated
// speculatively at fetch with the *predicted* direction and restored from a
// checkpoint when a mispredicted branch squashes younger state, so the
// predictor tables always see the history the hardware would.
type History struct {
	bits  uint32
	width uint
	mask  uint32
}

// NewHistory returns a history register with the given width in bits
// (1..32).
func NewHistory(width uint) *History {
	if width == 0 || width > 32 {
		panic("branch: history width out of range")
	}
	return &History{width: width, mask: uint32(1<<width - 1)}
}

// Push shifts a direction into the history (true = taken).
func (h *History) Push(taken bool) {
	h.bits <<= 1
	if taken {
		h.bits |= 1
	}
	h.bits &= h.mask
}

// Value returns the current history bits.
func (h *History) Value() uint32 { return h.bits }

// Width returns the configured width in bits.
func (h *History) Width() uint { return h.width }

// Checkpoint captures the current history for later restore.
func (h *History) Checkpoint() uint32 { return h.bits }

// Restore rewinds the history to a previously captured checkpoint.
func (h *History) Restore(cp uint32) { h.bits = cp & h.mask }
