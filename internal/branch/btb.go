package branch

// BTB is a set-associative branch target buffer with true-LRU replacement.
// It predicts the target of taken branches, indirect jumps and calls.
// Indirect control flow mispredicts whenever the stored target differs from
// the actual one — the mechanism behind perlbmk's hot indirect call in the
// paper. Badpath fills pollute the BTB, which is one of the pollution
// effects the paper observes conservative gating removing.
type BTB struct {
	sets    [][]btbEntry
	setMask uint64
	ways    int

	lookups uint64
	hits    uint64
}

type btbEntry struct {
	valid  bool
	tag    uint64
	target uint64
	lru    uint64 // higher = more recently used
}

// NewBTB returns a BTB with the given total entries (rounded to a power of
// two) and associativity.
func NewBTB(entries, ways int) *BTB {
	if ways <= 0 {
		panic("branch: BTB ways must be positive")
	}
	setCount := nextPow2(entries / ways)
	if setCount < 1 {
		setCount = 1
	}
	b := &BTB{
		sets:    make([][]btbEntry, setCount),
		setMask: uint64(setCount - 1),
		ways:    ways,
	}
	for i := range b.sets {
		b.sets[i] = make([]btbEntry, ways)
	}
	return b
}

func (b *BTB) setFor(pc uint64) ([]btbEntry, uint64) {
	idx := (pc >> 2) & b.setMask
	tag := pc >> 2 >> uint64(len64(b.setMask))
	return b.sets[idx], tag
}

// Lookup returns the predicted target for pc, and whether an entry exists.
func (b *BTB) Lookup(pc uint64) (target uint64, ok bool) {
	b.lookups++
	set, tag := b.setFor(pc)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			b.hits++
			b.touch(set, i)
			return set[i].target, true
		}
	}
	return 0, false
}

// Insert records (or refreshes) the target for pc, evicting the LRU way on
// conflict.
func (b *BTB) Insert(pc, target uint64) {
	set, tag := b.setFor(pc)
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].target = target
			b.touch(set, i)
			return
		}
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = btbEntry{valid: true, tag: tag, target: target}
	b.touch(set, victim)
}

func (b *BTB) touch(set []btbEntry, i int) {
	maxLRU := uint64(0)
	for j := range set {
		if set[j].lru > maxLRU {
			maxLRU = set[j].lru
		}
	}
	set[i].lru = maxLRU + 1
}

// Stats returns lifetime lookup and hit counts.
func (b *BTB) Stats() (lookups, hits uint64) { return b.lookups, b.hits }

// RAS is a fixed-depth return address stack with wrap-around overflow, the
// usual hardware behaviour. Speculative pushes/pops are not repaired on
// squash (a common simplification that slightly raises return mispredicts
// after deep wrong paths).
type RAS struct {
	entries []uint64
	top     int
	depth   int
}

// NewRAS returns a return address stack with the given depth.
func NewRAS(depth int) *RAS {
	if depth <= 0 {
		panic("branch: RAS depth must be positive")
	}
	return &RAS{entries: make([]uint64, depth), depth: depth}
}

// Push records a return address (on call fetch).
func (r *RAS) Push(addr uint64) {
	r.top = (r.top + 1) % r.depth
	r.entries[r.top] = addr
}

// Pop predicts the return target (on return fetch).
func (r *RAS) Pop() uint64 {
	addr := r.entries[r.top]
	r.top = (r.top - 1 + r.depth) % r.depth
	return addr
}

func len64(mask uint64) int {
	n := 0
	for mask != 0 {
		n++
		mask >>= 1
	}
	return n
}
