package branch

import (
	"testing"
	"testing/quick"

	"paco/internal/rng"
)

func TestHistoryPushRestore(t *testing.T) {
	h := NewHistory(8)
	h.Push(true)
	h.Push(false)
	h.Push(true)
	if h.Value() != 0b101 {
		t.Fatalf("history = %b, want 101", h.Value())
	}
	cp := h.Checkpoint()
	h.Push(true)
	h.Push(true)
	h.Restore(cp)
	if h.Value() != 0b101 {
		t.Fatalf("restored history = %b", h.Value())
	}
}

func TestHistoryMasks(t *testing.T) {
	h := NewHistory(4)
	for i := 0; i < 100; i++ {
		h.Push(true)
	}
	if h.Value() != 0xF {
		t.Fatalf("4-bit history = %x", h.Value())
	}
	if h.Width() != 4 {
		t.Fatalf("width = %d", h.Width())
	}
}

func TestHistoryWidthPanics(t *testing.T) {
	for _, w := range []uint{0, 33} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("width %d did not panic", w)
				}
			}()
			NewHistory(w)
		}()
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	b := NewBimodal(1024)
	pc := uint64(0x4000)
	for i := 0; i < 10; i++ {
		b.Update(pc, 0, false)
	}
	if b.Predict(pc, 0) {
		t.Fatal("bimodal failed to learn a never-taken branch")
	}
	for i := 0; i < 10; i++ {
		b.Update(pc, 0, true)
	}
	if !b.Predict(pc, 0) {
		t.Fatal("bimodal failed to relearn a taken branch")
	}
}

func TestBimodalHysteresis(t *testing.T) {
	b := NewBimodal(64)
	pc := uint64(0x40)
	for i := 0; i < 5; i++ {
		b.Update(pc, 0, true)
	}
	// One not-taken must not flip a saturated taken prediction.
	b.Update(pc, 0, false)
	if !b.Predict(pc, 0) {
		t.Fatal("2-bit counter flipped after a single contrary outcome")
	}
}

func TestGshareUsesHistory(t *testing.T) {
	g := NewGshare(4096)
	pc := uint64(0x8000)
	// Outcome = function of history: taken iff history == 0b1.
	for i := 0; i < 50; i++ {
		g.Update(pc, 1, true)
		g.Update(pc, 2, false)
	}
	if !g.Predict(pc, 1) || g.Predict(pc, 2) {
		t.Fatal("gshare failed to separate outcomes by history")
	}
}

func TestTournamentSelectsBetterComponent(t *testing.T) {
	tp := NewTournament(TournamentConfig{GshareEntries: 4096, BimodalEntries: 4096, SelectorEntries: 4096})
	pc := uint64(0xc000)
	// History-correlated branch: gshare can learn it, bimodal cannot.
	for i := 0; i < 200; i++ {
		hist := uint32(i % 4)
		taken := hist&1 == 1
		// Train with the same (pc, hist) the prediction would use.
		tp.Update(pc, hist, taken)
	}
	correct := 0
	for i := 0; i < 100; i++ {
		hist := uint32(i % 4)
		taken := hist&1 == 1
		if tp.Predict(pc, hist) == taken {
			correct++
		}
		tp.Update(pc, hist, taken)
	}
	if correct < 95 {
		t.Fatalf("tournament got %d/100 on a gshare-learnable branch", correct)
	}
}

func TestTournamentBiasedAccuracy(t *testing.T) {
	tp := NewTournament(DefaultTournamentConfig())
	r := rng.New(11)
	pc := uint64(0x1234)
	misses := 0
	const n = 20000
	hist := uint32(0)
	for i := 0; i < n; i++ {
		taken := r.Bool(0.98)
		if tp.Predict(pc, hist) != taken {
			misses++
		}
		tp.Update(pc, hist, taken)
		hist = hist<<1 | b2u(taken)&0xFF
	}
	rate := float64(misses) / n
	if rate > 0.06 {
		t.Fatalf("mispredict rate %.3f on a 98%%-biased branch", rate)
	}
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func TestBTBHitAfterInsert(t *testing.T) {
	b := NewBTB(256, 4)
	b.Insert(0x1000, 0x2000)
	tgt, ok := b.Lookup(0x1000)
	if !ok || tgt != 0x2000 {
		t.Fatalf("lookup = %x,%v", tgt, ok)
	}
	if _, ok := b.Lookup(0x1004); ok {
		t.Fatal("lookup of never-inserted PC hit")
	}
}

func TestBTBUpdateTarget(t *testing.T) {
	b := NewBTB(256, 4)
	b.Insert(0x1000, 0x2000)
	b.Insert(0x1000, 0x3000)
	tgt, ok := b.Lookup(0x1000)
	if !ok || tgt != 0x3000 {
		t.Fatalf("updated target = %x,%v", tgt, ok)
	}
}

func TestBTBLRUEviction(t *testing.T) {
	// Direct construction of conflict: one set, two ways.
	b := NewBTB(2, 2)
	b.Insert(0x10, 1)
	b.Insert(0x20, 2) // same set (single-set BTB)... depends on mapping
	b.Insert(0x30, 3)
	hits := 0
	for _, pc := range []uint64{0x10, 0x20, 0x30} {
		if _, ok := b.Lookup(pc); ok {
			hits++
		}
	}
	if hits > 2 {
		t.Fatalf("2-way single-set BTB held %d entries", hits)
	}
}

func TestBTBStats(t *testing.T) {
	b := NewBTB(64, 2)
	b.Insert(0x40, 0x80)
	b.Lookup(0x40)
	b.Lookup(0x44)
	lookups, hits := b.Stats()
	if lookups != 2 || hits != 1 {
		t.Fatalf("stats = %d lookups, %d hits", lookups, hits)
	}
}

func TestRASLIFO(t *testing.T) {
	r := NewRAS(8)
	r.Push(1)
	r.Push(2)
	r.Push(3)
	for want := uint64(3); want >= 1; want-- {
		if got := r.Pop(); got != want {
			t.Fatalf("Pop = %d, want %d", got, want)
		}
	}
}

func TestRASWrapAround(t *testing.T) {
	r := NewRAS(4)
	for i := uint64(1); i <= 6; i++ {
		r.Push(i)
	}
	// Depth 4: pushes 3..6 survive, oldest overwritten.
	if got := r.Pop(); got != 6 {
		t.Fatalf("top = %d", got)
	}
	if got := r.Pop(); got != 5 {
		t.Fatalf("second = %d", got)
	}
}

// TestBTBProperty: inserting then immediately looking up always hits with
// the inserted target (no silent drops), for arbitrary PCs.
func TestBTBProperty(t *testing.T) {
	b := NewBTB(1024, 4)
	if err := quick.Check(func(pc, target uint64) bool {
		b.Insert(pc, target)
		got, ok := b.Lookup(pc)
		return ok && got == target
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
