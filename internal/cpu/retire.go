package cpu

import (
	"paco/internal/confidence"
	"paco/internal/workload"
)

// retire commits up to RetireWidth finished instructions in program order,
// rotating fairly among threads. Only goodpath instructions ever retire
// (badpath instructions are squashed before reaching the ROB head); retire
// is where predictor training happens.
func (c *Core) retire() {
	budget := c.cfg.RetireWidth
	n := len(c.threads)
	idx := int(c.cycle) % n
	for i := 0; i < n && budget > 0; i++ {
		t := c.threads[idx]
		idx++
		if idx == n {
			idx = 0
		}
		for budget > 0 && t.head < t.tail {
			e := t.entry(t.head)
			if !e.valid || e.seq != t.head || !e.done {
				break
			}
			c.commit(t, e)
			e.valid = false
			t.head++
			c.robCount--
			budget--
		}
	}
}

// commit applies one retiring instruction's training and statistics.
func (c *Core) commit(t *thread, e *robEntry) {
	if e.badpath {
		panic("cpu: badpath instruction reached retirement")
	}
	st := &t.stats
	st.RetiredGood++
	if e.isControl {
		st.CtrlRetired++
		correct := !e.mispredicted
		if !correct {
			st.CtrlMispredicts++
		}
		if e.conditional {
			if c.probeRetire != nil {
				c.probeRetire(e.ins.StaticID, correct)
			}
			st.CondRetired++
			if !correct {
				st.CondMispredicts++
			}
			if e.mdc < confidence.NumBuckets {
				if correct {
					st.BucketCorrect[e.mdc]++
				} else {
					st.BucketMispred[e.mdc]++
				}
			}
			// Train the direction predictor, the JRS confidence table and
			// the path confidence estimators on goodpath outcomes.
			c.pred.Update(e.ins.PC, e.histAtPred, e.ins.Taken)
			c.jrs.Update(e.ins.PC, e.histAtPred, e.predTaken, correct)
			if c.perceptron != nil {
				c.perceptron.Update(e.ins.PC, e.histAtPred, correct)
			}
		}
		ev := c.eventFor(e)
		for i := range t.ests {
			t.ests[i].BranchRetired(ev, correct)
		}
		// Train the BTB with goodpath targets (indirect control flow and
		// taken branches).
		switch e.ins.Kind {
		case workload.KindIndirect:
			c.btb.Insert(e.ins.PC, e.ins.NextPC)
		case workload.KindBranch:
			if e.ins.Taken {
				c.btb.Insert(e.ins.PC, e.ins.NextPC)
			}
		}
	}
}
