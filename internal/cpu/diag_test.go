package cpu

import (
	"testing"

	"paco/internal/workload"
)

// TestDiagClassRates prints per-branch-class mispredict rates to verify the
// workload generator classes behave as designed (biased ~1.5%, loop ~1/trip,
// pattern/correlated ~0 after warmup, noisy ~eps, random ~50%).
func TestDiagClassRates(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic sweep")
	}
	for _, name := range workload.BenchmarkNames {
		spec := workload.MustBenchmark(name)
		c, err := New(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		tid, err := c.AddThread(spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Count retire-time mispredicts by static branch.
		type agg struct{ exec, misp uint64 }
		byID := map[int]*agg{}
		c.probeRetire = func(staticID int, correct bool) {
			a := byID[staticID]
			if a == nil {
				a = &agg{}
				byID[staticID] = a
			}
			a.exec++
			if !correct {
				a.misp++
			}
		}
		c.Run(400_000, 0) // warmup
		byID = map[int]*agg{}
		c.ResetStats()
		c.Run(1_000_000, 0)
		classes := map[workload.BranchClass]*agg{}
		for _, bs := range c.Walker(tid).BranchStats() {
			a := byID[bs.ID]
			if a == nil {
				continue
			}
			ca := classes[bs.Class]
			if ca == nil {
				ca = &agg{}
				classes[bs.Class] = ca
			}
			ca.exec += a.exec
			ca.misp += a.misp
		}
		st := c.ThreadStats(tid)
		t.Logf("%s: IPC=%.2f condMR=%.2f%% ctrlMR=%.2f%% condRetired=%d", name, c.IPC(tid), st.CondMispredictRate(), st.CtrlMispredictRate(), st.CondRetired)
		for cls, a := range classes {
			t.Logf("  %-10s exec=%-8d mispredict=%.2f%%", cls, a.exec, 100*float64(a.misp)/float64(a.exec))
		}
	}
}
