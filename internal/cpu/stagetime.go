package cpu

import "time"

// StageTimes accumulates wall-clock time per pipeline stage across
// StepTimed calls. The perf harness uses it to attribute kernel cost to
// stages; the instrumentation overhead (two clock reads per stage) makes
// StepTimed slower than Step, so throughput is measured separately with
// the untimed loop and StageTimes supplies only the relative breakdown.
type StageTimes struct {
	Estimators time.Duration
	Complete   time.Duration
	Arrive     time.Duration
	Issue      time.Duration
	Retire     time.Duration
	Fetch      time.Duration
	Cycles     uint64
}

// Total returns the summed stage time.
func (st *StageTimes) Total() time.Duration {
	return st.Estimators + st.Complete + st.Arrive + st.Issue + st.Retire + st.Fetch
}

// Fractions returns each stage's share of the summed stage time, keyed by
// stage name. An empty map is returned when nothing was measured.
func (st *StageTimes) Fractions() map[string]float64 {
	total := st.Total()
	if total <= 0 {
		return map[string]float64{}
	}
	return map[string]float64{
		"estimators": float64(st.Estimators) / float64(total),
		"complete":   float64(st.Complete) / float64(total),
		"arrive":     float64(st.Arrive) / float64(total),
		"issue":      float64(st.Issue) / float64(total),
		"retire":     float64(st.Retire) / float64(total),
		"fetch":      float64(st.Fetch) / float64(total),
	}
}

// StepTimed simulates one cycle like Step, accumulating per-stage wall
// time into st.
func (c *Core) StepTimed(st *StageTimes) {
	t0 := time.Now()
	for _, t := range c.threads {
		for _, e := range t.ests {
			e.Tick(c.cycle)
		}
	}
	t1 := time.Now()
	st.Estimators += t1.Sub(t0)
	c.complete()
	t2 := time.Now()
	st.Complete += t2.Sub(t1)
	c.arrive()
	t3 := time.Now()
	st.Arrive += t3.Sub(t2)
	c.issue()
	t4 := time.Now()
	st.Issue += t4.Sub(t3)
	c.retire()
	t5 := time.Now()
	st.Retire += t5.Sub(t4)
	c.fetch()
	st.Fetch += time.Since(t5)
	c.cycle++
	c.stats.Cycles++
	st.Cycles++
}
