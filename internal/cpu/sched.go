package cpu

// readyQueue is the scheduler's age-ordered ready structure: a slice kept
// sorted oldest-first, consumed from the front. issue pops the global
// oldest ready instruction in O(1) instead of the O(n) scan the seed's
// flat list needed per function unit, and pushes are usually O(1) too —
// newly arrived instructions carry the highest seq and append at the end;
// only wakeups of older instructions pay an insertion memmove over the
// few dozen live refs. Refs invalidated by squashes are discarded lazily
// at pop, against the same validity predicate the flat list used, so the
// issued instruction sequence is identical.
type readyQueue struct {
	refs  []ref
	start int // refs[start:] is the live queue, oldest first
}

func (q *readyQueue) len() int { return len(q.refs) - q.start }

func (q *readyQueue) push(r ref) {
	// Slide the live window back to the front instead of growing past
	// cap: once the backing array has reached the steady-state high-water
	// mark, pushes never allocate again.
	if len(q.refs) == cap(q.refs) && q.start > 0 {
		n := copy(q.refs, q.refs[q.start:])
		q.refs = q.refs[:n]
		q.start = 0
	}
	// Common case: r is the youngest ref in the queue.
	if n := len(q.refs); n == q.start || older(q.refs[n-1], r) {
		q.refs = append(q.refs, r)
		return
	}
	// Binary search for the first ref older than r; insert before it.
	lo, hi := q.start, len(q.refs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if older(r, q.refs[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	q.refs = append(q.refs, ref{})
	copy(q.refs[lo+1:], q.refs[lo:])
	q.refs[lo] = r
}

func (q *readyQueue) pop() ref {
	r := q.refs[q.start]
	q.start++
	if q.start == len(q.refs) {
		q.refs = q.refs[:0]
		q.start = 0
	}
	return r
}

// waiterNode is one link of a producer's intrusive dependency list. Nodes
// live in a per-thread arena recycled through a free list: registering or
// waking a dependence edge never allocates once the arena has grown to the
// thread's steady-state edge population (at most two edges per in-flight
// instruction, so roughly 2xROB entries).
//
// Index 0 is a reserved sentinel meaning "no node", so the zero value of
// robEntry.waiterHead is an empty list.
type waiterNode struct {
	seq  uint64 // the waiting instruction
	next int32  // next node in the same producer's list (0 = end)
}

// allocWaiter takes a node from the free list (growing the arena when
// empty) and links it in front of next.
func (t *thread) allocWaiter(seq uint64, next int32) int32 {
	idx := t.waiterFree
	if idx != 0 {
		t.waiterFree = t.waiterNodes[idx].next
		t.waiterNodes[idx] = waiterNode{seq: seq, next: next}
		return idx
	}
	t.waiterNodes = append(t.waiterNodes, waiterNode{seq: seq, next: next})
	return int32(len(t.waiterNodes) - 1)
}

// freeWaiters returns a whole list to the free pool.
func (t *thread) freeWaiters(head int32) {
	for head != 0 {
		next := t.waiterNodes[head].next
		t.waiterNodes[head].next = t.waiterFree
		t.waiterFree = head
		head = next
	}
}
