package cpu

import (
	"paco/internal/core"
	"paco/internal/workload"
)

// Batch advances K independent cores that replay one shared instruction
// stream (workload.Tape) in lockstep. It is the kernel of the batched
// campaign path: grid cells that differ only in estimator or gating
// configuration share the expensive goodpath generation and pay only
// the cheap ring replay per lane.
//
// The cores are plain Cores — per-core state (structure-of-arrays
// across the batch: one predictor, ROB, cache hierarchy, estimator set
// per lane) is untouched, and each core sees exactly the instruction
// sequence, quota semantics, and cycle evolution it would see running
// alone. The scheduler only chooses *when* each core steps (always the
// laggard by tape position, one instruction quantum at a time, which
// bounds ring drift while preserving per-core cache locality); since a
// core's evolution is a pure function of its own state and the shared
// immutable stream, scheduling order cannot leak between lanes — the
// determinism argument behind the byte-identical-output guarantee.
//
// A Batch is single-goroutine, like a Core.
type Batch struct {
	tape  *workload.Tape
	cores []*Core
	done  []bool // scratch for Run; len == len(cores)
}

// batchQuantum is how many tape instructions a core consumes per
// scheduling turn. Larger quanta improve per-lane cache locality (a
// lane's hot state stays resident across the burst); smaller quanta
// bound how far cursors drift apart (ring memory). ~512 instructions is
// a few hundred KB of per-lane state touched per turn against a ring
// span of a few thousand entries.
const batchQuantum = 512

// NewBatch builds a batch over one workload stream. The spec is
// validated exactly as AddThread would (the error is NewWalker's).
func NewBatch(spec *workload.Spec) (*Batch, error) {
	tape, err := workload.NewTape(spec)
	if err != nil {
		return nil, err
	}
	return &Batch{tape: tape}, nil
}

// Tape returns the shared stream (diagnostics).
func (b *Batch) Tape() *workload.Tape { return b.tape }

// K returns the number of lanes (cores) attached.
func (b *Batch) K() int { return len(b.cores) }

// Core returns lane i's core.
func (b *Batch) Core(i int) *Core { return b.cores[i] }

// Attach adds a core as a batch lane: it gains one thread fed by a new
// tape cursor with the given estimators. Attach must precede Run (all
// cursors are created before consumption begins). The returned thread
// id mirrors AddThread's.
func (b *Batch) Attach(c *Core, ests []core.Estimator) (int, error) {
	cur := b.tape.NewCursor()
	tid, err := c.AddThreadCursor(cur, ests)
	if err != nil {
		// The unused cursor must not pin the ring at position zero.
		b.tape.DropCursor(cur)
		return 0, err
	}
	b.cores = append(b.cores, c)
	b.done = append(b.done, false)
	return tid, nil
}

// cursor returns lane i's tape cursor (every lane has exactly one
// cursor-fed thread, attached by Attach).
func (b *Batch) cursor(i int) *workload.Cursor { return b.cores[i].threads[0].cursor }

// Run simulates until every lane has retired goodInstrs further
// goodpath instructions — per-core semantics identical to calling
// Core.Run(goodInstrs, 0) on each lane in isolation. Lanes are
// interleaved laggard-first in quanta of batchQuantum tape
// instructions.
func (b *Batch) Run(goodInstrs uint64) {
	for i, c := range b.cores {
		c.prepareRun(goodInstrs)
		b.done[i] = c.runDone()
	}
	for {
		// Pick the unfinished lane that has consumed the least of the
		// shared stream; running it next keeps the ring span minimal.
		best := -1
		var bestPos uint64
		for i := range b.cores {
			if b.done[i] {
				continue
			}
			if p := b.cursor(i).Pos(); best < 0 || p < bestPos {
				best, bestPos = i, p
			}
		}
		if best < 0 {
			return
		}
		c, cur := b.cores[best], b.cursor(best)
		limit := cur.Pos() + batchQuantum
		for {
			c.Step()
			if c.runDone() {
				b.done[best] = true
				break
			}
			if cur.Pos() >= limit {
				break
			}
		}
	}
}

// FreeRun lifts every lane's retirement quota so cycle-driven stepping
// (StepTimed instrumentation after a quota run) fetches freely.
func (b *Batch) FreeRun() {
	for _, c := range b.cores {
		c.unboundQuota()
	}
}

// StepTimed advances every lane one cycle with per-stage timing
// accumulated into st (st.Cycles counts core-cycles, i.e. K per call).
// Per-cycle lockstep keeps tape drift at fetch-width scale, at the cost
// of the cache locality the quantum scheduler buys — acceptable for the
// short instrumented pass that only measures relative stage cost.
func (b *Batch) StepTimed(st *StageTimes) {
	for _, c := range b.cores {
		c.StepTimed(st)
	}
}
