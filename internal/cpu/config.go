// Package cpu implements the cycle-level out-of-order superscalar processor
// model the paper evaluates on: speculative fetch with branch prediction and
// wrong-path execution, rename/dispatch into a shared scheduler and reorder
// buffer, latency-accurate execution with a cache hierarchy, in-order
// retirement, and squash/recovery on branch misprediction. The same core
// runs one hardware thread (the paper's 4-wide configuration, Table 6) or
// several (the 8-wide SMT configuration, Table 11) with a pluggable fetch
// policy, and exposes the goodpath oracle and instance probes PaCo's
// evaluation needs.
package cpu

import (
	"paco/internal/branch"
	"paco/internal/cache"
	"paco/internal/confidence"
)

// Config describes one simulated core.
type Config struct {
	// FetchWidth is the maximum instructions fetched per cycle; the fetch
	// group also ends at taken control flow and I-cache misses.
	FetchWidth int
	// RetireWidth is the maximum instructions retired per cycle.
	RetireWidth int
	// ROBSize is the reorder buffer capacity, dynamically shared among
	// threads.
	ROBSize int
	// SchedSize is the scheduler capacity, dynamically shared.
	SchedSize int
	// FUCount is the number of identical general-purpose function units.
	FUCount int
	// FrontEndDepth is the number of cycles between an instruction being
	// fetched and it becoming eligible to issue (decode/rename/dispatch
	// stages). During this window the front end keeps fetching down a
	// mispredicted path — it is what creates wrong-path work.
	FrontEndDepth uint64
	// MispredictPenalty is the additional redirect-to-fetch delay after a
	// misprediction is discovered at execute (front-end refill). The
	// total minimum misprediction cost is FrontEndDepth + execute +
	// MispredictPenalty; the defaults give the paper's ">= 10 cycles"
	// (Table 6) and ">= 20 cycles" (Table 11).
	MispredictPenalty uint64
	// Predictor sizes the tournament direction predictor.
	Predictor branch.TournamentConfig
	// JRS sizes the confidence table.
	JRS confidence.Config
	// Memory sizes the cache hierarchy.
	Memory cache.HierarchyConfig
	// BTBEntries and BTBWays size the branch target buffer.
	BTBEntries, BTBWays int
	// PerceptronStratifier replaces the JRS MDC with a perceptron
	// confidence bucket (Akkary et al.) as the estimators' stratifier —
	// the "better stratifier" extension the paper's Related Work
	// anticipates. The JRS table still trains (for diagnostics), but
	// BranchEvent.MDC carries the perceptron bucket.
	PerceptronStratifier bool
	// RASDepth sizes the return address stack.
	RASDepth int
}

// DefaultConfig is the paper's Table 6 machine: 4-wide, 256-entry ROB,
// 64-entry scheduler, 4 FUs, >=10-cycle misprediction penalty, 96KB
// tournament predictor, 8KB enhanced JRS, and the Table 6 caches.
func DefaultConfig() Config {
	return Config{
		FetchWidth:        4,
		RetireWidth:       4,
		ROBSize:           256,
		SchedSize:         64,
		FUCount:           4,
		FrontEndDepth:     6,
		MispredictPenalty: 3,
		Predictor:         branch.DefaultTournamentConfig(),
		JRS:               confidence.DefaultConfig(),
		Memory:            cache.DefaultHierarchyConfig(),
		BTBEntries:        2048,
		BTBWays:           4,
		RASDepth:          32,
	}
}

// SMTConfig is the paper's Table 11 machine: 8-wide, 512-entry ROB, 8 FUs,
// >=20-cycle misprediction penalty, two threads; everything else as
// Table 6.
func SMTConfig() Config {
	cfg := DefaultConfig()
	cfg.FetchWidth = 8
	cfg.RetireWidth = 8
	cfg.ROBSize = 512
	cfg.SchedSize = 128
	cfg.FUCount = 8
	cfg.FrontEndDepth = 13
	cfg.MispredictPenalty = 6
	return cfg
}

// validate reports obviously broken configurations.
func (c *Config) validate() error {
	switch {
	case c.FetchWidth <= 0, c.RetireWidth <= 0, c.ROBSize <= 0,
		c.SchedSize <= 0, c.FUCount <= 0:
		return errConfig
	}
	return nil
}

type configError struct{}

func (configError) Error() string { return "cpu: invalid configuration" }

var errConfig = configError{}
