package cpu

import (
	"testing"

	"paco/internal/core"
	"paco/internal/workload"
)

// TestSmokeAllBenchmarks runs every benchmark briefly and checks the basic
// machine invariants hold: instructions retire, IPC is sane, branches
// mispredict at plausible rates, and badpath work exists.
func TestSmokeAllBenchmarks(t *testing.T) {
	for _, name := range workload.BenchmarkNames {
		name := name
		t.Run(name, func(t *testing.T) {
			spec := workload.MustBenchmark(name)
			c, err := New(DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			paco := core.NewPaCo(core.PaCoConfig{RefreshPeriod: 20_000})
			cnt := core.NewCountPredictor(3)
			tid, err := c.AddThread(spec, []core.Estimator{paco, cnt})
			if err != nil {
				t.Fatal(err)
			}
			const n = 200_000
			cycles := c.Run(n, 0)
			st := c.ThreadStats(tid)
			if st.RetiredGood < n {
				t.Fatalf("retired %d < %d", st.RetiredGood, n)
			}
			ipc := c.IPC(tid)
			if ipc <= 0.1 || ipc > 4.0 {
				t.Errorf("implausible IPC %.3f (cycles=%d)", ipc, cycles)
			}
			if st.CondRetired == 0 {
				t.Fatal("no conditional branches retired")
			}
			rate := st.CondMispredictRate()
			t.Logf("%s: IPC=%.3f condMR=%.2f%% ctrlMR=%.2f%% fetchedBad=%d execBad=%d paco.P=%.3f",
				name, ipc, rate, st.CtrlMispredictRate(), st.FetchedBad, st.ExecutedBad, paco.GoodpathProb())
			if rate <= 0 || rate > 60 {
				t.Errorf("implausible conditional mispredict rate %.2f%%", rate)
			}
			if name != "perlbmk" && name != "vortex" && st.FetchedBad == 0 {
				t.Errorf("no badpath instructions fetched")
			}
		})
	}
}
