package cpu

import (
	"testing"

	"paco/internal/core"
	"paco/internal/workload"
)

// benchCore builds a single-thread core on the given benchmark with one
// PaCo estimator attached — the configuration every accuracy experiment
// runs, so its per-cycle cost is the kernel hot path.
func benchCore(tb testing.TB, bench string) *Core {
	tb.Helper()
	spec, err := workload.NewBenchmark(bench)
	if err != nil {
		tb.Fatal(err)
	}
	c, err := New(DefaultConfig())
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := c.AddThread(spec, []core.Estimator{core.NewPaCo(core.PaCoConfig{})}); err != nil {
		tb.Fatal(err)
	}
	return c
}

// BenchmarkCoreTick measures the steady-state per-cycle cost of the
// simulation kernel: ns/op is one call of Core.Step after warmup.
func BenchmarkCoreTick(b *testing.B) {
	c := benchCore(b, "gzip")
	c.RunCycles(50_000) // warm caches, predictor, ready structures
	b.ReportAllocs()
	b.ResetTimer()
	c.RunCycles(uint64(b.N))
}

// BenchmarkCoreTickSMT measures the same with two hardware contexts (the
// SMT experiments' configuration).
func BenchmarkCoreTickSMT(b *testing.B) {
	spec2, err := workload.NewBenchmark("twolf")
	if err != nil {
		b.Fatal(err)
	}
	c := benchCore(b, "gzip")
	if _, err := c.AddThread(spec2, []core.Estimator{core.NewPaCo(core.PaCoConfig{})}); err != nil {
		b.Fatal(err)
	}
	c.RunCycles(50_000)
	b.ReportAllocs()
	b.ResetTimer()
	c.RunCycles(uint64(b.N))
}
