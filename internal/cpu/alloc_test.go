package cpu

import (
	"strings"
	"testing"

	"paco/internal/core"
	"paco/internal/gating"
	"paco/internal/workload"
)

// TestTickZeroAllocs pins the steady-state cycle loop to zero heap
// allocations: after warmup has grown the wheel buckets, ready queue, and
// waiter arenas to their high-water marks, Core.tick must not allocate.
func TestTickZeroAllocs(t *testing.T) {
	c := benchCore(t, "gzip")
	c.RunCycles(300_000) // past all structure growth and cache warmup
	allocs := testing.AllocsPerRun(20_000, func() {
		c.Step()
	})
	if allocs != 0 {
		t.Fatalf("Core.tick allocates %.2f times per cycle in steady state, want 0", allocs)
	}
}

// TestTickZeroAllocsSMT repeats the check with two hardware contexts and
// the SMT machine configuration.
func TestTickZeroAllocsSMT(t *testing.T) {
	spec1, err := workload.NewBenchmark("gzip")
	if err != nil {
		t.Fatal(err)
	}
	spec2, err := workload.NewBenchmark("twolf")
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(SMTConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []*workload.Spec{spec1, spec2} {
		if _, err := c.AddThread(spec, []core.Estimator{core.NewPaCo(core.PaCoConfig{})}); err != nil {
			t.Fatal(err)
		}
	}
	c.RunCycles(300_000)
	allocs := testing.AllocsPerRun(20_000, func() {
		c.Step()
	})
	if allocs != 0 {
		t.Fatalf("SMT Core.tick allocates %.2f times per cycle in steady state, want 0", allocs)
	}
}

// TestAddThreadEstimatorLimit pins the MaxEstimators validation: one more
// estimator than robEntry.contribs can hold must be rejected with a
// descriptive error, not mis-indexed.
func TestAddThreadEstimatorLimit(t *testing.T) {
	spec, err := workload.NewBenchmark("gzip")
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ests := make([]core.Estimator, MaxEstimators+1)
	for i := range ests {
		ests[i] = core.NewPaCo(core.PaCoConfig{})
	}
	if _, err := c.AddThread(spec, ests); err == nil {
		t.Fatalf("AddThread accepted %d estimators, want error at > %d", len(ests), MaxEstimators)
	} else if !strings.Contains(err.Error(), "estimators") {
		t.Fatalf("AddThread error %q does not mention estimators", err)
	}
	// Exactly MaxEstimators must still be accepted.
	if _, err := c.AddThread(spec, ests[:MaxEstimators]); err != nil {
		t.Fatalf("AddThread rejected %d estimators: %v", MaxEstimators, err)
	}
}

// TestBatchRunZeroAllocs pins the batched lockstep path: once the tape
// ring and every lane's structures have grown to steady state, advancing
// the batch allocates nothing — per lane, per cycle.
func TestBatchRunZeroAllocs(t *testing.T) {
	spec, err := workload.NewBenchmark("gzip")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBatch(spec)
	if err != nil {
		t.Fatal(err)
	}
	// One shared passive core plus a gated core — both batched lane kinds.
	shared, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Attach(shared, []core.Estimator{
		core.NewPaCo(core.PaCoConfig{RefreshPeriod: 100_000}),
		core.NewPaCo(core.PaCoConfig{RefreshPeriod: 200_000}),
	}); err != nil {
		t.Fatal(err)
	}
	gated, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	g := gating.NewProbGate(0.3, 200_000)
	if _, err := b.Attach(gated, []core.Estimator{g.PaCo()}); err != nil {
		t.Fatal(err)
	}
	gated.SetGate(g.ShouldGate)

	b.Run(100_000) // past ring, wheel, ready-queue, and arena growth
	allocs := testing.AllocsPerRun(20, func() {
		b.Run(1000)
	})
	if allocs != 0 {
		t.Fatalf("Batch.Run allocates %.2f times per 1000-instruction quantum in steady state, want 0", allocs)
	}
}
