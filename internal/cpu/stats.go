package cpu

import "paco/internal/confidence"

// ThreadStats accumulates per-thread counters over a simulation.
type ThreadStats struct {
	// RetiredGood is the number of retired (necessarily goodpath)
	// instructions.
	RetiredGood uint64
	// FetchedGood and FetchedBad count dispatched instructions by path.
	FetchedGood, FetchedBad uint64
	// ExecutedGood and ExecutedBad count instructions issued to function
	// units by path ("badpath instructions executed" is the paper's
	// pipeline-gating metric).
	ExecutedGood, ExecutedBad uint64
	// Squashed counts instructions removed by mispredict recovery.
	Squashed uint64
	// Recoveries counts mispredict-triggered squashes.
	Recoveries uint64
	// GatedCycles counts cycles fetch was suppressed by pipeline gating.
	GatedCycles uint64

	// CtrlRetired/CtrlMispredicts cover all retired control-flow
	// instructions; CondRetired/CondMispredicts only conditional
	// branches (the paper's Table 7 reports both rates).
	CtrlRetired, CtrlMispredicts uint64
	CondRetired, CondMispredicts uint64

	// BucketCorrect/BucketMispred stratify retired conditional branches
	// by their MDC value at prediction (the paper's Figure 2).
	BucketCorrect [confidence.NumBuckets]uint64
	BucketMispred [confidence.NumBuckets]uint64
}

// CondMispredictRate returns the conditional branch mispredict rate in
// percent.
func (s *ThreadStats) CondMispredictRate() float64 {
	if s.CondRetired == 0 {
		return 0
	}
	return 100 * float64(s.CondMispredicts) / float64(s.CondRetired)
}

// CtrlMispredictRate returns the all-control-flow mispredict rate in
// percent (the paper's "overall mispredict rate").
func (s *ThreadStats) CtrlMispredictRate() float64 {
	if s.CtrlRetired == 0 {
		return 0
	}
	return 100 * float64(s.CtrlMispredicts) / float64(s.CtrlRetired)
}

// BucketMispredictRate returns the mispredict rate (percent) of one MDC
// bucket, and the number of observations.
func (s *ThreadStats) BucketMispredictRate(mdc uint32) (rate float64, samples uint64) {
	c, m := s.BucketCorrect[mdc], s.BucketMispred[mdc]
	if c+m == 0 {
		return 0, 0
	}
	return 100 * float64(m) / float64(c+m), c + m
}

// Stats accumulates whole-core counters.
type Stats struct {
	// Cycles is the number of simulated cycles.
	Cycles uint64
}

// Stats returns the core-level counters.
func (c *Core) Stats() Stats { return c.stats }

// ResetStats zeroes all statistics counters (core, threads, caches, BTB)
// without touching microarchitectural state — used to discard warmup.
func (c *Core) ResetStats() {
	c.stats = Stats{}
	for _, t := range c.threads {
		t.stats = ThreadStats{}
	}
}

// ThreadStats returns a snapshot of one thread's counters.
func (c *Core) ThreadStats(tid int) ThreadStats { return c.threads[tid].stats }

// IPC returns a thread's retired instructions per cycle.
func (c *Core) IPC(tid int) float64 {
	if c.stats.Cycles == 0 {
		return 0
	}
	return float64(c.threads[tid].stats.RetiredGood) / float64(c.stats.Cycles)
}
