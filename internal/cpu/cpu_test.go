package cpu

import (
	"testing"

	"paco/internal/core"
	"paco/internal/workload"
)

func testSpec(seed uint64) *workload.Spec {
	return &workload.Spec{
		Name:            "cputest",
		Seed:            seed,
		BlocksPerPhase:  200,
		AvgBlockLen:     5,
		LoadFrac:        0.2,
		StoreFrac:       0.1,
		DepGeoP:         0.3,
		WorkingSetKB:    64,
		CallFrac:        0.04,
		IndirectFrac:    0.02,
		IndirectTargets: 4,
		Phases: []workload.Phase{{
			Instructions: 1 << 62,
			Mix: workload.BranchMix{
				Biased: 0.4, Loop: 0.2, Noisy: 0.25, Random: 0.15,
				NoisyEps: 0.12, LoopTripMin: 6, LoopTripMax: 14,
			},
		}},
	}
}

func newTestCore(t *testing.T, ests []core.Estimator) (*Core, int) {
	t.Helper()
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tid, err := c.AddThread(testSpec(77), ests)
	if err != nil {
		t.Fatal(err)
	}
	return c, tid
}

func TestRunRetiresRequestedInstructions(t *testing.T) {
	c, tid := newTestCore(t, nil)
	c.Run(50_000, 0)
	if got := c.ThreadStats(tid).RetiredGood; got < 50_000 {
		t.Fatalf("retired %d < 50000", got)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() ThreadStats {
		c, tid := newTestCore(t, nil)
		c.Run(60_000, 0)
		return c.ThreadStats(tid)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("two identical runs diverged:\n%+v\n%+v", a, b)
	}
}

// TestEstimatorSumMatchesInflight: after any run, PaCo's encoded sum must
// equal the total contribution of branches still in flight — and draining
// the pipeline must return it to zero.
func TestEstimatorSumDrains(t *testing.T) {
	paco := core.NewPaCo(core.PaCoConfig{RefreshPeriod: 10_000})
	cnt := core.NewCountPredictor(3)
	c, _ := newTestCore(t, []core.Estimator{paco, cnt})
	c.Run(80_000, 0)
	// Drain: stop fetching (quota reached) and step until the ROB empties.
	for i := 0; i < 10_000 && c.InFlight(0) > 0; i++ {
		c.Step()
	}
	if c.InFlight(0) != 0 {
		t.Fatalf("pipeline failed to drain: %d in flight", c.InFlight(0))
	}
	if paco.EncodedSum() != 0 {
		t.Fatalf("PaCo sum after drain = %d, want 0", paco.EncodedSum())
	}
	if cnt.Count() != 0 {
		t.Fatalf("low-confidence count after drain = %d, want 0", cnt.Count())
	}
}

// TestCountNeverNegative: the low-confidence branch counter can never go
// negative under any squash/resolve interleaving.
func TestCountNeverNegative(t *testing.T) {
	cnt := core.NewCountPredictor(3)
	c, _ := newTestCore(t, []core.Estimator{cnt})
	for i := 0; i < 100_000; i++ {
		c.Step()
		if cnt.Count() < 0 {
			t.Fatalf("negative low-confidence count at cycle %d", i)
		}
	}
}

// TestPaCoSumNeverNegative mirrors the same invariant for the encoded sum.
func TestPaCoSumNeverNegative(t *testing.T) {
	paco := core.NewPaCo(core.PaCoConfig{RefreshPeriod: 10_000})
	c, _ := newTestCore(t, []core.Estimator{paco})
	for i := 0; i < 100_000; i++ {
		c.Step()
		if paco.EncodedSum() < 0 {
			t.Fatalf("negative encoded sum at cycle %d", i)
		}
	}
}

func TestMispredictsCauseBadpathWork(t *testing.T) {
	c, tid := newTestCore(t, nil)
	c.Run(100_000, 0)
	st := c.ThreadStats(tid)
	if st.CondMispredicts == 0 {
		t.Fatal("workload produced no mispredicts")
	}
	if st.FetchedBad == 0 {
		t.Fatal("mispredicts produced no badpath fetch")
	}
	if st.Recoveries == 0 || st.Squashed == 0 {
		t.Fatalf("no recoveries/squashes: %+v", st)
	}
	if st.ExecutedBad == 0 {
		t.Fatal("no badpath instruction ever executed")
	}
}

func TestOracleConsistency(t *testing.T) {
	// Instances observed on the goodpath plus badpath must cover all
	// probe calls, and badpath instances must exist for a mispredicting
	// workload.
	c, _ := newTestCore(t, nil)
	var good, bad uint64
	c.SetProbe(func(_ int, onGood bool) {
		if onGood {
			good++
		} else {
			bad++
		}
	})
	c.Run(60_000, 0)
	if good == 0 || bad == 0 {
		t.Fatalf("oracle never changed: good=%d bad=%d", good, bad)
	}
	if float64(bad)/float64(good+bad) > 0.6 {
		t.Fatalf("badpath instances dominate (%d/%d) — recovery broken?", bad, good+bad)
	}
}

func TestGatingReducesBadpathFetch(t *testing.T) {
	base, baseTid := newTestCore(t, nil)
	base.Run(80_000, 0)
	baseStats := base.ThreadStats(baseTid)

	cnt := core.NewCountPredictor(3)
	gated, gatedTid := newTestCore(t, []core.Estimator{cnt})
	gated.SetGate(func() bool { return cnt.Count() >= 1 })
	gated.Run(80_000, 0)
	st := gated.ThreadStats(gatedTid)
	if st.GatedCycles == 0 {
		t.Fatal("aggressive gate never gated")
	}
	if st.FetchedBad >= baseStats.FetchedBad {
		t.Fatalf("gating did not reduce badpath fetch: %d vs %d", st.FetchedBad, baseStats.FetchedBad)
	}
	if gated.IPC(gatedTid) >= base.IPC(baseTid) {
		t.Fatal("maximally aggressive gating should cost performance")
	}
}

func TestBucketStatsAccumulate(t *testing.T) {
	c, tid := newTestCore(t, nil)
	c.Run(80_000, 0)
	st := c.ThreadStats(tid)
	var total uint64
	for mdc := uint32(0); mdc < 16; mdc++ {
		_, n := st.BucketMispredictRate(mdc)
		total += n
	}
	if total != st.CondRetired {
		t.Fatalf("bucket samples %d != retired conditionals %d", total, st.CondRetired)
	}
	// Low buckets should mispredict more than the top bucket.
	r0, n0 := st.BucketMispredictRate(0)
	r15, n15 := st.BucketMispredictRate(15)
	if n0 == 0 || n15 == 0 {
		t.Skip("insufficient bucket occupancy at this scale")
	}
	if r0 <= r15 {
		t.Fatalf("bucket 0 rate %.2f <= bucket 15 rate %.2f", r0, r15)
	}
}

func TestSMTTwoThreads(t *testing.T) {
	c, err := New(SMTConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddThread(testSpec(1), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddThread(testSpec(2), nil); err != nil {
		t.Fatal(err)
	}
	c.RunCycles(50_000)
	a, b := c.ThreadStats(0), c.ThreadStats(1)
	if a.RetiredGood == 0 || b.RetiredGood == 0 {
		t.Fatalf("a thread starved: %d / %d", a.RetiredGood, b.RetiredGood)
	}
	if c.Threads() != 2 {
		t.Fatal("thread count")
	}
}

func TestSMTChooserBias(t *testing.T) {
	c, err := New(SMTConfig())
	if err != nil {
		t.Fatal(err)
	}
	c.AddThread(testSpec(1), nil)
	c.AddThread(testSpec(2), nil)
	// Always prefer thread 0 when it can fetch.
	c.SetChooser(func(_ uint64, fetchable []int) int { return fetchable[0] })
	c.RunCycles(50_000)
	if c.ThreadStats(0).RetiredGood <= c.ThreadStats(1).RetiredGood {
		t.Fatal("biased chooser did not bias throughput")
	}
}

func TestResetStats(t *testing.T) {
	c, tid := newTestCore(t, nil)
	c.Run(20_000, 0)
	c.ResetStats()
	if c.ThreadStats(tid).RetiredGood != 0 || c.Stats().Cycles != 0 {
		t.Fatal("ResetStats left counters")
	}
	c.Run(10_000, 0)
	if c.ThreadStats(tid).RetiredGood < 10_000 {
		t.Fatal("run after reset broken")
	}
}

func TestMaxCyclesBound(t *testing.T) {
	c, _ := newTestCore(t, nil)
	ran := c.Run(1<<40, 500)
	if ran > 500 {
		t.Fatalf("Run ignored maxCycles: %d", ran)
	}
}

func TestTooManyEstimatorsRejected(t *testing.T) {
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ests := make([]core.Estimator, MaxEstimators+1)
	for i := range ests {
		ests[i] = core.NewCountPredictor(3)
	}
	if _, err := c.AddThread(testSpec(1), ests); err == nil {
		t.Fatal("estimator overflow accepted")
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FetchWidth = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// TestIPCPlausible guards the timing model's overall sanity.
func TestIPCPlausible(t *testing.T) {
	c, tid := newTestCore(t, nil)
	c.Run(100_000, 0)
	ipc := c.IPC(tid)
	if ipc < 0.2 || ipc > 4.0 {
		t.Fatalf("IPC %.3f outside sane range", ipc)
	}
}

func TestPerceptronStratifierRuns(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PerceptronStratifier = true
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	paco := core.NewPaCo(core.PaCoConfig{RefreshPeriod: 10_000})
	tid, err := c.AddThread(testSpec(31), []core.Estimator{paco})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(60_000, 0)
	st := c.ThreadStats(tid)
	if st.CondRetired == 0 {
		t.Fatal("nothing retired")
	}
	// Perceptron buckets must stratify: low buckets mispredict more than
	// the top bucket when both are populated.
	r0, n0 := st.BucketMispredictRate(0)
	r15, n15 := st.BucketMispredictRate(15)
	if n0 > 100 && n15 > 100 && r0 <= r15 {
		t.Fatalf("perceptron buckets not stratifying: %.1f%% vs %.1f%%", r0, r15)
	}
}

// TestBackPressure: a tiny ROB/scheduler must throttle fetch without
// deadlock or lost instructions.
func TestBackPressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ROBSize = 16
	cfg.SchedSize = 4
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tid, err := c.AddThread(testSpec(55), nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(20_000, 4_000_000)
	if got := c.ThreadStats(tid).RetiredGood; got < 20_000 {
		t.Fatalf("tiny machine deadlocked: retired %d", got)
	}
	if c.InFlight(tid) > 16 {
		t.Fatalf("ROB overflow: %d in flight", c.InFlight(tid))
	}
}

// TestLongLatencyWheel: working sets far beyond L2 force many 110-cycle
// loads, exercising completion-wheel wraparound.
func TestLongLatencyWheel(t *testing.T) {
	spec := testSpec(66)
	spec.WorkingSetKB = 8192
	spec.RandomAddrFrac = 0.9
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tid, err := c.AddThread(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(30_000, 30_000_000)
	st := c.ThreadStats(tid)
	if st.RetiredGood < 30_000 {
		t.Fatalf("memory-bound run stalled: retired %d", st.RetiredGood)
	}
	if ipc := c.IPC(tid); ipc > 1.5 {
		t.Fatalf("IPC %.2f too high for a cache-hostile workload", ipc)
	}
}

// TestQuotaStopsFetch: once a thread hits its Run quota, no further
// goodpath instructions are fetched for it.
func TestQuotaStopsFetch(t *testing.T) {
	c, tid := newTestCore(t, nil)
	c.Run(10_000, 0)
	fetched := c.ThreadStats(tid).FetchedGood
	for i := 0; i < 1000; i++ {
		c.Step()
	}
	if got := c.ThreadStats(tid).FetchedGood; got != fetched {
		t.Fatalf("fetch continued past quota: %d -> %d", fetched, got)
	}
}
