package cpu

import (
	"paco/internal/core"
	"paco/internal/workload"
)

// eventFor builds the estimator-facing view of a control instruction.
func (c *Core) eventFor(e *robEntry) core.BranchEvent {
	return core.BranchEvent{
		PC:          e.ins.PC,
		History:     e.histAtPred,
		MDC:         e.mdc,
		Conditional: e.conditional,
	}
}

// arrive processes this cycle's front-end arrivals: instructions fetched
// FrontEndDepth cycles ago become eligible to issue.
func (c *Core) arrive() {
	bucket := c.arrival[c.cycle%wheelSize]
	if len(bucket) == 0 {
		return
	}
	c.arrival[c.cycle%wheelSize] = bucket[:0]
	for _, r := range bucket {
		e := c.threads[r.tid].entry(r.seq)
		if !e.valid || e.seq != r.seq || e.issued {
			continue // squashed in flight
		}
		e.eligible = true
		if e.pendingDeps == 0 {
			c.ready.push(r)
		}
	}
}

// issue moves up to FUCount ready instructions from the scheduler to the
// function units, oldest first. Memory latency is resolved here, including
// badpath cache pollution. The ready queue is age-sorted (see sched.go);
// refs invalidated by squashes are discarded as they surface.
func (c *Core) issue() {
	for fu := 0; fu < c.cfg.FUCount && c.ready.len() > 0; fu++ {
		var r ref
		var t *thread
		var e *robEntry
		for {
			r = c.ready.pop()
			t = c.threads[r.tid]
			e = t.entry(r.seq)
			if e.valid && e.seq == r.seq && e.inSched && e.eligible && !e.issued && e.pendingDeps == 0 {
				break
			}
			// Seed-kernel compatibility: the ready list can briefly hold
			// two refs for one entry — after a squash rolls the tail back,
			// a stale arrival-wheel ref for the same seq marks the
			// re-dispatched instruction eligible early, and its real
			// arrival then pushes a second ref. The seed's flat ready list
			// validated refs only at the top of the cycle, so when both
			// copies were among the oldest it issued the entry twice in
			// one cycle (double-counting ExecutedGood/Bad, re-touching
			// the cache, and decrementing schedCount twice). Reports are
			// pinned byte-identical to the seed, so the duplicate is
			// re-issued here exactly the same way instead of discarded.
			if e.valid && e.seq == r.seq && e.issued && e.issuedAt == c.cycle {
				break
			}
			if c.ready.len() == 0 {
				return
			}
		}
		e.issued = true
		e.issuedAt = c.cycle
		e.inSched = false
		c.schedCount--

		lat := e.ins.Lat
		if lat == 0 {
			lat = 1
		}
		switch e.ins.Kind {
		case workload.KindLoad:
			lat += c.mem.DataLatency(e.ins.Addr, e.badpath)
		case workload.KindStore:
			// Stores write at retire; the issue-time access models the
			// line fill (write-allocate), including badpath pollution.
			c.mem.DataLatency(e.ins.Addr, e.badpath)
		}
		if e.badpath {
			t.stats.ExecutedBad++
		} else {
			t.stats.ExecutedGood++
		}
		c.wheel[(c.cycle+lat)%wheelSize] = append(c.wheel[(c.cycle+lat)%wheelSize], r)
	}
}

func older(a, b ref) bool {
	if a.seq != b.seq {
		return a.seq < b.seq
	}
	return a.tid < b.tid
}

// complete drains this cycle's completion wheel bucket: instructions finish
// execution, wake their dependents, and branches resolve — possibly
// squashing younger instructions and redirecting fetch.
func (c *Core) complete() {
	bucket := c.wheel[c.cycle%wheelSize]
	if len(bucket) == 0 {
		return
	}
	c.wheel[c.cycle%wheelSize] = bucket[:0]
	for _, r := range bucket {
		t := c.threads[r.tid]
		e := t.entry(r.seq)
		if !e.valid || e.seq != r.seq || !e.issued || e.done {
			continue // squashed while executing
		}
		e.done = true

		// Wake dependents, returning the list's nodes to the pool.
		for n := e.waiterHead; n != 0; {
			node := &t.waiterNodes[n]
			ws := node.seq
			next := node.next
			node.next = t.waiterFree
			t.waiterFree = n
			n = next
			w := t.entry(ws)
			if !w.valid || w.seq != ws || w.pendingDeps == 0 {
				continue
			}
			w.pendingDeps--
			if w.pendingDeps == 0 && w.inSched && w.eligible && !w.issued {
				c.ready.push(ref{t.id, ws})
			}
		}
		e.waiterHead = 0

		if e.isControl {
			c.resolveControl(t, e)
		}
		if c.probe != nil {
			c.probe(t.id, t.onGoodpath)
		}
	}
}

// resolveControl handles a control instruction finishing execution: the
// estimators see the resolve, and a mispredicted branch squashes younger
// instructions and redirects fetch (back to the goodpath if this was the
// divergence point).
func (c *Core) resolveControl(t *thread, e *robEntry) {
	for i := range t.ests {
		t.ests[i].BranchResolved(e.contribs[i])
	}
	// Badpath taken control flow trains the BTB at resolve: wrong-path
	// pollution (the perlbmk effect the paper's conservative gating
	// removes).
	if e.badpath && (e.ins.Kind != workload.KindBranch || e.ins.Taken) {
		c.btb.Insert(e.ins.PC, e.ins.NextPC)
	}
	if !e.mispredicted {
		return
	}
	t.stats.Recoveries++
	c.squashYounger(t, e.seq)

	// Repair the speculative history: everything after this branch was
	// fetched down the wrong path.
	t.ghr.Restore(e.ghrCheckpoint)
	if e.conditional {
		t.ghr.Push(e.ins.Taken)
	}

	// Redirect fetch after the misprediction penalty.
	resume := c.cycle + c.cfg.MispredictPenalty
	if resume > t.fetchResume {
		t.fetchResume = resume
	}
	t.hasPending = false
	t.lastFetchBlock = ^uint64(0)

	if !e.badpath {
		// Divergence point: recovery returns fetch to the goodpath, which
		// resumes exactly where the walker stopped.
		t.onGoodpath = true
	} else {
		// A badpath branch "resolved": fetch continues down the badpath
		// at that branch's actual target.
		t.wrong.Redirect(e.ins.NextPC)
	}
}

// squashYounger removes every instruction younger than seq from the
// machine, notifying estimators of squashed control instructions.
func (c *Core) squashYounger(t *thread, seq uint64) {
	for s := t.tail; s > seq+1; s-- {
		e := t.entry(s - 1)
		if !e.valid || e.seq != s-1 {
			continue
		}
		// Entries that already resolved (done) have had their
		// contribution removed at resolve; squashing them again would
		// double-subtract from the path confidence sums.
		if e.isControl && !e.done {
			for i := range t.ests {
				t.ests[i].BranchSquashed(e.contribs[i])
			}
		}
		if e.inSched && !e.issued {
			c.schedCount--
		}
		e.valid = false
		e.inSched = false
		c.robCount--
		t.stats.Squashed++
	}
	t.tail = seq + 1
}
