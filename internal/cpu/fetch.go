package cpu

import "paco/internal/workload"

// fetch runs the front end for one cycle: pick a thread (SMT policy),
// apply gating, and fetch up to FetchWidth instructions, ending the group
// at taken control flow, I-cache misses, or back-pressure from the ROB or
// scheduler.
func (c *Core) fetch() {
	fetchable := c.fetchScratch[:0]
	for _, t := range c.threads {
		if c.cycle >= t.fetchResume && t.stats.RetiredGood < t.quota {
			fetchable = append(fetchable, t.id)
		}
	}
	c.fetchScratch = fetchable[:0]
	if len(fetchable) == 0 {
		return
	}
	var tid int
	if c.choose != nil {
		tid = c.choose(c.cycle, fetchable)
	} else {
		tid = fetchable[int(c.cycle)%len(fetchable)]
	}
	t := c.threads[tid]
	if c.cycle < t.fetchResume {
		return // policy picked a stalled thread; bandwidth is wasted
	}
	if c.gate != nil && c.gate() {
		t.stats.GatedCycles++
		return
	}
	for n := 0; n < c.cfg.FetchWidth; n++ {
		if c.robCount >= c.cfg.ROBSize || c.schedCount >= c.cfg.SchedSize {
			break
		}
		ins, ok := c.nextInstruction(t)
		if !ok {
			break // I-cache miss: group ends, resume later
		}
		redirected := c.dispatch(t, ins)
		if redirected {
			break // taken control flow ends the fetch group
		}
	}
}

// nextInstruction produces the next instruction of the thread's current
// path, honouring a pending I-cache-stalled instruction, and models the
// I-cache: crossing into a new block pays the fetch latency.
func (c *Core) nextInstruction(t *thread) (workload.Instruction, bool) {
	var ins workload.Instruction
	if t.hasPending {
		ins = t.pending
		t.hasPending = false
		return ins, true
	}
	badpath := !t.onGoodpath
	switch {
	case badpath:
		ins = t.wrong.Next()
	case t.cursor != nil:
		ins = t.cursor.Next() // batched: replay the shared tape
	default:
		ins = t.walker.Next()
	}
	const blockShift = 7 // 128-byte I-cache lines (Table 6)
	blk := ins.PC >> blockShift
	if blk != t.lastFetchBlock {
		t.lastFetchBlock = blk
		if lat := c.mem.FetchLatency(ins.PC, badpath); lat > 0 {
			t.pending = ins
			t.hasPending = true
			t.pendingBadpath = badpath
			t.fetchResume = c.cycle + lat
			return workload.Instruction{}, false
		}
	}
	return ins, true
}

// dispatch renames the instruction into the ROB and scheduler, performs
// branch prediction and confidence lookups, and switches the thread onto
// the wrong path when a goodpath branch mispredicts. It reports whether
// fetch was redirected (ending the fetch group).
func (c *Core) dispatch(t *thread, ins workload.Instruction) bool {
	seq := t.tail
	t.tail++
	c.robCount++
	e := t.entry(seq)
	// A squashed producer's waiter list survives until its slot is reused
	// here; recycle the nodes before the entry is overwritten.
	t.freeWaiters(e.waiterHead)
	// Field-wise reset instead of a struct literal: contribs needs no
	// zeroing (it is written at predictControl before any read), and
	// skipping its 72-byte copy is measurable on this path.
	e.valid = true
	e.seq = seq
	e.ins = ins
	e.badpath = !t.onGoodpath
	e.isControl = false
	e.conditional = false
	e.predTaken = false
	e.mispredicted = false
	e.histAtPred = 0
	e.ghrCheckpoint = 0
	e.mdc = 0
	e.inSched = false
	e.eligible = false
	e.issued = false
	e.done = false
	e.issuedAt = 0
	e.pendingDeps = 0
	e.waiterHead = 0
	if e.badpath {
		t.stats.FetchedBad++
	} else {
		t.stats.FetchedGood++
	}

	redirected := false
	if ins.Kind.IsControl() {
		redirected = c.predictControl(t, e)
	}

	// Rename: resolve dependence distances to producer seqs. The
	// instruction traverses the front end for FrontEndDepth cycles before
	// it becomes eligible to issue.
	c.trackDep(t, e, ins.Dep1)
	c.trackDep(t, e, ins.Dep2)
	e.inSched = true
	c.schedCount++
	slot := (c.cycle + c.cfg.FrontEndDepth) % wheelSize
	c.arrival[slot] = append(c.arrival[slot], ref{t.id, seq})

	if c.probe != nil {
		c.probe(t.id, t.onGoodpath)
	}
	return redirected
}

func (c *Core) trackDep(t *thread, e *robEntry, dist int) {
	if dist <= 0 {
		return
	}
	if uint64(dist) > e.seq {
		return // reaches before the start of the program
	}
	depSeq := e.seq - uint64(dist)
	if depSeq < t.head {
		return // producer already retired (or squashed)
	}
	p := t.entry(depSeq)
	if !p.valid || p.seq != depSeq || p.done {
		return
	}
	p.waiterHead = t.allocWaiter(e.seq, p.waiterHead)
	e.pendingDeps++
}

// predictControl performs direction/target prediction for a control
// instruction, reads the JRS confidence table, notifies the estimators, and
// handles fetch redirection including the goodpath->badpath transition.
// It reports whether fetch was redirected this cycle.
func (c *Core) predictControl(t *thread, e *robEntry) bool {
	ins := &e.ins
	e.isControl = true
	e.histAtPred = t.ghr.Value()
	e.ghrCheckpoint = t.ghr.Checkpoint()

	var predTarget uint64
	var predTaken bool
	switch ins.Kind {
	case workload.KindBranch:
		// Direct conditional branch: the decoder computes the taken
		// target within the fetch group, so only the *direction* can
		// mispredict.
		e.conditional = true
		predTaken = c.pred.Predict(ins.PC, e.histAtPred)
		e.predTaken = predTaken
		if c.perceptron != nil {
			e.mdc = c.perceptron.Confidence(ins.PC, e.histAtPred)
		} else {
			e.mdc = c.jrs.MDC(ins.PC, e.histAtPred, predTaken)
		}
		t.ghr.Push(predTaken)
		if e.badpath {
			// Badpath branch outcomes are decided against the live
			// prediction so wrong-path code behaves like code.
			t.wrong.ResolveBranch(ins, predTaken)
		}
		e.mispredicted = predTaken != ins.Taken
	case workload.KindJump, workload.KindCall:
		// Direct targets are computed at decode: never mispredicted.
		predTaken = true
		predTarget = ins.NextPC
		if ins.Kind == workload.KindCall {
			t.ras.Push(ins.PC + 4)
		}
	case workload.KindReturn:
		predTaken = true
		predTarget = t.ras.Pop()
		e.mispredicted = predTarget != ins.NextPC
	case workload.KindIndirect:
		predTaken = true
		if tgt, ok := c.btb.Lookup(ins.PC); ok {
			predTarget = tgt
		} else {
			predTarget = ins.PC + 4 // no prediction: certainly wrong
		}
		e.mispredicted = predTarget != ins.NextPC
	}

	// Path confidence estimators see every control instruction; only
	// conditional branches carry an MDC (JRS covers only those).
	ev := c.eventFor(e)
	for i, est := range t.ests {
		e.contribs[i] = est.BranchFetched(ev)
	}

	// Fetch redirection. On a misprediction the front end follows the
	// (wrong) predicted path: if this was a goodpath branch, the machine
	// diverges here and discovers it at execute; on the badpath, fetch
	// simply continues down another wrong path.
	if e.mispredicted {
		t.onGoodpath = false
		wrongPC := predTarget
		if ins.Kind == workload.KindBranch {
			wrongPC = ins.AltPC
		}
		t.wrong.Redirect(wrongPC)
		t.lastFetchBlock = ^uint64(0)
		return true
	}
	// Correctly predicted: fetch follows the actual path (the walker or
	// wrong-path generator already advanced there). Taken control flow
	// ends the fetch group.
	taken := true
	if ins.Kind == workload.KindBranch {
		taken = ins.Taken
	}
	if taken {
		t.lastFetchBlock = ^uint64(0)
		return true
	}
	return false
}
