package cpu

import (
	"fmt"

	"paco/internal/branch"
	"paco/internal/cache"
	"paco/internal/confidence"
	"paco/internal/core"
	"paco/internal/workload"
)

// MaxEstimators is the maximum number of path confidence estimators that
// can observe one thread simultaneously (experiments attach several passive
// estimators to a single run).
const MaxEstimators = 6

const wheelSize = 256 // > max execute latency (3 + 10 + 100)

// ref names one in-flight instruction.
type ref struct {
	tid int
	seq uint64
}

// robEntry is one in-flight instruction.
//
// Slots are recycled by a field-wise reset in dispatch() (not a struct
// literal, to skip re-zeroing contribs): a field added here must also be
// reset there, or it leaks state from the slot's previous occupant.
type robEntry struct {
	valid bool
	seq   uint64
	ins   workload.Instruction

	badpath       bool
	isControl     bool
	conditional   bool
	predTaken     bool
	mispredicted  bool // fetch-time knowledge: prediction differs from actual
	histAtPred    uint32
	ghrCheckpoint uint32
	mdc           uint32

	contribs [MaxEstimators]core.Contribution

	inSched     bool
	eligible    bool
	issued      bool
	done        bool
	issuedAt    uint64 // cycle of (first) issue; see the re-issue note in issue()
	pendingDeps int
	waiterHead  int32 // head of the intrusive waiter list (0 = empty)
}

// thread is one hardware context.
type thread struct {
	id     int
	walker *workload.Walker
	cursor *workload.Cursor // non-nil: goodpath comes from a shared tape
	wrong  *workload.WrongPath
	ghr    *branch.History
	ras    *branch.RAS
	ests   []core.Estimator

	rob  []robEntry // power-of-two length; see entry()
	head uint64     // oldest in-flight seq
	tail uint64     // next seq to allocate

	waiterNodes []waiterNode // dependency-list arena; index 0 is a sentinel
	waiterFree  int32        // free-list head (0 = empty)

	onGoodpath     bool
	fetchResume    uint64
	pending        workload.Instruction // valid when hasPending
	hasPending     bool
	pendingBadpath bool
	lastFetchBlock uint64

	stats ThreadStats
	quota uint64 // goodpath instruction budget for Run
}

// entry maps a seq to its ROB slot. len(rob) is a power of two, so the
// mask form both avoids a division and lets the compiler elide the bounds
// check.
func (t *thread) entry(seq uint64) *robEntry { return &t.rob[seq&uint64(len(t.rob)-1)] }

func (t *thread) inFlight() int { return int(t.tail - t.head) }

// Core is the simulated processor.
type Core struct {
	cfg        Config
	pred       *branch.Tournament
	jrs        *confidence.JRS
	perceptron *confidence.Perceptron // non-nil when configured as stratifier
	btb        *branch.BTB
	mem        *cache.Hierarchy

	threads []*thread
	cycle   uint64

	robCount   int
	schedCount int

	wheel   [wheelSize][]ref
	arrival [wheelSize][]ref
	ready   readyQueue

	fetchScratch []int // reused by fetch; never retained by choosers

	gate   func() bool
	choose func(cycle uint64, fetchable []int) int
	probe  func(tid int, goodpath bool)

	// probeRetire, when set, observes every retired conditional branch:
	// (workload StaticID, prediction correct). Diagnostic hook.
	probeRetire func(staticID int, correct bool)

	stats Stats
}

// New builds a core from cfg with no threads; add workloads with AddThread.
func New(cfg Config) (*Core, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &Core{
		cfg:  cfg,
		pred: branch.NewTournament(cfg.Predictor),
		jrs:  confidence.New(cfg.JRS),
		btb:  branch.NewBTB(cfg.BTBEntries, cfg.BTBWays),
		mem:  cache.NewHierarchy(cfg.Memory),
	}
	if cfg.PerceptronStratifier {
		c.perceptron = confidence.NewPerceptron(confidence.DefaultPerceptronConfig())
	}
	return c, nil
}

// AddThread attaches a workload and its path confidence estimators
// (estimators observe only this thread). It returns the thread id.
func (c *Core) AddThread(spec *workload.Spec, ests []core.Estimator) (int, error) {
	// Each robEntry holds a fixed [MaxEstimators]Contribution array;
	// admitting more estimators would silently mis-index it.
	if len(ests) > MaxEstimators {
		return 0, fmt.Errorf("cpu: %d estimators attached to thread %d, at most %d supported (robEntry.contribs is fixed-size)",
			len(ests), len(c.threads), MaxEstimators)
	}
	w, err := workload.NewWalker(spec)
	if err != nil {
		return 0, err
	}
	return c.attachThread(w, nil, ests), nil
}

// AddThreadCursor attaches a workload replayed from a shared tape cursor
// instead of a private walker — the batched lockstep path (Batch). The
// thread's wrong-path generator is private (badpath content is its own
// seeded stream and reads only the walker's immutable spec), so two
// cursor-fed cores evolve exactly as two walker-fed cores would.
func (c *Core) AddThreadCursor(cur *workload.Cursor, ests []core.Estimator) (int, error) {
	if len(ests) > MaxEstimators {
		return 0, fmt.Errorf("cpu: %d estimators attached to thread %d, at most %d supported (robEntry.contribs is fixed-size)",
			len(ests), len(c.threads), MaxEstimators)
	}
	return c.attachThread(cur.Walker(), cur, ests), nil
}

// attachThread builds the hardware context shared by AddThread and
// AddThreadCursor. The walker is retained even on the cursor path for
// diagnostics (Walker) and the wrong-path generator; only
// nextInstruction consults the cursor.
func (c *Core) attachThread(w *workload.Walker, cur *workload.Cursor, ests []core.Estimator) int {
	// The ROB backing array is rounded up to a power of two so entry()
	// maps seq to slot with a mask instead of a division (a measured
	// kernel hotspot). Capacity is still bounded by cfg.ROBSize via
	// robCount; the extra slots are never simultaneously live.
	robLen := uint64(1)
	for robLen < uint64(c.cfg.ROBSize) {
		robLen <<= 1
	}
	t := &thread{
		id:             len(c.threads),
		walker:         w,
		cursor:         cur,
		ghr:            branch.NewHistory(8),
		ras:            branch.NewRAS(c.cfg.RASDepth),
		ests:           ests,
		rob:            make([]robEntry, robLen),
		waiterNodes:    make([]waiterNode, 1, 2*c.cfg.ROBSize+1),
		onGoodpath:     true,
		lastFetchBlock: ^uint64(0),
	}
	t.wrong = workload.NewWrongPath(w)
	c.threads = append(c.threads, t)
	return t.id
}

// SetGate installs a fetch gating predicate, consulted each cycle before
// fetching (pipeline gating applications; single-thread runs).
func (c *Core) SetGate(gate func() bool) { c.gate = gate }

// SetChooser installs the SMT fetch policy: given the cycle and the ids of
// threads able to fetch, return the thread that gets the fetch bandwidth.
// Nil means round-robin. The fetchable slice is a scratch buffer reused
// across cycles; choosers must not retain it past the call.
func (c *Core) SetChooser(choose func(cycle uint64, fetchable []int) int) { c.choose = choose }

// SetProbe installs the instance probe: called after every fetch and
// execute event with the thread id and the goodpath oracle, exactly the
// paper's "instances" (footnotes 6-7).
func (c *Core) SetProbe(probe func(tid int, goodpath bool)) { c.probe = probe }

// Cycle returns the current cycle number.
func (c *Core) Cycle() uint64 { return c.cycle }

// InFlight returns the number of in-flight instructions of a thread
// (the ICOUNT policy input).
func (c *Core) InFlight(tid int) int { return c.threads[tid].inFlight() }

// OnGoodpath exposes the goodpath oracle for a thread.
func (c *Core) OnGoodpath(tid int) bool { return c.threads[tid].onGoodpath }

// Threads returns the number of attached threads.
func (c *Core) Threads() int { return len(c.threads) }

// Walker exposes a thread's workload walker (diagnostics).
func (c *Core) Walker(tid int) *workload.Walker { return c.threads[tid].walker }

// Memory exposes the cache hierarchy (diagnostics).
func (c *Core) Memory() *cache.Hierarchy { return c.mem }

// BTB exposes the branch target buffer (diagnostics).
func (c *Core) BTB() *branch.BTB { return c.btb }

// Run simulates until every thread has retired at least goodInstrs
// goodpath instructions (or maxCycles elapses, if non-zero). It returns the
// number of cycles simulated during this call.
func (c *Core) Run(goodInstrs uint64, maxCycles uint64) uint64 {
	if len(c.threads) == 0 {
		panic("cpu: Run with no threads")
	}
	c.prepareRun(goodInstrs)
	start := c.cycle
	for !c.runDone() {
		if maxCycles != 0 && c.cycle-start >= maxCycles {
			break
		}
		c.Step()
	}
	return c.cycle - start
}

// prepareRun arms every thread's goodpath retirement quota exactly as
// Run does; Batch uses it to advance several cores under one scheduler
// with per-core Run semantics.
func (c *Core) prepareRun(goodInstrs uint64) {
	for _, t := range c.threads {
		t.quota = t.stats.RetiredGood + goodInstrs
	}
}

// unboundQuota lifts all retirement quotas so cycle-driven stepping
// (RunCycles, instrumented passes) fetches freely.
func (c *Core) unboundQuota() {
	for _, t := range c.threads {
		t.quota = ^uint64(0)
	}
}

// runDone reports whether every thread has met its retirement quota —
// Run's termination condition.
func (c *Core) runDone() bool {
	for _, t := range c.threads {
		if t.stats.RetiredGood < t.quota {
			return false
		}
	}
	return true
}

// RunCycles simulates exactly n cycles (SMT throughput experiments measure
// fixed time slices rather than fixed instruction counts). Threads fetch
// freely — quotas are ignored.
func (c *Core) RunCycles(n uint64) {
	c.unboundQuota()
	for i := uint64(0); i < n; i++ {
		c.Step()
	}
}

// Step simulates one cycle.
func (c *Core) Step() { c.tick() }

// tick is the steady-state cycle loop: each stage fast-paths out when it
// has no work this cycle, and none of them allocates once the wheel
// buckets, ready queue, and waiter arenas have grown to their steady-state
// sizes.
func (c *Core) tick() {
	for _, t := range c.threads {
		for _, e := range t.ests {
			e.Tick(c.cycle)
		}
	}
	c.complete()
	c.arrive()
	c.issue()
	c.retire()
	c.fetch()
	c.cycle++
	c.stats.Cycles++
}
