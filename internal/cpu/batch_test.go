package cpu

import (
	"testing"

	"paco/internal/core"
	"paco/internal/gating"
	"paco/internal/workload"
)

// laneShape builds one lane configuration (fresh estimator and gate
// state per call) for a batch-vs-singleton comparison.
type laneShape struct {
	name  string
	build func() ([]core.Estimator, func() bool)
}

// laneShapes are the configurations campaign cells actually sweep: a
// passive estimator, a PaCo probability gate, and a JRS count gate.
func laneShapes() []laneShape {
	return []laneShape{
		{name: "ungated", build: func() ([]core.Estimator, func() bool) {
			return []core.Estimator{core.NewPaCo(core.PaCoConfig{RefreshPeriod: 100_000})}, nil
		}},
		{name: "probgate", build: func() ([]core.Estimator, func() bool) {
			g := gating.NewProbGate(0.3, 200_000)
			return []core.Estimator{g.PaCo()}, g.ShouldGate
		}},
		{name: "countgate", build: func() ([]core.Estimator, func() bool) {
			g := gating.NewCountGate(12, 3)
			return []core.Estimator{g.Estimator()}, g.ShouldGate
		}},
	}
}

// buildLane attaches one lane either to a fresh singleton core (b nil)
// or to the batch.
func buildLane(t *testing.T, b *Batch, spec *workload.Spec, sh laneShape) (*Core, int) {
	t.Helper()
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ests, gate := sh.build()
	var tid int
	if b == nil {
		tid, err = c.AddThread(spec, ests)
	} else {
		tid, err = b.Attach(c, ests)
	}
	if err != nil {
		t.Fatal(err)
	}
	if gate != nil {
		c.SetGate(gate)
	}
	return c, tid
}

// TestBatchMatchesSingleton pins the batched kernel's core guarantee:
// a lane advanced by the lockstep scheduler produces exactly the cycle
// count and thread statistics of the same configuration run alone.
func TestBatchMatchesSingleton(t *testing.T) {
	const warmup, measure = 20_000, 60_000
	shapes := laneShapes()

	spec := workload.MustBenchmark("gzip")
	b, err := NewBatch(spec)
	if err != nil {
		t.Fatal(err)
	}
	batched := make([]*Core, len(shapes))
	for i, sh := range shapes {
		batched[i], _ = buildLane(t, b, spec, sh)
	}
	b.Run(warmup)
	for _, c := range batched {
		c.ResetStats()
	}
	b.Run(measure)

	for i, sh := range shapes {
		single, tid := buildLane(t, nil, workload.MustBenchmark("gzip"), sh)
		single.Run(warmup, 0)
		single.ResetStats()
		single.Run(measure, 0)

		if got, want := batched[i].Stats().Cycles, single.Stats().Cycles; got != want {
			t.Errorf("%s: batched cycles %d != singleton cycles %d", sh.name, got, want)
		}
		if got, want := batched[i].ThreadStats(0), single.ThreadStats(tid); got != want {
			t.Errorf("%s: batched stats diverge from singleton:\n got %+v\nwant %+v", sh.name, got, want)
		}
	}
}

// TestBatchMergedEstimators pins the estimator-lane merge: N passive
// estimator configurations attached to ONE shared core behave exactly
// as N singleton runs — same core stats, and each estimator reaches the
// same state it reaches observing its own private core.
func TestBatchMergedEstimators(t *testing.T) {
	const warmup, measure = 20_000, 60_000
	refreshes := []uint64{50_000, 100_000, 200_000}

	spec := workload.MustBenchmark("twolf")
	b, err := NewBatch(spec)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	merged := make([]*core.PaCo, len(refreshes))
	ests := make([]core.Estimator, len(refreshes))
	for i, r := range refreshes {
		merged[i] = core.NewPaCo(core.PaCoConfig{RefreshPeriod: r})
		ests[i] = merged[i]
	}
	if _, err := b.Attach(shared, ests); err != nil {
		t.Fatal(err)
	}
	b.Run(warmup)
	shared.ResetStats()
	b.Run(measure)

	for i, r := range refreshes {
		single, err := New(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		paco := core.NewPaCo(core.PaCoConfig{RefreshPeriod: r})
		tid, err := single.AddThread(workload.MustBenchmark("twolf"), []core.Estimator{paco})
		if err != nil {
			t.Fatal(err)
		}
		single.Run(warmup, 0)
		single.ResetStats()
		single.Run(measure, 0)

		if got, want := shared.Stats().Cycles, single.Stats().Cycles; got != want {
			t.Errorf("refresh=%d: shared-core cycles %d != singleton %d", r, got, want)
		}
		if got, want := shared.ThreadStats(0), single.ThreadStats(tid); got != want {
			t.Errorf("refresh=%d: shared-core stats diverge:\n got %+v\nwant %+v", r, got, want)
		}
		if got, want := merged[i].GoodpathProb(), paco.GoodpathProb(); got != want {
			t.Errorf("refresh=%d: merged estimator prob %g != singleton %g", r, got, want)
		}
	}
}

// TestBatchAttachTooManyEstimators pins that Attach fails like
// AddThread and the dead cursor does not pin the tape.
func TestBatchAttachTooManyEstimators(t *testing.T) {
	b, err := NewBatch(workload.MustBenchmark("gzip"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ests := make([]core.Estimator, MaxEstimators+1)
	for i := range ests {
		ests[i] = core.NewPaCo(core.PaCoConfig{})
	}
	if _, err := b.Attach(c, ests); err == nil {
		t.Fatal("Attach admitted more than MaxEstimators estimators")
	}
	if got := b.Tape().Cursors(); got != 0 {
		t.Fatalf("failed Attach left %d cursors registered, want 0", got)
	}
	if b.K() != 0 {
		t.Fatalf("failed Attach left %d lanes, want 0", b.K())
	}
}

// BenchmarkBatchRun measures batched lane throughput: K=4 sweep-shaped
// lanes (two passive refresh configs merged on one core plus two gated
// cores) advanced 4000 goodpath instructions per op.
func BenchmarkBatchRun(b *testing.B) {
	spec := workload.MustBenchmark("gzip")
	bt, err := NewBatch(spec)
	if err != nil {
		b.Fatal(err)
	}
	shared, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := bt.Attach(shared, []core.Estimator{
		core.NewPaCo(core.PaCoConfig{RefreshPeriod: 100_000}),
		core.NewPaCo(core.PaCoConfig{RefreshPeriod: 200_000}),
	}); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		c, err := New(DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		g := gating.NewProbGate(0.3, 200_000)
		if _, err := bt.Attach(c, []core.Estimator{g.PaCo()}); err != nil {
			b.Fatal(err)
		}
		c.SetGate(g.ShouldGate)
	}
	bt.Run(50_000) // structure growth + cache warmup
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt.Run(4000)
	}
}
