package perf

import (
	"sync"
	"time"
)

// Sampler aggregates simulator throughput across completed runs: each
// observation is one run's simulated cycle count and wall-clock cost.
// paco-serve feeds every executed job through a Sampler and exports the
// rates on /metrics, making kernel throughput a continuously measured
// service-level quantity — the same kcycles/sec the offline paco-bench
// harness reports, but sampled from production traffic instead of a
// dedicated measurement.
//
// A Sampler is safe for concurrent use; the zero value is ready.
type Sampler struct {
	mu       sync.Mutex
	cycles   uint64
	wall     time.Duration
	samples  uint64
	lastRate float64
	onRate   func(kcyclesPerSec float64)
}

// OnRate installs a callback invoked with each productive run's
// kcycles/sec, under the sampler's lock — keep it cheap. paco-serve
// feeds a throughput histogram through it, so /metrics carries the
// rate *distribution* (stragglers, modality), not just the cumulative
// and last-run point values. Call before the first Observe.
func (s *Sampler) OnRate(fn func(kcyclesPerSec float64)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onRate = fn
}

// Observe records one completed run. Runs with no simulated cycles or no
// measurable wall time are counted but do not perturb the rates.
func (s *Sampler) Observe(cycles uint64, wall time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.samples++
	if cycles == 0 || wall <= 0 {
		return
	}
	s.cycles += cycles
	s.wall += wall
	s.lastRate = float64(cycles) / wall.Seconds() / 1e3
	if s.onRate != nil {
		s.onRate(s.lastRate)
	}
}

// Totals returns the cumulative simulated cycles, wall time, and
// observation count.
func (s *Sampler) Totals() (cycles uint64, wall time.Duration, samples uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cycles, s.wall, s.samples
}

// KCyclesPerSec is the cumulative throughput — total simulated
// kilocycles over total simulation wall time. Zero before the first
// productive observation.
//
// Note the denominator is summed per-run wall time: with N campaigns in
// flight the service simulates N times this rate in real time.
func (s *Sampler) KCyclesPerSec() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wall <= 0 {
		return 0
	}
	return float64(s.cycles) / s.wall.Seconds() / 1e3
}

// LastKCyclesPerSec is the most recent run's throughput — a cheap
// "current speed" gauge next to the cumulative rate.
func (s *Sampler) LastKCyclesPerSec() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastRate
}
