// Package perf is the kernel throughput harness: it measures how fast the
// simulator simulates — simulated kcycles per wall second, heap
// allocations per cycle, and the per-stage cost breakdown — and records
// the numbers as a JSON baseline (BENCH_kernel.json) so kernel speed is a
// continuously measured quantity with a trajectory, not a guess. Every
// accuracy experiment runs dozens of cycle-accurate simulations per
// figure; single-core kernel throughput is the floor under all of them.
package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"paco/internal/core"
	"paco/internal/cpu"
	"paco/internal/workload"
)

// Schema identifies the report format.
const Schema = "paco-bench/v1"

// Options configures one kernel measurement.
type Options struct {
	// WarmupCycles are simulated before measurement so ready queues,
	// wheel buckets, waiter arenas, caches, and predictors reach steady
	// state. Zero selects a default.
	WarmupCycles uint64
	// MeasureCycles are simulated under the clock. Zero selects a
	// default.
	MeasureCycles uint64
	// StageCycles are simulated with per-stage instrumentation for the
	// breakdown (slower per cycle; kept separate from the throughput
	// measurement). Zero selects a default.
	StageCycles uint64
	// SMT attaches a second thread (twolf) and uses the SMT machine.
	SMT bool
}

func (o *Options) defaults() {
	if o.WarmupCycles == 0 {
		o.WarmupCycles = 300_000
	}
	if o.MeasureCycles == 0 {
		o.MeasureCycles = 1_000_000
	}
	if o.StageCycles == 0 {
		o.StageCycles = 200_000
	}
}

// KernelResult is one measured configuration.
type KernelResult struct {
	// Name labels the configuration (benchmark name, "+smt" suffix for
	// the two-thread machine).
	Name string `json:"name"`
	// Cycles is the number of simulated cycles measured.
	Cycles uint64 `json:"cycles"`
	// Instructions is the number of goodpath instructions retired during
	// measurement.
	Instructions uint64 `json:"instructions"`
	// WallSeconds is the measured wall-clock time.
	WallSeconds float64 `json:"wall_seconds"`
	// KCyclesPerSec is simulated kilocycles per wall second — the
	// headline kernel throughput number.
	KCyclesPerSec float64 `json:"kcycles_per_sec"`
	// KInstrsPerSec is retired goodpath kilo-instructions per wall
	// second.
	KInstrsPerSec float64 `json:"kinstrs_per_sec"`
	// AllocsPerCycle is heap allocations per simulated cycle (0 in
	// steady state since the allocation-free kernel refactor).
	AllocsPerCycle float64 `json:"allocs_per_cycle"`
	// BytesPerCycle is heap bytes allocated per simulated cycle.
	BytesPerCycle float64 `json:"bytes_per_cycle"`
	// IPC is the simulated machine's own instructions per cycle (a
	// sanity check that the measured window did real work).
	IPC float64 `json:"ipc"`
	// Stages is each pipeline stage's fraction of kernel time, from a
	// separate instrumented run.
	Stages map[string]float64 `json:"stages,omitempty"`
}

// Report is the full bench artifact.
type Report struct {
	Schema    string         `json:"schema"`
	GoVersion string         `json:"go_version"`
	GOOS      string         `json:"goos"`
	GOARCH    string         `json:"goarch"`
	NumCPU    int            `json:"num_cpu"`
	Results   []KernelResult `json:"results"`
	// Baseline, when present, is the report this run is compared
	// against (typically the committed pre-refactor numbers).
	Baseline *Report `json:"baseline,omitempty"`
	// SpeedupKCycles is the geometric-mean kcycles/sec ratio of Results
	// over Baseline.Results for configurations present in both. Zero
	// when no baseline is attached.
	SpeedupKCycles float64 `json:"speedup_kcycles,omitempty"`
}

// buildCore assembles the measured configuration: the benchmark workload
// with one PaCo estimator — the shape every accuracy experiment runs.
func buildCore(bench string, smt bool) (*cpu.Core, error) {
	cfg := cpu.DefaultConfig()
	if smt {
		cfg = cpu.SMTConfig()
	}
	c, err := cpu.New(cfg)
	if err != nil {
		return nil, err
	}
	spec, err := workload.NewBenchmark(bench)
	if err != nil {
		return nil, err
	}
	if _, err := c.AddThread(spec, []core.Estimator{core.NewPaCo(core.PaCoConfig{})}); err != nil {
		return nil, err
	}
	if smt {
		spec2, err := workload.NewBenchmark("twolf")
		if err != nil {
			return nil, err
		}
		if _, err := c.AddThread(spec2, []core.Estimator{core.NewPaCo(core.PaCoConfig{})}); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// retiredGood sums goodpath retirement over all threads.
func retiredGood(c *cpu.Core) uint64 {
	var n uint64
	for tid := 0; tid < c.Threads(); tid++ {
		n += c.ThreadStats(tid).RetiredGood
	}
	return n
}

// MeasureKernel runs one configuration and returns its result.
func MeasureKernel(bench string, opts Options) (KernelResult, error) {
	opts.defaults()
	c, err := buildCore(bench, opts.SMT)
	if err != nil {
		return KernelResult{}, err
	}
	name := bench
	if opts.SMT {
		name += "+smt"
	}

	c.RunCycles(opts.WarmupCycles)

	var msBefore, msAfter runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&msBefore)
	retiredBefore := retiredGood(c)
	start := time.Now()
	c.RunCycles(opts.MeasureCycles)
	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&msAfter)
	retired := retiredGood(c) - retiredBefore

	res := KernelResult{
		Name:           name,
		Cycles:         opts.MeasureCycles,
		Instructions:   retired,
		WallSeconds:    wall,
		KCyclesPerSec:  float64(opts.MeasureCycles) / wall / 1e3,
		KInstrsPerSec:  float64(retired) / wall / 1e3,
		AllocsPerCycle: float64(msAfter.Mallocs-msBefore.Mallocs) / float64(opts.MeasureCycles),
		BytesPerCycle:  float64(msAfter.TotalAlloc-msBefore.TotalAlloc) / float64(opts.MeasureCycles),
		IPC:            float64(retired) / float64(opts.MeasureCycles),
	}

	// Separate instrumented pass for the stage breakdown.
	var st cpu.StageTimes
	for i := uint64(0); i < opts.StageCycles; i++ {
		c.StepTimed(&st)
	}
	res.Stages = st.Fractions()
	return res, nil
}

// MeasureAll measures every named benchmark, plus an SMT configuration
// when smt is set.
func MeasureAll(benches []string, smt bool, opts Options) (*Report, error) {
	if len(benches) == 0 {
		return nil, fmt.Errorf("perf: no benchmarks to measure")
	}
	rep := &Report{
		Schema:    Schema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	for _, b := range benches {
		r, err := MeasureKernel(b, opts)
		if err != nil {
			return nil, err
		}
		rep.Results = append(rep.Results, r)
	}
	if smt {
		smtOpts := opts
		smtOpts.SMT = true
		r, err := MeasureKernel(benches[0], smtOpts)
		if err != nil {
			return nil, err
		}
		rep.Results = append(rep.Results, r)
	}
	return rep, nil
}

// AttachBaseline links a prior report and computes the geometric-mean
// kcycles/sec speedup over configurations present in both reports.
func (r *Report) AttachBaseline(base *Report) {
	r.Baseline = base
	r.SpeedupKCycles = 0
	byName := make(map[string]KernelResult, len(base.Results))
	for _, b := range base.Results {
		byName[b.Name] = b
	}
	logSum, n := 0.0, 0
	for _, cur := range r.Results {
		b, ok := byName[cur.Name]
		if !ok || b.KCyclesPerSec <= 0 || cur.KCyclesPerSec <= 0 {
			continue
		}
		logSum += math.Log(cur.KCyclesPerSec / b.KCyclesPerSec)
		n++
	}
	if n > 0 {
		r.SpeedupKCycles = math.Exp(logSum / float64(n))
	}
}

// WriteJSON renders the report with stable indentation.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport parses a report written by WriteJSON.
func ReadReport(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, err
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("perf: unknown schema %q (want %q)", r.Schema, Schema)
	}
	return &r, nil
}
