// Package perf is the kernel throughput harness: it measures how fast the
// simulator simulates — simulated kcycles per wall second, heap
// allocations per cycle, and the per-stage cost breakdown — and records
// the numbers as a JSON baseline (BENCH_kernel.json) so kernel speed is a
// continuously measured quantity with a trajectory, not a guess. Every
// accuracy experiment runs dozens of cycle-accurate simulations per
// figure; single-core kernel throughput is the floor under all of them.
package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"strings"
	"time"

	"paco/internal/core"
	"paco/internal/cpu"
	"paco/internal/gating"
	"paco/internal/workload"
)

// Schema identifies the report format. v2 added the batched lockstep
// rows (batch_k, speedup_batch) and the honest gomaxprocs field; v1
// reports remain readable as baselines.
const (
	Schema   = "paco-bench/v2"
	schemaV1 = "paco-bench/v1"
)

// Options configures one kernel measurement.
type Options struct {
	// WarmupCycles are simulated before measurement so ready queues,
	// wheel buckets, waiter arenas, caches, and predictors reach steady
	// state. Zero selects a default.
	WarmupCycles uint64
	// MeasureCycles are simulated under the clock. Zero selects a
	// default.
	MeasureCycles uint64
	// StageCycles are simulated with per-stage instrumentation for the
	// breakdown (slower per cycle; kept separate from the throughput
	// measurement). Zero selects a default.
	StageCycles uint64
	// SMT attaches a second thread (twolf) and uses the SMT machine.
	SMT bool
	// BatchKs, when non-empty, adds one batched lockstep row per
	// benchmark per width (MeasureBatchKernel). Include 1 to record the
	// singleton-batch baseline the speedup geomean divides by.
	BatchKs []int
}

func (o *Options) defaults() {
	if o.WarmupCycles == 0 {
		o.WarmupCycles = 300_000
	}
	if o.MeasureCycles == 0 {
		o.MeasureCycles = 1_000_000
	}
	if o.StageCycles == 0 {
		o.StageCycles = 200_000
	}
}

// KernelResult is one measured configuration.
type KernelResult struct {
	// Name labels the configuration (benchmark name, "+smt" suffix for
	// the two-thread machine).
	Name string `json:"name"`
	// Cycles is the number of simulated cycles measured.
	Cycles uint64 `json:"cycles"`
	// Instructions is the number of goodpath instructions retired during
	// measurement.
	Instructions uint64 `json:"instructions"`
	// WallSeconds is the measured wall-clock time.
	WallSeconds float64 `json:"wall_seconds"`
	// KCyclesPerSec is simulated kilocycles per wall second — the
	// headline kernel throughput number.
	KCyclesPerSec float64 `json:"kcycles_per_sec"`
	// KInstrsPerSec is retired goodpath kilo-instructions per wall
	// second.
	KInstrsPerSec float64 `json:"kinstrs_per_sec"`
	// AllocsPerCycle is heap allocations per simulated cycle (0 in
	// steady state since the allocation-free kernel refactor).
	AllocsPerCycle float64 `json:"allocs_per_cycle"`
	// BytesPerCycle is heap bytes allocated per simulated cycle.
	BytesPerCycle float64 `json:"bytes_per_cycle"`
	// IPC is the simulated machine's own instructions per cycle (a
	// sanity check that the measured window did real work).
	IPC float64 `json:"ipc"`
	// Stages is each pipeline stage's fraction of kernel time, from a
	// separate instrumented run.
	Stages map[string]float64 `json:"stages,omitempty"`
	// BatchK is the batched lockstep width for rows measured by
	// MeasureBatchKernel (lanes sharing one instruction stream); 0 for
	// ordinary single-core rows. For batched rows Cycles and Instructions
	// sum over all lanes, so KCyclesPerSec is aggregate throughput.
	BatchK int `json:"batch_k,omitempty"`
}

// Report is the full bench artifact.
type Report struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// NumCPU is the machine's logical CPU count; GOMAXPROCS is the
	// scheduler parallelism in effect. Neither implies the measurement
	// used more than one core: every row here is a single-goroutine
	// kernel measurement (see EXPERIMENTS.md, bench methodology).
	NumCPU     int            `json:"num_cpu"`
	GOMAXPROCS int            `json:"gomaxprocs,omitempty"`
	Results    []KernelResult `json:"results"`
	// Baseline, when present, is the report this run is compared
	// against (typically the committed pre-refactor numbers).
	Baseline *Report `json:"baseline,omitempty"`
	// SpeedupKCycles is the geometric-mean kcycles/sec ratio of Results
	// over Baseline.Results for configurations present in both. Zero
	// when no baseline is attached.
	SpeedupKCycles float64 `json:"speedup_kcycles,omitempty"`
	// SpeedupBatch is the geometric-mean aggregate-throughput ratio of
	// batched rows (BatchK > 1) over their same-benchmark BatchK = 1 row
	// — the lane-scaling headline. Zero when the report has no batched
	// rows or no singleton-batch baseline.
	SpeedupBatch float64 `json:"speedup_batch,omitempty"`
}

// buildCore assembles the measured configuration: the benchmark workload
// with one PaCo estimator — the shape every accuracy experiment runs.
func buildCore(bench string, smt bool) (*cpu.Core, error) {
	cfg := cpu.DefaultConfig()
	if smt {
		cfg = cpu.SMTConfig()
	}
	c, err := cpu.New(cfg)
	if err != nil {
		return nil, err
	}
	spec, err := workload.NewBenchmark(bench)
	if err != nil {
		return nil, err
	}
	if _, err := c.AddThread(spec, []core.Estimator{core.NewPaCo(core.PaCoConfig{})}); err != nil {
		return nil, err
	}
	if smt {
		spec2, err := workload.NewBenchmark("twolf")
		if err != nil {
			return nil, err
		}
		if _, err := c.AddThread(spec2, []core.Estimator{core.NewPaCo(core.PaCoConfig{})}); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// retiredGood sums goodpath retirement over all threads.
func retiredGood(c *cpu.Core) uint64 {
	var n uint64
	for tid := 0; tid < c.Threads(); tid++ {
		n += c.ThreadStats(tid).RetiredGood
	}
	return n
}

// MeasureKernel runs one configuration and returns its result.
func MeasureKernel(bench string, opts Options) (KernelResult, error) {
	opts.defaults()
	c, err := buildCore(bench, opts.SMT)
	if err != nil {
		return KernelResult{}, err
	}
	name := bench
	if opts.SMT {
		name += "+smt"
	}

	c.RunCycles(opts.WarmupCycles)

	var msBefore, msAfter runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&msBefore)
	retiredBefore := retiredGood(c)
	start := time.Now()
	c.RunCycles(opts.MeasureCycles)
	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&msAfter)
	retired := retiredGood(c) - retiredBefore

	res := KernelResult{
		Name:           name,
		Cycles:         opts.MeasureCycles,
		Instructions:   retired,
		WallSeconds:    wall,
		KCyclesPerSec:  float64(opts.MeasureCycles) / wall / 1e3,
		KInstrsPerSec:  float64(retired) / wall / 1e3,
		AllocsPerCycle: float64(msAfter.Mallocs-msBefore.Mallocs) / float64(opts.MeasureCycles),
		BytesPerCycle:  float64(msAfter.TotalAlloc-msBefore.TotalAlloc) / float64(opts.MeasureCycles),
		IPC:            float64(retired) / float64(opts.MeasureCycles),
	}

	// Separate instrumented pass for the stage breakdown.
	var st cpu.StageTimes
	for i := uint64(0); i < opts.StageCycles; i++ {
		c.StepTimed(&st)
	}
	res.Stages = st.Fractions()
	return res, nil
}

// batchRefreshes is the PaCo refresh-period axis the batched kernel
// measurement sweeps — the same axis the paper's robustness campaigns
// sweep, so the measured batch shape matches real sweep shapes.
var batchRefreshes = [...]uint64{50_000, 100_000, 200_000, 400_000}

// buildBatch assembles a sweep-shaped k-lane batch over one benchmark
// stream: lanes cycle through the refresh axis; odd lanes are
// probability-gated (own core, gate feedback on), even lanes are
// passive PaCo observers merged onto shared cores up to
// cpu.MaxEstimators each — the half-gated half-merged mix a real
// campaign plan produces. Returns the batch plus the per-cell core
// mapping (length k; merged cells point at their shared core).
func buildBatch(bench string, k int) (*cpu.Batch, []*cpu.Core, error) {
	spec, err := workload.NewBenchmark(bench)
	if err != nil {
		return nil, nil, err
	}
	b, err := cpu.NewBatch(spec)
	if err != nil {
		return nil, nil, err
	}
	cells := make([]*cpu.Core, k)
	var shared *cpu.Core
	var sharedEsts []core.Estimator
	flushShared := func() error {
		if shared == nil {
			return nil
		}
		if _, err := b.Attach(shared, sharedEsts); err != nil {
			return err
		}
		shared, sharedEsts = nil, nil
		return nil
	}
	for i := 0; i < k; i++ {
		refresh := batchRefreshes[i%len(batchRefreshes)]
		if i%2 == 1 {
			g := gating.NewProbGate(0.3, refresh)
			c, err := cpu.New(cpu.DefaultConfig())
			if err != nil {
				return nil, nil, err
			}
			if _, err := b.Attach(c, []core.Estimator{g.PaCo()}); err != nil {
				return nil, nil, err
			}
			c.SetGate(g.ShouldGate)
			cells[i] = c
			continue
		}
		if shared != nil && len(sharedEsts)+1 > cpu.MaxEstimators {
			if err := flushShared(); err != nil {
				return nil, nil, err
			}
		}
		if shared == nil {
			c, err := cpu.New(cpu.DefaultConfig())
			if err != nil {
				return nil, nil, err
			}
			shared = c
		}
		sharedEsts = append(sharedEsts, core.NewPaCo(core.PaCoConfig{RefreshPeriod: refresh}))
		cells[i] = shared
	}
	if err := flushShared(); err != nil {
		return nil, nil, err
	}
	return b, cells, nil
}

// MeasureBatchKernel measures the batched lockstep kernel at width k:
// one shared instruction stream feeding a sweep-shaped lane mix (see
// buildBatch). Quotas are instruction counts (the batch scheduler is
// quota-driven, which keeps lane tape positions converged), reusing the
// options' cycle budgets as goodpath-instruction budgets; Cycles and
// Instructions sum per cell — a shared core counts once per merged
// cell, mirroring how each campaign cell reports its core's full
// window — so KCyclesPerSec is effective sweep throughput, the rate at
// which the batch produces cell measurements, directly comparable to
// the k = 1 row to read lane scaling.
func MeasureBatchKernel(bench string, k int, opts Options) (KernelResult, error) {
	opts.defaults()
	if k <= 0 {
		return KernelResult{}, fmt.Errorf("perf: batch width must be positive, got %d", k)
	}
	b, cells, err := buildBatch(bench, k)
	if err != nil {
		return KernelResult{}, err
	}

	b.Run(opts.WarmupCycles)
	for _, c := range cells {
		c.ResetStats() // idempotent for shared cores
	}

	var msBefore, msAfter runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&msBefore)
	start := time.Now()
	b.Run(opts.MeasureCycles)
	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&msAfter)

	var cycles, retired uint64
	for _, c := range cells {
		cycles += c.Stats().Cycles
		retired += retiredGood(c)
	}
	res := KernelResult{
		Name:           fmt.Sprintf("%s/batch=%d", bench, k),
		BatchK:         k,
		Cycles:         cycles,
		Instructions:   retired,
		WallSeconds:    wall,
		KCyclesPerSec:  float64(cycles) / wall / 1e3,
		KInstrsPerSec:  float64(retired) / wall / 1e3,
		AllocsPerCycle: float64(msAfter.Mallocs-msBefore.Mallocs) / float64(cycles),
		BytesPerCycle:  float64(msAfter.TotalAlloc-msBefore.TotalAlloc) / float64(cycles),
		IPC:            float64(retired) / float64(cycles),
	}

	// Instrumented stage pass: lift the quotas so cycle-driven stepping
	// fetches freely, then step all lanes per call — st.Cycles counts
	// core-cycles, so divide the budget by the core count.
	b.FreeRun()
	var st cpu.StageTimes
	steps := opts.StageCycles / uint64(b.K())
	if steps == 0 {
		steps = 1
	}
	for i := uint64(0); i < steps; i++ {
		b.StepTimed(&st)
	}
	res.Stages = st.Fractions()
	return res, nil
}

// MeasureAll measures every named benchmark, plus an SMT configuration
// when smt is set, plus batched lockstep rows for each width in
// opts.BatchKs.
func MeasureAll(benches []string, smt bool, opts Options) (*Report, error) {
	if len(benches) == 0 {
		return nil, fmt.Errorf("perf: no benchmarks to measure")
	}
	rep := &Report{
		Schema:     Schema,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, b := range benches {
		r, err := MeasureKernel(b, opts)
		if err != nil {
			return nil, err
		}
		rep.Results = append(rep.Results, r)
	}
	if smt {
		smtOpts := opts
		smtOpts.SMT = true
		r, err := MeasureKernel(benches[0], smtOpts)
		if err != nil {
			return nil, err
		}
		rep.Results = append(rep.Results, r)
	}
	for _, b := range benches {
		for _, k := range opts.BatchKs {
			r, err := MeasureBatchKernel(b, k, opts)
			if err != nil {
				return nil, err
			}
			rep.Results = append(rep.Results, r)
		}
	}
	rep.computeBatchSpeedup()
	return rep, nil
}

// computeBatchSpeedup fills SpeedupBatch: the geometric-mean aggregate
// kcycles/sec ratio of every BatchK > 1 row over the BatchK = 1 row of
// the same benchmark.
func (r *Report) computeBatchSpeedup() {
	r.SpeedupBatch = 0
	base := map[string]float64{} // benchmark name -> K=1 rate
	for _, res := range r.Results {
		if res.BatchK == 1 {
			base[strings.TrimSuffix(res.Name, "/batch=1")] = res.KCyclesPerSec
		}
	}
	logSum, n := 0.0, 0
	for _, res := range r.Results {
		if res.BatchK <= 1 {
			continue
		}
		bench, _, ok := strings.Cut(res.Name, "/batch=")
		if !ok {
			continue
		}
		b := base[bench]
		if b <= 0 || res.KCyclesPerSec <= 0 {
			continue
		}
		logSum += math.Log(res.KCyclesPerSec / b)
		n++
	}
	if n > 0 {
		r.SpeedupBatch = math.Exp(logSum / float64(n))
	}
}

// AttachBaseline links a prior report and computes the geometric-mean
// kcycles/sec speedup over configurations present in both reports.
func (r *Report) AttachBaseline(base *Report) {
	r.Baseline = base
	r.SpeedupKCycles = 0
	byName := make(map[string]KernelResult, len(base.Results))
	for _, b := range base.Results {
		byName[b.Name] = b
	}
	logSum, n := 0.0, 0
	for _, cur := range r.Results {
		b, ok := byName[cur.Name]
		if !ok || b.KCyclesPerSec <= 0 || cur.KCyclesPerSec <= 0 {
			continue
		}
		logSum += math.Log(cur.KCyclesPerSec / b.KCyclesPerSec)
		n++
	}
	if n > 0 {
		r.SpeedupKCycles = math.Exp(logSum / float64(n))
	}
}

// WriteJSON renders the report with stable indentation.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport parses a report written by WriteJSON.
func ReadReport(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, err
	}
	if r.Schema != Schema && r.Schema != schemaV1 {
		return nil, fmt.Errorf("perf: unknown schema %q (want %q or %q)", r.Schema, Schema, schemaV1)
	}
	return &r, nil
}
