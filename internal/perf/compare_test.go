package perf

import (
	"strings"
	"testing"
)

func mkReport(rows ...KernelResult) *Report {
	return &Report{Schema: Schema, Results: rows}
}

func TestCompareReportsPassesWithinTolerance(t *testing.T) {
	base := mkReport(
		KernelResult{Name: "gzip", KCyclesPerSec: 1000},
		KernelResult{Name: "twolf", KCyclesPerSec: 800},
	)
	cur := mkReport(
		KernelResult{Name: "gzip", KCyclesPerSec: 950}, // -5%, inside 10%
		KernelResult{Name: "twolf", KCyclesPerSec: 900},
	)
	c := CompareReports(base, cur, 0.10)
	if !c.OK() {
		t.Fatalf("expected pass, got %+v", c)
	}
	if c.Compared != 2 {
		t.Fatalf("compared = %d, want 2", c.Compared)
	}
	if c.SpeedupKCycles <= 0 {
		t.Fatalf("geomean = %v, want > 0", c.SpeedupKCycles)
	}
}

func TestCompareReportsFlagsRegressionWithStage(t *testing.T) {
	base := mkReport(KernelResult{
		Name: "gzip", KCyclesPerSec: 1000,
		Stages: map[string]float64{"fetch": 0.30, "exec": 0.50, "retire": 0.20},
	})
	cur := mkReport(KernelResult{
		Name: "gzip", KCyclesPerSec: 600,
		Stages: map[string]float64{"fetch": 0.20, "exec": 0.70, "retire": 0.10},
	})
	c := CompareReports(base, cur, 0.10)
	if c.OK() || len(c.Regressions) != 1 {
		t.Fatalf("expected one regression, got %+v", c)
	}
	g := c.Regressions[0]
	if g.Name != "gzip" || g.Ratio != 0.6 {
		t.Fatalf("regression = %+v", g)
	}
	if g.Stage != "exec" {
		t.Fatalf("stage = %q, want exec (grew 0.5 -> 0.7)", g.Stage)
	}
	if g.StageGrowth < 0.19 || g.StageGrowth > 0.21 {
		t.Fatalf("stage growth = %v, want ~0.2", g.StageGrowth)
	}
	if !strings.Contains(g.String(), "exec") {
		t.Fatalf("String() = %q, want stage name", g.String())
	}
}

func TestCompareReportsWorstFirstAndMissing(t *testing.T) {
	base := mkReport(
		KernelResult{Name: "a", KCyclesPerSec: 100},
		KernelResult{Name: "b", KCyclesPerSec: 100},
		KernelResult{Name: "gone", KCyclesPerSec: 100},
	)
	cur := mkReport(
		KernelResult{Name: "a", KCyclesPerSec: 80},
		KernelResult{Name: "b", KCyclesPerSec: 40},
		KernelResult{Name: "new", KCyclesPerSec: 100}, // extra rows are fine
	)
	c := CompareReports(base, cur, 0.05)
	if len(c.Regressions) != 2 || c.Regressions[0].Name != "b" {
		t.Fatalf("want worst-first [b a], got %+v", c.Regressions)
	}
	if len(c.Missing) != 1 || c.Missing[0] != "gone" {
		t.Fatalf("missing = %v, want [gone]", c.Missing)
	}
	if c.OK() {
		t.Fatal("missing coverage must fail the gate")
	}
}

func TestSlowdownInjectsDetectableRegression(t *testing.T) {
	base := mkReport(
		KernelResult{Name: "gzip", KCyclesPerSec: 1000, KInstrsPerSec: 700, WallSeconds: 1},
		KernelResult{Name: "gzip/batch=8", BatchK: 8, KCyclesPerSec: 5000},
	)
	slow := base.Slowdown(0.5)
	if base.Results[0].KCyclesPerSec != 1000 {
		t.Fatal("Slowdown mutated the original report")
	}
	if slow.Results[0].KCyclesPerSec != 500 || slow.Results[0].WallSeconds != 2 {
		t.Fatalf("slowdown row = %+v", slow.Results[0])
	}
	c := CompareReports(base, slow, 0.10)
	if c.OK() || len(c.Regressions) != 2 {
		t.Fatalf("injected slowdown not flagged: %+v", c)
	}
	// Self-comparison passes even at zero tolerance.
	if self := CompareReports(base, base, 0); !self.OK() {
		t.Fatalf("self-comparison failed: %+v", self)
	}
}

func TestCompareText(t *testing.T) {
	base := mkReport(KernelResult{Name: "gzip", KCyclesPerSec: 1000})
	var sb strings.Builder
	CompareReports(base, base, 0.1).WriteText(&sb)
	if !strings.Contains(sb.String(), "ok: no regressions") {
		t.Fatalf("text = %q", sb.String())
	}
	sb.Reset()
	CompareReports(base, base.Slowdown(0.5), 0.1).WriteText(&sb)
	if !strings.Contains(sb.String(), "REGRESSED gzip") {
		t.Fatalf("text = %q", sb.String())
	}
}
