package perf

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestSamplerRates(t *testing.T) {
	var s Sampler
	if got := s.KCyclesPerSec(); got != 0 {
		t.Fatalf("zero sampler rate = %v, want 0", got)
	}
	s.Observe(1_000_000, time.Second)   // 1000 kcycles/sec
	s.Observe(1_000_000, 2*time.Second) // 500 kcycles/sec
	s.Observe(0, time.Second)           // counted, no rate effect
	s.Observe(5_000, -time.Second)      // counted, no rate effect
	cycles, wall, samples := s.Totals()
	if cycles != 2_000_000 || wall != 3*time.Second || samples != 4 {
		t.Fatalf("Totals() = %d cycles, %v wall, %d samples", cycles, wall, samples)
	}
	// Cumulative: 2M cycles over 3s = 666.67 kcycles/sec.
	if got := s.KCyclesPerSec(); math.Abs(got-2000.0/3.0) > 1e-9 {
		t.Fatalf("KCyclesPerSec() = %v, want %v", got, 2000.0/3.0)
	}
	if got := s.LastKCyclesPerSec(); math.Abs(got-500) > 1e-9 {
		t.Fatalf("LastKCyclesPerSec() = %v, want 500", got)
	}
}

func TestSamplerConcurrent(t *testing.T) {
	var s Sampler
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s.Observe(1000, time.Millisecond)
			}
		}()
	}
	wg.Wait()
	cycles, wall, samples := s.Totals()
	if cycles != 800_000 || wall != 800*time.Millisecond || samples != 800 {
		t.Fatalf("Totals() = %d cycles, %v wall, %d samples", cycles, wall, samples)
	}
}
