package perf

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// WithProfiles runs fn with optional CPU and heap profiling: the CLIs all
// take -cpuprofile/-memprofile so perf work starts from a profile, not a
// guess. Either path may be empty to skip that profile. The heap profile
// is a post-run snapshot of the live heap and is written even when fn
// fails — an hours-long sweep that returns a partial-failure error has
// still done the work worth profiling. fn's error takes precedence over
// profile-writing errors.
func WithProfiles(cpuPath, memPath string, fn func() error) error {
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	runErr := fn()
	if memPath != "" {
		if err := writeHeapProfile(memPath); err != nil && runErr == nil {
			runErr = err
		}
	}
	return runErr
}

func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC() // materialize the live heap before the snapshot
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
