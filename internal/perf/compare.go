package perf

import (
	"fmt"
	"io"
	"sort"
)

// The regression gate: CompareReports diffs two bench reports and names
// every configuration whose throughput fell by more than the tolerated
// fraction, attributing each regression to the pipeline stage whose
// share of kernel time grew the most. `paco-bench compare` wraps this
// for CI: nonzero exit when any regression survives the tolerance.

// Regression is one configuration whose current throughput fell below
// baseline * (1 - tolerance).
type Regression struct {
	// Name is the regressed configuration (a KernelResult name, e.g.
	// "gzip" or "gzip/batch=8").
	Name string `json:"name"`
	// BaselineKCycles and CurrentKCycles are the two throughput
	// readings in kcycles/sec.
	BaselineKCycles float64 `json:"baseline_kcycles_per_sec"`
	CurrentKCycles  float64 `json:"current_kcycles_per_sec"`
	// Ratio is current / baseline (< 1 - tolerance by construction).
	Ratio float64 `json:"ratio"`
	// Stage names the pipeline stage whose fraction of kernel time grew
	// the most between the runs — the prime suspect — with the growth
	// in fractional points. Empty when either run lacks a breakdown.
	Stage       string  `json:"stage,omitempty"`
	StageGrowth float64 `json:"stage_growth,omitempty"`
}

func (g Regression) String() string {
	s := fmt.Sprintf("%s: %.0f -> %.0f kcycles/sec (%.2fx)",
		g.Name, g.BaselineKCycles, g.CurrentKCycles, g.Ratio)
	if g.Stage != "" {
		s += fmt.Sprintf(", stage %q grew %+.1f pts", g.Stage, g.StageGrowth*100)
	}
	return s
}

// Comparison is the full result of diffing two reports.
type Comparison struct {
	// Tolerance is the fraction of throughput loss tolerated per
	// configuration before it counts as a regression.
	Tolerance float64 `json:"tolerance"`
	// Compared counts configurations present in both reports.
	Compared int `json:"compared"`
	// Missing lists baseline configurations absent from the current
	// report — a silent loss of coverage the gate also fails on.
	Missing []string `json:"missing,omitempty"`
	// Regressions are the configurations that fell past the tolerance,
	// sorted worst-first.
	Regressions []Regression `json:"regressions,omitempty"`
	// SpeedupKCycles is the geomean current/baseline throughput ratio
	// over the compared configurations.
	SpeedupKCycles float64 `json:"speedup_kcycles"`
}

// OK reports whether the gate passes: every baseline configuration was
// measured and none regressed past the tolerance.
func (c *Comparison) OK() bool { return len(c.Regressions) == 0 && len(c.Missing) == 0 }

// CompareReports diffs cur against base with the given tolerance
// (0.10 tolerates a 10% throughput drop per configuration). Rows are
// matched by Name; baseline rows missing from cur are reported in
// Missing, and extra rows in cur are ignored (new configurations are
// not regressions).
func CompareReports(base, cur *Report, tolerance float64) *Comparison {
	if tolerance < 0 {
		tolerance = 0
	}
	c := &Comparison{Tolerance: tolerance}
	curByName := make(map[string]KernelResult, len(cur.Results))
	for _, r := range cur.Results {
		curByName[r.Name] = r
	}
	for _, b := range base.Results {
		r, ok := curByName[b.Name]
		if !ok {
			c.Missing = append(c.Missing, b.Name)
			continue
		}
		if b.KCyclesPerSec <= 0 || r.KCyclesPerSec <= 0 {
			continue
		}
		c.Compared++
		ratio := r.KCyclesPerSec / b.KCyclesPerSec
		if ratio < 1-tolerance {
			reg := Regression{
				Name:            b.Name,
				BaselineKCycles: b.KCyclesPerSec,
				CurrentKCycles:  r.KCyclesPerSec,
				Ratio:           ratio,
			}
			reg.Stage, reg.StageGrowth = grownStage(b.Stages, r.Stages)
			c.Regressions = append(c.Regressions, reg)
		}
	}
	sort.Strings(c.Missing)
	sort.Slice(c.Regressions, func(i, j int) bool {
		if c.Regressions[i].Ratio != c.Regressions[j].Ratio {
			return c.Regressions[i].Ratio < c.Regressions[j].Ratio
		}
		return c.Regressions[i].Name < c.Regressions[j].Name
	})
	c.SpeedupKCycles = geomeanSpeedup(base, cur)
	return c
}

// grownStage returns the stage whose fraction grew the most from base
// to cur (ties broken by name for determinism), or "" when either
// breakdown is missing.
func grownStage(base, cur map[string]float64) (string, float64) {
	if len(base) == 0 || len(cur) == 0 {
		return "", 0
	}
	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)
	best, growth := "", 0.0
	for _, name := range names {
		if d := cur[name] - base[name]; d > growth {
			best, growth = name, d
		}
	}
	// Identical breakdowns (e.g. a synthetic slowdown) have no suspect.
	if growth <= 0 {
		return "", 0
	}
	return best, growth
}

// geomeanSpeedup is AttachBaseline's geomean without mutating either
// report.
func geomeanSpeedup(base, cur *Report) float64 {
	tmp := Report{Results: cur.Results}
	tmp.AttachBaseline(&Report{Results: base.Results})
	return tmp.SpeedupKCycles
}

// Slowdown returns a copy of r with every row's throughput scaled by
// factor (0.5 halves it) — the synthetic-regression injector the CI
// gate uses to prove `paco-bench compare` actually fails.
func (r *Report) Slowdown(factor float64) *Report {
	out := *r
	out.Results = make([]KernelResult, len(r.Results))
	copy(out.Results, r.Results)
	for i := range out.Results {
		out.Results[i].KCyclesPerSec *= factor
		out.Results[i].KInstrsPerSec *= factor
		if factor > 0 {
			out.Results[i].WallSeconds /= factor
		}
	}
	return &out
}

// WriteText renders the comparison for terminals and CI logs.
func (c *Comparison) WriteText(w io.Writer) {
	fmt.Fprintf(w, "compared %d configurations, tolerance %.0f%%, geomean %.2fx\n",
		c.Compared, c.Tolerance*100, c.SpeedupKCycles)
	for _, m := range c.Missing {
		fmt.Fprintf(w, "MISSING  %s: in baseline but not measured\n", m)
	}
	for _, g := range c.Regressions {
		fmt.Fprintf(w, "REGRESSED %s\n", g.String())
	}
	if c.OK() {
		fmt.Fprintln(w, "ok: no regressions")
	}
}
