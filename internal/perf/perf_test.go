package perf

import (
	"bytes"
	"math"
	"testing"
)

// quickOpts keeps test runtime in the tens of milliseconds.
func quickOpts() Options {
	return Options{WarmupCycles: 5_000, MeasureCycles: 20_000, StageCycles: 5_000}
}

func TestMeasureKernel(t *testing.T) {
	r, err := MeasureKernel("gzip", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "gzip" || r.Cycles != 20_000 {
		t.Fatalf("unexpected result header: %+v", r)
	}
	if r.KCyclesPerSec <= 0 || r.WallSeconds <= 0 {
		t.Fatalf("throughput not measured: %+v", r)
	}
	if r.IPC <= 0.1 || r.IPC > 8 {
		t.Fatalf("implausible simulated IPC %.3f", r.IPC)
	}
	var sum float64
	for _, f := range r.Stages {
		if f < 0 || f > 1 {
			t.Fatalf("stage fraction out of range: %v", r.Stages)
		}
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("stage fractions sum to %.6f, want 1", sum)
	}
}

func TestReportRoundTripAndSpeedup(t *testing.T) {
	rep, err := MeasureAll([]string{"gzip"}, false, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	base := &Report{
		Schema: Schema,
		Results: []KernelResult{
			{Name: "gzip", KCyclesPerSec: rep.Results[0].KCyclesPerSec / 2},
			{Name: "absent", KCyclesPerSec: 1},
		},
	}
	rep.AttachBaseline(base)
	if math.Abs(rep.SpeedupKCycles-2) > 1e-9 {
		t.Fatalf("speedup = %.4f, want 2", rep.SpeedupKCycles)
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.SpeedupKCycles != rep.SpeedupKCycles || len(back.Results) != len(rep.Results) {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, rep)
	}
	if back.Baseline == nil || len(back.Baseline.Results) != 2 {
		t.Fatalf("baseline lost in round trip")
	}
}

func TestReadReportRejectsUnknownSchema(t *testing.T) {
	if _, err := ReadReport(bytes.NewReader([]byte(`{"schema":"bogus/v9"}`))); err == nil {
		t.Fatal("unknown schema accepted")
	}
}

func TestMeasureKernelUnknownBenchmark(t *testing.T) {
	if _, err := MeasureKernel("not-a-benchmark", quickOpts()); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}
