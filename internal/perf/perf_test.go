package perf

import (
	"bytes"
	"fmt"
	"math"
	"testing"
)

// quickOpts keeps test runtime in the tens of milliseconds.
func quickOpts() Options {
	return Options{WarmupCycles: 5_000, MeasureCycles: 20_000, StageCycles: 5_000}
}

func TestMeasureKernel(t *testing.T) {
	r, err := MeasureKernel("gzip", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "gzip" || r.Cycles != 20_000 {
		t.Fatalf("unexpected result header: %+v", r)
	}
	if r.KCyclesPerSec <= 0 || r.WallSeconds <= 0 {
		t.Fatalf("throughput not measured: %+v", r)
	}
	if r.IPC <= 0.1 || r.IPC > 8 {
		t.Fatalf("implausible simulated IPC %.3f", r.IPC)
	}
	var sum float64
	for _, f := range r.Stages {
		if f < 0 || f > 1 {
			t.Fatalf("stage fraction out of range: %v", r.Stages)
		}
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("stage fractions sum to %.6f, want 1", sum)
	}
}

func TestReportRoundTripAndSpeedup(t *testing.T) {
	rep, err := MeasureAll([]string{"gzip"}, false, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	base := &Report{
		Schema: Schema,
		Results: []KernelResult{
			{Name: "gzip", KCyclesPerSec: rep.Results[0].KCyclesPerSec / 2},
			{Name: "absent", KCyclesPerSec: 1},
		},
	}
	rep.AttachBaseline(base)
	if math.Abs(rep.SpeedupKCycles-2) > 1e-9 {
		t.Fatalf("speedup = %.4f, want 2", rep.SpeedupKCycles)
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.SpeedupKCycles != rep.SpeedupKCycles || len(back.Results) != len(rep.Results) {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, rep)
	}
	if back.Baseline == nil || len(back.Baseline.Results) != 2 {
		t.Fatalf("baseline lost in round trip")
	}
}

func TestReadReportRejectsUnknownSchema(t *testing.T) {
	if _, err := ReadReport(bytes.NewReader([]byte(`{"schema":"bogus/v9"}`))); err == nil {
		t.Fatal("unknown schema accepted")
	}
}

func TestMeasureKernelUnknownBenchmark(t *testing.T) {
	if _, err := MeasureKernel("not-a-benchmark", quickOpts()); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestReadReportAcceptsV1(t *testing.T) {
	raw := []byte(`{"schema":"paco-bench/v1","results":[{"name":"gzip","kcycles_per_sec":100}]}`)
	r, err := ReadReport(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("v1 report rejected: %v", err)
	}
	if len(r.Results) != 1 || r.Results[0].BatchK != 0 {
		t.Fatalf("v1 report misparsed: %+v", r)
	}
}

func TestMeasureBatchKernel(t *testing.T) {
	for _, k := range []int{1, 4} {
		r, err := MeasureBatchKernel("gzip", k, quickOpts())
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("gzip/batch=%d", k); r.Name != want || r.BatchK != k {
			t.Fatalf("unexpected header for K=%d: %+v", k, r)
		}
		if r.KCyclesPerSec <= 0 || r.Instructions == 0 {
			t.Fatalf("K=%d throughput not measured: %+v", k, r)
		}
		// Quota-driven: every distinct core retires the full instruction
		// budget, so aggregate retirement scales with the lane count.
		if r.Instructions < uint64(k)*quickOpts().MeasureCycles {
			t.Fatalf("K=%d retired %d goodpath instructions, want >= %d",
				k, r.Instructions, uint64(k)*quickOpts().MeasureCycles)
		}
		var sum float64
		for _, f := range r.Stages {
			sum += f
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("K=%d stage fractions sum to %.6f, want 1", k, sum)
		}
	}
}

func TestMeasureAllBatchSpeedup(t *testing.T) {
	opts := quickOpts()
	opts.BatchKs = []int{1, 4}
	rep, err := MeasureAll([]string{"gzip"}, false, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 3 { // plain + batch=1 + batch=4
		t.Fatalf("got %d results, want 3: %+v", len(rep.Results), rep.Results)
	}
	if rep.SpeedupBatch <= 0 {
		t.Fatalf("batch speedup not computed: %+v", rep)
	}
	if rep.GOMAXPROCS <= 0 {
		t.Fatalf("GOMAXPROCS not recorded: %+v", rep)
	}
}
