// Package smt implements the paper's SMT fetch prioritization study
// (Section 5.2): an 8-wide two-thread machine whose per-cycle fetch
// bandwidth is granted by a pluggable policy. Policies implemented:
//
//   - ICOUNT (Tullsen et al.): fetch the thread with fewest in-flight
//     instructions.
//   - Threshold-and-count confidence (Luo et al.): fetch the thread with
//     fewer unresolved low-confidence branches, ICOUNT as tie-break, for
//     JRS thresholds 3/7/11/15.
//   - PaCo: fetch the thread with the higher goodpath probability (lower
//     encoded sum), ICOUNT as tie-break.
//   - Round-robin (reference).
package smt

import (
	"fmt"

	"paco/internal/core"
	"paco/internal/cpu"
	"paco/internal/metrics"
	"paco/internal/workload"
)

// Policy names a fetch prioritization scheme and builds its chooser.
type Policy interface {
	// Name labels the policy in tables.
	Name() string
	// Estimators returns the per-thread estimators the policy needs
	// attached (may be empty). Called once per thread.
	Estimators() []core.Estimator
	// Choose picks the fetching thread this cycle. estimators[tid] is the
	// slice returned by Estimators for that thread.
	Choose(c *cpu.Core, fetchable []int, estimators [][]core.Estimator) int
}

// RoundRobin alternates fetch among fetchable threads.
type RoundRobin struct{ turn int }

// Name implements Policy.
func (*RoundRobin) Name() string { return "RoundRobin" }

// Estimators implements Policy.
func (*RoundRobin) Estimators() []core.Estimator { return nil }

// Choose implements Policy.
func (p *RoundRobin) Choose(_ *cpu.Core, fetchable []int, _ [][]core.Estimator) int {
	p.turn++
	return fetchable[p.turn%len(fetchable)]
}

// ICount fetches the thread with the fewest in-flight instructions.
type ICount struct{}

// Name implements Policy.
func (ICount) Name() string { return "ICOUNT" }

// Estimators implements Policy.
func (ICount) Estimators() []core.Estimator { return nil }

// Choose implements Policy.
func (ICount) Choose(c *cpu.Core, fetchable []int, _ [][]core.Estimator) int {
	best := fetchable[0]
	for _, tid := range fetchable[1:] {
		if c.InFlight(tid) < c.InFlight(best) {
			best = tid
		}
	}
	return best
}

// ConfCount is the conventional confidence-based policy: the thread with
// fewer unresolved low-confidence branches fetches; ICOUNT breaks ties.
type ConfCount struct {
	// Threshold is the JRS confidence threshold.
	Threshold uint32
}

// Name implements Policy.
func (p ConfCount) Name() string { return fmt.Sprintf("JRS-thr%d", p.Threshold) }

// Estimators implements Policy.
func (p ConfCount) Estimators() []core.Estimator {
	return []core.Estimator{core.NewCountPredictor(p.Threshold)}
}

// Choose implements Policy.
func (p ConfCount) Choose(c *cpu.Core, fetchable []int, ests [][]core.Estimator) int {
	best := fetchable[0]
	bestCount := ests[best][0].(*core.CountPredictor).Count()
	for _, tid := range fetchable[1:] {
		n := ests[tid][0].(*core.CountPredictor).Count()
		switch {
		case n < bestCount:
			best, bestCount = tid, n
		case n == bestCount && c.InFlight(tid) < c.InFlight(best):
			best = tid
		}
	}
	return best
}

// PaCoPolicy prioritizes by goodpath probability with a dead band. A
// strict per-cycle argmax starves the partner of a highly predictable
// benchmark outright (its sum sits near 0 and the argmax never flips —
// unlike the counter baseline, whose frequent 0-0 ties fall back to
// ICOUNT and accidentally restore fairness). Instead the policy grants
// priority only when one thread's goodpath probability clearly dominates
// (encoded sums differ by more than Delta, i.e. a probability ratio above
// ~2^(Delta/1024)); otherwise it balances with ICOUNT. The comparison is
// a single integer subtract against a constant — no decoding.
type PaCoPolicy struct {
	// RefreshPeriod overrides the MRT logarithmization period (0 =
	// default).
	RefreshPeriod uint64
	// Delta is the encoded-sum dead band; 0 selects DefaultPolicyDelta.
	Delta int64
}

// DefaultPolicyDelta corresponds to a goodpath probability ratio of ~1.5:
// below it the threads' fetch slots are roughly equally valuable and
// ICOUNT balance wins; above it one thread is mostly fetching garbage.
const DefaultPolicyDelta = 600

// Name implements Policy.
func (*PaCoPolicy) Name() string { return "PaCo" }

// Estimators implements Policy.
func (p *PaCoPolicy) Estimators() []core.Estimator {
	return []core.Estimator{core.NewPaCo(core.PaCoConfig{RefreshPeriod: p.RefreshPeriod})}
}

// Choose implements Policy.
func (p *PaCoPolicy) Choose(c *cpu.Core, fetchable []int, ests [][]core.Estimator) int {
	delta := p.Delta
	if delta == 0 {
		delta = DefaultPolicyDelta
	}
	best := fetchable[0]
	bestSum := ests[best][0].(*core.PaCo).EncodedSum()
	for _, tid := range fetchable[1:] {
		s := ests[tid][0].(*core.PaCo).EncodedSum()
		switch {
		case s < bestSum-delta:
			best, bestSum = tid, s
		case s <= bestSum+delta && c.InFlight(tid) < c.InFlight(best):
			// Within the dead band: ICOUNT balance.
			best, bestSum = tid, s
		}
	}
	return best
}

// Pair is one SMT workload pairing.
type Pair struct{ A, B string }

// String returns "a-b".
func (p Pair) String() string { return p.A + "-" + p.B }

// Pairs16 is the 16-pair schedule of the paper's Figure 12: every
// benchmark runs with 3 others (gzip with 2), and parser is excluded (the
// paper's SMT simulator could not run it — kept for fidelity).
var Pairs16 = []Pair{
	{"bzip2", "crafty"}, {"bzip2", "gcc"}, {"bzip2", "mcf"},
	{"crafty", "gap"}, {"crafty", "vortex"},
	{"gcc", "gap"}, {"gcc", "twolf"},
	{"gap", "mcf"},
	{"gzip", "vortex"}, {"gzip", "vprRoute"},
	{"mcf", "twolf"},
	{"perlbmk", "vortex"}, {"perlbmk", "vprPlace"}, {"perlbmk", "vprRoute"},
	{"twolf", "vprPlace"},
	{"vprPlace", "vprRoute"},
}

// RunConfig sizes one SMT measurement.
type RunConfig struct {
	// WarmupCycles and MeasureCycles bound the run.
	WarmupCycles, MeasureCycles uint64
	// Machine is the core configuration (cpu.SMTConfig() for the paper's
	// Table 11 machine).
	Machine cpu.Config
}

// RunPair executes one benchmark pair under one policy and returns the two
// threads' IPCs over the measurement window.
func RunPair(cfg RunConfig, pair Pair, pol Policy) (ipcA, ipcB float64, err error) {
	c, err := cpu.New(cfg.Machine)
	if err != nil {
		return 0, 0, err
	}
	ests := make([][]core.Estimator, 2)
	for i, name := range []string{pair.A, pair.B} {
		spec, err := workload.NewBenchmark(name)
		if err != nil {
			return 0, 0, err
		}
		ests[i] = pol.Estimators()
		if _, err := c.AddThread(spec, ests[i]); err != nil {
			return 0, 0, err
		}
	}
	c.SetChooser(func(_ uint64, fetchable []int) int {
		return pol.Choose(c, fetchable, ests)
	})
	c.RunCycles(cfg.WarmupCycles)
	c.ResetStats()
	c.RunCycles(cfg.MeasureCycles)
	return c.IPC(0), c.IPC(1), nil
}

// SingleIPC measures one benchmark running alone on the same machine (the
// HMWIPC weighting baseline).
func SingleIPC(cfg RunConfig, name string) (float64, error) {
	c, err := cpu.New(cfg.Machine)
	if err != nil {
		return 0, err
	}
	spec, err := workload.NewBenchmark(name)
	if err != nil {
		return 0, err
	}
	if _, err := c.AddThread(spec, nil); err != nil {
		return 0, err
	}
	c.RunCycles(cfg.WarmupCycles)
	c.ResetStats()
	c.RunCycles(cfg.MeasureCycles)
	return c.IPC(0), nil
}

// HMWIPCForPair combines single-thread and SMT IPCs (Equation 6).
func HMWIPCForPair(singleA, singleB, smtA, smtB float64) float64 {
	return metrics.HMWIPC([]float64{singleA, singleB}, []float64{smtA, smtB})
}
