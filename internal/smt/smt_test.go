package smt

import (
	"testing"

	"paco/internal/cpu"
)

func testRC() RunConfig {
	return RunConfig{WarmupCycles: 5_000, MeasureCycles: 20_000, Machine: cpu.SMTConfig()}
}

func TestPairs16Schedule(t *testing.T) {
	if len(Pairs16) != 16 {
		t.Fatalf("%d pairs, want 16", len(Pairs16))
	}
	counts := map[string]int{}
	for _, p := range Pairs16 {
		counts[p.A]++
		counts[p.B]++
		if p.A == p.B {
			t.Fatalf("self-pair %v", p)
		}
	}
	if counts["parser"] != 0 {
		t.Fatal("parser must be excluded (paper's SMT simulator could not run it)")
	}
	if counts["gzip"] != 2 {
		t.Fatalf("gzip appears %d times, want 2", counts["gzip"])
	}
	for name, n := range counts {
		if name != "gzip" && n != 3 {
			t.Fatalf("%s appears %d times, want 3", name, n)
		}
	}
}

func TestPolicyNames(t *testing.T) {
	if (ICount{}).Name() != "ICOUNT" {
		t.Fatal("ICount name")
	}
	if (ConfCount{Threshold: 7}).Name() != "JRS-thr7" {
		t.Fatal("ConfCount name")
	}
	if (&PaCoPolicy{}).Name() != "PaCo" {
		t.Fatal("PaCo name")
	}
	if (&RoundRobin{}).Name() != "RoundRobin" {
		t.Fatal("RoundRobin name")
	}
}

func TestSingleIPC(t *testing.T) {
	ipc, err := SingleIPC(testRC(), "gzip")
	if err != nil {
		t.Fatal(err)
	}
	if ipc <= 0.2 || ipc > 8 {
		t.Fatalf("single IPC %.3f implausible", ipc)
	}
}

func TestRunPairAllPolicies(t *testing.T) {
	pair := Pair{A: "gzip", B: "bzip2"}
	for _, pol := range []Policy{
		&RoundRobin{}, ICount{}, ConfCount{Threshold: 3}, &PaCoPolicy{RefreshPeriod: 5000},
	} {
		a, b, err := RunPair(testRC(), pair, pol)
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if a <= 0 || b <= 0 {
			t.Fatalf("%s starved a thread: %.3f / %.3f", pol.Name(), a, b)
		}
	}
}

func TestRunPairUnknownBenchmark(t *testing.T) {
	if _, _, err := RunPair(testRC(), Pair{A: "gzip", B: "nope"}, ICount{}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestHMWIPCForPair(t *testing.T) {
	if got := HMWIPCForPair(2, 2, 1, 1); got != 0.5 {
		t.Fatalf("HMWIPC = %v", got)
	}
}

func TestPairString(t *testing.T) {
	if (Pair{A: "a", B: "b"}).String() != "a-b" {
		t.Fatal("pair string")
	}
}
