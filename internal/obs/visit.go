package obs

// Scrape-free sampling: VisitSamples walks every registered family and
// hands the visitor one SeriesSample per live series. It is the
// foundation the tsdb package samples through — unlike WritePrometheus
// it renders nothing, and for push-based instruments (Counter, Gauge,
// CounterVec, Histogram, HistogramVec) the walk performs zero
// allocations in steady state: label strings are cached when a series
// is created, samples are passed by value, and no intermediate slices
// are built. Callback-backed families (CounterFunc/GaugeFunc/Func) cost
// whatever their callbacks cost.

// SeriesSample is one series' current value as seen by VisitSamples.
type SeriesSample struct {
	// Family is the metric family name (e.g. "paco_jobs_total").
	Family string
	// Type is the family type: "counter", "gauge", or "histogram".
	Type string
	// Labels is the rendered label set, `{k="v",...}` or "" for an
	// unlabeled series — already in exposition form so consumers can key
	// on Family+Labels without re-rendering.
	Labels string
	// Value is the series value: the count for counters, the level for
	// gauges, and the observation count for histograms.
	Value float64
	// Hist is non-nil for histogram series: the live histogram, so
	// consumers can derive Sum()/Quantile(q) without allocating.
	Hist *Histogram
}

// SampleVisitor receives one SeriesSample per live series from
// VisitSamples. It is an interface rather than a func so implementors
// can be visited without a closure allocation.
type SampleVisitor interface {
	Sample(s SeriesSample)
}

// VisitSamples walks every family in registration order and calls
// v.Sample once per live series. The registry lock is held for the
// duration: visitors must be quick and must not register new families.
func (r *Registry) VisitSamples(v SampleVisitor) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.families {
		f.visit(v)
	}
}

func (c *Counter) visit(v SampleVisitor) {
	v.Sample(SeriesSample{Family: c.name, Type: "counter", Value: float64(c.v.Load())})
}

func (g *Gauge) visit(v SampleVisitor) {
	v.Sample(SeriesSample{Family: g.name, Type: "gauge", Value: g.Value()})
}

func (f *funcFamily) visit(v SampleVisitor) {
	f.collect(func(val float64, labels ...Label) {
		v.Sample(SeriesSample{Family: f.name, Type: f.typ, Labels: formatLabels(labels), Value: val})
	})
}

func (v *CounterVec) visit(vis SampleVisitor) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, s := range v.ordered {
		vis.Sample(SeriesSample{Family: v.name, Type: "counter", Labels: s.labels, Value: float64(s.c.v.Load())})
	}
}

func (h *Histogram) visit(v SampleVisitor) {
	v.Sample(SeriesSample{Family: h.name, Type: "histogram",
		Value: float64(h.count.Load()), Hist: h})
}

func (v *HistogramVec) visit(vis SampleVisitor) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, s := range v.ordered {
		vis.Sample(SeriesSample{Family: v.name, Type: "histogram", Labels: s.labelStr,
			Value: float64(s.h.count.Load()), Hist: s.h})
	}
}
