package obs

import "runtime"

// RegisterGoRuntime adds Go runtime gauges to the registry under the
// given name prefix (e.g. "paco_"):
//
//	<prefix>go_goroutines                    live goroutines
//	<prefix>go_memstats_heap_alloc_bytes     bytes of allocated heap objects
//	<prefix>go_gc_pause_seconds_total        cumulative GC stop-the-world pause
//	<prefix>go_gc_cycles_total               completed GC cycles
//
// Each memstats-backed family takes its own ReadMemStats snapshot:
// scrapes are rare and may run concurrently, so a shared snapshot would
// need a lock that costs more than the redundant read.
func RegisterGoRuntime(r *Registry, prefix string) {
	r.GaugeFunc(prefix+"go_goroutines",
		"Goroutines that currently exist.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc(prefix+"go_memstats_heap_alloc_bytes",
		"Bytes of allocated heap objects.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	r.CounterFunc(prefix+"go_gc_pause_seconds_total",
		"Cumulative garbage-collection stop-the-world pause time.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.PauseTotalNs) / 1e9
		})
	r.CounterFunc(prefix+"go_gc_cycles_total",
		"Completed garbage-collection cycles.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.NumGC)
		})
}
