package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Spans and the flight recorder.
//
// A Span is a cheap timed region: Start captures a clock reading and an
// ID, End copies the finished record into a lock-striped ring buffer —
// the flight recorder — where it stays until overwritten by newer
// spans. The recorder answers "what did the last campaign actually do"
// after the fact: the server exposes a Snapshot at GET /debug/flight,
// filterable by kind and trace, and the servertest federation asserts a
// complete lease→result chain for every shard from it.
//
// Spans are values, not pointers: Start returns a Span by value, End is
// a plain struct copy into a pre-sized ring slot, and a disabled span
// (nil *Recorder) is a zero struct whose methods no-op — so the
// instrumented per-cell path performs zero allocations whether or not a
// recorder is attached (enforced by AllocsPerRun tests).

// maxSpanAttrs bounds per-span attributes; Set calls beyond it are
// dropped. Fixed so spans never allocate.
const maxSpanAttrs = 6

// Attr is one span attribute.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// record is the compact in-ring representation of a finished span.
type record struct {
	id, parent uint64
	trace      string
	kind, name string
	start, end time.Time
	err        string
	attrs      [maxSpanAttrs]Attr
	nattrs     int
}

// SpanRecord is the exported, JSON-friendly form of a finished span —
// what GET /debug/flight returns.
type SpanRecord struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Trace  string `json:"trace,omitempty"`
	Kind   string `json:"kind"`
	Name   string `json:"name"`

	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
	// DurationMS is End - Start in milliseconds, precomputed for
	// consumers that only aggregate.
	DurationMS float64 `json:"duration_ms"`

	Err   string `json:"error,omitempty"`
	Attrs []Attr `json:"attrs,omitempty"`
}

// Attr returns the value of the named attribute ("" when absent).
func (sr *SpanRecord) Attr(key string) string {
	for _, a := range sr.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// stripe is one lock-striped ring segment.
type stripe struct {
	mu      sync.Mutex
	buf     []record
	next    int    // next write position
	seen    uint64 // spans ever written to this stripe
	dropped uint64 // spans overwritten before ever being read out
}

const recorderStripes = 8

// Recorder is the flight recorder: finished spans land in one of
// recorderStripes ring segments (selected by span ID, so concurrent
// End calls rarely contend on one lock) and survive until the ring
// wraps. A nil *Recorder is a valid, disabled recorder.
type Recorder struct {
	stripes [recorderStripes]stripe
	nextID  atomic.Uint64
	active  atomic.Int64
}

// NewRecorder builds a flight recorder retaining up to capacity spans
// (<= 0 selects 4096), split evenly across the lock stripes.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 4096
	}
	per := (capacity + recorderStripes - 1) / recorderStripes
	if per < 1 {
		per = 1
	}
	r := &Recorder{}
	for i := range r.stripes {
		r.stripes[i].buf = make([]record, 0, per)
	}
	return r
}

// Span is an in-flight timed region. The zero Span (and any Span from a
// nil Recorder) is disabled: all methods no-op.
type Span struct {
	rec        *Recorder
	id, parent uint64
	trace      string
	kind, name string
	start      time.Time
	attrs      [maxSpanAttrs]Attr
	nattrs     int
}

// Start opens a span. trace correlates spans across processes (see
// NewTraceID), kind groups spans for filtering ("job", "shard.lease",
// "cell", ...), name identifies the instance, and parent (0 for roots)
// links the span into its causal chain. Nil-safe: a nil Recorder
// returns a disabled Span.
func (r *Recorder) Start(trace, kind, name string, parent uint64) Span {
	if r == nil {
		return Span{}
	}
	r.active.Add(1)
	return Span{
		rec:    r,
		id:     r.nextID.Add(1),
		parent: parent,
		trace:  trace,
		kind:   kind,
		name:   name,
		start:  time.Now(),
	}
}

// Enabled reports whether the span records anywhere — check it before
// formatting expensive attribute values.
func (s *Span) Enabled() bool { return s.rec != nil }

// ID returns the span's ID (0 when disabled), for parenting children.
func (s *Span) ID() uint64 { return s.id }

// Set attaches a key=value attribute; attributes beyond maxSpanAttrs
// are dropped. No-op on a disabled span.
func (s *Span) Set(key, value string) {
	if s.rec == nil || s.nattrs >= maxSpanAttrs {
		return
	}
	s.attrs[s.nattrs] = Attr{Key: key, Value: value}
	s.nattrs++
}

// End finishes the span and commits it to the flight recorder. errMsg
// non-empty marks the span failed. No-op on a disabled span; a second
// End is also a no-op.
func (s *Span) End(errMsg string) {
	rec := s.rec
	if rec == nil {
		return
	}
	s.rec = nil
	rec.active.Add(-1)
	st := &rec.stripes[s.id%recorderStripes]
	st.mu.Lock()
	r := record{
		id: s.id, parent: s.parent,
		trace: s.trace, kind: s.kind, name: s.name,
		start: s.start, end: time.Now(),
		err:    errMsg,
		nattrs: s.nattrs,
	}
	r.attrs = s.attrs
	if len(st.buf) < cap(st.buf) {
		st.buf = append(st.buf, r)
	} else {
		st.buf[st.next] = r
		st.dropped++
	}
	st.next = (st.next + 1) % cap(st.buf)
	st.seen++
	st.mu.Unlock()
}

// ErrString renders an error for Span.End: "" for nil.
func ErrString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// Active reports spans started but not yet ended — the "is anything
// still unfinished" gauge the CI flight check reads.
func (r *Recorder) Active() int64 {
	if r == nil {
		return 0
	}
	return r.active.Load()
}

// Recorded reports how many spans have ever been committed.
func (r *Recorder) Recorded() uint64 {
	if r == nil {
		return 0
	}
	var total uint64
	for i := range r.stripes {
		st := &r.stripes[i]
		st.mu.Lock()
		total += st.seen
		st.mu.Unlock()
	}
	return total
}

// Dropped reports how many finished spans the ring has overwritten —
// the obs_spans_dropped_total counter. A nonzero value means the ring
// wrapped and /debug/flight no longer holds the full history.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	var total uint64
	for i := range r.stripes {
		st := &r.stripes[i]
		st.mu.Lock()
		total += st.dropped
		st.mu.Unlock()
	}
	return total
}

// Capacity reports how many finished spans the ring retains.
func (r *Recorder) Capacity() int {
	if r == nil {
		return 0
	}
	n := 0
	for i := range r.stripes {
		n += cap(r.stripes[i].buf)
	}
	return n
}

// Filter selects spans from a Snapshot. Zero fields match everything.
type Filter struct {
	// Kind, when nonempty, keeps only spans of that kind.
	Kind string
	// Trace, when nonempty, keeps only spans of that trace.
	Trace string
	// Since, when nonzero, keeps only spans that ended strictly after
	// it — pass the End of the last span already seen to poll the ring
	// incrementally.
	Since time.Time
	// Limit, when > 0, keeps only the most recent Limit spans (after
	// the other filters).
	Limit int
}

// Snapshot returns the retained finished spans matching f, oldest
// first (by end time, span ID breaking ties).
func (r *Recorder) Snapshot(f Filter) []SpanRecord {
	if r == nil {
		return nil
	}
	var recs []record
	for i := range r.stripes {
		st := &r.stripes[i]
		st.mu.Lock()
		for j := range st.buf {
			rec := &st.buf[j]
			if f.Kind != "" && rec.kind != f.Kind {
				continue
			}
			if f.Trace != "" && rec.trace != f.Trace {
				continue
			}
			if !f.Since.IsZero() && !rec.end.After(f.Since) {
				continue
			}
			recs = append(recs, *rec)
		}
		st.mu.Unlock()
	}
	sort.Slice(recs, func(i, j int) bool {
		if !recs[i].end.Equal(recs[j].end) {
			return recs[i].end.Before(recs[j].end)
		}
		return recs[i].id < recs[j].id
	})
	if f.Limit > 0 && len(recs) > f.Limit {
		recs = recs[len(recs)-f.Limit:]
	}
	out := make([]SpanRecord, len(recs))
	for i := range recs {
		rec := &recs[i]
		sr := SpanRecord{
			ID: rec.id, Parent: rec.parent,
			Trace: rec.trace, Kind: rec.kind, Name: rec.name,
			Start:      rec.start,
			End:        rec.end,
			DurationMS: rec.end.Sub(rec.start).Seconds() * 1e3,
			Err:        rec.err,
		}
		if rec.nattrs > 0 {
			sr.Attrs = append([]Attr(nil), rec.attrs[:rec.nattrs]...)
		}
		out[i] = sr
	}
	return out
}
