package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// LintExposition parses a Prometheus text-format exposition and returns
// every violation found (nil when clean). It enforces what the /metrics
// tests and the CI smoke rely on:
//
//   - every sample line parses: valid metric name, well-formed quoted
//     labels, a float64 value, optional integer timestamp
//   - # HELP and # TYPE precede their family's first sample, appear at
//     most once per family, and TYPE names a known metric type
//   - a family's samples are contiguous (no family appears, yields to
//     another, then reappears)
//   - no duplicate series (same name and label set twice)
//   - histogram sub-series (_bucket/_sum/_count) belong to a family
//     declared "# TYPE ... histogram", and _bucket carries an le label
//
// The parser is intentionally strict about structure and permissive
// about values — counters may be floats, gauges may be ±Inf — matching
// what Prometheus itself accepts.
func LintExposition(r io.Reader) []error {
	var errs []error
	fail := func(line int, format string, args ...any) {
		errs = append(errs, fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}

	type familyState struct {
		help, typ   string
		sampled     bool // family has emitted at least one sample
		closed      bool // a different family has sampled since
		helpN, typN int  // occurrences
	}
	families := make(map[string]*familyState)
	family := func(name string) *familyState {
		f := families[name]
		if f == nil {
			f = &familyState{}
			families[name] = f
		}
		return f
	}
	series := make(map[string]int) // rendered name+labels -> first line
	lastFamily := ""

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	n := 0
	for sc.Scan() {
		n++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, ok := parseComment(line)
			if !ok {
				continue // free-form comment: legal, ignored
			}
			f := family(name)
			if !validMetricName(name) {
				fail(n, "# %s names invalid metric %q", kind, name)
			}
			if f.sampled {
				fail(n, "# %s %s appears after the family's samples", kind, name)
			}
			switch kind {
			case "HELP":
				f.helpN++
				if f.helpN > 1 {
					fail(n, "duplicate # HELP for %s", name)
				}
				f.help = rest
			case "TYPE":
				f.typN++
				if f.typN > 1 {
					fail(n, "duplicate # TYPE for %s", name)
				}
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
					f.typ = rest
				default:
					fail(n, "# TYPE %s has unknown type %q", name, rest)
				}
			}
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			fail(n, "%v", err)
			continue
		}
		_ = value
		// Histogram/summary sub-series (_bucket/_sum/_count) report under
		// their declared base family; anything else is its own family.
		base := name
		if b := baseFamily(name); b != name {
			if fb := families[b]; fb != nil && (fb.typ == "histogram" || fb.typ == "summary") {
				base = b
			}
		}
		f := families[base]
		if f == nil || f.typ == "" {
			fail(n, "sample %s has no preceding # TYPE %s", name, base)
			f = family(base)
		}
		if f.closed {
			fail(n, "family %s reappears after other families' samples", base)
		}
		if strings.HasSuffix(name, "_bucket") && f.typ == "histogram" {
			if !strings.Contains(labels, `le="`) {
				fail(n, "histogram bucket %s missing le label", name)
			}
		}
		if base != lastFamily {
			if last := families[lastFamily]; last != nil && last.sampled {
				last.closed = true
			}
			lastFamily = base
		}
		f.sampled = true
		key := name + labels
		if first, dup := series[key]; dup {
			fail(n, "duplicate series %s%s (first at line %d)", name, labels, first)
		} else {
			series[key] = n
		}
	}
	if err := sc.Err(); err != nil {
		errs = append(errs, fmt.Errorf("reading exposition: %w", err))
	}
	return errs
}

// parseComment splits "# HELP name rest" / "# TYPE name rest".
func parseComment(line string) (kind, name, rest string, ok bool) {
	body, found := strings.CutPrefix(line, "# ")
	if !found {
		return "", "", "", false
	}
	kind, body, found = strings.Cut(body, " ")
	if !found || (kind != "HELP" && kind != "TYPE") {
		return "", "", "", false
	}
	name, rest, _ = strings.Cut(body, " ")
	return kind, name, rest, true
}

// parseSample parses one sample line into its metric name, the raw
// (normalized) label block, and the value.
func parseSample(line string) (name, labels string, value float64, err error) {
	rest := line
	i := 0
	for i < len(rest) && rest[i] != '{' && rest[i] != ' ' {
		i++
	}
	name = rest[:i]
	if !validMetricName(name) {
		return "", "", 0, fmt.Errorf("invalid metric name in %q", line)
	}
	rest = rest[i:]
	if strings.HasPrefix(rest, "{") {
		end, perr := parseLabelBlock(rest)
		if perr != nil {
			return "", "", 0, fmt.Errorf("%v in %q", perr, line)
		}
		labels = rest[:end]
		rest = rest[end:]
	}
	rest = strings.TrimLeft(rest, " ")
	valueStr, tsStr, _ := strings.Cut(rest, " ")
	if valueStr == "" {
		return "", "", 0, fmt.Errorf("missing value in %q", line)
	}
	value, err = parseFloat(valueStr)
	if err != nil {
		return "", "", 0, fmt.Errorf("bad value %q in %q", valueStr, line)
	}
	if tsStr = strings.TrimSpace(tsStr); tsStr != "" {
		if _, terr := strconv.ParseInt(tsStr, 10, 64); terr != nil {
			return "", "", 0, fmt.Errorf("bad timestamp %q in %q", tsStr, line)
		}
	}
	return name, labels, value, nil
}

func parseFloat(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(+1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseLabelBlock validates a {k="v",...} block starting at s[0] == '{'
// and returns the index just past the closing brace.
func parseLabelBlock(s string) (int, error) {
	i := 1 // past '{'
	for {
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label block")
		}
		if s[i] == '}' {
			return i + 1, nil
		}
		// label name
		start := i
		for i < len(s) && s[i] != '=' && s[i] != '}' && s[i] != ',' {
			i++
		}
		if i >= len(s) || s[i] != '=' {
			return 0, fmt.Errorf("label missing '='")
		}
		if !validLabelName(s[start:i]) {
			return 0, fmt.Errorf("invalid label name %q", s[start:i])
		}
		i++ // past '='
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("label value not quoted")
		}
		i++ // past opening quote
		for {
			if i >= len(s) {
				return 0, fmt.Errorf("unterminated label value")
			}
			if s[i] == '\\' {
				if i+1 >= len(s) {
					return 0, fmt.Errorf("dangling escape in label value")
				}
				switch s[i+1] {
				case '\\', '"', 'n':
					i += 2
					continue
				default:
					return 0, fmt.Errorf("invalid escape \\%c in label value", s[i+1])
				}
			}
			if s[i] == '"' {
				i++
				break
			}
			i++
		}
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}

// baseFamily maps a sample name to its family name: histogram and
// summary sub-series (_bucket, _sum, _count) report under their base
// metric when that base was declared.
func baseFamily(name string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suffix); ok && base != "" {
			return base
		}
	}
	return name
}
