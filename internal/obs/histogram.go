package obs

import (
	"bufio"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// atomicFloat is a float64 behind an atomic CAS loop, so Histogram sums
// accumulate without a lock or an allocation.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// Histogram is a fixed-bucket histogram: cumulative _bucket series per
// upper bound (plus +Inf), _sum, and _count, in Prometheus histogram
// convention. Observe is lock-free and allocation-free — safe on the
// per-cell simulation path — and nil-safe, so disabled instrumentation
// costs a nil check.
type Histogram struct {
	name, help string
	bounds     []float64 // sorted upper bounds, +Inf implicit
	counts     []atomic.Uint64
	count      atomic.Uint64
	sum        atomicFloat
}

// DurationBuckets is the default bucket layout for wall-time
// observations, spanning 100µs to 30s — wide enough for a microsecond
// HTTP route and a multi-second simulation shard in one family.
func DurationBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
		0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
	}
}

// ExpBuckets returns n buckets starting at start, each factor times the
// previous.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = start
		start *= factor
	}
	return b
}

func newHistogram(name, help string, buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DurationBuckets()
	}
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	for i := 1; i < len(bounds); i++ {
		if bounds[i] == bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s has duplicate bucket bound %v", name, bounds[i]))
		}
	}
	return &Histogram{
		name:   name,
		help:   help,
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)),
	}
}

// Histogram registers a histogram family. buckets are upper bounds
// (+Inf is implicit); nil selects DurationBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	h := newHistogram(name, help, buckets)
	r.register(h)
	return h
}

// Observe records one value. Nil-safe, lock-free, allocation-free.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket counts are small (tens), and a plain loop is
	// provably allocation-free, unlike a closure-based binary search.
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	h.sum.add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.load()
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket
// counts by linear interpolation inside the selected bucket — the
// /metrics consumer's p50/p99 helper. The estimate is bounded by the
// bucket layout: values in the +Inf bucket report the largest finite
// bound. Returns NaN when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.count.Load() == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	total := h.count.Load()
	rank := q * float64(total)
	var cum uint64
	for i, b := range h.bounds {
		c := h.counts[i].Load()
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + (b-lo)*frac
		}
		cum += c
	}
	// Observations beyond the last finite bound: report that bound.
	return h.bounds[len(h.bounds)-1]
}

func (h *Histogram) meta() (string, string, string) { return h.name, h.help, "histogram" }
func (h *Histogram) write(w *bufio.Writer) {
	h.writeLabeled(w, nil)
}

// writeLabeled renders the histogram's series with extra (vec) labels
// prepended to le.
func (h *Histogram) writeLabeled(w *bufio.Writer, extra []Label) {
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		labels := append(append([]Label(nil), extra...), Label{Key: "le", Value: formatValue(b)})
		writeSample(w, h.name+"_bucket", formatLabels(labels), float64(cum))
	}
	infLabels := append(append([]Label(nil), extra...), Label{Key: "le", Value: "+Inf"})
	count := h.count.Load()
	writeSample(w, h.name+"_bucket", formatLabels(infLabels), float64(count))
	writeSample(w, h.name+"_sum", formatLabels(extra), h.sum.load())
	writeSample(w, h.name+"_count", formatLabels(extra), float64(count))
}

// histSeries is one labeled histogram of a HistogramVec, with the vec
// label pair and its exposition rendering cached at creation.
type histSeries struct {
	key      string  // label value — the sort key
	labels   []Label // the single vec label pair, for writeLabeled
	labelStr string  // rendered {label="value"}
	h        *Histogram
}

// HistogramVec is a histogram family keyed by one label (e.g. HTTP
// route), with per-value histograms created on first use and rendered
// sorted by label value.
type HistogramVec struct {
	name, help string
	label      string
	buckets    []float64

	mu      sync.Mutex
	m       map[string]*histSeries
	ordered []*histSeries // sorted by key, maintained on insert
}

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help, label string, buckets []float64) *HistogramVec {
	if !validLabelName(label) {
		panic(fmt.Sprintf("obs: invalid label name %q", label))
	}
	if len(buckets) == 0 {
		buckets = DurationBuckets()
	}
	v := &HistogramVec{name: name, help: help, label: label,
		buckets: append([]float64(nil), buckets...), m: make(map[string]*histSeries)}
	r.register(v)
	return v
}

// With returns the histogram for the given label value, creating it on
// first use. Nil-safe (returns a nil *Histogram whose Observe is a
// no-op).
func (v *HistogramVec) With(value string) *Histogram {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	s := v.m[value]
	if s == nil {
		labels := []Label{{Key: v.label, Value: value}}
		s = &histSeries{key: value, labels: labels, labelStr: formatLabels(labels),
			h: newHistogram(v.name, v.help, v.buckets)}
		v.m[value] = s
		at := sort.Search(len(v.ordered), func(i int) bool { return v.ordered[i].key >= value })
		v.ordered = append(v.ordered, nil)
		copy(v.ordered[at+1:], v.ordered[at:])
		v.ordered[at] = s
	}
	return s.h
}

func (v *HistogramVec) meta() (string, string, string) { return v.name, v.help, "histogram" }
func (v *HistogramVec) write(w *bufio.Writer) {
	v.mu.Lock()
	series := make([]*histSeries, len(v.ordered))
	copy(series, v.ordered)
	v.mu.Unlock()
	for _, s := range series {
		s.h.writeLabeled(w, s.labels)
	}
}
