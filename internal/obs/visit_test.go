package obs

import (
	"testing"
	"time"
)

type collectVisitor struct{ got []SeriesSample }

func (c *collectVisitor) Sample(s SeriesSample) { c.got = append(c.got, s) }

func TestVisitSamplesCoversEveryFamilyKind(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c")
	g := r.Gauge("g", "g")
	r.GaugeFunc("gf", "gf", func() float64 { return 42 })
	r.Func("f", "counter", "f", func(emit func(v float64, labels ...Label)) {
		emit(7, L("k", "v"))
	})
	cv := r.CounterVec("cv_total", "cv", "route")
	h := r.Histogram("h", "h", []float64{1, 10})
	hv := r.HistogramVec("hv", "hv", "stage", []float64{1, 10})

	c.Add(5)
	g.Set(2.5)
	cv.With("/b").Add(2)
	cv.With("/a").Inc()
	h.Observe(3)
	h.Observe(3)
	hv.With("sim").Observe(0.5)

	var v collectVisitor
	r.VisitSamples(&v)

	byKey := map[string]SeriesSample{}
	for _, s := range v.got {
		byKey[s.Family+s.Labels] = s
	}
	want := []struct {
		key  string
		typ  string
		val  float64
		hist bool
	}{
		{"c_total", "counter", 5, false},
		{"g", "gauge", 2.5, false},
		{"gf", "gauge", 42, false},
		{`f{k="v"}`, "counter", 7, false},
		{`cv_total{route="/a"}`, "counter", 1, false},
		{`cv_total{route="/b"}`, "counter", 2, false},
		{"h", "histogram", 2, true},
		{`hv{stage="sim"}`, "histogram", 1, true},
	}
	if len(v.got) != len(want) {
		t.Fatalf("visited %d series, want %d: %+v", len(v.got), len(want), v.got)
	}
	for _, w := range want {
		s, ok := byKey[w.key]
		if !ok {
			t.Fatalf("series %q not visited", w.key)
		}
		if s.Type != w.typ || s.Value != w.val || (s.Hist != nil) != w.hist {
			t.Fatalf("series %q = %+v, want type %s value %v hist %v",
				w.key, s, w.typ, w.val, w.hist)
		}
	}
	// Vec series visit in label order.
	var order []string
	for _, s := range v.got {
		if s.Family == "cv_total" {
			order = append(order, s.Labels)
		}
	}
	if len(order) != 2 || order[0] != `{route="/a"}` || order[1] != `{route="/b"}` {
		t.Fatalf("cv series order = %v, want sorted by label value", order)
	}
}

func TestVisitSamplesAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c")
	g := r.Gauge("g", "g")
	cv := r.CounterVec("cv_total", "cv", "route")
	h := r.Histogram("h", "h", []float64{1, 10})
	hv := r.HistogramVec("hv", "hv", "stage", []float64{1, 10})
	c.Inc()
	g.Set(1)
	cv.With("/a").Inc()
	h.Observe(1)
	hv.With("x").Observe(1)

	var v nopVisitor
	avg := testing.AllocsPerRun(1000, func() { r.VisitSamples(&v) })
	if avg != 0 {
		t.Fatalf("VisitSamples over push instruments allocates %.1f times, want 0", avg)
	}
}

type nopVisitor struct{ n int }

func (v *nopVisitor) Sample(SeriesSample) { v.n++ }

func TestRecorderDropped(t *testing.T) {
	rec := NewRecorder(recorderStripes) // one slot per stripe
	if rec.Dropped() != 0 {
		t.Fatalf("fresh recorder Dropped = %d, want 0", rec.Dropped())
	}
	for i := 0; i < 3*recorderStripes; i++ {
		s := rec.Start("t", "k", "n", 0)
		s.End("")
	}
	// Ring capacity is recorderStripes; everything beyond was dropped.
	if got, want := rec.Dropped(), uint64(2*recorderStripes); got != want {
		t.Fatalf("Dropped = %d, want %d", got, want)
	}
	if rec.Recorded() != 3*recorderStripes {
		t.Fatalf("Recorded = %d, want %d", rec.Recorded(), 3*recorderStripes)
	}
}

func TestSnapshotSinceFilter(t *testing.T) {
	rec := NewRecorder(64)
	s1 := rec.Start("t", "k", "old", 0)
	s1.End("")
	all := rec.Snapshot(Filter{})
	if len(all) != 1 {
		t.Fatalf("snapshot = %d spans, want 1", len(all))
	}
	cut := all[0].End
	time.Sleep(time.Millisecond)
	s2 := rec.Start("t", "k", "new", 0)
	s2.End("")

	got := rec.Snapshot(Filter{Since: cut})
	if len(got) != 1 || got[0].Name != "new" {
		t.Fatalf("since filter returned %+v, want just the newer span", got)
	}
	// Strictly-after: passing the newest End returns nothing, so a
	// poller never sees the same span twice.
	newest := rec.Snapshot(Filter{})
	if n := rec.Snapshot(Filter{Since: newest[len(newest)-1].End}); len(n) != 0 {
		t.Fatalf("since = newest end returned %d spans, want 0", len(n))
	}
}
