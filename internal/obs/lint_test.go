package obs

import (
	"strings"
	"testing"
)

func lintText(s string) []error {
	return LintExposition(strings.NewReader(s))
}

func TestLintAcceptsWellFormed(t *testing.T) {
	good := `# HELP a_total Things.
# TYPE a_total counter
a_total 3
# HELP b_seconds Latency.
# TYPE b_seconds histogram
b_seconds_bucket{le="0.1"} 1
b_seconds_bucket{le="+Inf"} 2
b_seconds_sum 1.5
b_seconds_count 2
# HELP c_depth Depth.
# TYPE c_depth gauge
c_depth{q="a\"b\\c\nd"} 2.5e-3
c_depth{q="plain"} +Inf
`
	if errs := lintText(good); errs != nil {
		t.Fatalf("well-formed exposition rejected: %v", errs)
	}
}

func TestLintCatches(t *testing.T) {
	cases := []struct {
		name, text, wantSub string
	}{
		{"missing TYPE", "a_total 1\n", "no preceding # TYPE"},
		{"duplicate series", "# HELP a x\n# TYPE a gauge\na 1\na 2\n", "duplicate series"},
		{"duplicate labeled series",
			"# HELP a x\n# TYPE a gauge\na{l=\"v\"} 1\na{l=\"v\"} 2\n", "duplicate series"},
		{"bad name", "# HELP 9bad x\n# TYPE 9bad gauge\n9bad 1\n", "invalid metric"},
		{"bad value", "# HELP a x\n# TYPE a gauge\na one\n", "bad value"},
		{"unquoted label", "# HELP a x\n# TYPE a gauge\na{l=v} 1\n", "not quoted"},
		{"unterminated label", "# HELP a x\n# TYPE a gauge\na{l=\"v} 1\n", "unterminated"},
		{"bad escape", "# HELP a x\n# TYPE a gauge\na{l=\"\\t\"} 1\n", "invalid escape"},
		{"unknown type", "# HELP a x\n# TYPE a widget\na 1\n", "unknown type"},
		{"duplicate TYPE", "# TYPE a gauge\n# TYPE a gauge\na 1\n", "duplicate # TYPE"},
		{"metadata after samples", "# TYPE a gauge\na 1\n# HELP a late\n", "after the family's samples"},
		{"interleaved families",
			"# TYPE a gauge\n# TYPE b gauge\na 1\nb 1\na 2\n", "reappears"},
		{"bucket without le",
			"# HELP h x\n# TYPE h histogram\nh_bucket 1\nh_sum 1\nh_count 1\n", "missing le"},
		{"missing value", "# HELP a x\n# TYPE a gauge\na \n", "missing value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			errs := lintText(tc.text)
			if len(errs) == 0 {
				t.Fatalf("lint accepted:\n%s", tc.text)
			}
			found := false
			for _, e := range errs {
				if strings.Contains(e.Error(), tc.wantSub) {
					found = true
				}
			}
			if !found {
				t.Fatalf("errors %v missing %q", errs, tc.wantSub)
			}
		})
	}
}

func TestLintStandaloneCountMetric(t *testing.T) {
	// A plain gauge whose name happens to end in _count is its own
	// family, not an undeclared histogram sub-series.
	text := "# HELP foo_count x\n# TYPE foo_count gauge\nfoo_count 1\n"
	if errs := lintText(text); errs != nil {
		t.Fatalf("standalone _count family rejected: %v", errs)
	}
}
