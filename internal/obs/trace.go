package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"strings"
	"sync/atomic"
)

// Trace IDs. A trace ID is minted once per unit of externally visible
// work (paco-serve mints one at POST /v1/jobs when the client didn't
// supply its own) and threaded through every span, log line, and
// coordinator→worker hop via the TraceHeader HTTP header — so one grep
// over structured logs, or one /debug/flight?trace= query, correlates a
// distributed run end-to-end.

// TraceHeader is the HTTP header that carries a trace ID between
// processes: set by clients on POST /v1/jobs, echoed on responses, sent
// coordinator→worker on lease responses, and returned worker→
// coordinator on renew/result posts.
const TraceHeader = "X-Paco-Trace"

// tracePrefix makes IDs from different processes distinguishable: 4
// random bytes, hex. The process-local counter provides uniqueness.
var tracePrefix = func() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "paco0000"
	}
	return hex.EncodeToString(b[:])
}()

var traceCounter atomic.Uint64

// NewTraceID mints a process-unique trace ID: "<prefix>-<counter>".
// IDs are identifiers, not secrets; they only need to not collide
// across the processes of one deployment.
func NewTraceID() string {
	return fmt.Sprintf("%s-%06x", tracePrefix, traceCounter.Add(1))
}

// TraceKey is the slog attribute key every trace-scoped log line uses,
// so `grep 'trace=<id>'` (text handler) or a JSON field match pulls one
// run's lines from interleaved output.
const TraceKey = "trace"

// NopLogger returns a logger that discards everything — the default for
// library components whose caller didn't wire logging.
func NopLogger() *slog.Logger {
	return slog.New(slog.DiscardHandler)
}

// OrNop returns l, or a discarding logger when l is nil, so components
// can log unconditionally.
func OrNop(l *slog.Logger) *slog.Logger {
	if l == nil {
		return NopLogger()
	}
	return l
}

// ParseLevel parses a log level name ("debug", "info", "warn"/"warning",
// "error", any case, plus slog's "INFO+2" offset form) — the shared
// parser behind the -log-level flag and PUT /debug/loglevel.
func ParseLevel(s string) (slog.Level, error) {
	if strings.EqualFold(s, "warning") {
		s = "warn"
	}
	var l slog.Level
	if err := l.UnmarshalText([]byte(s)); err != nil {
		return 0, fmt.Errorf("unknown log level %q (want debug, info, warn, or error)", s)
	}
	return l, nil
}
