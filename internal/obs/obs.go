// Package obs is paco's observability substrate: a stdlib-only metrics
// registry rendering Prometheus text exposition format, cheap timed
// spans collected into a lock-striped ring-buffer flight recorder, and
// trace-ID helpers that correlate one job's work across processes.
//
// Three design rules shape the package:
//
//   - Instrumentation must cost nothing when disabled. Every hot-path
//     entry point is nil-safe — Observe on a nil *Histogram, Start on a
//     nil *Recorder, End on a disabled Span are all no-ops that perform
//     zero allocations (enforced by AllocsPerRun tests), so PR 2's
//     allocation-free kernel guarantee survives instrumentation.
//   - Scrapes are read-only. Gauge and counter families may be backed
//     by live callbacks (CounterFunc/GaugeFunc/Func) so /metrics renders
//     current state without the instrumented code pushing samples.
//   - Output is deterministic: families render in registration order,
//     labeled series render sorted by label value, and every family is
//     preceded by exactly one HELP and one TYPE line — the properties
//     LintExposition checks.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// family is one named metric family: HELP/TYPE metadata, a sample
// writer, and a sample visitor. Families render themselves so plain,
// labeled, callback-backed, and histogram families can share one
// registry.
type family interface {
	meta() (name, help, typ string)
	write(w *bufio.Writer)
	visit(v SampleVisitor)
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Register families at construction time (methods
// panic on duplicate names — a programming error); Observe/Set/Add from
// any goroutine; render with WritePrometheus.
type Registry struct {
	mu       sync.Mutex
	families []family
	names    map[string]struct{}
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]struct{})}
}

func (r *Registry) register(f family) {
	name, _, _ := f.meta()
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.names[name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric family %q", name))
	}
	r.names[name] = struct{}{}
	r.families = append(r.families, f)
}

// WritePrometheus renders every registered family in registration
// order: # HELP, # TYPE, then the family's samples.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	bw := bufio.NewWriter(w)
	for _, f := range fams {
		name, help, typ := f.meta()
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		f.write(bw)
	}
	return bw.Flush()
}

// validMetricName reports whether name matches the Prometheus metric
// name grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabelName reports whether name matches [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// Label is one label pair of a sample.
type Label struct{ Key, Value string }

// L builds a Label — sugar for Func collectors.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote, and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// formatLabels renders {k="v",...}; empty labels render as "".
func formatLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a sample value: integers without a fraction,
// everything else shortest-round-trip.
func formatValue(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func writeSample(w *bufio.Writer, name, labels string, v float64) {
	w.WriteString(name)
	w.WriteString(labels)
	w.WriteByte(' ')
	w.WriteString(formatValue(v))
	w.WriteByte('\n')
}

// Counter is a monotonically increasing uint64 metric.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// Counter registers and returns a counter family with one unlabeled
// series.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.register(c)
	return c
}

// Inc adds one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Nil-safe.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) meta() (string, string, string) { return c.name, c.help, "counter" }
func (c *Counter) write(w *bufio.Writer)          { writeSample(w, c.name, "", float64(c.v.Load())) }

// Gauge is a settable float64 metric.
type Gauge struct {
	name, help string
	bits       atomic.Uint64
}

// Gauge registers and returns a gauge family with one unlabeled series.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.register(g)
	return g
}

// Set stores v. Nil-safe.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta with a CAS loop. Nil-safe.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) meta() (string, string, string) { return g.name, g.help, "gauge" }
func (g *Gauge) write(w *bufio.Writer) {
	writeSample(w, g.name, "", math.Float64frombits(g.bits.Load()))
}

// funcFamily backs CounterFunc/GaugeFunc/Func: samples are produced by a
// callback at scrape time, so the instrumented code never pushes.
type funcFamily struct {
	name, help, typ string
	collect         func(emit func(v float64, labels ...Label))
}

func (f *funcFamily) meta() (string, string, string) { return f.name, f.help, f.typ }
func (f *funcFamily) write(w *bufio.Writer) {
	f.collect(func(v float64, labels ...Label) {
		writeSample(w, f.name, formatLabels(labels), v)
	})
}

// CounterFunc registers a counter family whose single series is read
// from fn at scrape time.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&funcFamily{name: name, help: help, typ: "counter",
		collect: func(emit func(float64, ...Label)) { emit(fn()) }})
}

// GaugeFunc registers a gauge family whose single series is read from
// fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&funcFamily{name: name, help: help, typ: "gauge",
		collect: func(emit func(float64, ...Label)) { emit(fn()) }})
}

// Func registers a family (typ "counter" or "gauge") whose series —
// possibly several, each with its own labels — are produced by collect
// at scrape time. collect must emit deterministically ordered samples.
func (r *Registry) Func(name, typ, help string, collect func(emit func(v float64, labels ...Label))) {
	if typ != "counter" && typ != "gauge" {
		panic(fmt.Sprintf("obs: Func type must be counter or gauge, got %q", typ))
	}
	r.register(&funcFamily{name: name, help: help, typ: typ, collect: collect})
}

// counterSeries is one labeled series of a CounterVec, with its
// exposition label string rendered once at creation so renders and
// VisitSamples walks never rebuild it.
type counterSeries struct {
	key    string // values joined with \xff — the sort key
	labels string // rendered {k="v",...}
	c      *Counter
}

// CounterVec is a counter family with labeled series, created on first
// use and rendered sorted by label values.
type CounterVec struct {
	name, help string
	labels     []string

	mu      sync.Mutex
	m       map[string]*counterSeries
	ordered []*counterSeries // sorted by key, maintained on insert
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic("obs: CounterVec needs at least one label")
	}
	for _, l := range labels {
		if !validLabelName(l) {
			panic(fmt.Sprintf("obs: invalid label name %q", l))
		}
	}
	v := &CounterVec{name: name, help: help, labels: labels, m: make(map[string]*counterSeries)}
	r.register(v)
	return v
}

// With returns the series for the given label values (one per declared
// label, in order), creating it on first use.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: %s takes %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	v.mu.Lock()
	defer v.mu.Unlock()
	s := v.m[key]
	if s == nil {
		labels := make([]Label, len(v.labels))
		for i := range v.labels {
			labels[i] = Label{Key: v.labels[i], Value: values[i]}
		}
		s = &counterSeries{key: key, labels: formatLabels(labels), c: &Counter{}}
		v.m[key] = s
		at := sort.Search(len(v.ordered), func(i int) bool { return v.ordered[i].key >= key })
		v.ordered = append(v.ordered, nil)
		copy(v.ordered[at+1:], v.ordered[at:])
		v.ordered[at] = s
	}
	return s.c
}

func (v *CounterVec) meta() (string, string, string) { return v.name, v.help, "counter" }
func (v *CounterVec) write(w *bufio.Writer) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, s := range v.ordered {
		writeSample(w, v.name, s.labels, float64(s.c.v.Load()))
	}
}
