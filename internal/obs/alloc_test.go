package obs

import (
	"testing"
	"time"
)

// The per-cell simulation path carries a span and two histogram
// observations. PR 2 pinned the kernel at zero steady-state allocations;
// these guards pin the instrumentation at the same bar so observability
// cannot silently reintroduce per-cell garbage:
//
//   - a disabled span (nil Recorder) must cost nothing, because the
//     default paco/paco-campaign CLI path runs with no recorder;
//   - histogram Observe must be allocation-free even when enabled,
//     because paco-serve observes every cell;
//   - an ENABLED span must also record allocation-free: Start/Set/End
//     only copy value types into a pre-sized ring slot.

func TestDisabledSpanZeroAllocs(t *testing.T) {
	var rec *Recorder
	if avg := testing.AllocsPerRun(1000, func() {
		sp := rec.Start("trace", "cell", "bench", 0)
		sp.Set("k", "v")
		sp.End("")
	}); avg != 0 {
		t.Fatalf("disabled span allocates %.1f per op, want 0", avg)
	}
}

func TestEnabledSpanZeroAllocs(t *testing.T) {
	rec := NewRecorder(128)
	if avg := testing.AllocsPerRun(1000, func() {
		sp := rec.Start("trace", "cell", "bench", 7)
		sp.Set("k", "v")
		sp.End("")
	}); avg != 0 {
		t.Fatalf("enabled span allocates %.1f per op, want 0", avg)
	}
}

func TestHistogramObserveZeroAllocs(t *testing.T) {
	h := newHistogram("h_seconds", "h.", DurationBuckets())
	if avg := testing.AllocsPerRun(1000, func() {
		h.Observe(0.0042)
	}); avg != 0 {
		t.Fatalf("histogram Observe allocates %.1f per op, want 0", avg)
	}
	var disabled *Histogram
	if avg := testing.AllocsPerRun(1000, func() {
		disabled.Observe(0.0042)
	}); avg != 0 {
		t.Fatalf("nil histogram Observe allocates %.1f per op, want 0", avg)
	}
}

// TestQuiescentCellPathZeroAllocs is the composed guard: the exact
// sequence the campaign runner performs per cell when paco-serve
// instrumentation is attached — queue-wait observe, span open, simulate
// (stubbed), duration observe, span close — allocates nothing.
func TestQuiescentCellPathZeroAllocs(t *testing.T) {
	rec := NewRecorder(128)
	wait := newHistogram("w_seconds", "w.", nil)
	dur := newHistogram("d_seconds", "d.", nil)
	runStart := time.Now()
	if avg := testing.AllocsPerRun(1000, func() {
		wait.Observe(time.Since(runStart).Seconds())
		sp := rec.Start("trace", "cell", "bench", 3)
		start := time.Now()
		dur.Observe(time.Since(start).Seconds())
		sp.End("")
	}); avg != 0 {
		t.Fatalf("instrumented cell path allocates %.1f per op, want 0", avg)
	}
}
