// Package tsdb is paco's in-process time-series store: a fixed-capacity
// ring buffer of samples per metric series, fed by walking an
// obs.Registry at a configurable interval. It answers the question the
// point-in-time /metrics scrape cannot — how a counter, gauge, or
// histogram quantile *evolved* over the last few minutes — and backs
// GET /v1/timeseries, the /debug/dash sparklines, and the campaign
// report's throughput timelines.
//
// Design rules, inherited from internal/obs:
//
//   - Sampling must be allocation-free in steady state. The store
//     implements obs.SampleVisitor directly (no closure per pass), ring
//     slots are preallocated, series lookups reuse the label strings
//     obs caches per series (two-level map, no key concatenation), and
//     histogram quantiles come from obs.Histogram.Quantile, which is
//     itself allocation-free. Only the *first* sighting of a series
//     allocates its ring. (Callback-backed registry families cost
//     whatever their callbacks cost — see obs.VisitSamples.)
//   - Capacity is fixed. Each series keeps the newest Points samples;
//     the store refuses new series beyond MaxSeries rather than grow
//     without bound, counting the refusals in SeriesDropped.
//   - Queries are deterministic: series sort by (family, labels),
//     points oldest-first, counters are returned as per-second rates
//     between consecutive samples plus min/max/avg/rate rollups over
//     the requested window.
package tsdb

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"paco/internal/obs"
)

// Point is one sample: wall-clock unix milliseconds and a value.
type Point struct {
	T int64   `json:"t"`
	V float64 `json:"v"`
}

// ring is the fixed-capacity sample buffer of one series.
type ring struct {
	family string
	labels string
	typ    string // "counter", "gauge", "histogram"
	pts    []Point
	next   int
}

func (rg *ring) push(t int64, v float64) {
	if len(rg.pts) < cap(rg.pts) {
		rg.pts = append(rg.pts, Point{T: t, V: v})
		return
	}
	rg.pts[rg.next] = Point{T: t, V: v}
	rg.next = (rg.next + 1) % cap(rg.pts)
}

// ordered appends the ring's points oldest-first to dst.
func (rg *ring) ordered(dst []Point) []Point {
	if len(rg.pts) < cap(rg.pts) {
		return append(dst, rg.pts...)
	}
	dst = append(dst, rg.pts[rg.next:]...)
	return append(dst, rg.pts[:rg.next]...)
}

// histEntry holds the derived quantile rings of one live histogram,
// keyed by the *obs.Histogram pointer so the steady-state sampling path
// never builds a lookup key.
type histEntry struct {
	quantiles []float64
	rings     []*ring
}

// Config configures a Store.
type Config struct {
	// Registry is the metrics registry to sample. Required.
	Registry *obs.Registry
	// Interval is the sampling period of Start's background loop
	// (default 1s).
	Interval time.Duration
	// Points is the per-series ring capacity (default 240 — four
	// minutes of history at the default interval).
	Points int
	// MaxSeries bounds the total series count, quantile series
	// included (default 2048). New series beyond it are dropped and
	// counted in SeriesDropped.
	MaxSeries int
	// Quantiles are the per-histogram derived series (default 0.5 and
	// 0.99, exposed as <family>_p50 and <family>_p99).
	Quantiles []float64
}

// Store samples a registry into per-series rings. Create with New,
// start the background sampler with Start (or drive it manually with
// SampleNow), query with Query, and stop with Close.
type Store struct {
	reg       *obs.Registry
	interval  time.Duration
	points    int
	maxSeries int
	quantiles []float64

	mu       sync.Mutex
	sampleT  int64                       // unix millis of the pass in progress
	families map[string]map[string]*ring // family -> labels -> ring
	hist     map[*obs.Histogram]*histEntry
	nseries  int
	ndropped uint64
	samples  uint64

	stop chan struct{}
	done chan struct{}
}

// New builds a Store over cfg.Registry. It does not sample until Start
// or SampleNow.
func New(cfg Config) *Store {
	if cfg.Registry == nil {
		panic("tsdb: Config.Registry is required")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.Points <= 0 {
		cfg.Points = 240
	}
	if cfg.MaxSeries <= 0 {
		cfg.MaxSeries = 2048
	}
	if len(cfg.Quantiles) == 0 {
		cfg.Quantiles = []float64{0.5, 0.99}
	}
	return &Store{
		reg:       cfg.Registry,
		interval:  cfg.Interval,
		points:    cfg.Points,
		maxSeries: cfg.MaxSeries,
		quantiles: append([]float64(nil), cfg.Quantiles...),
		families:  make(map[string]map[string]*ring),
		hist:      make(map[*obs.Histogram]*histEntry),
	}
}

// Interval returns the configured sampling period.
func (st *Store) Interval() time.Duration { return st.interval }

// SampleNow takes one sampling pass over the registry, stamping every
// series with the same wall-clock reading. Steady-state passes over
// push-based instruments perform zero allocations.
func (st *Store) SampleNow() {
	st.mu.Lock()
	st.sampleT = time.Now().UnixMilli()
	st.samples++
	st.reg.VisitSamples(st)
	st.mu.Unlock()
}

// Sample implements obs.SampleVisitor. Called with st.mu held by
// SampleNow (via Registry.VisitSamples).
func (st *Store) Sample(s obs.SeriesSample) {
	rg := st.lookup(s.Family, s.Labels, s.Type)
	if rg != nil {
		rg.push(st.sampleT, s.Value)
	}
	if s.Hist == nil {
		return
	}
	he := st.hist[s.Hist]
	if he == nil {
		he = st.newHistEntry(s.Family, s.Labels)
		st.hist[s.Hist] = he
	}
	for i, q := range he.quantiles {
		if he.rings[i] == nil {
			continue
		}
		v := s.Hist.Quantile(q)
		if math.IsNaN(v) {
			v = 0
		}
		he.rings[i].push(st.sampleT, v)
	}
}

// lookup finds or creates the ring for (family, labels). Returns nil
// when the series budget is exhausted.
func (st *Store) lookup(family, labels, typ string) *ring {
	byLabels := st.families[family]
	if byLabels == nil {
		byLabels = make(map[string]*ring, 1)
		st.families[family] = byLabels
	}
	rg := byLabels[labels]
	if rg == nil {
		if st.nseries >= st.maxSeries {
			st.ndropped++
			return nil
		}
		rg = &ring{family: family, labels: labels, typ: typ,
			pts: make([]Point, 0, st.points)}
		byLabels[labels] = rg
		st.nseries++
	}
	return rg
}

// newHistEntry builds the derived quantile rings for one histogram
// series — the only histogram-path allocation, paid once per series.
func (st *Store) newHistEntry(family, labels string) *histEntry {
	he := &histEntry{
		quantiles: st.quantiles,
		rings:     make([]*ring, len(st.quantiles)),
	}
	for i, q := range st.quantiles {
		he.rings[i] = st.lookup(family+quantileSuffix(q), labels, "gauge")
	}
	return he
}

// quantileSuffix renders a quantile as a metric-name suffix: 0.5 →
// "_p50", 0.99 → "_p99", 0.999 → "_p99_9".
func quantileSuffix(q float64) string {
	s := fmt.Sprintf("_p%g", q*100)
	return strings.ReplaceAll(s, ".", "_")
}

// Start launches the background sampling loop at the configured
// interval. Close stops it.
func (st *Store) Start() {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.stop != nil {
		return
	}
	st.stop = make(chan struct{})
	st.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		t := time.NewTicker(st.interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				st.SampleNow()
			}
		}
	}(st.stop, st.done)
}

// Close stops the background sampler (if started) and waits for it.
func (st *Store) Close() {
	st.mu.Lock()
	stop, done := st.stop, st.done
	st.stop, st.done = nil, nil
	st.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// Stats reports the store's own health: series held, series refused,
// and sampling passes taken.
func (st *Store) Stats() (series int, dropped, samples uint64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.nseries, st.ndropped, st.samples
}

// Query selects series. Zero fields match everything.
type Query struct {
	// Family, when nonempty, keeps only series of that exact family
	// (derived quantile series are families too: e.g. "x_p99").
	Family string
	// Labels, when nonempty, keeps only series whose rendered label
	// string equals it (e.g. `{route="/v1/jobs"}`).
	Labels string
	// Since, when nonzero, keeps only points at or after it.
	Since time.Time
	// MaxPoints, when > 0, keeps only the newest MaxPoints points per
	// series (after Since).
	MaxPoints int
}

// Series is one queried series with its windowed points and rollups.
// Counter series return per-second rates between consecutive raw
// samples (so a monotone counter plots as throughput); gauges and
// quantiles return raw values.
type Series struct {
	Family string  `json:"family"`
	Type   string  `json:"type"`
	Labels string  `json:"labels,omitempty"`
	Points []Point `json:"points"`

	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	Avg  float64 `json:"avg"`
	Last float64 `json:"last"`
	// Rate is the per-second change across the window — meaningful for
	// counters (overall throughput) and reported for gauges too (slope).
	Rate float64 `json:"rate"`
}

// Query returns the matching series sorted by (family, labels), each
// with points oldest-first and rollups over the returned window.
func (st *Store) Query(q Query) []Series {
	st.mu.Lock()
	var rings []*ring
	for fam, byLabels := range st.families {
		if q.Family != "" && fam != q.Family {
			continue
		}
		for labels, rg := range byLabels {
			if q.Labels != "" && labels != q.Labels {
				continue
			}
			rings = append(rings, rg)
		}
	}
	// Copy the matched points out under the lock; summarize after.
	type matched struct {
		rg  *ring
		pts []Point
	}
	ms := make([]matched, 0, len(rings))
	for _, rg := range rings {
		ms = append(ms, matched{rg: rg, pts: rg.ordered(nil)})
	}
	st.mu.Unlock()

	out := make([]Series, 0, len(ms))
	sinceMS := int64(math.MinInt64)
	if !q.Since.IsZero() {
		sinceMS = q.Since.UnixMilli()
	}
	for _, m := range ms {
		pts := m.pts
		for len(pts) > 0 && pts[0].T < sinceMS {
			pts = pts[1:]
		}
		s := Series{Family: m.rg.family, Type: m.rg.typ, Labels: m.rg.labels}
		// Rate over the raw window: throughput for counters, slope for
		// gauges — computed before any rate conversion below.
		if len(pts) >= 2 {
			first, last := pts[0], pts[len(pts)-1]
			if dt := float64(last.T-first.T) / 1e3; dt > 0 {
				s.Rate = (last.V - first.V) / dt
			}
		}
		if m.rg.typ == "counter" || m.rg.typ == "histogram" {
			pts = ratePoints(pts)
			s.Type = "rate"
		}
		if q.MaxPoints > 0 && len(pts) > q.MaxPoints {
			pts = pts[len(pts)-q.MaxPoints:]
		}
		s.Points = pts
		summarize(&s)
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Family != out[j].Family {
			return out[i].Family < out[j].Family
		}
		return out[i].Labels < out[j].Labels
	})
	return out
}

// ratePoints converts cumulative samples to per-second rates between
// consecutive points, stamped at the later point. Resets (value
// decreasing, e.g. process restart) clamp to zero.
func ratePoints(pts []Point) []Point {
	if len(pts) < 2 {
		return nil
	}
	out := make([]Point, 0, len(pts)-1)
	for i := 1; i < len(pts); i++ {
		dt := float64(pts[i].T-pts[i-1].T) / 1e3
		if dt <= 0 {
			continue
		}
		dv := pts[i].V - pts[i-1].V
		if dv < 0 {
			dv = 0
		}
		out = append(out, Point{T: pts[i].T, V: dv / dt})
	}
	return out
}

// summarize fills a Series' min/max/avg/last rollups from its points
// (Rate is computed by Query over the raw pre-conversion window).
func summarize(s *Series) {
	if len(s.Points) == 0 {
		return
	}
	min, max, sum := math.Inf(1), math.Inf(-1), 0.0
	for _, p := range s.Points {
		if p.V < min {
			min = p.V
		}
		if p.V > max {
			max = p.V
		}
		sum += p.V
	}
	s.Min, s.Max = min, max
	s.Avg = sum / float64(len(s.Points))
	s.Last = s.Points[len(s.Points)-1].V
}
