package tsdb

import (
	"sync"
	"testing"
	"time"

	"paco/internal/obs"
)

func TestSampleAndQueryCounterRates(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("jobs_total", "jobs")
	st := New(Config{Registry: reg, Points: 16})

	st.SampleNow() // 0
	c.Add(10)
	st.SampleNow() // 10
	c.Add(30)
	st.SampleNow() // 40

	out := st.Query(Query{Family: "jobs_total"})
	if len(out) != 1 {
		t.Fatalf("series = %d, want 1", len(out))
	}
	s := out[0]
	if s.Type != "rate" {
		t.Fatalf("type = %q, want rate", s.Type)
	}
	// Three raw samples become two rate points; same-millisecond
	// samples (dt == 0) are skipped, so allow either.
	if len(s.Points) > 2 {
		t.Fatalf("points = %d, want <= 2", len(s.Points))
	}
	if s.Rate < 0 {
		t.Fatalf("window rate = %v, want >= 0", s.Rate)
	}
}

func TestQueryGaugeRollups(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("depth", "queue depth")
	st := New(Config{Registry: reg, Points: 16})

	for _, v := range []float64{3, 1, 7, 5} {
		g.Set(v)
		st.SampleNow()
	}
	out := st.Query(Query{Family: "depth"})
	if len(out) != 1 {
		t.Fatalf("series = %d, want 1", len(out))
	}
	s := out[0]
	if s.Min != 1 || s.Max != 7 || s.Avg != 4 || s.Last != 5 {
		t.Fatalf("rollups = min %v max %v avg %v last %v, want 1/7/4/5",
			s.Min, s.Max, s.Avg, s.Last)
	}
	if len(s.Points) != 4 {
		t.Fatalf("points = %d, want 4", len(s.Points))
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("v", "v")
	st := New(Config{Registry: reg, Points: 4})

	for i := 0; i < 10; i++ {
		g.Set(float64(i))
		st.SampleNow()
	}
	out := st.Query(Query{Family: "v"})
	if len(out) != 1 || len(out[0].Points) != 4 {
		t.Fatalf("got %+v, want one series with 4 points", out)
	}
	for i, p := range out[0].Points {
		if want := float64(6 + i); p.V != want {
			t.Fatalf("point %d = %v, want %v (oldest-first after wrap)", i, p.V, want)
		}
	}
}

func TestHistogramQuantileSeries(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("lat", "latency", []float64{0.1, 1, 10})
	st := New(Config{Registry: reg, Points: 16})

	for i := 0; i < 100; i++ {
		h.Observe(0.05)
	}
	st.SampleNow()

	for _, fam := range []string{"lat", "lat_p50", "lat_p99"} {
		out := st.Query(Query{Family: fam})
		if len(out) != 1 {
			t.Fatalf("family %s: series = %d, want 1", fam, len(out))
		}
	}
	p50 := st.Query(Query{Family: "lat_p50"})[0]
	if p50.Last <= 0 || p50.Last > 0.1 {
		t.Fatalf("p50 = %v, want in (0, 0.1]", p50.Last)
	}
}

func TestLabeledVecSeries(t *testing.T) {
	reg := obs.NewRegistry()
	v := reg.CounterVec("req_total", "requests", "route")
	st := New(Config{Registry: reg, Points: 16})

	v.With("/b").Inc()
	v.With("/a").Inc()
	st.SampleNow()
	v.With("/a").Add(5)
	st.SampleNow()

	out := st.Query(Query{Family: "req_total"})
	if len(out) != 2 {
		t.Fatalf("series = %d, want 2", len(out))
	}
	// Sorted by labels.
	if out[0].Labels != `{route="/a"}` || out[1].Labels != `{route="/b"}` {
		t.Fatalf("labels = %q, %q", out[0].Labels, out[1].Labels)
	}
	only := st.Query(Query{Family: "req_total", Labels: `{route="/b"}`})
	if len(only) != 1 || only[0].Labels != `{route="/b"}` {
		t.Fatalf("label filter returned %+v", only)
	}
}

func TestMaxSeriesBudget(t *testing.T) {
	reg := obs.NewRegistry()
	v := reg.CounterVec("c", "c", "k")
	st := New(Config{Registry: reg, MaxSeries: 2, Points: 4})

	v.With("a").Inc()
	v.With("b").Inc()
	v.With("c").Inc()
	st.SampleNow()

	series, dropped, samples := st.Stats()
	if series != 2 {
		t.Fatalf("series = %d, want 2", series)
	}
	if dropped == 0 {
		t.Fatalf("dropped = 0, want > 0")
	}
	if samples != 1 {
		t.Fatalf("samples = %d, want 1", samples)
	}
}

func TestSincePrunesOldPoints(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("v", "v")
	st := New(Config{Registry: reg, Points: 16})

	g.Set(1)
	st.SampleNow()
	cut := time.Now().Add(time.Millisecond)
	time.Sleep(2 * time.Millisecond)
	g.Set(2)
	st.SampleNow()

	out := st.Query(Query{Family: "v", Since: cut})
	if len(out) != 1 || len(out[0].Points) != 1 || out[0].Points[0].V != 2 {
		t.Fatalf("since query returned %+v, want just the second point", out)
	}
}

// TestConcurrentSampleQuery exercises the sample and query paths from
// many goroutines at once; run under -race this is the store's
// thread-safety proof.
func TestConcurrentSampleQuery(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("c", "c")
	g := reg.Gauge("g", "g")
	h := reg.Histogram("h", "h", []float64{1, 10})
	v := reg.CounterVec("cv", "cv", "k")
	st := New(Config{Registry: reg, Points: 32})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Add(1)
				h.Observe(2)
				v.With("x").Inc()
				st.SampleNow()
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st.Query(Query{})
				st.Query(Query{Family: "h_p99"})
				st.Stats()
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func TestStartCloseLifecycle(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Gauge("v", "v").Set(1)
	st := New(Config{Registry: reg, Interval: time.Millisecond, Points: 8})
	st.Start()
	st.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, _, samples := st.Stats(); samples >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background sampler took no samples")
		}
		time.Sleep(time.Millisecond)
	}
	st.Close()
	st.Close() // idempotent
	_, _, n := st.Stats()
	time.Sleep(5 * time.Millisecond)
	if _, _, after := st.Stats(); after != n {
		t.Fatalf("sampler still running after Close: %d -> %d", n, after)
	}
}

// TestSamplingAllocFree pins the steady-state sampling pass at zero
// allocations for a registry of push-based instruments — the tsdb side
// of the package's zero-cost guarantee. (Callback-backed families are
// excluded by design: their cost is their callbacks'.)
func TestSamplingAllocFree(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("c_total", "c")
	g := reg.Gauge("g", "g")
	h := reg.Histogram("h", "h", []float64{0.1, 1, 10})
	cv := reg.CounterVec("cv_total", "cv", "route")
	hv := reg.HistogramVec("hv", "hv", "stage", []float64{1, 10})

	c.Add(3)
	g.Set(2)
	h.Observe(0.5)
	cv.With("/a").Inc()
	cv.With("/b").Inc()
	hv.With("sim").Observe(2)

	st := New(Config{Registry: reg, Points: 64})
	// Warm up: create every ring (first sighting allocates) and fill
	// the rings past capacity so pushes take the overwrite path.
	for i := 0; i < 128; i++ {
		st.SampleNow()
	}
	avg := testing.AllocsPerRun(1000, func() {
		c.Inc()
		h.Observe(1)
		st.SampleNow()
	})
	if avg != 0 {
		t.Fatalf("steady-state sampling pass allocates %.1f times, want 0", avg)
	}
}
