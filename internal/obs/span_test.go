package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSpanLifecycleAndSnapshot(t *testing.T) {
	rec := NewRecorder(64)
	trace := NewTraceID()

	root := rec.Start(trace, "job", "j-000001", 0)
	root.Set("cells", "4")
	if !root.Enabled() || root.ID() == 0 {
		t.Fatal("enabled span reports disabled")
	}
	child := rec.Start(trace, "cell", "gzip", root.ID())
	if rec.Active() != 2 {
		t.Fatalf("active = %d, want 2", rec.Active())
	}
	child.End("boom")
	root.End("")
	if rec.Active() != 0 {
		t.Fatalf("active = %d, want 0 after End", rec.Active())
	}
	root.End("") // double End is a no-op
	if got := rec.Recorded(); got != 2 {
		t.Fatalf("recorded = %d, want 2", got)
	}

	spans := rec.Snapshot(Filter{Trace: trace})
	if len(spans) != 2 {
		t.Fatalf("snapshot returned %d spans, want 2", len(spans))
	}
	// Chronological by end time: child ended first.
	if spans[0].Kind != "cell" || spans[1].Kind != "job" {
		t.Fatalf("order wrong: %q then %q", spans[0].Kind, spans[1].Kind)
	}
	if spans[0].Parent != spans[1].ID {
		t.Fatalf("child parent = %d, want %d", spans[0].Parent, spans[1].ID)
	}
	if spans[0].Err != "boom" || spans[1].Err != "" {
		t.Fatalf("errors wrong: %q / %q", spans[0].Err, spans[1].Err)
	}
	if spans[1].Attr("cells") != "4" {
		t.Fatalf("attr cells = %q, want 4", spans[1].Attr("cells"))
	}
	if spans[0].End.Before(spans[0].Start) || spans[0].DurationMS < 0 {
		t.Fatal("span clock went backwards")
	}

	if got := rec.Snapshot(Filter{Kind: "cell"}); len(got) != 1 || got[0].Name != "gzip" {
		t.Fatalf("kind filter returned %+v", got)
	}
	if got := rec.Snapshot(Filter{Trace: "nonesuch"}); len(got) != 0 {
		t.Fatalf("trace filter leaked %d spans", len(got))
	}
	if got := rec.Snapshot(Filter{Limit: 1}); len(got) != 1 || got[0].Kind != "job" {
		t.Fatalf("limit filter kept %+v, want the most recent span", got)
	}
}

func TestDisabledRecorder(t *testing.T) {
	var rec *Recorder
	sp := rec.Start("t", "k", "n", 0)
	if sp.Enabled() || sp.ID() != 0 {
		t.Fatal("nil recorder produced an enabled span")
	}
	sp.Set("k", "v")
	sp.End("err")
	if rec.Snapshot(Filter{}) != nil || rec.Active() != 0 || rec.Recorded() != 0 || rec.Capacity() != 0 {
		t.Fatal("nil recorder retained state")
	}
}

func TestRecorderRingWraps(t *testing.T) {
	rec := NewRecorder(16) // 2 per stripe
	for i := 0; i < 100; i++ {
		sp := rec.Start("t", "k", fmt.Sprintf("s%03d", i), 0)
		sp.End("")
	}
	if got := rec.Recorded(); got != 100 {
		t.Fatalf("recorded = %d, want 100", got)
	}
	spans := rec.Snapshot(Filter{})
	if len(spans) != rec.Capacity() {
		t.Fatalf("retained %d spans, want capacity %d", len(spans), rec.Capacity())
	}
	// Everything retained is from the recent tail.
	for _, sp := range spans {
		var n int
		fmt.Sscanf(sp.Name, "s%d", &n)
		if n < 100-2*rec.Capacity() {
			t.Fatalf("ring retained ancient span %s", sp.Name)
		}
	}
}

func TestRecorderConcurrent(t *testing.T) {
	rec := NewRecorder(256)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := rec.Start("t", "k", "n", 0)
				sp.Set("w", "x")
				sp.End("")
			}
		}(w)
	}
	wg.Wait()
	if got := rec.Recorded(); got != 1600 {
		t.Fatalf("recorded = %d, want 1600", got)
	}
	if rec.Active() != 0 {
		t.Fatalf("active = %d, want 0", rec.Active())
	}
}

func TestSpanAttrOverflowDropped(t *testing.T) {
	rec := NewRecorder(8)
	sp := rec.Start("t", "k", "n", 0)
	for i := 0; i < maxSpanAttrs+3; i++ {
		sp.Set(fmt.Sprintf("k%d", i), "v")
	}
	sp.End("")
	spans := rec.Snapshot(Filter{})
	if len(spans) != 1 || len(spans[0].Attrs) != maxSpanAttrs {
		t.Fatalf("attrs = %d, want %d", len(spans[0].Attrs), maxSpanAttrs)
	}
}

func TestNewTraceIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if seen[id] {
			t.Fatalf("duplicate trace ID %s", id)
		}
		seen[id] = true
	}
}

func TestSpanClock(t *testing.T) {
	rec := NewRecorder(8)
	sp := rec.Start("t", "k", "n", 0)
	time.Sleep(2 * time.Millisecond)
	sp.End("")
	spans := rec.Snapshot(Filter{})
	if len(spans) != 1 {
		t.Fatal("span not recorded")
	}
	if spans[0].DurationMS < 1 {
		t.Fatalf("duration = %vms, want >= 1ms", spans[0].DurationMS)
	}
}
