package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return b.String()
}

func TestRegistryRendering(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "Operations.")
	c.Add(3)
	g := r.Gauge("test_depth", "Depth.")
	g.Set(2.5)
	r.GaugeFunc("test_live", "Live.", func() float64 { return 7 })
	v := r.CounterVec("test_outcomes_total", "Outcomes.", "status")
	v.With("ok").Add(2)
	v.With("err").Inc()
	r.Func("test_info", "gauge", "Info.", func(emit func(float64, ...Label)) {
		emit(1, L("version", "v1"), L("go", "go1.24"))
	})

	text := render(t, r)
	for _, want := range []string{
		"# HELP test_ops_total Operations.\n# TYPE test_ops_total counter\ntest_ops_total 3\n",
		"# TYPE test_depth gauge\ntest_depth 2.5\n",
		"test_live 7\n",
		// Vec series sorted by label value: err before ok.
		"test_outcomes_total{status=\"err\"} 1\ntest_outcomes_total{status=\"ok\"} 2\n",
		`test_info{version="v1",go="go1.24"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	if errs := LintExposition(strings.NewReader(text)); errs != nil {
		t.Errorf("registry output fails its own lint: %v", errs)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "x.")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a duplicate family did not panic")
		}
	}()
	r.Gauge("dup_total", "y.")
}

func TestCounterGaugeNilSafe(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	var g *Gauge
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram observed")
	}
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("nil histogram quantile not NaN")
	}
	var v *HistogramVec
	v.With("x").Observe(1) // must not panic
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.05, 0.5, 2, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 102.6; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}

	text := render(t, r)
	for _, want := range []string{
		"# TYPE test_latency_seconds histogram",
		`test_latency_seconds_bucket{le="0.1"} 2`,
		`test_latency_seconds_bucket{le="1"} 3`,
		`test_latency_seconds_bucket{le="10"} 4`,
		`test_latency_seconds_bucket{le="+Inf"} 5`,
		"test_latency_seconds_sum 102.6",
		"test_latency_seconds_count 5",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("histogram output missing %q:\n%s", want, text)
		}
	}

	// Median rank 2.5 of 5 falls in the first bucket (2 obs) boundary →
	// interpolates inside the second bucket.
	if q := h.Quantile(0.5); q < 0.1 || q > 1 {
		t.Errorf("p50 = %v, want within (0.1, 1]", q)
	}
	// p100 lands beyond the last finite bound and is clamped to it.
	if q := h.Quantile(1); q != 10 {
		t.Errorf("p100 = %v, want clamp to 10", q)
	}
	if !math.IsNaN((&Histogram{}).Quantile(0.5)) {
		t.Error("empty histogram quantile not NaN")
	}
}

func TestHistogramVec(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("test_route_seconds", "Route latency.", "route", []float64{1})
	v.With("/a").Observe(0.5)
	v.With("/b").Observe(2)
	v.With("/a").Observe(3)
	text := render(t, r)
	for _, want := range []string{
		`test_route_seconds_bucket{route="/a",le="1"} 1`,
		`test_route_seconds_bucket{route="/a",le="+Inf"} 2`,
		`test_route_seconds_count{route="/a"} 2`,
		`test_route_seconds_bucket{route="/b",le="+Inf"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("vec output missing %q:\n%s", want, text)
		}
	}
	if errs := LintExposition(strings.NewReader(text)); errs != nil {
		t.Errorf("vec output fails lint: %v", errs)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Func("test_esc", "gauge", "Escapes.", func(emit func(float64, ...Label)) {
		emit(1, L("v", "a\"b\\c\nd"))
	})
	text := render(t, r)
	want := `test_esc{v="a\"b\\c\nd"} 1`
	if !strings.Contains(text, want) {
		t.Fatalf("escaped label missing %q:\n%s", want, text)
	}
	if errs := LintExposition(strings.NewReader(text)); errs != nil {
		t.Fatalf("escaped output fails lint: %v", errs)
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_conc_seconds", "c.", []float64{1, 2})
	c := r.Counter("test_conc_total", "c.")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(1.5)
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 || c.Value() != 8000 {
		t.Fatalf("count = %d / %d, want 8000", h.Count(), c.Value())
	}
	if got := h.Sum(); math.Abs(got-12000) > 1e-6 {
		t.Fatalf("sum = %v, want 12000", got)
	}
}
