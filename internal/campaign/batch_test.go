package campaign

import (
	"context"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"paco/internal/scenario"
)

// fuzzGrids returns a deterministic set of fuzzed + hand-shaped grids
// covering the planner's cases: refresh-axis merges, gated lanes, mixed
// workload kinds, width variation, and fuzzed scenario workloads.
func fuzzGrids(t *testing.T) []Grid {
	t.Helper()
	raw := []Grid{
		{Benchmarks: []string{"gzip"}, Refresh: []uint64{50_000, 100_000, 200_000, 400_000},
			Instructions: 5000, Warmup: 2000},
		{Benchmarks: []string{"gzip", "twolf"}, Refresh: []uint64{100_000, 200_000},
			ProbGates: []float64{0.3}, Thresholds: []uint32{12},
			Instructions: 5000, Warmup: 2000},
		{Benchmarks: []string{"mcf"}, Refresh: []uint64{100_000, 200_000}, Widths: []int{2, 4},
			Instructions: 4000, Warmup: 1000},
		{Fuzz: &scenario.FuzzSpec{Seed: 11, Count: 2}, Refresh: []uint64{100_000, 200_000, 400_000},
			ProbGates: []float64{0.2}, Instructions: 4000, Warmup: 1000, Seed: 99},
	}
	grids := make([]Grid, 0, len(raw))
	for i, g := range raw {
		n, err := g.Normalized()
		if err != nil {
			t.Fatalf("grid %d: %v", i, err)
		}
		grids = append(grids, n)
	}
	return grids
}

// TestPlanBatchesPartition is the planner property test: for arbitrary
// fuzzed grids and batch widths, the plan covers every cell exactly
// once, respects the width bound, groups only equal stream keys, and is
// deterministic.
func TestPlanBatchesPartition(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for gi, g := range fuzzGrids(t) {
		jobs := g.Jobs()
		for _, batchK := range []int{0, 1, 2, 3, 4, 7, 16, 1 + r.Intn(32)} {
			units := PlanBatches(jobs, batchK)
			seen := make([]int, len(jobs))
			for _, u := range units {
				if len(u.Cells) == 0 {
					t.Fatalf("grid %d K=%d: empty unit", gi, batchK)
				}
				if batchK > 1 && len(u.Cells) > batchK {
					t.Fatalf("grid %d K=%d: unit of %d cells exceeds batch width", gi, batchK, len(u.Cells))
				}
				for _, ci := range u.Cells {
					seen[ci]++
					if key, ok := StreamKey(&jobs[ci]); ok && len(u.Cells) > 1 && key != u.Key {
						t.Fatalf("grid %d K=%d: cell %d key %s grouped under %s", gi, batchK, ci, key, u.Key)
					}
				}
			}
			for ci, n := range seen {
				if n != 1 {
					t.Fatalf("grid %d K=%d: cell %d covered %d times, want exactly once", gi, batchK, ci, n)
				}
			}
			if again := PlanBatches(jobs, batchK); !reflect.DeepEqual(units, again) {
				t.Fatalf("grid %d K=%d: plan is not deterministic", gi, batchK)
			}
		}
	}
}

// TestPlanBatchesUnbatchable pins that custom-Exec jobs always plan as
// keyless singletons, whatever their neighbors share.
func TestPlanBatchesUnbatchable(t *testing.T) {
	jobs := []Job{
		{ID: "a", Benchmark: "gzip", Instructions: 1000},
		{ID: "x", Benchmark: "gzip", Instructions: 1000,
			Exec: func(context.Context) (*Result, error) { return &Result{}, nil }},
		{ID: "b", Benchmark: "gzip", Instructions: 1000},
	}
	units := PlanBatches(jobs, 8)
	if len(units) != 2 {
		t.Fatalf("got %d units, want 2 (batched pair + exec singleton): %+v", len(units), units)
	}
	for _, u := range units {
		for _, ci := range u.Cells {
			if ci == 1 && (len(u.Cells) != 1 || u.Key != "") {
				t.Fatalf("Exec job batched: %+v", u)
			}
		}
	}
}

// marshalResults canonicalizes a result slice for byte comparison.
func marshalResults(t *testing.T, results []Result) string {
	t.Helper()
	raw, err := json.MarshalIndent(results, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestBatchedRunnerByteIdentical is the tentpole guarantee at the
// campaign level: for fuzzed grids, the batched runner's result slice
// is byte-identical to the unbatched runner's at several batch widths
// and worker counts.
func TestBatchedRunnerByteIdentical(t *testing.T) {
	for gi, g := range fuzzGrids(t) {
		unbatched := Runner{Workers: 3}
		want, wantErr := unbatched.Run(context.Background(), g.Jobs())
		if wantErr != nil {
			t.Fatalf("grid %d: unbatched run failed: %v", gi, wantErr)
		}
		wantJSON := marshalResults(t, want)
		for _, batchK := range []int{2, 4, 16} {
			batched := Runner{Workers: 2, BatchK: batchK}
			got, err := batched.Run(context.Background(), g.Jobs())
			if err != nil {
				t.Fatalf("grid %d K=%d: batched run failed: %v", gi, batchK, err)
			}
			if gotJSON := marshalResults(t, got); gotJSON != wantJSON {
				t.Errorf("grid %d K=%d: batched results differ from unbatched:\n--- batched\n%s\n--- unbatched\n%s",
					gi, batchK, gotJSON, wantJSON)
			}
		}
	}
}

// TestBatchedShardRunByteIdentical checks batched Shard.Run against the
// unbatched whole-grid run for every shard split: merging batched
// shards reproduces the unsplit, unbatched result slice byte for byte.
func TestBatchedShardRunByteIdentical(t *testing.T) {
	g, err := Grid{
		Benchmarks:   []string{"gzip", "twolf"},
		Refresh:      []uint64{100_000, 200_000, 400_000},
		ProbGates:    []float64{0.3},
		Instructions: 4000,
		Warmup:       1000,
	}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(context.Background(), 2, g.Jobs())
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		want[i].Index = i
	}
	wantJSON := marshalResults(t, want)

	for _, n := range []int{1, 2, 3, 5} {
		shards, err := g.Shards(n)
		if err != nil {
			t.Fatal(err)
		}
		pieces := make([][]Result, len(shards))
		for i, sh := range shards {
			pieces[i], err = sh.RunBatched(context.Background(), 2, 4)
			if err != nil {
				t.Fatalf("split %d shard %d: %v", n, i, err)
			}
		}
		merged := Merge(pieces...)
		if gotJSON := marshalResults(t, merged); gotJSON != wantJSON {
			t.Errorf("split %d: merged batched shards differ from unsplit unbatched run", n)
		}
	}
}

// TestBatchedRunnerErrorParity pins failure-path parity: a job that
// cannot resolve produces the same error result batched and unbatched,
// without disturbing its batch mates.
func TestBatchedRunnerErrorParity(t *testing.T) {
	jobs := []Job{
		{ID: "ok1", Benchmark: "gzip", Instructions: 2000, Warmup: 500},
		{ID: "bad", Benchmark: "no-such-benchmark", Instructions: 2000, Warmup: 500},
		{ID: "ok2", Benchmark: "gzip", Instructions: 2000, Warmup: 500},
	}
	unbatched := Runner{Workers: 1}
	want, _ := unbatched.Run(context.Background(), jobs)
	batched := Runner{Workers: 1, BatchK: 8}
	got, _ := batched.Run(context.Background(), jobs)
	if wantJSON, gotJSON := marshalResults(t, want), marshalResults(t, got); wantJSON != gotJSON {
		t.Errorf("error-path results differ:\n--- batched\n%s\n--- unbatched\n%s", gotJSON, wantJSON)
	}
}

// TestBatchedRunnerProgress checks the progress counters settle exactly
// as the unbatched runner's: every cell reported once, Done == total.
func TestBatchedRunnerProgress(t *testing.T) {
	g, err := Grid{Benchmarks: []string{"gzip"}, Refresh: []uint64{100_000, 200_000, 400_000},
		Instructions: 2000, Warmup: 500}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	jobs := g.Jobs()
	var calls int
	r := Runner{Workers: 2, BatchK: 2, OnProgress: func(done, total int, res *Result) {
		calls++
		if total != len(jobs) {
			t.Errorf("progress total %d, want %d", total, len(jobs))
		}
	}}
	if _, err := r.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	if calls != len(jobs) {
		t.Errorf("progress called %d times, want %d", calls, len(jobs))
	}
	snap := r.Snapshot()
	if snap.Queued != 0 || snap.Running != 0 || snap.Done != len(jobs) {
		t.Errorf("final snapshot %+v, want {0 0 %d}", snap, len(jobs))
	}
}

// TestStreamKeyShape pins what the key must (and must not) separate.
func TestStreamKeyShape(t *testing.T) {
	base := Job{Benchmark: "gzip", Instructions: 1000, Warmup: 100}
	k1, ok := StreamKey(&base)
	if !ok {
		t.Fatal("benchmark job not batchable")
	}
	same := base
	same.ID = "different-id"
	same.Setup = cellSetup(100_000, gridGate{label: "ungated"})
	if k2, _ := StreamKey(&same); k2 != k1 {
		t.Error("ID/Setup changed the stream key; only the stream and quotas should")
	}
	for name, mut := range map[string]func(*Job){
		"benchmark":    func(j *Job) { j.Benchmark = "twolf" },
		"seed":         func(j *Job) { j.Seed = 7 },
		"instructions": func(j *Job) { j.Instructions = 2000 },
		"warmup":       func(j *Job) { j.Warmup = 200 },
	} {
		j := base
		mut(&j)
		if k2, _ := StreamKey(&j); k2 == k1 {
			t.Errorf("changing %s did not change the stream key", name)
		}
	}
}
