package campaign

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"paco/internal/cpu"
)

// Result is the structured record one job produces. The fixed fields
// are filled by the engine for simulation jobs (Exec jobs fill what they
// measure); Extra carries experiment-specific scalars such as confidence
// RMS error. Results marshal deterministically: fixed field order, Extra
// keys sorted by encoding/json.
type Result struct {
	// JobID and Index identify the job within its campaign.
	JobID string `json:"job_id"`
	Index int    `json:"index"`

	// Benchmark and Seed identify the workload actually run.
	Benchmark string `json:"benchmark,omitempty"`
	Seed      uint64 `json:"seed,omitempty"`

	// Cycles is the measured-window cycle count; IPC the measured
	// thread's retired instructions per cycle.
	Cycles uint64  `json:"cycles,omitempty"`
	IPC    float64 `json:"ipc,omitempty"`

	// Stats are the measured thread's counters (retired/fetched/executed
	// by path, mispredicts, squashes, gated cycles, MDC buckets).
	Stats cpu.ThreadStats `json:"stats"`

	// Extra holds experiment-specific measurements recorded by a
	// Collect hook or an Exec job.
	Extra map[string]float64 `json:"extra,omitempty"`

	// Err records a job failure (error, panic, or cancellation); Skipped
	// marks jobs never started because the campaign was cancelled.
	Err     string `json:"error,omitempty"`
	Skipped bool   `json:"skipped,omitempty"`
}

// Failed reports whether the job produced no usable measurement.
func (r *Result) Failed() bool { return r.Err != "" }

// SetExtra records one experiment-specific scalar.
func (r *Result) SetExtra(key string, v float64) {
	if r.Extra == nil {
		r.Extra = map[string]float64{}
	}
	r.Extra[key] = v
}

// Merge combines result shards — e.g. from campaign slices run in
// different processes — into one slice ordered by job index, ties broken
// by job ID. Merging the shards of a split campaign reproduces the
// result order of the unsplit run, as long as the split preserved
// indices.
func Merge(shards ...[]Result) []Result {
	var out []Result
	for _, s := range shards {
		out = append(out, s...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Index != out[j].Index {
			return out[i].Index < out[j].Index
		}
		return out[i].JobID < out[j].JobID
	})
	return out
}

// Summary aggregates a campaign's results.
type Summary struct {
	Jobs      int     `json:"jobs"`
	Completed int     `json:"completed"`
	Failed    int     `json:"failed"`
	Skipped   int     `json:"skipped"`
	Cycles    uint64  `json:"cycles"`
	Retired   uint64  `json:"retired"`
	MeanIPC   float64 `json:"mean_ipc"`
}

// Summarize folds results (in order) into a Summary. MeanIPC averages
// over completed jobs only.
func Summarize(results []Result) Summary {
	s := Summary{Jobs: len(results)}
	var ipcSum float64
	for i := range results {
		r := &results[i]
		switch {
		case r.Skipped:
			s.Skipped++
		case r.Failed():
			s.Failed++
		default:
			s.Completed++
			s.Cycles += r.Cycles
			s.Retired += r.Stats.RetiredGood
			ipcSum += r.IPC
		}
	}
	if s.Completed > 0 {
		s.MeanIPC = ipcSum / float64(s.Completed)
	}
	return s
}

// WriteJSON writes results as indented JSON. The encoding is
// deterministic for deterministic results.
func WriteJSON(w io.Writer, results []Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// ReadJSON decodes a result slice written by WriteJSON.
func ReadJSON(r io.Reader) ([]Result, error) {
	var out []Result
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, fmt.Errorf("campaign: decoding results: %w", err)
	}
	return out, nil
}

// csvFixed is the fixed CSV column set, in order.
var csvFixed = []string{
	"index", "job_id", "benchmark", "seed", "cycles", "ipc",
	"retired_good", "fetched_good", "fetched_bad", "executed_good",
	"executed_bad", "squashed", "recoveries", "gated_cycles",
	"ctrl_retired", "ctrl_mispredicts", "cond_retired", "cond_mispredicts",
	"error",
}

// WriteCSV writes results as CSV: the fixed counter columns followed by
// one column per Extra key present anywhere in the slice, sorted.
func WriteCSV(w io.Writer, results []Result) error {
	keySet := map[string]bool{}
	for i := range results {
		for k := range results[i].Extra {
			keySet[k] = true
		}
	}
	extraKeys := make([]string, 0, len(keySet))
	for k := range keySet {
		extraKeys = append(extraKeys, k)
	}
	sort.Strings(extraKeys)

	cw := csv.NewWriter(w)
	if err := cw.Write(append(append([]string{}, csvFixed...), extraKeys...)); err != nil {
		return err
	}
	for i := range results {
		r := &results[i]
		st := &r.Stats
		row := []string{
			strconv.Itoa(r.Index), r.JobID, r.Benchmark,
			strconv.FormatUint(r.Seed, 10),
			strconv.FormatUint(r.Cycles, 10),
			strconv.FormatFloat(r.IPC, 'g', -1, 64),
			strconv.FormatUint(st.RetiredGood, 10),
			strconv.FormatUint(st.FetchedGood, 10),
			strconv.FormatUint(st.FetchedBad, 10),
			strconv.FormatUint(st.ExecutedGood, 10),
			strconv.FormatUint(st.ExecutedBad, 10),
			strconv.FormatUint(st.Squashed, 10),
			strconv.FormatUint(st.Recoveries, 10),
			strconv.FormatUint(st.GatedCycles, 10),
			strconv.FormatUint(st.CtrlRetired, 10),
			strconv.FormatUint(st.CtrlMispredicts, 10),
			strconv.FormatUint(st.CondRetired, 10),
			strconv.FormatUint(st.CondMispredicts, 10),
			r.Err,
		}
		for _, k := range extraKeys {
			v, ok := r.Extra[k]
			if !ok {
				row = append(row, "")
				continue
			}
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
