package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"paco/internal/scenario"
)

// TestGridScenarioNormalization: the three spellings of "sweep the loopy
// family" — a family name on the benchmark axis, a bare scenario, and a
// fully spelled-out scenario — normalize to identical JSON, which is the
// bytes the server's content-addressed cache hashes.
func TestGridScenarioNormalization(t *testing.T) {
	byName, err := Grid{Benchmarks: []string{"loopy"}}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	bare, err := Grid{Scenarios: []scenario.Scenario{{Family: "loopy"}}}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	full := bare.Scenarios[0] // already normalized: defaults spelled out
	spelled, err := Grid{Scenarios: []scenario.Scenario{full}}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := json.Marshal(byName)
	j2, _ := json.Marshal(bare)
	j3, _ := json.Marshal(spelled)
	if !bytes.Equal(j1, j2) || !bytes.Equal(j2, j3) {
		t.Fatalf("equivalent scenario grids normalize apart:\n%s\n%s\n%s", j1, j2, j3)
	}
	if len(byName.Benchmarks) != 0 {
		t.Fatalf("family name left on the benchmark axis: %v", byName.Benchmarks)
	}
	// Scenario-only grids must not default-fill the 12 benchmarks.
	if len(bare.Scenarios) != 1 || bare.Size() != 1 {
		t.Fatalf("scenario-only grid expanded wrong: %d scenarios, size %d", len(bare.Scenarios), bare.Size())
	}
	// Pure benchmark grids are untouched (IDs stay stable).
	plain, err := Grid{Benchmarks: []string{"gzip"}}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Scenarios) != 0 || plain.Jobs()[0].ID != "gzip/refresh=200000/width=4/ungated" {
		t.Fatalf("benchmark grid changed: %+v", plain.Jobs()[0].ID)
	}
}

// TestGridParameterSweep: several unnamed documents of one family at
// different parameter points are distinct cells, not duplicates.
func TestGridParameterSweep(t *testing.T) {
	g, err := Grid{Scenarios: []scenario.Scenario{
		{Family: "phase-thrash", Params: map[string]float64{"period": 10_000}},
		{Family: "phase-thrash", Params: map[string]float64{"period": 40_000}},
		{Family: "phase-thrash"},
	}}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 3 {
		t.Fatalf("sweep size = %d", g.Size())
	}
	jobs := g.Jobs()
	if jobs[0].ID == jobs[1].ID || jobs[1].ID == jobs[2].ID {
		t.Fatalf("sweep cells share IDs: %q %q %q", jobs[0].ID, jobs[1].ID, jobs[2].ID)
	}
}

func TestGridScenarioRejects(t *testing.T) {
	cases := []Grid{
		{Benchmarks: []string{"nonesuch"}},
		{Scenarios: []scenario.Scenario{{Family: "nonesuch"}}},
		{Scenarios: []scenario.Scenario{{Family: "loopy"}, {Family: "loopy"}}}, // duplicate name
		{Benchmarks: []string{"loopy"}, Scenarios: []scenario.Scenario{{Family: "loopy"}}},
		{Fuzz: &scenario.FuzzSpec{Seed: 1, Count: -1}},
	}
	for i, g := range cases {
		if _, err := g.Normalized(); err == nil {
			t.Errorf("case %d: invalid grid accepted", i)
		}
	}
}

// TestGridFuzzExpansion: a fuzz spec normalizes into its expanded
// scenario list — deterministically, so the short form and the expansion
// are content-equal — and the result is idempotent under renormalization.
func TestGridFuzzExpansion(t *testing.T) {
	g, err := Grid{Fuzz: &scenario.FuzzSpec{Seed: 11, Count: 3}}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if g.Fuzz != nil || len(g.Scenarios) != 3 || len(g.Benchmarks) != 0 {
		t.Fatalf("fuzz not expanded: %+v", g)
	}
	scs, err := scenario.FuzzSpec{Seed: 11, Count: 3}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	expanded, err := Grid{Scenarios: scs}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := json.Marshal(g)
	j2, _ := json.Marshal(expanded)
	if !bytes.Equal(j1, j2) {
		t.Fatalf("fuzz spec and its expansion normalize apart:\n%s\n%s", j1, j2)
	}
	again, err := g.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	j3, _ := json.Marshal(again)
	if !bytes.Equal(j1, j3) {
		t.Fatal("normalization not idempotent after fuzz expansion")
	}
}

// TestGridScenarioCells runs a benchmark+scenario grid end to end: cell
// IDs carry the scenario prefix and every cell completes with the sweep's
// reliability extras.
func TestGridScenarioCells(t *testing.T) {
	g, err := Grid{
		Benchmarks:   []string{"gzip"},
		Scenarios:    []scenario.Scenario{{Family: "adversarial-mdc"}},
		Instructions: 15_000,
		Warmup:       5_000,
		Refresh:      []uint64{10_000},
	}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	jobs := g.Jobs()
	if len(jobs) != 2 || g.Size() != 2 {
		t.Fatalf("expansion: %d jobs, size %d", len(jobs), g.Size())
	}
	if jobs[0].ID != "gzip/refresh=10000/width=4/ungated" {
		t.Fatalf("benchmark cell ID changed: %q", jobs[0].ID)
	}
	if !strings.HasPrefix(jobs[1].ID, "scenario:adversarial-mdc/") {
		t.Fatalf("scenario cell ID: %q", jobs[1].ID)
	}
	results, err := Run(context.Background(), 2, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Cycles == 0 || r.IPC <= 0 {
			t.Fatalf("cell %d: empty measurement %+v", i, r)
		}
		if r.Extra["probe_instances"] <= 0 {
			t.Fatalf("cell %d: probe never fired", i)
		}
	}
	if results[1].Benchmark != "adversarial-mdc" {
		t.Fatalf("scenario result benchmark = %q", results[1].Benchmark)
	}
}
