package campaign

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Sharding. Every cell of a campaign is an independent, deterministic
// simulation, so splitting a campaign across machines is a pure
// scheduling problem: carve the cell index space into contiguous ranges,
// run each range anywhere, and Merge reassembles the exact result slice
// a single-process run would have produced. A Shard carries the whole
// normalized Grid plus its range, which makes every shard self-contained
// (any worker that can parse a Grid can run it) and content-addressed
// (the shard ID is a pure function of the work it describes).

// shardDomain versions the shard ID computation; bump it if the ID
// inputs ever change, since persisted shard-result caches key on it.
const shardDomain = "paco-shard/v1"

// Shard is one contiguous slice [Lo, Hi) of a normalized grid's cell
// space — the unit of work the paco-serve coordinator leases to remote
// workers. Index/Count record its position in the plan that produced it.
type Shard struct {
	Grid  Grid `json:"grid"`
	Index int  `json:"index"`
	Count int  `json:"count"`
	Lo    int  `json:"lo"`
	Hi    int  `json:"hi"`
}

// Shards splits the grid's cell space into n balanced contiguous shards
// (n is trimmed to the cell count, so no shard is empty). The grid
// should be normalized first: shard IDs hash the grid, so only
// normalized grids give equal sweeps equal shard IDs. The union of the
// shards' job ranges is exactly Jobs(), in order.
func (g Grid) Shards(n int) ([]Shard, error) {
	if n <= 0 {
		return nil, fmt.Errorf("campaign: shard count must be positive, got %d", n)
	}
	size := g.Size()
	if size == 0 {
		return nil, fmt.Errorf("campaign: cannot shard an empty grid")
	}
	ranges := Ranges(size, n)
	shards := make([]Shard, len(ranges))
	for i, r := range ranges {
		shards[i] = Shard{Grid: g, Index: i, Count: len(ranges), Lo: r[0], Hi: r[1]}
	}
	return shards, nil
}

// Ranges carves [0, size) into min(n, size) balanced contiguous [lo, hi)
// ranges: sizes differ by at most one, larger ranges first, and the
// ranges partition the space in order. It is the one splitting rule both
// grid shards and in-process job-slice federations use, so a campaign
// shards identically however it is described.
func Ranges(size, n int) [][2]int {
	if size <= 0 || n <= 0 {
		return nil
	}
	if n > size {
		n = size
	}
	base, rem := size/n, size%n
	out := make([][2]int, n)
	lo := 0
	for i := range out {
		hi := lo + base
		if i < rem {
			hi++
		}
		out[i] = [2]int{lo, hi}
		lo = hi
	}
	return out
}

// ID is the shard's content address: the SHA-256 hex digest of the
// normalized grid's JSON plus the shard coordinates, domain-separated
// from other key kinds. Two shards describing the same slice of the
// same sweep — however either was spelled — share an ID, which is what
// lets a coordinator answer a shard from a previous campaign's cached
// results instead of re-leasing it.
func (s Shard) ID() string {
	// A normalized Grid is plain data with fixed field order, so its
	// encoding/json bytes are already canonical.
	raw, err := json.Marshal(s.Grid)
	if err != nil {
		// Grids marshal unconditionally (maps of floats and slices of
		// structs); reaching here means a Grid field change broke the
		// invariant, which the shard tests pin.
		panic(fmt.Sprintf("campaign: marshaling grid for shard ID: %v", err))
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%d\x00%d\x00%d\x00%d", shardDomain, raw, s.Index, s.Count, s.Lo, s.Hi)
	return hex.EncodeToString(h.Sum(nil))
}

// Jobs expands the shard's slice of the grid's cell space.
func (s Shard) Jobs() []Job {
	jobs := s.Grid.Jobs()
	if s.Lo < 0 || s.Hi > len(jobs) || s.Lo > s.Hi {
		return nil
	}
	return jobs[s.Lo:s.Hi]
}

// Run executes the shard on a local worker pool and returns its results
// re-indexed into the grid's global cell space, so merging the shards of
// a split campaign (Merge) reproduces the unsplit run's result slice —
// byte for byte, at any worker count.
func (s Shard) Run(ctx context.Context, workers int) ([]Result, error) {
	return s.RunBatched(ctx, workers, 0)
}

// RunBatched is Run on the batched lockstep path: cells within the
// shard that share a stream key execute up to batchK per shared
// instruction stream. Results are byte-identical to Run's for any
// batchK and any shard split — batching changes execution scheduling,
// never cell content, so shard IDs stay pure content addresses.
func (s Shard) RunBatched(ctx context.Context, workers, batchK int) ([]Result, error) {
	jobs := s.Jobs()
	if len(jobs) != s.Hi-s.Lo {
		return nil, fmt.Errorf("campaign: shard range [%d,%d) outside grid's %d cells", s.Lo, s.Hi, len(s.Grid.Jobs()))
	}
	r := Runner{Workers: workers, BatchK: batchK}
	results, err := r.Run(ctx, jobs)
	for i := range results {
		results[i].Index = s.Lo + i
	}
	return results, err
}

// Batches returns the shard's batched execution plan: how its cells
// (indices relative to the shard's job slice) group onto shared
// instruction streams at the given batch width. Purely informational —
// the plan is a deterministic function of the shard and batchK, so
// coordinators and workers can reason about batch shape without
// executing anything.
func (s Shard) Batches(batchK int) []BatchUnit {
	return PlanBatches(s.Jobs(), batchK)
}

// FirstError returns the first failed result (by slice order) as the
// campaign's representative error, naming the failing job, or nil when
// every result completed. Runner.Run applies it to a finished campaign;
// the coordinator applies it to merged shard results so a distributed
// campaign fails exactly as the same campaign run locally would.
func FirstError(results []Result) error {
	for i := range results {
		if results[i].Err != "" {
			return fmt.Errorf("campaign: job %d (%s): %s", results[i].Index, results[i].JobID, results[i].Err)
		}
	}
	return nil
}
