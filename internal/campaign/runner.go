package campaign

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Runner executes campaigns across a bounded worker pool.
type Runner struct {
	// Workers bounds concurrent jobs; <= 0 selects runtime.GOMAXPROCS(0).
	Workers int

	// OnProgress, when non-nil, is called after every job finishes (or is
	// skipped on cancellation) with the number of settled jobs, the
	// campaign size, and the job's result. Calls are serialized; the
	// callback needs no locking of its own.
	OnProgress func(done, total int, r *Result)
}

// Run executes the campaign and returns one Result per job, in job
// order, regardless of worker count or completion order.
//
// A job that fails or panics records its error in its Result and does
// not disturb the others; Run then returns the first failure (by job
// index) alongside the full result slice. Cancelling ctx stops new jobs
// from starting — in-flight jobs run to completion, unstarted jobs are
// marked Skipped — and Run returns ctx.Err().
func (r *Runner) Run(ctx context.Context, jobs []Job) ([]Result, error) {
	if len(jobs) == 0 {
		return nil, nil
	}
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	results := make([]Result, len(jobs))
	started := make([]bool, len(jobs))
	idxCh := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	done, total := 0, len(jobs)
	progress := func(res *Result) {
		mu.Lock()
		done++
		if r.OnProgress != nil {
			r.OnProgress(done, total, res)
		}
		mu.Unlock()
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idxCh {
				if ctx.Err() != nil {
					results[i] = skipped(&jobs[i], i, ctx)
				} else {
					results[i] = execute(ctx, &jobs[i], i)
				}
				progress(&results[i])
			}
		}()
	}

	// Feed job indices until the campaign is exhausted or ctx is
	// cancelled; the main goroutine feeds, so it knows exactly which jobs
	// were handed out.
feed:
	for i := range jobs {
		select {
		case idxCh <- i:
			started[i] = true
		case <-ctx.Done():
			break feed
		}
	}
	close(idxCh)
	wg.Wait()

	for i := range jobs {
		if !started[i] {
			results[i] = skipped(&jobs[i], i, ctx)
			progress(&results[i])
		}
	}

	if err := ctx.Err(); err != nil {
		return results, err
	}
	for i := range results {
		if results[i].Err != "" {
			return results, fmt.Errorf("campaign: job %d (%s): %s", i, results[i].JobID, results[i].Err)
		}
	}
	return results, nil
}

// execute runs one job with panic recovery.
func execute(ctx context.Context, job *Job, idx int) (out Result) {
	defer func() {
		if p := recover(); p != nil {
			out = Result{
				JobID:     job.ID,
				Index:     idx,
				Benchmark: job.Benchmark,
				Err:       fmt.Sprintf("panic: %v", p),
			}
		}
	}()
	var (
		res *Result
		err error
	)
	if job.Exec != nil {
		res, err = job.Exec(ctx)
	} else {
		res, err = run(job)
	}
	if err != nil {
		return Result{JobID: job.ID, Index: idx, Benchmark: job.Benchmark, Err: err.Error()}
	}
	if res == nil {
		res = &Result{}
	}
	res.JobID = job.ID
	res.Index = idx
	if res.Benchmark == "" {
		res.Benchmark = job.Benchmark
	}
	return *res
}

func skipped(job *Job, idx int, ctx context.Context) Result {
	errText := "skipped"
	if err := ctx.Err(); err != nil {
		errText = err.Error()
	}
	return Result{JobID: job.ID, Index: idx, Benchmark: job.Benchmark, Skipped: true, Err: errText}
}

// Run executes jobs on a fresh Runner — the convenience entry point for
// callers without progress reporting.
func Run(ctx context.Context, workers int, jobs []Job) ([]Result, error) {
	r := Runner{Workers: workers}
	return r.Run(ctx, jobs)
}
