package campaign

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"paco/internal/obs"
)

// Runner executes campaigns across a bounded worker pool. A Runner
// carries live progress counters (see Snapshot) and must not be copied
// after its first Run.
type Runner struct {
	// Workers bounds concurrent jobs; <= 0 selects runtime.GOMAXPROCS(0).
	Workers int

	// BatchK enables the batched lockstep kernel: cells sharing one
	// instruction stream (equal StreamKey) execute together, up to
	// BatchK per batch, amortizing workload generation across
	// configurations. Results are byte-identical to the unbatched path
	// at any K. <= 1 runs every cell on the single-cell path.
	BatchK int

	// OnProgress, when non-nil, is called after every job finishes (or is
	// skipped on cancellation) with the number of settled jobs, the
	// campaign size, and the job's result. Calls are serialized; the
	// callback needs no locking of its own.
	OnProgress func(done, total int, r *Result)

	// Optional observability hooks, all nil-safe and allocation-free on
	// the per-cell path (obs instruments no-op when nil, so the default
	// CLI configuration pays nothing). SimDuration observes each cell's
	// simulate wall seconds; QueueWait observes how long the cell sat
	// between Run starting and a worker picking it up. Recorder, when
	// non-nil, records one "cell" span per executed job under Trace,
	// parented to Parent (a job- or shard-level span).
	SimDuration *obs.Histogram
	QueueWait   *obs.Histogram
	Recorder    *obs.Recorder
	Trace       string
	Parent      uint64

	// Batch instrumentation (nil-safe like the hooks above). BatchSize
	// observes every execution unit's cell count; BatchedCells and
	// SingletonCells count cells by which path executed them. A batched
	// unit records one "batch" span with per-cell "cell" spans under it.
	BatchSize      *obs.Histogram
	BatchedCells   *obs.Counter
	SingletonCells *obs.Counter

	// Live counters behind Snapshot. queued is jobs not yet picked up,
	// running is jobs currently executing, done is settled jobs
	// (completed, failed, or skipped).
	queued, running, done atomic.Int64
}

// Snapshot is a point-in-time view of a running campaign: how many jobs
// are still queued, executing right now, and settled. It is safe to call
// from any goroutine while Run is in flight — paco-serve's /metrics and
// job-status endpoints poll it.
type Snapshot struct {
	Queued  int `json:"queued"`
	Running int `json:"running"`
	Done    int `json:"done"`
}

// Snapshot reports the runner's current progress. Before the first Run
// all counts are zero; after a Run completes Queued and Running return
// to zero and Done holds the campaign size.
func (r *Runner) Snapshot() Snapshot {
	return Snapshot{
		Queued:  int(r.queued.Load()),
		Running: int(r.running.Load()),
		Done:    int(r.done.Load()),
	}
}

// Run executes the campaign and returns one Result per job, in job
// order, regardless of worker count or completion order.
//
// A job that fails or panics records its error in its Result and does
// not disturb the others; Run then returns the first failure (by job
// index) alongside the full result slice. Cancelling ctx stops new jobs
// from starting — in-flight jobs run to completion, unstarted jobs are
// marked Skipped — and Run returns ctx.Err().
func (r *Runner) Run(ctx context.Context, jobs []Job) ([]Result, error) {
	if len(jobs) == 0 {
		return nil, nil
	}
	units := PlanBatches(jobs, r.BatchK)
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(units) {
		workers = len(units)
	}

	results := make([]Result, len(jobs))
	started := make([]bool, len(units))
	idxCh := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	done, total := 0, len(jobs)
	r.queued.Store(int64(total))
	r.running.Store(0)
	r.done.Store(0)
	progress := func(res *Result) {
		mu.Lock()
		done++
		if r.OnProgress != nil {
			r.OnProgress(done, total, res)
		}
		mu.Unlock()
	}

	runStart := time.Now()
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for ui := range idxCh {
				r.runUnit(ctx, jobs, units[ui], results, runStart, progress)
			}
		}()
	}

	// Feed unit indices until the campaign is exhausted or ctx is
	// cancelled; the main goroutine feeds, so it knows exactly which
	// units were handed out.
feed:
	for ui := range units {
		select {
		case idxCh <- ui:
			started[ui] = true
		case <-ctx.Done():
			break feed
		}
	}
	close(idxCh)
	wg.Wait()

	for ui := range units {
		if !started[ui] {
			for _, i := range units[ui].Cells {
				r.queued.Add(-1)
				r.done.Add(1)
				results[i] = skipped(&jobs[i], i, ctx)
				progress(&results[i])
			}
		}
	}

	if err := ctx.Err(); err != nil {
		return results, err
	}
	return results, FirstError(results)
}

// runUnit executes one planned unit on a worker goroutine: the original
// single-cell path for singleton units, the shared-stream batch for
// multi-cell units.
func (r *Runner) runUnit(ctx context.Context, jobs []Job, u BatchUnit, results []Result, runStart time.Time, progress func(*Result)) {
	k := len(u.Cells)
	r.queued.Add(-int64(k))
	r.running.Add(int64(k))
	wait := time.Since(runStart).Seconds()
	for range u.Cells {
		r.QueueWait.Observe(wait)
	}
	r.BatchSize.Observe(float64(k))

	if k == 1 {
		i := u.Cells[0]
		r.SingletonCells.Inc()
		sp := r.Recorder.Start(r.Trace, "cell", jobs[i].ID, r.Parent)
		cellStart := time.Now()
		if ctx.Err() != nil {
			results[i] = skipped(&jobs[i], i, ctx)
		} else {
			results[i] = execute(ctx, &jobs[i], i)
		}
		r.SimDuration.Observe(time.Since(cellStart).Seconds())
		sp.End(results[i].Err)
		r.running.Add(-1)
		r.done.Add(1)
		progress(&results[i])
		return
	}

	r.BatchedCells.Add(uint64(k))
	short := u.Key
	if len(short) > 12 {
		short = short[:12]
	}
	sp := r.Recorder.Start(r.Trace, "batch", fmt.Sprintf("%s*%d", short, k), r.Parent)
	cellSpans := make([]obs.Span, k)
	for j, i := range u.Cells {
		cellSpans[j] = r.Recorder.Start(r.Trace, "cell", jobs[i].ID, sp.ID())
	}
	batchStart := time.Now()
	if ctx.Err() != nil {
		for _, i := range u.Cells {
			results[i] = skipped(&jobs[i], i, ctx)
		}
	} else {
		for j, res := range executeUnit(jobs, u.Cells) {
			results[u.Cells[j]] = res
		}
	}
	// One batch of K cells is one simulate pass; attribute the wall time
	// evenly so per-cell duration reflects the amortized cost.
	per := time.Since(batchStart).Seconds() / float64(k)
	for j, i := range u.Cells {
		r.SimDuration.Observe(per)
		cellSpans[j].End(results[i].Err)
	}
	var unitErr string
	for _, i := range u.Cells {
		if results[i].Err != "" {
			unitErr = results[i].Err
			break
		}
	}
	sp.End(unitErr)
	r.running.Add(-int64(k))
	r.done.Add(int64(k))
	for _, i := range u.Cells {
		progress(&results[i])
	}
}

// execute runs one job with panic recovery.
func execute(ctx context.Context, job *Job, idx int) (out Result) {
	defer func() {
		if p := recover(); p != nil {
			out = Result{
				JobID:     job.ID,
				Index:     idx,
				Benchmark: job.Benchmark,
				Err:       fmt.Sprintf("panic: %v", p),
			}
		}
	}()
	var (
		res *Result
		err error
	)
	if job.Exec != nil {
		res, err = job.Exec(ctx)
	} else {
		res, err = run(job)
	}
	if err != nil {
		return Result{JobID: job.ID, Index: idx, Benchmark: job.Benchmark, Err: err.Error()}
	}
	if res == nil {
		res = &Result{}
	}
	res.JobID = job.ID
	res.Index = idx
	if res.Benchmark == "" {
		res.Benchmark = job.Benchmark
	}
	return *res
}

func skipped(job *Job, idx int, ctx context.Context) Result {
	errText := "skipped"
	if err := ctx.Err(); err != nil {
		errText = err.Error()
	}
	return Result{JobID: job.ID, Index: idx, Benchmark: job.Benchmark, Skipped: true, Err: errText}
}

// Run executes jobs on a fresh Runner — the convenience entry point for
// callers without progress reporting.
func Run(ctx context.Context, workers int, jobs []Job) ([]Result, error) {
	r := Runner{Workers: workers}
	return r.Run(ctx, jobs)
}
