package campaign

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestCancellationDrainsWorkers cancels a campaign mid-flight and
// asserts (a) Run returns ctx.Err with every unstarted job marked
// Skipped, (b) the Snapshot counters settle at done == total, and (c)
// the worker goroutines all exit — no leak, measured by goroutine
// count returning to its pre-campaign level. Run under -race in CI.
func TestCancellationDrainsWorkers(t *testing.T) {
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	const total = 32
	var started atomic.Int32
	release := make(chan struct{})
	jobs := make([]Job, total)
	for i := range jobs {
		i := i
		jobs[i] = Job{
			ID: "slow",
			Exec: func(ctx context.Context) (*Result, error) {
				started.Add(1)
				select {
				case <-release:
				case <-ctx.Done():
				}
				return &Result{Benchmark: "slow", Cycles: uint64(i)}, nil
			},
		}
	}

	r := &Runner{Workers: 4}
	errCh := make(chan error, 1)
	resCh := make(chan []Result, 1)
	go func() {
		results, err := r.Run(ctx, jobs)
		resCh <- results
		errCh <- err
	}()

	// Wait until the pool is actually executing, then cancel mid-campaign
	// and release the in-flight jobs.
	for started.Load() < 4 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	close(release)

	results := <-resCh
	if err := <-errCh; err != context.Canceled {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	if snap := r.Snapshot(); snap.Queued != 0 || snap.Running != 0 || snap.Done != total {
		t.Fatalf("post-cancel snapshot = %+v, want all %d done", snap, total)
	}
	var skippedN int
	for i := range results {
		if results[i].Skipped {
			skippedN++
		}
	}
	if skippedN == 0 || skippedN == total {
		t.Fatalf("skipped = %d of %d, want a mid-campaign cancellation", skippedN, total)
	}

	// The pool must drain: poll until the goroutine count returns to the
	// pre-campaign level (with a little scheduler slack).
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC() // nudge finished goroutines off the count
		now := runtime.NumGoroutine()
		if now <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not drain: before=%d now=%d", before, now)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSnapshotDuringRun watches the counters while a campaign is in
// flight: queued+running+done always sums to the campaign size.
func TestSnapshotDuringRun(t *testing.T) {
	const total = 8
	release := make(chan struct{})
	var started atomic.Int32
	jobs := make([]Job, total)
	for i := range jobs {
		jobs[i] = Job{
			ID: "gate",
			Exec: func(ctx context.Context) (*Result, error) {
				started.Add(1)
				<-release
				return &Result{}, nil
			},
		}
	}
	r := &Runner{Workers: 2}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := r.Run(context.Background(), jobs); err != nil {
			t.Error(err)
		}
	}()
	for started.Load() < 2 {
		time.Sleep(time.Millisecond)
	}
	snap := r.Snapshot()
	if snap.Queued+snap.Running+snap.Done != total {
		t.Fatalf("snapshot does not sum to campaign size: %+v", snap)
	}
	if snap.Running == 0 {
		t.Fatalf("snapshot shows no running jobs mid-flight: %+v", snap)
	}
	close(release)
	<-done
	if snap := r.Snapshot(); snap != (Snapshot{Done: total}) {
		t.Fatalf("final snapshot = %+v, want {0 0 %d}", snap, total)
	}
}
