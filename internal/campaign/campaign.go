// Package campaign is the simulation-campaign engine: it shards
// independent simulation jobs across a bounded worker pool and collects
// structured, serializable results.
//
// A campaign is a slice of Jobs. Each Job names a workload (a bundled
// benchmark or a custom workload.Spec), a machine configuration, an
// optional deterministic seed override, and a Setup hook that constructs
// the run's estimators, gate, and probes on the worker goroutine — so
// every run gets fresh predictor state and no state is shared between
// concurrently executing jobs. A Runner executes the jobs with per-job
// panic recovery, context cancellation, and progress callbacks, and
// returns one Result per job, in job order.
//
// Every simulation in this repository is deterministic given its spec
// seed, and jobs share no mutable state, so a campaign's results are
// identical regardless of worker count: results[i] depends only on
// jobs[i]. Aggregation helpers (Merge, Summarize) likewise consume
// results in job order, which makes whole reports byte-identical at -j 1
// and -j 8. Results serialize to JSON and CSV and merge across shards,
// so a campaign can be split across processes or machines and the pieces
// recombined.
//
// The experiments package submits every per-benchmark measurement of the
// paper's evaluation through this engine; cmd/paco-campaign exposes it
// directly for arbitrary configuration sweeps.
package campaign

import (
	"context"

	"paco/internal/core"
	"paco/internal/cpu"
	"paco/internal/workload"
)

// Job describes one independent simulation run.
type Job struct {
	// ID labels the job in results and logs. IDs should be unique within
	// a campaign (Merge orders ties by ID).
	ID string

	// Benchmark names a bundled benchmark model; it is resolved with
	// workload.NewBenchmark when Spec is nil.
	Benchmark string

	// Spec is an explicit workload; the engine runs a private copy, so a
	// spec may be shared between jobs.
	Spec *workload.Spec

	// Instructions and Warmup size the measured window and the discarded
	// warmup that precedes it.
	Instructions, Warmup uint64

	// Machine overrides the simulated core configuration (nil selects
	// cpu.DefaultConfig()).
	Machine *cpu.Config

	// Seed, when nonzero, overrides the workload's seed — runs with equal
	// seeds produce identical instruction streams.
	Seed uint64

	// Setup, when non-nil, is called once on the worker goroutine before
	// the run to construct per-run hooks (estimators, gate, probes).
	Setup Setup

	// Exec, when non-nil, replaces the standard single-thread simulation
	// entirely: the engine calls it (with panic recovery) and adopts the
	// returned Result. Used for runs the declarative fields cannot
	// express, e.g. multi-thread SMT measurements.
	Exec func(ctx context.Context) (*Result, error)
}

// Setup constructs a job's per-run hooks. It runs on the worker
// goroutine, once per job, so estimator state is never shared between
// concurrent runs.
type Setup func() Hooks

// Hooks attaches estimators and measurement probes to one run.
type Hooks struct {
	// Estimators are attached to the measured thread. PaCo estimators are
	// refreshed once at the warmup/measurement boundary (standing in for
	// the paper's multi-hundred-million instruction fast-forward).
	Estimators []core.Estimator

	// Gate, when non-nil, is consulted every cycle; true suppresses fetch
	// (pipeline gating).
	Gate func() bool

	// Attached is called after the thread is added, before warmup — the
	// place to capture per-thread handles such as the workload walker.
	Attached func(c *cpu.Core, tid int)

	// Probe is installed for the measured window only (after warmup
	// statistics are discarded). It observes every fetched instruction
	// with the goodpath oracle's verdict.
	Probe func(tid int, goodpath bool)

	// Collect runs after the measured window with the final core state;
	// it records custom measurements into the job's Result (typically via
	// Result.Extra).
	Collect func(res *Result, c *cpu.Core, tid int)
}

// resolveSpec materializes the job's effective workload: the named
// benchmark or a private copy of its spec, with the seed override
// applied. Runs with equal resolved specs produce identical streams.
func resolveSpec(job *Job) (*workload.Spec, error) {
	spec := job.Spec
	if spec == nil {
		s, err := workload.NewBenchmark(job.Benchmark)
		if err != nil {
			return nil, err
		}
		spec = s
	} else {
		// Private copy: specs may be shared between jobs.
		spec = spec.Clone()
	}
	if job.Seed != 0 {
		spec.Seed = job.Seed
	}
	return spec, nil
}

// run executes the standard single-thread simulation for one job.
func run(job *Job) (*Result, error) {
	spec, err := resolveSpec(job)
	if err != nil {
		return nil, err
	}
	machine := cpu.DefaultConfig()
	if job.Machine != nil {
		machine = *job.Machine
	}
	c, err := cpu.New(machine)
	if err != nil {
		return nil, err
	}
	var hooks Hooks
	if job.Setup != nil {
		hooks = job.Setup()
	}
	return finishRun(c, spec, job, hooks)
}

// finishRun is the back half of run — attach the thread, warm up,
// measure, collect — shared with the batched path's inline-singleton
// fallback (jobs whose hooks need a private walker or core).
func finishRun(c *cpu.Core, spec *workload.Spec, job *Job, hooks Hooks) (*Result, error) {
	tid, err := c.AddThread(spec, hooks.Estimators)
	if err != nil {
		return nil, err
	}
	if hooks.Attached != nil {
		hooks.Attached(c, tid)
	}
	if hooks.Gate != nil {
		c.SetGate(hooks.Gate)
	}
	c.Run(job.Warmup, 0)
	// The warmup stands in for the paper's fast-forward, during which
	// PaCo's log circuit would have run thousands of times; force one
	// logarithmization at the boundary so measurement never starts from
	// the cold-start profile.
	refreshPaCos(hooks.Estimators)
	c.ResetStats()
	if hooks.Probe != nil {
		c.SetProbe(hooks.Probe)
	}
	c.Run(job.Instructions, 0)
	return collectResult(c, spec, tid, hooks), nil
}

// refreshPaCos forces the warmup-boundary logarithmization on every
// PaCo estimator (see finishRun).
func refreshPaCos(ests []core.Estimator) {
	for _, e := range ests {
		if p, ok := e.(*core.PaCo); ok {
			p.Refresh()
		}
	}
}

// collectResult assembles the measured window's Result and runs the
// Collect hook. On the batched path c may be a core shared by several
// passive cells; Collect hooks that inspect the core (rather than
// captured per-cell state) see the shared core.
func collectResult(c *cpu.Core, spec *workload.Spec, tid int, hooks Hooks) *Result {
	res := &Result{
		Benchmark: spec.Name,
		Seed:      spec.Seed,
		Cycles:    c.Stats().Cycles,
		IPC:       c.IPC(tid),
		Stats:     c.ThreadStats(tid),
	}
	if hooks.Collect != nil {
		hooks.Collect(res, c, tid)
	}
	return res
}
