package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

func TestGridNormalizedDefaults(t *testing.T) {
	g, err := Grid{}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Benchmarks) != 12 {
		t.Fatalf("default benchmarks = %v", g.Benchmarks)
	}
	if g.Instructions != 600_000 || g.Warmup != 200_000 {
		t.Fatalf("default window = %d/%d", g.Instructions, g.Warmup)
	}
	if len(g.Refresh) != 1 || g.Refresh[0] != 200_000 {
		t.Fatalf("default refresh = %v", g.Refresh)
	}
	if len(g.Widths) != 1 || g.Widths[0] != 4 {
		t.Fatalf("default widths = %v", g.Widths)
	}
	if g.GateCount != 3 {
		t.Fatalf("default gate count = %d", g.GateCount)
	}
	if g.Size() != 12 {
		t.Fatalf("default grid size = %d, want 12 ungated cells", g.Size())
	}
	// Normalization is idempotent, and equivalent grids canonicalize to
	// identical JSON — the property the server's content hash rests on.
	g2, err := g.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := json.Marshal(g)
	j2, _ := json.Marshal(g2)
	if !bytes.Equal(j1, j2) {
		t.Fatalf("normalization not idempotent:\n%s\n%s", j1, j2)
	}
}

func TestGridNormalizedRejects(t *testing.T) {
	cases := []Grid{
		{Benchmarks: []string{"nonesuch"}},
		{Refresh: []uint64{0}},
		{Widths: []int{-1}},
		{ProbGates: []float64{1.5}},
		{ProbGates: []float64{0}},
		{GateCount: -2},
	}
	for i, g := range cases {
		if _, err := g.Normalized(); err == nil {
			t.Errorf("case %d: Normalized(%+v) accepted invalid grid", i, g)
		}
	}
}

func TestGridJobsExpansion(t *testing.T) {
	g, err := Grid{
		Benchmarks: []string{"gzip", "twolf"},
		Refresh:    []uint64{100_000, 200_000},
		Widths:     []int{2, 4},
		ProbGates:  []float64{0.1},
		Thresholds: []uint32{3},
	}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	jobs := g.Jobs()
	if len(jobs) != g.Size() || len(jobs) != 2*2*2*2 {
		t.Fatalf("len(jobs) = %d, Size() = %d, want 16", len(jobs), g.Size())
	}
	if jobs[0].ID != "gzip/refresh=100000/width=2/prob0.1" {
		t.Fatalf("jobs[0].ID = %q", jobs[0].ID)
	}
	if jobs[1].ID != "gzip/refresh=100000/width=2/thr3-gate3" {
		t.Fatalf("jobs[1].ID = %q", jobs[1].ID)
	}
	for i := range jobs {
		if jobs[i].Machine == nil || jobs[i].Setup == nil {
			t.Fatalf("job %d missing machine or setup", i)
		}
	}
	if jobs[0].Machine.FetchWidth != 2 || jobs[2].Machine.FetchWidth != 4 {
		t.Fatalf("machine widths not applied: %d, %d",
			jobs[0].Machine.FetchWidth, jobs[2].Machine.FetchWidth)
	}
}

// TestGridCellsMeasure runs a tiny grid end to end: every cell must
// complete and carry the PaCo reliability extras the sweep promises.
func TestGridCellsMeasure(t *testing.T) {
	g, err := Grid{
		Benchmarks:   []string{"gzip"},
		Instructions: 15_000,
		Warmup:       5_000,
		Refresh:      []uint64{10_000},
		ProbGates:    []float64{0.2},
		Thresholds:   []uint32{3},
	}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	results, err := Run(context.Background(), 2, g.Jobs())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("len(results) = %d", len(results))
	}
	for i, r := range results {
		if r.Cycles == 0 || r.IPC <= 0 {
			t.Fatalf("cell %d: empty measurement %+v", i, r)
		}
		if _, ok := r.Extra["rms_error"]; !ok {
			t.Fatalf("cell %d: missing rms_error extra", i)
		}
		if r.Extra["probe_instances"] <= 0 {
			t.Fatalf("cell %d: probe never fired", i)
		}
	}
	// The gated cell must actually gate.
	if results[0].Stats.GatedCycles == 0 {
		t.Fatalf("prob-gated cell recorded no gated cycles: %+v", results[0].Stats)
	}
}
