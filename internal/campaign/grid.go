package campaign

import (
	"context"
	"fmt"

	"paco/internal/core"
	"paco/internal/cpu"
	"paco/internal/gating"
	"paco/internal/metrics"
	"paco/internal/scenario"
	"paco/internal/workload"
)

// Grid is the declarative, serializable description of a configuration
// sweep: the cross product of benchmarks, MRT refresh periods, machine
// widths, and gating schemes, one simulation job per cell. It is the
// shared spec behind cmd/paco-campaign's flags and paco-serve's POST
// /v1/jobs body — and because a Grid is plain data, a normalized Grid
// canonicalizes to stable JSON, which is what the server's
// content-addressed result cache hashes.
//
// Every cell attaches a PaCo estimator with a reliability probe, so each
// result carries the predictor's RMS error (Extra keys "rms_error" and
// "probe_instances") alongside IPC and the path/mispredict counters.
type Grid struct {
	// Benchmarks are the workload models to sweep: bundled benchmark
	// names and/or scenario family names (normalization moves family
	// names into Scenarios). Empty selects the paper's full benchmark
	// list — unless Scenarios or Fuzz supply workloads, in which case
	// empty means none.
	Benchmarks []string `json:"benchmarks,omitempty"`

	// Scenarios are declarative workloads (internal/scenario) swept
	// alongside Benchmarks; each compiles to a workload spec per cell.
	Scenarios []scenario.Scenario `json:"scenarios,omitempty"`

	// Fuzz, when non-nil, expands at normalization into Count scenarios
	// sampled deterministically from Seed — so a fuzzed sweep spec is
	// content-equal to the same sweep with the documents spelled out.
	Fuzz *scenario.FuzzSpec `json:"fuzz,omitempty"`

	// Instructions and Warmup size each cell's measured window and
	// discarded warmup (0 selects the defaults, 600k/200k).
	Instructions uint64 `json:"instructions,omitempty"`
	Warmup       uint64 `json:"warmup,omitempty"`

	// Refresh lists PaCo MRT refresh periods in cycles (empty selects
	// the paper's 200,000).
	Refresh []uint64 `json:"refresh,omitempty"`

	// Widths lists machine widths; each width sets fetch width, retire
	// width, and FU count together (empty selects 4, the paper's Table 6
	// machine).
	Widths []int `json:"widths,omitempty"`

	// ProbGates lists PaCo gating targets as goodpath probabilities
	// (e.g. 0.2 gates below 20%). Thresholds lists JRS confidence
	// thresholds for conventional count-gating cells, each using
	// GateCount (0 selects 3). When both are empty the sweep runs
	// ungated.
	ProbGates  []float64 `json:"prob_gates,omitempty"`
	Thresholds []uint32  `json:"thresholds,omitempty"`
	GateCount  int       `json:"gate_count,omitempty"`

	// Seed, when nonzero, overrides every workload's seed so separate
	// sweeps are comparable instruction-stream for instruction-stream.
	Seed uint64 `json:"seed,omitempty"`
}

// Normalized validates the grid and fills every default, returning the
// canonical form: two grids that describe the same sweep normalize to
// equal values (and therefore to identical JSON). Benchmarks are
// validated against the workload registry.
func (g Grid) Normalized() (Grid, error) {
	out := g
	out.Scenarios = append([]scenario.Scenario(nil), g.Scenarios...)
	if len(out.Benchmarks) == 0 && len(out.Scenarios) == 0 && out.Fuzz == nil {
		out.Benchmarks = append([]string(nil), workload.BenchmarkNames...)
	}
	// Family names on the benchmark axis canonicalize as scenarios, so
	// {"benchmarks":["loopy"]} and {"scenarios":[{"family":"loopy"}]}
	// hash to the same content address.
	var benchmarks []string
	for _, name := range g.Benchmarks {
		switch {
		case workload.IsBenchmark(name):
			benchmarks = append(benchmarks, name)
		case scenario.IsFamily(name):
			out.Scenarios = append(out.Scenarios, scenario.Scenario{Family: name})
		default:
			return Grid{}, fmt.Errorf(
				"campaign: %q is neither a benchmark (have %v) nor a scenario family (have %v)",
				name, workload.BenchmarkNames, scenario.FamilyNames())
		}
	}
	if len(g.Benchmarks) > 0 {
		out.Benchmarks = benchmarks
	}
	if out.Fuzz != nil {
		fuzzed, err := out.Fuzz.Generate()
		if err != nil {
			return Grid{}, err
		}
		out.Scenarios = append(out.Scenarios, fuzzed...)
		out.Fuzz = nil
	}
	seen := map[string]bool{}
	for i, sc := range out.Scenarios {
		n, err := sc.Normalized()
		if err != nil {
			return Grid{}, fmt.Errorf("campaign: scenario %d: %w", i, err)
		}
		if _, err := n.Compile(); err != nil {
			return Grid{}, fmt.Errorf("campaign: scenario %d: %w", i, err)
		}
		if seen[n.Name] {
			return Grid{}, fmt.Errorf("campaign: duplicate scenario name %q", n.Name)
		}
		seen[n.Name] = true
		out.Scenarios[i] = n
	}
	if len(out.Scenarios) == 0 {
		out.Scenarios = nil
	}
	if out.Instructions == 0 {
		out.Instructions = 600_000
	}
	if out.Warmup == 0 {
		out.Warmup = 200_000
	}
	if len(out.Refresh) == 0 {
		out.Refresh = []uint64{200_000}
	}
	for _, r := range out.Refresh {
		if r == 0 {
			return Grid{}, fmt.Errorf("campaign: refresh period must be nonzero")
		}
	}
	if len(out.Widths) == 0 {
		out.Widths = []int{4}
	}
	for _, w := range out.Widths {
		if w <= 0 {
			return Grid{}, fmt.Errorf("campaign: machine width must be positive, got %d", w)
		}
	}
	for _, p := range out.ProbGates {
		if p <= 0 || p >= 1 {
			return Grid{}, fmt.Errorf("campaign: gating target %g outside (0,1)", p)
		}
	}
	if out.GateCount == 0 {
		out.GateCount = 3
	}
	if out.GateCount < 0 {
		return Grid{}, fmt.Errorf("campaign: gate count must be positive, got %d", out.GateCount)
	}
	return out, nil
}

// Size is the number of cells the grid expands to. Call on a normalized
// grid; a zero grid has size 0.
func (g Grid) Size() int {
	return (len(g.Benchmarks) + len(g.Scenarios)) * len(g.Refresh) * len(g.Widths) * g.gateCells()
}

func (g Grid) gateCells() int {
	n := len(g.ProbGates) + len(g.Thresholds)
	if n == 0 {
		n = 1 // ungated
	}
	return n
}

// gridGate is one point on the grid's gating axis.
type gridGate struct {
	label string
	mk    func(refresh uint64) gating.Gate // nil = ungated
}

func (g Grid) gates() []gridGate {
	var gates []gridGate
	if len(g.ProbGates) == 0 && len(g.Thresholds) == 0 {
		gates = append(gates, gridGate{label: "ungated"})
	}
	for _, p := range g.ProbGates {
		p := p
		gates = append(gates, gridGate{
			label: fmt.Sprintf("prob%g", p),
			mk:    func(refresh uint64) gating.Gate { return gating.NewProbGate(p, refresh) },
		})
	}
	for _, thr := range g.Thresholds {
		thr, gc := thr, g.GateCount
		gates = append(gates, gridGate{
			label: fmt.Sprintf("thr%d-gate%d", thr, gc),
			mk:    func(uint64) gating.Gate { return gating.NewCountGate(thr, gc) },
		})
	}
	return gates
}

// Jobs expands the grid into one Job per cell, in deterministic order
// (workload-major — benchmarks then scenarios — then refresh, width,
// gate). The grid should be normalized first; Jobs on an unnormalized
// grid expands whatever is present. Cell IDs for benchmark workloads are
// unchanged from pre-scenario grids; scenario cells are prefixed
// "scenario:".
func (g Grid) Jobs() []Job {
	var jobs []Job
	addCells := func(id, benchmark string, spec *workload.Spec) {
		for _, refresh := range g.Refresh {
			for _, width := range g.Widths {
				machine := cpu.DefaultConfig()
				machine.FetchWidth = width
				machine.RetireWidth = width
				machine.FUCount = width
				for _, gc := range g.gates() {
					refresh, gc, machine := refresh, gc, machine
					jobs = append(jobs, Job{
						ID:           fmt.Sprintf("%s/refresh=%d/width=%d/%s", id, refresh, width, gc.label),
						Benchmark:    benchmark,
						Spec:         spec,
						Instructions: g.Instructions,
						Warmup:       g.Warmup,
						Machine:      &machine,
						Seed:         g.Seed,
						Setup:        cellSetup(refresh, gc),
					})
				}
			}
		}
	}
	for _, name := range g.Benchmarks {
		addCells(name, name, nil)
	}
	for _, sc := range g.Scenarios {
		sc := sc
		spec, err := sc.Compile()
		if err != nil {
			// Normalized grids compile cleanly; an unnormalized grid's bad
			// scenario surfaces as a failed cell rather than a panic.
			errJob := Job{
				ID:        fmt.Sprintf("scenario:%s", sc.Name),
				Benchmark: sc.Name,
				Exec: func(context.Context) (*Result, error) {
					return nil, err
				},
			}
			jobs = append(jobs, errJob)
			continue
		}
		addCells("scenario:"+spec.Name, spec.Name, spec)
	}
	return jobs
}

// cellSetup builds the per-cell hooks: the cell's gate (if any), a PaCo
// estimator, and a reliability probe recording PaCo's RMS error.
func cellSetup(refresh uint64, gc gridGate) Setup {
	return func() Hooks {
		rel := &metrics.Reliability{}
		hooks := Hooks{
			Collect: func(res *Result, _ *cpu.Core, _ int) {
				res.SetExtra("rms_error", rel.RMSError())
				res.SetExtra("probe_instances", float64(rel.Instances()))
			},
		}
		var paco *core.PaCo
		if gc.mk != nil {
			g := gc.mk(refresh)
			hooks.Gate = g.ShouldGate
			if pg, ok := g.(*gating.ProbGate); ok {
				paco = pg.PaCo()
				hooks.Estimators = []core.Estimator{paco}
			} else {
				// Conventional gate: measure PaCo alongside it.
				paco = core.NewPaCo(core.PaCoConfig{RefreshPeriod: refresh})
				hooks.Estimators = []core.Estimator{g.Estimator(), paco}
			}
		} else {
			paco = core.NewPaCo(core.PaCoConfig{RefreshPeriod: refresh})
			hooks.Estimators = []core.Estimator{paco}
		}
		hooks.Probe = func(_ int, onGood bool) {
			rel.Add(paco.GoodpathProb(), onGood)
		}
		return hooks
	}
}
