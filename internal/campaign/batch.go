package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"paco/internal/core"
	"paco/internal/cpu"
	"paco/internal/workload"
)

// Batched lockstep execution. A campaign sweep re-simulates the same
// instruction stream once per grid cell; cells that differ only in
// estimator or gating configuration pay the dominant stream-generation
// cost K times. The batch planner groups cells by stream key — the
// content address of (workload spec or benchmark name, seed override,
// instruction and warmup quotas) — and each group executes as one
// cpu.Batch: one shared workload.Tape, with ungated cells merged as
// extra estimators on a shared core (estimators are passive observers
// absent a gate) and gated cells on their own cores replaying the tape.
//
// The planner is a pure function of the job slice, and the lockstep
// scheduler cannot perturb per-core evolution (see cpu.Batch), so the
// batched path returns byte-identical results to the unbatched path at
// any K — shard content addresses and the federation's determinism
// guarantees are untouched.

// batchDomain versions the stream-key computation, domain-separated
// from shard IDs.
const batchDomain = "paco-batch/v1"

// DefaultBatchK is the batch width the CLIs and server default to: wide
// enough to amortize stream generation across a typical refresh-axis
// sweep, narrow enough that a batch's working set (K cores' predictor
// and cache state) stays cache-resident.
const DefaultBatchK = 8

// BatchUnit is one planned execution unit: the cells (indices into the
// planned job slice) that run together on one shared instruction
// stream. A unit of one cell executes on the ordinary single-cell path.
type BatchUnit struct {
	// Key is the unit's stream key — the content address of the shared
	// workload stream and run shape. Empty for singleton units of jobs
	// that cannot be batched (custom Exec jobs).
	Key string `json:"key,omitempty"`

	// Cells are indices into the planned job slice, ascending.
	Cells []int `json:"cells"`
}

// StreamKey returns the job's batch stream key: the SHA-256 content
// address of the workload it fetches (explicit spec or benchmark name),
// its seed override, and its instruction/warmup quotas. Jobs with equal
// stream keys consume identical goodpath instruction streams over
// identical quota windows, so they may share one tape. The second
// result is false for jobs that cannot be batched (custom Exec jobs).
func StreamKey(job *Job) (string, bool) {
	if job.Exec != nil {
		return "", false
	}
	var stream []byte
	if job.Spec != nil {
		raw, err := json.Marshal(job.Spec)
		if err != nil {
			return "", false
		}
		stream = raw
	} else {
		stream = []byte("bench:" + job.Benchmark)
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%d\x00%d\x00%d", batchDomain, stream, job.Seed, job.Instructions, job.Warmup)
	return hex.EncodeToString(h.Sum(nil)), true
}

// PlanBatches partitions the jobs into execution units of at most
// batchK cells each, grouping jobs by stream key. Every job lands in
// exactly one unit; groups split into balanced chunks (Ranges); units
// are ordered by first cell, so a plan over a grid's workload-major job
// order stays contiguous. batchK <= 1 plans every job as a singleton —
// the unbatched path.
func PlanBatches(jobs []Job, batchK int) []BatchUnit {
	units := make([]BatchUnit, 0, len(jobs))
	if batchK <= 1 {
		for i := range jobs {
			key, _ := StreamKey(&jobs[i])
			units = append(units, BatchUnit{Key: key, Cells: []int{i}})
		}
		return units
	}
	type group struct {
		key   string
		cells []int
	}
	byKey := map[string]int{}
	var groups []*group
	for i := range jobs {
		key, ok := StreamKey(&jobs[i])
		if !ok {
			groups = append(groups, &group{cells: []int{i}})
			continue
		}
		gi, seen := byKey[key]
		if !seen {
			gi = len(groups)
			byKey[key] = gi
			groups = append(groups, &group{key: key})
		}
		groups[gi].cells = append(groups[gi].cells, i)
	}
	for _, g := range groups {
		n := (len(g.cells) + batchK - 1) / batchK
		for _, r := range Ranges(len(g.cells), n) {
			units = append(units, BatchUnit{Key: g.key, Cells: g.cells[r[0]:r[1]]})
		}
	}
	// Order units by first cell so execution and progress reporting
	// follow job order as closely as the grouping allows.
	sortUnits(units)
	return units
}

// sortUnits orders units by their first cell (insertion sort: plans are
// small and mostly ordered already).
func sortUnits(units []BatchUnit) {
	for i := 1; i < len(units); i++ {
		for j := i; j > 0 && units[j].Cells[0] < units[j-1].Cells[0]; j-- {
			units[j], units[j-1] = units[j-1], units[j]
		}
	}
}

// batchLane is one cell's state during batched execution.
type batchLane struct {
	job     *Job
	spec    *workload.Spec
	machine cpu.Config
	hooks   Hooks
	c       *cpu.Core
	tid     int
	settled bool
}

// executeUnit runs a multi-cell unit on one shared instruction stream
// and returns one Result per cell, each byte-identical to what
// execute() would have produced for that cell alone: the per-lane
// construction sequence (resolve spec, build core, run Setup), the
// warmup/refresh/reset/measure schedule, and the Result assembly all
// mirror the single-cell path exactly.
//
// A panic (from user Setup/estimator/gate code) fails every cell in the
// unit that has not already settled, with the singleton path's
// "panic: ..." text; per-lane isolation is not possible once lanes
// share a core.
func executeUnit(jobs []Job, cells []int) (out []Result) {
	out = make([]Result, len(cells))
	lanes := make([]*batchLane, len(cells))
	settle := func(j int, res *Result, err error) {
		job := &jobs[cells[j]]
		if err != nil {
			out[j] = Result{JobID: job.ID, Index: cells[j], Benchmark: job.Benchmark, Err: err.Error()}
		} else {
			if res == nil {
				res = &Result{}
			}
			res.JobID = job.ID
			res.Index = cells[j]
			if res.Benchmark == "" {
				res.Benchmark = job.Benchmark
			}
			out[j] = *res
		}
		if lanes[j] != nil {
			lanes[j].settled = true
		}
	}
	defer func() {
		if p := recover(); p != nil {
			for j := range cells {
				if lanes[j] == nil || !lanes[j].settled {
					job := &jobs[cells[j]]
					out[j] = Result{JobID: job.ID, Index: cells[j], Benchmark: job.Benchmark,
						Err: fmt.Sprintf("panic: %v", p)}
				}
			}
		}
	}()

	// Per-lane prologue, in cell order, mirroring run(): resolve the
	// workload, build the machine, construct the hooks.
	for j, ci := range cells {
		job := &jobs[ci]
		ln := &batchLane{job: job}
		lanes[j] = ln
		ln.settled = true // until the lane survives the prologue
		spec, err := resolveSpec(job)
		if err != nil {
			settle(j, nil, err)
			continue
		}
		ln.spec = spec
		ln.machine = cpu.DefaultConfig()
		if job.Machine != nil {
			ln.machine = *job.Machine
		}
		c, err := cpu.New(ln.machine)
		if err != nil {
			settle(j, nil, err)
			continue
		}
		ln.c = c
		if job.Setup != nil {
			ln.hooks = job.Setup()
		}
		if ln.hooks.Attached != nil {
			// The hooks need a private core/walker handle; run the whole
			// cell inline on the singleton path with the hooks already
			// built (Setup runs exactly once either way).
			res, err := finishRun(c, spec, job, ln.hooks)
			settle(j, res, err)
			continue
		}
		ln.settled = false
	}

	// Build the shared tape from the first surviving lane's spec (all
	// lanes in a unit resolve content-equal specs). A walker build error
	// fails each lane exactly where AddThread would have.
	var batch *cpu.Batch
	for j := range cells {
		if lanes[j].settled {
			continue
		}
		b, err := cpu.NewBatch(lanes[j].spec)
		if err != nil {
			for k := j; k < len(cells); k++ {
				if !lanes[k].settled {
					settle(k, nil, err)
				}
			}
			return out
		}
		batch = b
		break
	}
	if batch == nil {
		return out // every lane settled in the prologue
	}

	// Lane placement: gated cells keep their own core on the tape;
	// ungated cells are passive observers (estimators feed back into the
	// core only through a gate), so they merge onto shared cores — first
	// fit in cell order, same machine configuration, at most
	// cpu.MaxEstimators estimators per core.
	type sharedCore struct {
		machine cpu.Config
		c       *cpu.Core
		ests    []core.Estimator
		lanes   []int // indices into lanes/cells
	}
	var shares []*sharedCore
	for j := range cells {
		ln := lanes[j]
		if ln.settled {
			continue
		}
		if ln.hooks.Gate != nil {
			tid, err := batch.Attach(ln.c, ln.hooks.Estimators)
			if err != nil {
				settle(j, nil, err)
				continue
			}
			ln.tid = tid
			ln.c.SetGate(ln.hooks.Gate)
			continue
		}
		var sc *sharedCore
		for _, s := range shares {
			if s.machine == ln.machine && len(s.ests)+len(ln.hooks.Estimators) <= cpu.MaxEstimators {
				sc = s
				break
			}
		}
		if sc == nil {
			sc = &sharedCore{machine: ln.machine, c: ln.c}
			shares = append(shares, sc)
		}
		sc.lanes = append(sc.lanes, j)
		sc.ests = append(sc.ests, ln.hooks.Estimators...)
		ln.c = sc.c
	}
	for _, sc := range shares {
		tid, err := batch.Attach(sc.c, sc.ests)
		for _, j := range sc.lanes {
			if err != nil {
				settle(j, nil, err)
			} else {
				lanes[j].tid = tid
			}
		}
	}

	var active []int
	for j := range cells {
		if !lanes[j].settled {
			active = append(active, j)
		}
	}
	if len(active) == 0 {
		return out
	}

	// The warmup/refresh/reset/probe/measure schedule, per finishRun.
	// Quotas are per-unit constants (the stream key pins them).
	template := jobs[cells[0]]
	batch.Run(template.Warmup)
	for _, j := range active {
		refreshPaCos(lanes[j].hooks.Estimators)
	}
	seen := map[*cpu.Core]bool{}
	for _, j := range active {
		c := lanes[j].c
		if seen[c] {
			continue
		}
		seen[c] = true
		c.ResetStats()
		var probes []func(int, bool)
		for _, k := range active {
			if lanes[k].c == c && lanes[k].hooks.Probe != nil {
				probes = append(probes, lanes[k].hooks.Probe)
			}
		}
		switch len(probes) {
		case 0:
		case 1:
			c.SetProbe(probes[0])
		default:
			probes := probes
			c.SetProbe(func(tid int, goodpath bool) {
				for _, p := range probes {
					p(tid, goodpath)
				}
			})
		}
	}
	batch.Run(template.Instructions)

	for _, j := range active {
		ln := lanes[j]
		settle(j, collectResult(ln.c, ln.spec, ln.tid, ln.hooks), nil)
	}
	return out
}
