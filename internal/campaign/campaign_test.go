package campaign

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"paco/internal/core"
	"paco/internal/cpu"
	"paco/internal/metrics"
	"paco/internal/workload"
)

// simJobs builds a small campaign of real simulation jobs with probes
// and Collect hooks, the shape the experiments layer uses.
func simJobs(rms []float64) []Job {
	names := []string{"gzip", "twolf", "bzip2"}
	jobs := make([]Job, len(names))
	for i, name := range names {
		i, name := i, name
		jobs[i] = Job{
			ID:           name,
			Benchmark:    name,
			Instructions: 20_000,
			Warmup:       8_000,
			Setup: func() Hooks {
				paco := core.NewPaCo(core.PaCoConfig{RefreshPeriod: 10_000})
				rel := &metrics.Reliability{}
				return Hooks{
					Estimators: []core.Estimator{paco},
					Probe: func(_ int, onGood bool) {
						rel.Add(paco.GoodpathProb(), onGood)
					},
					Collect: func(res *Result, _ *cpu.Core, _ int) {
						res.SetExtra("rms_error", rel.RMSError())
						if rms != nil {
							rms[i] = rel.RMSError()
						}
					},
				}
			},
		}
	}
	return jobs
}

// TestDeterminismAcrossWorkers is the engine's core guarantee: the same
// campaign produces identical results (down to the serialized bytes) at
// -j 1 and -j 8.
func TestDeterminismAcrossWorkers(t *testing.T) {
	runAt := func(workers int) ([]Result, []byte) {
		results, err := Run(context.Background(), workers, simJobs(nil))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		if err := WriteJSON(&buf, results); err != nil {
			t.Fatal(err)
		}
		return results, buf.Bytes()
	}
	serial, serialJSON := runAt(1)
	parallel, parallelJSON := runAt(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("results differ across worker counts:\n-j1: %+v\n-j8: %+v", serial, parallel)
	}
	if !bytes.Equal(serialJSON, parallelJSON) {
		t.Fatal("serialized results differ across worker counts")
	}
	for i, r := range serial {
		if r.IPC <= 0 || r.Cycles == 0 || r.Stats.RetiredGood == 0 {
			t.Fatalf("job %d: empty measurement %+v", i, r)
		}
		if r.Extra["rms_error"] <= 0 {
			t.Fatalf("job %d: Collect hook did not run", i)
		}
	}
	if Summarize(serial) != Summarize(parallel) {
		t.Fatal("summaries differ across worker counts")
	}
}

// TestSeedOverride: a job seed changes the instruction stream; equal
// seeds reproduce it.
func TestSeedOverride(t *testing.T) {
	job := func(seed uint64) Job {
		return Job{ID: "gzip", Benchmark: "gzip", Instructions: 15_000, Warmup: 5_000, Seed: seed}
	}
	run1, err := Run(context.Background(), 1, []Job{job(0), job(12345), job(12345)})
	if err != nil {
		t.Fatal(err)
	}
	if run1[1].Stats != run1[2].Stats {
		t.Fatal("equal seeds produced different runs")
	}
	if run1[0].Stats == run1[1].Stats {
		t.Fatal("seed override had no effect")
	}
	if run1[1].Seed != 12345 {
		t.Fatalf("result seed = %d", run1[1].Seed)
	}
}

// TestPanicRecovery: a panicking job fails alone; its neighbors complete
// and Run reports the failure.
func TestPanicRecovery(t *testing.T) {
	jobs := simJobs(nil)[:2]
	jobs = append(jobs, Job{
		ID: "boom",
		Exec: func(context.Context) (*Result, error) {
			panic("kaboom")
		},
	})
	results, err := Run(context.Background(), 4, jobs)
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v, want panic surfaced", err)
	}
	if !strings.Contains(results[2].Err, "panic: kaboom") {
		t.Fatalf("panic result = %+v", results[2])
	}
	for i := 0; i < 2; i++ {
		if results[i].Failed() || results[i].IPC <= 0 {
			t.Fatalf("healthy job %d disturbed: %+v", i, results[i])
		}
	}
}

// TestJobError: a plain error is recorded and surfaced, pointing at the
// failing job.
func TestJobError(t *testing.T) {
	jobs := []Job{
		{ID: "ok", Benchmark: "gzip", Instructions: 10_000, Warmup: 2_000},
		{ID: "bad", Benchmark: "no-such-benchmark", Instructions: 10_000},
	}
	results, err := Run(context.Background(), 2, jobs)
	if err == nil || !strings.Contains(err.Error(), "bad") {
		t.Fatalf("err = %v", err)
	}
	if results[0].Failed() || !results[1].Failed() {
		t.Fatalf("results = %+v", results)
	}
}

// TestCancellation: cancelling mid-campaign stops unstarted jobs,
// surfaces ctx.Err(), and settles every job exactly once.
func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n = 24
	jobs := make([]Job, n)
	for i := range jobs {
		i := i
		jobs[i] = Job{
			ID: "job",
			Exec: func(context.Context) (*Result, error) {
				if i == 0 {
					cancel() // first job cancels the campaign
				}
				return &Result{IPC: 1}, nil
			},
		}
	}
	var settled atomic.Int64
	r := Runner{Workers: 1, OnProgress: func(done, total int, res *Result) {
		settled.Add(1)
		if total != n {
			t.Errorf("total = %d", total)
		}
	}}
	results, err := r.Run(ctx, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := settled.Load(); got != n {
		t.Fatalf("progress callbacks = %d, want %d", got, n)
	}
	var skippedCount int
	for _, res := range results {
		if res.Skipped {
			skippedCount++
		}
	}
	if skippedCount == 0 {
		t.Fatal("no jobs were skipped after cancellation")
	}
	if results[0].Skipped {
		t.Fatal("first job should have run")
	}
}

// TestProgress: callbacks are serialized and complete.
func TestProgress(t *testing.T) {
	var calls int
	var lastDone int
	r := Runner{Workers: 4, OnProgress: func(done, total int, res *Result) {
		calls++ // serialized by the runner; no lock needed
		lastDone = done
	}}
	jobs := simJobs(nil)
	if _, err := r.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	if calls != len(jobs) || lastDone != len(jobs) {
		t.Fatalf("calls = %d, lastDone = %d", calls, lastDone)
	}
}

// TestMergeAndSerialize: shards merge back into job order, and results
// survive a JSON round trip.
func TestMergeAndSerialize(t *testing.T) {
	results, err := Run(context.Background(), 2, simJobs(nil))
	if err != nil {
		t.Fatal(err)
	}
	merged := Merge(results[2:], results[:2])
	if !reflect.DeepEqual(merged, results) {
		t.Fatal("merge did not restore job order")
	}

	var buf bytes.Buffer
	if err := WriteJSON(&buf, results); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, results) {
		t.Fatal("JSON round trip lost data")
	}

	var csvBuf bytes.Buffer
	if err := WriteCSV(&csvBuf, results); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != len(results)+1 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], "rms_error") {
		t.Fatalf("csv header missing extra column: %s", lines[0])
	}
}

// TestCustomSpec: explicit specs are copied per job, so one spec can
// back many jobs concurrently.
func TestCustomSpec(t *testing.T) {
	spec, err := workload.NewBenchmark("gzip")
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]Job, 4)
	for i := range jobs {
		jobs[i] = Job{ID: "shared", Spec: spec, Instructions: 10_000, Warmup: 2_000}
	}
	results, err := Run(context.Background(), 4, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(results); i++ {
		if results[i].Stats != results[0].Stats {
			t.Fatalf("shared-spec jobs diverged at %d", i)
		}
	}
}
