package campaign

import (
	"bytes"
	"context"
	"fmt"
	"testing"
)

func shardTestGrid(t *testing.T) Grid {
	t.Helper()
	g := Grid{
		Benchmarks:   []string{"gzip", "twolf"},
		Instructions: 8_000,
		Warmup:       2_000,
		Refresh:      []uint64{20_000},
		Widths:       []int{2, 4},
		ProbGates:    []float64{0.2},
	}
	n, err := g.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestRangesPartition(t *testing.T) {
	for _, tc := range []struct{ size, n int }{
		{1, 1}, {4, 1}, {4, 4}, {4, 7}, {10, 3}, {11, 4}, {4096, 16},
	} {
		ranges := Ranges(tc.size, tc.n)
		want := tc.n
		if want > tc.size {
			want = tc.size
		}
		if len(ranges) != want {
			t.Fatalf("Ranges(%d,%d) gave %d ranges, want %d", tc.size, tc.n, len(ranges), want)
		}
		lo := 0
		for i, r := range ranges {
			if r[0] != lo || r[1] <= r[0] {
				t.Fatalf("Ranges(%d,%d)[%d] = %v, want contiguous nonempty from %d", tc.size, tc.n, i, r, lo)
			}
			if w := r[1] - r[0]; w > ranges[0][1]-ranges[0][0] || ranges[0][1]-ranges[0][0]-w > 1 {
				t.Fatalf("Ranges(%d,%d) unbalanced: %v", tc.size, tc.n, ranges)
			}
			lo = r[1]
		}
		if lo != tc.size {
			t.Fatalf("Ranges(%d,%d) covers [0,%d), want [0,%d)", tc.size, tc.n, lo, tc.size)
		}
	}
	if Ranges(0, 3) != nil || Ranges(3, 0) != nil {
		t.Fatal("degenerate Ranges should be nil")
	}
}

// TestShardIDsStable: equal sweeps shard to equal content-addressed IDs
// regardless of how the grid was spelled, different shards and different
// sweeps get different IDs, and the IDs survive re-deriving the plan.
func TestShardIDsStable(t *testing.T) {
	g := shardTestGrid(t)
	shards, err := g.Shards(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 3 {
		t.Fatalf("got %d shards, want 3", len(shards))
	}

	// Same sweep, different spelling: normalization makes the IDs agree.
	alt, err := Grid{
		Widths:       []int{2, 4},
		ProbGates:    []float64{0.2},
		Refresh:      []uint64{20_000},
		Warmup:       2_000,
		Instructions: 8_000,
		Benchmarks:   []string{"gzip", "twolf"},
	}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	altShards, err := alt.Shards(3)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i := range shards {
		if shards[i].ID() != altShards[i].ID() {
			t.Fatalf("shard %d: equivalent grids gave IDs %s vs %s", i, shards[i].ID(), altShards[i].ID())
		}
		if seen[shards[i].ID()] {
			t.Fatalf("duplicate shard ID %s", shards[i].ID())
		}
		seen[shards[i].ID()] = true
	}

	// A different sweep must not collide.
	other := shardTestGrid(t)
	other.Instructions = 9_000
	otherShards, err := other.Shards(3)
	if err != nil {
		t.Fatal(err)
	}
	if seen[otherShards[0].ID()] {
		t.Fatal("distinct grids collided on a shard ID")
	}
	// A different plan over the same grid is different work.
	two, err := g.Shards(2)
	if err != nil {
		t.Fatal(err)
	}
	if two[0].ID() == shards[0].ID() {
		t.Fatal("shard 0 of a 2-plan collided with shard 0 of a 3-plan")
	}
}

func TestShardsErrors(t *testing.T) {
	g := shardTestGrid(t)
	if _, err := g.Shards(0); err == nil {
		t.Fatal("Shards(0) should error")
	}
	if _, err := (Grid{}).Shards(2); err == nil {
		t.Fatal("sharding an empty grid should error")
	}
	// More shards than cells trims rather than erroring.
	shards, err := g.Shards(1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != g.Size() {
		t.Fatalf("oversharded plan has %d shards, want %d (one per cell)", len(shards), g.Size())
	}
}

// TestShardRunMergeByteIdentical is the core distributed-determinism
// property at the campaign layer: running the shards of any plan — in
// any order, at any worker count — and merging reproduces the unsplit
// run's JSON and CSV byte for byte.
func TestShardRunMergeByteIdentical(t *testing.T) {
	g := shardTestGrid(t)
	whole, err := Run(context.Background(), 2, g.Jobs())
	if err != nil {
		t.Fatal(err)
	}
	var wantJSON, wantCSV bytes.Buffer
	if err := WriteJSON(&wantJSON, whole); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&wantCSV, whole); err != nil {
		t.Fatal(err)
	}

	for _, n := range []int{1, 2, 3, 5, g.Size()} {
		shards, err := g.Shards(n)
		if err != nil {
			t.Fatal(err)
		}
		// Run the plan back to front to prove merge order, not execution
		// order, decides the output.
		pieces := make([][]Result, len(shards))
		for i := len(shards) - 1; i >= 0; i-- {
			workers := 1 + i%3
			pieces[i], err = shards[i].Run(context.Background(), workers)
			if err != nil {
				t.Fatalf("shard %d: %v", i, err)
			}
		}
		merged := Merge(pieces...)
		var gotJSON, gotCSV bytes.Buffer
		if err := WriteJSON(&gotJSON, merged); err != nil {
			t.Fatal(err)
		}
		if err := WriteCSV(&gotCSV, merged); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotJSON.Bytes(), wantJSON.Bytes()) {
			t.Fatalf("%d-shard merged JSON differs from the unsplit run", n)
		}
		if !bytes.Equal(gotCSV.Bytes(), wantCSV.Bytes()) {
			t.Fatalf("%d-shard merged CSV differs from the unsplit run", n)
		}
	}
}

func TestFirstError(t *testing.T) {
	if err := FirstError([]Result{{JobID: "a"}, {JobID: "b"}}); err != nil {
		t.Fatalf("clean results: %v", err)
	}
	err := FirstError([]Result{
		{Index: 0, JobID: "a"},
		{Index: 1, JobID: "bad", Err: "boom"},
		{Index: 2, JobID: "worse", Err: "later"},
	})
	if err == nil {
		t.Fatal("want an error for a failed cell")
	}
	want := fmt.Sprintf("campaign: job %d (%s): %s", 1, "bad", "boom")
	if err.Error() != want {
		t.Fatalf("FirstError = %q, want %q", err, want)
	}
}
