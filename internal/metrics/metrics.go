// Package metrics implements the measurement machinery of the paper's
// evaluation: reliability diagrams for probabilistic forecast systems
// (Murphy & Winkler; paper Section 4.3), the RMS error between predicted
// and observed probabilities, and the harmonic mean of weighted IPCs
// (HMWIPC) used for SMT fetch prioritization.
package metrics

import (
	"fmt"
	"math"
	"strings"
)

// ReliabilityBins is the number of predicted-probability bins: one per
// percentage point, matching the paper's diagrams.
const ReliabilityBins = 101

// Reliability accumulates (predicted probability, observed outcome) pairs
// into per-percent bins. For each bin it tracks how often the processor was
// actually on the goodpath — the observed probability the diagrams plot
// against the predicted one.
type Reliability struct {
	count [ReliabilityBins]uint64
	good  [ReliabilityBins]uint64
}

// Add records one instance: a predicted goodpath probability in [0, 1] and
// the goodpath oracle at that instant.
func (r *Reliability) Add(predicted float64, goodpath bool) {
	bin := int(math.Round(predicted * 100))
	if bin < 0 {
		bin = 0
	}
	if bin >= ReliabilityBins {
		bin = ReliabilityBins - 1
	}
	r.count[bin]++
	if goodpath {
		r.good[bin]++
	}
}

// Merge adds another diagram's instances into r.
func (r *Reliability) Merge(o *Reliability) {
	for i := range r.count {
		r.count[i] += o.count[i]
		r.good[i] += o.good[i]
	}
}

// Instances returns the total number of recorded instances.
func (r *Reliability) Instances() uint64 {
	var n uint64
	for _, c := range r.count {
		n += c
	}
	return n
}

// Point is one populated bin of a reliability diagram.
type Point struct {
	// Predicted is the bin's predicted goodpath probability in percent.
	Predicted int
	// Observed is the measured goodpath probability of the bin's
	// instances, in percent.
	Observed float64
	// Count is the bin occupancy (the diagram's histogram).
	Count uint64
}

// Points returns all populated bins in predicted order.
func (r *Reliability) Points() []Point {
	var pts []Point
	for i, c := range r.count {
		if c == 0 {
			continue
		}
		pts = append(pts, Point{
			Predicted: i,
			Observed:  100 * float64(r.good[i]) / float64(c),
			Count:     c,
		})
	}
	return pts
}

// RMSError returns the occupancy-weighted RMS error between predicted and
// observed probabilities, on the 0..1 scale the paper's Table 7 uses
// (e.g. 0.0377 for the mean).
func (r *Reliability) RMSError() float64 {
	var sum float64
	var n uint64
	for i, c := range r.count {
		if c == 0 {
			continue
		}
		pred := float64(i) / 100
		obs := float64(r.good[i]) / float64(c)
		d := pred - obs
		sum += float64(c) * d * d
		n += c
	}
	if n == 0 {
		return 0
	}
	return math.Sqrt(sum / float64(n))
}

// Resolution returns the resolution term of the Murphy decomposition of
// the Brier score: the occupancy-weighted variance of each bin's
// observed goodpath frequency around the overall base rate, on the 0..1
// probability scale (returned as its square root, an RMS spread, so it
// reads on the same scale as RMSError). Calibration alone (RMSError)
// rewards a constant predictor that always answers the base rate;
// resolution is the complementary axis — how much the predictor's
// distinct answers actually separate outcomes — and a constant predictor
// scores exactly zero.
func (r *Reliability) Resolution() float64 {
	var n, good uint64
	for i := range r.count {
		n += r.count[i]
		good += r.good[i]
	}
	if n == 0 {
		return 0
	}
	base := float64(good) / float64(n)
	var sum float64
	for i, c := range r.count {
		if c == 0 {
			continue
		}
		obs := float64(r.good[i]) / float64(c)
		d := obs - base
		sum += float64(c) * d * d
	}
	return math.Sqrt(sum / float64(n))
}

// ObservedAt returns the observed goodpath probability (0..1) of the bin
// at the given predicted percent, and the bin occupancy.
func (r *Reliability) ObservedAt(predictedPercent int) (float64, uint64) {
	if predictedPercent < 0 || predictedPercent >= ReliabilityBins {
		return 0, 0
	}
	c := r.count[predictedPercent]
	if c == 0 {
		return 0, 0
	}
	return float64(r.good[predictedPercent]) / float64(c), c
}

// HMWIPC returns the harmonic mean of weighted IPCs (Equation 6):
// N / sum(SingleIPC_i / IPC_i). singleIPC and smtIPC must be parallel,
// non-empty, positive slices.
func HMWIPC(singleIPC, smtIPC []float64) float64 {
	if len(singleIPC) != len(smtIPC) || len(singleIPC) == 0 {
		panic("metrics: HMWIPC needs parallel non-empty slices")
	}
	var denom float64
	for i := range singleIPC {
		if smtIPC[i] <= 0 {
			return 0
		}
		denom += singleIPC[i] / smtIPC[i]
	}
	return float64(len(singleIPC)) / denom
}

// Table renders rows of columns as an aligned text table with a header.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable starts a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// Row appends a row; values are formatted with %v, floats with 4 decimals.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.header, ","))
	b.WriteByte('\n')
	for _, r := range t.rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}
