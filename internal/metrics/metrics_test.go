package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"paco/internal/rng"
)

func TestReliabilityPerfectPredictor(t *testing.T) {
	var rel Reliability
	r := rng.New(5)
	for i := 0; i < 200000; i++ {
		p := float64(r.Intn(101)) / 100
		rel.Add(p, r.Bool(p))
	}
	if rms := rel.RMSError(); rms > 0.02 {
		t.Fatalf("perfect predictor RMS %.4f", rms)
	}
}

func TestReliabilityBiasedPredictor(t *testing.T) {
	var rel Reliability
	r := rng.New(6)
	// Predictor claims 0.9 but truth is 0.6: RMS should approach 0.3.
	for i := 0; i < 100000; i++ {
		rel.Add(0.9, r.Bool(0.6))
	}
	if rms := rel.RMSError(); math.Abs(rms-0.3) > 0.02 {
		t.Fatalf("biased predictor RMS %.4f, want ~0.3", rms)
	}
}

func TestReliabilityBinsAndClamps(t *testing.T) {
	var rel Reliability
	rel.Add(-0.5, true)
	rel.Add(1.7, false)
	rel.Add(0.254, true)
	if rel.Instances() != 3 {
		t.Fatalf("instances = %d", rel.Instances())
	}
	if obs, n := rel.ObservedAt(0); n != 1 || obs != 1 {
		t.Fatalf("clamped-low bin: %v,%d", obs, n)
	}
	if _, n := rel.ObservedAt(100); n != 1 {
		t.Fatal("clamped-high bin missing")
	}
	if _, n := rel.ObservedAt(25); n != 1 {
		t.Fatal("0.254 should round to bin 25")
	}
	if _, n := rel.ObservedAt(-1); n != 0 {
		t.Fatal("out-of-range query must be empty")
	}
}

func TestReliabilityMerge(t *testing.T) {
	var a, b Reliability
	a.Add(0.5, true)
	b.Add(0.5, false)
	a.Merge(&b)
	obs, n := a.ObservedAt(50)
	if n != 2 || obs != 0.5 {
		t.Fatalf("merged bin: %v,%d", obs, n)
	}
}

func TestReliabilityPoints(t *testing.T) {
	var rel Reliability
	rel.Add(0.10, true)
	rel.Add(0.10, false)
	rel.Add(0.90, true)
	pts := rel.Points()
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Predicted != 10 || pts[0].Observed != 50 || pts[0].Count != 2 {
		t.Fatalf("point 0 = %+v", pts[0])
	}
	if pts[1].Predicted != 90 || pts[1].Observed != 100 {
		t.Fatalf("point 1 = %+v", pts[1])
	}
}

// TestRMSErrorBounds: RMS is always within [0, 1].
func TestRMSErrorBounds(t *testing.T) {
	if err := quick.Check(func(seeds []uint16) bool {
		var rel Reliability
		for _, s := range seeds {
			rel.Add(float64(s%101)/100, s%3 == 0)
		}
		rms := rel.RMSError()
		return rms >= 0 && rms <= 1
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHMWIPC(t *testing.T) {
	// Both threads at half their solo IPC: HMWIPC = 0.5.
	got := HMWIPC([]float64{2, 1}, []float64{1, 0.5})
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("HMWIPC = %v, want 0.5", got)
	}
	// Zero SMT IPC degrades to 0.
	if HMWIPC([]float64{1, 1}, []float64{1, 0}) != 0 {
		t.Fatal("zero thread IPC must give 0")
	}
}

func TestHMWIPCBalancesFairness(t *testing.T) {
	// Unfair allocation (one thread starved) must score below a fair one
	// with the same total throughput.
	fair := HMWIPC([]float64{1, 1}, []float64{0.5, 0.5})
	unfair := HMWIPC([]float64{1, 1}, []float64{0.9, 0.1})
	if unfair >= fair {
		t.Fatalf("unfair %.3f >= fair %.3f", unfair, fair)
	}
}

func TestHMWIPCPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched slices did not panic")
		}
	}()
	HMWIPC([]float64{1}, []float64{1, 2})
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.Row("alpha", 1.5)
	tb.Row("b", "x")
	s := tb.String()
	if !strings.Contains(s, "alpha") || !strings.Contains(s, "1.5000") {
		t.Fatalf("table output:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 { // header, rule, two rows
		t.Fatalf("table has %d lines", len(lines))
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "name,value\n") || !strings.Contains(csv, "alpha,1.5000") {
		t.Fatalf("csv output:\n%s", csv)
	}
}
