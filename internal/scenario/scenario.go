// Package scenario is the declarative workload layer: a serializable,
// versioned description of a synthetic workload that compiles down to a
// workload.Spec. Scenarios grow the workload space the way the campaign
// grid grew the configuration space — a named family plus parameters, a
// registered SPEC model, or either of those reshaped by composition
// operators, all expressible as a small JSON document instead of a code
// change.
//
// A scenario is pure data with a fully deterministic compilation:
// Normalized fills every default (so equivalent spellings canonicalize to
// identical JSON, which is what paco-serve's content-addressed cache
// hashes), and Compile turns the normalized form into a workload.Spec
// whose instruction stream depends only on the scenario bytes. The
// package also ships a seeded fuzzer (fuzz.go) that samples valid
// scenarios from each family's declared parameter ranges, for randomized
// campaign sweeps that remain exactly reproducible.
package scenario

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"

	"paco/internal/workload"
)

// FormatVersion is the current scenario format version; Normalized
// stamps it and rejects documents from a newer format.
const FormatVersion = 1

// Scenario is one declarative workload description. Exactly one of
// Family (a named workload family, see Families) or Base (a registered
// benchmark model, e.g. "gzip") selects the starting spec; Ops then
// reshape it in order.
type Scenario struct {
	// Version is the format version; zero means current (Normalized
	// stamps FormatVersion).
	Version int `json:"version,omitempty"`

	// Name labels the compiled workload (job IDs, tables). Defaults to
	// the family or base name.
	Name string `json:"name,omitempty"`

	// Seed makes the compiled workload deterministic. Zero selects a
	// stable per-name default (spelled out by Normalized so the
	// canonical form is explicit).
	Seed uint64 `json:"seed,omitempty"`

	// Family names a workload family; Params sets its parameters
	// (unset parameters take the family defaults).
	Family string             `json:"family,omitempty"`
	Params map[string]float64 `json:"params,omitempty"`

	// Base names a registered benchmark model to start from instead of
	// a family.
	Base string `json:"base,omitempty"`

	// Ops are applied to the compiled base in order.
	Ops []Op `json:"ops,omitempty"`
}

// Op is one composition operator. Exactly one field is set.
type Op struct {
	// Mix blends the branch population of every phase with another
	// workload's phase-0 population.
	Mix *MixOp `json:"mix,omitempty"`
	// Splice appends another workload's phase schedule.
	Splice *SpliceOp `json:"splice,omitempty"`
	// PhaseMorph re-times the phase schedule.
	PhaseMorph *PhaseMorphOp `json:"phase_morph,omitempty"`
	// Override sets structural spec fields directly.
	Override *OverrideOp `json:"override,omitempty"`
}

// MixOp blends branch mixes: weights and class parameters of every phase
// move Alpha of the way toward the referenced workload's first phase.
type MixOp struct {
	With  Ref     `json:"with"`
	Alpha float64 `json:"alpha"` // in (0, 1]
}

// SpliceOp appends the referenced workload's phases to the schedule.
// Instructions, when nonzero, overrides each appended phase's budget;
// otherwise effectively-unbounded single-phase budgets (the SPEC models'
// 1<<62) are clamped to SpliceDefaultInstructions so the schedule keeps
// cycling.
type SpliceOp struct {
	With         Ref    `json:"with"`
	Instructions uint64 `json:"instructions,omitempty"`
}

// SpliceDefaultInstructions is the per-phase budget given to spliced-in
// phases whose source budget is effectively unbounded.
const SpliceDefaultInstructions = 200_000

// spliceClampThreshold: phase budgets at or above this are treated as
// "runs forever" and clamped on splice.
const spliceClampThreshold = 1 << 40

// PhaseMorphOp sets every phase's instruction budget to Period — the
// phase-thrash knob: a period shorter than PaCo's MRT refresh makes the
// bucket rates move faster than the estimator re-learns them.
type PhaseMorphOp struct {
	Period uint64 `json:"period"`
}

// OverrideOp sets structural spec fields; nil fields keep the compiled
// value.
type OverrideOp struct {
	BlocksPerPhase  *int     `json:"blocks_per_phase,omitempty"`
	AvgBlockLen     *int     `json:"avg_block_len,omitempty"`
	LoadFrac        *float64 `json:"load_frac,omitempty"`
	StoreFrac       *float64 `json:"store_frac,omitempty"`
	LongLatFrac     *float64 `json:"long_lat_frac,omitempty"`
	DepGeoP         *float64 `json:"dep_geo_p,omitempty"`
	WorkingSetKB    *int     `json:"working_set_kb,omitempty"`
	RandomAddrFrac  *float64 `json:"random_addr_frac,omitempty"`
	CallFrac        *float64 `json:"call_frac,omitempty"`
	ReturnFrac      *float64 `json:"return_frac,omitempty"`
	IndirectFrac    *float64 `json:"indirect_frac,omitempty"`
	IndirectTargets *int     `json:"indirect_targets,omitempty"`
	StormEnter      *float64 `json:"storm_enter,omitempty"`
	StormExit       *float64 `json:"storm_exit,omitempty"`
	StormFlip       *float64 `json:"storm_flip,omitempty"`
}

// Ref names another workload inside an operator: a registered benchmark,
// a family (with optional parameters), or a full nested scenario
// (nesting is bounded by maxRefDepth).
type Ref struct {
	Benchmark string             `json:"benchmark,omitempty"`
	Family    string             `json:"family,omitempty"`
	Params    map[string]float64 `json:"params,omitempty"`
	Scenario  *Scenario          `json:"scenario,omitempty"`
}

// maxRefDepth bounds scenario nesting through operator Refs, so a
// fuzzed or hostile document cannot recurse unboundedly.
const maxRefDepth = 4

// paramSuffix returns the default-name suffix for a family scenario:
// empty at the family defaults, otherwise a stable hash of the
// normalized parameter map (json.Marshal sorts keys, so equivalent
// documents derive equal names).
func paramSuffix(family string, params map[string]float64) string {
	fam, ok := familyByName(family)
	if !ok {
		return ""
	}
	atDefaults := true
	for _, d := range fam.Params {
		if params[d.Name] != d.Default {
			atDefaults = false
			break
		}
	}
	if atDefaults {
		return ""
	}
	data, err := json.Marshal(params)
	if err != nil {
		return ""
	}
	h := fnv.New32a()
	h.Write(data)
	return fmt.Sprintf("%08x", h.Sum32())
}

// defaultSeed derives the stable seed Normalized spells out when the
// document leaves Seed unset: a hash of the scenario name, so distinct
// scenarios get distinct streams but the same document always gets the
// same one.
func defaultSeed(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte("scenario:" + name))
	s := h.Sum64()
	if s == 0 {
		s = 1
	}
	return s
}

// Normalized validates the scenario and fills every default, returning
// the canonical form: two documents that describe the same workload
// normalize to equal values and therefore to identical canonical JSON —
// the property the server's content-addressed cache key rests on.
// Normalization is idempotent.
func (sc Scenario) Normalized() (Scenario, error) {
	return sc.normalized(0)
}

func (sc Scenario) normalized(depth int) (Scenario, error) {
	if depth > maxRefDepth {
		return Scenario{}, fmt.Errorf("scenario: nesting deeper than %d", maxRefDepth)
	}
	out := sc
	if out.Version == 0 {
		out.Version = FormatVersion
	}
	if out.Version != FormatVersion {
		return Scenario{}, fmt.Errorf("scenario: unsupported format version %d (current %d)", out.Version, FormatVersion)
	}
	switch {
	case out.Family != "" && out.Base != "":
		return Scenario{}, fmt.Errorf("scenario: family %q and base %q are mutually exclusive", out.Family, out.Base)
	case out.Family != "":
		fam, ok := familyByName(out.Family)
		if !ok {
			return Scenario{}, fmt.Errorf("scenario: unknown family %q (have %v)", out.Family, FamilyNames())
		}
		p, err := fam.normalizedParams(out.Params)
		if err != nil {
			return Scenario{}, err
		}
		out.Params = p
	case out.Base != "":
		if len(out.Params) != 0 {
			return Scenario{}, fmt.Errorf("scenario: params apply to families, not base %q", out.Base)
		}
		base, err := workload.NewBenchmark(out.Base)
		if err != nil {
			return Scenario{}, err
		}
		// A base scenario keeps the benchmark's curated seed unless the
		// document overrides it, so {"base":"gzip"} runs the exact
		// instruction stream the gzip model is calibrated on.
		if out.Seed == 0 {
			out.Seed = base.Seed
		}
	default:
		return Scenario{}, fmt.Errorf("scenario: one of family or base is required")
	}
	if out.Name == "" {
		out.Name = out.Family + out.Base // exactly one is nonempty
		// A family at non-default parameters gets a deterministic suffix
		// derived from the parameter values, so a parameter sweep —
		// several unnamed documents of one family — needs no hand-invented
		// names to keep grid cell names distinct.
		if out.Family != "" {
			if sfx := paramSuffix(out.Family, out.Params); sfx != "" {
				out.Name += "-" + sfx
			}
		}
	}
	if out.Seed == 0 {
		out.Seed = defaultSeed(out.Name)
	}
	if len(out.Ops) > 0 {
		// Deep-copy the operator list (ops hold pointers — nested
		// scenarios, override fields) so the normalized scenario shares
		// no mutable state with the caller's document.
		data, err := json.Marshal(out.Ops)
		if err != nil {
			return Scenario{}, fmt.Errorf("scenario %s: %w", out.Name, err)
		}
		var ops []Op
		if err := json.Unmarshal(data, &ops); err != nil {
			return Scenario{}, fmt.Errorf("scenario %s: %w", out.Name, err)
		}
		for i := range ops {
			n, err := ops[i].normalized(depth)
			if err != nil {
				return Scenario{}, fmt.Errorf("scenario %s: op %d: %w", out.Name, i, err)
			}
			ops[i] = n
		}
		out.Ops = ops
	}
	return out, nil
}

func (op Op) normalized(depth int) (Op, error) {
	set := 0
	if op.Mix != nil {
		set++
	}
	if op.Splice != nil {
		set++
	}
	if op.PhaseMorph != nil {
		set++
	}
	if op.Override != nil {
		set++
	}
	if set != 1 {
		return Op{}, fmt.Errorf("exactly one operator field required, have %d", set)
	}
	// The caller deep-copied the op list, so normalization may update the
	// operator structs in place.
	switch {
	case op.Mix != nil:
		if op.Mix.Alpha <= 0 || op.Mix.Alpha > 1 {
			return Op{}, fmt.Errorf("mix alpha %g outside (0, 1]", op.Mix.Alpha)
		}
		with, err := op.Mix.With.normalized(depth + 1)
		if err != nil {
			return Op{}, err
		}
		op.Mix.With = with
	case op.Splice != nil:
		with, err := op.Splice.With.normalized(depth + 1)
		if err != nil {
			return Op{}, err
		}
		op.Splice.With = with
	case op.PhaseMorph != nil:
		if op.PhaseMorph.Period == 0 {
			return Op{}, fmt.Errorf("phase_morph period must be positive")
		}
	case op.Override != nil:
		// Structural overrides are validated by Spec.Validate at compile
		// time; nothing to fill here.
	}
	return op, nil
}

func (r Ref) normalized(depth int) (Ref, error) {
	set := 0
	if r.Benchmark != "" {
		set++
	}
	if r.Family != "" {
		set++
	}
	if r.Scenario != nil {
		set++
	}
	if set != 1 {
		return Ref{}, fmt.Errorf("ref needs exactly one of benchmark, family, or scenario, have %d", set)
	}
	switch {
	case r.Benchmark != "":
		if len(r.Params) != 0 {
			return Ref{}, fmt.Errorf("ref params apply to families, not benchmark %q", r.Benchmark)
		}
		if _, err := workload.NewBenchmark(r.Benchmark); err != nil {
			return Ref{}, err
		}
	case r.Family != "":
		fam, ok := familyByName(r.Family)
		if !ok {
			return Ref{}, fmt.Errorf("unknown family %q (have %v)", r.Family, FamilyNames())
		}
		p, err := fam.normalizedParams(r.Params)
		if err != nil {
			return Ref{}, err
		}
		r.Params = p
	case r.Scenario != nil:
		if len(r.Params) != 0 {
			return Ref{}, fmt.Errorf("ref params apply to families, not nested scenarios")
		}
		n, err := r.Scenario.normalized(depth)
		if err != nil {
			return Ref{}, err
		}
		r.Scenario = &n
	}
	return r, nil
}

// compile resolves a Ref to a spec (for operator inputs).
func (r Ref) compile(depth int) (*workload.Spec, error) {
	switch {
	case r.Benchmark != "":
		return workload.NewBenchmark(r.Benchmark)
	case r.Family != "":
		fam, ok := familyByName(r.Family)
		if !ok {
			return nil, fmt.Errorf("scenario: unknown family %q", r.Family)
		}
		p, err := fam.normalizedParams(r.Params)
		if err != nil {
			return nil, err
		}
		return fam.build(p, defaultSeed(r.Family)), nil
	case r.Scenario != nil:
		return r.Scenario.compile(depth)
	}
	return nil, fmt.Errorf("scenario: empty ref")
}

// Compile normalizes the scenario and builds its workload.Spec. The
// result is a pure function of the scenario document: equal documents
// compile to specs that generate byte-identical instruction streams.
func (sc Scenario) Compile() (*workload.Spec, error) {
	return sc.compile(0)
}

func (sc Scenario) compile(depth int) (*workload.Spec, error) {
	n, err := sc.normalized(depth)
	if err != nil {
		return nil, err
	}
	var spec *workload.Spec
	if n.Family != "" {
		fam, _ := familyByName(n.Family)
		spec = fam.build(n.Params, n.Seed)
	} else {
		spec, err = workload.NewBenchmark(n.Base)
		if err != nil {
			return nil, err
		}
	}
	spec.Name = n.Name
	spec.Seed = n.Seed
	for i, op := range n.Ops {
		if err := op.apply(spec, depth); err != nil {
			return nil, fmt.Errorf("scenario %s: op %d: %w", n.Name, i, err)
		}
	}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("scenario %s: compiled spec invalid: %w", n.Name, err)
	}
	return spec, nil
}

func (op Op) apply(spec *workload.Spec, depth int) error {
	switch {
	case op.Mix != nil:
		other, err := op.Mix.With.compile(depth + 1)
		if err != nil {
			return err
		}
		for i := range spec.Phases {
			spec.Phases[i].Mix = blendMix(spec.Phases[i].Mix, other.Phases[0].Mix, op.Mix.Alpha)
		}
	case op.Splice != nil:
		other, err := op.Splice.With.compile(depth + 1)
		if err != nil {
			return err
		}
		for _, ph := range other.Phases {
			budget := ph.Instructions
			if op.Splice.Instructions > 0 {
				budget = op.Splice.Instructions
			} else if budget >= spliceClampThreshold {
				budget = SpliceDefaultInstructions
			}
			spec.Phases = append(spec.Phases, workload.Phase{Instructions: budget, Mix: ph.Mix})
		}
		// The host's own unbounded phase would starve the spliced ones.
		for i := range spec.Phases {
			if spec.Phases[i].Instructions >= spliceClampThreshold {
				spec.Phases[i].Instructions = SpliceDefaultInstructions
			}
		}
	case op.PhaseMorph != nil:
		for i := range spec.Phases {
			spec.Phases[i].Instructions = op.PhaseMorph.Period
		}
	case op.Override != nil:
		op.Override.apply(spec)
	}
	return nil
}

func (o *OverrideOp) apply(spec *workload.Spec) {
	setInt := func(dst *int, src *int) {
		if src != nil {
			*dst = *src
		}
	}
	setF := func(dst *float64, src *float64) {
		if src != nil {
			*dst = *src
		}
	}
	setInt(&spec.BlocksPerPhase, o.BlocksPerPhase)
	setInt(&spec.AvgBlockLen, o.AvgBlockLen)
	setF(&spec.LoadFrac, o.LoadFrac)
	setF(&spec.StoreFrac, o.StoreFrac)
	setF(&spec.LongLatFrac, o.LongLatFrac)
	setF(&spec.DepGeoP, o.DepGeoP)
	setInt(&spec.WorkingSetKB, o.WorkingSetKB)
	setF(&spec.RandomAddrFrac, o.RandomAddrFrac)
	setF(&spec.CallFrac, o.CallFrac)
	setF(&spec.ReturnFrac, o.ReturnFrac)
	setF(&spec.IndirectFrac, o.IndirectFrac)
	setInt(&spec.IndirectTargets, o.IndirectTargets)
	setF(&spec.StormEnter, o.StormEnter)
	setF(&spec.StormExit, o.StormExit)
	setF(&spec.StormFlip, o.StormFlip)
}

// blendMix moves mix a a fraction alpha of the way toward mix b: class
// weights blend on normalized scales (so differently scaled mixes blend
// by share, not raw magnitude) and class parameters blend linearly after
// default-filling, matching how the branch generators default them.
func blendMix(a, b workload.BranchMix, alpha float64) workload.BranchMix {
	an, bn := normalizeMixWeights(a), normalizeMixWeights(b)
	lerp := func(x, y float64) float64 { return x + alpha*(y-x) }
	lerpI := func(x, y int) int {
		v := int(math.Round(float64(x) + alpha*float64(y-x)))
		if v < 1 {
			v = 1
		}
		return v
	}
	out := workload.BranchMix{
		Biased:        lerp(an.Biased, bn.Biased),
		Loop:          lerp(an.Loop, bn.Loop),
		Pattern:       lerp(an.Pattern, bn.Pattern),
		Correlated:    lerp(an.Correlated, bn.Correlated),
		Noisy:         lerp(an.Noisy, bn.Noisy),
		Random:        lerp(an.Random, bn.Random),
		BiasedP:       lerp(an.BiasedP, bn.BiasedP),
		LoopTripMin:   lerpI(an.LoopTripMin, bn.LoopTripMin),
		LoopTripMax:   lerpI(an.LoopTripMax, bn.LoopTripMax),
		PatternLenMin: lerpI(an.PatternLenMin, bn.PatternLenMin),
		PatternLenMax: lerpI(an.PatternLenMax, bn.PatternLenMax),
		NoisyEps:      lerp(an.NoisyEps, bn.NoisyEps),
		RandomP:       lerp(an.RandomP, bn.RandomP),
	}
	if out.LoopTripMax < out.LoopTripMin {
		out.LoopTripMax = out.LoopTripMin
	}
	if out.PatternLenMax < out.PatternLenMin {
		out.PatternLenMax = out.PatternLenMin
	}
	return out
}

// normalizeMixWeights scales class weights to sum 1 and fills parameter
// defaults (the same fallbacks workload's branch constructors use), so
// blending never mixes a real value with an unset zero.
func normalizeMixWeights(m workload.BranchMix) workload.BranchMix {
	total := m.Biased + m.Loop + m.Pattern + m.Correlated + m.Noisy + m.Random
	if total > 0 {
		m.Biased /= total
		m.Loop /= total
		m.Pattern /= total
		m.Correlated /= total
		m.Noisy /= total
		m.Random /= total
	}
	if m.BiasedP <= 0 {
		m.BiasedP = 0.98
	}
	if m.LoopTripMin <= 1 {
		m.LoopTripMin = 4
	}
	if m.LoopTripMax < m.LoopTripMin {
		m.LoopTripMax = m.LoopTripMin
	}
	if m.PatternLenMin <= 0 {
		m.PatternLenMin = 3
	}
	if m.PatternLenMax < m.PatternLenMin {
		m.PatternLenMax = 8
		if m.PatternLenMax < m.PatternLenMin {
			m.PatternLenMax = m.PatternLenMin
		}
	}
	if m.NoisyEps <= 0 {
		m.NoisyEps = 0.10
	}
	if m.RandomP <= 0 {
		m.RandomP = 0.5
	}
	return m
}

// MarshalCanonical returns the scenario's canonical bytes: the JSON of
// the normalized form. Go's encoder emits struct fields in declaration
// order and map keys sorted, so equivalent documents (field order,
// spelled-out defaults, parameter spelling) marshal identically.
func (sc Scenario) MarshalCanonical() ([]byte, error) {
	n, err := sc.Normalized()
	if err != nil {
		return nil, err
	}
	return json.Marshal(n)
}

// Hash is the scenario's canonical content hash — SHA-256 over
// MarshalCanonical — the provenance stamp paco-trace writes into trace
// headers so a recorded stream names exactly the workload that produced
// it.
func (sc Scenario) Hash() ([32]byte, error) {
	canon, err := sc.MarshalCanonical()
	if err != nil {
		return [32]byte{}, err
	}
	return sha256.Sum256(canon), nil
}
