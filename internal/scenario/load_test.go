package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseArgFamily(t *testing.T) {
	scs, err := ParseArg("loopy")
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 1 || scs[0].Family != "loopy" || scs[0].Seed == 0 {
		t.Fatalf("family arg parsed wrong: %+v", scs)
	}
	if _, err := ParseArg("nonesuch"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestParseArgFiles(t *testing.T) {
	single := writeTemp(t, "one.json", `{"family":"interpreter","params":{"targets":8}}`)
	scs, err := ParseArg(single)
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 1 || scs[0].Params["targets"] != 8 {
		t.Fatalf("single doc: %+v", scs)
	}
	array := writeTemp(t, "many.json", `[{"family":"loopy"},{"base":"gzip","name":"g2"}]`)
	scs, err = ParseArg(array)
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 2 || scs[1].Name != "g2" {
		t.Fatalf("array doc: %+v", scs)
	}
}

// TestParseArgRejectsUnknownFields: file parsing is exactly as strict as
// paco-serve's job decoding — a typo'd key must fail loudly, not
// silently compile a different workload than the user specified.
func TestParseArgRejectsUnknownFields(t *testing.T) {
	cases := []string{
		`{"family":"loopy","parameters":{"trip_min":128}}`,             // params typo
		`{"family":"loopy","ops":[{"override":{"working_set":2048}}]}`, // field typo
		`{"family":"loopy"} trailing`,
	}
	for i, doc := range cases {
		path := writeTemp(t, "bad.json", doc)
		if _, err := ParseArg(path); err == nil {
			t.Errorf("case %d: typo'd document accepted: %s", i, doc)
		} else if !strings.Contains(err.Error(), "bad.json") {
			t.Errorf("case %d: error %v does not name the file", i, err)
		}
	}
}

func TestParseArgs(t *testing.T) {
	path := writeTemp(t, "x.json", `{"base":"twolf","name":"t2"}`)
	scs, err := ParseArgs("loopy," + path)
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 2 || scs[0].Family != "loopy" || scs[1].Name != "t2" {
		t.Fatalf("parsed: %+v", scs)
	}
}
