package scenario

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"paco/internal/workload"
)

func TestFamiliesRegistered(t *testing.T) {
	want := []string{"adversarial-mdc", "interpreter", "loopy", "phase-thrash", "pointer-chase", "server"}
	got := FamilyNames()
	if len(got) != len(want) {
		t.Fatalf("families = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("families = %v, want %v", got, want)
		}
	}
	for _, f := range Families() {
		if f.Doc == "" || len(f.Params) == 0 {
			t.Fatalf("family %s lacks doc or params", f.Name)
		}
		for _, p := range f.Params {
			if p.Default < p.Min || p.Default > p.Max {
				t.Fatalf("family %s param %s default %g outside [%g, %g]", f.Name, p.Name, p.Default, p.Min, p.Max)
			}
		}
	}
	// Family names must never shadow benchmark models: the campaign grid
	// resolves both through one namespace.
	for _, n := range FamilyNames() {
		if _, err := workload.NewBenchmark(n); err == nil {
			t.Fatalf("family %s collides with a registered benchmark", n)
		}
	}
}

// TestFamiliesReturnsCopies: mutating a listed family cannot reach the
// registry that feeds normalization and cache keys.
func TestFamiliesReturnsCopies(t *testing.T) {
	fams := Families()
	orig := fams[0].Params[0].Default
	fams[0].Params[0].Default = orig + 99
	fams[0].Name = "mutated"
	again := Families()
	if again[0].Name == "mutated" || again[0].Params[0].Default != orig {
		t.Fatal("Families() exposed the live registry")
	}
}

// TestFamiliesCompile compiles every family at its defaults and checks
// the compiled spec produces a stream with the family's signature.
func TestFamiliesCompile(t *testing.T) {
	for _, f := range Families() {
		sc := Scenario{Family: f.Name}
		spec, err := sc.Compile()
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if spec.Name != f.Name {
			t.Fatalf("%s: compiled name %q", f.Name, spec.Name)
		}
		w, err := workload.NewWalker(spec)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		for i := 0; i < 60_000; i++ {
			w.Next()
		}
		if w.KindCount(workload.KindBranch) == 0 {
			t.Fatalf("%s: no conditional branches", f.Name)
		}
	}
}

func TestFamilySignatures(t *testing.T) {
	walk := func(sc Scenario, n int) *workload.Walker {
		spec, err := sc.Compile()
		if err != nil {
			t.Fatal(err)
		}
		w, err := workload.NewWalker(spec)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			w.Next()
		}
		return w
	}
	// interpreter: indirect dispatch dominates other control transfers.
	w := walk(Scenario{Family: "interpreter"}, 100_000)
	if ind, br := w.KindCount(workload.KindIndirect), w.KindCount(workload.KindBranch); ind == 0 || ind < br/8 {
		t.Fatalf("interpreter: indirect %d vs branch %d — dispatch not hot", ind, br)
	}
	// phase-thrash: alternates phases at the configured period.
	w = walk(Scenario{Family: "phase-thrash", Params: map[string]float64{"period": 5000}}, 60_000)
	if w.PhaseSwitches() < 8 {
		t.Fatalf("phase-thrash: only %d phase switches in 60k instructions", w.PhaseSwitches())
	}
	// loopy: stays in one phase, branch-heavy and loop-dominated.
	w = walk(Scenario{Family: "loopy"}, 60_000)
	if w.PhaseSwitches() != 0 {
		t.Fatalf("loopy switched phases")
	}
}

func TestNormalizedFillsDefaults(t *testing.T) {
	n, err := Scenario{Family: "interpreter"}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if n.Version != FormatVersion || n.Name != "interpreter" || n.Seed == 0 {
		t.Fatalf("normalized identity not filled: %+v", n)
	}
	if len(n.Params) != 3 || n.Params["targets"] != 24 {
		t.Fatalf("defaults not spelled out: %v", n.Params)
	}
	// Idempotent.
	n2, err := n.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := json.Marshal(n)
	j2, _ := json.Marshal(n2)
	if !bytes.Equal(j1, j2) {
		t.Fatalf("normalization not idempotent:\n%s\n%s", j1, j2)
	}
	// Spelling out the defaults changes nothing.
	spelled := Scenario{
		Version: 1, Name: "interpreter", Seed: n.Seed, Family: "interpreter",
		Params: map[string]float64{"dispatch_frac": 0.22, "targets": 24, "bias": 0.999},
	}
	ns, err := spelled.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	j3, _ := json.Marshal(ns)
	if !bytes.Equal(j1, j3) {
		t.Fatalf("spelled-out defaults normalize differently:\n%s\n%s", j1, j3)
	}
}

// TestBaseScenarioMatchesBenchmark: {"base":"gzip"} is the gzip model,
// exactly — same curated seed, byte-identical instruction stream — so
// scenario rows read against benchmark rows from other reports.
func TestBaseScenarioMatchesBenchmark(t *testing.T) {
	spec, err := Scenario{Base: "gzip"}.Compile()
	if err != nil {
		t.Fatal(err)
	}
	bench := workload.MustBenchmark("gzip")
	if spec.Seed != bench.Seed {
		t.Fatalf("base scenario seed %#x, benchmark seed %#x", spec.Seed, bench.Seed)
	}
	ws, _ := workload.NewWalker(spec)
	wb, _ := workload.NewWalker(bench)
	for i := 0; i < 5000; i++ {
		if a, b := ws.Next(), wb.Next(); a != b {
			t.Fatalf("instruction %d diverged from the benchmark stream", i)
		}
	}
}

// TestNormalizedSharesNoOps: a normalized scenario must not alias the
// caller's operator structs — mutating the input document after
// normalization cannot change what was validated.
func TestNormalizedSharesNoOps(t *testing.T) {
	ws := 2048
	ov := &OverrideOp{WorkingSetKB: &ws}
	sc := Scenario{Base: "gzip", Ops: []Op{{Override: ov}}}
	n, err := sc.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	ws = 64 // caller mutates their document after the fact
	*ov = OverrideOp{}
	spec, err := n.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if spec.WorkingSetKB != 2048 {
		t.Fatalf("normalized scenario aliased the caller's op: ws=%d", spec.WorkingSetKB)
	}
}

func TestNormalizedRejects(t *testing.T) {
	bad := []Scenario{
		{},                              // neither family nor base
		{Family: "nonesuch"},            // unknown family
		{Base: "nonesuch"},              // unknown benchmark
		{Family: "loopy", Base: "gzip"}, // both
		{Base: "gzip", Params: map[string]float64{"x": 1}},                                                     // params on base
		{Family: "loopy", Params: map[string]float64{"nope": 1}},                                               // unknown param
		{Family: "loopy", Params: map[string]float64{"trip_min": 4}},                                           // out of range
		{Family: "loopy", Params: map[string]float64{"trip_min": 32.5}},                                        // non-integer
		{Version: 99, Family: "loopy"},                                                                         // future format
		{Family: "loopy", Ops: []Op{{}}},                                                                       // empty op
		{Family: "loopy", Ops: []Op{{PhaseMorph: &PhaseMorphOp{}}}},                                            // zero period
		{Family: "loopy", Ops: []Op{{Mix: &MixOp{With: Ref{Benchmark: "gzip"}, Alpha: 1.5}}}},                  // bad alpha
		{Family: "loopy", Ops: []Op{{Mix: &MixOp{With: Ref{}, Alpha: 0.5}}}},                                   // empty ref
		{Family: "loopy", Ops: []Op{{Mix: &MixOp{With: Ref{Benchmark: "gzip", Family: "loopy"}, Alpha: 0.5}}}}, // double ref
	}
	// Structural overrides outside probability range are rejected at
	// compile time (Spec.Validate), same as out-of-range family params.
	for _, frac := range []float64{-0.5, 24} {
		frac := frac
		bad := Scenario{Family: "loopy", Ops: []Op{{Override: &OverrideOp{LoadFrac: &frac}}}}
		if _, err := bad.Compile(); err == nil {
			t.Errorf("override load_frac=%g accepted", frac)
		}
	}
	for i, sc := range bad {
		if _, err := sc.Normalized(); err == nil {
			t.Errorf("case %d: invalid scenario %+v accepted", i, sc)
		}
	}
}

// TestDefaultNamesDistinguishParamPoints: unnamed documents of one
// family at different parameter values derive distinct, deterministic
// names — a parameter sweep needs no hand-invented names.
func TestDefaultNamesDistinguishParamPoints(t *testing.T) {
	a, err := Scenario{Family: "phase-thrash", Params: map[string]float64{"period": 10_000}}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Scenario{Family: "phase-thrash", Params: map[string]float64{"period": 40_000}}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	def, err := Scenario{Family: "phase-thrash"}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if a.Name == b.Name || a.Name == def.Name {
		t.Fatalf("param points share a name: %q, %q, %q", a.Name, b.Name, def.Name)
	}
	if def.Name != "phase-thrash" {
		t.Fatalf("default-params name = %q, want bare family name", def.Name)
	}
	// Deterministic: the same point always derives the same name.
	a2, _ := Scenario{Family: "phase-thrash", Params: map[string]float64{"period": 10_000}}.Normalized()
	if a2.Name != a.Name {
		t.Fatalf("derived name unstable: %q vs %q", a.Name, a2.Name)
	}
}

func TestNestingDepthBounded(t *testing.T) {
	sc := Scenario{Family: "loopy"}
	for i := 0; i < maxRefDepth+2; i++ {
		inner := sc
		sc = Scenario{Family: "loopy", Ops: []Op{{Mix: &MixOp{With: Ref{Scenario: &inner}, Alpha: 0.5}}}}
	}
	if _, err := sc.Normalized(); err == nil {
		t.Fatal("unbounded nesting accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	period := uint64(30_000)
	ws := 2048
	sc := Scenario{
		Name: "composite",
		Seed: 42,
		Base: "gzip",
		Ops: []Op{
			{Mix: &MixOp{With: Ref{Family: "adversarial-mdc"}, Alpha: 0.5}},
			{Splice: &SpliceOp{With: Ref{Benchmark: "twolf"}, Instructions: 50_000}},
			{PhaseMorph: &PhaseMorphOp{Period: period}},
			{Override: &OverrideOp{WorkingSetKB: &ws}},
		},
	}
	n, err := sc.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(n)
	if err != nil {
		t.Fatal(err)
	}
	var back Scenario
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	data2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatalf("round trip changed bytes:\n%s\n%s", data, data2)
	}
	spec, err := back.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if spec.WorkingSetKB != 2048 {
		t.Fatalf("override lost in round trip: ws=%d", spec.WorkingSetKB)
	}
	for i, ph := range spec.Phases {
		if ph.Instructions != period {
			t.Fatalf("phase %d budget %d, want %d (phase_morph lost)", i, ph.Instructions, period)
		}
	}
	if len(spec.Phases) != 2 { // gzip's one + twolf's one
		t.Fatalf("splice lost: %d phases", len(spec.Phases))
	}
}

func TestOps(t *testing.T) {
	// Override.
	ind := 0.3
	spec, err := Scenario{Base: "gzip", Ops: []Op{{Override: &OverrideOp{IndirectFrac: &ind}}}}.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if spec.IndirectFrac != 0.3 {
		t.Fatalf("override: IndirectFrac = %g", spec.IndirectFrac)
	}
	// Mix at alpha=1 lands on the target's normalized weights.
	spec, err = Scenario{Base: "gzip", Ops: []Op{{Mix: &MixOp{With: Ref{Benchmark: "twolf"}, Alpha: 1}}}}.Compile()
	if err != nil {
		t.Fatal(err)
	}
	twolf := workload.MustBenchmark("twolf")
	got := normalizeMixWeights(spec.Phases[0].Mix)
	want := normalizeMixWeights(twolf.Phases[0].Mix)
	if math.Abs(got.Noisy-want.Noisy) > 1e-12 || math.Abs(got.Biased-want.Biased) > 1e-12 {
		t.Fatalf("alpha=1 mix: got %+v want %+v", got, want)
	}
	// Splice clamps unbounded source phases.
	spec, err = Scenario{Base: "gzip", Ops: []Op{{Splice: &SpliceOp{With: Ref{Benchmark: "twolf"}}}}}.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Phases) != 2 {
		t.Fatalf("splice: %d phases", len(spec.Phases))
	}
	for i, ph := range spec.Phases {
		if ph.Instructions != SpliceDefaultInstructions {
			t.Fatalf("splice: phase %d budget %d not clamped", i, ph.Instructions)
		}
	}
}

// TestCompileDeterminism is the scenario half of the acceptance
// criterion: the same document always compiles to the same spec and
// generates byte-identical instruction streams.
func TestCompileDeterminism(t *testing.T) {
	doc := []byte(`{"family":"phase-thrash","params":{"contrast":0.9},"ops":[{"mix":{"with":{"benchmark":"gap"},"alpha":0.25}}]}`)
	streams := make([][]workload.Instruction, 2)
	for round := range streams {
		var sc Scenario
		if err := json.Unmarshal(doc, &sc); err != nil {
			t.Fatal(err)
		}
		spec, err := sc.Compile()
		if err != nil {
			t.Fatal(err)
		}
		w, err := workload.NewWalker(spec)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5000; i++ {
			streams[round] = append(streams[round], w.Next())
		}
	}
	for i := range streams[0] {
		if streams[0][i] != streams[1][i] {
			t.Fatalf("instruction %d diverged: %+v vs %+v", i, streams[0][i], streams[1][i])
		}
	}
}

// TestFuzzerDeterminism is the fuzzer's acceptance criterion: the same
// seed yields byte-identical documents AND byte-identical instruction
// streams; different seeds yield different documents.
func TestFuzzerDeterminism(t *testing.T) {
	const seed, n = 7, 8
	a, err := FuzzSpec{Seed: seed, Count: n}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := FuzzSpec{Seed: seed, Count: n}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("same seed, different documents:\n%s\n%s", ja, jb)
	}
	for i := range a {
		sa, err := a[i].Compile()
		if err != nil {
			t.Fatalf("fuzzed scenario %d: %v", i, err)
		}
		sb, _ := b[i].Compile()
		wa, _ := workload.NewWalker(sa)
		wb, _ := workload.NewWalker(sb)
		for k := 0; k < 2000; k++ {
			ia, ib := wa.Next(), wb.Next()
			if ia != ib {
				t.Fatalf("scenario %d instruction %d diverged", i, k)
			}
		}
	}
	c, _ := FuzzSpec{Seed: seed + 1, Count: n}.Generate()
	jc, _ := json.Marshal(c)
	if bytes.Equal(ja, jc) {
		t.Fatal("different seeds produced identical documents")
	}
}

func TestFuzzSpecRejects(t *testing.T) {
	if _, err := (FuzzSpec{Seed: 1, Count: 0}).Generate(); err == nil {
		t.Fatal("zero count accepted")
	}
	if _, err := (FuzzSpec{Seed: 1, Count: MaxFuzzCount + 1}).Generate(); err == nil {
		t.Fatal("oversized count accepted")
	}
}

func TestMarshalCanonical(t *testing.T) {
	a, err := Scenario{Family: "loopy"}.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Scenario{Family: "loopy", Params: map[string]float64{"trip_min": 100, "trip_max": 240, "loop_weight": 0.35}}.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("equivalent scenarios canonicalize apart:\n%s\n%s", a, b)
	}
}
