package scenario

import (
	"fmt"
	"math"
	"sort"

	"paco/internal/workload"
)

// Param declares one family parameter: its valid range (inclusive) and
// the default Normalized spells out when the document leaves it unset.
// The declared ranges are also the fuzzer's sampling domain.
type Param struct {
	Name    string  `json:"name"`
	Doc     string  `json:"doc"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	Default float64 `json:"default"`
	// Integer parameters are sampled and validated on whole values.
	Integer bool `json:"integer,omitempty"`
}

// Family is one named workload family: a parameterized generator of
// workload.Spec values covering a behavioural regime the SPEC models
// don't.
type Family struct {
	Name   string  `json:"name"`
	Doc    string  `json:"doc"`
	Params []Param `json:"params"`

	build func(p map[string]float64, seed uint64) *workload.Spec
}

var families = map[string]*Family{}

func registerFamily(f *Family) {
	if _, dup := families[f.Name]; dup {
		panic("scenario: duplicate family " + f.Name)
	}
	families[f.Name] = f
}

func familyByName(name string) (*Family, bool) {
	f, ok := families[name]
	return f, ok
}

// IsFamily reports whether name is a registered workload family.
func IsFamily(name string) bool {
	_, ok := families[name]
	return ok
}

// FamilyNames returns the registered family names, sorted.
func FamilyNames() []string {
	out := make([]string, 0, len(families))
	for n := range families {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Families returns the registered families in name order. The returned
// values are copies: mutating them (or their Params) cannot reach the
// registry, whose declarations feed normalization, cache keys, and the
// fuzzer for the whole process.
func Families() []*Family {
	names := FamilyNames()
	out := make([]*Family, len(names))
	for i, n := range names {
		cp := *families[n]
		cp.Params = append([]Param(nil), cp.Params...)
		out[i] = &cp
	}
	return out
}

// normalizedParams validates p against the family's declaration and
// returns the complete parameter map with every default spelled out, so
// equivalent documents canonicalize identically.
func (f *Family) normalizedParams(p map[string]float64) (map[string]float64, error) {
	out := make(map[string]float64, len(f.Params))
	for _, d := range f.Params {
		out[d.Name] = d.Default
	}
	for name, v := range p {
		d, ok := f.param(name)
		if !ok {
			return nil, fmt.Errorf("scenario: family %s has no parameter %q", f.Name, name)
		}
		if v < d.Min || v > d.Max {
			return nil, fmt.Errorf("scenario: family %s parameter %s=%g outside [%g, %g]", f.Name, name, v, d.Min, d.Max)
		}
		if d.Integer && v != math.Trunc(v) {
			return nil, fmt.Errorf("scenario: family %s parameter %s=%g must be an integer", f.Name, name, v)
		}
		out[name] = v
	}
	return out, nil
}

func (f *Family) param(name string) (Param, bool) {
	for _, d := range f.Params {
		if d.Name == name {
			return d, true
		}
	}
	return Param{}, false
}

// familyBase is the structural skeleton family builders start from —
// the same defaults the SPEC models share, overridden per family.
func familyBase(seed uint64) *workload.Spec {
	return &workload.Spec{
		Seed:            seed,
		BlocksPerPhase:  1200,
		AvgBlockLen:     6,
		LoadFrac:        0.24,
		StoreFrac:       0.10,
		LongLatFrac:     0.10,
		DepGeoP:         0.22,
		WorkingSetKB:    256,
		RandomAddrFrac:  0.15,
		JumpFrac:        0.06,
		CallFrac:        0.04,
		ReturnFrac:      0.04,
		IndirectFrac:    0.01,
		IndirectTargets: 3,
	}
}

func lerp(lo, hi, t float64) float64 { return lo + t*(hi-lo) }

func init() {
	registerFamily(&Family{
		Name: "interpreter",
		Doc: "bytecode-interpreter dispatch: near-perfect conditional branches " +
			"but a hot indirect dispatch over many targets, the perlbmk regime " +
			"pushed further — BTB target mispredicts dominate and the JRS table " +
			"cannot see them",
		Params: []Param{
			{Name: "dispatch_frac", Doc: "fraction of segments that are indirect dispatches", Min: 0.05, Max: 0.35, Default: 0.22},
			{Name: "targets", Doc: "distinct targets per dispatch site", Min: 4, Max: 64, Default: 24, Integer: true},
			{Name: "bias", Doc: "taken probability of the biased conditionals", Min: 0.95, Max: 0.9995, Default: 0.999},
		},
		build: func(p map[string]float64, seed uint64) *workload.Spec {
			s := familyBase(seed)
			s.Name = "interpreter"
			s.IndirectFrac = p["dispatch_frac"]
			s.IndirectTargets = int(p["targets"])
			s.CallFrac, s.ReturnFrac = 0.05, 0.05
			// Short scan loops only: the interpreter's real loop is the
			// dispatch itself, and long numeric loops would drown the
			// indirect sites in loop-body instructions.
			m := workload.BranchMix{
				Biased: 0.78, Loop: 0.02, Pattern: 0.14, Correlated: 0.02, Noisy: 0.01,
				BiasedP:       p["bias"],
				LoopTripMin:   8,
				LoopTripMax:   16,
				PatternLenMin: 3,
				PatternLenMax: 8,
				NoisyEps:      0.02,
				RandomP:       0.5,
			}
			s.Phases = []workload.Phase{{Instructions: 1 << 62, Mix: m}}
			return s
		},
	})

	registerFamily(&Family{
		Name: "server",
		Doc: "request-serving code: many shallow phases over distinct code " +
			"regions (large instruction footprint, L1I pressure), deep service " +
			"call trees, mixed predictability that shifts every few tens of " +
			"thousands of instructions",
		Params: []Param{
			{Name: "phases", Doc: "number of request-handler phases", Min: 2, Max: 8, Default: 4, Integer: true},
			{Name: "phase_insns", Doc: "instructions per phase before the next handler runs", Min: 20_000, Max: 200_000, Default: 60_000, Integer: true},
			{Name: "blocks", Doc: "basic blocks per phase region (I-footprint)", Min: 2000, Max: 8000, Default: 4000, Integer: true},
		},
		build: func(p map[string]float64, seed uint64) *workload.Spec {
			s := familyBase(seed)
			s.Name = "server"
			s.BlocksPerPhase = int(p["blocks"])
			s.WorkingSetKB = 1024
			s.RandomAddrFrac = 0.25
			s.CallFrac, s.ReturnFrac = 0.08, 0.08
			phases := int(p["phases"])
			insns := uint64(p["phase_insns"])
			for i := 0; i < phases; i++ {
				// Alternate parse-like (noisy, data-dependent) and
				// respond-like (loop/biased) handlers, detuned slightly per
				// phase so every region has its own bucket rates.
				t := float64(i) / float64(phases)
				var m workload.BranchMix
				if i%2 == 0 {
					m = workload.BranchMix{
						Biased: 0.48, Loop: 0.10, Pattern: 0.08, Correlated: 0.12, Noisy: 0.20, Random: 0.02,
						BiasedP:     0.985,
						LoopTripMin: 8, LoopTripMax: 24,
						PatternLenMin: 3, PatternLenMax: 8,
						NoisyEps: 0.06 + 0.03*t,
						RandomP:  0.5,
					}
				} else {
					m = workload.BranchMix{
						Biased: 0.62, Loop: 0.14, Pattern: 0.10, Correlated: 0.06, Noisy: 0.08,
						BiasedP:     0.99,
						LoopTripMin: 30, LoopTripMax: 80,
						PatternLenMin: 3, PatternLenMax: 8,
						NoisyEps: 0.04 + 0.02*t,
						RandomP:  0.5,
					}
				}
				s.Phases = append(s.Phases, workload.Phase{Instructions: insns, Mix: m})
			}
			return s
		},
	})

	registerFamily(&Family{
		Name: "pointer-chase",
		Doc: "linked-structure traversal: cache-hostile random loads over a " +
			"large working set, short dependence distances (low ILP), short " +
			"data-dependent loops — the memory-bound regime where badpath " +
			"cache pollution hurts most",
		Params: []Param{
			{Name: "ws_mb", Doc: "data working set in MiB", Min: 1, Max: 32, Default: 8, Integer: true},
			{Name: "random_frac", Doc: "fraction of memory accesses with random addresses", Min: 0.5, Max: 1.0, Default: 0.85},
			{Name: "load_frac", Doc: "per-instruction load probability", Min: 0.30, Max: 0.45, Default: 0.38},
		},
		build: func(p map[string]float64, seed uint64) *workload.Spec {
			s := familyBase(seed)
			s.Name = "pointer-chase"
			s.WorkingSetKB = int(p["ws_mb"]) * 1024
			s.RandomAddrFrac = p["random_frac"]
			s.LoadFrac = p["load_frac"]
			s.StoreFrac = 0.06
			s.DepGeoP = 0.55 // short dependence distances: serialized chains
			s.LongLatFrac = 0.05
			s.BlocksPerPhase = 800
			s.AvgBlockLen = 5
			m := workload.BranchMix{
				Biased: 0.34, Loop: 0.16, Pattern: 0.06, Correlated: 0.06, Noisy: 0.30, Random: 0.01,
				BiasedP:     0.985,
				LoopTripMin: 6, LoopTripMax: 18,
				PatternLenMin: 3, PatternLenMax: 8,
				NoisyEps: 0.08,
				RandomP:  0.5,
			}
			s.Phases = []workload.Phase{{Instructions: 1 << 62, Mix: m}}
			return s
		},
	})

	registerFamily(&Family{
		Name: "phase-thrash",
		Doc: "rapid alternation between a predictable and a hostile branch " +
			"population: when the period is shorter than PaCo's MRT refresh, " +
			"the per-bucket rates move faster than the estimator re-learns " +
			"them — the gcc failure mode isolated and tunable",
		Params: []Param{
			{Name: "period", Doc: "instructions per phase before alternating", Min: 5_000, Max: 100_000, Default: 20_000, Integer: true},
			{Name: "contrast", Doc: "how far apart the two populations are (0 mild, 1 extreme)", Min: 0.2, Max: 1.0, Default: 0.8},
		},
		build: func(p map[string]float64, seed uint64) *workload.Spec {
			s := familyBase(seed)
			s.Name = "phase-thrash"
			s.BlocksPerPhase = 900
			period := uint64(p["period"])
			c := p["contrast"]
			easy := workload.BranchMix{
				Biased: 0.68, Loop: 0.16, Pattern: 0.10, Correlated: 0.04, Noisy: 0.02,
				BiasedP:     0.995,
				LoopTripMin: 60, LoopTripMax: 140,
				PatternLenMin: 3, PatternLenMax: 8,
				NoisyEps: 0.03,
				RandomP:  0.5,
			}
			hard := workload.BranchMix{
				Biased:        lerp(0.50, 0.12, c),
				Loop:          0.10,
				Pattern:       0.06,
				Correlated:    0.04,
				Noisy:         lerp(0.28, 0.62, c),
				Random:        lerp(0.01, 0.04, c),
				BiasedP:       0.985,
				LoopTripMin:   int(math.Round(lerp(24, 7, c))),
				LoopTripMax:   int(math.Round(lerp(60, 14, c))),
				PatternLenMin: 3, PatternLenMax: 8,
				NoisyEps: lerp(0.06, 0.13, c),
				RandomP:  0.5,
			}
			s.Phases = []workload.Phase{
				{Instructions: period, Mix: easy},
				{Instructions: period, Mix: hard},
			}
			return s
		},
	})

	registerFamily(&Family{
		Name: "loopy",
		Doc: "loop-dominated numeric code with long trip counts and strongly " +
			"biased conditionals: the highly predictable floor case — PaCo " +
			"should pin goodpath probability near 1 and RMS error near 0",
		Params: []Param{
			{Name: "trip_min", Doc: "minimum mean loop trip count", Min: 16, Max: 128, Default: 100, Integer: true},
			{Name: "trip_max", Doc: "maximum mean loop trip count (raised to trip_min when lower)", Min: 64, Max: 512, Default: 240, Integer: true},
			{Name: "loop_weight", Doc: "relative weight of loop branches", Min: 0.2, Max: 0.5, Default: 0.35},
		},
		build: func(p map[string]float64, seed uint64) *workload.Spec {
			s := familyBase(seed)
			s.Name = "loopy"
			lo, hi := int(p["trip_min"]), int(p["trip_max"])
			if hi < lo {
				hi = lo
			}
			m := workload.BranchMix{
				Biased: 0.52, Loop: p["loop_weight"], Pattern: 0.08, Correlated: 0.02, Noisy: 0.02,
				BiasedP:     0.998,
				LoopTripMin: lo, LoopTripMax: hi,
				PatternLenMin: 3, PatternLenMax: 8,
				NoisyEps: 0.02,
				RandomP:  0.5,
			}
			s.Phases = []workload.Phase{{Instructions: 1 << 62, Mix: m}}
			return s
		},
	})

	registerFamily(&Family{
		Name: "adversarial-mdc",
		Doc: "a bimodal branch population crafted against the JRS MDC " +
			"stratification: one sub-population mispredicts at eps_lo, the " +
			"other at eps_hi, so per-bucket rates straddle any single " +
			"threshold (what fig2 measures) and threshold-and-count gating " +
			"must mis-rank paths that PaCo's per-bucket rates separate",
		Params: []Param{
			{Name: "eps_lo", Doc: "mispredict rate of the trustworthy sub-population", Min: 0.005, Max: 0.08, Default: 0.02},
			{Name: "eps_hi", Doc: "mispredict rate of the treacherous sub-population", Min: 0.15, Max: 0.5, Default: 0.30},
			// A minority treacherous population hurts the single-rate
			// model most: the trained rate lands between the modes and
			// fits neither (a majority would dominate the average).
			{Name: "split", Doc: "weight of the treacherous sub-population", Min: 0.1, Max: 0.9, Default: 0.3},
		},
		build: func(p map[string]float64, seed uint64) *workload.Spec {
			s := familyBase(seed)
			s.Name = "adversarial-mdc"
			split := p["split"]
			m := workload.BranchMix{
				// The treacherous half: behaves like a well-trained biased
				// branch (so its MDC counters climb) but flips at eps_hi.
				Noisy: split,
				// The trustworthy half: same trained appearance, residual
				// rate eps_lo.
				Biased: (1 - split) * 0.96,
				// A little loop structure keeps the CFG mixing.
				Loop:        (1 - split) * 0.04,
				BiasedP:     1 - p["eps_lo"],
				LoopTripMin: 20, LoopTripMax: 60,
				PatternLenMin: 3, PatternLenMax: 8,
				NoisyEps: p["eps_hi"],
				RandomP:  0.5,
			}
			s.Phases = []workload.Phase{{Instructions: 1 << 62, Mix: m}}
			return s
		},
	})
}
