package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// ParseArg resolves one CLI scenario argument: a family name (e.g.
// "interpreter") or a path to a scenario JSON file (suffix ".json")
// holding either one scenario object or an array of them. Every returned
// scenario is normalized.
func ParseArg(entry string) ([]Scenario, error) {
	entry = strings.TrimSpace(entry)
	if entry == "" {
		return nil, nil
	}
	if !strings.HasSuffix(entry, ".json") {
		if !IsFamily(entry) {
			return nil, fmt.Errorf("scenario: %q is neither a family (have %v) nor a .json file", entry, FamilyNames())
		}
		sc, err := Scenario{Family: entry}.Normalized()
		if err != nil {
			return nil, err
		}
		return []Scenario{sc}, nil
	}
	data, err := os.ReadFile(entry)
	if err != nil {
		return nil, err
	}
	return parseDocs(entry, data)
}

// ParseArgs resolves a comma-separated list of ParseArg entries.
func ParseArgs(list string) ([]Scenario, error) {
	var out []Scenario
	for _, entry := range strings.Split(list, ",") {
		scs, err := ParseArg(entry)
		if err != nil {
			return nil, err
		}
		out = append(out, scs...)
	}
	return out, nil
}

func parseDocs(name string, data []byte) ([]Scenario, error) {
	// Unknown fields are rejected, matching paco-serve's job decoding: a
	// typo'd key must fail loudly, not silently compile the defaults.
	strict := func(v any) error {
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if err := dec.Decode(v); err != nil {
			return fmt.Errorf("scenario: parsing %s: %w", name, err)
		}
		if dec.More() {
			return fmt.Errorf("scenario: parsing %s: trailing data after JSON document", name)
		}
		return nil
	}
	trimmed := bytes.TrimSpace(data)
	var raw []Scenario
	if len(trimmed) > 0 && trimmed[0] == '[' {
		if err := strict(&raw); err != nil {
			return nil, err
		}
	} else {
		var sc Scenario
		if err := strict(&sc); err != nil {
			return nil, err
		}
		raw = []Scenario{sc}
	}
	out := make([]Scenario, len(raw))
	for i, sc := range raw {
		n, err := sc.Normalized()
		if err != nil {
			return nil, fmt.Errorf("scenario: %s document %d: %w", name, i, err)
		}
		out[i] = n
	}
	return out, nil
}
