package scenario

import (
	"fmt"
	"math"

	"paco/internal/rng"
	"paco/internal/workload"
)

// FuzzSpec is the declarative form of a fuzzed scenario batch: the grid
// (and CLI) carry it instead of the expanded list, and normalization
// expands it — so a sweep over "seed 7, 20 scenarios" is content-equal
// to the same sweep with the twenty documents spelled out.
type FuzzSpec struct {
	Seed  uint64 `json:"seed"`
	Count int    `json:"count"`
}

// MaxFuzzCount bounds one FuzzSpec expansion.
const MaxFuzzCount = 1024

// Generate expands a FuzzSpec into its scenarios.
func (fs FuzzSpec) Generate() ([]Scenario, error) {
	if fs.Count <= 0 {
		return nil, fmt.Errorf("scenario: fuzz count must be positive, got %d", fs.Count)
	}
	if fs.Count > MaxFuzzCount {
		return nil, fmt.Errorf("scenario: fuzz count %d exceeds limit %d", fs.Count, MaxFuzzCount)
	}
	f := NewFuzzer(fs.Seed)
	out := make([]Scenario, fs.Count)
	for i := range out {
		out[i] = f.Next()
	}
	return out, nil
}

// Fuzzer deterministically samples valid scenarios from the declared
// family parameter ranges: the same seed always yields the same sequence
// of documents, each of which compiles to the same byte-identical
// instruction stream (asserted by TestFuzzerDeterminism). Sampling uses
// the repository's PCG streams, never math/rand, so sequences survive Go
// releases.
type Fuzzer struct {
	r    *rng.RNG
	seed uint64
	n    int
}

// NewFuzzer returns a fuzzer for the given seed.
func NewFuzzer(seed uint64) *Fuzzer {
	return &Fuzzer{r: rng.NewStream(seed, 0xf022), seed: seed}
}

// roundParam keeps sampled float parameters on a 1e-4 lattice: exact in
// float64, stable under JSON round-trips, and readable in documents.
func roundParam(v float64) float64 {
	return math.Round(v*1e4) / 1e4
}

// Next samples the next scenario. Every document it returns is already
// normalized and compiles successfully.
func (f *Fuzzer) Next() Scenario {
	names := FamilyNames()
	fam := families[names[f.r.Intn(len(names))]]
	params := make(map[string]float64, len(fam.Params))
	for _, d := range fam.Params {
		if d.Integer {
			params[d.Name] = float64(f.r.Range(int(d.Min), int(d.Max)))
		} else {
			params[d.Name] = roundParam(lerp(d.Min, d.Max, f.r.Float64()))
		}
	}
	sc := Scenario{
		Version: FormatVersion,
		Name:    fmt.Sprintf("fuzz-%016x-%d", f.seed, f.n),
		Seed:    f.r.Uint64(),
		Family:  fam.Name,
		Params:  params,
	}
	if sc.Seed == 0 {
		sc.Seed = 1
	}
	f.n++

	// Some documents also exercise a composition operator, sampled from
	// the same stream so the draw count per scenario stays fixed per
	// branch taken (determinism needs only seed-equality, which this
	// preserves: the whole sequence is a pure function of the seed).
	if f.r.Bool(0.4) {
		switch f.r.Intn(3) {
		case 0:
			sc.Ops = append(sc.Ops, Op{PhaseMorph: &PhaseMorphOp{
				Period: uint64(f.r.Range(8_000, 150_000)),
			}})
		case 1:
			bench := workload.BenchmarkNames[f.r.Intn(len(workload.BenchmarkNames))]
			sc.Ops = append(sc.Ops, Op{Mix: &MixOp{
				With:  Ref{Benchmark: bench},
				Alpha: roundParam(lerp(0.1, 0.7, f.r.Float64())),
			}})
		case 2:
			ws := 64 << f.r.Intn(7) // 64 KiB .. 4 MiB
			sc.Ops = append(sc.Ops, Op{Override: &OverrideOp{
				WorkingSetKB: &ws,
			}})
		}
	}

	n, err := sc.Normalized()
	if err != nil {
		// Every sampled document lies inside the declared ranges by
		// construction; failure here is a bug in the sampler.
		panic(fmt.Sprintf("scenario: fuzzer produced invalid document: %v", err))
	}
	return n
}
