package version

import (
	"bytes"
	"runtime"
	"strings"
	"testing"
)

func TestGet(t *testing.T) {
	info := Get()
	if info.Module != Module || info.Version != Version {
		t.Fatalf("Get() = %+v, want module %q version %q", info, Module, Version)
	}
	if info.GoVersion != runtime.Version() {
		t.Fatalf("GoVersion = %q, want %q", info.GoVersion, runtime.Version())
	}
	if info.OS != runtime.GOOS || info.Arch != runtime.GOARCH {
		t.Fatalf("OS/Arch = %s/%s, want %s/%s", info.OS, info.Arch, runtime.GOOS, runtime.GOARCH)
	}
}

func TestString(t *testing.T) {
	s := Info{Module: "paco", Version: "1.0", GoVersion: "go1.24.0", OS: "linux", Arch: "amd64"}.String()
	if s != "paco 1.0 go1.24.0 linux/amd64" {
		t.Fatalf("String() = %q", s)
	}
	withRev := Info{Module: "paco", Version: "1.0", GoVersion: "go1.24.0", OS: "linux", Arch: "amd64",
		Revision: "abc123", Dirty: true}.String()
	if withRev != "paco 1.0 go1.24.0 linux/amd64 (abc123-dirty)" {
		t.Fatalf("String() = %q", withRev)
	}
}

func TestFprint(t *testing.T) {
	var buf bytes.Buffer
	Fprint(&buf, "paco-serve")
	out := buf.String()
	if !strings.HasPrefix(out, "paco-serve: "+Module+" "+Version) || !strings.HasSuffix(out, "\n") {
		t.Fatalf("Fprint wrote %q", out)
	}
}
