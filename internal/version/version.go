// Package version is the single build-info stamp shared by every paco
// binary: the module version, the Go toolchain that built it, and a
// git-ish build tag when the binary was built from a VCS checkout. All
// cmd/* binaries expose it through a -version flag, and paco-serve
// embeds it in /healthz and /metrics responses, so a report, a server,
// and a client can always be matched to the code that produced them.
package version

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
)

// Module is the module path every binary shares.
const Module = "paco"

// Version is the human-readable module version. It tracks the PR
// sequence rather than tags (the repository grows by stacked PRs).
var Version = "0.3.0"

// Info is one binary's build stamp.
type Info struct {
	// Module and Version identify the code.
	Module  string `json:"module"`
	Version string `json:"version"`
	// GoVersion, OS and Arch identify the toolchain and target.
	GoVersion string `json:"go"`
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	// Revision is the VCS revision baked in by the Go toolchain
	// (shortened), empty outside a VCS build. Dirty marks uncommitted
	// changes at build time.
	Revision string `json:"revision,omitempty"`
	Dirty    bool   `json:"dirty,omitempty"`
}

// Get assembles the build stamp for the running binary.
func Get() Info {
	info := Info{
		Module:    Module,
		Version:   Version,
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev := s.Value
				if len(rev) > 12 {
					rev = rev[:12]
				}
				info.Revision = rev
			case "vcs.modified":
				info.Dirty = s.Value == "true"
			}
		}
	}
	return info
}

// String renders the stamp on one line, e.g.
// "paco 0.3.0 go1.24.0 linux/amd64 (abc123def456)".
func (i Info) String() string {
	s := fmt.Sprintf("%s %s %s %s/%s", i.Module, i.Version, i.GoVersion, i.OS, i.Arch)
	if i.Revision != "" {
		tag := i.Revision
		if i.Dirty {
			tag += "-dirty"
		}
		s += " (" + tag + ")"
	}
	return s
}

// Fprint writes the stamp for the named binary — the body of every
// cmd/* binary's -version flag.
func Fprint(w io.Writer, binary string) {
	fmt.Fprintf(w, "%s: %s\n", binary, Get())
}
