package session

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"paco/internal/core"
	"paco/internal/trace"
)

// genEvents is the test-local alias for the package's exported
// synthetic workload generator (synth.go).
func genEvents(seed int64, n int) []trace.Event { return SyntheticEvents(seed, n) }

// serialize writes events as a binary trace stream.
func serialize(t *testing.T, evs []trace.Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs {
		if err := w.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func allKindsSpec() Spec {
	return Spec{Estimators: []EstimatorSpec{
		{Kind: KindPaCo, Refresh: 128},
		{Kind: KindStatic},
		{Kind: KindPerBranch},
		{Kind: KindCount, Threshold: 3},
	}}
}

func TestSpecNormalizeAndKey(t *testing.T) {
	zeroKey, err := Spec{}.Key()
	if err != nil {
		t.Fatal(err)
	}
	explicit := Spec{Estimators: []EstimatorSpec{{Kind: "PaCo", Refresh: core.DefaultRefreshPeriod}}}
	expKey, err := explicit.Key()
	if err != nil {
		t.Fatal(err)
	}
	if zeroKey != expKey {
		t.Fatalf("zero spec and explicit default spec keyed differently:\n %s\n %s", zeroKey, expKey)
	}
	other, err := Spec{Estimators: []EstimatorSpec{{Kind: KindCount}}}.Key()
	if err != nil {
		t.Fatal(err)
	}
	if other == zeroKey {
		t.Fatal("different specs share a key")
	}
	if _, err := (Spec{Estimators: []EstimatorSpec{{Kind: "magic"}}}).Key(); err == nil {
		t.Fatal("unknown kind accepted")
	}
	n, err := (Spec{Estimators: []EstimatorSpec{{Kind: KindCount}}}).Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if n.Estimators[0].Threshold != DefaultCountThreshold {
		t.Fatalf("count threshold not defaulted: %+v", n.Estimators[0])
	}
}

func TestParseEstimators(t *testing.T) {
	spec, err := ParseEstimators("paco, count", 512, 7)
	if err != nil {
		t.Fatal(err)
	}
	n, err := spec.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Estimators) != 2 || n.Estimators[0].Kind != KindPaCo || n.Estimators[1].Kind != KindCount {
		t.Fatalf("parsed spec = %+v", n)
	}
	if n.Estimators[0].Refresh != 512 || n.Estimators[1].Threshold != 7 {
		t.Fatalf("knobs not applied: %+v", n)
	}
	if _, err := ParseEstimators("paco,bogus", 0, 0); err == nil {
		t.Fatal("bogus kind accepted")
	}
}

// TestStreamingMatchesOfflineReplay is the package's core contract: a
// recorded trace fed chunk-by-chunk through Decoder+Apply finishes with
// byte-identical scores to offline Replay of the same bytes.
func TestStreamingMatchesOfflineReplay(t *testing.T) {
	raw := serialize(t, genEvents(42, 5000))
	spec := allKindsSpec()

	r, err := trace.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	offline, err := Replay(r, spec)
	if err != nil {
		t.Fatal(err)
	}

	for _, chunk := range []int{1, 37, 23 * 10, 4096} {
		s, err := New(spec)
		if err != nil {
			t.Fatal(err)
		}
		var d trace.Decoder
		for off := 0; off < len(raw); off += chunk {
			end := off + chunk
			if end > len(raw) {
				end = len(raw)
			}
			if err := d.Feed(raw[off:end], s.Apply); err != nil {
				t.Fatal(err)
			}
		}
		streamed := s.Close()
		if !reflect.DeepEqual(streamed, offline) {
			t.Fatalf("chunk %d: streamed scores diverge from offline replay:\n stream %+v\noffline %+v",
				chunk, streamed, offline)
		}
		sj, _ := json.Marshal(streamed)
		oj, _ := json.Marshal(offline)
		if !bytes.Equal(sj, oj) {
			t.Fatalf("chunk %d: JSON bytes differ:\n%s\n%s", chunk, sj, oj)
		}
	}
}

// TestSessionMatchesTraceReplay pins the session's estimator lifecycle
// to trace.Replay's: the same trace leaves a bare estimator in exactly
// the state the session reports.
func TestSessionMatchesTraceReplay(t *testing.T) {
	raw := serialize(t, genEvents(7, 3000))

	est := core.NewPaCo(core.PaCoConfig{RefreshPeriod: 128})
	r, err := trace.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.Replay(r, []core.Estimator{est}); err != nil {
		t.Fatal(err)
	}

	r2, err := trace.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	scores, err := Replay(r2, Spec{Estimators: []EstimatorSpec{{Kind: KindPaCo, Refresh: 128}}})
	if err != nil {
		t.Fatal(err)
	}
	if got := *scores.Estimators[0].EncodedSum; got != est.EncodedSum() {
		t.Fatalf("session EncodedSum = %d, trace.Replay estimator = %d", got, est.EncodedSum())
	}
	if got := *scores.Estimators[0].PGoodpath; got != est.GoodpathProb() {
		t.Fatalf("session PGoodpath = %v, trace.Replay estimator = %v", got, est.GoodpathProb())
	}
}

// TestNDJSONRoundTrip proves the text and binary encodings of the same
// events drive a session to identical scores.
func TestNDJSONRoundTrip(t *testing.T) {
	evs := genEvents(11, 800)

	direct, err := New(allKindsSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := direct.ApplyAll(evs); err != nil {
		t.Fatal(err)
	}

	var doc bytes.Buffer
	for _, ev := range evs {
		line, err := MarshalNDJSON(ev)
		if err != nil {
			t.Fatal(err)
		}
		doc.Write(line)
	}
	viaText, err := New(allKindsSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := viaText.IngestNDJSON(doc.Bytes()); err != nil {
		t.Fatal(err)
	}

	if got, want := viaText.Close(), direct.Close(); !reflect.DeepEqual(got, want) {
		t.Fatalf("NDJSON scores diverge:\n text  %+v\n direct %+v", got, want)
	}
}

func TestDecodeNDJSONPartialLines(t *testing.T) {
	line, err := MarshalNDJSON(trace.Event{Kind: trace.EvCycle, PC: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Split mid-line: the tail must come back as the remainder.
	cut := len(line) - 5
	evs, rest, err := DecodeNDJSON(line[:cut])
	if err != nil || len(evs) != 0 || !bytes.Equal(rest, line[:cut]) {
		t.Fatalf("partial line mishandled: evs=%v rest=%q err=%v", evs, rest, err)
	}
	evs, rest, err = DecodeNDJSON(append(append([]byte(nil), rest...), line[cut:]...))
	if err != nil || len(evs) != 1 || len(rest) != 0 {
		t.Fatalf("joined line mishandled: evs=%v rest=%q err=%v", evs, rest, err)
	}
	if evs[0].Kind != trace.EvCycle || evs[0].PC != 64 {
		t.Fatalf("decoded event = %+v", evs[0])
	}
	if _, _, err := DecodeNDJSON([]byte("{\"kind\":\"warp\"}\n")); err == nil {
		t.Fatal("unknown NDJSON kind accepted")
	}
}

func TestErrorLatchAndClose(t *testing.T) {
	s, err := New(Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(trace.Event{Kind: trace.EvResolve, Tag: 99}); err == nil {
		t.Fatal("resolve without fetch accepted")
	}
	if err := s.Apply(trace.Event{Kind: trace.EvCycle, PC: 64}); err == nil {
		t.Fatal("latched session accepted another event")
	}
	if sc := s.Scores(); sc.Error == "" {
		t.Fatal("latched error missing from scores")
	}

	s2, err := New(Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Apply(trace.Event{Kind: trace.EvFetch, Tag: 1, Flags: 1, MDC: 2}); err != nil {
		t.Fatal(err)
	}
	final := s2.Close()
	if !final.Final || final.Inflight != 0 || final.Squashes != 1 {
		t.Fatalf("close did not drain: %+v", final)
	}
	if err := s2.Apply(trace.Event{Kind: trace.EvCycle}); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed session accepted an event: %v", err)
	}
	if again := s2.Close(); !reflect.DeepEqual(again, final) {
		t.Fatal("second Close returned different scores")
	}
}
