// Package session is the streaming counterpart of a campaign cell: a
// live estimator set fed by trace events as they arrive, with rolling
// P(goodpath)/reliability scores readable at any point. Campaigns and
// paco-trace replay answer "what would the estimator have said over this
// whole workload"; a session answers "what does it say right now" —
// the shape the HPC-anomaly-detection and BayesPerf consumers in
// PAPERS.md actually have, where branch/counter events arrive as a
// stream and confidence must be read mid-flight.
//
// A Session itself is a single-goroutine state machine (the sharded
// Table in table.go provides the concurrent, bounded, evictable service
// view). Events are internal/trace records — the same model paco-trace
// files use — so a recorded trace pipes straight into a session, and the
// package guarantees the round trip: streaming a trace through Apply
// yields byte-identical final scores to offline Replay of the same file.
package session

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"paco/internal/core"
	"paco/internal/metrics"
	"paco/internal/trace"
)

// Estimator kinds a session can host. The set mirrors paco-trace
// -estimator: the perceptron stratifier is a recording-time machine
// configuration (it changes the MDC values baked into the event stream),
// not an estimator, so it has no session kind.
const (
	KindPaCo      = "paco"      // dynamic MRT (the paper's design)
	KindStatic    = "static"    // Appendix A static-profile MRT
	KindPerBranch = "perbranch" // Appendix A per-branch MRT
	KindCount     = "count"     // JRS threshold-and-count baseline
)

// DefaultCountThreshold is the JRS confidence threshold a count
// estimator defaults to (the paper's conventional best).
const DefaultCountThreshold = 3

// EstimatorSpec selects one estimator in a session.
type EstimatorSpec struct {
	// Kind is one of paco, static, perbranch, count.
	Kind string `json:"kind"`
	// Refresh is the PaCo MRT refresh period in cycles (paco only;
	// zero selects core.DefaultRefreshPeriod).
	Refresh uint64 `json:"refresh,omitempty"`
	// Threshold is the JRS confidence threshold (count only; zero
	// selects DefaultCountThreshold).
	Threshold uint32 `json:"threshold,omitempty"`
}

// Spec configures a session: the estimator set every event fans out to.
// The zero Spec is valid and selects a single default PaCo estimator.
type Spec struct {
	Estimators []EstimatorSpec `json:"estimators,omitempty"`
}

// Normalized returns the spec with defaults applied and kind-irrelevant
// knobs cleared, or an error for unknown kinds. Specs that normalize
// equal are the same session configuration and share a Key — the
// content-addressing contract.
func (s Spec) Normalized() (Spec, error) {
	ests := s.Estimators
	if len(ests) == 0 {
		ests = []EstimatorSpec{{Kind: KindPaCo}}
	}
	out := Spec{Estimators: make([]EstimatorSpec, len(ests))}
	for i, e := range ests {
		kind := strings.ToLower(strings.TrimSpace(e.Kind))
		n := EstimatorSpec{Kind: kind}
		switch kind {
		case KindPaCo:
			n.Refresh = e.Refresh
			if n.Refresh == 0 {
				n.Refresh = core.DefaultRefreshPeriod
			}
		case KindStatic, KindPerBranch:
			// No knobs.
		case KindCount:
			n.Threshold = e.Threshold
			if n.Threshold == 0 {
				n.Threshold = DefaultCountThreshold
			}
		default:
			return Spec{}, fmt.Errorf("session: unknown estimator kind %q (want paco, static, perbranch, or count)", e.Kind)
		}
		out.Estimators[i] = n
	}
	return out, nil
}

// keyDomain separates session keys from every other SHA-256 use in the
// tree (cache keys, shard IDs, scenario hashes).
const keyDomain = "paco/session/v1"

// Key returns the spec's content address: a hex SHA-256 over the
// normalized spec, so respellings of the same configuration (estimator
// case, explicit defaults) collapse to one key. Sessions are cheap to
// open, but the key lets clients recognize an equivalent spec without
// diffing JSON — the same economics as campaign shard addresses.
func (s Spec) Key() (string, error) {
	n, err := s.Normalized()
	if err != nil {
		return "", err
	}
	b, err := json.Marshal(n)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write([]byte(keyDomain))
	h.Write([]byte{0})
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// ParseEstimators builds a Spec from a comma-separated kind list — the
// CLI surface (`-estimators paco,count`). refresh and threshold apply to
// every paco/count entry respectively; zero keeps the defaults.
func ParseEstimators(list string, refresh uint64, threshold uint32) (Spec, error) {
	var spec Spec
	for _, kind := range strings.Split(list, ",") {
		kind = strings.TrimSpace(kind)
		if kind == "" {
			continue
		}
		spec.Estimators = append(spec.Estimators, EstimatorSpec{
			Kind: kind, Refresh: refresh, Threshold: threshold,
		})
	}
	if _, err := spec.Normalized(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

// EstimatorScore is one estimator's rolling view. Fields that do not
// apply to the kind are omitted (count has no probability register;
// static never trains but still scores).
type EstimatorScore struct {
	Kind string `json:"kind"`
	// EncodedSum is the integer path-confidence register (probabilistic
	// kinds).
	EncodedSum *int64 `json:"encoded_sum,omitempty"`
	// PGoodpath is the decoded P(goodpath) in [0, 1] (probabilistic
	// kinds).
	PGoodpath *float64 `json:"p_goodpath,omitempty"`
	// RMSError is the rolling reliability error: predicted P(goodpath)
	// at retire vs. observed correctness, the paper's Figure 5 metric
	// computed online. Omitted until the first conditional retire.
	RMSError *float64 `json:"rms_error,omitempty"`
	// LowConfidence is the unresolved low-confidence branch count
	// (count kind).
	LowConfidence *int `json:"low_confidence,omitempty"`
	// Instances is how many retires have fed the reliability estimate.
	Instances uint64 `json:"instances,omitempty"`
}

// Scores is a point-in-time snapshot of a session.
type Scores struct {
	Events     uint64 `json:"events"`
	Fetches    uint64 `json:"fetches"`
	Resolves   uint64 `json:"resolves"`
	Squashes   uint64 `json:"squashes"`
	Retires    uint64 `json:"retires"`
	Mispredict uint64 `json:"mispredicts"`
	Cycles     uint64 `json:"cycles"`
	// Inflight is the number of fetched-but-unresolved branches.
	Inflight int `json:"inflight"`

	Estimators []EstimatorScore `json:"estimators"`

	// Queued is how many ingested events await application (set by the
	// table; a bare Session applies synchronously and reports zero).
	Queued int `json:"queued,omitempty"`
	// Final marks the snapshot taken at Close: in-flight branches have
	// been squashed and no further events will apply.
	Final bool `json:"final,omitempty"`
	// Error carries the session's latched stream error, if any.
	Error string `json:"error,omitempty"`
}

// ErrClosed reports an event applied to a closed session.
var ErrClosed = errors.New("session: closed")

// Session is one live estimator set. Not safe for concurrent use — the
// Table serializes each session on its shard worker.
type Session struct {
	spec Spec // normalized
	ests []core.Estimator
	prob []core.Probabilistic   // parallel to ests; nil where not probabilistic
	rel  []*metrics.Reliability // parallel to ests; nil where not probabilistic
	cnt  []*core.CountPredictor // parallel to ests; nil where not count

	inflight map[uint64][]core.Contribution

	events, fetches, resolves, squashes, retires, mispredicts, cycles uint64

	err    error // first stream error, latched
	closed bool
}

// New builds a session from a spec (normalizing it first).
func New(spec Spec) (*Session, error) {
	n, err := spec.Normalized()
	if err != nil {
		return nil, err
	}
	s := &Session{
		spec:     n,
		ests:     make([]core.Estimator, len(n.Estimators)),
		prob:     make([]core.Probabilistic, len(n.Estimators)),
		rel:      make([]*metrics.Reliability, len(n.Estimators)),
		cnt:      make([]*core.CountPredictor, len(n.Estimators)),
		inflight: make(map[uint64][]core.Contribution),
	}
	for i, e := range n.Estimators {
		switch e.Kind {
		case KindPaCo:
			s.ests[i] = core.NewPaCo(core.PaCoConfig{RefreshPeriod: e.Refresh})
		case KindStatic:
			s.ests[i] = core.NewStaticMRT(nil)
		case KindPerBranch:
			s.ests[i] = core.NewPerBranchMRT(core.DefaultPerBranchEntries)
		case KindCount:
			s.ests[i] = core.NewCountPredictor(e.Threshold)
		}
		if p, ok := s.ests[i].(core.Probabilistic); ok {
			s.prob[i] = p
			s.rel[i] = &metrics.Reliability{}
		}
		if c, ok := s.ests[i].(*core.CountPredictor); ok {
			s.cnt[i] = c
		}
	}
	return s, nil
}

// Spec returns the session's normalized spec.
func (s *Session) Spec() Spec { return s.spec }

// Err returns the session's latched stream error, if any.
func (s *Session) Err() error { return s.err }

// Apply feeds one event through every estimator — the same lifecycle
// trace.Replay drives, so streaming and offline replay converge on
// identical estimator state. A stream error (resolve without fetch)
// latches: the session keeps serving scores but refuses further events.
func (s *Session) Apply(ev trace.Event) error {
	if s.closed {
		return ErrClosed
	}
	if s.err != nil {
		return s.err
	}
	s.events++
	switch ev.Kind {
	case trace.EvFetch:
		s.fetches++
		be := ev.Branch()
		contribs := make([]core.Contribution, len(s.ests))
		for i, e := range s.ests {
			contribs[i] = e.BranchFetched(be)
		}
		s.inflight[ev.Tag] = contribs
	case trace.EvResolve, trace.EvSquash:
		contribs, ok := s.inflight[ev.Tag]
		if !ok {
			s.err = fmt.Errorf("session: tag %d resolved without fetch", ev.Tag)
			return s.err
		}
		delete(s.inflight, ev.Tag)
		for i, e := range s.ests {
			if ev.Kind == trace.EvResolve {
				e.BranchResolved(contribs[i])
			} else {
				e.BranchSquashed(contribs[i])
			}
		}
		if ev.Kind == trace.EvResolve {
			s.resolves++
		} else {
			s.squashes++
		}
	case trace.EvRetire:
		s.retires++
		correct := ev.Correct()
		if !correct {
			s.mispredicts++
		}
		be := ev.Branch()
		for i, e := range s.ests {
			// Reliability reads the estimate the consumer would have
			// acted on: P(goodpath) before this retire trains the tables.
			// Only conditional retires score, matching the campaign probe.
			if s.rel[i] != nil && be.Conditional {
				s.rel[i].Add(s.prob[i].GoodpathProb(), correct)
			}
			e.BranchRetired(be, correct)
		}
	case trace.EvCycle:
		s.cycles = ev.PC
		for _, e := range s.ests {
			e.Tick(ev.PC)
		}
	default:
		s.err = fmt.Errorf("session: unknown event kind %d", ev.Kind)
		return s.err
	}
	return nil
}

// ApplyAll feeds a batch, stopping at the first error.
func (s *Session) ApplyAll(evs []trace.Event) error {
	for _, ev := range evs {
		if err := s.Apply(ev); err != nil {
			return err
		}
	}
	return nil
}

// Scores snapshots the session.
func (s *Session) Scores() Scores {
	sc := Scores{
		Events:     s.events,
		Fetches:    s.fetches,
		Resolves:   s.resolves,
		Squashes:   s.squashes,
		Retires:    s.retires,
		Mispredict: s.mispredicts,
		Cycles:     s.cycles,
		Inflight:   len(s.inflight),
		Final:      s.closed,
	}
	if s.err != nil {
		sc.Error = s.err.Error()
	}
	sc.Estimators = make([]EstimatorScore, len(s.ests))
	for i := range s.ests {
		es := EstimatorScore{Kind: s.spec.Estimators[i].Kind}
		if p := s.prob[i]; p != nil {
			sum, prob := p.EncodedSum(), p.GoodpathProb()
			es.EncodedSum, es.PGoodpath = &sum, &prob
		}
		if r := s.rel[i]; r != nil && r.Instances() > 0 {
			rms := r.RMSError()
			es.RMSError = &rms
			es.Instances = r.Instances()
		}
		if c := s.cnt[i]; c != nil {
			n := c.Count()
			es.LowConfidence = &n
		}
		sc.Estimators[i] = es
	}
	return sc
}

// Close squashes dangling in-flight branches (in deterministic tag
// order; squash subtraction is commutative, so this matches Replay's
// map-order drain bit for bit) and returns the final snapshot. Closing
// twice returns the same scores.
func (s *Session) Close() Scores {
	if !s.closed {
		tags := make([]uint64, 0, len(s.inflight))
		for tag := range s.inflight {
			tags = append(tags, tag)
		}
		sort.Slice(tags, func(i, j int) bool { return tags[i] < tags[j] })
		for _, tag := range tags {
			contribs := s.inflight[tag]
			delete(s.inflight, tag)
			for i, e := range s.ests {
				e.BranchSquashed(contribs[i])
			}
			s.squashes++
		}
		s.closed = true
	}
	return s.Scores()
}

// Replay runs a whole recorded trace through a fresh session and returns
// its final scores — the offline reference the streaming path is tested
// byte-identical against, and the `paco-trace replay -scores` backend.
func Replay(r *trace.Reader, spec Spec) (Scores, error) {
	s, err := New(spec)
	if err != nil {
		return Scores{}, err
	}
	for {
		ev, err := r.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return s.Close(), err
		}
		if err := s.Apply(ev); err != nil {
			return s.Close(), err
		}
	}
	return s.Close(), nil
}
