package session

import (
	"bytes"
	"encoding/json"
	"fmt"

	"paco/internal/trace"
)

// NDJSON is the text wire format for session ingest: one JSON object per
// line, mirroring the binary trace records so either encoding of the
// same event stream drives a session identically.
//
//	{"kind":"fetch","tag":7,"pc":16448,"history":48879,"mdc":3,"conditional":true}
//	{"kind":"resolve","tag":7}
//	{"kind":"squash","tag":8}
//	{"kind":"retire","pc":16448,"history":48879,"mdc":3,"conditional":true,"correct":true}
//	{"kind":"cycle","cycle":6400}
type wireEvent struct {
	Kind        string `json:"kind"`
	Tag         uint64 `json:"tag,omitempty"`
	PC          uint64 `json:"pc,omitempty"`
	History     uint32 `json:"history,omitempty"`
	MDC         uint8  `json:"mdc,omitempty"`
	Conditional bool   `json:"conditional,omitempty"`
	Correct     bool   `json:"correct,omitempty"`
	Cycle       uint64 `json:"cycle,omitempty"`
}

// kindNames maps binary event kinds to their NDJSON spellings (index by
// EventKind; slot 0 unused).
var kindNames = [...]string{"", "fetch", "resolve", "squash", "retire", "cycle"}

// parseNDJSONLine decodes one NDJSON line into a trace event.
func parseNDJSONLine(line []byte) (trace.Event, error) {
	var w wireEvent
	if err := json.Unmarshal(line, &w); err != nil {
		return trace.Event{}, fmt.Errorf("session: bad event line: %w", err)
	}
	ev := trace.Event{Tag: w.Tag, PC: w.PC, History: w.History, MDC: w.MDC}
	if w.Conditional {
		ev.Flags |= 1
	}
	if w.Correct {
		ev.Flags |= 2
	}
	switch w.Kind {
	case "fetch":
		ev.Kind = trace.EvFetch
	case "resolve":
		ev.Kind = trace.EvResolve
	case "squash":
		ev.Kind = trace.EvSquash
	case "retire":
		ev.Kind = trace.EvRetire
	case "cycle":
		ev.Kind = trace.EvCycle
		ev.PC = w.Cycle
	default:
		return trace.Event{}, fmt.Errorf("session: unknown event kind %q", w.Kind)
	}
	return ev, nil
}

// DecodeNDJSON parses every newline-terminated event in data, returning
// the events and the unterminated tail (the partial last line of a
// chunked upload — the caller stashes it and prepends it to the next
// chunk). Blank lines are skipped. A parse error is terminal for the
// stream.
func DecodeNDJSON(data []byte) ([]trace.Event, []byte, error) {
	var evs []trace.Event
	for {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			return evs, data, nil
		}
		line := bytes.TrimSpace(data[:nl])
		data = data[nl+1:]
		if len(line) == 0 {
			continue
		}
		ev, err := parseNDJSONLine(line)
		if err != nil {
			return evs, nil, err
		}
		evs = append(evs, ev)
	}
}

// MarshalNDJSON renders one event as an NDJSON line (with trailing
// newline) — the client-side encoder used by examples and tests.
func MarshalNDJSON(ev trace.Event) ([]byte, error) {
	if int(ev.Kind) <= 0 || int(ev.Kind) >= len(kindNames) {
		return nil, fmt.Errorf("session: unknown event kind %d", ev.Kind)
	}
	w := wireEvent{Kind: kindNames[ev.Kind]}
	switch ev.Kind {
	case trace.EvFetch:
		w.Tag, w.PC, w.History, w.MDC = ev.Tag, ev.PC, ev.History, ev.MDC
		w.Conditional = ev.Conditional()
	case trace.EvResolve, trace.EvSquash:
		w.Tag = ev.Tag
	case trace.EvRetire:
		w.PC, w.History, w.MDC = ev.PC, ev.History, ev.MDC
		w.Conditional, w.Correct = ev.Conditional(), ev.Correct()
	case trace.EvCycle:
		w.Cycle = ev.PC
	}
	b, err := json.Marshal(w)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// IngestNDJSON parses and applies a complete NDJSON document — the
// convenience entry point for direct (non-server) use, where data is not
// chunked: a final line without a trailing newline is accepted.
func (s *Session) IngestNDJSON(data []byte) error {
	evs, rest, err := DecodeNDJSON(data)
	if err != nil {
		return err
	}
	if rest = bytes.TrimSpace(rest); len(rest) > 0 {
		ev, err := parseNDJSONLine(rest)
		if err != nil {
			return err
		}
		evs = append(evs, ev)
	}
	return s.ApplyAll(evs)
}
