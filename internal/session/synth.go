package session

import (
	"math/rand"

	"paco/internal/trace"
)

// SyntheticEvents synthesizes a valid session event stream,
// deterministic by seed: fetches open tags, resolves (and occasional
// squashes) close them, retires train the estimators, and cycle markers
// tick time forward. It is the shared client-side workload generator —
// the servertest soak and chaos suites and the paco-obs session load
// generator all stream it, so load numbers measured outside the test
// suite are produced by the same traffic shape the tests assert on.
func SyntheticEvents(seed int64, n int) []trace.Event {
	rng := rand.New(rand.NewSource(seed))
	var evs []trace.Event
	var open []uint64
	nextTag := uint64(1)
	cycle := uint64(0)
	for len(evs) < n {
		switch r := rng.Intn(10); {
		case r < 4: // fetch
			ev := trace.Event{
				Kind:    trace.EvFetch,
				Tag:     nextTag,
				PC:      0x4000 + uint64(rng.Intn(64))*4,
				History: uint32(rng.Intn(1 << 12)),
				MDC:     uint8(rng.Intn(16)),
			}
			if rng.Intn(4) != 0 {
				ev.Flags |= 1 // conditional
			}
			open = append(open, nextTag)
			nextTag++
			evs = append(evs, ev)
		case r < 7 && len(open) > 0: // resolve or squash
			i := rng.Intn(len(open))
			tag := open[i]
			open = append(open[:i], open[i+1:]...)
			kind := trace.EvResolve
			if rng.Intn(5) == 0 {
				kind = trace.EvSquash
			}
			evs = append(evs, trace.Event{Kind: kind, Tag: tag})
		case r < 9: // retire
			ev := trace.Event{
				Kind:    trace.EvRetire,
				PC:      0x4000 + uint64(rng.Intn(64))*4,
				History: uint32(rng.Intn(1 << 12)),
				MDC:     uint8(rng.Intn(16)),
				Flags:   1, // conditional
			}
			if rng.Intn(5) != 0 {
				ev.Flags |= 2 // correct
			}
			evs = append(evs, ev)
		default: // cycle marker
			cycle += 64
			evs = append(evs, trace.Event{Kind: trace.EvCycle, PC: cycle})
		}
	}
	return evs
}
